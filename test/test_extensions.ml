(* Tests for the extension substrates and experiments: the RNG, the
   credit scheduler, the block device model, and the five
   beyond-the-paper experiments. *)

module Rng = Armvirt_engine.Rng
module Credit_sched = Armvirt_hypervisor.Credit_sched
module Blk_device = Armvirt_io.Blk_device
module Platform = Armvirt_core.Platform
module Experiment = Armvirt_core.Experiment
module W = Armvirt_workloads

(* --- Rng --------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let seq r = List.init 20 (fun _ -> Rng.int r ~bound:1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create ~seed:8 in
  Alcotest.(check bool) "different seed differs" true
    (seq (Rng.create ~seed:7) <> seq c)

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int r ~bound:10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds"
  done;
  Alcotest.check_raises "bound" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Rng.int r ~bound:0))

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:100.0 in
    if x < 0.0 then Alcotest.fail "negative exponential";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "sample mean near 100" true
    (Float.abs (mean -. 100.0) < 5.0)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  let a = List.init 10 (fun _ -> Rng.int parent ~bound:1000) in
  let b = List.init 10 (fun _ -> Rng.int child ~bound:1000) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_split_no_collisions () =
  (* 1k sibling streams from one parent: with 64-bit mixed child seeds
     no two streams should open identically (the old 30-bit draws hit
     birthday collisions around 2^15 streams; a collision among 1k
     would mean the mixing regressed). *)
  let parent = Rng.create ~seed:11 in
  let bound = (1 lsl 30) - 1 in
  (* Two ~30-bit draws per stream: ~60 bits of fingerprint, so a false
     collision among 1k streams is a ~4e-13 event. *)
  let fingerprint r = (Rng.int r ~bound, Rng.int r ~bound) in
  let seen = Hashtbl.create 1024 in
  for i = 1 to 1000 do
    let fp = fingerprint (Rng.split parent) in
    if Hashtbl.mem seen fp then
      Alcotest.failf "split stream %d collides with an earlier sibling" i;
    Hashtbl.add seen fp ()
  done;
  Alcotest.(check int) "1000 distinct streams" 1000 (Hashtbl.length seen)

let prop_rng_pareto_above_scale =
  QCheck.Test.make ~name:"pareto samples >= scale"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let r = Rng.create ~seed in
      List.for_all
        (fun _ -> Rng.pareto r ~scale:2.0 ~shape:1.5 >= 2.0)
        (List.init 100 Fun.id))

(* --- Credit_sched -------------------------------------------------------- *)

let vcpu dom index = { Credit_sched.dom; index }

let test_sched_basic_pick () =
  let s = Credit_sched.create ~num_pcpus:2 ~timeslice_cycles:1000 in
  Credit_sched.add_vcpu s (vcpu 0 0) ~affinity:0;
  Credit_sched.add_vcpu s (vcpu 1 0) ~affinity:0;
  Alcotest.(check bool) "nothing runnable" true
    (Credit_sched.pick s ~pcpu:0 = None);
  Credit_sched.set_runnable s (vcpu 0 0) true;
  Alcotest.(check bool) "picks the runnable one" true
    (Credit_sched.pick s ~pcpu:0 = Some (vcpu 0 0));
  Alcotest.(check bool) "affinity respected" true
    (Credit_sched.pick s ~pcpu:1 = None)

let test_sched_round_robin () =
  let s = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:1000 in
  Credit_sched.add_vcpu s (vcpu 0 0) ~affinity:0;
  Credit_sched.add_vcpu s (vcpu 1 0) ~affinity:0;
  Credit_sched.set_runnable s (vcpu 0 0) true;
  Credit_sched.set_runnable s (vcpu 1 0) true;
  (* Charge whoever runs; the other should get the next slice. *)
  let first = Option.get (Credit_sched.pick s ~pcpu:0) in
  Credit_sched.charge s ~pcpu:0 ~cycles:1000;
  let second = Option.get (Credit_sched.pick s ~pcpu:0) in
  Alcotest.(check bool) "alternates between equals" true (first <> second)

let test_sched_wakeup_boost () =
  let s = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:1000 in
  Credit_sched.add_vcpu s (vcpu 0 0) ~affinity:0;
  Credit_sched.add_vcpu s (vcpu 1 0) ~affinity:0;
  Credit_sched.set_runnable s (vcpu 0 0) true;
  ignore (Credit_sched.pick s ~pcpu:0);
  (* Burn most of dom0's credit. *)
  Credit_sched.charge s ~pcpu:0 ~cycles:500;
  (* An I/O-blocked VCPU wakes: boosted past the incumbent. *)
  Credit_sched.set_runnable s (vcpu 1 0) true;
  Alcotest.(check bool) "woken VCPU preempts" true
    (Credit_sched.pick s ~pcpu:0 = Some (vcpu 1 0))

let test_sched_refill () =
  let s = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:100 in
  Credit_sched.add_vcpu s (vcpu 0 0) ~affinity:0;
  Credit_sched.set_runnable s (vcpu 0 0) true;
  ignore (Credit_sched.pick s ~pcpu:0);
  (* Exhaust all credit (10 slices worth). *)
  Credit_sched.charge s ~pcpu:0 ~cycles:2000;
  Alcotest.(check bool) "refilled" true (Credit_sched.refills s >= 1);
  Alcotest.(check bool) "credit positive again" true
    (Credit_sched.credit_of s (vcpu 0 0) > 0)

let test_sched_run_to_completion_fair () =
  let s = Credit_sched.create ~num_pcpus:2 ~timeslice_cycles:1000 in
  List.iter
    (fun (v, aff) -> Credit_sched.add_vcpu s v ~affinity:aff)
    [ (vcpu 0 0, 0); (vcpu 0 1, 1); (vcpu 1 0, 0); (vcpu 1 1, 1) ];
  let work = [ (vcpu 0 0, 5000); (vcpu 0 1, 5000); (vcpu 1 0, 5000); (vcpu 1 1, 5000) ] in
  let makespan, switches = Credit_sched.run_to_completion s ~work ~switch_cost:0 in
  (* Two VCPUs per PCPU x 5000 cycles each: ideal makespan 10000. *)
  Alcotest.(check int) "ideal makespan with free switches" 10_000 makespan;
  Alcotest.(check bool) "switching happened" true (switches > 2)

let test_sched_validation () =
  let s = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:10 in
  Credit_sched.add_vcpu s (vcpu 0 0) ~affinity:0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Credit_sched.add_vcpu: duplicate VCPU") (fun () ->
      Credit_sched.add_vcpu s (vcpu 0 0) ~affinity:0);
  Alcotest.check_raises "affinity"
    (Invalid_argument "Credit_sched.add_vcpu: affinity out of range") (fun () ->
      Credit_sched.add_vcpu s (vcpu 9 9) ~affinity:5)

(* --- Blk_device ------------------------------------------------------------ *)

let test_blk_timing () =
  let us = Blk_device.service_us Blk_device.ssd_sata3 ~bytes:0 ~write:false in
  Alcotest.(check (float 0.01)) "pure access latency" 80.0 us;
  let big = Blk_device.service_us Blk_device.ssd_sata3 ~bytes:500_000_000 ~write:false in
  Alcotest.(check bool) "1s of streaming at 500MB/s" true
    (Float.abs (big -. 1e6 -. 80.0) < 1.0);
  Alcotest.(check bool) "HD much slower" true
    (Blk_device.service_us Blk_device.raid5_hd ~bytes:4096 ~write:false
    > 10.0 *. Blk_device.service_us Blk_device.ssd_sata3 ~bytes:4096 ~write:false)

let test_blk_cycles () =
  let c =
    Blk_device.service_cycles Blk_device.ssd_sata3 ~freq_ghz:2.4 ~bytes:0
      ~write:true
  in
  Alcotest.(check int) "90us at 2.4GHz" 216_000 c

let test_blk_validation () =
  Alcotest.check_raises "bad params"
    (Invalid_argument "Blk_device: non-positive parameter") (fun () ->
      ignore
        (Blk_device.custom ~read_latency_us:0.0 ~write_latency_us:1.0
           ~read_mb_s:1.0 ~write_mb_s:1.0))

(* --- Extension experiments ---------------------------------------------------- *)

let test_oversub_structure () =
  let hyp = Platform.hypervisor Arm_m400 Xen in
  let r = W.Oversub.run hyp ~vms:2 ~timeslice_ms:1.0 ~work_ms_per_vcpu:10.0 in
  Alcotest.(check bool) "overhead positive but small" true
    (r.W.Oversub.overhead_pct > 0.0 && r.W.Oversub.overhead_pct < 5.0);
  Alcotest.(check bool) "makespan >= ideal" true
    (r.W.Oversub.makespan_ms >= r.W.Oversub.ideal_ms);
  let coarse = W.Oversub.run hyp ~vms:2 ~timeslice_ms:30.0 ~work_ms_per_vcpu:10.0 in
  Alcotest.(check bool) "coarser slices switch less" true
    (coarse.W.Oversub.context_switches <= r.W.Oversub.context_switches)

let test_disk_ordering () =
  let device = Blk_device.ssd_sata3 in
  let native = W.Diskbench.run (Platform.native Arm_m400) ~device in
  let kvm = W.Diskbench.run (Platform.hypervisor Arm_m400 Kvm) ~device in
  let xen = W.Diskbench.run (Platform.hypervisor Arm_m400 Xen) ~device in
  Alcotest.(check (float 0.01)) "native adds nothing" 0.0
    native.W.Diskbench.virt_added_us;
  Alcotest.(check bool) "KVM adds a few us" true
    (kvm.W.Diskbench.virt_added_us > 1.0 && kvm.W.Diskbench.virt_added_us < 20.0);
  Alcotest.(check bool) "Xen adds more (Dom0 + grants)" true
    (xen.W.Diskbench.virt_added_us > kvm.W.Diskbench.virt_added_us);
  Alcotest.(check bool) "device dominates latency on all" true
    (kvm.W.Diskbench.rand_read_us < 2.0 *. native.W.Diskbench.rand_read_us)

let test_tail_latency_ordering () =
  let run hyp = W.Tail_latency.run ~requests:400 hyp ~load:0.3 in
  let native = run (Platform.native Arm_m400) in
  let kvm = run (Platform.hypervisor Arm_m400 Kvm) in
  Alcotest.(check int) "all completed" 400 native.W.Tail_latency.completed;
  Alcotest.(check bool) "percentiles ordered" true
    (native.W.Tail_latency.p50_us <= native.W.Tail_latency.p95_us
    && native.W.Tail_latency.p95_us <= native.W.Tail_latency.p99_us);
  Alcotest.(check bool) "virtualization shifts the whole distribution" true
    (kvm.W.Tail_latency.p50_us > native.W.Tail_latency.p50_us
    && kvm.W.Tail_latency.p99_us > native.W.Tail_latency.p99_us);
  (* Determinism: same seed, same percentiles. *)
  let again = run (Platform.native Arm_m400) in
  Alcotest.(check (float 1e-9)) "deterministic" native.W.Tail_latency.p99_us
    again.W.Tail_latency.p99_us

let test_tail_latency_validation () =
  Alcotest.check_raises "load range"
    (Invalid_argument "Tail_latency.run: load must be in (0, 1)") (fun () ->
      ignore (W.Tail_latency.run (Platform.native Arm_m400) ~load:1.5))

let test_coldstart_structure () =
  let run hyp = W.Coldstart.run hyp ~pages:512 in
  let native = run (Platform.native Arm_m400) in
  let kvm = run (Platform.hypervisor Arm_m400 Kvm) in
  let xen = run (Platform.hypervisor Arm_m400 Xen) in
  let vhe = run (Platform.hypervisor Arm_m400_vhe Kvm) in
  List.iter
    (fun r ->
      Alcotest.(check int) "one fault per page" 512 r.W.Coldstart.faults;
      Alcotest.(check int) "warm pass faults nothing" 0 r.W.Coldstart.warm_faults;
      Alcotest.(check bool) "warm TLB effective" true
        (r.W.Coldstart.tlb_hit_rate_warm > 0.9))
    [ native; kvm; xen; vhe ];
  Alcotest.(check bool) "split-mode KVM faults dearest" true
    (kvm.W.Coldstart.per_fault_cycles > xen.W.Coldstart.per_fault_cycles);
  Alcotest.(check bool) "VHE brings KVM near Xen" true
    (vhe.W.Coldstart.per_fault_cycles < xen.W.Coldstart.per_fault_cycles)

let test_lr_sensitivity_monotone () =
  let hyp = Platform.hypervisor Arm_m400 Kvm in
  let results = W.Lr_sensitivity.sweep hyp ~lrs:[ 1; 2; 4; 8; 16 ] ~burst_size:12 ~bursts:50 in
  let rounds = List.map (fun r -> r.W.Lr_sensitivity.maintenance_rounds) results in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "more LRs, fewer maintenance traps" true
    (decreasing rounds);
  (match List.rev results with
  | last :: _ ->
      Alcotest.(check int) "16 LRs absorb 12-interrupt bursts" 0
        last.W.Lr_sensitivity.maintenance_rounds
  | [] -> Alcotest.fail "empty sweep");
  (* All injected interrupts are eventually delivered and completed. *)
  List.iter
    (fun r ->
      Alcotest.(check int) "nothing lost" (12 * 50) r.W.Lr_sensitivity.injected)
    results

let test_timer_tick_scaling () =
  let hyp = Platform.hypervisor Arm_m400 Kvm in
  let results = W.Timer_tick.sweep hyp ~hz:[ 100; 1000 ] in
  (match results with
  | [ low; high ] ->
      Alcotest.(check bool) "ticks scale with HZ" true
        (high.W.Timer_tick.ticks > 5 * low.W.Timer_tick.ticks);
      Alcotest.(check bool) "overhead scales with HZ" true
        (high.W.Timer_tick.cpu_overhead_pct
        > 5.0 *. low.W.Timer_tick.cpu_overhead_pct);
      Alcotest.(check bool) "per-tick cost constant" true
        (low.W.Timer_tick.cycles_per_tick = high.W.Timer_tick.cycles_per_tick)
  | _ -> Alcotest.fail "expected two results");
  (* The tick tax ranks like the interrupt paths: KVM > Xen > VHE. *)
  let per_tick id p =
    (W.Timer_tick.run (Platform.hypervisor p id)).W.Timer_tick.cycles_per_tick
  in
  let kvm = per_tick Platform.Kvm Platform.Arm_m400 in
  let xen = per_tick Platform.Xen Platform.Arm_m400 in
  let vhe = per_tick Platform.Kvm Platform.Arm_m400_vhe in
  Alcotest.(check bool) "KVM > Xen > VHE" true (kvm > xen && xen > vhe)

let test_linkspeed_hides_overhead () =
  (* Section III: over 1 GbE "the network itself became the bottleneck"
     and virtualization overhead disappears — even for Xen. *)
  let slow =
    W.Netperf.tcp_stream ~wire_gbps:0.94 (Platform.hypervisor Arm_m400 Xen)
  in
  Alcotest.(check (float 1e-6)) "Xen at line rate over 1GbE" 1.0
    slow.W.Netperf.stream_normalized;
  let fast = W.Netperf.tcp_stream (Platform.hypervisor Arm_m400 Xen) in
  Alcotest.(check bool) "10GbE exposes it" true
    (fast.W.Netperf.stream_normalized > 3.0)

let test_isolation_discipline () =
  let disciplined =
    W.Isolation.run ~interference:false (Platform.hypervisor Arm_m400 Kvm)
  in
  Alcotest.(check (float 1e-9)) "zero variance under the paper discipline"
    0.0 disciplined.W.Isolation.stddev;
  Alcotest.(check (float 0.6)) "median is Table II's hypercall" 6500.0
    disciplined.W.Isolation.median;
  let noisy =
    W.Isolation.run ~interference:true (Platform.hypervisor Arm_m400 Kvm)
  in
  Alcotest.(check bool) "interference skews by thousands of cycles" true
    (noisy.W.Isolation.stddev > 1000.0
    && noisy.W.Isolation.worst > 6500.0 +. 3000.0);
  (* The median survives contamination — which is exactly why the paper
     could still report representative numbers after controlling it. *)
  Alcotest.(check bool) "median robust" true
    (Float.abs (noisy.W.Isolation.median -. 6500.0) < 800.0)

let test_lazyswitch_progression () =
  let groups = Experiment.lazyswitch () in
  let hypercall label = List.assoc "Hypercall" (List.assoc label groups) in
  let stock = hypercall "stock (paper's KVM)" in
  let fp = hypercall "lazy FP" in
  let vgic = hypercall "lazy VGIC" in
  let both = hypercall "lazy FP + VGIC" in
  let vhe = hypercall "VHE (for reference)" in
  Alcotest.(check int) "stock is Table II" 6500 stock;
  Alcotest.(check bool) "lazy FP shaves the FP classes" true
    (fp < stock && stock - fp < 1000);
  Alcotest.(check bool) "lazy VGIC is the big one" true
    (stock - vgic > 2500);
  Alcotest.(check bool) "monotone: both < vgic < fp < stock" true
    (both < vgic && vgic < fp && fp < stock);
  Alcotest.(check bool) "software alone cannot reach VHE" true
    (both > 2 * vhe);
  (* EOI stays hardware-free in every configuration. *)
  List.iter
    (fun (label, rows) ->
      Alcotest.(check int)
        (label ^ " EOI")
        71
        (List.assoc "Virtual IRQ Completion" rows))
    groups

let test_consolidation_shape () =
  let rows = Experiment.consolidation () in
  Alcotest.(check int) "8 rows (4 densities x 2 hypervisors)" 8
    (List.length rows);
  let get config vms =
    List.find
      (fun r ->
        r.Experiment.cons_config = config && r.Experiment.cons_vms = vms)
      rows
  in
  (* Aggregate never grows once the pool saturates, and per-VM falls. *)
  let kvm2 = get "KVM ARM" 2 and kvm8 = get "KVM ARM" 8 in
  Alcotest.(check bool) "KVM aggregate flat past saturation" true
    (Float.abs (kvm8.Experiment.cons_aggregate_ops -. kvm2.Experiment.cons_aggregate_ops)
    < 1.0);
  Alcotest.(check bool) "per-VM share shrinks" true
    (kvm8.Experiment.cons_per_vm_ops < kvm2.Experiment.cons_per_vm_ops /. 3.0);
  (* KVM consolidates denser than Xen at every density. *)
  List.iter
    (fun vms ->
      let kvm = get "KVM ARM" vms and xen = get "Xen ARM" vms in
      Alcotest.(check bool)
        (Printf.sprintf "KVM > Xen at %d VMs" vms)
        true
        (kvm.Experiment.cons_aggregate_ops > xen.Experiment.cons_aggregate_ops))
    [ 1; 2; 4; 8 ]

let test_guestops_invariants () =
  let groups = Experiment.guestops () in
  let native = List.assoc "Native" groups in
  (* Guest-local operations cost the same everywhere. *)
  List.iter
    (fun (config, rows) ->
      List.iter2
        (fun (n : W.Guest_ops.row) (r : W.Guest_ops.row) ->
          if not r.W.Guest_ops.hypervisor_involved then
            Alcotest.(check int)
              (Printf.sprintf "%s: %s native-speed" config r.W.Guest_ops.op)
              n.W.Guest_ops.cycles r.W.Guest_ops.cycles)
        native rows)
    groups;
  (* ARM completes interrupts in hardware even for guests; x86 traps. *)
  let eoi config =
    (List.find
       (fun (r : W.Guest_ops.row) -> r.W.Guest_ops.op = "interrupt completion (EOI)")
       (List.assoc config groups))
      .W.Guest_ops.cycles
  in
  Alcotest.(check int) "ARM guest EOI is native" 71 (eoi "KVM ARM");
  Alcotest.(check bool) "x86 guest EOI traps" true (eoi "KVM x86" > 1000);
  (* VHE shrinks every hypervisor-involving op vs split mode. *)
  List.iter2
    (fun (k : W.Guest_ops.row) (v : W.Guest_ops.row) ->
      if k.W.Guest_ops.hypervisor_involved then
        Alcotest.(check bool)
          (k.W.Guest_ops.op ^ " cheaper under VHE")
          true
          (v.W.Guest_ops.cycles < k.W.Guest_ops.cycles))
    (List.assoc "KVM ARM" groups)
    (List.assoc "KVM ARM (VHE)" groups)

let test_tracereplay () =
  let kvm = W.Trace_replay.run (Platform.hypervisor Arm_m400 Kvm) in
  let xen = W.Trace_replay.run (Platform.hypervisor Arm_m400 Xen) in
  Alcotest.(check int) "all requests replayed" 2000 kvm.W.Trace_replay.replayed;
  Alcotest.(check int) "three classes" 3
    (List.length kvm.W.Trace_replay.per_class);
  Alcotest.(check bool) "Xen's surcharge larger" true
    (xen.W.Trace_replay.added_cpu_pct > kvm.W.Trace_replay.added_cpu_pct);
  Alcotest.(check bool) "tails too" true
    (xen.W.Trace_replay.p99_added_us > kvm.W.Trace_replay.p99_added_us);
  (* Determinism per seed. *)
  let again = W.Trace_replay.run (Platform.hypervisor Arm_m400 Kvm) in
  Alcotest.(check (float 1e-9)) "deterministic" kvm.W.Trace_replay.p99_added_us
    again.W.Trace_replay.p99_added_us;
  Alcotest.check_raises "empty mix"
    (Invalid_argument "Trace_replay.run: empty mix") (fun () ->
      ignore (W.Trace_replay.run ~mix:[] (Platform.native Arm_m400)))

let test_summary_ci95 () =
  let s = Armvirt_stats.Summary.of_list [ 10.0; 12.0; 8.0; 10.0 ] in
  let lo, hi = Armvirt_stats.Summary.ci95 s in
  Alcotest.(check bool) "interval brackets the mean" true
    (lo < 10.0 && 10.0 < hi);
  let point = Armvirt_stats.Summary.of_list [ 5.0 ] in
  let lo, hi = Armvirt_stats.Summary.ci95 point in
  Alcotest.(check (float 1e-9)) "singleton degenerates" lo hi

let test_experiment_wrappers () =
  Alcotest.(check int) "disk covers both platforms" 6
    (List.length (Experiment.disk ()));
  Alcotest.(check int) "coldstart covers four configs" 4
    (List.length (Experiment.coldstart ()));
  Alcotest.(check int) "lrs covers both ARM hypervisors" 2
    (List.length (Experiment.lrs ()))

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split collision-free at 1k" `Quick
            test_rng_split_no_collisions;
        ]
        @ qcheck [ prop_rng_pareto_above_scale ] );
      ( "credit_sched",
        [
          Alcotest.test_case "basic pick" `Quick test_sched_basic_pick;
          Alcotest.test_case "round robin" `Quick test_sched_round_robin;
          Alcotest.test_case "wakeup boost" `Quick test_sched_wakeup_boost;
          Alcotest.test_case "refill" `Quick test_sched_refill;
          Alcotest.test_case "run to completion" `Quick
            test_sched_run_to_completion_fair;
          Alcotest.test_case "validation" `Quick test_sched_validation;
        ] );
      ( "blk_device",
        [
          Alcotest.test_case "timing" `Quick test_blk_timing;
          Alcotest.test_case "cycles" `Quick test_blk_cycles;
          Alcotest.test_case "validation" `Quick test_blk_validation;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "oversubscription" `Quick test_oversub_structure;
          Alcotest.test_case "disk ordering" `Quick test_disk_ordering;
          Alcotest.test_case "tail latency" `Quick test_tail_latency_ordering;
          Alcotest.test_case "tail validation" `Quick test_tail_latency_validation;
          Alcotest.test_case "coldstart" `Quick test_coldstart_structure;
          Alcotest.test_case "LR sensitivity" `Quick test_lr_sensitivity_monotone;
          Alcotest.test_case "timer tick scaling" `Quick test_timer_tick_scaling;
          Alcotest.test_case "link speed hides overhead" `Quick
            test_linkspeed_hides_overhead;
          Alcotest.test_case "isolation discipline" `Quick
            test_isolation_discipline;
          Alcotest.test_case "lazy switching progression" `Quick
            test_lazyswitch_progression;
          Alcotest.test_case "consolidation shape" `Quick
            test_consolidation_shape;
          Alcotest.test_case "guest ops invariants" `Quick
            test_guestops_invariants;
          Alcotest.test_case "trace replay" `Quick test_tracereplay;
          Alcotest.test_case "ci95" `Quick test_summary_ci95;
          Alcotest.test_case "wrappers" `Quick test_experiment_wrappers;
        ] );
    ]
