(* Tests for Armvirt_stats: summaries, histograms, counters and the
   barriered cycle counter. *)

module Cycles = Armvirt_engine.Cycles
module Sim = Armvirt_engine.Sim
module Summary = Armvirt_stats.Summary
module Histogram = Armvirt_stats.Histogram
module Counter = Armvirt_stats.Counter
module Cycle_counter = Armvirt_stats.Cycle_counter

(* --- Summary ------------------------------------------------------- *)

let test_summary_basics () =
  let s = Summary.of_list [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check int) "count" 3 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Summary.median s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Summary.max s)

let test_summary_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_list: empty sample")
    (fun () -> ignore (Summary.of_list []))

let test_summary_singleton () =
  let s = Summary.of_list [ 5.0 ] in
  Alcotest.(check (float 1e-9)) "stddev zero" 0.0 (Summary.stddev s);
  Alcotest.(check (float 1e-9)) "p99 = value" 5.0 (Summary.percentile s 99.0)

let test_summary_cv () =
  (* Regression for the explicit Float.equal zero-mean guard. *)
  let z = Summary.of_list [ -1.0; 1.0 ] in
  Alcotest.(check (float 1e-9)) "zero-mean guard" 0.0
    (Summary.coefficient_of_variation z);
  let s = Summary.of_list [ 2.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "cv = stddev/mean"
    (Summary.stddev s /. 3.0)
    (Summary.coefficient_of_variation s)

let test_summary_percentiles () =
  let s = Summary.of_list (List.init 101 float_of_int) in
  Alcotest.(check (float 1e-6)) "p0" 0.0 (Summary.percentile s 0.0);
  Alcotest.(check (float 1e-6)) "p50" 50.0 (Summary.percentile s 50.0);
  Alcotest.(check (float 1e-6)) "p100" 100.0 (Summary.percentile s 100.0);
  Alcotest.(check (float 1e-6)) "p25" 25.0 (Summary.percentile s 25.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Summary.percentile: out of range") (fun () ->
      ignore (Summary.percentile s 101.0))

let test_summary_stddev () =
  (* Sample [2;4;4;4;5;5;7;9]: sample stddev = sqrt(32/7). *)
  let s = Summary.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check (float 1e-6)) "sample stddev" (sqrt (32.0 /. 7.0))
    (Summary.stddev s)

let test_summary_ci95_student_t () =
  (* n = 4 < 30: the half-width must use t(0.975, df=3) = 3.182, not
     z = 1.96. Sample [1;2;3;4]: mean 2.5, sample sd = sqrt(5/3). *)
  let s = Summary.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  let lo, hi = Summary.ci95 s in
  let sd = sqrt (5.0 /. 3.0) in
  let half = 3.182 *. sd /. 2.0 in
  Alcotest.(check (float 1e-6)) "lower" (2.5 -. half) lo;
  Alcotest.(check (float 1e-6)) "upper" (2.5 +. half) hi;
  (* n = 2, the widest interval: t(0.975, df=1) = 12.706. *)
  let s2 = Summary.of_list [ 10.0; 20.0 ] in
  let lo2, hi2 = Summary.ci95 s2 in
  let half2 = 12.706 *. Summary.stddev s2 /. sqrt 2.0 in
  Alcotest.(check (float 1e-6)) "n=2 lower" (15.0 -. half2) lo2;
  Alcotest.(check (float 1e-6)) "n=2 upper" (15.0 +. half2) hi2

let test_summary_ci95_normal_for_large_n () =
  (* n >= 30 keeps the normal approximation: half = 1.96 * sd / sqrt n. *)
  let values = List.init 30 (fun i -> float_of_int i) in
  let s = Summary.of_list values in
  let lo, hi = Summary.ci95 s in
  let half = 1.96 *. Summary.stddev s /. sqrt 30.0 in
  Alcotest.(check (float 1e-6)) "half-width" half ((hi -. lo) /. 2.0);
  Alcotest.(check (float 1e-6)) "centered on mean" (Summary.mean s)
    ((hi +. lo) /. 2.0)

let test_summary_of_cycles () =
  let s = Summary.of_cycles [ Cycles.of_int 10; Cycles.of_int 20 ] in
  Alcotest.(check int) "median cycles" 15
    (Cycles.to_int (Summary.median_cycles s))

let prop_summary_median_bounded =
  QCheck.Test.make ~name:"median between min and max"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun values ->
      let s = Summary.of_list values in
      Summary.min s <= Summary.median s && Summary.median s <= Summary.max s)

let prop_summary_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p"
    QCheck.(
      triple
        (list_of_size (Gen.int_range 2 50) (float_bound_inclusive 1000.0))
        (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun (values, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let s = Summary.of_list values in
      Summary.percentile s lo <= Summary.percentile s hi +. 1e-9)

(* --- Histogram ----------------------------------------------------- *)

let test_histogram_bucketing () =
  let h = Histogram.create ~bucket_width:10.0 in
  List.iter (Histogram.add h) [ 0.0; 5.0; 9.9; 10.0; 25.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "buckets" 3 (Histogram.bucket_count h);
  (match Histogram.buckets h with
  | [ (0.0, 10.0, 3); (10.0, 20.0, 1); (20.0, 30.0, 1) ] -> ()
  | _ -> Alcotest.fail "unexpected bucket layout")

let test_histogram_mode () =
  let h = Histogram.create ~bucket_width:1.0 in
  List.iter (Histogram.add h) [ 1.5; 1.6; 3.2 ];
  match Histogram.mode_bucket h with
  | Some (1.0, 2.0, 2) -> ()
  | _ -> Alcotest.fail "mode should be [1,2) with 2"

let test_histogram_errors () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Histogram.create: non-positive bucket width") (fun () ->
      ignore (Histogram.create ~bucket_width:0.0));
  let h = Histogram.create ~bucket_width:1.0 in
  Alcotest.check_raises "negative observation"
    (Invalid_argument "Histogram.add: negative observation") (fun () ->
      Histogram.add h (-1.0))

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram count equals additions"
    QCheck.(list (float_bound_inclusive 100.0))
    (fun values ->
      let h = Histogram.create ~bucket_width:7.0 in
      List.iter (Histogram.add h) values;
      Histogram.count h = List.length values
      && List.fold_left (fun acc (_, _, n) -> acc + n) 0 (Histogram.buckets h)
         = List.length values)

(* --- Counter ------------------------------------------------------- *)

let test_counter_accumulation () =
  let set = Counter.create_set () in
  Counter.incr set "traps";
  Counter.incr set "traps";
  Counter.add set "cycles" 100;
  Counter.add_cycles set "cycles" (Cycles.of_int 23);
  Alcotest.(check int) "incr" 2 (Counter.get set "traps");
  Alcotest.(check int) "add" 123 (Counter.get set "cycles");
  Alcotest.(check int) "untouched" 0 (Counter.get set "nothing");
  Alcotest.(check (list string)) "names sorted" [ "cycles"; "traps" ]
    (Counter.names set);
  Counter.reset set;
  Alcotest.(check int) "reset" 0 (Counter.get set "traps")

(* --- Cycle_counter -------------------------------------------------- *)

let test_cycle_counter_measure () =
  let sim = Sim.create () in
  let measured = ref Cycles.zero in
  Sim.spawn sim ~name:"measurer" (fun () ->
      let counter = Cycle_counter.create ~barrier_cost:(Cycles.of_int 24) in
      measured :=
        Cycle_counter.measure counter (fun () -> Sim.delay (Cycles.of_int 500)));
  Sim.run sim;
  (* The trailing barrier is subtracted; the measured work is exact. *)
  Alcotest.(check int) "measures the operation alone" 500
    (Cycles.to_int !measured)

let test_cycle_counter_read_pays_barrier () =
  let sim = Sim.create () in
  let t = ref Cycles.zero in
  Sim.spawn sim ~name:"reader" (fun () ->
      let counter = Cycle_counter.create ~barrier_cost:(Cycles.of_int 24) in
      t := Cycle_counter.read counter);
  Sim.run sim;
  Alcotest.(check int) "barrier consumed simulated time" 24 (Cycles.to_int !t)

(* --- Trace ----------------------------------------------------------- *)

module Trace = Armvirt_stats.Trace
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model

let test_trace_records_spends () =
  let sim = Sim.create () in
  let machine =
    Machine.create sim ~cost:(Cost_model.Arm Cost_model.arm_default)
      ~num_cpus:2
  in
  let trace = Trace.create () in
  Machine.observe machine
    (Some (fun ~label ~cycles ~now -> Trace.record trace ~label ~cycles ~now));
  Sim.spawn sim ~name:"worker" (fun () ->
      Machine.spend machine "step.a" 100;
      Machine.spend machine "step.b" 50;
      Machine.spend machine "step.a" 25);
  Sim.run sim;
  Alcotest.(check int) "three events" 3 (Trace.length trace);
  Alcotest.(check int) "total" 175 (Trace.total_cycles trace);
  (match Trace.events trace with
  | [ a; b; c ] ->
      Alcotest.(check string) "order" "step.a" a.Trace.label;
      Alcotest.(check int) "completion time" 100
        (Armvirt_engine.Cycles.to_int a.Trace.at);
      Alcotest.(check string) "second" "step.b" b.Trace.label;
      Alcotest.(check int) "third at 175"
        175 (Armvirt_engine.Cycles.to_int c.Trace.at)
  | _ -> Alcotest.fail "event list shape");
  Alcotest.(check (list (pair string int))) "by_label descending"
    [ ("step.a", 125); ("step.b", 50) ]
    (Trace.by_label trace);
  (* Detaching stops recording. *)
  Machine.observe machine None;
  Sim.spawn sim ~name:"worker2" (fun () -> Machine.spend machine "step.c" 10);
  Sim.run sim;
  Alcotest.(check int) "no longer recording" 3 (Trace.length trace);
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (Trace.length trace)

(* Regression for the ring-buffer rewrite: [events] must stay
   chronological (the old representation was a newest-first list that
   [events] reversed) and [record] order must be preserved exactly, even
   for many events with identical timestamps. *)
let test_trace_events_chronological () =
  let trace = Trace.create () in
  let now = Armvirt_engine.Cycles.of_int 7 in
  for i = 0 to 999 do
    Trace.record trace ~label:(Printf.sprintf "op%d" i) ~cycles:1 ~now
  done;
  Alcotest.(check int) "length" 1000 (Trace.length trace);
  Alcotest.(check (list string)) "recording order preserved"
    (List.init 1000 (Printf.sprintf "op%d"))
    (List.map (fun e -> e.Trace.label) (Trace.events trace));
  Alcotest.(check int) "total is incremental" 1000 (Trace.total_cycles trace)

let test_trace_by_label_tie_break () =
  let trace = Trace.create () in
  let now = Armvirt_engine.Cycles.of_int 0 in
  (* Insert in an order that a Hashtbl fold would not preserve: equal
     totals must come out sorted by label. *)
  List.iter
    (fun l -> Trace.record trace ~label:l ~cycles:10 ~now)
    [ "zeta"; "alpha"; "mid" ];
  Alcotest.(check (list (pair string int))) "ties sorted by label"
    [ ("alpha", 10); ("mid", 10); ("zeta", 10) ]
    (Trace.by_label trace)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basics" `Quick test_summary_basics;
          Alcotest.test_case "empty rejected" `Quick test_summary_empty_rejected;
          Alcotest.test_case "singleton" `Quick test_summary_singleton;
          Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
          Alcotest.test_case "coefficient of variation" `Quick
            test_summary_cv;
          Alcotest.test_case "stddev" `Quick test_summary_stddev;
          Alcotest.test_case "ci95 Student-t for small n" `Quick
            test_summary_ci95_student_t;
          Alcotest.test_case "ci95 normal for large n" `Quick
            test_summary_ci95_normal_for_large_n;
          Alcotest.test_case "of_cycles" `Quick test_summary_of_cycles;
        ]
        @ qcheck [ prop_summary_median_bounded; prop_summary_percentile_monotone ]
      );
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "mode" `Quick test_histogram_mode;
          Alcotest.test_case "errors" `Quick test_histogram_errors;
        ]
        @ qcheck [ prop_histogram_total ] );
      ("counter", [ Alcotest.test_case "accumulation" `Quick test_counter_accumulation ]);
      ( "cycle_counter",
        [
          Alcotest.test_case "measure subtracts overhead" `Quick
            test_cycle_counter_measure;
          Alcotest.test_case "read pays barrier" `Quick
            test_cycle_counter_read_pays_barrier;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records spends" `Quick test_trace_records_spends;
          Alcotest.test_case "events chronological" `Quick
            test_trace_events_chronological;
          Alcotest.test_case "by_label tie-break" `Quick
            test_trace_by_label_tie_break;
        ]
      );
    ]
