(* Tests for Armvirt_explore: space parsing, sampler determinism (same
   points and byte-identical emitter output at every --jobs), Pareto
   correctness on hand-built sets, sensitivity ranking, and the
   calibration regression — a perturbed VGIC save cost must be
   recovered within 5% from the paper's hypercall target. *)

module Space = Armvirt_explore.Space
module Config = Armvirt_explore.Config
module Sampler = Armvirt_explore.Sampler
module Objective = Armvirt_explore.Objective
module Pareto = Armvirt_explore.Pareto
module Sensitivity = Armvirt_explore.Sensitivity
module Calibrate = Armvirt_explore.Calibrate
module Sweep = Armvirt_explore.Sweep
module Reg_class = Armvirt_arch.Reg_class
module Cost_model = Armvirt_arch.Cost_model

let point = Alcotest.testable
    (fun ppf p -> Format.pp_print_string ppf (Space.point_to_string p))
    ( = )

(* --- Space ----------------------------------------------------------- *)

let test_space_parse () =
  let space = Space.of_string "vgic.save=2000:4375:625,lr_count=2|4,hyp=kvm|xen" in
  Alcotest.(check int) "three axes" 3 (List.length space);
  (* 4375 is not on the 625 grid from 2000, so the last level is 3875. *)
  Alcotest.(check int) "grid size" (4 * 2 * 2) (Space.size space);
  let saves = Space.levels (List.nth space 0) in
  Alcotest.(check (list string)) "range levels stop at hi"
    [ "2000"; "2625"; "3250"; "3875" ]
    (List.map Space.value_to_string saves);
  (match Space.levels (List.nth space 2) with
  | [ Space.Choice "kvm"; Space.Choice "xen" ] -> ()
  | _ -> Alcotest.fail "choice levels");
  Alcotest.(check string) "round trip"
    "vgic.save=2000:4375:625,lr_count=2|4,hyp=kvm|xen"
    (Space.to_string (Space.of_string (Space.to_string space)))

let test_space_float_and_bool () =
  let space = Space.of_string "freq_ghz=2.0:2.4:0.2,vhe=true|false" in
  (match Space.levels (List.nth space 0) with
  | [ Space.Float a; Space.Float b; Space.Float c ] ->
      Alcotest.(check (float 1e-9)) "lo" 2.0 a;
      Alcotest.(check (float 1e-9)) "mid" 2.2 b;
      Alcotest.(check (float 1e-9)) "hi" 2.4 c
  | _ -> Alcotest.fail "float levels");
  match Space.levels (List.nth space 1) with
  | [ Space.Bool true; Space.Bool false ] -> ()
  | _ -> Alcotest.fail "bool levels"

let test_space_rejects_malformed () =
  let rejects s =
    match Space.of_string s with
    | _ -> Alcotest.failf "accepted %S" s
    | exception Invalid_argument _ -> ()
  in
  rejects "";
  rejects "noequals";
  rejects "a=1:10:0";
  rejects "a=10:1:2";
  rejects "a=1|2,a=3|4"

(* --- Sampler --------------------------------------------------------- *)

let small_space = Space.of_string "a=1:3:1,b=10|20"

let test_grid_order () =
  let pts = Sampler.points Sampler.Grid ~seed:0 small_space in
  Alcotest.(check int) "size" 6 (List.length pts);
  Alcotest.check point "first axis slowest"
    [ ("a", Space.Int 1); ("b", Space.Int 10) ]
    (List.hd pts);
  Alcotest.check point "b varies fastest"
    [ ("a", Space.Int 1); ("b", Space.Int 20) ]
    (List.nth pts 1)

let test_lhs_deterministic_and_stratified () =
  let space = Space.of_string "a=1:4:1,f=0.0:1.0:0.1" in
  let p1 = Sampler.points (Sampler.Lhs 4) ~seed:7 space in
  let p2 = Sampler.points (Sampler.Lhs 4) ~seed:7 space in
  Alcotest.(check (list point)) "same seed, same points" p1 p2;
  let p3 = Sampler.points (Sampler.Lhs 4) ~seed:8 space in
  Alcotest.(check bool) "different seed differs" true (p1 <> p3);
  (* 4 samples over a 4-level axis: Latin property = each level once. *)
  let a_values =
    List.sort compare (List.map (fun p -> List.assoc "a" p) p1)
  in
  Alcotest.(check (list point)) "each stratum used once"
    [ [ ("v", Space.Int 1) ]; [ ("v", Space.Int 2) ];
      [ ("v", Space.Int 3) ]; [ ("v", Space.Int 4) ] ]
    (List.map (fun v -> [ ("v", v) ]) a_values)

let test_oat_shape () =
  let pts = Sampler.points Sampler.Oat ~seed:0 small_space in
  (* base + 2 extra levels of a + 1 extra level of b *)
  Alcotest.(check int) "point count" 4 (List.length pts);
  Alcotest.check point "base first"
    [ ("a", Space.Int 1); ("b", Space.Int 10) ]
    (List.hd pts);
  List.iteri
    (fun i p ->
      if i > 0 then
        let diffs =
          List.filter (fun (k, v) -> List.assoc k (List.hd pts) <> v) p
        in
        Alcotest.(check int) "deviates in exactly one axis" 1
          (List.length diffs))
    pts

(* --- Config ---------------------------------------------------------- *)

let test_config_apply () =
  let c =
    Config.apply_point Config.default
      [ ("vgic.save", Space.Int 1234); ("lr_count", Space.Int 8);
        ("vhe", Space.Bool true); ("hyp", Space.Choice "xen") ]
  in
  Alcotest.(check int) "vgic.save"
    1234 (c.Config.arm.Cost_model.reg Reg_class.Vgic).Cost_model.save;
  Alcotest.(check int) "restore untouched"
    (Cost_model.arm_default.Cost_model.reg Reg_class.Vgic).Cost_model.restore
    (c.Config.arm.Cost_model.reg Reg_class.Vgic).Cost_model.restore;
  Alcotest.(check int) "lr_count" 8 c.Config.num_lrs;
  (* vhe=true + hyp=xen must not trip the Type 1 guard: the clamp lives
     in Config.hypervisor. *)
  let hyp = Config.hypervisor c in
  Alcotest.(check string) "xen built" "Xen ARM"
    hyp.Armvirt_hypervisor.Hypervisor.name

let test_config_rejects () =
  let rejects f =
    match f () with
    | _ -> Alcotest.fail "accepted"
    | exception Invalid_argument _ -> ()
  in
  rejects (fun () -> Config.apply Config.default "no-such-knob" (Space.Int 1));
  rejects (fun () -> Config.apply Config.default "vgic.save" (Space.Bool true));
  rejects (fun () -> Config.apply Config.default "hyp" (Space.Choice "vmware"));
  rejects (fun () -> Objective.find "no-such-objective")

(* --- Pareto ---------------------------------------------------------- *)

let test_pareto_hand_built () =
  let dirs = [ Objective.Min; Objective.Min ] in
  (* 0 dominates 1; 0 and 2 are incomparable; 3 duplicates 0 (keep
     first); 4 is dominated by everything. *)
  let rows =
    [ [| 1.; 5. |]; [| 2.; 6. |]; [| 5.; 1. |]; [| 1.; 5. |]; [| 6.; 7. |] ]
  in
  Alcotest.(check (list int)) "frontier" [ 0; 2 ]
    (Pareto.frontier ~dirs rows);
  (* Max direction flips dominance: (6,7) now dominates every row. *)
  Alcotest.(check (list int)) "max direction" [ 4 ]
    (Pareto.frontier ~dirs:[ Objective.Max; Objective.Max ] rows);
  (* Mixed directions: minimize first, maximize second. *)
  Alcotest.(check (list int)) "mixed" [ 0; 1; 4 ]
    (Pareto.frontier ~dirs:[ Objective.Min; Objective.Max ] rows)

let test_pareto_dominates () =
  let dirs = [ Objective.Min; Objective.Max ] in
  Alcotest.(check bool) "strictly better" true
    (Pareto.dominates ~dirs [| 1.; 9. |] [| 2.; 3. |]);
  Alcotest.(check bool) "equal rows do not dominate" false
    (Pareto.dominates ~dirs [| 1.; 9. |] [| 1.; 9. |]);
  Alcotest.(check bool) "trade-off does not dominate" false
    (Pareto.dominates ~dirs [| 1.; 2. |] [| 2.; 3. |])

let test_pareto_rejects () =
  (match Pareto.frontier ~dirs:[] [ [||] ] with
  | _ -> Alcotest.fail "empty dirs accepted"
  | exception Invalid_argument _ -> ());
  match Pareto.frontier ~dirs:[ Objective.Min ] [ [| 1.; 2. |] ] with
  | _ -> Alcotest.fail "arity mismatch accepted"
  | exception Invalid_argument _ -> ()

(* --- Sensitivity ----------------------------------------------------- *)

let test_sensitivity_ranking () =
  let base = [ ("a", Space.Int 0); ("b", Space.Int 0); ("c", Space.Int 0) ] in
  let dev axis v =
    List.map (fun (k, v0) -> if k = axis then (k, Space.Int v) else (k, v0)) base
  in
  let points = [ base; dev "a" 1; dev "a" 2; dev "b" 1; dev "c" 1 ] in
  let values = [ 100.; 150.; 50.; 400.; 90. ] in
  let rankings = Sensitivity.rank ~points ~values in
  Alcotest.(check (list string)) "span order" [ "b"; "a"; "c" ]
    (List.map (fun r -> r.Sensitivity.axis) rankings);
  let b = List.hd rankings in
  Alcotest.(check (float 1e-9)) "b span" 300. b.Sensitivity.span;
  Alcotest.(check (float 1e-9)) "b span pct" 300. b.Sensitivity.span_pct;
  let a = List.nth rankings 1 in
  Alcotest.(check (float 1e-9)) "a lo" 50. a.Sensitivity.lo;
  Alcotest.(check (float 1e-9)) "a hi" 150. a.Sensitivity.hi

let test_sensitivity_rejects_multi_axis () =
  let base = [ ("a", Space.Int 0); ("b", Space.Int 0) ] in
  let bad = [ ("a", Space.Int 1); ("b", Space.Int 1) ] in
  match Sensitivity.rank ~points:[ base; bad ] ~values:[ 1.; 2. ] with
  | _ -> Alcotest.fail "accepted a two-axis deviation"
  | exception Invalid_argument _ -> ()

(* --- Sweep determinism ----------------------------------------------- *)

let sweep_at jobs =
  let space =
    Space.of_string "vgic.save=2000:4375:625,lr_count=2|4,hyp=kvm|xen"
  in
  Sweep.run ~jobs ~seed:42 ~base:Config.default ~sampler:(Sampler.Lhs 6)
    ~objectives:[ Objective.find "hypercall"; Objective.find "lr-overhead" ]
    space

let test_sweep_jobs_invariant () =
  let s1 = sweep_at 1 and s4 = sweep_at 4 in
  Alcotest.(check (list point)) "identical point lists" s1.Sweep.points
    s4.Sweep.points;
  Alcotest.(check string) "byte-identical csv" (Sweep.to_csv s1)
    (Sweep.to_csv s4);
  Alcotest.(check string) "byte-identical markdown" (Sweep.to_markdown s1)
    (Sweep.to_markdown s4);
  Alcotest.(check bool) "csv has header + one row per point" true
    (List.length (String.split_on_char '\n' (String.trim (Sweep.to_csv s1)))
    = 1 + List.length s1.Sweep.points)

let test_sweep_oat_has_sensitivity () =
  let space = Space.of_string "vgic.save=3250|1000,stage2_toggle=50|200" in
  let s =
    Sweep.run ~jobs:2 ~base:Config.default ~sampler:Sampler.Oat
      ~objectives:[ Objective.find "hypercall" ] space
  in
  match s.Sweep.sensitivity with
  | None -> Alcotest.fail "oat sweep lost its sensitivity ranking"
  | Some rankings ->
      Alcotest.(check (list string)) "vgic dominates the hypercall"
        [ "vgic.save"; "stage2_toggle" ]
        (List.map (fun r -> r.Sensitivity.axis) rankings)

(* --- Objectives ------------------------------------------------------ *)

let test_hypercall_err_zero_at_stock () =
  let err = (Objective.find "hypercall-err").Objective.eval Config.default in
  Alcotest.(check bool)
    (Printf.sprintf "stock model matches Table II (err %.2f%%)" err)
    true (err < 1.0)

let test_paper_objectives_reject_native () =
  let native = Config.apply Config.default "hyp" (Space.Choice "native") in
  match (Objective.find "hypercall-err").Objective.eval native with
  | _ -> Alcotest.fail "native has no Table II column"
  | exception Invalid_argument _ -> ()

(* --- Calibration regression ------------------------------------------ *)

let test_calibration_recovers_vgic_save () =
  (* Perturb vgic.save to 2600 (20% low) and ask the search to recover
     it from the paper's 6,500-cycle hypercall target. The acceptance
     band is 5% of Table III's 3,250. *)
  let space = Space.of_string "vgic.save=2600:3900:50" in
  let r =
    Calibrate.search ~restarts:2 ~seed:42 ~jobs:2
      ~start:[ ("vgic.save", Space.Int 2600) ]
      ~base:Config.default
      ~objective:(Objective.find "hypercall-err")
      space
  in
  let recovered =
    match List.assoc "vgic.save" r.Calibrate.best with
    | Space.Int n -> float_of_int n
    | _ -> Alcotest.fail "non-int vgic.save"
  in
  Alcotest.(check bool)
    (Printf.sprintf "recovered %.0f within 5%% of 3250 (err %.3f%%)"
       recovered r.Calibrate.best_value)
    true
    (Float.abs (recovered -. 3250.) /. 3250. <= 0.05);
  Alcotest.(check bool) "memo: each point simulated at most once" true
    (r.Calibrate.evaluations <= Space.size space)

let () =
  Alcotest.run "explore"
    [
      ( "space",
        [
          Alcotest.test_case "parse" `Quick test_space_parse;
          Alcotest.test_case "float and bool" `Quick test_space_float_and_bool;
          Alcotest.test_case "rejects malformed" `Quick
            test_space_rejects_malformed;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "grid order" `Quick test_grid_order;
          Alcotest.test_case "lhs deterministic + stratified" `Quick
            test_lhs_deterministic_and_stratified;
          Alcotest.test_case "oat shape" `Quick test_oat_shape;
        ] );
      ( "config",
        [
          Alcotest.test_case "apply" `Quick test_config_apply;
          Alcotest.test_case "rejects" `Quick test_config_rejects;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "hand-built sets" `Quick test_pareto_hand_built;
          Alcotest.test_case "dominates" `Quick test_pareto_dominates;
          Alcotest.test_case "rejects" `Quick test_pareto_rejects;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "ranking" `Quick test_sensitivity_ranking;
          Alcotest.test_case "rejects multi-axis" `Quick
            test_sensitivity_rejects_multi_axis;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "jobs-invariant" `Quick test_sweep_jobs_invariant;
          Alcotest.test_case "oat sensitivity" `Quick
            test_sweep_oat_has_sensitivity;
        ] );
      ( "objective",
        [
          Alcotest.test_case "stock hypercall err ~0" `Quick
            test_hypercall_err_zero_at_stock;
          Alcotest.test_case "native rejected" `Quick
            test_paper_objectives_reject_native;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "recovers perturbed vgic.save" `Quick
            test_calibration_recovers_vgic_save;
        ] );
    ]
