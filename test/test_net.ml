(* Tests for Armvirt_net: packets with layer timestamps, the 10 GbE link
   and the NIC model. *)

module Cycles = Armvirt_engine.Cycles
module Sim = Armvirt_engine.Sim
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model
module Packet = Armvirt_net.Packet
module Link = Armvirt_net.Link
module Nic = Armvirt_net.Nic

let arm_machine sim =
  Machine.create sim ~cost:(Cost_model.Arm Cost_model.arm_default) ~num_cpus:8

(* --- Packet ---------------------------------------------------------- *)

let test_packet_bytes () =
  let p = Packet.create ~payload:1 ~id:1 () in
  Alcotest.(check int) "payload" 1 (Packet.payload_bytes p);
  Alcotest.(check int) "framing added" 67 (Packet.wire_bytes p);
  let big = Packet.create ~payload:1434 ~id:2 () in
  Alcotest.(check int) "MTU frame" 1500 (Packet.wire_bytes big)

let test_packet_framing_param () =
  (* The 66-byte constant is now a parameter: trunk ports re-frame with
     the 802.1Q tag, everything else defaults to the old behavior. *)
  Alcotest.(check int) "default framing" 66 Packet.default_framing;
  Alcotest.(check int) "vlan tag" 4 Packet.vlan_tag_bytes;
  let p = Packet.create ~framing:70 ~payload:30 ~id:1 () in
  Alcotest.(check int) "custom framing" 70 (Packet.framing_bytes p);
  Alcotest.(check int) "wire bytes" 100 (Packet.wire_bytes p);
  let q = Packet.create ~payload:1 ~id:2 () in
  Packet.set_framing q (Packet.framing_bytes q + Packet.vlan_tag_bytes);
  Alcotest.(check int) "tagged on the trunk" 71 (Packet.wire_bytes q);
  Packet.set_framing q (Packet.framing_bytes q - Packet.vlan_tag_bytes);
  Alcotest.(check int) "stripped at the far side" 67 (Packet.wire_bytes q);
  Alcotest.check_raises "negative framing"
    (Invalid_argument "Packet.create: negative framing") (fun () ->
      ignore (Packet.create ~framing:(-1) ~id:3 ()));
  Alcotest.check_raises "negative reframe"
    (Invalid_argument "Packet.set_framing: negative framing") (fun () ->
      Packet.set_framing q (-1))

let test_packet_zero_payload () =
  (* A bare ACK: no payload, framing only. *)
  let p = Packet.create ~payload:0 ~id:1 () in
  Alcotest.(check int) "framing only" 66 (Packet.wire_bytes p);
  Alcotest.check_raises "negative payload"
    (Invalid_argument "Packet.create: negative payload") (fun () ->
      ignore (Packet.create ~payload:(-1) ~id:2 ()))

let test_packet_stamps () =
  let sim = Sim.create () in
  let p = Packet.create ~id:1 () in
  Sim.spawn sim ~name:"stamper" (fun () ->
      Packet.stamp p "recv";
      Sim.delay (Cycles.of_int 250);
      Packet.stamp p "send");
  Sim.run sim;
  (match Packet.interval p "recv" "send" with
  | Some c -> Alcotest.(check int) "interval" 250 (Cycles.to_int c)
  | None -> Alcotest.fail "interval missing");
  Alcotest.(check bool) "reverse interval is None" true
    (Packet.interval p "send" "recv" = None);
  Alcotest.(check bool) "missing stamp" true
    (Packet.interval p "recv" "nowhere" = None);
  Alcotest.(check (list string)) "chronological order" [ "recv"; "send" ]
    (List.map fst (Packet.stamps p))

let test_packet_restamp_overwrites () =
  let sim = Sim.create () in
  let p = Packet.create ~id:1 () in
  Sim.spawn sim ~name:"stamper" (fun () ->
      Packet.stamp p "x";
      Sim.delay (Cycles.of_int 100);
      Packet.stamp p "x");
  Sim.run sim;
  (match Packet.timestamp p "x" with
  | Some c -> Alcotest.(check int) "latest wins" 100 (Cycles.to_int c)
  | None -> Alcotest.fail "stamp missing")

(* --- Link ------------------------------------------------------------ *)

let test_link_latency () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~propagation:(Cycles.of_int 1000) ~cycles_per_byte:2.0
  in
  let arrival = ref (-1) in
  Sim.spawn sim ~name:"sender" (fun () ->
      let p = Packet.create ~payload:34 ~id:1 () (* 100 wire bytes *) in
      Link.send link p ~deliver:(fun _ ->
          arrival := Cycles.to_int (Sim.current_time ())));
  Sim.run sim;
  (* 100 bytes * 2 cycles/byte serialization + 1000 propagation. *)
  Alcotest.(check int) "serialization + propagation" 1200 !arrival;
  Alcotest.(check int) "delivered count" 1 (Link.delivered link)

let test_link_fifo_and_serialization () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~propagation:(Cycles.of_int 1000) ~cycles_per_byte:2.0
  in
  let arrivals = ref [] in
  Sim.spawn sim ~name:"sender" (fun () ->
      for i = 1 to 2 do
        let p = Packet.create ~payload:34 ~id:i () in
        Link.send link p ~deliver:(fun pkt ->
            arrivals :=
              (Packet.id pkt, Cycles.to_int (Sim.current_time ())) :: !arrivals)
      done);
  Sim.run sim;
  (* Second frame waits for the wire: starts serializing at 200. *)
  Alcotest.(check (list (pair int int))) "in order, serialized"
    [ (1, 1200); (2, 1400) ]
    (List.rev !arrivals)

let test_link_ten_gbe_rate () =
  let sim = Sim.create () in
  let link = Link.ten_gbe sim ~freq_ghz:2.4 in
  let arrival = ref 0 in
  Sim.spawn sim ~name:"sender" (fun () ->
      let p = Packet.create ~payload:1434 ~id:1 () in
      Link.send link p ~deliver:(fun _ ->
          arrival := Cycles.to_int (Sim.current_time ())));
  Sim.run sim;
  (* 1500 B at 10 Gb/s = 1.2 us = 2880 cycles, + 2 us propagation. *)
  let expected = 2880 + 4800 in
  Alcotest.(check bool) "10GbE timing" true (abs (!arrival - expected) < 10)

let test_link_utilization () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~propagation:(Cycles.of_int 1000) ~cycles_per_byte:2.0
  in
  Alcotest.(check (float 1e-9)) "idle wire" 0.0 (Link.utilization link);
  Sim.spawn sim ~name:"sender" (fun () ->
      let p = Packet.create ~payload:34 ~id:1 () (* 100 wire bytes *) in
      Link.send link p ~deliver:(fun _ -> ()));
  Sim.run sim;
  (* 200 busy cycles; the run ends at delivery, t = 1200. *)
  Alcotest.(check int) "busy cycles" 200 (Link.busy_cycles link);
  Alcotest.(check (float 1e-6)) "utilization" (200.0 /. 1200.0)
    (Link.utilization link)

let test_link_utilization_bounded () =
  (* Back-to-back frames keep serialization committed into the future;
     the figure must stay within [0, 1] throughout. *)
  let sim = Sim.create () in
  let link =
    Link.create sim ~propagation:(Cycles.of_int 1000) ~cycles_per_byte:2.0
  in
  Sim.spawn sim ~name:"sender" (fun () ->
      for i = 1 to 10 do
        Link.send link (Packet.create ~payload:34 ~id:i ()) ~deliver:(fun _ ->
            let u = Link.utilization link in
            Alcotest.(check bool) "bounded" true (u > 0.0 && u <= 1.0))
      done);
  Sim.run sim;
  Alcotest.(check int) "all serialization accounted" 2000
    (Link.busy_cycles link)

(* --- Nic ------------------------------------------------------------- *)

let test_nic_rx_raises_irq () =
  let sim = Sim.create () in
  let machine = arm_machine sim in
  let irqs = ref [] in
  let nic =
    Nic.create sim ~machine ~dma_cost:500 ~irq_raise:(fun p ->
        irqs := Packet.id p :: !irqs)
  in
  Sim.spawn sim ~name:"wire" (fun () ->
      Nic.receive nic (Packet.create ~id:7 ()));
  Sim.run sim;
  Alcotest.(check (list int)) "IRQ raised with the frame" [ 7 ] !irqs;
  Alcotest.(check int) "rx counted" 1 (Nic.rx_count nic);
  Alcotest.(check int) "DMA cost spent" 500
    (Cycles.to_int (Sim.now sim))

let test_nic_tx_reaches_remote () =
  let sim = Sim.create () in
  let machine = arm_machine sim in
  let received = ref [] in
  let nic = Nic.create sim ~machine ~dma_cost:500 ~irq_raise:(fun _ -> ()) in
  let link = Link.ten_gbe sim ~freq_ghz:2.4 in
  Nic.attach nic link ~remote:(fun p -> received := Packet.id p :: !received);
  Sim.spawn sim ~name:"driver" (fun () ->
      Nic.transmit nic (Packet.create ~id:3 ()));
  Sim.run sim;
  Alcotest.(check (list int)) "remote got the frame" [ 3 ] !received;
  Alcotest.(check int) "tx counted" 1 (Nic.tx_count nic)

let test_nic_tx_without_link_fails () =
  let sim = Sim.create () in
  let machine = arm_machine sim in
  let nic = Nic.create sim ~machine ~dma_cost:500 ~irq_raise:(fun _ -> ()) in
  let failed = ref false in
  Sim.spawn sim ~name:"driver" (fun () ->
      match Nic.transmit nic (Packet.create ~id:1 ()) with
      | () -> ()
      | exception Failure _ -> failed := true);
  Sim.run sim;
  Alcotest.(check bool) "no link attached" true !failed

let test_nic_zero_payload () =
  (* A bare ACK traverses both NIC paths like any frame. *)
  let sim = Sim.create () in
  let machine = arm_machine sim in
  let irqs = ref 0 in
  let nic =
    Nic.create sim ~machine ~dma_cost:500 ~irq_raise:(fun _ -> incr irqs)
  in
  let link = Link.ten_gbe sim ~freq_ghz:2.4 in
  let remote = ref 0 in
  Nic.attach nic link ~remote:(fun _ -> incr remote);
  Sim.spawn sim ~name:"driver" (fun () ->
      Nic.receive nic (Packet.create ~payload:0 ~id:1 ());
      Nic.transmit nic (Packet.create ~payload:0 ~id:2 ()));
  Sim.run sim;
  Alcotest.(check int) "irq raised" 1 !irqs;
  Alcotest.(check int) "remote reached" 1 !remote;
  Alcotest.(check int) "rx counted" 1 (Nic.rx_count nic);
  Alcotest.(check int) "tx counted" 1 (Nic.tx_count nic)

let test_nic_counters_interleaved_bulk () =
  (* Packet traffic and bulk streaming (migration pre-copy) share the
     wire: FIFO order holds, counters see only the packets, and the
     wire's busy accounting sees both. *)
  let sim = Sim.create () in
  let machine = arm_machine sim in
  let nic = Nic.create sim ~machine ~dma_cost:500 ~irq_raise:(fun _ -> ()) in
  let link = Link.create sim ~propagation:(Cycles.of_int 1000)
      ~cycles_per_byte:2.0
  in
  let order = ref [] in
  Nic.attach nic link ~remote:(fun p -> order := Packet.id p :: !order);
  Sim.spawn sim ~name:"driver" (fun () ->
      Nic.transmit nic (Packet.create ~payload:34 ~id:1 ());
      let bulk_latency = Link.send_bulk link ~bytes:10_000 in
      Alcotest.(check bool) "bulk queued behind the frame" true
        (Cycles.to_int bulk_latency > 20_000);
      Nic.transmit nic (Packet.create ~payload:34 ~id:2 ()));
  Sim.run sim;
  Alcotest.(check (list int)) "packets in FIFO order" [ 1; 2 ] (List.rev !order);
  Alcotest.(check int) "tx counts packets only" 2 (Nic.tx_count nic);
  Alcotest.(check int) "rx untouched" 0 (Nic.rx_count nic);
  (* 2 x 100 wire bytes + 10000 bulk bytes, 2 cycles each. *)
  Alcotest.(check int) "wire busy sees both" 20400 (Link.busy_cycles link)

let test_nic_stamps_layers () =
  let sim = Sim.create () in
  let machine = arm_machine sim in
  let nic = Nic.create sim ~machine ~dma_cost:500 ~irq_raise:(fun _ -> ()) in
  let link = Link.ten_gbe sim ~freq_ghz:2.4 in
  Nic.attach nic link ~remote:(fun _ -> ());
  let p = Packet.create ~id:1 () in
  Sim.spawn sim ~name:"driver" (fun () ->
      Nic.receive nic p;
      Nic.transmit nic p);
  Sim.run sim;
  Alcotest.(check bool) "tcpdump points present" true
    (Packet.timestamp p "nic_rx" <> None && Packet.timestamp p "nic_tx" <> None)

let () =
  Alcotest.run "net"
    [
      ( "packet",
        [
          Alcotest.test_case "wire bytes" `Quick test_packet_bytes;
          Alcotest.test_case "framing parameter" `Quick
            test_packet_framing_param;
          Alcotest.test_case "zero payload" `Quick test_packet_zero_payload;
          Alcotest.test_case "stamps and intervals" `Quick test_packet_stamps;
          Alcotest.test_case "restamp overwrites" `Quick
            test_packet_restamp_overwrites;
        ] );
      ( "link",
        [
          Alcotest.test_case "latency" `Quick test_link_latency;
          Alcotest.test_case "fifo and serialization" `Quick
            test_link_fifo_and_serialization;
          Alcotest.test_case "10GbE rate" `Quick test_link_ten_gbe_rate;
          Alcotest.test_case "utilization" `Quick test_link_utilization;
          Alcotest.test_case "utilization bounded" `Quick
            test_link_utilization_bounded;
        ] );
      ( "nic",
        [
          Alcotest.test_case "rx raises irq" `Quick test_nic_rx_raises_irq;
          Alcotest.test_case "tx reaches remote" `Quick test_nic_tx_reaches_remote;
          Alcotest.test_case "tx without link fails" `Quick
            test_nic_tx_without_link_fails;
          Alcotest.test_case "zero payload" `Quick test_nic_zero_payload;
          Alcotest.test_case "interleaved bulk" `Quick
            test_nic_counters_interleaved_bulk;
          Alcotest.test_case "stamps layers" `Quick test_nic_stamps_layers;
        ] );
    ]
