(* Tests for Armvirt_lint: per-pass positive/negative/suppressed fixtures
   (determinism R1-R7, units U1/U2, markers M1, capture D1), the baseline
   ratchet, the JSON v2 report golden, CLI rule selection, and the
   meta-tests that the repo's own lib/, bin/ and bench/ trees are
   lint-clean and that the committed LINT_baseline.json verifies at HEAD. *)

module Rules = Armvirt_lint.Rules
module Engine = Armvirt_lint.Engine
module Report = Armvirt_lint.Report
module Driver = Armvirt_lint.Driver
module Baseline = Armvirt_lint.Baseline

let lint ?rules ~relpath src =
  Engine.lint_source ?rules ~clock:(fun () -> 0.) ~relpath src

let rule_ids (r : Engine.result) =
  List.map (fun (f : Engine.finding) -> Rules.to_string f.rule) r.findings

let check_rules name expected r =
  Alcotest.(check (list string)) name expected (rule_ids r)

(* --- R1: stdlib Random --------------------------------------------- *)

let test_r1_random () =
  check_rules "flagged" [ "R1" ]
    (lint ~relpath:"lib/workloads/x.ml" "let x = Random.int 7");
  check_rules "deep path flagged" [ "R1" ]
    (lint ~relpath:"lib/workloads/x.ml" "let s = Random.State.make [| 3 |]");
  check_rules "module alias flagged" [ "R1" ]
    (lint ~relpath:"lib/workloads/x.ml" "module R = Random");
  check_rules "allowlisted in rng.ml" []
    (lint ~relpath:"lib/engine/rng.ml" "let x = Random.int 7");
  check_rules "Engine.Rng is fine" []
    (lint ~relpath:"lib/workloads/x.ml" "let x r = Engine.Rng.int r 7")

(* --- R2: wall clock ------------------------------------------------- *)

let test_r2_wall_clock () =
  check_rules "gettimeofday flagged" [ "R2" ]
    (lint ~relpath:"lib/core/x.ml" "let now () = Unix.gettimeofday ()");
  check_rules "Sys.time flagged" [ "R2" ]
    (lint ~relpath:"lib/core/x.ml" "let t () = Sys.time ()");
  (* self_init is both entropy (R2) and stdlib Random (R1) *)
  check_rules "self_init double-flagged" [ "R1"; "R2" ]
    (lint ~relpath:"lib/core/x.ml" "let () = Random.self_init ()");
  check_rules "bench may use wall clock" []
    (lint ~relpath:"bench/main.ml" "let now () = Unix.gettimeofday ()")

(* --- R3: Hashtbl iteration order ------------------------------------ *)

let test_r3_hashtbl_order () =
  check_rules "bare iter flagged" [ "R3" ]
    (lint ~relpath:"lib/io/x.ml" "let dump t f = Hashtbl.iter f t");
  check_rules "fold into sort accepted" []
    (lint ~relpath:"lib/io/x.ml"
       "let keys t =\n\
       \  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort \
        Int.compare");
  check_rules "sort elsewhere in same definition accepted" []
    (lint ~relpath:"lib/io/x.ml"
       "let keys t =\n\
       \  let raw = Hashtbl.fold (fun k _ acc -> k :: acc) t [] in\n\
       \  List.sort_uniq Int.compare raw");
  let suppressed =
    lint ~relpath:"lib/io/x.ml"
      "let count t =\n\
       \  (* lint: sorted *)\n\
       \  Hashtbl.fold (fun _ _ acc -> acc + 1) t 0"
  in
  check_rules "audited site suppressed" [] suppressed;
  Alcotest.(check int) "counted as suppressed" 1 suppressed.Engine.suppressed

(* --- R4: Domain outside the runner ----------------------------------- *)

let test_r4_domain () =
  check_rules "spawn flagged" [ "R4" ]
    (lint ~relpath:"lib/explore/x.ml" "let d f = Domain.spawn f");
  check_rules "join flagged" [ "R4" ]
    (lint ~relpath:"lib/explore/x.ml" "let j d = Domain.join d");
  check_rules "runner.ml allowlisted" []
    (lint ~relpath:"lib/core/runner.ml" "let d f = Domain.spawn f");
  check_rules "DLS is fine" []
    (lint ~relpath:"lib/explore/x.ml"
       "let k = Domain.DLS.new_key (fun () -> 0)")

(* --- R5: polymorphic compare --------------------------------------- *)

let test_r5_poly_compare () =
  check_rules "bare compare flagged" [ "R5" ]
    (lint ~relpath:"lib/engine/x.ml" "let c (a : float) b = compare a b");
  check_rules "Stdlib.compare flagged" [ "R5" ]
    (lint ~relpath:"lib/stats/x.ml" "let s l = List.sort Stdlib.compare l");
  check_rules "float-literal equality flagged" [ "R5" ]
    (lint ~relpath:"lib/stats/x.ml" "let z x = x = 0.0");
  check_rules "lambda equality flagged" [ "R5" ]
    (lint ~relpath:"lib/engine/x.ml" "let bad f = f = fun x -> x");
  check_rules "Float.compare is fine" []
    (lint ~relpath:"lib/engine/x.ml" "let c a b = Float.compare a b");
  check_rules "out of scope dirs unflagged" []
    (lint ~relpath:"lib/mem/x.ml" "let z x = x = 0.0")

(* --- R6: top-level mutable state ------------------------------------ *)

let test_r6_top_level_state () =
  check_rules "top-level Hashtbl flagged" [ "R6" ]
    (lint ~relpath:"lib/gic/x.ml" "let cache = Hashtbl.create 16");
  check_rules "top-level ref flagged" [ "R6" ]
    (lint ~relpath:"lib/gic/x.ml" "let hits = ref 0");
  check_rules "constrained ref flagged" [ "R6" ]
    (lint ~relpath:"lib/gic/x.ml" "let h : int list ref = ref []");
  check_rules "function allocating per call is fine" []
    (lint ~relpath:"lib/gic/x.ml" "let create () = Hashtbl.create 16");
  check_rules "metrics registry allowlisted" []
    (lint ~relpath:"lib/obs/metrics.ml" "let reg = Hashtbl.create 16");
  check_rules "audited global suppressed" []
    (lint ~relpath:"lib/gic/x.ml"
       "(* lint: allow R6 process-wide hook slot *)\nlet hook = ref None")

(* --- R7: printing from lib/ ------------------------------------------ *)

let test_r7_printing () =
  check_rules "print_endline flagged" [ "R7" ]
    (lint ~relpath:"lib/core/x.ml" {|let f () = print_endline "hi"|});
  check_rules "Printf.printf flagged" [ "R7" ]
    (lint ~relpath:"lib/core/x.ml" {|let g n = Printf.printf "%d" n|});
  check_rules "fprintf on a caller formatter is fine" []
    (lint ~relpath:"lib/core/x.ml" {|let h ppf = Format.fprintf ppf "x"|});
  check_rules "bin/ may print" []
    (lint ~relpath:"bin/armvirt.ml" {|let f () = print_endline "hi"|})

(* --- U1: incompatible units ------------------------------------------ *)

let test_u1_incompatible_units () =
  check_rules "additive mix flagged" [ "U1" ]
    (lint ~relpath:"lib/net/x.ml"
       "let mix link_gbps cost_cycles = link_gbps + cost_cycles");
  check_rules "comparison mix flagged" [ "U1" ]
    (lint ~relpath:"lib/migrate/x.ml" "let f a_us b_cycles = a_us < b_cycles");
  check_rules "binding mix flagged" [ "U1" ]
    (lint ~relpath:"lib/migrate/x.ml"
       "let f x_us = let y_cycles = x_us in y_cycles");
  check_rules "record field mix flagged" [ "U1" ]
    (lint ~relpath:"lib/net/x.ml"
       "let f wire_gbps = { Profile.budget_cycles = wire_gbps }");
  check_rules "labelled argument mix flagged" [ "U1" ]
    (lint ~relpath:"lib/net/x.ml" "let f g len_kb = g ~bytes:len_kb");
  check_rules "converter payload mix flagged" [ "U1" ]
    (lint ~relpath:"lib/migrate/x.ml" "let f x_bytes = Cycles.of_us x_bytes");
  check_rules "field access carries its unit" [ "U1" ]
    (lint ~relpath:"lib/net/x.ml"
       "let f t budget_cycles = t.Plan.bandwidth_gbps + budget_cycles");
  check_rules "same unit is fine" []
    (lint ~relpath:"lib/net/x.ml" "let f a_us b_us = a_us +. b_us");
  check_rules "converter used correctly is fine" []
    (lint ~relpath:"lib/migrate/x.ml"
       "let f x_us = let y_cycles = Cycles.of_us x_us in y_cycles");
  check_rules "named gbps converter is fine" []
    (lint ~relpath:"lib/net/x.ml"
       "let f link_gbps =\n\
       \  let wire_cycles = cycles_of_gbps link_gbps in\n\
       \  wire_cycles");
  check_rules "rates stay untracked" []
    (lint ~relpath:"lib/net/x.ml"
       "let f total_cycles cycles_per_byte = total_cycles + cycles_per_byte");
  check_rules "multiplication changes dimension, untracked" []
    (lint ~relpath:"lib/net/x.ml"
       "let f n_bytes rate_gbps = let x = n_bytes * 8 in x + (n_bytes * 2)");
  check_rules "out of lib/ unflagged" []
    (lint ~relpath:"bin/x.ml" "let mix a_gbps b_cycles = a_gbps + b_cycles")

let test_u1_suppressed () =
  let r =
    lint ~relpath:"lib/net/x.ml"
      "let f a_us b_cycles =\n\
       \  (* lint: unit us checked reinterpretation *)\n\
       \  a_us + b_cycles"
  in
  check_rules "audited unit site suppressed" [] r;
  Alcotest.(check int) "counted as suppressed" 1 r.Engine.suppressed

(* --- U2: unit-less literals ------------------------------------------ *)

let test_u2_literals () =
  check_rules "literal added to us flagged" [ "U2" ]
    (lint ~relpath:"lib/migrate/x.ml" "let f t_us = t_us +. 3.0");
  check_rules "literal compared with gbps flagged" [ "U2" ]
    (lint ~relpath:"lib/net/x.ml" "let f rate_gbps = rate_gbps < 9.0");
  check_rules "zero is unit-polymorphic" []
    (lint ~relpath:"lib/net/x.ml" "let f rate_gbps = rate_gbps > 0.0");
  check_rules "one is the counting idiom" []
    (lint ~relpath:"lib/mem/x.ml" "let f n_bytes = n_bytes + 1");
  check_rules "minus one exempt" []
    (lint ~relpath:"lib/mem/x.ml"
       "let f n_bytes page_bytes = (n_bytes + page_bytes - 1) / page_bytes");
  check_rules "literal at unit-suffixed declaration is the entry point" []
    (lint ~relpath:"lib/migrate/x.ml" "let timeout_us = 250.0");
  check_rules "literal through a named converter is sanctioned" []
    (lint ~relpath:"lib/migrate/x.ml" "let f hz = Cycles.of_us ~hz 2.0")

(* --- M1: marker grammar ---------------------------------------------- *)

let test_m1_literal_labels () =
  check_rules "well-formed exit passes" []
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m = Machine.count m "kvm_arm.exit/hvc/p0"|});
  check_rules "entry with domain passes" []
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m = Machine.count m "xen_arm.entry/p2/d7"|});
  check_rules "op counter passes" []
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m = Machine.count m "kvm_arm.hypercall"|});
  check_rules "vswitch format literal passes via hole neutralization" []
    (lint ~relpath:"lib/vswitch/x.ml"
       {|let f c = c "vswitch.%s/p%d/rx" && c "wire.%s-u%d/tx"|});
  check_rules "unknown exit reason flagged" [ "M1" ]
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m = Machine.count m "kvm_arm.exit/hvcc/p0"|});
  check_rules "missing pcpu parses as op and is flagged" [ "M1" ]
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m = Machine.count m "kvm_arm.exit/hvc"|});
  check_rules "dotless label flagged" [ "M1" ]
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m = Machine.count m "hypercall"|});
  check_rules "malformed vswitch counter flagged" [ "M1" ]
    (lint ~relpath:"lib/vswitch/x.ml"
       {|let f m = Machine.count m "vswitch.s0/rx"|});
  check_rules "opaque computed label flagged" [ "M1" ]
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m h = Machine.count m (h ^ ".exit/hvc/p0")|});
  check_rules "marker sites outside lib/ unscanned" []
    (lint ~relpath:"bench/x.ml"
       {|let f m = Machine.count m "kvm_arm.exit/hvcc/p0"|})

let test_m1_builders () =
  check_rules "builder application trusted" []
    (lint ~relpath:"lib/hypervisor/x.ml"
       {|let f m r = Machine.count m (Marker.exit ~hyp:"kvm_arm" ~reason:r ~pcpu:0)|});
  check_rules "accounting alias trusted" []
    (lint ~relpath:"lib/fleet/x.ml"
       {|let f m p = Machine.count m (Accounting.entry_label ~hyp:"xen_arm" ~pcpu:p ())|});
  check_rules "builder literal reason cross-checked" [ "M1" ]
    (lint ~relpath:"lib/fleet/x.ml"
       {|let f m = Machine.count m (Marker.exit_name ~hyp:"kvm_arm" ~reason:"hvcc" ~pcpu:0)|});
  check_rules "builder literal hyp cross-checked" [ "M1" ]
    (lint ~relpath:"lib/fleet/x.ml"
       {|let f m = Machine.count m (Marker.entry ~hyp:"Bad.Hyp" ~pcpu:0 ())|})

(* --- D1: cross-domain capture ---------------------------------------- *)

let test_d1_capture () =
  check_rules "captured toplevel ref flagged" [ "R6"; "D1" ]
    (lint ~relpath:"lib/explore/x.ml"
       "let tally = ref 0\nlet fan xs = Runner.map (fun x -> tally := x) xs");
  check_rules "audited R6 global still races under fan-out" [ "D1" ]
    (lint ~relpath:"lib/explore/x.ml"
       "(* lint: allow R6 hook slot *)\n\
        let hook = ref None\n\
        let fan xs = Runner.map (fun x -> hook := Some x; x) xs");
  check_rules "unreferenced toplevel state is R6's business only" [ "R6" ]
    (lint ~relpath:"lib/explore/x.ml"
       "let tally = ref 0\nlet fan xs = Runner.map (fun x -> x + 1) xs");
  check_rules "closure-local ref is fine" []
    (lint ~relpath:"lib/explore/x.ml"
       "let fan xs = Runner.map (fun x -> let acc = ref x in !acc) xs");
  check_rules "registry modules exempt by scoping" []
    (lint ~rules:[ Rules.D1 ] ~relpath:"lib/obs/metrics.ml"
       "let reg = Hashtbl.create 16\n\
        let fan xs = Runner.map (fun x -> Hashtbl.hash reg + x) xs")

(* --- suppression and selection mechanics ----------------------------- *)

let test_file_wide_disable () =
  check_rules "file-wide disable" []
    (lint ~relpath:"lib/core/x.ml"
       "(* lint: disable R7 *)\nlet f () = print_endline \"hi\"");
  check_rules "disable only silences listed rules" [ "R1" ]
    (lint ~relpath:"lib/core/x.ml"
       "(* lint: disable R7 *)\nlet f () = Random.bits ()")

let test_rule_selection () =
  let src = "let f () = print_endline (string_of_int (Random.bits ()))" in
  (* same line: ordered by column, print_endline first *)
  check_rules "all rules" [ "R7"; "R1" ] (lint ~relpath:"lib/core/x.ml" src);
  check_rules "only R1"
    [ "R1" ]
    (lint ~rules:[ Rules.R1 ] ~relpath:"lib/core/x.ml" src);
  check_rules "only R7"
    [ "R7" ]
    (lint ~rules:[ Rules.R7 ] ~relpath:"lib/core/x.ml" src)

let test_findings_sorted () =
  let r =
    lint ~relpath:"lib/core/x.ml"
      "let a () = print_endline \"x\"\n\
       let b = ref 0\n\
       let c () = Random.bits ()"
  in
  check_rules "sorted by line" [ "R7"; "R6"; "R1" ] r

let test_parse_error () =
  Alcotest.check_raises "syntax error raises"
    (Engine.Parse_error "lib/core/x.ml: Syntaxerr.Error(_)")
    (fun () ->
      try ignore (lint ~relpath:"lib/core/x.ml" "let let let")
      with Engine.Parse_error _ ->
        raise (Engine.Parse_error "lib/core/x.ml: Syntaxerr.Error(_)"))

(* --- pass registration ------------------------------------------------ *)

let test_pass_registration () =
  Alcotest.(check (list string))
    "registration order" [ "determinism"; "units"; "markers"; "capture" ]
    (List.map (fun (p : Armvirt_lint.Pass.t) -> p.Armvirt_lint.Pass.name)
       Engine.passes);
  Alcotest.(check string) "U1 owned by units" "units" (Engine.pass_of_rule Rules.U1);
  Alcotest.(check string) "M1 owned by markers" "markers"
    (Engine.pass_of_rule Rules.M1);
  Alcotest.(check string) "D1 owned by capture" "capture"
    (Engine.pass_of_rule Rules.D1);
  Alcotest.(check string) "R3 owned by determinism" "determinism"
    (Engine.pass_of_rule Rules.R3);
  (* every rule has a long-form rationale for --explain *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "explain %s nonempty" (Rules.to_string r))
        true
        (String.length (Rules.explain r) > 80))
    Rules.all

let test_per_pass_timing () =
  let r =
    lint ~relpath:"lib/hypervisor/x.ml"
      {|let f m = Machine.count m "kvm_arm.hypercall"|}
  in
  let names = List.map fst r.Engine.timings in
  Alcotest.(check (list string))
    "every relevant pass timed" [ "determinism"; "units"; "markers"; "capture" ]
    names;
  (* scoping skips passes wholesale: only determinism applies in bench/ *)
  let r = lint ~relpath:"bench/x.ml" "let f x = x" in
  Alcotest.(check (list string))
    "bench scoping skips unit/marker/capture passes" [ "determinism" ]
    (List.map fst r.Engine.timings)

(* --- the baseline ratchet --------------------------------------------- *)

let finding rule file line =
  { Engine.rule; file; line; col = 0; message = "m" }

let entry = Alcotest.testable
    (fun ppf (e : Baseline.entry) ->
      Format.fprintf ppf "%s/%s=%d" e.Baseline.file
        (Rules.to_string e.Baseline.rule)
        e.Baseline.count)
    ( = )

let test_baseline_ratchet () =
  let today =
    [ finding Rules.R6 "lib/a.ml" 3; finding Rules.R6 "lib/a.ml" 9 ]
  in
  let base = Baseline.of_findings today in
  Alcotest.(check (list entry))
    "counts collapse per (file, rule)"
    [ { Baseline.file = "lib/a.ml"; rule = Rules.R6; count = 2 } ]
    base;
  let v = Baseline.check base today in
  Alcotest.(check int) "same tree: nothing fresh" 0 (List.length v.Baseline.fresh);
  Alcotest.(check int) "same tree: all grandfathered" 2
    (List.length v.Baseline.grandfathered);
  Alcotest.(check (list entry)) "same tree: no residue" [] v.Baseline.stale;
  (* growth: the finding beyond the quota is fresh *)
  let v = Baseline.check base (finding Rules.R6 "lib/a.ml" 20 :: today) in
  Alcotest.(check int) "growth is fresh" 1 (List.length v.Baseline.fresh);
  Alcotest.(check int) "quota still grandfathers" 2
    (List.length v.Baseline.grandfathered);
  (* a different rule in the same file has no quota *)
  let v = Baseline.check base (finding Rules.R1 "lib/a.ml" 3 :: today) in
  Alcotest.(check int) "other rule is fresh" 1 (List.length v.Baseline.fresh);
  (* shrinkage: unconsumed quota is stale until committed *)
  let v = Baseline.check base [ finding Rules.R6 "lib/a.ml" 3 ] in
  Alcotest.(check (list entry))
    "residue reported"
    [ { Baseline.file = "lib/a.ml"; rule = Rules.R6; count = 1 } ]
    v.Baseline.stale

let test_baseline_round_trip () =
  let base =
    Baseline.of_findings
      [
        finding Rules.R6 "lib/a.ml" 3;
        finding Rules.U1 "lib/b.ml" 1;
        finding Rules.R6 "lib/a.ml" 9;
      ]
  in
  (match Baseline.parse (Baseline.render base) with
  | Ok parsed -> Alcotest.(check (list entry)) "round-trips" base parsed
  | Error e -> Alcotest.fail ("parse failed: " ^ e));
  (match Baseline.parse {|{ "version": 9, "entries": [] }|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted");
  (match Baseline.parse {|{ "version": 1, "entries": [ { "file": "a", "rule": "ZZ", "count": 1 } ] }|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule accepted");
  match Baseline.parse (Baseline.render Baseline.empty) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty baseline grew entries"
  | Error e -> Alcotest.fail ("empty baseline unparseable: " ^ e)

(* --- report formats --------------------------------------------------- *)

let fixture_report () =
  let src =
    "let seed () = Random.int 7\nlet now () = Unix.gettimeofday ()\n"
  in
  let r = lint ~relpath:"lib/demo/fixture.ml" src in
  let passes =
    [
      {
        Report.pass = "determinism";
        pass_rules = Rules.[ R1; R2; R3; R4; R5; R6; R7 ];
        duration_ms = 0.;
        pass_findings = 2;
      };
    ]
  in
  Report.of_findings ~passes ~root:"." ~files_scanned:1
    ~suppressed:r.Engine.suppressed r.Engine.findings

let golden_json =
  {|{
  "version": 2,
  "root": ".",
  "files_scanned": 1,
  "suppressed": 0,
  "passes": [
    { "name": "determinism", "rules": ["R1", "R2", "R3", "R4", "R5", "R6", "R7"], "duration_ms": 0.000, "findings": 2 }
  ],
  "baseline": { "fresh": 2, "grandfathered": 0, "stale": 0 },
  "findings": [
    { "file": "lib/demo/fixture.ml", "line": 1, "col": 14, "rule": "R1", "pass": "determinism", "severity": "error", "status": "fresh", "message": "use of Random.int: all randomness must flow through seeded Engine.Rng", "hint": "draw through a seeded Engine.Rng stream (Rng.split per consumer)" },
    { "file": "lib/demo/fixture.ml", "line": 2, "col": 13, "rule": "R2", "pass": "determinism", "severity": "error", "status": "fresh", "message": "wall-clock/process-entropy call Unix.gettimeofday breaks run-to-run reproducibility", "hint": "simulated time comes from Engine.Cycles/Sim.now; host wall-clock belongs in bench/ only" }
  ]
}
|}

let test_json_golden () =
  Alcotest.(check string)
    "json golden" golden_json
    (Report.render Report.Json (fixture_report ()))

let test_csv_and_text () =
  let report = fixture_report () in
  let csv = Report.render Report.Csv report in
  let header = "file,line,col,rule,severity,status,message\n" in
  Alcotest.(check string)
    "csv header" header
    (String.sub csv 0 (String.length header));
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "csv rows" 4 (List.length lines);
  (* header + 2 findings + trailing newline *)
  let has s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "csv rows tagged fresh" true (has csv ",fresh,");
  let text = Report.render Report.Text report in
  Alcotest.(check bool)
    "text mentions both rules and the pass table" true
    (has text "[R1]" && has text "[R2]" && has text "2 findings"
    && has text "pass determinism")

let test_grandfathered_render () =
  let f = finding Rules.R6 "lib/a.ml" 3 in
  let report =
    {
      (Report.of_findings ~root:"." ~files_scanned:1 ~suppressed:0 [ f ]) with
      Report.findings = [ (f, Report.Grandfathered) ];
      stale = [ { Baseline.file = "lib/b.ml"; rule = Rules.U1; count = 2 } ];
    }
  in
  Alcotest.(check int) "nothing fresh" 0 (List.length (Report.fresh report));
  Alcotest.(check bool) "stale residue blocks a clean exit" false
    (Report.clean report);
  let has s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  let text = Report.render Report.Text report in
  Alcotest.(check bool) "grandfathered tag rendered" true
    (has text "grandfathered[R6]");
  Alcotest.(check bool) "stale residue rendered" true (has text "stale[U1]");
  let json = Report.render Report.Json report in
  Alcotest.(check bool) "json counts the verdict" true
    (has json {|"baseline": { "fresh": 0, "grandfathered": 1, "stale": 1 }|})

let test_render_deterministic () =
  let a = Report.render Report.Json (fixture_report ()) in
  let b = Report.render Report.Json (fixture_report ()) in
  Alcotest.(check string) "byte-identical" a b

(* --- the meta-tests: this repo is lint-clean at HEAD ------------------ *)

let test_repo_is_lint_clean () =
  let root = Driver.find_root () in
  let files = Driver.scan_files ~root in
  Alcotest.(check bool)
    (Printf.sprintf "scans a real tree (%d files)" (List.length files))
    true
    (List.length files > 100);
  let report = Driver.lint_tree ~root () in
  List.iter
    (fun (f : Engine.finding) ->
      Printf.eprintf "unexpected finding: %s:%d [%s] %s\n%!" f.file f.line
        (Rules.to_string f.rule) f.message)
    (Report.fresh report);
  Alcotest.(check int) "zero unsuppressed findings" 0
    (List.length (Report.fresh report));
  Alcotest.(check bool)
    "audited sites are marked, not silently dropped" true
    (report.Report.suppressed > 0)

let test_committed_baseline_is_clean () =
  (* The acceptance criterion: LINT_baseline.json self-checks at HEAD —
     it parses, and the tree produces neither fresh findings beyond it
     nor stale residue under it. *)
  let root = Driver.find_root () in
  match Baseline.load (Filename.concat root "LINT_baseline.json") with
  | Error e -> Alcotest.fail ("committed baseline unreadable: " ^ e)
  | Ok baseline ->
      let report = Driver.lint_tree ~baseline ~root () in
      List.iter
        (fun (f : Engine.finding) ->
          Printf.eprintf "fresh beyond baseline: %s:%d [%s] %s\n%!" f.file
            f.line (Rules.to_string f.rule) f.message)
        (Report.fresh report);
      List.iter
        (fun (e : Baseline.entry) ->
          Printf.eprintf "stale baseline residue: %s [%s] x%d\n%!"
            e.Baseline.file
            (Rules.to_string e.Baseline.rule)
            e.Baseline.count)
        report.Report.stale;
      Alcotest.(check bool) "baseline self-check clean" true
        (Report.clean report)

let test_repo_gate_catches_injection () =
  (* The invariant CI relies on: were a forbidden call, a mixed-unit
     expression, a malformed marker or a cross-domain capture introduced
     in a scanned module, the same gate that is clean today would fail. *)
  let root = Driver.find_root () in
  let clean = Driver.lint_tree ~root () in
  let seeded =
    lint ~relpath:"lib/hypervisor/kvm_arm.ml"
      "let jitter () = Random.int 100\n\
       let d f = Domain.spawn f\n\
       let mix link_gbps cost_cycles = link_gbps + cost_cycles\n\
       let mark m = Machine.count m \"kvm_arm.exit/hvcc/p0\"\n\
       let tally = ref 0\n\
       let fan xs = Runner.map (fun x -> tally := x) xs"
  in
  Alcotest.(check (list string))
    "injected violations caught across all four passes"
    [ "R1"; "R4"; "U1"; "M1"; "R6"; "D1" ]
    (rule_ids seeded);
  Alcotest.(check int) "today's tree stays the baseline" 0
    (List.length (Report.fresh clean))

let () =
  Alcotest.run "lint"
    [
      ( "determinism",
        [
          Alcotest.test_case "R1 random" `Quick test_r1_random;
          Alcotest.test_case "R2 wall clock" `Quick test_r2_wall_clock;
          Alcotest.test_case "R3 hashtbl order" `Quick test_r3_hashtbl_order;
          Alcotest.test_case "R4 domain" `Quick test_r4_domain;
          Alcotest.test_case "R5 poly compare" `Quick test_r5_poly_compare;
          Alcotest.test_case "R6 top-level state" `Quick
            test_r6_top_level_state;
          Alcotest.test_case "R7 printing" `Quick test_r7_printing;
        ] );
      ( "units",
        [
          Alcotest.test_case "U1 incompatible units" `Quick
            test_u1_incompatible_units;
          Alcotest.test_case "U1 suppressed" `Quick test_u1_suppressed;
          Alcotest.test_case "U2 literals" `Quick test_u2_literals;
        ] );
      ( "markers",
        [
          Alcotest.test_case "M1 literal labels" `Quick test_m1_literal_labels;
          Alcotest.test_case "M1 builders" `Quick test_m1_builders;
        ] );
      ( "capture",
        [ Alcotest.test_case "D1 capture" `Quick test_d1_capture ] );
      ( "mechanics",
        [
          Alcotest.test_case "file-wide disable" `Quick test_file_wide_disable;
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "pass registration" `Quick test_pass_registration;
          Alcotest.test_case "per-pass timing" `Quick test_per_pass_timing;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "ratchet semantics" `Quick test_baseline_ratchet;
          Alcotest.test_case "render/parse round trip" `Quick
            test_baseline_round_trip;
        ] );
      ( "report",
        [
          Alcotest.test_case "json v2 golden" `Quick test_json_golden;
          Alcotest.test_case "csv and text" `Quick test_csv_and_text;
          Alcotest.test_case "grandfathered and stale" `Quick
            test_grandfathered_render;
          Alcotest.test_case "render deterministic" `Quick
            test_render_deterministic;
        ] );
      ( "meta",
        [
          Alcotest.test_case "repo is lint-clean" `Quick
            test_repo_is_lint_clean;
          Alcotest.test_case "committed baseline self-checks" `Quick
            test_committed_baseline_is_clean;
          Alcotest.test_case "gate catches injected violations" `Quick
            test_repo_gate_catches_injection;
        ] );
    ]
