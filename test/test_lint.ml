(* Tests for Armvirt_lint: per-rule positive/negative/suppressed fixtures,
   the JSON report golden, CLI rule selection, and the meta-test that the
   repo's own lib/, bin/ and bench/ trees are lint-clean. *)

module Rules = Armvirt_lint.Rules
module Engine = Armvirt_lint.Engine
module Report = Armvirt_lint.Report
module Driver = Armvirt_lint.Driver

let lint ?rules ~relpath src = Engine.lint_source ?rules ~relpath src

let rule_ids (r : Engine.result) =
  List.map (fun (f : Engine.finding) -> Rules.to_string f.rule) r.findings

let check_rules name expected r =
  Alcotest.(check (list string)) name expected (rule_ids r)

(* --- R1: stdlib Random --------------------------------------------- *)

let test_r1_random () =
  check_rules "flagged" [ "R1" ]
    (lint ~relpath:"lib/workloads/x.ml" "let x = Random.int 7");
  check_rules "deep path flagged" [ "R1" ]
    (lint ~relpath:"lib/workloads/x.ml" "let s = Random.State.make [| 3 |]");
  check_rules "module alias flagged" [ "R1" ]
    (lint ~relpath:"lib/workloads/x.ml" "module R = Random");
  check_rules "allowlisted in rng.ml" []
    (lint ~relpath:"lib/engine/rng.ml" "let x = Random.int 7");
  check_rules "Engine.Rng is fine" []
    (lint ~relpath:"lib/workloads/x.ml" "let x r = Engine.Rng.int r 7")

(* --- R2: wall clock ------------------------------------------------- *)

let test_r2_wall_clock () =
  check_rules "gettimeofday flagged" [ "R2" ]
    (lint ~relpath:"lib/core/x.ml" "let now () = Unix.gettimeofday ()");
  check_rules "Sys.time flagged" [ "R2" ]
    (lint ~relpath:"lib/core/x.ml" "let t () = Sys.time ()");
  (* self_init is both entropy (R2) and stdlib Random (R1) *)
  check_rules "self_init double-flagged" [ "R1"; "R2" ]
    (lint ~relpath:"lib/core/x.ml" "let () = Random.self_init ()");
  check_rules "bench may use wall clock" []
    (lint ~relpath:"bench/main.ml" "let now () = Unix.gettimeofday ()")

(* --- R3: Hashtbl iteration order ------------------------------------ *)

let test_r3_hashtbl_order () =
  check_rules "bare iter flagged" [ "R3" ]
    (lint ~relpath:"lib/io/x.ml" "let dump t f = Hashtbl.iter f t");
  check_rules "fold into sort accepted" []
    (lint ~relpath:"lib/io/x.ml"
       "let keys t =\n\
       \  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort \
        Int.compare");
  check_rules "sort elsewhere in same definition accepted" []
    (lint ~relpath:"lib/io/x.ml"
       "let keys t =\n\
       \  let raw = Hashtbl.fold (fun k _ acc -> k :: acc) t [] in\n\
       \  List.sort_uniq Int.compare raw");
  let suppressed =
    lint ~relpath:"lib/io/x.ml"
      "let count t =\n\
       \  (* lint: sorted *)\n\
       \  Hashtbl.fold (fun _ _ acc -> acc + 1) t 0"
  in
  check_rules "audited site suppressed" [] suppressed;
  Alcotest.(check int) "counted as suppressed" 1 suppressed.Engine.suppressed

(* --- R4: Domain outside the runner ----------------------------------- *)

let test_r4_domain () =
  check_rules "spawn flagged" [ "R4" ]
    (lint ~relpath:"lib/explore/x.ml" "let d f = Domain.spawn f");
  check_rules "join flagged" [ "R4" ]
    (lint ~relpath:"lib/explore/x.ml" "let j d = Domain.join d");
  check_rules "runner.ml allowlisted" []
    (lint ~relpath:"lib/core/runner.ml" "let d f = Domain.spawn f");
  check_rules "DLS is fine" []
    (lint ~relpath:"lib/explore/x.ml"
       "let k = Domain.DLS.new_key (fun () -> 0)")

(* --- R5: polymorphic compare --------------------------------------- *)

let test_r5_poly_compare () =
  check_rules "bare compare flagged" [ "R5" ]
    (lint ~relpath:"lib/engine/x.ml" "let c (a : float) b = compare a b");
  check_rules "Stdlib.compare flagged" [ "R5" ]
    (lint ~relpath:"lib/stats/x.ml" "let s l = List.sort Stdlib.compare l");
  check_rules "float-literal equality flagged" [ "R5" ]
    (lint ~relpath:"lib/stats/x.ml" "let z x = x = 0.0");
  check_rules "lambda equality flagged" [ "R5" ]
    (lint ~relpath:"lib/engine/x.ml" "let bad f = f = fun x -> x");
  check_rules "Float.compare is fine" []
    (lint ~relpath:"lib/engine/x.ml" "let c a b = Float.compare a b");
  check_rules "out of scope dirs unflagged" []
    (lint ~relpath:"lib/mem/x.ml" "let z x = x = 0.0")

(* --- R6: top-level mutable state ------------------------------------ *)

let test_r6_top_level_state () =
  check_rules "top-level Hashtbl flagged" [ "R6" ]
    (lint ~relpath:"lib/gic/x.ml" "let cache = Hashtbl.create 16");
  check_rules "top-level ref flagged" [ "R6" ]
    (lint ~relpath:"lib/gic/x.ml" "let hits = ref 0");
  check_rules "constrained ref flagged" [ "R6" ]
    (lint ~relpath:"lib/gic/x.ml" "let h : int list ref = ref []");
  check_rules "function allocating per call is fine" []
    (lint ~relpath:"lib/gic/x.ml" "let create () = Hashtbl.create 16");
  check_rules "metrics registry allowlisted" []
    (lint ~relpath:"lib/obs/metrics.ml" "let reg = Hashtbl.create 16");
  check_rules "audited global suppressed" []
    (lint ~relpath:"lib/gic/x.ml"
       "(* lint: allow R6 process-wide hook slot *)\nlet hook = ref None")

(* --- R7: printing from lib/ ------------------------------------------ *)

let test_r7_printing () =
  check_rules "print_endline flagged" [ "R7" ]
    (lint ~relpath:"lib/core/x.ml" {|let f () = print_endline "hi"|});
  check_rules "Printf.printf flagged" [ "R7" ]
    (lint ~relpath:"lib/core/x.ml" {|let g n = Printf.printf "%d" n|});
  check_rules "fprintf on a caller formatter is fine" []
    (lint ~relpath:"lib/core/x.ml" {|let h ppf = Format.fprintf ppf "x"|});
  check_rules "bin/ may print" []
    (lint ~relpath:"bin/armvirt.ml" {|let f () = print_endline "hi"|})

(* --- suppression and selection mechanics ----------------------------- *)

let test_file_wide_disable () =
  check_rules "file-wide disable" []
    (lint ~relpath:"lib/core/x.ml"
       "(* lint: disable R7 *)\nlet f () = print_endline \"hi\"");
  check_rules "disable only silences listed rules" [ "R1" ]
    (lint ~relpath:"lib/core/x.ml"
       "(* lint: disable R7 *)\nlet f () = Random.bits ()")

let test_rule_selection () =
  let src = "let f () = print_endline (string_of_int (Random.bits ()))" in
  (* same line: ordered by column, print_endline first *)
  check_rules "all rules" [ "R7"; "R1" ] (lint ~relpath:"lib/core/x.ml" src);
  check_rules "only R1"
    [ "R1" ]
    (lint ~rules:[ Rules.R1 ] ~relpath:"lib/core/x.ml" src);
  check_rules "only R7"
    [ "R7" ]
    (lint ~rules:[ Rules.R7 ] ~relpath:"lib/core/x.ml" src)

let test_findings_sorted () =
  let r =
    lint ~relpath:"lib/core/x.ml"
      "let a () = print_endline \"x\"\n\
       let b = ref 0\n\
       let c () = Random.bits ()"
  in
  check_rules "sorted by line" [ "R7"; "R6"; "R1" ] r

let test_parse_error () =
  Alcotest.check_raises "syntax error raises"
    (Engine.Parse_error "lib/core/x.ml: Syntaxerr.Error(_)")
    (fun () ->
      try ignore (lint ~relpath:"lib/core/x.ml" "let let let")
      with Engine.Parse_error _ ->
        raise (Engine.Parse_error "lib/core/x.ml: Syntaxerr.Error(_)"))

(* --- report formats -------------------------------------------------- *)

let fixture_report () =
  let src =
    "let seed () = Random.int 7\nlet now () = Unix.gettimeofday ()\n"
  in
  let r = lint ~relpath:"lib/demo/fixture.ml" src in
  {
    Report.root = ".";
    files_scanned = 1;
    findings = r.Engine.findings;
    suppressed = r.Engine.suppressed;
  }

let golden_json =
  {|{
  "version": 1,
  "root": ".",
  "files_scanned": 1,
  "suppressed": 0,
  "findings": [
    { "file": "lib/demo/fixture.ml", "line": 1, "col": 14, "rule": "R1", "severity": "error", "message": "use of Random.int: all randomness must flow through seeded Engine.Rng", "hint": "draw through a seeded Engine.Rng stream (Rng.split per consumer)" },
    { "file": "lib/demo/fixture.ml", "line": 2, "col": 13, "rule": "R2", "severity": "error", "message": "wall-clock/process-entropy call Unix.gettimeofday breaks run-to-run reproducibility", "hint": "simulated time comes from Engine.Cycles/Sim.now; host wall-clock belongs in bench/ only" }
  ]
}
|}

let test_json_golden () =
  Alcotest.(check string)
    "json golden" golden_json
    (Report.render Report.Json (fixture_report ()))

let test_csv_and_text () =
  let report = fixture_report () in
  let csv = Report.render Report.Csv report in
  Alcotest.(check bool)
    "csv header" true
    (String.length csv > 0
    && String.sub csv 0 37 = "file,line,col,rule,severity,message\n\
                              l");
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "csv rows" 4 (List.length lines);
  (* header + 2 findings + trailing newline *)
  let text = Report.render Report.Text report in
  Alcotest.(check bool)
    "text mentions both rules" true
    (let has s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     has text "[R1]" && has text "[R2]" && has text "2 findings")

let test_render_deterministic () =
  let a = Report.render Report.Json (fixture_report ()) in
  let b = Report.render Report.Json (fixture_report ()) in
  Alcotest.(check string) "byte-identical" a b

(* --- the meta-test: this repo is lint-clean -------------------------- *)

let test_repo_is_lint_clean () =
  let root = Driver.find_root () in
  let files = Driver.scan_files ~root in
  Alcotest.(check bool)
    (Printf.sprintf "scans a real tree (%d files)" (List.length files))
    true
    (List.length files > 100);
  let report = Driver.lint_tree ~root () in
  List.iter
    (fun (f : Engine.finding) ->
      Printf.eprintf "unexpected finding: %s:%d [%s] %s\n%!" f.file f.line
        (Rules.to_string f.rule) f.message)
    report.Report.findings;
  Alcotest.(check int) "zero unsuppressed findings" 0
    (List.length report.Report.findings);
  Alcotest.(check bool)
    "audited sites are marked, not silently dropped" true
    (report.Report.suppressed > 0)

let test_repo_gate_catches_injection () =
  (* The invariant CI relies on: were a forbidden call introduced in a
     scanned module, the same pass that is clean today would fail. *)
  let root = Driver.find_root () in
  let clean = Driver.lint_tree ~root () in
  let seeded =
    Engine.lint_source ~relpath:"lib/hypervisor/kvm_arm.ml"
      "let jitter () = Random.int 100\nlet d f = Domain.spawn f"
  in
  Alcotest.(check (list string))
    "injected violations caught" [ "R1"; "R4" ]
    (rule_ids seeded);
  Alcotest.(check int) "today's tree stays the baseline" 0
    (List.length clean.Report.findings)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 random" `Quick test_r1_random;
          Alcotest.test_case "R2 wall clock" `Quick test_r2_wall_clock;
          Alcotest.test_case "R3 hashtbl order" `Quick test_r3_hashtbl_order;
          Alcotest.test_case "R4 domain" `Quick test_r4_domain;
          Alcotest.test_case "R5 poly compare" `Quick test_r5_poly_compare;
          Alcotest.test_case "R6 top-level state" `Quick
            test_r6_top_level_state;
          Alcotest.test_case "R7 printing" `Quick test_r7_printing;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "file-wide disable" `Quick test_file_wide_disable;
          Alcotest.test_case "rule selection" `Quick test_rule_selection;
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "report",
        [
          Alcotest.test_case "json golden" `Quick test_json_golden;
          Alcotest.test_case "csv and text" `Quick test_csv_and_text;
          Alcotest.test_case "render deterministic" `Quick
            test_render_deterministic;
        ] );
      ( "meta",
        [
          Alcotest.test_case "repo is lint-clean" `Quick
            test_repo_is_lint_clean;
          Alcotest.test_case "gate catches injected violations" `Quick
            test_repo_gate_catches_injection;
        ] );
    ]
