(* `armvirt stat` and its accounting layer: marker grammar, exit/entry
   pairing, lane attribution, renderer golden output, jobs-invariance,
   RFC 4180 CSV escaping, the trace-vs-analytic crosscheck, and the
   snapshot diff used for regression gating. *)

module Span = Armvirt_obs.Span
module Export = Armvirt_obs.Export
module Accounting = Armvirt_obs.Accounting
module Stat = Armvirt_obs.Stat
module Observe = Armvirt_core.Observe
module Runner = Armvirt_core.Runner
module Platform = Armvirt_core.Platform
module Stat_report = Armvirt_core.Stat_report
module W = Armvirt_workloads

(* --- marker grammar -------------------------------------------------- *)

let test_parse_label () =
  let exit_l = Accounting.exit_label ~hyp:"kvm_arm" ~reason:"hvc" ~pcpu:4 in
  Alcotest.(check string) "exit label" "kvm_arm.exit/hvc/p4" exit_l;
  (match Accounting.parse_label exit_l with
  | Some (Accounting.Exit { hyp; reason; pcpu }) ->
      Alcotest.(check string) "hyp" "kvm_arm" hyp;
      Alcotest.(check string) "reason" "hvc" reason;
      Alcotest.(check int) "pcpu" 4 pcpu
  | _ -> Alcotest.fail "exit label did not parse as Exit");
  let entry_l = Accounting.entry_label ~domid:0 ~hyp:"xen_arm" ~pcpu:5 () in
  Alcotest.(check string) "entry label" "xen_arm.entry/p5/d0" entry_l;
  (match Accounting.parse_label entry_l with
  | Some (Accounting.Entry { hyp; pcpu; domid }) ->
      Alcotest.(check string) "hyp" "xen_arm" hyp;
      Alcotest.(check int) "pcpu" 5 pcpu;
      Alcotest.(check (option int)) "domid" (Some 0) domid
  | _ -> Alcotest.fail "entry label did not parse as Entry");
  (match Accounting.parse_label "kvm_arm.vipi" with
  | Some (Accounting.Op { hyp; op }) ->
      Alcotest.(check string) "op hyp" "kvm_arm" hyp;
      Alcotest.(check string) "op name" "vipi" op
  | _ -> Alcotest.fail "dotted non-marker label should be an Op");
  Alcotest.(check bool)
    "dot-free labels are not markers" true
    (Accounting.parse_label "spawn" = None)

(* --- synthetic trace for pairing/lanes/renderers --------------------- *)

let ev ts name kind =
  (* Track "cpu" is machine "m0"; secondary machines are "m<N>:cpu". *)
  { Span.ts; track = "cpu"; cat = Span.of_label name; name; kind }

(* Two hvc exits on PCPU 4; only the first re-enters (latency 600), the
   second is still pending when the trace ends. One guest span and one
   hypervisor span feed the attribution lanes. *)
let synthetic_process =
  {
    Export.pid = 0;
    name = "cell#0.0";
    dropped = 0;
    events =
      [
        ev 100
          (Accounting.exit_label ~hyp:"kvm_arm" ~reason:"hvc" ~pcpu:4)
          Span.Instant;
        ev 150 "kvm_arm.host_dispatch" (Span.Complete 300);
        ev 700
          (Accounting.entry_label ~hyp:"kvm_arm" ~pcpu:4 ())
          Span.Instant;
        ev 800 "vm_processing" (Span.Complete 500);
        ev 1400
          (Accounting.exit_label ~hyp:"kvm_arm" ~reason:"hvc" ~pcpu:4)
          Span.Instant;
        ev 1450 "kvm_arm.vipi" Span.Instant;
      ];
  }

let synthetic_accounting () = Accounting.of_processes [ synthetic_process ]

let test_pairing_and_lanes () =
  let acct = synthetic_accounting () in
  let vm =
    match acct.Accounting.vms with
    | [ vm ] -> vm
    | vms ->
        Alcotest.failf "expected one vm_stats row, got %d" (List.length vms)
  in
  Alcotest.(check string) "machine" "m0" vm.Accounting.machine;
  Alcotest.(check string) "hyp" "kvm_arm" vm.Accounting.hyp;
  Alcotest.(check int) "entries" 1 vm.Accounting.entries;
  (match vm.Accounting.exits with
  | [ ("hvc", 2, hist) ] ->
      Alcotest.(check int) "latency samples" 1 hist.Accounting.count;
      Alcotest.(check int) "latency sum" 600 hist.Accounting.sum;
      Alcotest.(check int) "latency min" 600 hist.Accounting.min;
      Alcotest.(check int) "latency max" 600 hist.Accounting.max;
      Alcotest.(check (list (pair int int)))
        "log2 bucket: 600 lands at bound 1024" [ (1024, 1) ]
        hist.Accounting.buckets
  | _ -> Alcotest.fail "expected exactly [hvc x2]");
  Alcotest.(check (list (pair string int)))
    "ops" [ ("vipi", 1) ] vm.Accounting.ops;
  Alcotest.(check int) "guest cycles" 500 vm.Accounting.guest_cycles;
  Alcotest.(check int) "hypervisor cycles" 300 vm.Accounting.hyp_cycles;
  Alcotest.(check int) "total exits" 2 acct.Accounting.total_exits

let test_lane_rules () =
  List.iter
    (fun (label, expect) ->
      Alcotest.(check string)
        label
        (Accounting.lane_to_string expect)
        (Accounting.lane_to_string (Accounting.lane_of_label label)))
    [
      ("vm_processing", Accounting.Guest);
      ("native_server", Accounting.Guest);
      ("guest_compute", Accounting.Guest);
      ("kvm_arm.virq_complete", Accounting.Guest);
      ("eoi_vapic", Accounting.Guest);
      ("kvm_arm.host_dispatch", Accounting.Hypervisor);
      ("trap_to_el2", Accounting.Hypervisor);
      ("xen.switch", Accounting.Hypervisor);
    ]

(* --- renderer goldens ------------------------------------------------ *)

let render render_fn =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  render_fn fmt (synthetic_accounting ());
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* The armvirt.stat/v1 document for the synthetic trace, verbatim. If
   this changes shape, bump the schema string and the diff loader. *)
let golden_json =
  {|{
  "schema": "armvirt.stat/v1",
  "context": "golden",
  "vms": [
    {"cell": "cell#0.0", "machine": "m0", "hyp": "kvm_arm",
     "entries": 1,
     "exits": [{"reason": "hvc", "count": 2, "latency": {"count": 1, "sum": 600, "min": 600, "max": 600, "buckets": [[1024, 1]]}}],
     "ops": [{"op": "vipi", "count": 1}],
     "attribution": {"guest": 500, "hypervisor": 300}}
  ],
  "totals": {"guest": 500, "hypervisor": 300, "exits": 2}
}
|}

let test_golden_json () =
  let got = render (Stat.render_json ~context:"golden") in
  Alcotest.(check string) "armvirt.stat/v1 golden" golden_json got;
  match Stat.parse_json got with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "golden JSON does not re-parse: %s" e

let test_csv_render () =
  let got = render (Stat.render_csv ~context:"golden") in
  let lines = String.split_on_char '\n' got in
  Alcotest.(check string)
    "header" "kind,cell,machine,hyp,pcpu,name,count,lat_count,lat_sum,lat_min,lat_max"
    (List.hd lines);
  Alcotest.(check bool)
    "exit row present" true
    (List.exists
       (fun l -> l = "exit,cell#0.0,m0,kvm_arm,all,hvc,2,1,600,600,600")
       lines)

(* --- per-domain entry accounting (fleet traces) ----------------------- *)

(* A fleet-style trace: every entry marker carries d<domid>. Two guests
   time-share PCPU 0; a second entry for d0 lands on PCPU 1 with no
   pending exit, so it counts but contributes no latency sample. *)
let fleet_process =
  {
    Export.pid = 0;
    name = "fleet#0.0";
    dropped = 0;
    events =
      [
        ev 100
          (Accounting.exit_label ~hyp:"kvm_arm" ~reason:"hvc" ~pcpu:0)
          Span.Instant;
        ev 200
          (Accounting.entry_label ~domid:0 ~hyp:"kvm_arm" ~pcpu:0 ())
          Span.Instant;
        ev 300
          (Accounting.exit_label ~hyp:"kvm_arm" ~reason:"irq" ~pcpu:0)
          Span.Instant;
        ev 350
          (Accounting.entry_label ~domid:1 ~hyp:"kvm_arm" ~pcpu:0 ())
          Span.Instant;
        ev 400
          (Accounting.entry_label ~domid:0 ~hyp:"kvm_arm" ~pcpu:1 ())
          Span.Instant;
      ];
  }

let render_process ?opts p =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Stat.render_json ?opts ~context:"fleet-golden" fmt
    (Accounting.of_processes [ p ]);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let per_domain_opts = { Stat.default_options with Stat.per_domain = true }

(* Verbatim armvirt.stat/v1 with --per-domain: the one place the
   per_domain member may appear. *)
let fleet_golden_json =
  {|{
  "schema": "armvirt.stat/v1",
  "context": "fleet-golden",
  "vms": [
    {"cell": "fleet#0.0", "machine": "m0", "hyp": "kvm_arm",
     "entries": 3,
     "per_domain": [{"domid": 0, "entries": 2}, {"domid": 1, "entries": 1}],
     "exits": [{"reason": "hvc", "count": 1, "latency": {"count": 1, "sum": 100, "min": 100, "max": 100, "buckets": [[128, 1]]}}, {"reason": "irq", "count": 1, "latency": {"count": 1, "sum": 50, "min": 50, "max": 50, "buckets": [[64, 1]]}}],
     "ops": [],
     "attribution": {"guest": 0, "hypervisor": 0}}
  ],
  "totals": {"guest": 0, "hypervisor": 0, "exits": 2}
}
|}

let contains_substring haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_per_domain_golden () =
  let got = render_process ~opts:per_domain_opts fleet_process in
  Alcotest.(check string) "per-domain golden" fleet_golden_json got;
  (match Stat.parse_json got with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "per-domain golden does not re-parse: %s" e);
  (* Without the opt-in, the document must not grow the member — the
     pre-fleet golden above depends on it. *)
  let default = render_process fleet_process in
  Alcotest.(check bool)
    "per_domain absent by default" false
    (contains_substring default "per_domain")

let test_per_domain_diff () =
  let old_doc = render_process ~opts:per_domain_opts fleet_process in
  (match Stat.diff old_doc old_doc with
  | Ok [] -> ()
  | Ok fs -> Alcotest.failf "self-diff found %d findings" (List.length fs)
  | Error e -> Alcotest.failf "self-diff errored: %s" e);
  let perturbed =
    {
      fleet_process with
      Export.events =
        fleet_process.Export.events
        @ [
            ev 500
              (Accounting.entry_label ~domid:1 ~hyp:"kvm_arm" ~pcpu:1 ())
              Span.Instant;
          ];
    }
  in
  let new_doc = render_process ~opts:per_domain_opts perturbed in
  match Stat.diff old_doc new_doc with
  | Ok findings ->
      Alcotest.(check bool)
        "per-domain drift is a finding" true
        (List.exists
           (fun (f : Stat.finding) ->
             contains_substring f.Stat.path "per_domain[d1]")
           findings)
  | Error e -> Alcotest.failf "per-domain diff errored: %s" e

let test_per_domain_csv () =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Stat.render_csv ~opts:per_domain_opts ~context:"fleet-golden" fmt
    (Accounting.of_processes [ fleet_process ]);
  Format.pp_print_flush fmt ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "row %S present" expected)
        true
        (List.exists (fun l -> l = expected) lines))
    [
      "entry,fleet#0.0,m0,kvm_arm,all,d0,2,,,,";
      "entry,fleet#0.0,m0,kvm_arm,all,d1,1,,,,";
    ]

(* --- RFC 4180 CSV escaping (trace exporter regression) --------------- *)

let test_csv_escaping () =
  let evil = "a,b\"c\r\nd" in
  let p =
    {
      Export.pid = 0;
      name = evil;
      dropped = 0;
      events = [ ev 10 evil (Span.Complete 5) ];
    }
  in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Export.csv fmt [ p ];
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  (* Quoted, with the embedded quote doubled; the raw CR/LF must only
     ever appear inside a quoted field. *)
  Alcotest.(check bool)
    "field quoted with doubled quote" true
    (contains "\"a,b\"\"c\r\nd\"");
  Alcotest.(check bool) "unquoted evil field absent" false (contains ",a,b\"c")

(* --- jobs-invariance on a real workload ------------------------------ *)

let rr_stat_json () =
  Observe.enable ~context:"rr" ();
  Fun.protect ~finally:Observe.disable (fun () ->
      let (), cell =
        Observe.capture ~label:"rr#0.0" (fun () ->
            ignore
              (W.Netperf.run_tcp_rr ~transactions:100
                 (Platform.hypervisor Platform.Arm_m400 Platform.Kvm)))
      in
      Observe.record_cells [| cell |];
      let buf = Buffer.create 4096 in
      let fmt = Format.formatter_of_buffer buf in
      Stat.render_json ~context:"rr" fmt (Stat_report.of_session ());
      Format.pp_print_flush fmt ();
      Buffer.contents buf)

let test_jobs_invariance () =
  Runner.set_jobs 1;
  let a = rr_stat_json () in
  Runner.set_jobs 4;
  let b = rr_stat_json () in
  Runner.set_jobs 1;
  Alcotest.(check bool) "non-empty" true (String.length a > 0);
  Alcotest.(check string) "stat JSON byte-identical at --jobs 1 vs 4" a b

(* --- trace-vs-analytic crosscheck ------------------------------------ *)

let test_crosscheck () =
  let checks = Stat_report.crosscheck ~iterations:2 () in
  Alcotest.(check bool) "produced checks" true (List.length checks >= 30);
  List.iter
    (fun c ->
      if not (Stat_report.check_ok c) then
        Alcotest.failf "crosscheck failed: %s %s measured=%g expected=%g"
          c.Stat_report.model c.Stat_report.name c.Stat_report.measured
          c.Stat_report.expected)
    checks

(* --- snapshot diff --------------------------------------------------- *)

let test_diff () =
  let doc = render (Stat.render_json ~context:"golden") in
  (match Stat.diff doc doc with
  | Ok [] -> ()
  | Ok fs -> Alcotest.failf "self-diff found %d findings" (List.length fs)
  | Error e -> Alcotest.failf "self-diff errored: %s" e);
  (* Perturb the latency sum well past the 2% cycles threshold and the
     exit count past the 0% count threshold. *)
  let perturbed =
    {
      synthetic_process with
      Export.events =
        synthetic_process.Export.events
        @ [
            ev 2000
              (Accounting.exit_label ~hyp:"kvm_arm" ~reason:"hvc" ~pcpu:4)
              Span.Instant;
            ev 2100 "kvm_arm.host_dispatch" (Span.Complete 900);
          ];
    }
  in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Stat.render_json ~context:"golden" fmt
    (Accounting.of_processes [ perturbed ]);
  Format.pp_print_flush fmt ();
  (match Stat.diff doc (Buffer.contents buf) with
  | Ok [] -> Alcotest.fail "perturbation produced no findings"
  | Ok _ -> ()
  | Error e -> Alcotest.failf "perturbed diff errored: %s" e);
  match Stat.diff doc "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed input should be an Error"

let () =
  Alcotest.run "stat"
    [
      ( "accounting",
        [
          Alcotest.test_case "marker grammar" `Quick test_parse_label;
          Alcotest.test_case "pairing and lanes" `Quick
            test_pairing_and_lanes;
          Alcotest.test_case "lane rules" `Quick test_lane_rules;
        ] );
      ( "render",
        [
          Alcotest.test_case "golden armvirt.stat/v1" `Quick test_golden_json;
          Alcotest.test_case "csv" `Quick test_csv_render;
          Alcotest.test_case "csv escaping (RFC 4180)" `Quick
            test_csv_escaping;
        ] );
      ( "per-domain",
        [
          Alcotest.test_case "golden with --per-domain" `Quick
            test_per_domain_golden;
          Alcotest.test_case "diff covers per_domain" `Quick
            test_per_domain_diff;
          Alcotest.test_case "csv entry rows" `Quick test_per_domain_csv;
        ] );
      ( "session",
        [
          Alcotest.test_case "jobs-invariance (netperf-rr)" `Quick
            test_jobs_invariance;
          Alcotest.test_case "crosscheck vs analytic model" `Slow
            test_crosscheck;
        ] );
      ("diff", [ Alcotest.test_case "thresholded diff" `Quick test_diff ]);
    ]
