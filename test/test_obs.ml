(* Tests for Armvirt_obs (ring, spans, tracer, metrics, exporters) and
   the Observe/Runner tracing glue: golden files for the Chrome and
   Prometheus formats, histogram bucket boundaries, export determinism
   across --jobs levels, and the traced-off = seed invariant. *)

module Ring = Armvirt_obs.Ring
module Span = Armvirt_obs.Span
module Tracer = Armvirt_obs.Tracer
module Metrics = Armvirt_obs.Metrics
module Export = Armvirt_obs.Export
module Observe = Armvirt_core.Observe
module Runner = Armvirt_core.Runner
module Platform = Armvirt_core.Platform
module Machine = Armvirt_arch.Machine
module Sim = Armvirt_engine.Sim
module W = Armvirt_workloads

(* --- Ring ---------------------------------------------------------- *)

let test_ring_unbounded_chronological () =
  let r = Ring.create () in
  for i = 1 to 1000 do
    Ring.push r i
  done;
  Alcotest.(check int) "length" 1000 (Ring.length r);
  Alcotest.(check int) "dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "oldest first" (List.init 1000 (fun i -> i + 1))
    (Ring.to_list r)

let test_ring_capped_drops_oldest () =
  let r = Ring.create ~capacity:4 () in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check int) "length at cap" 4 (Ring.length r);
  Alcotest.(check int) "dropped" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "keeps newest, in order" [ 7; 8; 9; 10 ]
    (Ring.to_list r)

let test_ring_clear_and_reuse () =
  let r = Ring.create ~capacity:2 () in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Ring.clear r;
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Alcotest.(check int) "drop counter reset" 0 (Ring.dropped r);
  Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Ring.to_list r)

let test_ring_rejects_zero_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Ring.create: capacity < 1") (fun () ->
      ignore (Ring.create ~capacity:0 ()))

(* --- Span classification ------------------------------------------- *)

let test_span_of_label () =
  let check label expect =
    Alcotest.(check string) label
      (Span.category_to_string expect)
      (Span.category_to_string (Span.of_label label))
  in
  check "kvm_arm.vcpu_resume" Span.Vmexit;
  check "arm.hvc_to_el2" Span.Trap;
  check "netperf.irq_delivery" Span.Irq;
  check "netperf.host_rx_path" Span.Io;
  check "coldstart.page_map" Span.Stage2;
  check "xen_arm.dom0_upcall" Span.Vmexit;
  check "completely.unknown" Span.Other

let test_span_category_roundtrip () =
  List.iter
    (fun c ->
      match Span.category_of_string (Span.category_to_string c) with
      | Some c' ->
          Alcotest.(check string) "roundtrip"
            (Span.category_to_string c)
            (Span.category_to_string c')
      | None -> Alcotest.fail "category_of_string failed on its own output")
    Span.all

(* --- Tracer -------------------------------------------------------- *)

let test_tracer_nesting () =
  let t = Tracer.create () in
  Tracer.begin_span t ~track:"p" ~cat:Span.Sched ~name:"outer" ~ts:10;
  Tracer.begin_span t ~track:"p" ~cat:Span.Io ~name:"inner" ~ts:20;
  Alcotest.(check int) "two open" 2 (Tracer.open_spans t ~track:"p");
  Tracer.end_span t ~track:"p" ~ts:30;
  Tracer.end_span t ~track:"p" ~ts:50;
  Alcotest.(check int) "closed" 0 (Tracer.open_spans t ~track:"p");
  match Tracer.events t with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner first (completion order)" "inner"
        inner.Span.name;
      Alcotest.(check int) "inner dur" 10 (Span.duration inner);
      Alcotest.(check int) "outer ts" 10 outer.Span.ts;
      Alcotest.(check int) "outer dur" 40 (Span.duration outer)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_tracer_end_without_begin () =
  let t = Tracer.create () in
  Alcotest.check_raises "unbalanced end"
    (Invalid_argument "Tracer.end_span: no open span on track \"p\"")
    (fun () -> Tracer.end_span t ~track:"p" ~ts:1)

let test_tracer_tracks_are_independent () =
  let t = Tracer.create () in
  Tracer.begin_span t ~track:"a" ~cat:Span.Sched ~name:"x" ~ts:0;
  Tracer.begin_span t ~track:"b" ~cat:Span.Sched ~name:"y" ~ts:5;
  Tracer.end_span t ~track:"a" ~ts:7;
  Alcotest.(check int) "b still open" 1 (Tracer.open_spans t ~track:"b");
  Alcotest.(check int) "a closed" 0 (Tracer.open_spans t ~track:"a")

(* --- Metrics: histogram bucket boundaries -------------------------- *)

let hist_buckets m name =
  match Metrics.histogram m name with
  | Some h -> h.Metrics.buckets
  | None -> Alcotest.fail "histogram missing"

let test_histogram_boundaries () =
  let m = Metrics.create () in
  (* Exactly on a power of two stays in that bucket; the next
     representable float above spills into the next one. *)
  Metrics.observe m "h" 1.0;
  Metrics.observe m "h" 2.0;
  Metrics.observe m "h" (Float.succ 2.0);
  Metrics.observe m "h" 1024.0;
  Metrics.observe m "h" 1025.0;
  Metrics.observe m "h" 0.0;
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket assignment"
    [ (1.0, 2); (2.0, 1); (4.0, 1); (1024.0, 1); (2048.0, 1) ]
    (hist_buckets m "h");
  (match Metrics.histogram m "h" with
  | Some h ->
      Alcotest.(check int) "count" 6 h.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 2054.0 h.Metrics.sum
  | None -> Alcotest.fail "histogram missing");
  Alcotest.check_raises "negative observation"
    (Invalid_argument "Metrics.observe: negative observation") (fun () ->
      Metrics.observe m "h" (-1.0))

let test_histogram_huge_values_saturate () =
  let m = Metrics.create () in
  Metrics.observe m "h" 1e30;
  Alcotest.(check (list (pair (float 0.0) int)))
    "top bucket" [ (4.611686018427387904e18, 1) ] (hist_buckets m "h")

(* --- Metrics: counters, gauges, merge ------------------------------ *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  Metrics.incr m ~labels:[ ("k", "v") ] "c";
  Alcotest.(check int) "unlabelled" 5 (Metrics.counter_value m "c");
  Alcotest.(check int) "labelled" 1
    (Metrics.counter_value m ~labels:[ ("k", "v") ] "c");
  Alcotest.(check int) "absent" 0 (Metrics.counter_value m "nope");
  Metrics.set_gauge m "g" 1.5;
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "last write wins" (Some 2.5)
    (Metrics.gauge_value m "g");
  Alcotest.(check (list string)) "names" [ "c"; "g" ] (Metrics.names m)

let test_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~by:2 "c";
  Metrics.incr b ~by:3 "c";
  Metrics.set_gauge b "g" 7.0;
  Metrics.observe a "h" 1.0;
  Metrics.observe b "h" 3.0;
  Metrics.merge_into ~dst:a b;
  Alcotest.(check int) "counters add" 5 (Metrics.counter_value a "c");
  Alcotest.(check (option (float 1e-9))) "gauge overwrites" (Some 7.0)
    (Metrics.gauge_value a "g");
  match Metrics.histogram a "h" with
  | Some h ->
      Alcotest.(check int) "histogram counts add" 2 h.Metrics.count;
      Alcotest.(check (float 1e-9)) "sums add" 4.0 h.Metrics.sum
  | None -> Alcotest.fail "histogram missing"

(* --- Golden: Prometheus text format -------------------------------- *)

let sample_registry () =
  let m = Metrics.create () in
  (* Labels deliberately inserted in non-alphabetical order: rendering
     must sort them. *)
  Metrics.incr m ~by:7 ~labels:[ ("hyp", "kvm"); ("arch", "arm") ] "traps";
  Metrics.incr m ~by:2 ~labels:[ ("arch", "x86"); ("hyp", "kvm") ] "traps";
  Metrics.set_gauge m "depth" 3.0;
  Metrics.observe m "wait" 1.0;
  Metrics.observe m "wait" 5.0;
  m

let prometheus_golden =
  "# TYPE traps counter\n\
   traps{arch=\"arm\",hyp=\"kvm\"} 7\n\
   traps{arch=\"x86\",hyp=\"kvm\"} 2\n\
   # TYPE depth gauge\n\
   depth 3.0\n\
   # TYPE wait histogram\n\
   wait_bucket{le=\"1\"} 1\n\
   wait_bucket{le=\"2\"} 1\n\
   wait_bucket{le=\"4\"} 1\n\
   wait_bucket{le=\"8\"} 2\n\
   wait_bucket{le=\"+Inf\"} 2\n\
   wait_sum 6.0\n\
   wait_count 2\n"

let test_prometheus_golden () =
  Alcotest.(check string) "prometheus output"
    prometheus_golden
    (Format.asprintf "%a" Metrics.pp_prometheus (sample_registry ()))

let test_prometheus_label_order_irrelevant () =
  let flipped = Metrics.create () in
  Metrics.incr flipped ~by:2 ~labels:[ ("hyp", "kvm"); ("arch", "x86") ] "traps";
  Metrics.incr flipped ~by:7 ~labels:[ ("arch", "arm"); ("hyp", "kvm") ] "traps";
  Metrics.set_gauge flipped "depth" 3.0;
  Metrics.observe flipped "wait" 5.0;
  Metrics.observe flipped "wait" 1.0;
  Alcotest.(check string) "insertion order leaks nowhere"
    (Format.asprintf "%a" Metrics.pp_prometheus (sample_registry ()))
    (Format.asprintf "%a" Metrics.pp_prometheus flipped)

let test_label_value_order_canonical () =
  (* Regression for the explicit per-pair label comparator: families with
     several label values render in value order, whatever the insertion
     order was. *)
  let render m = Format.asprintf "%a" Metrics.pp_prometheus m in
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~labels:[ ("k", "beta") ] "x_total";
  Metrics.incr a ~labels:[ ("k", "alpha") ] "x_total";
  Metrics.incr b ~labels:[ ("k", "alpha") ] "x_total";
  Metrics.incr b ~labels:[ ("k", "beta") ] "x_total";
  Alcotest.(check string) "insertion order invisible" (render a) (render b);
  let rendered = render a in
  Alcotest.(check bool) "alpha renders before beta" true
    (let find sub =
       let n = String.length sub in
       let rec go i =
         if i + n > String.length rendered then -1
         else if String.sub rendered i n = sub then i
         else go (i + 1)
       in
       go 0
     in
     find {|"alpha"|} < find {|"beta"|} && find {|"alpha"|} >= 0)

let test_json_snapshot_golden () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 ~labels:[ ("k", "v") ] "c";
  Metrics.set_gauge m "g" 0.5;
  Metrics.observe m "h" 2.0;
  let golden =
    "{\n\
     \  \"counters\": [\n\
     \    {\"name\":\"c\",\"labels\":{\"k\":\"v\"},\"value\":3}\n\
     \  ],\n\
     \  \"gauges\": [\n\
     \    {\"name\":\"g\",\"labels\":{},\"value\":0.5}\n\
     \  ],\n\
     \  \"histograms\": [\n\
     \    {\"name\":\"h\",\"labels\":{},\"count\":1,\"sum\":2.0,\"buckets\":[{\"le\":2,\"count\":1}]}\n\
     \  ]\n\
     }\n"
  in
  Alcotest.(check string) "json output" golden
    (Format.asprintf "%a" Metrics.pp_json m)

(* --- Golden: Chrome trace JSON ------------------------------------- *)

let chrome_sample () =
  [
    {
      Export.pid = 0;
      name = "cell-a";
      dropped = 1;
      events =
        [
          (* Recorded out of start order and with a tie at ts=0: the
             exporter must sort by (ts, dur desc, recording order). *)
          {
            Span.ts = 5;
            track = "cpu";
            cat = Span.Io;
            name = "tx";
            kind = Span.Complete 3;
          };
          {
            Span.ts = 0;
            track = "cpu";
            cat = Span.Vmexit;
            name = "inner";
            kind = Span.Complete 2;
          };
          {
            Span.ts = 0;
            track = "cpu";
            cat = Span.Sched;
            name = "outer";
            kind = Span.Complete 10;
          };
          {
            Span.ts = 2;
            track = "worker";
            cat = Span.Sched;
            name = "spawn";
            kind = Span.Instant;
          };
          {
            Span.ts = 4;
            track = "mb:inbox";
            cat = Span.Io;
            name = "inbox";
            kind = Span.Value 2;
          };
        ];
    };
  ]

let chrome_golden =
  "{\"traceEvents\":[\n\
   {\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cell-a\",\"dropped_events\":1}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"cpu\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"mb:inbox\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"worker\"}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":0,\"cat\":\"sched\",\"name\":\"outer\",\"dur\":10},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":0,\"cat\":\"vmexit\",\"name\":\"inner\",\"dur\":2},\n\
   {\"ph\":\"i\",\"pid\":0,\"tid\":3,\"ts\":2,\"cat\":\"sched\",\"name\":\"spawn\",\"s\":\"t\"},\n\
   {\"ph\":\"C\",\"pid\":0,\"tid\":2,\"ts\":4,\"cat\":\"io\",\"name\":\"inbox\",\"args\":{\"value\":2}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":5,\"cat\":\"io\",\"name\":\"tx\",\"dur\":3}\n\
   ],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"simulated cycles (1 exported us = 1 cycle)\"}}\n"

let test_chrome_golden () =
  Alcotest.(check string) "chrome trace output" chrome_golden
    (Format.asprintf "%a" Export.chrome (chrome_sample ()))

let test_csv_export () =
  let lines =
    Format.asprintf "%a" Export.csv (chrome_sample ())
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check string) "header" "pid,process,tid,track,ts,dur,cat,name,value"
    (List.hd lines);
  Alcotest.(check int) "one row per event" 6 (List.length lines);
  Alcotest.(check string) "outer span row first" "0,cell-a,1,cpu,0,10,sched,outer,"
    (List.nth lines 1)

(* Position of the first occurrence of [needle] in [s], or -1. *)
let index_of s needle =
  let n = String.length needle and m = String.length s in
  let rec go i =
    if i + n > m then -1
    else if String.sub s i n = needle then i
    else go (i + 1)
  in
  go 0

let test_summary_export () =
  let out = Format.asprintf "%a" Export.summary (chrome_sample ()) in
  (* sched (10) > io (3) > vmexit (2); instants and values contribute no
     cycles. Categories print in descending cycle order. *)
  Alcotest.(check bool) "mentions total" true (index_of out "total" >= 0);
  let sched_pos = index_of out "sched" and io_pos = index_of out "\nio" in
  Alcotest.(check bool) "sched listed" true (sched_pos >= 0);
  Alcotest.(check bool) "io listed" true (io_pos >= 0);
  Alcotest.(check bool) "sched ranked before io" true (sched_pos < io_pos)

(* --- Observe + Runner: export determinism across jobs --------------- *)

let run_traced_cells ~jobs =
  Observe.enable ~context:"t" ();
  Fun.protect ~finally:Observe.disable (fun () ->
      let results =
        Runner.map ~jobs
          (fun i ->
            let m = Platform.machine Platform.Arm_m400 in
            let sim = Machine.sim m in
            Sim.spawn sim ~name:"w" (fun () ->
                Machine.spend m "vmexit.entry" (100 * (i + 1));
                Machine.spend m "netperf.tx_path" 50);
            Sim.run sim;
            i)
          [ 0; 1; 2; 3; 4; 5 ]
      in
      let trace =
        Format.asprintf "%a" Export.chrome (Observe.processes ())
      in
      (results, trace))

let test_export_deterministic_across_jobs () =
  let r1, t1 = run_traced_cells ~jobs:1 in
  let r4, t4 = run_traced_cells ~jobs:4 in
  Alcotest.(check (list int)) "results in input order" [ 0; 1; 2; 3; 4; 5 ] r1;
  Alcotest.(check (list int)) "parallel results identical" r1 r4;
  Alcotest.(check string) "chrome export byte-identical" t1 t4;
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length t1 > 500)

let test_cell_labels_in_input_order () =
  Observe.enable ~context:"lbl" ();
  Fun.protect ~finally:Observe.disable (fun () ->
      ignore (Runner.map ~jobs:4 (fun i -> i) [ 10; 20; 30 ]);
      let labels = List.map (fun c -> c.Observe.label) (Observe.cells ()) in
      Alcotest.(check (list string)) "labels"
        [ "lbl#0.0"; "lbl#0.1"; "lbl#0.2" ]
        labels)

let test_memo_metrics () =
  Observe.enable ~context:"memo" ();
  Fun.protect ~finally:Observe.disable (fun () ->
      let tbl = Runner.Memo.create () in
      let key = Runner.Key.v ~platform:"arm" () in
      ignore (Runner.Memo.find_or_compute tbl key (fun () -> 1));
      ignore (Runner.Memo.find_or_compute tbl key (fun () -> 2));
      let m = Observe.metrics () in
      Alcotest.(check int) "one miss" 1
        (Metrics.counter_value m "runner_memo_misses_total");
      Alcotest.(check int) "one hit" 1
        (Metrics.counter_value m "runner_memo_hits_total"))

(* --- No-observer overhead: traced-off runs match the seed ----------- *)

let test_tracing_does_not_change_results () =
  let untraced = W.Netperf.run_tcp_rr (Platform.hypervisor Arm_m400 Kvm) in
  Observe.enable ~context:"rr" ();
  let traced, cell =
    Fun.protect ~finally:Observe.disable (fun () ->
        Observe.capture ~label:"rr#0.0" (fun () ->
            W.Netperf.run_tcp_rr (Platform.hypervisor Arm_m400 Kvm)))
  in
  Alcotest.(check (float 0.0)) "trans/s identical"
    untraced.W.Netperf.trans_per_sec traced.W.Netperf.trans_per_sec;
  Alcotest.(check (float 0.0)) "us/trans identical"
    untraced.W.Netperf.time_per_trans_us traced.W.Netperf.time_per_trans_us;
  match cell with
  | Some c ->
      Alcotest.(check bool) "cell recorded events" true
        (List.length c.Observe.events > 0)
  | None -> Alcotest.fail "capture returned no cell"

let test_untraced_capture_is_transparent () =
  (* No session: capture must run the thunk untouched and return no cell. *)
  let v, cell = Observe.capture ~label:"x" (fun () -> 42) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check bool) "no cell" true (cell = None)

(* --- Mailbox depth through the tracer glue -------------------------- *)

let test_mailbox_depth_value_events () =
  (* Same wiring Observe uses: on_queue_depth -> Tracer.value. A direct
     send-to-parked-receiver hand-off bypasses the queue, so it must
     leave no Value event behind (it used to re-report the unchanged
     depth); only the enqueue and the later dequeue appear. *)
  let sim = Sim.create () in
  let tracer = Tracer.create () in
  Sim.set_observer sim
    (Some
       {
         Sim.on_spawn = (fun ~id:_ ~name:_ ~at:_ -> ());
         on_park = (fun ~id:_ ~name:_ ~at:_ -> ());
         on_wake = (fun ~id:_ ~name:_ ~at:_ -> ());
         on_contention = (fun ~resource:_ ~proc:_ ~at:_ ~waited:_ -> ());
         on_queue_depth =
           (fun ~mailbox ~at ~depth ->
             Tracer.value tracer ~track:("mb:" ^ mailbox) ~cat:Span.Io
               ~name:mailbox ~ts:at ~value:depth);
       });
  let mb = Sim.Mailbox.create ~name:"inbox" sim in
  Sim.spawn sim ~name:"consumer" (fun () ->
      ignore (Sim.Mailbox.recv mb);
      (* parked: direct handoff resumes it at t=1 *)
      Sim.delay (Armvirt_engine.Cycles.of_int 10);
      ignore (Sim.Mailbox.recv mb) (* dequeues at t=11: depth 0 *));
  Sim.spawn sim ~name:"producer" (fun () ->
      Sim.delay Armvirt_engine.Cycles.one;
      Sim.Mailbox.send mb 1;
      (* handoff: no event *)
      Sim.Mailbox.send mb 2 (* enqueued: depth 1 *));
  Sim.run sim;
  let values =
    List.filter_map
      (fun e ->
        match e.Span.kind with Span.Value v -> Some (e.Span.ts, v) | _ -> None)
      (Tracer.events tracer)
  in
  Alcotest.(check (list (pair int int)))
    "only queue transitions traced"
    [ (1, 1); (11, 0) ]
    values

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "unbounded chronological" `Quick
            test_ring_unbounded_chronological;
          Alcotest.test_case "capped drops oldest" `Quick
            test_ring_capped_drops_oldest;
          Alcotest.test_case "clear and reuse" `Quick test_ring_clear_and_reuse;
          Alcotest.test_case "rejects zero capacity" `Quick
            test_ring_rejects_zero_capacity;
        ] );
      ( "span",
        [
          Alcotest.test_case "of_label" `Quick test_span_of_label;
          Alcotest.test_case "category roundtrip" `Quick
            test_span_category_roundtrip;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "nesting" `Quick test_tracer_nesting;
          Alcotest.test_case "end without begin" `Quick
            test_tracer_end_without_begin;
          Alcotest.test_case "tracks independent" `Quick
            test_tracer_tracks_are_independent;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram boundaries" `Quick
            test_histogram_boundaries;
          Alcotest.test_case "huge values saturate" `Quick
            test_histogram_huge_values_saturate;
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "label order irrelevant" `Quick
            test_prometheus_label_order_irrelevant;
          Alcotest.test_case "label value order canonical" `Quick
            test_label_value_order_canonical;
          Alcotest.test_case "json golden" `Quick test_json_snapshot_golden;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
          Alcotest.test_case "csv" `Quick test_csv_export;
          Alcotest.test_case "summary" `Quick test_summary_export;
        ] );
      ( "observe",
        [
          Alcotest.test_case "export deterministic across jobs" `Quick
            test_export_deterministic_across_jobs;
          Alcotest.test_case "cell labels in input order" `Quick
            test_cell_labels_in_input_order;
          Alcotest.test_case "memo metrics" `Quick test_memo_metrics;
          Alcotest.test_case "tracing does not change results" `Quick
            test_tracing_does_not_change_results;
          Alcotest.test_case "mailbox depth value events" `Quick
            test_mailbox_depth_value_events;
          Alcotest.test_case "untraced capture transparent" `Quick
            test_untraced_capture_is_transparent;
        ] );
    ]
