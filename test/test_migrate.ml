module M = Armvirt_migrate
module Core = Armvirt_core
module Mem = Armvirt_mem
module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Link = Armvirt_net.Link
module Cost_model = Armvirt_arch.Cost_model
module H = Armvirt_hypervisor
module W = Armvirt_workloads
module Explore = Armvirt_explore

let check = Alcotest.check
let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

(* --- dirty log ------------------------------------------------------- *)

let make_dlog n =
  let s2 = Mem.Stage2.create () in
  for i = 0 to n - 1 do
    Mem.Stage2.map s2 ~ipa_page:i ~pa_page:(0x1000 + i) Mem.Stage2.Read_write
  done;
  Mem.Dirty_log.create s2

let dl_first_write_faults () =
  let d = make_dlog 8 in
  checkb "not logging yet" false (Mem.Dirty_log.logging d);
  checkb "clean before start"
    (Mem.Dirty_log.write d ~ipa_page:3 = `Clean_hit)
    true;
  Mem.Dirty_log.start d;
  checki "tracked all writable pages" 8 (Mem.Dirty_log.tracked_count d);
  checkb "first write faults" (Mem.Dirty_log.write d ~ipa_page:3 = `Wp_fault)
    true;
  checkb "re-dirty is full speed"
    (Mem.Dirty_log.write d ~ipa_page:3 = `Clean_hit)
    true;
  checki "one fault taken" 1 (Mem.Dirty_log.wp_faults d);
  checki "one dirty page" 1 (Mem.Dirty_log.dirty_count d);
  checkb "is_dirty" true (Mem.Dirty_log.is_dirty d ~ipa_page:3)

let dl_harvest_cycle () =
  let d = make_dlog 8 in
  Mem.Dirty_log.start d;
  List.iter
    (fun p -> ignore (Mem.Dirty_log.write d ~ipa_page:p))
    [ 5; 1; 5; 7; 1 ];
  check Alcotest.(list int) "harvest is sorted and deduped" [ 1; 5; 7 ]
    (Mem.Dirty_log.harvest d);
  checki "dirty set cleared" 0 (Mem.Dirty_log.dirty_count d);
  checki "one round" 1 (Mem.Dirty_log.rounds d);
  (* Harvest re-armed the protection: the same page faults again. *)
  checkb "harvested page re-protected"
    (Mem.Dirty_log.write d ~ipa_page:5 = `Wp_fault)
    true;
  checki "fault charged per round" 4 (Mem.Dirty_log.wp_faults d)

let dl_stop_restores () =
  let d = make_dlog 4 in
  Mem.Dirty_log.start d;
  ignore (Mem.Dirty_log.write d ~ipa_page:0);
  Mem.Dirty_log.stop d;
  checkb "logging off" false (Mem.Dirty_log.logging d);
  (* Every page is writable again, including never-written ones. *)
  for p = 0 to 3 do
    checkb "write after stop is clean"
      (Mem.Dirty_log.write d ~ipa_page:p = `Clean_hit)
      true
  done;
  checkb "RW restored"
    (Mem.Stage2.permission (Mem.Dirty_log.stage2 d) ~ipa_page:2
    = Some Mem.Stage2.Read_write)
    true

let dl_guest_ro_preserved () =
  let s2 = Mem.Stage2.create () in
  Mem.Stage2.map s2 ~ipa_page:0 ~pa_page:0x1000 Mem.Stage2.Read_write;
  Mem.Stage2.map s2 ~ipa_page:1 ~pa_page:0x1001 Mem.Stage2.Read_only;
  let d = Mem.Dirty_log.create s2 in
  Mem.Dirty_log.start d;
  checki "RO page not tracked" 1 (Mem.Dirty_log.tracked_count d);
  (* A write to the guest's own read-only page is a real fault, not a
     dirty-logging artifact — it must propagate. *)
  checkb "guest RO write raises"
    (match Mem.Dirty_log.write d ~ipa_page:1 with
    | exception Mem.Stage2.Stage2_fault (Mem.Stage2.Permission _) -> true
    | _ -> false)
    true;
  Mem.Dirty_log.stop d;
  checkb "guest RO page stays RO after stop"
    (Mem.Stage2.permission s2 ~ipa_page:1 = Some Mem.Stage2.Read_only)
    true

let dl_unmapped_propagates () =
  let d = make_dlog 2 in
  Mem.Dirty_log.start d;
  checkb "unmapped write raises"
    (match Mem.Dirty_log.write d ~ipa_page:99 with
    | exception Mem.Stage2.Stage2_fault (Mem.Stage2.Unmapped _) -> true
    | _ -> false)
    true

let dl_double_start_rejected () =
  let d = make_dlog 2 in
  Mem.Dirty_log.start d;
  checkb "double start rejected"
    (match Mem.Dirty_log.start d with
    | exception Invalid_argument _ -> true
    | () -> false)
    true;
  Mem.Dirty_log.stop d;
  checkb "stop when idle rejected"
    (match Mem.Dirty_log.stop d with
    | exception Invalid_argument _ -> true
    | () -> false)
    true

(* --- cost model ------------------------------------------------------ *)

let cost_model_override () =
  let arm = Cost_model.arm_default in
  checkb "arm default positive" true (arm.Cost_model.stage2_wp_fault > 0);
  checkb "x86 default positive" true
    (Cost_model.x86_default.Cost_model.stage2_wp_fault > 0);
  let bumped = Cost_model.with_stage2_wp_fault 9999 arm in
  checki "override applied" 9999 bumped.Cost_model.stage2_wp_fault;
  checki "other fields untouched" arm.Cost_model.trap_to_el2
    bumped.Cost_model.trap_to_el2;
  (* The wp fault is dearer than a plain page-table update: it also
     carries the trap to the hypervisor and the TLB invalidate. ARM
     split-mode traps cost more than x86 VM exits, so its default is
     higher too. *)
  checkb "wp fault > bare page map" true
    (arm.Cost_model.stage2_wp_fault > arm.Cost_model.page_map_cost);
  checkb "arm trap dearer than x86 exit" true
    (arm.Cost_model.stage2_wp_fault
    > Cost_model.x86_default.Cost_model.stage2_wp_fault)

(* --- link bulk transfers --------------------------------------------- *)

let link_transfer_time () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~propagation:(Cycles.of_int 1000) ~cycles_per_byte:1.92
  in
  (* Rounded once over the payload: 4096 * 1.92 = 7864.32 -> 7864. *)
  checki "byte-accurate serialization" (7864 + 1000)
    (Cycles.to_int (Link.transfer_time link ~bytes:4096));
  checki "zero bytes is pure propagation" 1000
    (Cycles.to_int (Link.transfer_time link ~bytes:0));
  (* Per-batch rounding must not drift: 1000 batches of 1 byte each
     would charge 1000 * round(1.92) = 2000 if rounded per batch. *)
  checki "no per-batch rounding drift" (1920 + 1000)
    (Cycles.to_int (Link.transfer_time link ~bytes:1000))

let link_send_bulk_fifo () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~propagation:(Cycles.of_int 100) ~cycles_per_byte:2.0
  in
  let l1 = ref Cycles.zero and l2 = ref Cycles.zero in
  Sim.spawn sim ~name:"sender" (fun () ->
      l1 := Link.send_bulk link ~bytes:50;
      (* The second payload starts serializing immediately (the wire was
         claimed back-to-back), so its latency is serialization +
         propagation again — no queueing, because we waited. *)
      l2 := Link.send_bulk link ~bytes:50);
  Sim.run sim;
  checki "first bulk latency" 200 (Cycles.to_int !l1);
  checki "second bulk latency" 200 (Cycles.to_int !l2);
  checki "both delivered" 2 (Link.delivered link)

(* --- precopy engine -------------------------------------------------- *)

let small_plan =
  {
    M.Plan.default with
    M.Plan.pages = 512;
    hot_pages = 64;
    warmup_us = 500.0;
    tail_us = 500.0;
  }

let hyp p h = Core.Platform.hypervisor p h

let precopy_smoke () =
  let r = M.Precopy.run ~plan:small_plan (hyp Core.Platform.Arm_m400 Core.Platform.Kvm) in
  checkb "converged" true r.M.Precopy.converged;
  checkb "some rounds ran" true (r.M.Precopy.precopy_rounds >= 1);
  checki "round list matches" r.M.Precopy.precopy_rounds
    (List.length r.M.Precopy.rounds);
  checki "resent = sent - pages"
    (r.M.Precopy.pages_sent - small_plan.M.Plan.pages)
    r.M.Precopy.pages_resent;
  checkb "round 0 ships everything" true
    (match r.M.Precopy.rounds with
    | first :: _ -> first.M.Precopy.pages = small_plan.M.Plan.pages
    | [] -> false);
  checkb "blackout under 2x SLO" true
    (r.M.Precopy.downtime_us
    < 2.0 *. small_plan.M.Plan.downtime_target_us);
  checkb "total >= downtime" true
    (r.M.Precopy.total_us >= r.M.Precopy.downtime_us);
  checkb "guest saw traffic" true (r.M.Precopy.requests > 0);
  checkb "faults were taken" true (r.M.Precopy.wp_faults > 0)

let precopy_ordering () =
  let run p h = M.Precopy.run (hyp p h) in
  let vhe = run Core.Platform.Arm_m400_vhe Core.Platform.Kvm in
  let arm = run Core.Platform.Arm_m400 Core.Platform.Kvm in
  let xen_x86 = run Core.Platform.X86_r320 Core.Platform.Xen in
  Printf.printf "downtime: vhe=%.1f arm=%.1f xen-x86=%.1f\n%!"
    vhe.M.Precopy.downtime_us arm.M.Precopy.downtime_us
    xen_x86.M.Precopy.downtime_us;
  checkb "ARM VHE < ARM split-mode" true
    (vhe.M.Precopy.downtime_us < arm.M.Precopy.downtime_us);
  checkb "ARM split-mode < Xen x86" true
    (arm.M.Precopy.downtime_us < xen_x86.M.Precopy.downtime_us)

(* With an unbounded SLO every config stops after round 0 with the same
   dirty sequence, so the downtime gap is purely the transition-cost
   deltas — the ordering must hold structurally, not by threshold
   stepping. *)
let precopy_ordering_structural () =
  let plan = { small_plan with M.Plan.downtime_target_us = 1e9 } in
  let run p h = M.Precopy.run ~plan (hyp p h) in
  let vhe = run Core.Platform.Arm_m400_vhe Core.Platform.Kvm in
  let arm = run Core.Platform.Arm_m400 Core.Platform.Kvm in
  checki "one round each" 1 vhe.M.Precopy.precopy_rounds;
  checki "same dirty sequence" arm.M.Precopy.final_pages
    vhe.M.Precopy.final_pages;
  checkb "VHE blackout strictly shorter" true
    (vhe.M.Precopy.downtime_us < arm.M.Precopy.downtime_us)

let precopy_converges_when_idle () =
  (* A guest barely dirtying memory: one round and a tiny residual. *)
  let plan = { small_plan with M.Plan.txn_rate_hz = 500.0 } in
  let r = M.Precopy.run ~plan (hyp Core.Platform.Arm_m400 Core.Platform.Kvm) in
  checkb "converged" true r.M.Precopy.converged;
  checkb "few rounds" true (r.M.Precopy.precopy_rounds <= 3);
  checkb "few pages resent" true
    (r.M.Precopy.pages_resent < small_plan.M.Plan.pages / 4)

let precopy_round_cap () =
  (* Dirty rate outruns a slow wire: pre-copy cannot converge and the
     cap forces stop-and-copy with a large residual. *)
  let plan =
    {
      small_plan with
      M.Plan.txn_rate_hz = 100_000.0;
      bandwidth_gbps = 0.5;
      max_rounds = 5;
      downtime_target_us = 50.0;
    }
  in
  let r = M.Precopy.run ~plan (hyp Core.Platform.Arm_m400 Core.Platform.Kvm) in
  checkb "did not converge" false r.M.Precopy.converged;
  checki "stopped at the cap" plan.M.Plan.max_rounds
    r.M.Precopy.precopy_rounds;
  checkb "missed the SLO" true
    (r.M.Precopy.downtime_us > plan.M.Plan.downtime_target_us)

let precopy_deterministic () =
  let one () =
    M.Precopy.run ~plan:small_plan
      (hyp Core.Platform.Arm_m400 Core.Platform.Xen)
  in
  let a = one () and b = one () in
  checkb "identical downtime" true
    (a.M.Precopy.downtime_us = b.M.Precopy.downtime_us);
  checkb "identical total" true (a.M.Precopy.total_us = b.M.Precopy.total_us);
  checki "identical pages sent" a.M.Precopy.pages_sent b.M.Precopy.pages_sent;
  checki "identical faults" a.M.Precopy.wp_faults b.M.Precopy.wp_faults;
  checki "identical requests" a.M.Precopy.requests b.M.Precopy.requests

let profiles_diverge () =
  let kvm = H.Kvm_arm.create (Core.Platform.machine Core.Platform.Arm_m400) in
  let kvm_vhe =
    H.Kvm_arm.create (Core.Platform.machine Core.Platform.Arm_m400_vhe)
  in
  let xen = H.Xen_arm.create (Core.Platform.machine Core.Platform.Arm_m400) in
  let pk = H.Kvm_arm.migrate_profile kvm in
  let pv = H.Kvm_arm.migrate_profile kvm_vhe in
  let px = H.Xen_arm.migrate_profile xen in
  check Alcotest.string "KVM ships over vhost" "vhost"
    pk.H.Migrate_profile.transport;
  check Alcotest.string "Xen ships over grants" "grant"
    px.H.Migrate_profile.transport;
  checkb "VHE wp fault cheaper than split-mode" true
    (pv.H.Migrate_profile.wp_fault_guest_cpu
    < pk.H.Migrate_profile.wp_fault_guest_cpu);
  checkb "VHE pause/resume cheaper" true
    (pv.H.Migrate_profile.pause_vcpu + pv.H.Migrate_profile.resume_vcpu
    < pk.H.Migrate_profile.pause_vcpu + pk.H.Migrate_profile.resume_vcpu);
  checkb "grant per-page send dearer than vhost" true
    (px.H.Migrate_profile.page_send_per_page
    > pk.H.Migrate_profile.page_send_per_page)

(* --- workload + experiment ------------------------------------------- *)

let workload_p99_degrades () =
  let r =
    W.Migration.run ~plan:M.Plan.default
      (hyp Core.Platform.Arm_m400 Core.Platform.Kvm)
  in
  checkb "baseline measured" true (r.W.Migration.baseline_p99_us > 0.0);
  checkb "worst round found" true (r.W.Migration.worst_round >= 0);
  checkb "dirty logging degrades p99" true
    (r.W.Migration.worst_p99_us > r.W.Migration.baseline_p99_us);
  checkb "degradation ratio consistent" true
    (Float.abs
       (r.W.Migration.p99_degradation
       -. (r.W.Migration.worst_p99_us /. r.W.Migration.baseline_p99_us))
    < 1e-9);
  (* Split-mode KVM ARM pays more per fault than VHE, so its rounds hurt
     the guest more. *)
  let vhe =
    W.Migration.run ~plan:M.Plan.default
      (hyp Core.Platform.Arm_m400_vhe Core.Platform.Kvm)
  in
  checkb "VHE degrades less than split-mode" true
    (vhe.W.Migration.worst_p99_us < r.W.Migration.worst_p99_us)

let experiment_jobs_invariant () =
  let module Runner = Core.Runner in
  let snapshot () =
    List.map
      (fun (name, (r : W.Migration.result)) ->
        ( name,
          r.W.Migration.downtime_us,
          r.W.Migration.total_ms,
          r.W.Migration.pages_resent,
          r.W.Migration.wp_faults ))
      (Core.Experiment.migrate ~plan:small_plan ())
  in
  Runner.set_jobs 1;
  let serial = snapshot () in
  Runner.set_jobs 4;
  let parallel = snapshot () in
  Runner.set_jobs 1;
  checki "five configs" 5 (List.length serial);
  List.iter2
    (fun (n1, d1, t1, p1, f1) (n2, d2, t2, p2, f2) ->
      check Alcotest.string "config order" n1 n2;
      checkb "downtime identical at jobs 1 vs 4" true (d1 = d2);
      checkb "total identical" true (t1 = t2);
      checki "resent identical" p1 p2;
      checki "faults identical" f1 f2)
    serial parallel

(* --- explore integration --------------------------------------------- *)

let explore_knobs () =
  let module C = Explore.Config in
  let module Space = Explore.Space in
  let base = C.default in
  let c = C.apply base "stage2_wp_fault" (Space.Int 1234) in
  checki "wp fault knob" 1234 c.C.arm.Cost_model.stage2_wp_fault;
  let c = C.apply base "mig.bandwidth_gbps" (Space.Float 40.0) in
  checkb "bandwidth knob" true
    (c.C.migration.M.Plan.bandwidth_gbps = 40.0);
  let c = C.apply base "mig.page_kb" (Space.Int 8) in
  checki "page granule" 8 c.C.migration.M.Plan.page_kb;
  checki "guest memory held constant"
    (M.Plan.total_bytes base.C.migration)
    (M.Plan.total_bytes c.C.migration);
  checkb "hot-set bytes held constant" true
    (c.C.migration.M.Plan.hot_pages * 8
    = base.C.migration.M.Plan.hot_pages * base.C.migration.M.Plan.page_kb);
  checkb "bad rate rejected" true
    (match C.apply base "mig.txn_rate_hz" (Space.Float (-1.0)) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "mig knobs documented" true
    (List.mem_assoc "mig.bandwidth_gbps" C.knobs
    && List.mem_assoc "stage2_wp_fault" C.knobs)

let explore_objectives () =
  let module O = Explore.Objective in
  let base =
    { Explore.Config.default with Explore.Config.migration = small_plan }
  in
  let eval name c = (O.find name).O.eval c in
  let downtime = eval "mig-downtime" base in
  checkb "downtime positive and finite" true
    (downtime > 0.0 && Float.is_finite downtime);
  checkb "total >= downtime" true (eval "mig-total" base >= downtime);
  checkb "resent non-negative" true (eval "mig-resent" base >= 0.0);
  (* More wire, less time: bandwidth must move the total. *)
  let fat =
    Explore.Config.apply base "mig.bandwidth_gbps" (Explore.Space.Float 40.0)
  in
  let thin =
    Explore.Config.apply base "mig.bandwidth_gbps" (Explore.Space.Float 2.5)
  in
  checkb "bandwidth drives total migration time" true
    (eval "mig-total" fat < eval "mig-total" thin)

let explore_sweep_invariance () =
  let module Runner = Core.Runner in
  let base =
    { Explore.Config.default with Explore.Config.migration = small_plan }
  in
  let space = Explore.Space.of_string "mig.bandwidth_gbps=5.0|10.0" in
  let sweep jobs =
    Runner.set_jobs jobs;
    let s =
      Explore.Sweep.run ~seed:7 ~base ~sampler:Explore.Sampler.Grid
        ~objectives:[ Explore.Objective.find "mig-downtime" ]
        space
    in
    Runner.set_jobs 1;
    Format.asprintf "%a" Explore.Sweep.pp_csv s
  in
  let a = sweep 1 and b = sweep 2 in
  checkb "sweep CSV byte-identical across jobs" true (String.equal a b);
  checkb "sweep evaluated both points" true
    (List.length (String.split_on_char '\n' (String.trim a)) = 3)

(* --- registration ---------------------------------------------------- *)

let tc = Alcotest.test_case

let () =
  Alcotest.run "migrate"
    [
      ( "dirty_log",
        [
          tc "first-write faults, re-dirty is free" `Quick dl_first_write_faults;
          tc "harvest sorts, clears, re-protects" `Quick dl_harvest_cycle;
          tc "stop restores write access" `Quick dl_stop_restores;
          tc "guest RO pages are not logged" `Quick dl_guest_ro_preserved;
          tc "unmapped faults propagate" `Quick dl_unmapped_propagates;
          tc "double start/stop rejected" `Quick dl_double_start_rejected;
        ] );
      ( "costs",
        [
          tc "stage2_wp_fault override" `Quick cost_model_override;
          tc "link transfer_time is byte-accurate" `Quick link_transfer_time;
          tc "link send_bulk FIFO latency" `Quick link_send_bulk_fifo;
        ] );
      ( "precopy",
        [
          tc "smoke invariants" `Quick precopy_smoke;
          tc "downtime ordering (paper)" `Quick precopy_ordering;
          tc "downtime ordering (structural)" `Quick
            precopy_ordering_structural;
          tc "idle guest converges fast" `Quick precopy_converges_when_idle;
          tc "hot guest hits the round cap" `Quick precopy_round_cap;
          tc "deterministic across reruns" `Quick precopy_deterministic;
          tc "per-hypervisor profiles diverge" `Quick profiles_diverge;
        ] );
      ( "workload",
        [
          tc "RR p99 degrades under logging" `Quick workload_p99_degrades;
          tc "experiment identical at jobs 1 vs 4" `Quick
            experiment_jobs_invariant;
        ] );
      ( "explore",
        [
          tc "mig knobs apply and validate" `Quick explore_knobs;
          tc "mig objectives evaluate" `Quick explore_objectives;
          tc "sweep identical across jobs" `Quick explore_sweep_invariance;
        ] );
    ]
