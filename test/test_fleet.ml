(* lib/fleet: pooled guest state, the quantum-stepped scenario engines
   (boot-storm / churn / noisy-neighbor), and credit_sched under real
   overcommit — fairness, caps, weights, and candidate-order
   determinism. *)

module Pool = Armvirt_fleet.Pool
module Descriptor = Armvirt_fleet.Descriptor
module Scenario = Armvirt_fleet.Scenario
module Batch = Armvirt_fleet.Batch
module Credit_sched = Armvirt_hypervisor.Credit_sched
module Platform = Armvirt_core.Platform

let models =
  [
    ("KVM ARM (VHE)", Platform.Arm_m400_vhe, Platform.Kvm);
    ("KVM ARM", Platform.Arm_m400, Platform.Kvm);
    ("Xen ARM", Platform.Arm_m400, Platform.Xen);
    ("KVM x86", Platform.X86_r320, Platform.Kvm);
    ("Xen x86", Platform.X86_r320, Platform.Xen);
  ]

let kvm_arm () = Platform.hypervisor Platform.Arm_m400 Platform.Kvm

(* --- pool ------------------------------------------------------------ *)

let test_pool_reuse () =
  let p = Pool.create () in
  let d0 = Pool.admit p ~profile:0 ~vcpus:1 ~now:0 in
  let d1 = Pool.admit p ~profile:0 ~vcpus:2 ~now:0 in
  let d2 = Pool.admit p ~profile:0 ~vcpus:1 ~now:0 in
  Alcotest.(check (list int)) "sequential domids" [ 0; 1; 2 ] [ d0; d1; d2 ];
  Pool.retire p d1;
  Pool.retire p d0;
  (* Lowest retired domid is recycled first. *)
  let d3 = Pool.admit p ~profile:1 ~vcpus:4 ~now:9 in
  Alcotest.(check int) "lowest free reused" 0 d3;
  let d4 = Pool.admit p ~profile:0 ~vcpus:1 ~now:9 in
  Alcotest.(check int) "next free reused" 1 d4;
  Alcotest.(check int) "reuse counted" 2 (Pool.reused p);
  Alcotest.(check int) "admitted" 5 (Pool.admitted p);
  Alcotest.(check int) "retired" 2 (Pool.retired p);
  Alcotest.(check int) "peak live" 3 (Pool.peak_live p);
  Alcotest.(check int) "high water" 3 (Pool.high_water p);
  (* The reused slot's work array grew for the 4-VCPU tenancy and was
     zeroed. *)
  let s = Pool.slot p d3 in
  Alcotest.(check int) "vcpus" 4 s.Pool.vcpus;
  Alcotest.(check bool)
    "work zeroed" true
    (Array.for_all (fun w -> w = 0) s.Pool.work);
  Pool.retire p d4;
  Alcotest.check_raises "retired domid is dead"
    (Invalid_argument "Fleet.Pool.slot: not a live domid") (fun () ->
      ignore (Pool.slot p d4 == s))

let test_pool_retire_dead () =
  let p = Pool.create () in
  let d = Pool.admit p ~profile:0 ~vcpus:1 ~now:0 in
  Pool.retire p d;
  Alcotest.check_raises "double retire"
    (Invalid_argument "Fleet.Pool.slot: not a live domid") (fun () ->
      Pool.retire p d)

(* --- descriptor ------------------------------------------------------ *)

let test_descriptor_mix () =
  let a = { Descriptor.synthetic with Descriptor.name = "a" } in
  let b = { Descriptor.synthetic with Descriptor.name = "b" } in
  let d = Descriptor.v ~vms:8 [ (a, 2); (b, 1) ] in
  let names = List.init 7 (fun i -> (Descriptor.profile_of d i).Descriptor.name) in
  Alcotest.(check (list string))
    "weighted round-robin pattern"
    [ "a"; "a"; "b"; "a"; "a"; "b"; "a" ]
    names;
  Alcotest.(check string) "mix syntax" "a=2,b=1" (Descriptor.mix_to_string d);
  Alcotest.check_raises "empty mix"
    (Invalid_argument "Fleet.Descriptor: empty profile mix") (fun () ->
      ignore (Descriptor.v ~vms:1 []));
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Fleet.Descriptor: profile a: cap outside [0, 100]")
    (fun () ->
      ignore (Descriptor.v ~vms:1 [ ({ a with Descriptor.cap_pct = 101 }, 1) ]))

(* --- boot-storm ------------------------------------------------------ *)

let storm_desc vms = Descriptor.v ~vms [ (Descriptor.synthetic, 1) ]

let test_boot_storm_smoke () =
  let r = Scenario.boot_storm (kvm_arm ()) (storm_desc 16) in
  Alcotest.(check int) "all admitted" 16 r.Scenario.peak_live;
  Alcotest.(check bool) "ready time positive" true (r.Scenario.time_to_ready_ms > 0.0);
  Alcotest.(check bool)
    "boot latency ordering" true
    (r.Scenario.p99_boot_ms >= r.Scenario.mean_boot_ms);
  Alcotest.(check bool) "switches happened" true (r.Scenario.switches > 0)

let test_boot_storm_deterministic () =
  let run () = Scenario.boot_storm ~seed:7 (kvm_arm ()) (storm_desc 64) in
  let a = run () and b = run () in
  Alcotest.(check bool) "byte-identical result" true (a = b)

let test_boot_storm_256 () =
  (* The acceptance-criteria scale: 256 guests on one 8-PCPU host. *)
  let r = Scenario.boot_storm ~seed:42 (kvm_arm ()) (storm_desc 256) in
  Alcotest.(check int) "256 admitted" 256 r.Scenario.peak_live;
  Alcotest.(check bool)
    "an overcommitted storm is slower than its window" true
    (r.Scenario.time_to_ready_ms > r.Scenario.window_ms);
  let r' = Scenario.boot_storm ~seed:42 (kvm_arm ()) (storm_desc 256) in
  Alcotest.(check bool) "deterministic at 256" true (r = r')

let test_boot_storm_monotone_in_size () =
  (* More guests on the same host can only push all-ready out. *)
  let ready n =
    (Scenario.boot_storm ~seed:3 (kvm_arm ()) (storm_desc n))
      .Scenario.time_to_ready_ms
  in
  let t16 = ready 16 and t64 = ready 64 and t256 = ready 256 in
  Alcotest.(check bool) "16 <= 64" true (t16 <= t64);
  Alcotest.(check bool) "64 <= 256" true (t64 <= t256)

(* --- churn ----------------------------------------------------------- *)

let test_churn_smoke () =
  let r = Scenario.churn ~seed:5 (kvm_arm ()) (storm_desc 16) in
  Alcotest.(check int) "all admitted" 32 r.Scenario.admitted;
  Alcotest.(check int) "all retired" 32 r.Scenario.retired;
  Alcotest.(check bool) "domids recycled" true (r.Scenario.domid_reuses > 0);
  Alcotest.(check bool)
    "pool stayed below total admissions" true
    (r.Scenario.peak_live < 32);
  Alcotest.(check bool) "drained" true (r.Scenario.drain_ms > 0.0)

let test_churn_deterministic () =
  let run () = Scenario.churn ~seed:11 (kvm_arm ()) (storm_desc 24) in
  let a = run () and b = run () in
  Alcotest.(check bool) "byte-identical result" true (a = b)

(* --- noisy neighbor -------------------------------------------------- *)

let noisy_desc vms =
  let aggressor =
    { Descriptor.synthetic with Descriptor.name = "aggressor"; vcpus = 2 }
  in
  Descriptor.v ~vms [ (aggressor, 1) ]

let test_noisy_monotone_all_models () =
  let sizes = [ 1; 2; 4; 8; 16 ] in
  List.iter
    (fun (name, platform, id) ->
      let curve =
        List.map
          (fun n ->
            Scenario.noisy_neighbor ~seed:42
              (Platform.hypervisor platform id)
              (noisy_desc n))
          sizes
      in
      List.iter
        (fun r ->
          Alcotest.(check int)
            (name ^ ": all requests completed")
            400 r.Scenario.completed)
        curve;
      let p99s = List.map (fun r -> r.Scenario.p99_us) curve in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            if a > b +. 1e-9 then
              Alcotest.failf "%s: p99 decreased %g -> %g (curve %s)" name a b
                (String.concat ", " (List.map (Printf.sprintf "%.3f") p99s));
            monotone rest
        | _ -> ()
      in
      monotone p99s;
      (* The largest fleet must actually interfere. *)
      let first = List.hd p99s and last = List.nth p99s 4 in
      if not (last > first) then
        Alcotest.failf "%s: no interference: p99 %g at 1 VM, %g at 16" name
          first last)
    models

let test_noisy_deterministic () =
  let run () =
    Scenario.noisy_neighbor ~seed:9 (kvm_arm ()) (noisy_desc 8)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "byte-identical result" true (a = b)

(* --- batch (oversub substrate) --------------------------------------- *)

let test_batch_matches_manual_sched () =
  (* Batch.run must reproduce the exact scheduler Oversub used to
     build by hand: same add order, same affinity, same work list. *)
  let num_pcpus = 4 and timeslice = 1000 and work = 10_000 in
  let sched = Credit_sched.create ~num_pcpus ~timeslice_cycles:timeslice in
  let jobs =
    List.concat_map
      (fun dom ->
        List.init num_pcpus (fun index ->
            let vcpu = { Credit_sched.dom; index } in
            Credit_sched.add_vcpu sched vcpu ~affinity:index;
            (vcpu, work)))
      (List.init 3 Fun.id)
  in
  let expected =
    Credit_sched.run_to_completion sched ~work:jobs ~switch_cost:500
  in
  let got =
    Batch.run ~num_pcpus ~timeslice_cycles:timeslice ~switch_cost:500 ~vms:3
      ~vcpus_per_vm:num_pcpus ~work_per_vcpu:work
  in
  Alcotest.(check (pair int int)) "identical makespan and switches" expected got

(* --- credit_sched under overcommit (satellite) ----------------------- *)

let drive sched ~pcpus ~quanta ~timeslice ~refill_every ~count =
  for q = 1 to quanta do
    if q mod refill_every = 0 then
      Credit_sched.periodic_refill sched ~cycles:(refill_every * timeslice);
    for pcpu = 0 to pcpus - 1 do
      match Credit_sched.pick sched ~pcpu with
      | None -> ()
      | Some v ->
          count v;
          Credit_sched.charge sched ~pcpu ~cycles:timeslice
    done
  done

let test_fairness_8_per_pcpu () =
  (* 8 always-runnable VCPUs on one PCPU: equal weights must yield
     equal service, spread at most one quantum. *)
  let ts = 1000 in
  let sched = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:ts in
  let vcpus = List.init 8 (fun dom -> { Credit_sched.dom; index = 0 }) in
  List.iter
    (fun v ->
      Credit_sched.add_vcpu sched v ~affinity:0;
      Credit_sched.set_runnable sched v true)
    vcpus;
  let counts = Hashtbl.create 8 in
  let count (v : Credit_sched.vcpu) =
    Hashtbl.replace counts v.Credit_sched.dom
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts v.Credit_sched.dom))
  in
  drive sched ~pcpus:1 ~quanta:800 ~timeslice:ts ~refill_every:10 ~count;
  let per_vcpu =
    List.map
      (fun (v : Credit_sched.vcpu) ->
        Option.value ~default:0 (Hashtbl.find_opt counts v.Credit_sched.dom))
      vcpus
  in
  let mn = List.fold_left Stdlib.min max_int per_vcpu in
  let mx = List.fold_left Stdlib.max 0 per_vcpu in
  Alcotest.(check int) "total quanta" 800 (List.fold_left ( + ) 0 per_vcpu);
  Alcotest.(check bool)
    (Printf.sprintf "fair spread (min %d, max %d)" mn mx)
    true
    (mx - mn <= 1)

let test_cap_enforcement () =
  (* 9 VCPUs on one PCPU (> 8x overcommit); one is capped at 5%. Its
     fair share would be 1/9 = 11%; the cap must hold it near 5%
     while the uncapped eight absorb the slack. *)
  let ts = 1000 in
  let sched = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:ts in
  let capped = { Credit_sched.dom = 0; index = 0 } in
  Credit_sched.add_vcpu ~cap:5 sched capped ~affinity:0;
  Credit_sched.set_runnable sched capped true;
  let others = List.init 8 (fun i -> { Credit_sched.dom = i + 1; index = 0 }) in
  List.iter
    (fun v ->
      Credit_sched.add_vcpu sched v ~affinity:0;
      Credit_sched.set_runnable sched v true)
    others;
  let capped_runs = ref 0 and total = ref 0 in
  let count v =
    incr total;
    if v = capped then incr capped_runs
  in
  drive sched ~pcpus:1 ~quanta:2000 ~timeslice:ts ~refill_every:10 ~count;
  let share = float_of_int !capped_runs /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "capped share %.3f in [0.02, 0.07]" share)
    true
    (share >= 0.02 && share <= 0.07);
  Alcotest.(check bool) "capped still ran" true (!capped_runs > 0)

let test_weight_proportionality () =
  (* Two saturating VCPUs, weights 512 vs 256: service ratio ~2:1. *)
  let ts = 1000 in
  let sched = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:ts in
  let heavy = { Credit_sched.dom = 0; index = 0 } in
  let light = { Credit_sched.dom = 1; index = 0 } in
  Credit_sched.add_vcpu ~weight:512 sched heavy ~affinity:0;
  Credit_sched.add_vcpu ~weight:256 sched light ~affinity:0;
  Credit_sched.set_runnable sched heavy true;
  Credit_sched.set_runnable sched light true;
  let h = ref 0 and l = ref 0 in
  let count v = if v = heavy then incr h else incr l in
  drive sched ~pcpus:1 ~quanta:3000 ~timeslice:ts ~refill_every:10 ~count;
  let ratio = float_of_int !h /. float_of_int (Stdlib.max 1 !l) in
  Alcotest.(check bool)
    (Printf.sprintf "2x weight ~ 2x service (ratio %.2f)" ratio)
    true
    (ratio >= 1.7 && ratio <= 2.3)

let test_candidate_order_insertion_invariant () =
  (* The hash-order determinism class: once boosts are drained and
     credits are pairwise distinct, the schedule is a pure function of
     credit state and must not depend on the order VCPUs entered the
     scheduler's hash table. *)
  let ts = 1000 in
  let build order =
    let sched = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:ts in
    List.iter
      (fun dom ->
        let v = { Credit_sched.dom; index = 0 } in
        Credit_sched.add_vcpu sched v ~affinity:0;
        Credit_sched.set_runnable sched v true)
      order;
    (* Drain the 8 wake-up boosts (each VCPU runs exactly once while
       the others are still boosted), charging dom+1 cycles so every
       credit becomes pairwise distinct — and stays distinct below,
       because dom+1 is distinct mod 9. *)
    List.iter
      (fun _ ->
        match Credit_sched.pick sched ~pcpu:0 with
        | Some v ->
            Credit_sched.charge sched ~pcpu:0 ~cycles:(v.Credit_sched.dom + 1)
        | None -> Alcotest.fail "runnable VCPU not picked")
      order;
    sched
  in
  let a = build [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let b = build [ 7; 3; 5; 1; 6; 0; 2; 4 ] in
  let seq sched =
    List.init 64 (fun _ ->
        match Credit_sched.pick sched ~pcpu:0 with
        | Some v ->
            Credit_sched.charge sched ~pcpu:0 ~cycles:9;
            v.Credit_sched.dom
        | None -> -1)
  in
  Alcotest.(check (list int))
    "pick sequence independent of insertion order" (seq a) (seq b)

let test_remove_vcpu () =
  let ts = 1000 in
  let sched = Credit_sched.create ~num_pcpus:1 ~timeslice_cycles:ts in
  let a = { Credit_sched.dom = 0; index = 0 } in
  let b = { Credit_sched.dom = 1; index = 0 } in
  Credit_sched.add_vcpu sched a ~affinity:0;
  Credit_sched.add_vcpu sched b ~affinity:0;
  Credit_sched.set_runnable sched a true;
  Credit_sched.set_runnable sched b true;
  (match Credit_sched.pick sched ~pcpu:0 with
  | Some v -> Alcotest.(check int) "boost FIFO picks first-added" 0 v.Credit_sched.dom
  | None -> Alcotest.fail "expected a pick");
  Credit_sched.remove_vcpu sched a;
  Alcotest.(check bool) "incumbent slot cleared" true
    (Credit_sched.current sched ~pcpu:0 = None);
  (match Credit_sched.pick sched ~pcpu:0 with
  | Some v -> Alcotest.(check int) "survivor scheduled" 1 v.Credit_sched.dom
  | None -> Alcotest.fail "survivor not scheduled");
  Alcotest.check_raises "unknown vcpu"
    (Invalid_argument "Credit_sched: unknown VCPU") (fun () ->
      Credit_sched.remove_vcpu sched a);
  (* Re-adding the removed identity is legal (churn domid reuse). *)
  Credit_sched.add_vcpu sched a ~affinity:0

let () =
  Alcotest.run "fleet"
    [
      ( "pool",
        [
          Alcotest.test_case "domid reuse lowest-first" `Quick test_pool_reuse;
          Alcotest.test_case "retire is single-shot" `Quick
            test_pool_retire_dead;
        ] );
      ( "descriptor",
        [ Alcotest.test_case "mix pattern + validation" `Quick test_descriptor_mix ] );
      ( "boot-storm",
        [
          Alcotest.test_case "smoke at 16 VMs" `Quick test_boot_storm_smoke;
          Alcotest.test_case "deterministic at 64 VMs" `Quick
            test_boot_storm_deterministic;
          Alcotest.test_case "256 VMs complete deterministically" `Quick
            test_boot_storm_256;
          Alcotest.test_case "ready time monotone in fleet size" `Quick
            test_boot_storm_monotone_in_size;
        ] );
      ( "churn",
        [
          Alcotest.test_case "admit/retire/reuse invariants" `Quick
            test_churn_smoke;
          Alcotest.test_case "deterministic" `Quick test_churn_deterministic;
        ] );
      ( "noisy-neighbor",
        [
          Alcotest.test_case "p99 monotone on all five models" `Quick
            test_noisy_monotone_all_models;
          Alcotest.test_case "deterministic" `Quick test_noisy_deterministic;
        ] );
      ( "batch",
        [
          Alcotest.test_case "reproduces the manual oversub sched" `Quick
            test_batch_matches_manual_sched;
        ] );
      ( "credit-overcommit",
        [
          Alcotest.test_case "fairness at 8 VCPUs per PCPU" `Quick
            test_fairness_8_per_pcpu;
          Alcotest.test_case "cap enforcement at 9 VCPUs per PCPU" `Quick
            test_cap_enforcement;
          Alcotest.test_case "weight proportionality" `Quick
            test_weight_proportionality;
          Alcotest.test_case "pick order insertion-invariant" `Quick
            test_candidate_order_insertion_invariant;
          Alcotest.test_case "remove_vcpu (churn departures)" `Quick
            test_remove_vcpu;
        ] );
    ]
