(* Tests for Armvirt_workloads.Cluster: the pairwise throughput matrix
   (vhost vs Dom0-copy ordering, wire-bound cross-host pairs), the
   client -> LB -> backend service chain, the open-loop load generator
   (monotone hockey-stick tails, million-req/s offered load), and the
   jobs-invariance of the Experiment wrappers. *)

module Platform = Armvirt_core.Platform
module Experiment = Armvirt_core.Experiment
module Runner = Armvirt_core.Runner
module Cluster = Armvirt_workloads.Cluster
module Topology = Armvirt_vswitch.Topology

let kvm_arm () = Platform.hypervisor Platform.Arm_m400 Platform.Kvm
let xen_arm () = Platform.hypervisor Platform.Arm_m400 Platform.Xen

(* --- pairwise matrix ----------------------------------------------- *)

let test_matrix_shape () =
  let r = Cluster.run_matrix ~vms:4 (kvm_arm ()) in
  Alcotest.(check int) "ordered pairs" 12 (List.length r.Cluster.pairs);
  Alcotest.(check int) "no drops with the window" 0 r.Cluster.dropped;
  List.iter
    (fun p -> Alcotest.(check bool) "positive gbps" true (p.Cluster.gbps > 0.0))
    r.Cluster.pairs;
  (* VMs round-robin across the two hosts: 0,2 vs 1,3. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "cross flag matches parity"
        ((p.Cluster.src - p.Cluster.dst) mod 2 <> 0)
        p.Cluster.cross_host)
    r.Cluster.pairs

let test_matrix_vhost_beats_dom0_copy () =
  (* The paper's section V contrast at cluster scale: zero-copy vhost
     forwarding vs Xen's per-byte Dom0 grant copies. *)
  let kvm = Cluster.run_matrix ~vms:4 (kvm_arm ()) in
  let xen = Cluster.run_matrix ~vms:4 (xen_arm ()) in
  let same_kvm = Cluster.matrix_mean ~cross:false kvm in
  let same_xen = Cluster.matrix_mean ~cross:false xen in
  Alcotest.(check bool)
    (Printf.sprintf "same-host KVM %.1f > Xen %.1f Gbps" same_kvm same_xen)
    true
    (same_kvm > same_xen);
  let cross_kvm = Cluster.matrix_mean ~cross:true kvm in
  let cross_xen = Cluster.matrix_mean ~cross:true xen in
  Alcotest.(check bool) "cross-host KVM >= Xen" true (cross_kvm >= cross_xen)

let test_matrix_cross_host_wire_bound () =
  let r = Cluster.run_matrix ~vms:4 (kvm_arm ()) in
  let cross = Cluster.matrix_mean ~cross:true r in
  let same = Cluster.matrix_mean ~cross:false r in
  Alcotest.(check bool) "cross-host under the 10 GbE line rate" true
    (cross < 10.0);
  Alcotest.(check bool) "same-host above the wire-bound pairs" true
    (same > cross);
  Alcotest.(check bool) "uplinks were exercised" true
    (r.Cluster.uplink_utilization > 0.0)

let test_matrix_deterministic () =
  let a = Cluster.run_matrix ~vms:4 (kvm_arm ()) in
  let b = Cluster.run_matrix ~vms:4 (kvm_arm ()) in
  Alcotest.(check bool) "same bytes out" true (a = b)

(* --- service chain ------------------------------------------------- *)

let test_chain_hops () =
  let r = Cluster.run_chain ~requests:50 (kvm_arm ()) in
  Alcotest.(check int) "seven hops" 7 (List.length r.Cluster.hops);
  List.iter
    (fun (name, us) ->
      Alcotest.(check bool) (name ^ " positive") true (us > 0.0))
    r.Cluster.hops;
  (* Stamps partition the end-to-end interval exactly. *)
  let sum = List.fold_left (fun s (_, us) -> s +. us) 0.0 r.Cluster.hops in
  Alcotest.(check bool) "hops sum to the total" true
    (Float.abs (sum -. r.Cluster.mean_total_us) < 0.01);
  Alcotest.(check bool) "backend crossed the uplink" true
    r.Cluster.backend_cross_host;
  let hop n = List.assoc n r.Cluster.hops in
  (* The backend hop is exactly the service decomposition — the stamps
     bracket one Machine.spend. *)
  let hyp = kvm_arm () in
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let service_us =
    Armvirt_arch.Machine.elapsed_us machine
      (Armvirt_engine.Cycles.of_int (Cluster.service_cycles hyp))
  in
  Alcotest.(check (float 0.01)) "backend hop = service decomposition"
    service_us (hop "backend");
  (* The cross-host hop includes at least the 2 us wire propagation. *)
  Alcotest.(check bool) "lb->backend pays the wire" true
    (hop "lb->backend" > 2.0)

let test_chain_single_host () =
  let r = Cluster.run_chain ~requests:20 ~spec:Topology.Single (xen_arm ()) in
  Alcotest.(check bool) "no cross-host hop on one host" false
    r.Cluster.backend_cross_host;
  Alcotest.(check bool) "p99 >= mean-ish" true
    (r.Cluster.p99_total_us >= r.Cluster.mean_total_us *. 0.99)

(* --- load generator ------------------------------------------------ *)

let test_loadgen_monotone_tail () =
  let r =
    Cluster.run_loadgen ~requests:400 ~vms:8
      ~loads:[ 0.3; 0.6; 0.9; 1.1 ] (kvm_arm ())
  in
  Alcotest.(check int) "all points" 4 (List.length r.Cluster.points);
  List.iter
    (fun p ->
      Alcotest.(check int) "all requests completed" 400 p.Cluster.completed)
    r.Cluster.points;
  let p99s = List.map (fun p -> p.Cluster.p99_us) r.Cluster.points in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "p99 monotone in offered load" true (monotone p99s);
  (* The hockey stick: past the knee the tail is far above the idle
     tail. *)
  let lo = List.hd p99s and hi = List.nth p99s 3 in
  Alcotest.(check bool)
    (Printf.sprintf "knee visible (%.1f -> %.1f us)" lo hi)
    true
    (hi > 2.0 *. lo)

let test_loadgen_million_rps () =
  (* ISSUE acceptance: at 16 backends the sweep tops out above one
     million simulated requests per second offered. Two points only —
     the top of the default sweep — to keep the test quick. *)
  let r =
    Cluster.run_loadgen ~requests:200 ~vms:16 ~loads:[ 1.1 ] (kvm_arm ())
  in
  let top = List.hd r.Cluster.points in
  Alcotest.(check bool)
    (Printf.sprintf "offered %.0f rps >= 1e6" top.Cluster.offered_rps)
    true
    (top.Cluster.offered_rps >= 1e6)

let test_loadgen_seed_replay () =
  let a = Cluster.run_loadgen ~seed:7 ~requests:200 ~vms:4 (kvm_arm ()) in
  let b = Cluster.run_loadgen ~seed:7 ~requests:200 ~vms:4 (kvm_arm ()) in
  Alcotest.(check bool) "same seed, same curve" true (a = b);
  let c = Cluster.run_loadgen ~seed:8 ~requests:200 ~vms:4 (kvm_arm ()) in
  Alcotest.(check bool) "different seed, different arrivals" true (a <> c)

let test_loadgen_bad_args () =
  Alcotest.check_raises "zero load"
    (Invalid_argument "Cluster.run_loadgen: load <= 0") (fun () ->
      ignore (Cluster.run_loadgen ~loads:[ 0.0 ] (kvm_arm ())))

(* --- experiment wrappers: jobs invariance -------------------------- *)

let with_jobs n f =
  let saved = Runner.jobs () in
  Runner.set_jobs n;
  Fun.protect ~finally:(fun () -> Runner.set_jobs saved) f

let test_experiment_jobs_invariant () =
  let matrix_1 = with_jobs 1 (fun () -> Experiment.cluster_matrix ()) in
  let matrix_4 = with_jobs 4 (fun () -> Experiment.cluster_matrix ()) in
  Alcotest.(check bool) "matrix jobs-invariant" true (matrix_1 = matrix_4);
  Alcotest.(check int) "five models" 5 (List.length matrix_1);
  let chain_1 =
    with_jobs 1 (fun () -> Experiment.cluster_chain ~requests:20 ())
  in
  let chain_4 =
    with_jobs 4 (fun () -> Experiment.cluster_chain ~requests:20 ())
  in
  Alcotest.(check bool) "chain jobs-invariant" true (chain_1 = chain_4)

let test_experiment_loadgen_all_models_knee () =
  (* Every hypervisor model's curve must show the saturation knee. *)
  let results =
    Experiment.cluster_loadgen ~vms:4 ~loads:[ 0.2; 1.1 ] ()
  in
  Alcotest.(check int) "five models" 5 (List.length results);
  List.iter
    (fun (name, r) ->
      match r.Cluster.points with
      | [ lo; hi ] ->
          Alcotest.(check bool) (name ^ " knee") true
            (hi.Cluster.p99_us > 2.0 *. lo.Cluster.p99_us)
      | _ -> Alcotest.fail "two points expected")
    results

let () =
  Alcotest.run "cluster"
    [
      ( "matrix",
        [
          Alcotest.test_case "shape" `Quick test_matrix_shape;
          Alcotest.test_case "vhost beats dom0 copy" `Quick
            test_matrix_vhost_beats_dom0_copy;
          Alcotest.test_case "cross-host wire bound" `Quick
            test_matrix_cross_host_wire_bound;
          Alcotest.test_case "deterministic" `Quick test_matrix_deterministic;
        ] );
      ( "chain",
        [
          Alcotest.test_case "hops" `Quick test_chain_hops;
          Alcotest.test_case "single host" `Quick test_chain_single_host;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "monotone tail" `Quick test_loadgen_monotone_tail;
          Alcotest.test_case "million rps" `Quick test_loadgen_million_rps;
          Alcotest.test_case "seed replay" `Quick test_loadgen_seed_replay;
          Alcotest.test_case "bad args" `Quick test_loadgen_bad_args;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "jobs invariant" `Quick
            test_experiment_jobs_invariant;
          Alcotest.test_case "all models knee" `Quick
            test_experiment_loadgen_all_models_knee;
        ] );
    ]
