(* Tests for Armvirt_vswitch: per-port profiles, forwarding, MAC
   learning and flooding, bounded egress queues with drop accounting,
   and uplink trunks (VLAN framing, cross-switch learning, wire
   utilization). *)

module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Packet = Armvirt_net.Packet
module Link = Armvirt_net.Link
module Platform = Armvirt_core.Platform
module Port_profile = Armvirt_vswitch.Port_profile
module Switch = Armvirt_vswitch.Switch
module Topology = Armvirt_vswitch.Topology

let kvm_arm () = Platform.hypervisor Platform.Arm_m400 Platform.Kvm
let xen_arm () = Platform.hypervisor Platform.Arm_m400 Platform.Xen

let run_process hyp f =
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let sim = Machine.sim machine in
  Sim.spawn sim ~name:"test" f;
  Sim.run sim

(* --- port profiles ------------------------------------------------- *)

let test_profile_costs () =
  let kvm = Port_profile.of_hypervisor (kvm_arm ()) in
  let xen = Port_profile.of_hypervisor (xen_arm ()) in
  Alcotest.(check bool) "vhost is zero-copy" true kvm.Port_profile.zero_copy;
  Alcotest.(check bool) "Xen copies" false xen.Port_profile.zero_copy;
  (* Per-packet constants differ, but the Dom0 copy's per-byte term is
     what separates the models at GRO sizes. *)
  let bytes = 64 * 1024 in
  let cost p =
    Port_profile.ingress_cost p ~bytes + Port_profile.egress_cost p ~bytes
  in
  Alcotest.(check bool) "Xen port cost above KVM at 64K" true
    (cost xen > cost kvm);
  (* Zero-copy cost must not scale with bytes. *)
  Alcotest.(check int) "KVM cost byte-independent" (cost kvm)
    (Port_profile.ingress_cost kvm ~bytes:1
    + Port_profile.egress_cost kvm ~bytes:1)

let test_profile_fabric_floor () =
  (* Even a native (free) I/O profile pays the switching fabric, so
     forwarding can never be instantaneous. *)
  let native = Platform.native Platform.Arm_m400 in
  let p = Port_profile.of_hypervisor native in
  Alcotest.(check bool) "fabric floor" true
    (Port_profile.ingress_cost p ~bytes:1 > 0)

(* --- local forwarding ---------------------------------------------- *)

let test_forward_local () =
  let hyp = kvm_arm () in
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let sw =
    Switch.create ~name:"s0" machine (Port_profile.of_hypervisor hyp)
  in
  let got = ref [] in
  let p0 =
    Switch.attach sw ~mac:10 ~deliver:(fun ~src:_ ~dst:_ _ -> ())
  in
  let _p1 =
    Switch.attach sw ~mac:11 ~deliver:(fun ~src ~dst pkt ->
        got := (src, dst, Packet.id pkt) :: !got)
  in
  run_process hyp (fun () ->
      let pkt = Packet.create ~payload:100 ~id:7 () in
      Switch.transmit sw ~port:p0 ~dst:11 pkt);
  Alcotest.(check (list (triple int int int))) "frame delivered"
    [ (10, 11, 7) ] !got;
  let stats = Switch.port_stats sw in
  let s0 = List.nth stats 0 and s1 = List.nth stats 1 in
  Alcotest.(check int) "src rx" 1 s0.Switch.rx;
  Alcotest.(check int) "dst tx" 1 s1.Switch.tx;
  Alcotest.(check int) "no drops" 0 (Switch.dropped sw)

let test_forward_takes_time () =
  let hyp = kvm_arm () in
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let sim = Machine.sim machine in
  let sw =
    Switch.create ~name:"s0" machine (Port_profile.of_hypervisor hyp)
  in
  let arrival = ref Cycles.zero in
  let p0 = Switch.attach sw ~mac:0 ~deliver:(fun ~src:_ ~dst:_ _ -> ()) in
  let _ =
    Switch.attach sw ~mac:1 ~deliver:(fun ~src:_ ~dst:_ _ ->
        arrival := Sim.current_time ())
  in
  run_process hyp (fun () ->
      Switch.transmit sw ~port:p0 ~dst:1 (Packet.create ~id:1 ()));
  Alcotest.(check bool) "delivery strictly later than t0" true
    (Cycles.to_int !arrival > 0);
  ignore (Sim.now sim)

(* --- learning and flooding ----------------------------------------- *)

let test_learning_and_flood () =
  let hyp = kvm_arm () in
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let sw =
    Switch.create ~name:"s0" machine (Port_profile.of_hypervisor hyp)
  in
  let seen = Array.make 3 0 in
  let ports =
    Array.init 3 (fun i ->
        Switch.attach sw ~mac:i ~deliver:(fun ~src:_ ~dst:_ _ ->
            seen.(i) <- seen.(i) + 1))
  in
  run_process hyp (fun () ->
      (* Unknown destination: floods to every port but the ingress. *)
      Switch.transmit sw ~port:ports.(0) ~dst:2 (Packet.create ~id:1 ());
      Sim.delay (Cycles.of_int 10_000_000);
      (* The reply teaches the switch MAC 2's port; a second send from
         port 0 must now go only to port 2. *)
      Switch.transmit sw ~port:ports.(2) ~dst:0 (Packet.create ~id:2 ());
      Sim.delay (Cycles.of_int 10_000_000);
      Switch.transmit sw ~port:ports.(0) ~dst:2 (Packet.create ~id:3 ()));
  Alcotest.(check int) "one flood" 1 (Switch.flooded sw);
  Alcotest.(check int) "port1 saw only the flood" 1 seen.(1);
  Alcotest.(check int) "port2 saw flood + direct" 2 seen.(2);
  Alcotest.(check int) "port0 saw the reply" 1 seen.(0);
  (* MACs 0 and 2 transmitted, so both are learned; MAC 1 never spoke. *)
  Alcotest.(check (list int)) "learned MACs" [ 0; 2 ]
    (List.map fst (Switch.mac_table sw))

(* --- drop accounting ----------------------------------------------- *)

let test_drop_accounting () =
  let hyp = xen_arm () in
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let sw =
    Switch.create ~queue_capacity:1 ~name:"s0" machine
      (Port_profile.of_hypervisor hyp)
  in
  let delivered = ref 0 in
  let pr =
    Switch.attach sw ~mac:1 ~deliver:(fun ~src:_ ~dst:_ _ -> incr delivered)
  in
  let senders =
    Array.init 4 (fun i ->
        Switch.attach sw ~mac:(10 + i) ~deliver:(fun ~src:_ ~dst:_ _ -> ()))
  in
  run_process hyp (fun () ->
      (* Teach MAC 1 first so the burst forwards directly — drops must
         be egress-queue overflow, not flood artifacts. *)
      Switch.transmit sw ~port:pr ~dst:10 (Packet.create ~id:0 ());
      Sim.delay (Cycles.of_int 10_000_000);
      (* Four guests kick the same destination at the same instant:
         identical ingress costs land all four frames on the 1-deep
         egress queue in the same tick — one is accepted, three drop. *)
      Array.iter
        (fun s ->
          Sim.spawn_here ~name:"sender" (fun () ->
              Switch.transmit sw ~port:s ~dst:1 (Packet.create ~id:1 ())))
        senders);
  let drops = Switch.dropped sw in
  Alcotest.(check int) "three dropped" 3 drops;
  Alcotest.(check int) "one delivered" 1 !delivered;
  let s_pr = List.nth (Switch.port_stats sw) pr in
  Alcotest.(check int) "drops accounted on the port" drops s_pr.Switch.drops;
  Alcotest.(check int) "tx accounted on the port" 1 s_pr.Switch.tx;
  Alcotest.(check int) "queue drained" 0 s_pr.Switch.queue_depth

let test_bad_args () =
  let hyp = kvm_arm () in
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let profile = Port_profile.of_hypervisor hyp in
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Switch.create: queue_capacity < 1") (fun () ->
      ignore (Switch.create ~queue_capacity:0 ~name:"s0" machine profile));
  let sw = Switch.create ~name:"s0" machine profile in
  let _ = Switch.attach sw ~mac:7 ~deliver:(fun ~src:_ ~dst:_ _ -> ()) in
  Alcotest.check_raises "duplicate MAC"
    (Invalid_argument "Switch s0: MAC 7 already attached") (fun () ->
      ignore (Switch.attach sw ~mac:7 ~deliver:(fun ~src:_ ~dst:_ _ -> ())))

(* --- uplinks ------------------------------------------------------- *)

let test_uplink_cross_switch () =
  let hyp = kvm_arm () in
  let topo = Topology.build ~vms:2 hyp Topology.Pair in
  let got = ref [] in
  Topology.set_handler topo ~vm:1 (fun ~src ~dst pkt ->
      got := (src, dst, Packet.framing_bytes pkt) :: !got);
  run_process hyp (fun () ->
      Topology.send topo ~src:0 ~dst:1 (Packet.create ~payload:500 ~id:1 ()));
  (* The 802.1Q tag rides only the wire: the delivered frame is back to
     untagged framing. *)
  Alcotest.(check (list (triple int int int))) "delivered untagged"
    [ (0, 1, Packet.default_framing) ] !got;
  (* The far switch learned the source MAC as reachable via the uplink. *)
  (match Switch.mac_table (Topology.switch topo 1) with
  | (0, Switch.Via_uplink _) :: _ -> ()
  | _ -> Alcotest.fail "expected MAC 0 via uplink on s1");
  Alcotest.(check bool) "uplink utilization measured" true
    (Topology.max_uplink_utilization topo > 0.0)

let test_uplink_vlan_on_wire () =
  let hyp = kvm_arm () in
  let topo = Topology.build ~vms:2 hyp Topology.Pair in
  run_process hyp (fun () ->
      Topology.send topo ~src:0 ~dst:1 (Packet.create ~payload:500 ~id:1 ()));
  (* Exactly one frame crossed, on s0's outbound wire; busy cycles must
     account the tagged size: payload + default framing + VLAN tag. *)
  let wire = List.hd (Switch.uplink_links (Topology.switch topo 0)) in
  Alcotest.(check int) "one delivery" 1 (Link.delivered wire);
  let tagged = 500 + Packet.default_framing + Packet.vlan_tag_bytes in
  let machine = hyp.Armvirt_hypervisor.Hypervisor.machine in
  let cycles_per_byte = Machine.freq_ghz machine *. 8.0 /. 10.0 in
  let expect = int_of_float (ceil (float_of_int tagged *. cycles_per_byte)) in
  Alcotest.(check bool) "busy cycles match tagged frame" true
    (abs (Link.busy_cycles wire - expect) <= 2)

let test_star_topology () =
  let hyp = kvm_arm () in
  (* 4 VMs over 2 leaves: vm0,2 on leaf0; vm1,3 on leaf1. vm0 -> vm3
     crosses leaf0 -> spine -> leaf1. *)
  let topo = Topology.build ~vms:4 hyp (Topology.Star 2) in
  let got = ref 0 in
  Topology.set_handler topo ~vm:3 (fun ~src:_ ~dst pkt ->
      if dst = 3 then got := !got + Packet.id pkt);
  run_process hyp (fun () ->
      Topology.send topo ~src:0 ~dst:3 (Packet.create ~id:21 ()));
  Alcotest.(check int) "delivered across the spine" 21 !got;
  Alcotest.(check int) "two hosts + spine" 2 (Topology.hosts topo);
  Alcotest.(check bool) "spine exists" true (Topology.spine topo <> None)

let () =
  Alcotest.run "vswitch"
    [
      ( "profile",
        [
          Alcotest.test_case "port costs order" `Quick test_profile_costs;
          Alcotest.test_case "fabric floor" `Quick test_profile_fabric_floor;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "local forward" `Quick test_forward_local;
          Alcotest.test_case "takes time" `Quick test_forward_takes_time;
          Alcotest.test_case "learning and flood" `Quick
            test_learning_and_flood;
        ] );
      ( "queues",
        [
          Alcotest.test_case "drop accounting" `Quick test_drop_accounting;
          Alcotest.test_case "bad args" `Quick test_bad_args;
        ] );
      ( "uplinks",
        [
          Alcotest.test_case "cross switch" `Quick test_uplink_cross_switch;
          Alcotest.test_case "vlan on wire" `Quick test_uplink_vlan_on_wire;
          Alcotest.test_case "star" `Quick test_star_topology;
        ] );
    ]
