(* Tests for ESR syndrome decoding and its integration into the KVM ARM
   exit dispatcher's per-reason counters. *)

module Sim = Armvirt_engine.Sim
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model
module Counter = Armvirt_stats.Counter
module Esr = Armvirt_arch.Esr
module H = Armvirt_hypervisor

let test_ec_encodings () =
  (* The architectural EC values (ARM ARM D17.2.37). *)
  Alcotest.(check int) "WFI/WFE" 0x01 (Esr.ec Esr.Wfi_wfe);
  Alcotest.(check int) "HVC64" 0x16 (Esr.ec Esr.Hvc64);
  Alcotest.(check int) "SMC64" 0x17 (Esr.ec Esr.Smc64);
  Alcotest.(check int) "sysreg" 0x18 (Esr.ec Esr.Sysreg_trap);
  Alcotest.(check int) "inst abort" 0x20 (Esr.ec Esr.Inst_abort_lower);
  Alcotest.(check int) "data abort" 0x24 (Esr.ec Esr.Data_abort_lower)

let test_roundtrip () =
  List.iter
    (fun cls ->
      let syndrome = Esr.encode cls ~iss:0x1234 in
      match Esr.decode syndrome with
      | Some (cls', iss) ->
          Alcotest.(check string) "class survives" (Esr.describe cls)
            (Esr.describe cls');
          Alcotest.(check int) "iss survives" 0x1234 iss
      | None -> Alcotest.fail "decode failed")
    Esr.all;
  Alcotest.(check bool) "unknown EC rejected" true (Esr.decode 0 = None);
  Alcotest.(check bool) "of_ec total on known codes" true
    (List.for_all (fun cls -> Esr.of_ec (Esr.ec cls) = Some cls) Esr.all);
  Alcotest.check_raises "ISS width"
    (Invalid_argument "Esr.encode: ISS exceeds 25 bits") (fun () ->
      ignore (Esr.encode Esr.Hvc64 ~iss:(1 lsl 25)))

let prop_encode_distinct =
  QCheck.Test.make ~name:"distinct classes never collide"
    QCheck.(pair (int_bound 6) (int_bound 6))
    (fun (i, j) ->
      let a = List.nth Esr.all i and b = List.nth Esr.all j in
      i = j || Esr.encode a ~iss:0 <> Esr.encode b ~iss:0)

let test_marker_parity () =
  (* esr.mli promises short_name cls = Marker.reason_to_string
     (marker_reason cls) for every class: the two mnemonic tables (arch
     side and obs side) may never drift, because the M1 marker lint and
     the stat report both parse labels back through Esr.short_name. *)
  let module Marker = Armvirt_obs.Marker in
  List.iter
    (fun cls ->
      Alcotest.(check string)
        (Esr.describe cls)
        (Esr.short_name cls)
        (Marker.reason_to_string (Esr.marker_reason cls)))
    Esr.all;
  Alcotest.(check (list string))
    "the reason enums cover the same set in the same order"
    (List.map Esr.short_name Esr.all)
    (List.map Marker.reason_to_string Marker.all_reasons);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Marker.reason_to_string r ^ " round-trips")
        true
        (Marker.reason_of_string (Marker.reason_to_string r) = Some r))
    Marker.all_reasons;
  Alcotest.(check bool) "unknown mnemonic rejected" true
    (Marker.reason_of_string "hvcc" = None);
  (* Builder output matches the legacy literal grammar byte for byte —
     the STAT_baseline goldens depend on it. *)
  Alcotest.(check string) "exit label" "kvm_arm.exit/hvc/p3"
    (Marker.exit ~hyp:"kvm_arm" ~reason:Marker.Hvc ~pcpu:3);
  Alcotest.(check string) "entry label" "xen_arm.entry/p2/d7"
    (Marker.entry ~hyp:"xen_arm" ~pcpu:2 ~domid:7 ());
  Alcotest.(check string) "entry without domain" "kvm_x86.entry/p0"
    (Marker.entry ~hyp:"kvm_x86" ~pcpu:0 ());
  Alcotest.(check string) "op label" "kvm_arm.hypercall"
    (Marker.op ~hyp:"kvm_arm" "hypercall");
  Alcotest.(check string) "port label" "vswitch.s0/p4/rx"
    (Marker.port ~switch:"s0" ~port:4 Marker.Rx);
  Alcotest.(check string) "flood label" "vswitch.s0/flood"
    (Marker.flood ~switch:"s0");
  Alcotest.(check string) "uplink label" "wire.s0-u1/tx"
    (Marker.uplink ~switch:"s0" ~uplink:1 Marker.Tx);
  Alcotest.check_raises "bad exit_name mnemonic rejected"
    (Invalid_argument "Marker.exit_name: \"hvcc\" is not an exit mnemonic")
    (fun () -> ignore (Marker.exit_name ~hyp:"kvm_arm" ~reason:"hvcc" ~pcpu:0));
  Alcotest.check_raises "uplinks have no drop counter"
    (Invalid_argument "Marker.uplink: wires carry rx/tx only")
    (fun () -> ignore (Marker.uplink ~switch:"s0" ~uplink:0 Marker.Drop))

let test_exit_reason_counters () =
  let machine =
    Machine.create (Sim.create ())
      ~cost:(Cost_model.Arm Cost_model.arm_default) ~num_cpus:8
  in
  let kvm = H.Kvm_arm.create machine in
  Sim.spawn (Machine.sim machine) ~name:"driver" (fun () ->
      H.Kvm_arm.hypercall kvm;
      H.Kvm_arm.hypercall kvm;
      H.Kvm_arm.interrupt_controller_trap kvm;
      ignore (H.Kvm_arm.io_latency_out kvm));
  Sim.run (Machine.sim machine);
  let counters = Machine.counters machine in
  (* Exit markers use the Accounting label grammar, keyed per PCPU;
     all these paths run on VCPU0's PCPU 4. *)
  let reason cls =
    Counter.get counters
      (Armvirt_obs.Accounting.exit_label ~hyp:"kvm_arm"
         ~reason:(Esr.short_name cls) ~pcpu:4)
  in
  Alcotest.(check int) "two hypercall exits" 2 (reason Esr.Hvc64);
  Alcotest.(check int) "two MMIO exits (GIC access + kick)" 2
    (reason Esr.Data_abort_lower);
  Alcotest.(check int) "no IRQ exits in these paths" 0 (reason Esr.Irq);
  Alcotest.(check int) "every exit re-entered" 4
    (Counter.get counters
       (Armvirt_obs.Accounting.entry_label ~hyp:"kvm_arm" ~pcpu:4 ~domid:1 ()))

let () =
  Alcotest.run "esr"
    [
      ( "esr",
        [
          Alcotest.test_case "EC encodings" `Quick test_ec_encodings;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          QCheck_alcotest.to_alcotest prop_encode_distinct;
          Alcotest.test_case "marker parity" `Quick test_marker_parity;
          Alcotest.test_case "exit-reason counters" `Quick
            test_exit_reason_counters;
        ] );
    ]
