(* Tests for Armvirt_core.Runner: the parallel experiment runner must be
   deterministic (identical results at every parallelism level), its
   memo table must cache correctly, and cell keys must hash stably. *)

module Runner = Armvirt_core.Runner
module Experiment = Armvirt_core.Experiment

(* --- Runner.map ----------------------------------------------------- *)

let test_map_preserves_order () =
  let squares = Runner.map ~jobs:4 (fun x -> x * x) (List.init 37 Fun.id) in
  Alcotest.(check (list int)) "input order" (List.init 37 (fun i -> i * i))
    squares

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Runner.map ~jobs:4 (fun x -> x + 2) [ 7 ])

let test_map_matches_list_map () =
  let xs = List.init 100 (fun i -> i * 3) in
  let f x = (x * 7) mod 11 in
  Alcotest.(check (list int)) "jobs=1 = jobs=4 = List.map" (List.map f xs)
    (Runner.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "parallel agrees" (List.map f xs)
    (Runner.map ~jobs:4 f xs)

let test_map_raises_lowest_index_error () =
  let f x = if x mod 3 = 0 && x > 0 then failwith (string_of_int x) else x in
  (* Indices 3, 6, 9... all fail; index 3's exception must win no matter
     how the domains were scheduled. *)
  match Runner.map ~jobs:4 f (List.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected a failure to propagate"
  | exception Failure msg -> Alcotest.(check string) "lowest index" "3" msg

let test_set_jobs_validation () =
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Runner.set_jobs: jobs < 1") (fun () ->
      Runner.set_jobs 0);
  Runner.set_jobs 3;
  Alcotest.(check int) "set/get" 3 (Runner.jobs ());
  Runner.set_jobs 1

(* --- Key ------------------------------------------------------------ *)

let test_key_seed_stable () =
  let k = Runner.Key.v ~platform:"arm" ~hyp:"kvm" ~iterations:10 () in
  let k' = Runner.Key.v ~platform:"arm" ~hyp:"kvm" ~iterations:10 () in
  Alcotest.(check int) "same key, same seed" (Runner.Key.seed k)
    (Runner.Key.seed k');
  Alcotest.(check bool) "positive" true (Runner.Key.seed k > 0);
  let other = Runner.Key.v ~platform:"arm" ~hyp:"xen" ~iterations:10 () in
  Alcotest.(check bool) "different key, different seed" true
    (Runner.Key.seed k <> Runner.Key.seed other);
  let tuned = Runner.Key.v ~platform:"arm" ~hyp:"kvm" ~tuning:"vhe" () in
  Alcotest.(check bool) "tuning discriminates" true
    (Runner.Key.seed k <> Runner.Key.seed tuned)

(* --- Memo ----------------------------------------------------------- *)

let test_memo_caches () =
  let t = Runner.Memo.create () in
  let calls = ref 0 in
  let k = Runner.Key.v ~platform:"arm" ~hyp:"kvm" () in
  let compute () = incr calls; 42 in
  Alcotest.(check int) "first" 42 (Runner.Memo.find_or_compute t k compute);
  Alcotest.(check int) "second" 42 (Runner.Memo.find_or_compute t k compute);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Runner.Memo.hits t);
  Alcotest.(check int) "one miss" 1 (Runner.Memo.misses t);
  Runner.Memo.clear t;
  Alcotest.(check int) "recomputed after clear" 42
    (Runner.Memo.find_or_compute t k compute);
  Alcotest.(check int) "clear drops entries" 2 !calls;
  Alcotest.(check int) "stats survive clear" 2 (Runner.Memo.misses t)

(* --- Experiment determinism across parallelism levels --------------- *)

let with_jobs n f =
  let saved = Runner.jobs () in
  Runner.set_jobs n;
  Fun.protect ~finally:(fun () -> Runner.set_jobs saved) f

let run_at_jobs n artifact =
  with_jobs n (fun () ->
      Experiment.reset_memo ();
      artifact ())

let test_table2_deterministic () =
  let serial = run_at_jobs 1 Experiment.table2 in
  let parallel = run_at_jobs 4 Experiment.table2 in
  Alcotest.(check bool) "table2 records identical at jobs 1 and 4" true
    (serial = parallel)

let test_fig4_deterministic () =
  let serial = run_at_jobs 1 Experiment.fig4 in
  let parallel = run_at_jobs 4 Experiment.fig4 in
  Alcotest.(check bool) "fig4 records identical at jobs 1 and 4" true
    (serial = parallel)

let test_experiment_memo_hits () =
  Experiment.reset_memo ();
  let hits0, misses0 = Experiment.memo_stats () in
  ignore (Experiment.table2 ());
  let _, misses1 = Experiment.memo_stats () in
  Alcotest.(check bool) "cold table2 misses" true (misses1 > misses0);
  ignore (Experiment.table2 ());
  let hits2, misses2 = Experiment.memo_stats () in
  Alcotest.(check bool) "warm table2 hits the cache" true (hits2 > hits0);
  Alcotest.(check int) "warm table2 adds no misses" misses1 misses2;
  Experiment.reset_memo ()

let prop_map_equals_list_map =
  QCheck.Test.make ~name:"map agrees with List.map at any jobs level"
    QCheck.(pair (int_range 1 8) (list (int_bound 1000)))
    (fun (jobs, xs) ->
      Runner.map ~jobs (fun x -> (x * 31) lxor 5) xs
      = List.map (fun x -> (x * 31) lxor 5) xs)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "runner"
    [
      ( "map",
        [
          Alcotest.test_case "preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "matches List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "lowest-index error" `Quick
            test_map_raises_lowest_index_error;
          Alcotest.test_case "set_jobs validation" `Quick
            test_set_jobs_validation;
        ]
        @ qcheck [ prop_map_equals_list_map ] );
      ("key", [ Alcotest.test_case "seed stable" `Quick test_key_seed_stable ]);
      ("memo", [ Alcotest.test_case "caches" `Quick test_memo_caches ]);
      ( "determinism",
        [
          Alcotest.test_case "table2 jobs 1 = jobs 4" `Quick
            test_table2_deterministic;
          Alcotest.test_case "fig4 jobs 1 = jobs 4" `Quick
            test_fig4_deterministic;
          Alcotest.test_case "memo hit accounting" `Quick
            test_experiment_memo_hits;
        ] );
    ]
