(* Tests for Armvirt_engine: cycles arithmetic, the event heap, the
   effect-based simulator and its synchronization primitives. *)

module Cycles = Armvirt_engine.Cycles
module Heap = Armvirt_engine.Heap
module Sim = Armvirt_engine.Sim

let cycles_of n = Cycles.of_int n

(* --- Cycles -------------------------------------------------------- *)

let test_cycles_basics () =
  Alcotest.(check int) "zero" 0 (Cycles.to_int Cycles.zero);
  Alcotest.(check int) "one" 1 (Cycles.to_int Cycles.one);
  Alcotest.(check int) "add" 30 Cycles.(to_int (of_int 10 + of_int 20));
  Alcotest.(check int) "sub" 5 Cycles.(to_int (of_int 15 - of_int 10));
  Alcotest.(check int) "scale" 60 (Cycles.to_int (Cycles.scale 3 (cycles_of 20)));
  Alcotest.(check int) "sum" 6
    (Cycles.to_int (Cycles.sum [ cycles_of 1; cycles_of 2; cycles_of 3 ]))

let test_cycles_errors () =
  Alcotest.check_raises "negative of_int"
    (Invalid_argument "Cycles.of_int: negative cycle count") (fun () ->
      ignore (Cycles.of_int (-1)));
  Alcotest.check_raises "negative sub"
    (Invalid_argument "Cycles.sub: negative result") (fun () ->
      ignore (Cycles.sub (cycles_of 1) (cycles_of 2)));
  Alcotest.check_raises "negative scale"
    (Invalid_argument "Cycles.scale: negative factor") (fun () ->
      ignore (Cycles.scale (-1) Cycles.one))

let test_cycles_time_conversion () =
  (* 2400 cycles at 2.4 GHz is exactly one microsecond. *)
  Alcotest.(check (float 1e-9)) "to_us" 1.0 (Cycles.to_us ~hz:2.4e9 (cycles_of 2400));
  Alcotest.(check int) "of_us roundtrip" 2400
    (Cycles.to_int (Cycles.of_us ~hz:2.4e9 1.0));
  Alcotest.(check (float 1e-9)) "x86 freq" 4.0
    (Cycles.to_us ~hz:2.1e9 (cycles_of 8400))

let test_cycles_pp () =
  Alcotest.(check string) "thousands separators" "6,500"
    (Format.asprintf "%a" Cycles.pp (cycles_of 6500));
  Alcotest.(check string) "small" "71" (Format.asprintf "%a" Cycles.pp (cycles_of 71));
  Alcotest.(check string) "millions" "1,234,567"
    (Format.asprintf "%a" Cycles.pp (cycles_of 1234567))

let prop_cycles_add_commutative =
  QCheck.Test.make ~name:"cycles add commutative"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      Cycles.(equal (of_int a + of_int b) (of_int b + of_int a)))

let prop_cycles_sub_inverse =
  QCheck.Test.make ~name:"cycles (a+b)-b = a"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      Cycles.(equal (of_int a + of_int b - of_int b) (of_int a)))

(* --- Heap ---------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:30 ~seq:0 "c";
  Heap.push h ~time:10 ~seq:1 "a";
  Heap.push h ~time:20 ~seq:2 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> "empty"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    [ first; second; third ];
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_fifo_at_same_time () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5 ~seq:i i
  done;
  let order = List.init 10 (fun _ ->
      match Heap.pop h with Some (_, _, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "seq breaks ties" (List.init 10 Fun.id) order

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "peek empty" true (Heap.peek h = None);
  Heap.push h ~time:7 ~seq:0 "x";
  (match Heap.peek h with
  | Some (7, 0, "x") -> ()
  | _ -> Alcotest.fail "peek should return minimum without removing");
  Alcotest.(check int) "size unchanged" 1 (Heap.size h)

let prop_heap_random_pairs =
  (* Push arbitrary (time, seq) pairs and check the popped key sequence
     equals the sorted key list, with every payload accounted for. In
     the simulator seq is a unique global counter, so we inject
     uniqueness the same way: the push index breaks the random seq. *)
  QCheck.Test.make ~name:"heap pops equal stable sort of (time, seq)"
    QCheck.(list (pair (int_bound 100) (int_bound 100)))
    (fun pairs ->
      let n = List.length pairs in
      let h = Heap.create () in
      List.iteri
        (fun i (time, seq) -> Heap.push h ~time ~seq:((seq * n) + i) i)
        pairs;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, s, v) -> drain ((t, s, v) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.mapi (fun i (t, s) -> (t, (s * n) + i, i)) pairs
        |> List.stable_sort (fun (t1, s1, _) (t2, s2, _) ->
               match Int.compare t1 t2 with
               | 0 -> Int.compare s1 s2
               | c -> c)
      in
      popped = expected)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted by (time, seq)"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun seq time -> Heap.push h ~time ~seq time) times;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, _, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort Int.compare times)

let test_heap_empty_errors () =
  let h : unit Heap.t = Heap.create () in
  Alcotest.check_raises "min_time on empty"
    (Invalid_argument "Heap.min_time: empty heap") (fun () ->
      ignore (Heap.min_time h));
  Alcotest.check_raises "pop_min on empty"
    (Invalid_argument "Heap.pop_min: empty heap") (fun () ->
      ignore (Heap.pop_min h))

let test_heap_order_across_grow () =
  (* 100 pushes cross the 16 -> 32 -> 64 -> 128 capacity doublings;
     decreasing times force a full sift-up each push. *)
  let h = Heap.create () in
  let n = 100 in
  for i = 0 to n - 1 do
    Heap.push h ~time:(n - i) ~seq:i i
  done;
  let popped = List.init n (fun _ -> Heap.pop_min h) in
  Alcotest.(check (list int)) "latest pushes pop first"
    (List.init n (fun j -> n - 1 - j))
    popped;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_pop_liveness () =
  (* The pre-PR heap left popped entries reachable from the backing
     array, pinning their payloads until a later push overwrote the
     slot. A popped value must be collectable immediately. *)
  let h = Heap.create () in
  let w = Weak.create 1 in
  let setup () =
    let v = ref 42 in
    Weak.set w 0 (Some v);
    Heap.push h ~time:0 ~seq:0 v;
    (* A second entry keeps the heap (and its backing array) live. *)
    Heap.push h ~time:1 ~seq:1 (ref 0)
  in
  setup ();
  let drop_popped () = ignore (Heap.pop_min h) in
  drop_popped ();
  Gc.full_major ();
  Alcotest.(check bool) "popped value collected" false (Weak.check w 0);
  Alcotest.(check int) "remaining entry untouched" 1 (Heap.size h)

(* --- Fifo ---------------------------------------------------------- *)

module Fifo = Armvirt_engine.Fifo

let test_fifo_order_across_wraparound () =
  let q = Fifo.create () in
  (* Push/pop enough to wrap the ring head past several grow cycles. *)
  let popped = ref [] in
  for i = 1 to 5 do
    Fifo.push q i
  done;
  for _ = 1 to 3 do
    popped := Fifo.pop q :: !popped
  done;
  for i = 6 to 45 do
    Fifo.push q i
  done;
  while not (Fifo.is_empty q) do
    popped := Fifo.pop q :: !popped
  done;
  Alcotest.(check (list int)) "strict FIFO across grow + wrap"
    (List.init 45 (fun i -> i + 1))
    (List.rev !popped);
  Alcotest.(check int) "length zero" 0 (Fifo.length q)

let test_fifo_pop_empty_errors () =
  let q : int Fifo.t = Fifo.create () in
  Alcotest.check_raises "pop on empty" (Invalid_argument "Fifo.pop: empty")
    (fun () -> ignore (Fifo.pop q))

(* --- Sim ----------------------------------------------------------- *)

let test_sim_delay_advances_time () =
  let sim = Sim.create () in
  let finish = ref Cycles.zero in
  Sim.spawn sim ~name:"delayer" (fun () ->
      Sim.delay (cycles_of 100);
      Sim.delay (cycles_of 23);
      finish := Sim.current_time ());
  Sim.run sim;
  Alcotest.(check int) "time accumulated" 123 (Cycles.to_int !finish);
  Alcotest.(check int) "sim clock" 123 (Cycles.to_int (Sim.now sim))

let test_sim_interleaving_deterministic () =
  let sim = Sim.create () in
  let log = ref [] in
  let record tag = log := tag :: !log in
  Sim.spawn sim ~name:"a" (fun () ->
      record "a0";
      Sim.delay (cycles_of 10);
      record "a10";
      Sim.delay (cycles_of 20);
      record "a30");
  Sim.spawn sim ~name:"b" (fun () ->
      record "b0";
      Sim.delay (cycles_of 15);
      record "b15");
  Sim.run sim;
  Alcotest.(check (list string)) "global cycle order"
    [ "a0"; "b0"; "a10"; "b15"; "a30" ]
    (List.rev !log)

let test_sim_outside_process_errors () =
  Alcotest.check_raises "delay outside"
    (Invalid_argument "Sim.delay called outside a simulation process")
    (fun () -> Sim.delay Cycles.one)

let test_sim_signal_broadcast () =
  let sim = Sim.create () in
  let s = Sim.Signal.create sim in
  let woken = ref 0 in
  for i = 1 to 3 do
    Sim.spawn sim ~name:(Printf.sprintf "waiter%d" i) (fun () ->
        Sim.Signal.wait s;
        incr woken)
  done;
  Sim.spawn sim ~name:"notifier" (fun () ->
      Sim.delay (cycles_of 50);
      Alcotest.(check int) "three waiters parked" 3 (Sim.Signal.waiters s);
      Sim.Signal.notify s);
  Sim.run sim;
  Alcotest.(check int) "all woken" 3 !woken

let test_sim_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Sim.Mailbox.create sim in
  let received = ref [] in
  Sim.spawn sim ~name:"producer" (fun () ->
      List.iter (fun v -> Sim.Mailbox.send mb v) [ 1; 2; 3 ]);
  Sim.spawn sim ~name:"consumer" (fun () ->
      for _ = 1 to 3 do
        received := Sim.Mailbox.recv mb :: !received
      done);
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ] (List.rev !received)

let test_sim_mailbox_blocking_recv () =
  let sim = Sim.create () in
  let mb = Sim.Mailbox.create sim in
  let got = ref (-1) in
  let when_got = ref Cycles.zero in
  Sim.spawn sim ~name:"consumer" (fun () ->
      got := Sim.Mailbox.recv mb;
      when_got := Sim.current_time ());
  Sim.spawn sim ~name:"producer" (fun () ->
      Sim.delay (cycles_of 77);
      Sim.Mailbox.send mb 42);
  Sim.run sim;
  Alcotest.(check int) "value" 42 !got;
  Alcotest.(check int) "woken at send time" 77 (Cycles.to_int !when_got)

let test_sim_resource_serializes () =
  let sim = Sim.create () in
  let r = Sim.Resource.create sim ~capacity:1 in
  let finish = Array.make 2 0 in
  for i = 0 to 1 do
    Sim.spawn sim ~name:(Printf.sprintf "user%d" i) (fun () ->
        Sim.Resource.use r (cycles_of 100);
        finish.(i) <- Cycles.to_int (Sim.current_time ()))
  done;
  Sim.run sim;
  Alcotest.(check int) "first done at 100" 100 finish.(0);
  Alcotest.(check int) "second serialized to 200" 200 finish.(1)

let test_sim_resource_capacity_two () =
  let sim = Sim.create () in
  let r = Sim.Resource.create sim ~capacity:2 in
  let finish = Array.make 3 0 in
  for i = 0 to 2 do
    Sim.spawn sim ~name:(Printf.sprintf "user%d" i) (fun () ->
        Sim.Resource.use r (cycles_of 100);
        finish.(i) <- Cycles.to_int (Sim.current_time ()))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "two run in parallel, third waits"
    [ 100; 100; 200 ]
    (Array.to_list finish)

let test_sim_deadlock_detection () =
  let sim = Sim.create () in
  let s = Sim.Signal.create sim in
  Sim.spawn sim ~name:"stuck-waiter" (fun () -> Sim.Signal.wait s);
  (match Sim.run sim with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Deadlock names ->
      Alcotest.(check bool) "names the process" true
        (String.length names > 0
        && String.equal names "stuck-waiter"))

let test_sim_run_until () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim ~name:"ticker" (fun () ->
      for i = 1 to 5 do
        Sim.delay (cycles_of 10);
        log := (i * 10) :: !log
      done);
  Sim.run_until sim (cycles_of 25);
  Alcotest.(check (list int)) "only events <= 25" [ 10; 20 ] (List.rev !log);
  Sim.run sim;
  Alcotest.(check (list int)) "rest completes" [ 10; 20; 30; 40; 50 ]
    (List.rev !log)

let test_sim_run_until_advances_clock () =
  (* Regression: run_until used to leave [now] at the last drained
     event's time instead of the horizon, so a later [schedule] relative
     to [now] fired too early. *)
  let sim = Sim.create () in
  Sim.spawn sim ~name:"early" (fun () -> Sim.delay (cycles_of 10));
  Sim.run_until sim (cycles_of 25);
  Alcotest.(check int) "clock at horizon, not last event" 25
    (Cycles.to_int (Sim.now sim));
  (* A horizon with no events at all must still advance the clock. *)
  Sim.run_until sim (cycles_of 40);
  Alcotest.(check int) "empty drain still advances" 40
    (Cycles.to_int (Sim.now sim))

let test_sim_mailbox_recv_fairness () =
  (* Many consumers park before any value arrives; sends must wake them
     in park (spawn) order, not reversed or shuffled. *)
  let sim = Sim.create () in
  let mb = Sim.Mailbox.create sim in
  let log = ref [] in
  for i = 0 to 4 do
    Sim.spawn sim ~name:(Printf.sprintf "consumer%d" i) (fun () ->
        let v = Sim.Mailbox.recv mb in
        log := (i, v) :: !log)
  done;
  Sim.spawn sim ~name:"producer" (fun () ->
      Sim.delay (cycles_of 5);
      for v = 100 to 104 do
        Sim.Mailbox.send mb v
      done);
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "first parked consumer gets first value"
    [ (0, 100); (1, 101); (2, 102); (3, 103); (4, 104) ]
    (List.rev !log)

let test_sim_resource_acquire_fairness () =
  (* A capacity-1 resource with many waiters must grant in park order. *)
  let sim = Sim.create () in
  let r = Sim.Resource.create sim ~capacity:1 in
  let order = ref [] in
  for i = 0 to 4 do
    Sim.spawn sim ~name:(Printf.sprintf "user%d" i) (fun () ->
        Sim.Resource.use r (cycles_of 10);
        order := i :: !order)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO grant order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

let test_sim_spawn_here () =
  let sim = Sim.create () in
  let child_time = ref Cycles.zero in
  Sim.spawn sim ~name:"parent" (fun () ->
      Sim.delay (cycles_of 40);
      Sim.spawn_here ~name:"child" (fun () ->
          Sim.delay (cycles_of 2);
          child_time := Sim.current_time ()));
  Sim.run sim;
  Alcotest.(check int) "child starts at parent's time" 42
    (Cycles.to_int !child_time)

let test_sim_yield_is_fair () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim ~name:"a" (fun () ->
      log := "a1" :: !log;
      Sim.yield ();
      log := "a2" :: !log);
  Sim.spawn sim ~name:"b" (fun () -> log := "b" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "yield lets b run" [ "a1"; "b"; "a2" ]
    (List.rev !log)

let test_sim_exception_propagates () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"raiser" (fun () ->
      Sim.delay (cycles_of 10);
      failwith "boom");
  (match Sim.run sim with
  | () -> Alcotest.fail "expected the process exception to escape"
  | exception Failure msg -> Alcotest.(check string) "payload" "boom" msg)

let test_sim_resource_released_on_exception () =
  let sim = Sim.create () in
  let r = Sim.Resource.create sim ~capacity:1 in
  let second_ran = ref false in
  Sim.spawn sim ~name:"crasher" (fun () ->
      match
        Sim.Resource.acquire r;
        (try Sim.delay (cycles_of 10) with e -> Sim.Resource.release r; raise e);
        Sim.Resource.release r
      with
      | () -> ()
      | exception Failure _ -> ());
  Sim.spawn sim ~name:"waiter" (fun () ->
      Sim.Resource.acquire r;
      second_ran := true;
      Sim.Resource.release r);
  Sim.run sim;
  Alcotest.(check bool) "resource not leaked" true !second_ran;
  Alcotest.(check int) "capacity restored" 1 (Sim.Resource.available r)

let test_sim_double_wake_rejected () =
  let sim = Sim.create () in
  let stash = ref None in
  Sim.spawn sim ~name:"sleeper" (fun () ->
      Sim.suspend (fun wake -> stash := Some wake));
  Sim.spawn sim ~name:"waker" (fun () ->
      Sim.delay (cycles_of 5);
      let wake = Option.get !stash in
      wake ();
      match wake () with
      | () -> Alcotest.fail "double wake must be rejected"
      | exception Invalid_argument _ -> ());
  Sim.run sim

let deadlock_names spawn_order =
  let sim = Sim.create () in
  let s = Sim.Signal.create sim in
  List.iter
    (fun n -> Sim.spawn sim ~name:n (fun () -> Sim.Signal.wait s))
    spawn_order;
  match Sim.run sim with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Deadlock names -> names

let test_sim_deadlock_names_sorted () =
  let a = deadlock_names [ "zeta"; "alpha"; "mid" ] in
  let b = deadlock_names [ "mid"; "zeta"; "alpha" ] in
  Alcotest.(check string) "names sorted" "alpha, mid, zeta" a;
  Alcotest.(check string) "independent of park order" a b

let test_sim_events_processed () =
  let run () =
    let sim = Sim.create () in
    Sim.spawn sim ~name:"p" (fun () ->
        for _ = 1 to 3 do
          Sim.delay Cycles.one
        done);
    Sim.run sim;
    Sim.events_processed sim
  in
  (* One spawn event plus three delay expiries. *)
  Alcotest.(check int) "exact event count" 4 (run ());
  Alcotest.(check int) "deterministic across runs" (run ()) (run ())

let null_observer =
  {
    Sim.on_spawn = (fun ~id:_ ~name:_ ~at:_ -> ());
    on_park = (fun ~id:_ ~name:_ ~at:_ -> ());
    on_wake = (fun ~id:_ ~name:_ ~at:_ -> ());
    on_contention = (fun ~resource:_ ~proc:_ ~at:_ ~waited:_ -> ());
    on_queue_depth = (fun ~mailbox:_ ~at:_ ~depth:_ -> ());
  }

let test_sim_mailbox_depth_transitions () =
  (* Depth events fire exactly on queue-length transitions: the direct
     send-to-parked-receiver hand-off bypasses the queue and must stay
     silent (it used to re-report the unchanged depth). *)
  let sim = Sim.create () in
  let depths = ref [] in
  Sim.set_observer sim
    (Some
       {
         null_observer with
         Sim.on_queue_depth =
           (fun ~mailbox:_ ~at:_ ~depth -> depths := depth :: !depths);
       });
  let mb = Sim.Mailbox.create ~name:"mb" sim in
  Sim.spawn sim ~name:"consumer" (fun () ->
      (* Parks first; the matching send hands off directly. *)
      ignore (Sim.Mailbox.recv mb);
      Sim.delay (cycles_of 10);
      ignore (Sim.Mailbox.recv mb);
      ignore (Sim.Mailbox.recv mb));
  Sim.spawn sim ~name:"producer" (fun () ->
      Sim.delay Cycles.one;
      Sim.Mailbox.send mb 1;
      (* direct handoff: no depth event *)
      Sim.Mailbox.send mb 2;
      (* enqueued: depth 1 *)
      Sim.Mailbox.send mb 3 (* enqueued: depth 2 *));
  Sim.run sim;
  Alcotest.(check (list int)) "transitions only" [ 1; 2; 1; 0 ]
    (List.rev !depths)

(* --- BENCH_events.json golden --------------------------------------- *)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i =
    i + n <= m && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir "BENCH_events.json") then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_repo_root parent

let test_bench_events_schema () =
  (* Tests run from _build/default/test; walk up past _build to the
     checkout root, the same way the lint driver finds dune-project. *)
  match find_repo_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "BENCH_events.json not found above the test cwd"
  | Some root ->
      let path = Filename.concat root "BENCH_events.json" in
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "contains %s" needle)
            true (contains s needle))
        [
          "\"schema\": \"armvirt.bench-events/v2\"";
          "\"scale\": 1";
          "\"results\": [";
          "\"engine_micro_geomean_speedup\"";
          "\"observer_overhead\": [";
          "\"exit_mix\"";
          "\"disabled_overhead_pct\"";
          "\"enabled_overhead_pct\"";
          "\"heap-churn\"";
          "\"delay-churn\"";
          "\"suspend-wake\"";
          "\"resource-contend\"";
          "\"mailbox-pingpong\"";
          "\"micro-suite\"";
          "\"netperf-rr\"";
          "\"migrate-precopy\"";
          "\"cluster-matrix\"";
          "\"cluster-loadgen\"";
        ]

let prop_sim_determinism =
  QCheck.Test.make ~name:"two identical runs produce identical traces"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 100))
    (fun delays ->
      let run () =
        let sim = Sim.create () in
        let log = ref [] in
        List.iteri
          (fun i d ->
            Sim.spawn sim ~name:(string_of_int i) (fun () ->
                Sim.delay (cycles_of d);
                log := (i, Cycles.to_int (Sim.current_time ())) :: !log))
          delays;
        Sim.run sim;
        !log
      in
      run () = run ())

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "cycles",
        [
          Alcotest.test_case "basics" `Quick test_cycles_basics;
          Alcotest.test_case "errors" `Quick test_cycles_errors;
          Alcotest.test_case "time conversion" `Quick test_cycles_time_conversion;
          Alcotest.test_case "pretty printing" `Quick test_cycles_pp;
        ]
        @ qcheck [ prop_cycles_add_commutative; prop_cycles_sub_inverse ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo at same time" `Quick test_heap_fifo_at_same_time;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "empty errors" `Quick test_heap_empty_errors;
          Alcotest.test_case "order across grow" `Quick
            test_heap_order_across_grow;
          Alcotest.test_case "popped values collectable" `Quick
            test_heap_pop_liveness;
        ]
        @ qcheck [ prop_heap_sorted; prop_heap_random_pairs ] );
      ( "fifo",
        [
          Alcotest.test_case "order across wraparound" `Quick
            test_fifo_order_across_wraparound;
          Alcotest.test_case "pop empty errors" `Quick
            test_fifo_pop_empty_errors;
        ] );
      ( "sim",
        [
          Alcotest.test_case "delay advances time" `Quick test_sim_delay_advances_time;
          Alcotest.test_case "interleaving deterministic" `Quick
            test_sim_interleaving_deterministic;
          Alcotest.test_case "outside process errors" `Quick
            test_sim_outside_process_errors;
          Alcotest.test_case "signal broadcast" `Quick test_sim_signal_broadcast;
          Alcotest.test_case "mailbox fifo" `Quick test_sim_mailbox_fifo;
          Alcotest.test_case "mailbox blocking recv" `Quick
            test_sim_mailbox_blocking_recv;
          Alcotest.test_case "resource serializes" `Quick test_sim_resource_serializes;
          Alcotest.test_case "resource capacity two" `Quick
            test_sim_resource_capacity_two;
          Alcotest.test_case "deadlock detection" `Quick test_sim_deadlock_detection;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "run_until advances clock" `Quick
            test_sim_run_until_advances_clock;
          Alcotest.test_case "mailbox recv fairness" `Quick
            test_sim_mailbox_recv_fairness;
          Alcotest.test_case "resource acquire fairness" `Quick
            test_sim_resource_acquire_fairness;
          Alcotest.test_case "spawn_here" `Quick test_sim_spawn_here;
          Alcotest.test_case "yield fairness" `Quick test_sim_yield_is_fair;
          Alcotest.test_case "exception propagates" `Quick
            test_sim_exception_propagates;
          Alcotest.test_case "resource released on exception" `Quick
            test_sim_resource_released_on_exception;
          Alcotest.test_case "double wake rejected" `Quick
            test_sim_double_wake_rejected;
          Alcotest.test_case "deadlock names sorted" `Quick
            test_sim_deadlock_names_sorted;
          Alcotest.test_case "events processed counter" `Quick
            test_sim_events_processed;
          Alcotest.test_case "mailbox depth transitions" `Quick
            test_sim_mailbox_depth_transitions;
        ]
        @ qcheck [ prop_sim_determinism ] );
      ( "bench",
        [
          Alcotest.test_case "BENCH_events.json schema" `Quick
            test_bench_events_schema;
        ] );
    ]
