(* armvirt: command-line front end for the reproduction.

   Subcommands:
     list          enumerate experiments, platforms and workloads
     run           regenerate paper tables/figures by experiment id
     micro         run the Table I microbenchmark suite on one hypervisor
     app           run one application workload through the Figure 4 model
     rr            run the Netperf TCP_RR decomposition on one hypervisor
     trace         run an experiment under the tracer and export the trace
     explore       sweep or calibrate the design space (lib/explore)
     migrate       live-migrate a loaded VM and report downtime vs the SLO
     fleet         consolidate N guests on one host: boot-storm, churn,
                   noisy-neighbor p99 vs fleet size
     cluster       VM-to-VM traffic over the virtual switch fabric:
                   throughput matrix, service chain, load-generator sweep
     bench-events  measure raw engine events/sec and emit BENCH_events.json
     lint          statically check the determinism invariants (lib/lint) *)

module Platform = Armvirt_core.Platform
module Experiment = Armvirt_core.Experiment
module Report = Armvirt_core.Report
module Observe = Armvirt_core.Observe
module Stat_report = Armvirt_core.Stat_report
module Export = Armvirt_obs.Export
module Metrics = Armvirt_obs.Metrics
module Stat = Armvirt_obs.Stat
module W = Armvirt_workloads
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Fleet = Armvirt_fleet
module Topology = Armvirt_vswitch.Topology

open Cmdliner

let ppf = Format.std_formatter

(* --- shared converters ------------------------------------------------ *)

let platform_conv =
  let parse = function
    | "arm" -> Ok Platform.Arm_m400
    | "arm-vhe" -> Ok Platform.Arm_m400_vhe
    | "x86" -> Ok Platform.X86_r320
    | s -> Error (`Msg (Printf.sprintf "unknown platform %S (arm|arm-vhe|x86)" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with
      | Platform.Arm_m400 -> "arm"
      | Platform.Arm_m400_vhe -> "arm-vhe"
      | Platform.X86_r320 -> "x86")
  in
  Arg.conv (parse, print)

let hyp_conv =
  let parse = function
    | "kvm" -> Ok (Some Platform.Kvm)
    | "xen" -> Ok (Some Platform.Xen)
    | "native" -> Ok None
    | s -> Error (`Msg (Printf.sprintf "unknown hypervisor %S (kvm|xen|native)" s))
  in
  let print fmt h =
    Format.pp_print_string fmt
      (match h with
      | Some Platform.Kvm -> "kvm"
      | Some Platform.Xen -> "xen"
      | None -> "native")
  in
  Arg.conv (parse, print)

let platform_arg =
  Arg.(
    value
    & opt platform_conv Platform.Arm_m400
    & info [ "p"; "platform" ] ~docv:"PLATFORM"
        ~doc:"Platform: arm, arm-vhe or x86.")

let hyp_arg =
  Arg.(
    value
    & opt hyp_conv (Some Platform.Kvm)
    & info [ "H"; "hypervisor" ] ~docv:"HYP"
        ~doc:"Hypervisor: kvm, xen or native.")

let resolve platform hyp =
  match hyp with
  | Some id -> Platform.hypervisor platform id
  | None -> Platform.native platform

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "must be a positive integer")
    | None -> Error (`Msg "expected an integer")
  in
  Cmdliner.Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run up to $(docv) independent simulation cells in parallel (OCaml \
           domains). Output is byte-identical at every level. Defaults to \
           $(b,ARMVIRT_JOBS) if set, else the machine's recommended domain \
           count.")

let apply_jobs = function
  | Some n -> Armvirt_core.Runner.set_jobs n
  | None -> ()

(* --- tracing plumbing ------------------------------------------------- *)

let format_conv =
  Arg.enum [ ("chrome", `Chrome); ("csv", `Csv); ("summary", `Summary) ]

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured trace of the run and write it to $(docv) as \
           Chrome trace-event JSON (open in Perfetto or chrome://tracing). \
           Use $(b,-) for stdout.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose" ]
        ~doc:
          "After the run, print runner metrics: memo hits/misses, per-cell \
           wall time, and the full metric registry in Prometheus text \
           format.")

(* Direct workload paths (micro/app/rr) never go through Runner.map, so
   they record themselves as one explicit cell. No-op when tracing is
   off. *)
let traced_cell label f =
  let v, cell = Observe.capture ~label f in
  Observe.record_cells [| cell |];
  v

let write_trace ppf ~format path =
  let procs = Observe.processes () in
  let render out =
    match format with
    | `Chrome -> Export.chrome out procs
    | `Csv -> Export.csv out procs
    | `Summary -> Export.summary out procs
  in
  match path with
  | "-" -> render Format.std_formatter
  | path ->
      let oc = open_out path in
      let out = Format.formatter_of_out_channel oc in
      render out;
      Format.pp_print_flush out ();
      close_out oc;
      let events =
        List.fold_left
          (fun acc (p : Export.process) -> acc + List.length p.events)
          0 procs
      in
      Format.fprintf ppf "wrote %s (%d cells, %d events)@." path
        (List.length procs) events

let print_verbose ppf =
  let hits, misses = Experiment.memo_stats () in
  Format.fprintf ppf "@.-- runner metrics --@.";
  Format.fprintf ppf "memo: %d hits, %d misses@." hits misses;
  Metrics.pp_prometheus ppf (Observe.metrics ())

let stat_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stat" ] ~docv:"FILE"
        ~doc:
          "After the run, write the exit-accounting report (per-reason \
           exit counts and latencies, guest/hypervisor cycle \
           attribution) as $(b,armvirt.stat/v1) JSON to $(docv); \
           $(b,-) writes it to stdout.")

let write_stat ppf ~context path =
  let acct = Stat_report.of_session () in
  let render out =
    Stat.render_json ~context out acct;
    Format.pp_print_flush out ()
  in
  match path with
  | "-" -> render Format.std_formatter
  | path ->
      let oc = open_out path in
      render (Format.formatter_of_out_channel oc);
      close_out oc;
      Format.fprintf ppf "wrote %s (%d accounting rows)@." path
        (List.length (Stat_report.of_session ()).Armvirt_obs.Accounting.vms)

(* Tracing, [--stat] and [--verbose] share a session: all need the
   observer hooks installed; they differ only in what is exported
   afterwards. *)
let with_session ~context ?(stat_file = None) ~trace_file ~verbose f =
  if trace_file = None && stat_file = None && not verbose then f ()
  else begin
    Observe.enable ~context ();
    Observe.set_verbose verbose;
    Fun.protect ~finally:Observe.disable (fun () ->
        let v = f () in
        (match trace_file with
        | Some path -> write_trace ppf ~format:`Chrome path
        | None -> ());
        (match stat_file with
        | Some path -> write_stat ppf ~context path
        | None -> ());
        if verbose then print_verbose ppf;
        v)
  end

(* --- list ------------------------------------------------------------- *)

let experiments =
  [
    ("table2", "Table II: the seven microbenchmarks on all four hypervisors");
    ("table3", "Table III: KVM ARM hypercall save/restore decomposition");
    ("table5", "Table V: Netperf TCP_RR latency analysis on ARM");
    ("fig4", "Figure 4: application benchmark performance, normalized");
    ("vhe", "Section VI: ARMv8.1 VHE microbenchmarks and app predictions");
    ("irqdist", "Section V ablation: distributing virtual interrupts");
    ("pinning", "Section IV check: Xen I/O latency vs pinning");
    ("zerocopy", "Section V what-if: Xen zero copy on ARM");
    ("oversub", "Extension: VM Switch cost under oversubscription");
    ("disk", "Extension: paravirtual block I/O latency/throughput");
    ("tail", "Extension: open-loop tail latency percentiles");
    ("coldstart", "Extension: cold-start stage-2 faulting");
    ("lrs", "Extension: vGIC list-register sensitivity");
    ("gicv3", "Extension: GICv2 vs GICv3 interrupt-controller ablation");
    ("ticks", "Extension: virtual-timer tick overhead per guest HZ");
    ("linkspeed", "Extension: TCP_STREAM at 1 vs 10 GbE wire speed");
    ("isolation", "Extension: measurement variability without isolation");
    ("structural", "Cross-validation: structural stacks vs analytic models");
    ("lazyswitch", "Extension: post-paper lazy state-switching optimizations");
    ("guestops", "Extension: guest-local operation costs (what stays native)");
    ("crosscall", "Extension: guest broadcast cross-call (TLB shootdown) cost");
    ("vapic", "Extension: x86 with vAPIC (hardware interrupt completion)");
    ("twodwalk", "Extension: nested paging's 24-access 2D page walk");
    ("multiqueue", "Extension: virtio-net multiqueue vs the IRQ bottleneck");
    ("tracereplay", "Extension: synthetic trace replay, per-request surcharges");
    ("consolidation", "Extension: VM density (N memcached VMs per host)");
    ("migrate", "Extension: live-migration downtime/SLO under request load");
    ("fig4chart", "Figure 4 as ASCII bars (ARM columns)");
  ]

let list_cmd =
  let run () =
    print_endline "Experiments (armvirt run <id>):";
    List.iter (fun (id, doc) -> Printf.printf "  %-10s %s\n" id doc) experiments;
    print_endline "\nPlatforms (-p): arm, arm-vhe, x86";
    print_endline "Hypervisors (-H): kvm, xen, native";
    print_endline "\nApplication workloads (armvirt app <name>):";
    List.iter
      (fun w ->
        Printf.printf "  %-14s %s\n" w.W.Workload.name
          w.W.Workload.description)
      W.Workload.all;
    List.iter
      (fun (n, d) -> Printf.printf "  %-14s %s\n" n d)
      [
        ("TCP_RR", "netperf 1-byte request-response (latency)");
        ("TCP_STREAM", "netperf bulk receive into the VM (throughput)");
        ("TCP_MAERTS", "netperf bulk transmit out of the VM (throughput)");
      ]
  in
  Cmd.v (Cmd.info "list" ~doc:"Enumerate experiments, platforms and workloads")
    Term.(const run $ const ())

(* --- run ---------------------------------------------------------------- *)

let run_experiment ppf = function
  | "table2" -> Report.pp_table2 ppf (Experiment.table2 ())
  | "table3" -> Report.pp_table3 ppf (Experiment.table3 ())
  | "table5" -> Report.pp_table5 ppf (Experiment.table5 ())
  | "fig4" -> Report.pp_fig4 ppf (Experiment.fig4 ())
  | "vhe" ->
      Report.pp_vhe ppf (Experiment.vhe ());
      Report.pp_vhe_app ppf (Experiment.vhe_app ())
  | "irqdist" -> Report.pp_irqdist ppf (Experiment.irqdist ())
  | "pinning" -> Report.pp_pinning ppf (Experiment.pinning ())
  | "zerocopy" ->
      Report.pp_zerocopy ppf (Experiment.zerocopy ());
      Format.fprintf ppf "x86 zero-copy break-even: %d bytes@."
        (Experiment.x86_zero_copy_break_even ())
  | "oversub" -> Report.pp_oversub ppf (Experiment.oversub ())
  | "disk" -> Report.pp_disk ppf (Experiment.disk ())
  | "tail" -> Report.pp_tail ppf (Experiment.tail ())
  | "coldstart" -> Report.pp_coldstart ppf (Experiment.coldstart ())
  | "lrs" -> Report.pp_lrs ppf (Experiment.lrs ())
  | "gicv3" -> Report.pp_gicv3 ppf (Experiment.gicv3 ())
  | "ticks" -> Report.pp_ticks ppf (Experiment.ticks ())
  | "linkspeed" -> Report.pp_linkspeed ppf (Experiment.linkspeed ())
  | "isolation" -> Report.pp_isolation ppf (Experiment.isolation ())
  | "structural" -> Report.pp_structural ppf (Experiment.structural ())
  | "lazyswitch" -> Report.pp_lazyswitch ppf (Experiment.lazyswitch ())
  | "guestops" -> Report.pp_guestops ppf (Experiment.guestops ())
  | "crosscall" -> Report.pp_crosscall ppf (Experiment.crosscall ())
  | "twodwalk" -> Report.pp_twodwalk ppf (Experiment.twodwalk ())
  | "multiqueue" -> Report.pp_multiqueue ppf (Experiment.multiqueue ())
  | "tracereplay" -> Report.pp_tracereplay ppf (Experiment.tracereplay ())
  | "vapic" ->
      Report.pp_vapic ppf (Experiment.vapic ());
      Report.pp_vapic_apps ppf (Experiment.vapic_apps ())
  | "consolidation" ->
      Report.pp_consolidation ppf (Experiment.consolidation ())
  | "migrate" -> Report.pp_migrate ppf (Experiment.migrate ())
  | "fig4chart" -> Report.pp_fig4_chart ppf (Experiment.fig4 ())
  | other -> Format.fprintf ppf "unknown experiment %S; try `armvirt list`@." other

let run_cmd =
  let ids =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (see `armvirt list`).")
  in
  let run jobs trace_file stat_file verbose ids =
    apply_jobs jobs;
    with_session ~context:(String.concat "+" ids) ~stat_file ~trace_file
      ~verbose (fun () -> List.iter (run_experiment ppf) ids)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate the paper's tables and figures")
    Term.(
      const run $ jobs_arg $ trace_file_arg $ stat_file_arg $ verbose_arg $ ids)

(* --- micro ---------------------------------------------------------------- *)

let micro_cmd =
  let iterations =
    Arg.(
      value & opt int 32
      & info [ "iterations" ] ~docv:"N" ~doc:"Iterations per microbenchmark.")
  in
  let run platform hyp iterations jobs trace_file stat_file =
    apply_jobs jobs;
    with_session ~context:"micro" ~stat_file ~trace_file ~verbose:false
      (fun () ->
        (* The hypervisor (and its machine) must be built inside the
           captured cell so the tracer attaches to it. *)
        traced_cell "micro#0.0" (fun () ->
            let hypervisor = resolve platform hyp in
            Format.fprintf ppf "%s on %s@." hypervisor.Hypervisor.name
              (Platform.name platform);
            let rows =
              W.Microbench.to_rows (W.Microbench.run ~iterations hypervisor)
            in
            List.iter
              (fun (name, cycles) ->
                Format.fprintf ppf "  %-28s %8d cycles@." name cycles)
              rows))
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"Run the Table I microbenchmark suite")
    Term.(
      const run $ platform_arg $ hyp_arg $ iterations $ jobs_arg
      $ trace_file_arg $ stat_file_arg)

(* --- app ------------------------------------------------------------------- *)

let app_cmd =
  let workload =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see `armvirt list`).")
  in
  let distribute =
    Arg.(
      value & flag
      & info [ "distribute-irqs" ]
          ~doc:"Spread virtual interrupts across all VCPUs (section V ablation).")
  in
  let run platform hyp name distribute jobs trace_file stat_file =
    apply_jobs jobs;
    with_session ~context:"app" ~stat_file ~trace_file ~verbose:false
    @@ fun () ->
    traced_cell "app#0.0" @@ fun () ->
    let hypervisor = resolve platform hyp in
    match String.uppercase_ascii name with
    | "TCP_RR" ->
        let r = W.Netperf.run_tcp_rr hypervisor in
        Format.fprintf ppf "%s: %.0f trans/s, %.1f us/trans (%.2fx native)@."
          hypervisor.Hypervisor.name r.W.Netperf.trans_per_sec
          r.W.Netperf.time_per_trans_us r.W.Netperf.normalized
    | "TCP_STREAM" ->
        let r = W.Netperf.tcp_stream hypervisor in
        Format.fprintf ppf "%s: %.2f Gb/s (%.2fx native time, %s-bound)@."
          hypervisor.Hypervisor.name r.W.Netperf.gbps
          r.W.Netperf.stream_normalized r.W.Netperf.stream_bottleneck
    | "TCP_MAERTS" ->
        let r = W.Netperf.tcp_maerts hypervisor in
        Format.fprintf ppf "%s: %.2f Gb/s (%.2fx native time, %s-bound)@."
          hypervisor.Hypervisor.name r.W.Netperf.gbps
          r.W.Netperf.stream_normalized r.W.Netperf.stream_bottleneck
    | _ -> (
        match W.Workload.find name with
        | None ->
            Format.fprintf ppf "unknown workload %S; try `armvirt list`@." name
        | Some w ->
            let irq_distribution =
              if distribute then W.App_model.All_vcpus
              else W.App_model.Single_vcpu
            in
            let v = W.App_model.run ~irq_distribution w hypervisor in
            Format.fprintf ppf
              "%s on %s: %.2fx native (overhead %.1f%%, bottleneck: %s)@."
              w.W.Workload.name hypervisor.Hypervisor.name
              v.W.App_model.normalized
              (W.App_model.overhead_percent v)
              v.W.App_model.bottleneck)
  in
  Cmd.v
    (Cmd.info "app" ~doc:"Run one application workload (Figure 4 model)")
    Term.(
      const run $ platform_arg $ hyp_arg $ workload $ distribute $ jobs_arg
      $ trace_file_arg $ stat_file_arg)

(* --- rr ---------------------------------------------------------------------- *)

let rr_cmd =
  let transactions =
    Arg.(
      value & opt int 400
      & info [ "transactions" ] ~docv:"N" ~doc:"Transactions to simulate.")
  in
  let run platform hyp transactions trace_file =
    with_session ~context:"rr" ~trace_file ~verbose:false @@ fun () ->
    traced_cell "rr#0.0" @@ fun () ->
    let hypervisor = resolve platform hyp in
    let r = W.Netperf.run_tcp_rr ~transactions hypervisor in
    Format.fprintf ppf "%s TCP_RR (%d transactions)@." hypervisor.Hypervisor.name
      transactions;
    Format.fprintf ppf "  trans/s       %10.0f@." r.W.Netperf.trans_per_sec;
    Format.fprintf ppf "  time/trans    %10.1f us@." r.W.Netperf.time_per_trans_us;
    Format.fprintf ppf "  send to recv  %10.1f us@." r.W.Netperf.send_to_recv_us;
    Format.fprintf ppf "  recv to send  %10.1f us@." r.W.Netperf.recv_to_send_us;
    let opt label = function
      | Some v -> Format.fprintf ppf "  %-13s %10.1f us@." label v
      | None -> ()
    in
    opt "-> VM recv" r.W.Netperf.recv_to_vm_recv_us;
    opt "in VM" r.W.Netperf.vm_recv_to_vm_send_us;
    opt "VM send ->" r.W.Netperf.vm_send_to_send_us
  in
  Cmd.v
    (Cmd.info "rr" ~doc:"Netperf TCP_RR latency decomposition (Table V)")
    Term.(const run $ platform_arg $ hyp_arg $ transactions $ trace_file_arg)

(* --- trace ---------------------------------------------------------------- *)

let trace_cmd =
  let target =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "What to trace: any experiment id from `armvirt list`, or \
             $(b,rr) / $(b,micro) for the direct workload paths (honouring \
             $(b,-p)/$(b,-H)).")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file; $(b,-) (default) writes to stdout.")
  in
  let format =
    Arg.(
      value & opt format_conv `Chrome
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Export format: $(b,chrome) (trace-event JSON for \
             Perfetto/chrome://tracing), $(b,csv), or $(b,summary) \
             (flame-style cycle attribution by category).")
  in
  (* The experiment's normal report goes to a null formatter: the trace
     is this command's output. *)
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let run platform hyp jobs target out format =
    apply_jobs jobs;
    Observe.enable ~context:target ();
    Fun.protect ~finally:Observe.disable (fun () ->
        (match target with
        | "rr" ->
            traced_cell "rr#0.0" (fun () ->
                let hypervisor = resolve platform hyp in
                ignore (W.Netperf.run_tcp_rr hypervisor))
        | "micro" ->
            traced_cell "micro#0.0" (fun () ->
                let hypervisor = resolve platform hyp in
                ignore (W.Microbench.run hypervisor))
        | id when List.mem_assoc id experiments -> run_experiment null_ppf id
        | other ->
            Format.fprintf ppf "unknown experiment %S; try `armvirt list`@."
              other;
            exit 2);
        write_trace ppf ~format out)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run an experiment under the tracer and export the trace")
    Term.(
      const run $ platform_arg $ hyp_arg $ jobs_arg $ target $ out $ format)

(* --- stat ----------------------------------------------------------------- *)

let stat_cmd =
  let targets =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:
            "What to account: any experiment id from `armvirt list`, \
             $(b,rr) / $(b,micro) for the direct workload paths \
             (honouring $(b,-p)/$(b,-H)), $(b,fleet) for a small \
             traced boot-storm whose entries are domain-tagged, or \
             $(b,cluster) for a traced two-host service chain with \
             per-port vswitch and wire counters. With \
             $(b,--diff), two armvirt.stat/v1 JSON files (old then \
             new).")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file; $(b,-) (default) writes to stdout.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("csv", `Csv); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "$(b,text) (perf-kvm-stat-style table), $(b,csv), or $(b,json) \
             (the armvirt.stat/v1 schema $(b,--diff) consumes).")
  in
  let per_vcpu =
    Arg.(
      value & flag
      & info [ "per-vcpu" ]
          ~doc:"Break exit rows out per physical CPU (VCPU pinning is 1:1).")
  in
  let per_domain =
    Arg.(
      value & flag
      & info [ "per-domain" ]
          ~doc:
            "Break entry counts out per guest domain. Only fleet \
             scenarios tag entries with a domid; on other targets this \
             adds nothing.")
  in
  let top =
    Arg.(
      value & opt int 0
      & info [ "top" ] ~docv:"N"
          ~doc:"Keep only the top $(docv) exit reasons by count; 0 = all.")
  in
  let iterations =
    Arg.(
      value & opt int 32
      & info [ "iterations" ] ~docv:"N"
          ~doc:
            "Iterations per microbenchmark ($(b,micro) target and \
             $(b,--crosscheck)).")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Regression-gate mode: compare two armvirt.stat/v1 JSON \
             reports and exit non-zero if any exit count, op count, \
             latency sum or cycle attribution moved beyond the \
             tolerances.")
  in
  let count_tolerance =
    Arg.(
      value & opt float Stat.default_thresholds.Stat.count_pct
      & info [ "count-tolerance" ] ~docv:"PCT"
          ~doc:
            "Max tolerated relative change of any count, in percent. The \
             simulation is deterministic, so the default is $(b,0): any \
             count change is a finding.")
  in
  let cycles_tolerance =
    Arg.(
      value & opt float Stat.default_thresholds.Stat.cycles_pct
      & info [ "cycles-tolerance" ] ~docv:"PCT"
          ~doc:
            "Max tolerated relative change of latency sums and \
             attribution cycles, in percent.")
  in
  let crosscheck =
    Arg.(
      value & flag
      & info [ "crosscheck" ]
          ~doc:
            "Validate the trace-derived accounting against the analytic \
             cost model on all five hypervisor models (Table III span \
             reconstruction, hypercall exit latency vs path costs and \
             Table II, structural exit mixes); exit non-zero if any \
             check is out of tolerance.")
  in
  let perturb_vgic_save =
    Arg.(
      value & opt (some int) None
      & info [ "perturb-vgic-save" ] ~docv:"CYCLES"
          ~doc:
            "Self-test hook for the $(b,--diff) gate: run the $(b,micro) \
             target on a split-mode KVM ARM model whose VGIC save cost \
             is overridden to $(docv) cycles (Table III default: 3250), \
             so the report measurably shifts.")
  in
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let read_file path = In_channel.with_open_bin path In_channel.input_all in
  let run platform hyp jobs iterations format out per_vcpu per_domain top diff
      crosscheck count_pct cycles_pct perturb targets =
    apply_jobs jobs;
    if diff then (
      match targets with
      | [ old_file; new_file ] -> (
          let thresholds = { Stat.count_pct; cycles_pct } in
          match Stat.diff ~thresholds (read_file old_file) (read_file new_file)
          with
          | Error msg ->
              Format.fprintf ppf "stat diff: %s@." msg;
              exit 2
          | Ok [] ->
              Format.fprintf ppf
                "stat diff: no findings (count tol %.2f%%, cycles tol \
                 %.2f%%)@."
                count_pct cycles_pct
          | Ok findings ->
              Stat.pp_findings ppf findings;
              exit 1)
      | _ ->
          Format.fprintf ppf "stat --diff needs exactly two JSON reports@.";
          exit 2)
    else if crosscheck then begin
      let checks = Stat_report.crosscheck ~iterations () in
      Stat_report.pp_checks ppf checks;
      if not (List.for_all Stat_report.check_ok checks) then exit 1
    end
    else
      match targets with
      | [ target ] ->
          Observe.enable ~context:target ();
          Fun.protect ~finally:Observe.disable (fun () ->
              (match target with
              | "micro" ->
                  traced_cell "micro#0.0" (fun () ->
                      let hypervisor =
                        match perturb with
                        | None -> resolve platform hyp
                        | Some save ->
                            (* Perturbed split-mode KVM ARM, whatever
                               -p/-H say: the knob exists to move the
                               committed baseline measurably. *)
                            let module Cost_model = Armvirt_arch.Cost_model in
                            let arm = Cost_model.arm_default in
                            let restore =
                              (arm.Cost_model.reg Armvirt_arch.Reg_class.Vgic)
                                .Cost_model.restore
                            in
                            let cost =
                              Cost_model.Arm
                                (Cost_model.with_reg_cost
                                   Armvirt_arch.Reg_class.Vgic ~save ~restore
                                   arm)
                            in
                            Armvirt_hypervisor.Kvm_arm.to_hypervisor
                              (Armvirt_hypervisor.Kvm_arm.create
                                 (Platform.machine_with ~cost))
                      in
                      ignore (W.Microbench.run ~iterations hypervisor))
              | "rr" ->
                  traced_cell "rr#0.0" (fun () ->
                      ignore (W.Netperf.run_tcp_rr (resolve platform hyp)))
              | "fleet" ->
                  traced_cell "fleet#0.0" (fun () ->
                      let desc =
                        Fleet.Descriptor.v ~vms:8
                          [ (Fleet.Descriptor.synthetic, 1) ]
                      in
                      ignore
                        (Fleet.Scenario.boot_storm (resolve platform hyp) desc))
              | "cluster" ->
                  (* A traced two-host service chain: the vswitch.* and
                     wire.* per-port counters surface as operation rows. *)
                  traced_cell "cluster#0.0" (fun () ->
                      ignore
                        (W.Cluster.run_chain ~requests:40
                           (resolve platform hyp)))
              | id when List.mem_assoc id experiments ->
                  run_experiment null_ppf id
              | other ->
                  Format.fprintf ppf
                    "unknown experiment %S; try `armvirt list`@." other;
                  exit 2);
              let acct = Stat_report.of_session () in
              let opts = { Stat.per_vcpu; per_domain; top } in
              let render fmt =
                (match format with
                | `Text -> Stat.render_text ~opts ~context:target fmt acct
                | `Csv -> Stat.render_csv ~opts ~context:target fmt acct
                | `Json -> Stat.render_json ~opts ~context:target fmt acct);
                Format.pp_print_flush fmt ()
              in
              match out with
              | "-" -> render Format.std_formatter
              | path ->
                  let oc = open_out path in
                  render (Format.formatter_of_out_channel oc);
                  close_out oc;
                  Format.fprintf ppf "wrote %s@." path)
      | _ ->
          Format.fprintf ppf
            "stat needs one target (or --diff OLD NEW / --crosscheck); try \
             `armvirt list`@.";
          exit 2
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "kvm_stat-style exit accounting: per-reason exit counts and \
          latencies, guest vs hypervisor cycle attribution, regression \
          diffing and the trace-vs-analytic crosscheck")
    Term.(
      const run $ platform_arg $ hyp_arg $ jobs_arg $ iterations $ format
      $ out $ per_vcpu $ per_domain $ top $ diff $ crosscheck
      $ count_tolerance $ cycles_tolerance $ perturb_vgic_save $ targets)

(* --- timeline ------------------------------------------------------------ *)

let timeline_cmd =
  let operation =
    Arg.(
      value
      & opt string "hypercall"
      & info [ "op" ] ~docv:"OP"
          ~doc:
            "Operation to trace: hypercall, ict, eoi, vmswitch, vipi, io-out \
             or io-in.")
  in
  let run platform hyp op =
    let hypervisor = resolve platform hyp in
    let machine = hypervisor.Hypervisor.machine in
    let trace = Armvirt_stats.Trace.create () in
    let path : (unit -> unit) option =
      match op with
      | "hypercall" -> Some hypervisor.Hypervisor.hypercall
      | "ict" -> Some hypervisor.Hypervisor.interrupt_controller_trap
      | "eoi" -> Some hypervisor.Hypervisor.virtual_irq_completion
      | "vmswitch" -> Some hypervisor.Hypervisor.vm_switch
      | "vipi" -> Some (fun () -> ignore (hypervisor.Hypervisor.virtual_ipi ()))
      | "io-out" ->
          Some (fun () -> ignore (hypervisor.Hypervisor.io_latency_out ()))
      | "io-in" ->
          Some (fun () -> ignore (hypervisor.Hypervisor.io_latency_in ()))
      | _ -> None
    in
    match path with
    | None ->
        Format.fprintf ppf
          "unknown operation %S (hypercall|ict|eoi|vmswitch|vipi|io-out|io-in)@."
          op
    | Some path ->
        Armvirt_engine.Sim.spawn
          (Armvirt_arch.Machine.sim machine)
          ~name:"timeline" (fun () ->
            Armvirt_arch.Machine.observe machine
              (Some
                 (fun ~label ~cycles ~now ->
                   Armvirt_stats.Trace.record trace ~label ~cycles ~now));
            path ();
            Armvirt_arch.Machine.observe machine None);
        Armvirt_engine.Sim.run (Armvirt_arch.Machine.sim machine);
        Format.fprintf ppf "%s: %s, step by step@." hypervisor.Hypervisor.name
          op;
        Armvirt_stats.Trace.pp_timeline ppf trace;
        Format.fprintf ppf "total: %d cycles@."
          (Armvirt_stats.Trace.total_cycles trace)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Cycle-by-cycle ledger of one hypervisor operation")
    Term.(const run $ platform_arg $ hyp_arg $ operation)

(* --- explore --------------------------------------------------------------- *)

module Explore = Armvirt_explore

let explore_cmd =
  let space_conv =
    let parse s =
      match Explore.Space.of_string s with
      | space -> Ok space
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Explore.Space.to_string s))
  in
  let sampler_conv =
    let parse s =
      match Explore.Sampler.of_string s with
      | sampler -> Ok sampler
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    Arg.conv
      (parse, fun fmt s -> Format.pp_print_string fmt (Explore.Sampler.to_string s))
  in
  let objective_conv =
    let parse s =
      match Explore.Objective.find s with
      | o -> Ok o
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    Arg.conv
      (parse, fun fmt (o : Explore.Objective.t) ->
        Format.pp_print_string fmt o.Explore.Objective.name)
  in
  let space_arg =
    Arg.(
      value
      & opt (some space_conv) None
      & info [ "space" ] ~docv:"SPACE"
          ~doc:
            "The design space: comma-separated $(i,axis)=$(i,spec) bindings \
             where spec is $(i,lo:hi:step) or explicit levels \
             $(i,v|v|...). Example: \
             $(b,vgic.save=2000:4375:625,lr_count=2|4,hyp=kvm|xen). Use \
             $(b,--knobs) to list axis names.")
  in
  let sampler_arg =
    Arg.(
      value
      & opt sampler_conv Explore.Sampler.Grid
      & info [ "sampler" ] ~docv:"SAMPLER"
          ~doc:
            "$(b,grid) (full cartesian product), $(b,lhs:N) (seeded Latin \
             hypercube, N samples) or $(b,oat) (one-at-a-time sensitivity \
             design).")
  in
  let objectives_arg =
    Arg.(
      value
      & opt_all objective_conv []
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:
            "Objective to evaluate at each point (repeatable; default \
             $(b,hypercall)). Use $(b,--objectives) to list.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file; $(b,-) (default) writes to stdout.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("md", `Md); ("csv", `Csv) ]) `Md
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "$(b,md) (markdown report with Pareto frontier and, for oat \
             runs, the sensitivity ranking) or $(b,csv) (one row per \
             point with a pareto 0/1 column).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"RNG seed for lhs sampling and calibration restarts.")
  in
  let calibrate_arg =
    Arg.(
      value & flag
      & info [ "calibrate" ]
          ~doc:
            "Instead of sweeping, search the space for the point optimizing \
             the (single) objective — coordinate descent with seeded \
             random restarts. Pair with an error objective \
             ($(b,hypercall-err), $(b,table2-err)) to recover cost-model \
             constants from the paper's targets.")
  in
  let restarts_arg =
    Arg.(
      value & opt positive_int 3
      & info [ "restarts" ] ~docv:"N" ~doc:"Calibration restarts.")
  in
  let knobs_arg =
    Arg.(value & flag & info [ "knobs" ] ~doc:"List the axis names and exit.")
  in
  let objectives_list_arg =
    Arg.(
      value & flag & info [ "objectives" ] ~doc:"List the objectives and exit.")
  in
  let with_out out f =
    match out with
    | "-" ->
        f Format.std_formatter;
        Format.pp_print_flush Format.std_formatter ()
    | path ->
        let oc = open_out path in
        let fmt = Format.formatter_of_out_channel oc in
        f fmt;
        Format.pp_print_flush fmt ();
        close_out oc;
        Format.fprintf ppf "wrote %s@." path
  in
  let run space sampler objectives out format seed calibrate restarts knobs
      objectives_list jobs trace_file =
    apply_jobs jobs;
    if knobs then
      List.iter
        (fun (n, d) -> Printf.printf "  %-18s %s\n" n d)
        Explore.Config.knobs
    else if objectives_list then
      List.iter
        (fun (o : Explore.Objective.t) ->
          Printf.printf "  %-15s %-10s %s %s\n" o.Explore.Objective.name
            (Printf.sprintf "[%s]" o.Explore.Objective.unit_)
            (match o.Explore.Objective.direction with
            | Explore.Objective.Min -> "min"
            | Explore.Objective.Max -> "max")
            o.Explore.Objective.doc)
        Explore.Objective.all
    else
      match space with
      | None ->
          Format.fprintf ppf
            "missing --space (try --knobs for axis names)@.";
          exit 2
      | Some space ->
          let objectives =
            match objectives with
            | [] -> [ Explore.Objective.find "hypercall" ]
            | l -> l
          in
          let base = Explore.Config.default in
          with_session ~context:"explore" ~trace_file ~verbose:false
          @@ fun () ->
          if calibrate then begin
            let objective = List.hd objectives in
            let r =
              Explore.Calibrate.search ~restarts ~seed ~base ~objective space
            in
            Format.fprintf ppf "calibrated %s (%s, %d evaluations, %d sweeps)@."
              objective.Explore.Objective.name objective.Explore.Objective.unit_
              r.Explore.Calibrate.evaluations r.Explore.Calibrate.sweeps;
            Format.fprintf ppf "  best: %s@."
              (Explore.Space.point_to_string r.Explore.Calibrate.best);
            Format.fprintf ppf "  value: %.6g %s@."
              r.Explore.Calibrate.best_value objective.Explore.Objective.unit_
          end
          else begin
            let sweep =
              Explore.Sweep.run ~seed ~base ~sampler ~objectives space
            in
            with_out out (fun fmt ->
                match format with
                | `Csv -> Explore.Sweep.pp_csv fmt sweep
                | `Md -> Explore.Sweep.pp_markdown fmt sweep)
          end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sweep or calibrate the design space: cost-model constants, \
          tuning knobs and hypervisor choice")
    Term.(
      const run $ space_arg $ sampler_arg $ objectives_arg $ out_arg
      $ format_arg $ seed_arg $ calibrate_arg $ restarts_arg $ knobs_arg
      $ objectives_list_arg $ jobs_arg $ trace_file_arg)

(* --- migrate --------------------------------------------------------------- *)

module Migrate = Armvirt_migrate

let migrate_cmd =
  let module Plan = Migrate.Plan in
  let opt_int names default docv doc =
    Arg.(value & opt int default & info names ~docv ~doc)
  in
  let opt_float names default docv doc =
    Arg.(value & opt float default & info names ~docv ~doc)
  in
  let d = Plan.default in
  let pages = opt_int [ "pages" ] d.Plan.pages "N" "Guest memory in pages." in
  let page_kb =
    opt_int [ "page-kb" ] d.Plan.page_kb "KB" "Page granule in KiB."
  in
  let vcpus = opt_int [ "vcpus" ] d.Plan.vcpus "N" "VCPUs to pause at blackout." in
  let hot_pages =
    opt_int [ "hot-pages" ] d.Plan.hot_pages "N"
      "Hot working-set size in pages."
  in
  let rate =
    opt_float [ "rate" ] d.Plan.txn_rate_hz "HZ"
      "Request arrival rate (each request dirties pages: the dirty rate)."
  in
  let bandwidth =
    opt_float [ "bandwidth" ] d.Plan.bandwidth_gbps "GBPS"
      "Migration link bandwidth in Gb/s."
  in
  let rounds =
    opt_int [ "rounds" ] d.Plan.max_rounds "N"
      "Pre-copy round cap before forced stop-and-copy."
  in
  let downtime =
    opt_float [ "downtime" ] d.Plan.downtime_target_us "US"
      "Downtime SLO in microseconds (the convergence test)."
  in
  let seed = opt_int [ "seed" ] d.Plan.seed "SEED" "Write-stream RNG seed." in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Run every platform/hypervisor model on the same plan (as \
             parallel runner cells) instead of the single $(b,-p)/$(b,-H) \
             configuration.")
  in
  let detail =
    Arg.(
      value & flag
      & info [ "rounds-detail" ]
          ~doc:"Also print per-round pages/length/p99 for every config.")
  in
  let format_arg =
    Arg.(
      value
      & opt (some (enum [ ("md", `Md); ("csv", `Csv) ])) None
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Machine-readable output instead of the text report: $(b,md) \
             or $(b,csv), one row per configuration.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file for --format; $(b,-) (default) is stdout.")
  in
  let with_out out f =
    match out with
    | "-" ->
        f Format.std_formatter;
        Format.pp_print_flush Format.std_formatter ()
    | path ->
        let oc = open_out path in
        let fmt = Format.formatter_of_out_channel oc in
        f fmt;
        Format.pp_print_flush fmt ();
        close_out oc;
        Format.fprintf ppf "wrote %s@." path
  in
  let table_rows rows =
    let header =
      [
        "config"; "transport"; "rounds"; "total_us"; "downtime_us";
        "pages_sent"; "pages_resent"; "final_pages"; "wp_faults"; "converged";
        "baseline_p99_us"; "worst_round"; "worst_p99_us"; "p99_degradation";
        "post_p99_us";
      ]
    in
    let cells (name, (r : W.Migration.result)) =
      [
        name;
        r.W.Migration.transport;
        string_of_int r.W.Migration.precopy_rounds;
        Printf.sprintf "%.1f" (r.W.Migration.total_ms *. 1e3);
        Printf.sprintf "%.1f" r.W.Migration.downtime_us;
        string_of_int r.W.Migration.pages_sent;
        string_of_int r.W.Migration.pages_resent;
        string_of_int r.W.Migration.final_pages;
        string_of_int r.W.Migration.wp_faults;
        string_of_bool r.W.Migration.converged;
        Printf.sprintf "%.2f" r.W.Migration.baseline_p99_us;
        string_of_int r.W.Migration.worst_round;
        Printf.sprintf "%.2f" r.W.Migration.worst_p99_us;
        Printf.sprintf "%.3f" r.W.Migration.p99_degradation;
        Printf.sprintf "%.2f" r.W.Migration.post_p99_us;
      ]
    in
    (header, List.map cells rows)
  in
  let run platform hyp pages page_kb vcpus hot_pages rate bandwidth rounds
      downtime seed compare detail format out jobs trace_file stat_file =
    apply_jobs jobs;
    let plan =
      {
        d with
        Plan.pages;
        page_kb;
        vcpus;
        hot_pages;
        txn_rate_hz = rate;
        bandwidth_gbps = bandwidth;
        max_rounds = rounds;
        downtime_target_us = downtime;
        seed;
      }
    in
    (match Plan.validate plan with
    | () -> ()
    | exception Invalid_argument msg ->
        Format.fprintf ppf "invalid plan: %s@." msg;
        exit 2);
    with_session ~context:"migrate" ~stat_file ~trace_file ~verbose:false
    @@ fun () ->
    let results =
      if compare then Experiment.migrate ~plan ()
      else
        [
          traced_cell "migrate#0.0" (fun () ->
              let hypervisor = resolve platform hyp in
              (hypervisor.Hypervisor.name, W.Migration.run ~plan hypervisor));
        ]
    in
    match format with
    | None ->
        Report.pp_migrate ppf results;
        if detail then Report.pp_migrate_rounds ppf results
    | Some fmt ->
        let header, rows = table_rows results in
        with_out out (fun out_ppf ->
            match fmt with
            | `Csv -> Report.pp_csv_table out_ppf ~header rows
            | `Md -> Report.pp_markdown_table out_ppf ~header rows)
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Live-migrate a VM under request load: pre-copy with stage-2 \
          dirty logging, downtime vs the SLO")
    Term.(
      const run $ platform_arg $ hyp_arg $ pages $ page_kb $ vcpus $ hot_pages
      $ rate $ bandwidth $ rounds $ downtime $ seed $ compare $ detail
      $ format_arg $ out_arg $ jobs_arg $ trace_file_arg $ stat_file_arg)

(* --- fleet ----------------------------------------------------------------- *)

let fleet_cmd =
  let scenario_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("boot-storm", `Boot);
               ("churn", `Churn);
               ("noisy-neighbor", `Noisy);
             ])
          `Boot
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "$(b,boot-storm) (N guests arrive in a window; time to all \
             ready), $(b,churn) (Poisson arrivals and departures; domid \
             recycling), or $(b,noisy-neighbor) (victim request p99 vs \
             fleet size).")
  in
  let vms_arg =
    Arg.(
      value & opt int 64
      & info [ "vms" ] ~docv:"N"
          ~doc:
            "Fleet size: guests in the boot-storm window / at churn \
             start / at the largest noisy-neighbor point.")
  in
  let mix_arg =
    Arg.(
      value & opt string "synthetic"
      & info [ "profile-mix" ] ~docv:"MIX"
          ~doc:
            "Per-VM workload profiles as $(b,name=share) pairs, e.g. \
             $(b,memcached=2,kernbench=1): any Table IV workload name \
             or $(b,synthetic). Guests cycle through the mix in \
             declared proportion.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("md", `Md); ("csv", `Csv) ]) `Md
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"$(b,md) (default) or $(b,csv), one row per cell.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file; $(b,-) (default) is stdout.")
  in
  let with_out out f =
    match out with
    | "-" ->
        f Format.std_formatter;
        Format.pp_print_flush Format.std_formatter ()
    | path ->
        let oc = open_out path in
        let fmt = Format.formatter_of_out_channel oc in
        f fmt;
        Format.pp_print_flush fmt ();
        close_out oc;
        Format.fprintf ppf "wrote %s@." path
  in
  let f1 = Printf.sprintf "%.1f" in
  let f3 = Printf.sprintf "%.3f" in
  let run scenario vms mix_spec format out jobs trace_file stat_file =
    apply_jobs jobs;
    let mix =
      match W.Fleet_profiles.parse_mix mix_spec with
      | Ok mix -> mix
      | Error e ->
          Format.fprintf ppf "invalid --profile-mix: %s@." e;
          exit 2
    in
    (match Fleet.Descriptor.v ~vms mix with
    | (_ : Fleet.Descriptor.t) -> ()
    | exception Invalid_argument msg ->
        Format.fprintf ppf "invalid fleet: %s@." msg;
        exit 2);
    with_session ~context:"fleet" ~stat_file ~trace_file ~verbose:false
    @@ fun () ->
    let header, rows =
      match scenario with
      | `Boot ->
          let results = Experiment.fleet_boot_storm ~vms ~mix () in
          ( [
              "config"; "vms"; "window_ms"; "time_to_ready_ms";
              "mean_boot_ms"; "p99_boot_ms"; "switches"; "peak_live";
            ],
            List.map
              (fun (name, (r : Fleet.Scenario.boot_storm_result)) ->
                [
                  name;
                  string_of_int r.Fleet.Scenario.vms;
                  f3 r.Fleet.Scenario.window_ms;
                  f3 r.Fleet.Scenario.time_to_ready_ms;
                  f3 r.Fleet.Scenario.mean_boot_ms;
                  f3 r.Fleet.Scenario.p99_boot_ms;
                  string_of_int r.Fleet.Scenario.switches;
                  string_of_int r.Fleet.Scenario.peak_live;
                ])
              results )
      | `Churn ->
          let results = Experiment.fleet_churn ~vms ~mix () in
          ( [
              "config"; "initial_vms"; "arrivals"; "admitted"; "retired";
              "peak_live"; "domid_reuses"; "drain_ms"; "switches";
            ],
            List.map
              (fun (name, (r : Fleet.Scenario.churn_result)) ->
                [
                  name;
                  string_of_int r.Fleet.Scenario.initial_vms;
                  string_of_int r.Fleet.Scenario.arrivals;
                  string_of_int r.Fleet.Scenario.admitted;
                  string_of_int r.Fleet.Scenario.retired;
                  string_of_int r.Fleet.Scenario.peak_live;
                  string_of_int r.Fleet.Scenario.domid_reuses;
                  f3 r.Fleet.Scenario.drain_ms;
                  string_of_int r.Fleet.Scenario.switches;
                ])
              results )
      | `Noisy ->
          (* Powers of two up to --vms, so the table reads as a
             victim-p99-vs-fleet-size curve per model. *)
          let sizes =
            let rec up acc n = if n >= vms then List.rev (vms :: acc)
              else up (n :: acc) (n * 2)
            in
            up [] 1
          in
          let results = Experiment.fleet_noisy ~sizes ~mix () in
          ( [
              "config"; "vms"; "pcpu_rivals"; "completed"; "mean_us";
              "p50_us"; "p99_us"; "switches";
            ],
            List.map
              (fun (name, size, (r : Fleet.Scenario.noisy_result)) ->
                [
                  name;
                  string_of_int size;
                  string_of_int r.Fleet.Scenario.victim_pcpu_rivals;
                  string_of_int r.Fleet.Scenario.completed;
                  f1 r.Fleet.Scenario.mean_us;
                  f1 r.Fleet.Scenario.p50_us;
                  f1 r.Fleet.Scenario.p99_us;
                  string_of_int r.Fleet.Scenario.switches;
                ])
              results )
    in
    with_out out (fun out_ppf ->
        match format with
        | `Csv -> Report.pp_csv_table out_ppf ~header rows
        | `Md -> Report.pp_markdown_table out_ppf ~header rows)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Dense multi-VM consolidation on one host: boot-storms, \
          arrival/departure churn and noisy-neighbor tail latency at \
          overcommitted VCPU:PCPU ratios, on every platform/hypervisor \
          model")
    Term.(
      const run $ scenario_arg $ vms_arg $ mix_arg $ format_arg $ out_arg
      $ jobs_arg $ trace_file_arg $ stat_file_arg)

(* --- cluster --------------------------------------------------------------- *)

let cluster_cmd =
  let scenario_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("matrix", `Matrix); ("chain", `Chain); ("loadgen", `Loadgen) ])
          `Matrix
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "$(b,matrix) (iperf-style pairwise VM-to-VM throughput), \
             $(b,chain) (client -> LB -> backend with per-hop latency), \
             or $(b,loadgen) (open-loop tail-latency-vs-offered-load \
             sweep against a memcached-style backend pool).")
  in
  let topology_conv =
    let parse s =
      match Topology.spec_of_string s with
      | spec -> Ok spec
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    let print fmt s = Format.pp_print_string fmt (Topology.spec_to_string s) in
    Arg.conv (parse, print)
  in
  let topology_arg =
    Arg.(
      value
      & opt topology_conv Topology.Pair
      & info [ "topology" ] ~docv:"TOPO"
          ~doc:
            "$(b,single) (one host), $(b,pair) (two hosts, one 10 GbE \
             uplink each way) or $(b,star)[$(b,:N)] (N leaf hosts through \
             a spine switch). VMs round-robin across hosts.")
  in
  let vms_arg =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "vms" ] ~docv:"N"
          ~doc:
            "VM count: matrix default 4, loadgen backend-pool default 16 \
             (the chain is always client + LB + backend).")
  in
  let loads_conv =
    let parse s =
      try
        Ok
          (List.map
             (fun tok -> float_of_string (String.trim tok))
             (String.split_on_char ',' s))
      with _ -> Error (`Msg (Printf.sprintf "bad load list %S" s))
    in
    let print fmt l =
      Format.pp_print_string fmt
        (String.concat "," (List.map (Printf.sprintf "%g") l))
    in
    Arg.conv (parse, print)
  in
  let loads_arg =
    Arg.(
      value
      & opt loads_conv W.Cluster.default_loads
      & info [ "offered-load" ] ~docv:"L1,L2,..."
          ~doc:
            "Loadgen sweep points as fractions of the pool's aggregate \
             native capacity; the default tops out at $(b,1.1) — past \
             the knee on every model.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("md", `Md); ("csv", `Csv) ]) `Md
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"$(b,md) (default) or $(b,csv).")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file; $(b,-) (default) is stdout.")
  in
  let with_out out f =
    match out with
    | "-" ->
        f Format.std_formatter;
        Format.pp_print_flush Format.std_formatter ()
    | path ->
        let oc = open_out path in
        let fmt = Format.formatter_of_out_channel oc in
        f fmt;
        Format.pp_print_flush fmt ();
        close_out oc;
        Format.fprintf ppf "wrote %s@." path
  in
  let f1 = Printf.sprintf "%.1f" in
  let f2 = Printf.sprintf "%.2f" in
  let f3 = Printf.sprintf "%.3f" in
  let run scenario spec vms loads format out jobs trace_file stat_file =
    apply_jobs jobs;
    (match loads with
    | [] ->
        Format.fprintf ppf "--offered-load needs at least one point@.";
        exit 2
    | l when List.exists (fun x -> x <= 0.0) l ->
        Format.fprintf ppf "--offered-load points must be positive@.";
        exit 2
    | _ -> ());
    with_session ~context:"cluster" ~stat_file ~trace_file ~verbose:false
    @@ fun () ->
    let header, rows =
      match scenario with
      | `Matrix ->
          let vms = Option.value vms ~default:4 in
          let results = Experiment.cluster_matrix ~vms ~spec () in
          ( [ "config"; "topology"; "src"; "dst"; "xhost"; "gbps" ],
            List.concat_map
              (fun (name, (r : W.Cluster.matrix_result)) ->
                List.map
                  (fun (p : W.Cluster.pair_result) ->
                    [
                      name;
                      r.W.Cluster.topology;
                      string_of_int p.W.Cluster.src;
                      string_of_int p.W.Cluster.dst;
                      (if p.W.Cluster.cross_host then "y" else "n");
                      f2 p.W.Cluster.gbps;
                    ])
                  r.W.Cluster.pairs)
              results )
      | `Chain ->
          let results = Experiment.cluster_chain ~spec () in
          let hop_names =
            match results with
            | (_, r) :: _ -> List.map fst r.W.Cluster.hops
            | [] -> []
          in
          ( [ "config"; "topology" ] @ hop_names
            @ [ "mean_us"; "p99_us"; "xhost" ],
            List.map
              (fun (name, (r : W.Cluster.chain_result)) ->
                [ name; r.W.Cluster.chain_topology ]
                @ List.map (fun (_, us) -> f3 us) r.W.Cluster.hops
                @ [
                    f3 r.W.Cluster.mean_total_us;
                    f3 r.W.Cluster.p99_total_us;
                    (if r.W.Cluster.backend_cross_host then "y" else "n");
                  ])
              results )
      | `Loadgen ->
          let vms = Option.value vms ~default:16 in
          let results = Experiment.cluster_loadgen ~vms ~spec ~loads () in
          ( [
              "config"; "backends"; "offered"; "offered_rps"; "completed";
              "mean_us"; "p50_us"; "p95_us"; "p99_us"; "throughput_rps";
            ],
            List.concat_map
              (fun (name, (r : W.Cluster.loadgen_result)) ->
                List.map
                  (fun (p : W.Cluster.load_point) ->
                    [
                      name;
                      string_of_int r.W.Cluster.backends;
                      f2 p.W.Cluster.offered;
                      Printf.sprintf "%.0f" p.W.Cluster.offered_rps;
                      string_of_int p.W.Cluster.completed;
                      f1 p.W.Cluster.mean_us;
                      f1 p.W.Cluster.p50_us;
                      f1 p.W.Cluster.p95_us;
                      f1 p.W.Cluster.p99_us;
                      Printf.sprintf "%.0f" p.W.Cluster.throughput_rps;
                    ])
                  r.W.Cluster.points)
              results )
    in
    with_out out (fun out_ppf ->
        match format with
        | `Csv -> Report.pp_csv_table out_ppf ~header rows
        | `Md -> Report.pp_markdown_table out_ppf ~header rows)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "VM-to-VM and cross-host traffic over the virtual switch \
          fabric: pairwise throughput matrix, client -> LB -> backend \
          service chain, and an open-loop load generator driving a \
          backend pool past its saturation knee, on every \
          platform/hypervisor model")
    Term.(
      const run $ scenario_arg $ topology_arg $ vms_arg $ loads_arg
      $ format_arg $ out_arg $ jobs_arg $ trace_file_arg $ stat_file_arg)

(* --- bench-events ---------------------------------------------------------- *)

module Bench_events = Armvirt_bench_events.Bench_events

let bench_events_cmd =
  let scale_arg =
    Arg.(
      value & opt int 1
      & info [ "scale" ] ~docv:"N"
          ~doc:
            "Iteration multiplier for every benchmark. $(b,0) is the CI \
             smoke setting (~50x fewer iterations); larger values reduce \
             timing noise proportionally. Event counts are deterministic \
             at any fixed scale.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Also write the results as BENCH_events.json schema v2 to \
             $(docv); $(b,-) writes the JSON to stdout instead of the \
             table.")
  in
  let run scale out =
    let results = Bench_events.suite ~scale () in
    let overhead = Bench_events.overhead_trial ~scale () in
    match out with
    | Some "-" ->
        Bench_events.emit_json Format.std_formatter ~scale ~overhead results
    | Some path ->
        Bench_events.pp_table ppf results;
        Bench_events.pp_overhead ppf overhead;
        let oc = open_out path in
        let fmt = Format.formatter_of_out_channel oc in
        Bench_events.emit_json fmt ~scale ~overhead results;
        Format.pp_print_flush fmt ();
        close_out oc;
        Format.fprintf ppf "wrote %s@." path
    | None ->
        Bench_events.pp_table ppf results;
        Bench_events.pp_overhead ppf overhead
  in
  Cmd.v
    (Cmd.info "bench-events"
       ~doc:
         "Measure raw engine throughput (events/sec): microbenchmark \
          mixes plus whole-workload netperf and migration runs")
    Term.(const run $ scale_arg $ out_arg)

(* --- report ---------------------------------------------------------------- *)

let report_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the markdown report to $(docv) instead of stdout.")
  in
  let run output =
    let report = Armvirt_core.Markdown.full_report () in
    match output with
    | None -> print_string report
    | Some path ->
        let oc = open_out path in
        output_string oc report;
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length report)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate the paper's tables as a markdown report")
    Term.(const run $ output)

(* --- lint ---------------------------------------------------------------- *)

(* Thin wrapper over the armvirt-lint driver so the checker is
   discoverable from the main CLI; same flags, same exit codes. *)
let lint_cmd =
  let wrap code = if code <> 0 then exit code in
  Cmd.v
    (Cmd.info "lint" ~doc:Armvirt_lint.Cli.doc ~man:Armvirt_lint.Cli.man)
    Term.(const wrap $ Armvirt_lint.Cli.term)

let () =
  let doc =
    "simulation-based reproduction of 'ARM Virtualization: Performance and \
     Architectural Implications' (ISCA 2016)"
  in
  let info = Cmd.info "armvirt" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; micro_cmd; app_cmd; rr_cmd; trace_cmd;
            stat_cmd; timeline_cmd; explore_cmd; migrate_cmd; fleet_cmd;
            cluster_cmd; bench_events_cmd; report_cmd; lint_cmd;
          ]))
