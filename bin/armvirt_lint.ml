let () = Armvirt_lint.Cli.main ()
