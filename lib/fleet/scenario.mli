(** Fleet scenario engines: boot-storm, churn, noisy-neighbor.

    One simulated host runs the whole fleet: a single driver process
    steps the {!Armvirt_hypervisor.Credit_sched} scheduler one
    timeslice quantum at a time across all PCPUs, burning down pooled
    per-guest work ({!Pool}) and emitting the hypervisor's exit/entry
    marker grammar on every world switch — entries tagged [d<domid>],
    so [armvirt stat --per-domain] decomposes the fleet. Every draw
    comes from a seeded {!Armvirt_engine.Rng}, so results are
    deterministic and jobs-invariant. *)

type boot_storm_result = {
  config : string;
  vms : int;
  window_ms : float;
  time_to_ready_ms : float;  (** First arrival to last guest ready. *)
  mean_boot_ms : float;
  p99_boot_ms : float;
  switches : int;
  peak_live : int;
}

val boot_storm :
  ?seed:int ->
  ?window_ms:float ->
  Armvirt_hypervisor.Hypervisor.t ->
  Descriptor.t ->
  boot_storm_result
(** [vms] guests arrive uniformly at random inside [window_ms]
    (default 4 ms) and each burns its profile's [boot_cycles] per VCPU
    before counting as ready. *)

type churn_result = {
  config : string;
  initial_vms : int;
  arrivals : int;
  admitted : int;
  retired : int;
  peak_live : int;
  domid_reuses : int;  (** Admissions that recycled a retired domid. *)
  drain_ms : float;  (** When the last guest departed. *)
  switches : int;
}

val churn :
  ?seed:int ->
  ?arrivals:int ->
  ?horizon_ms:float ->
  Armvirt_hypervisor.Hypervisor.t ->
  Descriptor.t ->
  churn_result
(** The descriptor's [vms] guests start at t = 0; [arrivals] more
    (default: another [vms]) arrive Poisson over [horizon_ms]
    (default 24 ms). Guest lifetimes are exponential around the
    profile's [work_cycles]; departing guests leave the scheduler and
    return their domid for reuse. *)

type noisy_result = {
  config : string;
  vms : int;
  victim_pcpu_rivals : int;
      (** Aggressor VCPUs time-sharing the victim's PCPU. *)
  completed : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  switches : int;
}

val noisy_neighbor :
  ?seed:int ->
  ?requests:int ->
  ?load:float ->
  Armvirt_hypervisor.Hypervisor.t ->
  Descriptor.t ->
  noisy_result
(** A memcached/TCP_RR victim guest (1 VCPU, PCPU 0, always runnable)
    serves [requests] open-loop requests at [load] of its dedicated
    capacity while [vms - 1] CPU-bound aggressors from the descriptor
    mix fill the host round-robin. Per-request service and delivery
    costs come from the hypervisor's paper-calibrated
    {!Armvirt_hypervisor.Io_profile}. The arrival stream depends only
    on [seed], never on fleet size, so p99 versus [vms] isolates
    scheduler interference and is monotonically non-decreasing.
    Raises [Invalid_argument] if [load] is outside (0, 1). *)
