(** Pooled, compact per-guest state.

    Instead of one heavyweight simulated machine per guest (the
    one-guest-per-cell layout the paper experiments use), a fleet keeps
    every guest as a small mutable slot in one array on one host:
    domid-indexed, with per-VCPU remaining-work arrays reused across
    tenancies. Departing guests return their domid to an ascending free
    list, so churn exercises slot reuse deterministically — the lowest
    retired domid is always recycled first. *)

type vm_state = Booting | Ready

type slot = {
  mutable occupied : bool;
  mutable profile : int;  (** Index into the descriptor's profile mix. *)
  mutable state : vm_state;
  mutable vcpus : int;
  mutable pending_vcpus : int;  (** VCPUs still running their work. *)
  mutable arrived_at : int;
  mutable ready_at : int;
  mutable work : int array;  (** Per-VCPU remaining cycles. *)
}

type t

val create : unit -> t

val admit : t -> profile:int -> vcpus:int -> now:int -> int
(** Admits a guest and returns its domid (lowest free, else a fresh
    one). Raises [Invalid_argument] if [vcpus < 1]. *)

val slot : t -> int -> slot
(** Raises [Invalid_argument] for a domid that is not currently live. *)

val retire : t -> int -> unit
(** Returns the domid to the free list. Raises [Invalid_argument] for a
    domid that is not currently live. *)

val live : t -> int
val admitted : t -> int
val retired : t -> int
val peak_live : t -> int

val reused : t -> int
(** How many admissions recycled a previously retired domid. *)

val high_water : t -> int
(** Highest domid ever allocated + 1 — the slot table's footprint. *)
