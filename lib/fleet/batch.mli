(** Closed-batch consolidation on the fleet scheduler.

    The simplest fleet shape: N identical CPU-bound guests, all present
    from t = 0, run to completion. {!Armvirt_workloads.Oversub} reports
    the paper's VM Switch cost at application level through this
    entry point. *)

val run :
  num_pcpus:int ->
  timeslice_cycles:int ->
  switch_cost:int ->
  vms:int ->
  vcpus_per_vm:int ->
  work_per_vcpu:int ->
  int * int
(** [(makespan_cycles, context_switches)] for [vms] guests whose VCPU
    [k] is pinned to PCPU [k mod num_pcpus], each burning
    [work_per_vcpu] cycles, charged [switch_cost] per context switch.
    Raises [Invalid_argument] on non-positive counts (via
    {!Armvirt_hypervisor.Credit_sched}). *)
