type vm_state = Booting | Ready

type slot = {
  mutable occupied : bool;
  mutable profile : int;
  mutable state : vm_state;
  mutable vcpus : int;
  mutable pending_vcpus : int;
  mutable arrived_at : int;
  mutable ready_at : int;
  mutable work : int array; (* per-VCPU remaining cycles; reused *)
}

type t = {
  mutable slots : slot array; (* index = domid *)
  mutable free : int list; (* retired domids, ascending *)
  mutable next : int; (* first never-used domid *)
  mutable live : int;
  mutable admitted : int;
  mutable retired : int;
  mutable peak_live : int;
  mutable reused : int;
}

let empty_slot () =
  {
    occupied = false;
    profile = 0;
    state = Booting;
    vcpus = 0;
    pending_vcpus = 0;
    arrived_at = 0;
    ready_at = 0;
    work = [||];
  }

let create () =
  {
    slots = Array.init 16 (fun _ -> empty_slot ());
    free = [];
    next = 0;
    live = 0;
    admitted = 0;
    retired = 0;
    peak_live = 0;
    reused = 0;
  }

let ensure t domid =
  let n = Array.length t.slots in
  if domid >= n then begin
    let grown =
      Array.init
        (Stdlib.max (2 * n) (domid + 1))
        (fun i -> if i < n then t.slots.(i) else empty_slot ())
    in
    t.slots <- grown
  end

let slot t domid =
  if domid < 0 || domid >= t.next || not t.slots.(domid).occupied then
    invalid_arg "Fleet.Pool.slot: not a live domid";
  t.slots.(domid)

(* Lowest retired domid first, like Xen's domid allocator wrapping:
   churn exercises slot reuse instead of growing the table forever. *)
let admit t ~profile ~vcpus ~now =
  if vcpus < 1 then invalid_arg "Fleet.Pool.admit: vcpus < 1";
  let domid =
    match t.free with
    | d :: rest ->
        t.free <- rest;
        t.reused <- t.reused + 1;
        d
    | [] ->
        let d = t.next in
        t.next <- t.next + 1;
        d
  in
  ensure t domid;
  let s = t.slots.(domid) in
  s.occupied <- true;
  s.profile <- profile;
  s.state <- Booting;
  s.vcpus <- vcpus;
  s.pending_vcpus <- vcpus;
  s.arrived_at <- now;
  s.ready_at <- 0;
  if Array.length s.work < vcpus then s.work <- Array.make vcpus 0
  else Array.fill s.work 0 (Array.length s.work) 0;
  t.live <- t.live + 1;
  t.admitted <- t.admitted + 1;
  if t.live > t.peak_live then t.peak_live <- t.live;
  domid

let retire t domid =
  let s = slot t domid in
  s.occupied <- false;
  t.live <- t.live - 1;
  t.retired <- t.retired + 1;
  (* Keep the free list ascending so reuse order is deterministic. *)
  let rec insert = function
    | [] -> [ domid ]
    | d :: rest when d < domid -> d :: insert rest
    | rest -> domid :: rest
  in
  t.free <- insert t.free

let live t = t.live
let admitted t = t.admitted
let retired t = t.retired
let peak_live t = t.peak_live
let reused t = t.reused
let high_water t = t.next
