module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Rng = Armvirt_engine.Rng
module Summary = Armvirt_stats.Summary
module Machine = Armvirt_arch.Machine
module Marker = Armvirt_obs.Marker
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Kernel_costs = Armvirt_guest.Kernel_costs
module Credit_sched = Armvirt_hypervisor.Credit_sched

(* --- the quantum-stepped host ---------------------------------------- *)

(* Accounting markers reuse the per-model prefixes the hypervisor
   models emit on their own exit paths, so fleet entries land in the
   same `d<domid>` stat lanes. *)
let marker_prefix (hyp : Hypervisor.t) =
  match hyp.Hypervisor.name with
  | "KVM ARM" | "KVM ARM (VHE)" -> "kvm_arm"
  | "Xen ARM" -> "xen_arm"
  | "KVM x86" -> "kvm_x86"
  | "Xen x86" -> "xen_x86"
  | _ -> "native"

type host = {
  hyp : Hypervisor.t;
  machine : Machine.t;
  sim : Sim.t;
  sched : Credit_sched.t;
  pool : Pool.t;
  desc : Descriptor.t;
  num_pcpus : int;
  timeslice : int; (* cycles *)
  prefix : string;
  mutable rr_pcpu : int; (* round-robin VCPU placement cursor *)
  mutable active : int; (* runnable VCPUs with work left *)
  mutable quanta : int;
}

let cycles_of_ms machine ms =
  int_of_float (ms *. Machine.freq_ghz machine *. 1e9 /. 1e3)

let to_ms machine c = float_of_int c /. (Machine.freq_ghz machine *. 1e9 /. 1e3)

let make_host (hyp : Hypervisor.t) (desc : Descriptor.t) =
  Descriptor.validate desc;
  let machine = hyp.Hypervisor.machine in
  let timeslice = Stdlib.max 1 (cycles_of_ms machine desc.timeslice_ms) in
  let num_pcpus = Machine.num_cpus machine in
  {
    hyp;
    machine;
    sim = Machine.sim machine;
    sched = Credit_sched.create ~num_pcpus ~timeslice_cycles:timeslice;
    pool = Pool.create ();
    desc;
    num_pcpus;
    timeslice;
    prefix = marker_prefix hyp;
    rr_pcpu = 0;
    active = 0;
    quanta = 0;
  }

(* Admit one guest: pooled slot, per-VCPU work, VCPUs placed round-robin
   across the PCPUs in admission order (deterministic overcommit). *)
let admit host ~(profile : Descriptor.profile) ~profile_idx ~now ~work_of =
  let domid =
    Pool.admit host.pool ~profile:profile_idx ~vcpus:profile.Descriptor.vcpus
      ~now
  in
  let slot = Pool.slot host.pool domid in
  for index = 0 to profile.Descriptor.vcpus - 1 do
    slot.Pool.work.(index) <- Stdlib.max 1 (work_of index);
    let vcpu = { Credit_sched.dom = domid; index } in
    Credit_sched.add_vcpu ~weight:profile.Descriptor.weight
      ~cap:profile.Descriptor.cap_pct host.sched vcpu ~affinity:host.rr_pcpu;
    host.rr_pcpu <- (host.rr_pcpu + 1) mod host.num_pcpus;
    Credit_sched.set_runnable host.sched vcpu true;
    host.active <- host.active + 1
  done;
  domid

(* One scheduling quantum across every PCPU. [service v ~pcpu ~now]
   executes the picked VCPU for at most one timeslice and returns the
   cycles to charge. World switches emit the same exit/entry marker
   grammar the hypervisor models use, entries tagged with the incoming
   domain so `armvirt stat --per-domain` can split the fleet. *)
let dispatch host ~service =
  host.quanta <- host.quanta + 1;
  if host.quanta mod host.desc.Descriptor.refill_quanta = 0 then
    Credit_sched.periodic_refill host.sched
      ~cycles:(host.desc.Descriptor.refill_quanta * host.timeslice);
  let now = Cycles.to_int (Sim.current_time ()) in
  for pcpu = 0 to host.num_pcpus - 1 do
    let prev = Credit_sched.current host.sched ~pcpu in
    match Credit_sched.pick host.sched ~pcpu with
    | None ->
        if prev <> None then
          Machine.count host.machine
            (Marker.exit ~hyp:host.prefix ~reason:Marker.Irq ~pcpu)
    | Some v ->
        if prev <> Some v then begin
          if prev <> None then
            Machine.count host.machine
              (Marker.exit ~hyp:host.prefix ~reason:Marker.Irq ~pcpu);
          Machine.count host.machine
            (Marker.entry ~domid:v.Credit_sched.dom ~hyp:host.prefix ~pcpu ())
        end;
        let used = service v ~pcpu ~now in
        Credit_sched.charge host.sched ~pcpu ~cycles:used
  done

(* Burn down the picked VCPU's pooled work; [on_vm_done domid now_done]
   fires when its last VCPU finishes. *)
let slot_service host ~on_vm_done v ~pcpu:_ ~now =
  let slot = Pool.slot host.pool v.Credit_sched.dom in
  let left = slot.Pool.work.(v.Credit_sched.index) in
  let used = Stdlib.min left host.timeslice in
  slot.Pool.work.(v.Credit_sched.index) <- left - used;
  if left - used <= 0 then begin
    Credit_sched.set_runnable host.sched v false;
    host.active <- host.active - 1;
    slot.Pool.pending_vcpus <- slot.Pool.pending_vcpus - 1;
    if slot.Pool.pending_vcpus = 0 then
      on_vm_done v.Credit_sched.dom (now + used)
  end;
  used

let quantum host = Cycles.of_int host.timeslice

(* --- boot-storm ------------------------------------------------------ *)

type boot_storm_result = {
  config : string;
  vms : int;
  window_ms : float;
  time_to_ready_ms : float;
  mean_boot_ms : float;
  p99_boot_ms : float;
  switches : int;
  peak_live : int;
}

let boot_storm ?(seed = 42) ?(window_ms = 4.0) (hyp : Hypervisor.t) desc =
  if window_ms < 0.0 then invalid_arg "Scenario.boot_storm: negative window";
  let host = make_host hyp desc in
  let vms = desc.Descriptor.vms in
  let window = cycles_of_ms host.machine window_ms in
  let rng = Rng.create ~seed in
  let offsets =
    Array.init vms (fun _ -> Rng.int rng ~bound:(Stdlib.max 1 (window + 1)))
  in
  Array.sort Int.compare offsets;
  let boot_ms = ref [] in
  let last_ready = ref 0 in
  let ready = ref 0 in
  let on_vm_done domid now_done =
    let slot = Pool.slot host.pool domid in
    slot.Pool.state <- Pool.Ready;
    slot.Pool.ready_at <- now_done;
    if now_done > !last_ready then last_ready := now_done;
    boot_ms :=
      to_ms host.machine (now_done - slot.Pool.arrived_at) :: !boot_ms;
    incr ready
  in
  let service = slot_service host ~on_vm_done in
  Sim.spawn host.sim ~name:"fleet-boot-storm" (fun () ->
      let next = ref 0 in
      while !ready < vms do
        let now = Cycles.to_int (Sim.current_time ()) in
        while !next < vms && offsets.(!next) <= now do
          let i = !next in
          let p = Descriptor.profile_of desc i in
          ignore
            (admit host ~profile:p ~profile_idx:i ~now ~work_of:(fun _ ->
                 p.Descriptor.boot_cycles));
          incr next
        done;
        if host.active > 0 then begin
          dispatch host ~service;
          Sim.delay (quantum host)
        end
        else if !next < vms then
          Sim.delay (Cycles.of_int (offsets.(!next) - now))
      done);
  Sim.run host.sim;
  let summary = Summary.of_list !boot_ms in
  {
    config = hyp.Hypervisor.name;
    vms;
    window_ms;
    time_to_ready_ms = to_ms host.machine !last_ready;
    mean_boot_ms = Summary.mean summary;
    p99_boot_ms = Summary.percentile summary 99.0;
    switches = Credit_sched.switches host.sched;
    peak_live = Pool.peak_live host.pool;
  }

(* --- churn ----------------------------------------------------------- *)

type churn_result = {
  config : string;
  initial_vms : int;
  arrivals : int;
  admitted : int;
  retired : int;
  peak_live : int;
  domid_reuses : int;
  drain_ms : float;
  switches : int;
}

let churn ?(seed = 42) ?arrivals ?(horizon_ms = 24.0) (hyp : Hypervisor.t)
    desc =
  if horizon_ms <= 0.0 then invalid_arg "Scenario.churn: non-positive horizon";
  let host = make_host hyp desc in
  let initial = desc.Descriptor.vms in
  let arrivals = Option.value arrivals ~default:initial in
  let horizon = cycles_of_ms host.machine horizon_ms in
  let rng = Rng.create ~seed in
  (* Poisson arrival process over the horizon; each guest's lifetime is
     exponentially distributed work around its profile's mean. Both
     streams come off one deterministic Rng in admission order, so the
     run is seed-reproducible and jobs-invariant. *)
  let arrival_times =
    let mean = float_of_int horizon /. float_of_int (arrivals + 1) in
    let t = ref 0.0 in
    Array.init arrivals (fun _ ->
        t := !t +. Rng.exponential rng ~mean;
        int_of_float !t)
  in
  let lifetime p =
    let mean = float_of_int p.Descriptor.work_cycles in
    Stdlib.max 1 (int_of_float (Rng.exponential rng ~mean))
  in
  let done_at = ref 0 in
  (* A retiring guest's VCPUs leave the scheduler entirely and its
     domid returns to the pool — churn is what exercises slot reuse. *)
  let on_vm_done domid now_done =
    let slot = Pool.slot host.pool domid in
    for index = 0 to slot.Pool.vcpus - 1 do
      Credit_sched.remove_vcpu host.sched { Credit_sched.dom = domid; index }
    done;
    Pool.retire host.pool domid;
    if now_done > !done_at then done_at := now_done
  in
  let service = slot_service host ~on_vm_done in
  Sim.spawn host.sim ~name:"fleet-churn" (fun () ->
      let admit_one i now =
        let p = Descriptor.profile_of desc i in
        ignore
          (admit host ~profile:p ~profile_idx:i ~now ~work_of:(fun _ ->
               lifetime p))
      in
      for i = 0 to initial - 1 do
        admit_one i 0
      done;
      let next = ref 0 in
      while host.active > 0 || !next < arrivals do
        let now = Cycles.to_int (Sim.current_time ()) in
        while !next < arrivals && arrival_times.(!next) <= now do
          admit_one (initial + !next) now;
          incr next
        done;
        if host.active > 0 then begin
          dispatch host ~service;
          Sim.delay (quantum host)
        end
        else if !next < arrivals then
          Sim.delay (Cycles.of_int (arrival_times.(!next) - now))
      done);
  Sim.run host.sim;
  {
    config = hyp.Hypervisor.name;
    initial_vms = initial;
    arrivals;
    admitted = Pool.admitted host.pool;
    retired = Pool.retired host.pool;
    peak_live = Pool.peak_live host.pool;
    domid_reuses = Pool.reused host.pool;
    drain_ms = to_ms host.machine !done_at;
    switches = Credit_sched.switches host.sched;
  }

(* --- noisy neighbor -------------------------------------------------- *)

type noisy_result = {
  config : string;
  vms : int;
  victim_pcpu_rivals : int; (* aggressor VCPUs sharing the victim's PCPU *)
  completed : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  switches : int;
}

(* Server-side cost of one memcached/TCP_RR request on the victim VCPU,
   and the fixed delivery latency outside it — the same per-model
   decomposition Tail_latency uses, so the five hypervisors keep their
   paper-calibrated I/O cost differences. *)
let request_service_cycles (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  Kernel_costs.rr_server_cycles hyp.Hypervisor.guest
  + p.Io_profile.irq_delivery_guest_cpu + p.Io_profile.virq_completion
  + p.Io_profile.guest_rx_per_packet + p.Io_profile.guest_tx_per_packet
  + p.Io_profile.kick_guest_cpu

let request_fixed_latency (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  p.Io_profile.phys_rx_extra_latency + p.Io_profile.irq_delivery_latency
  + p.Io_profile.notify_latency

type request = { arrived : int; mutable remaining : int }

let noisy_neighbor ?(seed = 42) ?(requests = 400) ?(load = 0.3)
    (hyp : Hypervisor.t) desc =
  if requests < 1 then invalid_arg "Scenario.noisy_neighbor: requests < 1";
  if load <= 0.0 || load >= 1.0 then
    invalid_arg "Scenario.noisy_neighbor: load outside (0, 1)";
  let host = make_host hyp desc in
  let vms = desc.Descriptor.vms in
  let service_cycles = request_service_cycles hyp in
  let fixed = request_fixed_latency hyp in
  let rng = Rng.create ~seed in
  (* The victim's open-loop arrival stream is drawn before any
     fleet-size-dependent state, so every fleet size sees the same
     request trace — the p99 curve isolates scheduler interference. *)
  let arrival_times =
    let mean = float_of_int service_cycles /. load in
    let t = ref 0.0 in
    Array.init requests (fun _ ->
        t := !t +. Rng.exponential rng ~mean;
        int_of_float !t)
  in
  (* Victim: 1 always-runnable VCPU, admitted first (domid 0, PCPU 0).
     Aggressors: the descriptor mix with effectively infinite CPU-bound
     work, VCPUs placed round-robin over the PCPUs after the victim. *)
  let forever = max_int / 4 in
  let victim_profile =
    { Descriptor.synthetic with Descriptor.name = "victim"; vcpus = 1 }
  in
  let victim_domid =
    admit host ~profile:victim_profile ~profile_idx:0 ~now:0
      ~work_of:(fun _ -> forever)
  in
  let victim = { Credit_sched.dom = victim_domid; index = 0 } in
  for i = 0 to vms - 2 do
    let p = Descriptor.profile_of desc i in
    ignore
      (admit host ~profile:p ~profile_idx:i ~now:0 ~work_of:(fun _ -> forever))
  done;
  (* VCPU placement is round-robin from PCPU 0, so the number of
     aggressor VCPUs sharing the victim's PCPU is a step function of
     fleet size — the monotone axis of the p99 curve. *)
  let rivals = ref 0 in
  let total_aggr_vcpus =
    let n = ref 0 in
    for i = 0 to vms - 2 do
      n := !n + (Descriptor.profile_of desc i).Descriptor.vcpus
    done;
    !n
  in
  for k = 0 to total_aggr_vcpus - 1 do
    if (1 + k) mod host.num_pcpus = 0 then incr rivals
  done;
  let queue = Queue.create () in
  let latencies = ref [] in
  let completed = ref 0 in
  (* The victim VCPU models a polling memcached guest: when scheduled
     it burns its whole quantum, serving whatever requests are queued.
     Always runnable and never credit-favoured, it rotates FIFO with
     its PCPU rivals, so each added rival stretches the gap between
     service windows by one quantum. *)
  let victim_service ~now =
    let budget = ref host.timeslice in
    let into = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      match Queue.peek_opt queue with
      | None -> continue_ := false
      | Some req ->
          let use = Stdlib.min req.remaining !budget in
          req.remaining <- req.remaining - use;
          budget := !budget - use;
          into := !into + use;
          if req.remaining = 0 then begin
            ignore (Queue.pop queue);
            incr completed;
            let done_at = now + !into + fixed in
            latencies :=
              Machine.elapsed_us host.machine
                (Cycles.of_int (done_at - req.arrived))
              :: !latencies
          end;
          if !budget = 0 then continue_ := false
    done;
    host.timeslice
  in
  let service v ~pcpu:_ ~now =
    if v = victim then victim_service ~now else host.timeslice
  in
  Sim.spawn host.sim ~name:"fleet-noisy-neighbor" (fun () ->
      let next = ref 0 in
      while !completed < requests do
        let now = Cycles.to_int (Sim.current_time ()) in
        while !next < requests && arrival_times.(!next) <= now do
          Queue.add
            { arrived = arrival_times.(!next); remaining = service_cycles }
            queue;
          incr next
        done;
        dispatch host ~service;
        Sim.delay (quantum host)
      done);
  Sim.run host.sim;
  let summary = Summary.of_list !latencies in
  {
    config = hyp.Hypervisor.name;
    vms;
    victim_pcpu_rivals = !rivals;
    completed = !completed;
    mean_us = Summary.mean summary;
    p50_us = Summary.median summary;
    p99_us = Summary.percentile summary 99.0;
    switches = Credit_sched.switches host.sched;
  }
