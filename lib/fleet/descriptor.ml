type profile = {
  name : string;
  vcpus : int;
  mem_mb : int;
  weight : int;
  cap_pct : int;
  boot_cycles : int;
  work_cycles : int;
}

let default_weight = 256

(* A 1-VCPU microVM booting in ~16 ms of CPU work at the paper's
   2.4 GHz clock — the dense-consolidation baseline. *)
let synthetic =
  {
    name = "synthetic";
    vcpus = 1;
    mem_mb = 256;
    weight = default_weight;
    cap_pct = 0;
    boot_cycles = 38_400_000;
    work_cycles = 96_000_000;
  }

type t = {
  vms : int;
  mix : (profile * int) list;
  timeslice_ms : float;
  refill_quanta : int;
}

let validate t =
  if t.vms < 1 then invalid_arg "Fleet.Descriptor: vms < 1";
  if t.timeslice_ms <= 0.0 then
    invalid_arg "Fleet.Descriptor: non-positive timeslice";
  if t.refill_quanta < 1 then
    invalid_arg "Fleet.Descriptor: refill_quanta < 1";
  if t.mix = [] then invalid_arg "Fleet.Descriptor: empty profile mix";
  List.iter
    (fun (p, share) ->
      if share < 1 then
        invalid_arg ("Fleet.Descriptor: non-positive share for " ^ p.name);
      if p.vcpus < 1 then
        invalid_arg ("Fleet.Descriptor: profile " ^ p.name ^ ": vcpus < 1");
      if p.weight < 1 then
        invalid_arg ("Fleet.Descriptor: profile " ^ p.name ^ ": weight < 1");
      let max_cap_pct = 100 in
      if p.cap_pct < 0 || p.cap_pct > max_cap_pct then
        invalid_arg
          ("Fleet.Descriptor: profile " ^ p.name ^ ": cap outside [0, 100]");
      if p.boot_cycles < 1 || p.work_cycles < 1 then
        invalid_arg
          ("Fleet.Descriptor: profile " ^ p.name ^ ": non-positive work"))
    t.mix

let v ?(timeslice_ms = 1.0) ?(refill_quanta = 10) ~vms mix =
  let t = { vms; mix; timeslice_ms; refill_quanta } in
  validate t;
  t

(* The mix expands to a repeating pattern in declaration order:
   [(a, 2); (b, 1)] assigns a, a, b, a, a, b, ... by VM index, so the
   composition is deterministic and independent of fleet size. *)
let pattern t =
  List.concat_map (fun (p, share) -> List.init share (fun _ -> p)) t.mix
  |> Array.of_list

let profile_of t =
  let pat = pattern t in
  fun i ->
    if i < 0 then invalid_arg "Fleet.Descriptor.profile_of: negative index";
    pat.(i mod Array.length pat)

let mix_to_string t =
  String.concat ","
    (List.map
       (fun (p, share) -> Printf.sprintf "%s=%d" p.name share)
       t.mix)
