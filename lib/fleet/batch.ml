module Credit_sched = Armvirt_hypervisor.Credit_sched

(* The closed-batch consolidation model: [vms] identical CPU-bound
   guests of [vcpus_per_vm] VCPUs each, VCPU k pinned to PCPU
   [k mod num_pcpus], all runnable at t = 0, scheduled to completion.
   This is exactly the setup Oversub used to build by hand; keeping the
   add/run order identical keeps its report byte-identical. *)
let run ~num_pcpus ~timeslice_cycles ~switch_cost ~vms ~vcpus_per_vm
    ~work_per_vcpu =
  if vms < 1 then invalid_arg "Fleet.Batch.run: vms < 1";
  if vcpus_per_vm < 1 then invalid_arg "Fleet.Batch.run: vcpus_per_vm < 1";
  let sched = Credit_sched.create ~num_pcpus ~timeslice_cycles in
  let work =
    List.concat_map
      (fun dom ->
        List.init vcpus_per_vm (fun index ->
            let vcpu = { Credit_sched.dom; index } in
            Credit_sched.add_vcpu sched vcpu ~affinity:(index mod num_pcpus);
            (vcpu, work_per_vcpu)))
      (List.init vms Fun.id)
  in
  Credit_sched.run_to_completion sched ~work ~switch_cost
