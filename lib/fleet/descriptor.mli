(** Fleet descriptors: what a dense multi-VM host should run.

    The ISCA paper measures one guest per host; production ARM servers
    pack hundreds of microVMs onto the same 8 cores. A descriptor names
    the fleet size, the per-VM workload profiles (drawn from the
    {!Armvirt_workloads.Workload} catalog via
    [Armvirt_workloads.Fleet_profiles], or synthetic), and the
    scheduling parameters the {!Scenario} engines feed into
    {!Armvirt_hypervisor.Credit_sched}. *)

type profile = {
  name : string;
  vcpus : int;  (** VCPUs per guest of this profile. *)
  mem_mb : int;  (** Memory share (reported, not simulated byte-by-byte). *)
  weight : int;  (** Credit-scheduler proportional share (256 = 1.0x). *)
  cap_pct : int;  (** Credit-scheduler cap in percent; 0 = uncapped. *)
  boot_cycles : int;  (** Per-VCPU CPU work from arrival to ready. *)
  work_cycles : int;  (** Mean per-VCPU steady-state work (churn lifetime). *)
}

val default_weight : int

val synthetic : profile
(** A 1-VCPU, 256 MB microVM with ~16 ms of boot work at 2.4 GHz. *)

type t = {
  vms : int;
  mix : (profile * int) list;
      (** Weighted profile mix, e.g. [[(memcached, 2); (kernbench, 1)]]. *)
  timeslice_ms : float;  (** Credit-scheduler preemption quantum. *)
  refill_quanta : int;
      (** Quanta between periodic credit refills (Xen ticks every 10). *)
}

val v :
  ?timeslice_ms:float -> ?refill_quanta:int -> vms:int ->
  (profile * int) list -> t
(** Validating constructor. Raises [Invalid_argument] on a non-positive
    fleet size, timeslice, share, or per-profile parameter. *)

val validate : t -> unit

val profile_of : t -> int -> profile
(** [profile_of t i] is VM [i]'s profile: the mix expands into a
    repeating pattern in declaration order, so composition is
    deterministic and independent of fleet size. *)

val mix_to_string : t -> string
(** ["memcached=2,kernbench=1"] — the CLI's [--profile-mix] syntax. *)
