module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Kernel_costs = Armvirt_guest.Kernel_costs
module Virtqueue = Armvirt_io.Virtqueue
module Addr = Armvirt_mem.Addr

type result = {
  frames : int;
  gbps : float;
  window_frames : int;
  completion_round_trips : int;
  backend_bound : bool;
}

let mtu = 1500

let run ?(frames = 1500) ?tso_bug (hyp : Hypervisor.t) =
  if frames < 1 then invalid_arg "Maerts_system.run: frames < 1";
  if hyp.Hypervisor.name = "Native" then
    invalid_arg "Maerts_system.run: no paravirtual ring natively";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let p = hyp.Hypervisor.io_profile in
  let guest =
    match tso_bug with
    | None -> hyp.Hypervisor.guest
    | Some flag ->
        { hyp.Hypervisor.guest with Kernel_costs.tso_autosizing_bug = flag }
  in
  (* The autosizing window collapses only when the completion loop is
     slow — the same trigger as the analytic model. *)
  let completion_latency =
    p.Io_profile.notify_latency + p.Io_profile.irq_delivery_latency
  in
  let window_frames =
    if completion_latency > 20_000 then Kernel_costs.tx_batch guest ~mtu_packets:42
    else 42
  in
  let spend label c = Machine.spend machine label c in
  let ring = Virtqueue.create ~size:256 () in
  let window = Sim.Resource.create ~name:"tx-window" sim ~capacity:window_frames in
  let backend_inbox : int Sim.Mailbox.t = Sim.Mailbox.create ~name:"backend-inbox" sim in
  let round_trips = ref 0 in
  let finish = ref Cycles.zero in
  (* Guest transmit path: wait for window space, build + post a frame,
     kick if the backend parked. *)
  Sim.spawn sim ~name:"guest-tx" (fun () ->
      for id = 1 to frames do
        Sim.Resource.acquire window;
        spend "maerts_system.guest_frame"
          ((guest.Kernel_costs.tcp_tx / 42) + p.Io_profile.guest_tx_per_packet);
        Virtqueue.add_avail ring
          { Virtqueue.addr = Addr.ipa_of_page (7000 + (id mod 200)); len = mtu;
            id = id mod 256 };
        if Virtqueue.kick_needed ring then begin
          incr round_trips;
          spend "maerts_system.kick" (p.Io_profile.kick_guest_cpu / 4)
        end;
        Sim.Mailbox.send backend_inbox id
      done);
  (* Backend: drain the ring, move the data (grant copy for Xen), put it
     on the wire, and complete back to the guest — which reopens the
     window after the interrupt-delivery latency. *)
  Sim.spawn sim ~name:"backend-tx" (fun () ->
      let wire_cycles_per_frame =
        int_of_float
          (float_of_int (mtu * 8) /. 10e9 *. Machine.freq_ghz machine *. 1e9)
      in
      for _ = 1 to frames do
        let _id = Sim.Mailbox.recv backend_inbox in
        let desc =
          match Virtqueue.backend_pop ring with
          | Some d -> d
          | None -> failwith "Maerts_system: ring empty with work queued"
        in
        let work =
          p.Io_profile.backend_cpu_per_packet
          + p.Io_profile.tx_grant_per_packet
          + int_of_float (p.Io_profile.tx_copy_per_byte *. float_of_int mtu)
        in
        spend "maerts_system.backend_frame" (Stdlib.max work wire_cycles_per_frame);
        Virtqueue.backend_push_used ring ~id:desc.Virtqueue.id ~len:mtu;
        (* Completion interrupt back into the guest opens the window. *)
        Sim.spawn_here ~name:"tx-completion" (fun () ->
            Sim.delay
              (Cycles.of_int (p.Io_profile.irq_delivery_latency / 2));
            (match Virtqueue.guest_reap_used ring with
            | Some _ -> ()
            | None -> ());
            Sim.Resource.release window);
        finish := Sim.current_time ()
      done;
      Virtqueue.backend_park ring);
  Sim.run sim;
  let hz = Machine.freq_ghz machine *. 1e9 in
  let seconds = float_of_int (Cycles.to_int !finish) /. hz in
  let gbps = float_of_int (frames * mtu * 8) /. seconds /. 1e9 in
  let backend_frame_cost =
    p.Io_profile.backend_cpu_per_packet + p.Io_profile.tx_grant_per_packet
    + int_of_float (p.Io_profile.tx_copy_per_byte *. float_of_int mtu)
  in
  let backend_gbps =
    hz /. float_of_int backend_frame_cost *. float_of_int (mtu * 8) /. 1e9
  in
  {
    frames;
    gbps;
    window_frames;
    completion_round_trips = !round_trips;
    backend_bound =
      (let saturation_gbps = 9.0 in
       gbps < backend_gbps *. 1.1 && backend_gbps < saturation_gbps);
  }
