module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile

type result = {
  messages : int;
  wakeups : int;
  makespan_ms : float;
  normalized : float;
}

let vcpus = 4

(* Per-message scheduler work, native (both sides): calibrated so the
   vIPI surcharge lands at the Figure 4 ratio (one wake per ~115k
   cycles of useful work, from the Hackbench profile). *)
let sender_work = 60_000
let receiver_work = 55_000
let native_wake_ipi = 1_500

(* Run the message-passing pattern on a machine, charging [wake_cost]
   whenever a send finds its receiver parked. Returns
   (makespan_cycles, messages, wakeups). *)
let run_pattern machine ~groups ~loops ~wake_cost =
  let sim = Machine.sim machine in
  let vcpu_res =
    Array.init vcpus (fun i -> Sim.Resource.create ~name:(Printf.sprintf "vcpu%d" i) sim ~capacity:1)
  in
  let wakeups = ref 0 in
  let messages = ref 0 in
  let finish = ref Cycles.zero in
  let done_count = ref 0 in
  for g = 0 to groups - 1 do
    let mailbox : int Sim.Mailbox.t = Sim.Mailbox.create ~name:"hackbench-ring" sim in
    let receiver_parked = ref false in
    let sender_cpu = vcpu_res.(g mod vcpus) in
    let receiver_cpu = vcpu_res.((g + 1) mod vcpus) in
    Sim.spawn sim ~name:(Printf.sprintf "receiver-%d" g) (fun () ->
        for _ = 1 to loops do
          receiver_parked := true;
          let _msg = Sim.Mailbox.recv mailbox in
          receiver_parked := false;
          Sim.Resource.use receiver_cpu (Cycles.of_int receiver_work)
        done;
        incr done_count;
        if !done_count = groups then finish := Sim.current_time ());
    Sim.spawn sim ~name:(Printf.sprintf "sender-%d" g) (fun () ->
        for i = 1 to loops do
          Sim.Resource.acquire sender_cpu;
          Sim.delay (Cycles.of_int sender_work);
          if !receiver_parked then begin
            (* Waking a sleeping task on another VCPU: a rescheduling
               IPI, at whatever this platform charges for one. *)
            incr wakeups;
            Sim.delay (Cycles.of_int wake_cost)
          end;
          incr messages;
          Sim.Mailbox.send mailbox i;
          Sim.Resource.release sender_cpu
        done)
  done;
  Sim.run sim;
  (Cycles.to_int !finish, !messages, !wakeups)

let fresh_machine (hyp : Hypervisor.t) =
  let sim = Sim.create () in
  Machine.create sim
    ~cost:(Machine.cost hyp.Hypervisor.machine)
    ~num_cpus:8

let run ?(groups = 10) ?(loops = 50) (hyp : Hypervisor.t) =
  if groups < 1 || loops < 1 then
    invalid_arg "Hackbench_system.run: non-positive parameter";
  let p = hyp.Hypervisor.io_profile in
  let wake_cost =
    native_wake_ipi
    + (if p = Io_profile.native then 0 else p.Io_profile.vipi_guest_cpu)
  in
  let virt_span, messages, wakeups =
    run_pattern hyp.Hypervisor.machine ~groups ~loops ~wake_cost
  in
  let native_span, _, _ =
    run_pattern (fresh_machine hyp) ~groups ~loops ~wake_cost:native_wake_ipi
  in
  let freq = Machine.freq_ghz hyp.Hypervisor.machine *. 1e9 in
  {
    messages;
    wakeups;
    makespan_ms = float_of_int virt_span /. freq *. 1e3;
    normalized = float_of_int virt_span /. float_of_int native_span;
  }
