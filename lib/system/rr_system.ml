module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Kernel_costs = Armvirt_guest.Kernel_costs
module Packet = Armvirt_net.Packet
module Link = Armvirt_net.Link
module Nic = Armvirt_net.Nic
module Virtqueue = Armvirt_io.Virtqueue
module Xen_ring = Armvirt_io.Xen_ring
module Event_channel = Armvirt_io.Event_channel
module Grant_table = Armvirt_mem.Grant_table
module Addr = Armvirt_mem.Addr
module Vgic = Armvirt_gic.Vgic

type result = {
  transactions : int;
  time_per_trans_us : float;
  trans_per_sec : float;
  recv_to_send_us : float;
  vm_internal_us : float option;
  rings_used : int;
  grants_used : int;
  virqs_injected : int;
}

(* Calibration shared with the analytic model (see Netperf): the
   host/Dom0 driver+bridge path lengths and the per-transaction guest
   steal. Kept equal so the two implementations are comparable. *)
let host_rx_path = 36_700
let host_tx_path = 28_500
let guest_virt_steal = 4_800
let client_turnaround = 54_920

type stats = {
  mutable rings : int;
  mutable grants : int;
  mutable virqs : int;
}

(* The three I/O transports the configurations use. *)
type transport =
  | Direct  (** Native: the server owns the NIC. *)
  | Virtio of { rx : Virtqueue.t; tx : Virtqueue.t }
  | Xen_pv of {
      rx : Xen_ring.t;
      tx : Xen_ring.t;
      grants : Grant_table.t;
      channels : Event_channel.t;
      io_port : Event_channel.port;  (** guest -> backend kick *)
      irq_port : Event_channel.port;  (** backend -> guest interrupt *)
    }

let make_transport (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  if hyp.Hypervisor.name = "Native" then Direct
  else if p.Io_profile.zero_copy then
    Virtio { rx = Virtqueue.create (); tx = Virtqueue.create () }
  else begin
    let channels = Event_channel.create () in
    Xen_pv
      {
        rx = Xen_ring.create ();
        tx = Xen_ring.create ();
        grants = Grant_table.create ~owner:1;
        channels;
        io_port = Event_channel.alloc channels ~from_dom:1 ~to_dom:0;
        irq_port = Event_channel.alloc channels ~from_dom:0 ~to_dom:1;
      }
  end

let run ?(transactions = 100) (hyp : Hypervisor.t) =
  if transactions < 1 then invalid_arg "Rr_system.run: transactions < 1";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let p = hyp.Hypervisor.io_profile in
  let g = hyp.Hypervisor.guest in
  let spend label c = Machine.spend machine label c in
  let stats = { rings = 0; grants = 0; virqs = 0 } in
  let transport = make_transport hyp in
  let vgic = Vgic.create () in
  (* Plumbing between the stages. *)
  let host_inbox : Packet.t Sim.Mailbox.t = Sim.Mailbox.create ~name:"host-inbox" sim in
  let guest_inbox : Packet.t Sim.Mailbox.t = Sim.Mailbox.create ~name:"guest-inbox" sim in
  let backend_tx_inbox : Packet.t Sim.Mailbox.t = Sim.Mailbox.create ~name:"backend-tx" sim in
  let response_arrived = Sim.Signal.create sim in
  (* The wire between client and server. *)
  let freq_ghz = Machine.freq_ghz machine in
  let server_link = Link.ten_gbe sim ~freq_ghz in
  let client_link = Link.ten_gbe sim ~freq_ghz in
  let server_nic =
    Nic.create sim ~machine ~dma_cost:500 ~irq_raise:(fun pkt ->
        Sim.Mailbox.send host_inbox pkt)
  in
  Nic.attach server_nic client_link ~remote:(fun pkt ->
      Packet.stamp pkt "client_recv";
      Sim.Signal.notify response_arrived);
  (* Guest-side ring maintenance. *)
  let next_rx_id = ref 0 in
  let post_rx_buffer () =
    match transport with
    | Direct -> ()
    | Virtio { rx; _ } ->
        let id = !next_rx_id in
        incr next_rx_id;
        Virtqueue.add_avail rx
          { Virtqueue.addr = Addr.ipa_of_page (1000 + id); len = 1500; id }
    | Xen_pv { rx; grants; _ } ->
        let id = !next_rx_id in
        incr next_rx_id;
        let gref =
          Grant_table.grant grants ~to_dom:0 ~ipa_page:(1000 + id)
            Grant_table.Full
        in
        Xen_ring.frontend_push rx { Xen_ring.gref; len = 1500; id }
  in
  (* Backend receive: take the posted guest buffer, move the packet into
     it (directly for zero copy; via grant map + copy for Xen), then
     raise the virtual interrupt. *)
  let backend_rx pkt =
    (match transport with
    | Direct -> ()
    | Virtio { rx; _ } ->
        let desc = Option.get (Virtqueue.backend_pop rx) in
        stats.rings <- stats.rings + 1;
        Virtqueue.backend_push_used rx ~id:desc.Virtqueue.id
          ~len:(Packet.wire_bytes pkt)
    | Xen_pv { rx; grants; channels; irq_port; _ } ->
        let req = Option.get (Xen_ring.backend_pop rx) in
        stats.rings <- stats.rings + 1;
        let _page = Grant_table.map grants req.Xen_ring.gref ~by:0 in
        spend "rr_system.rx_grant"
          (Io_profile.total_rx_packet_cost p ~bytes:(Packet.wire_bytes pkt)
          - p.Io_profile.backend_cpu_per_packet);
        Grant_table.unmap grants req.Xen_ring.gref ~by:0;
        stats.grants <- stats.grants + 1;
        Xen_ring.backend_respond rx { Xen_ring.id = req.Xen_ring.id; status = 0 };
        Event_channel.send channels irq_port);
    Vgic.inject_or_queue vgic 48;
    stats.virqs <- stats.virqs + 1;
    spend "rr_system.irq_delivery" p.Io_profile.irq_delivery_latency;
    Sim.Mailbox.send guest_inbox pkt
  in
  (* Guest transmit: post the response and kick the backend. *)
  let guest_tx pkt =
    (match transport with
    | Direct -> ()
    | Virtio { tx; _ } ->
        let id = Packet.id pkt in
        Virtqueue.add_avail tx
          { Virtqueue.addr = Addr.ipa_of_page (5000 + id); len = 67; id };
        stats.rings <- stats.rings + 1
    | Xen_pv { tx; grants; channels; io_port; _ } ->
        let id = Packet.id pkt in
        let gref =
          Grant_table.grant grants ~to_dom:0 ~ipa_page:(5000 + id)
            Grant_table.Full
        in
        Xen_ring.frontend_push tx { Xen_ring.gref; len = 67; id };
        stats.rings <- stats.rings + 1;
        Event_channel.send channels io_port);
    spend "rr_system.notify" p.Io_profile.notify_latency;
    Sim.Mailbox.send backend_tx_inbox pkt
  in
  (* Backend transmit: drain the ring and put the frame on the wire. *)
  let backend_tx pkt =
    (match transport with
    | Direct -> ()
    | Virtio { tx; _ } ->
        let desc = Option.get (Virtqueue.backend_pop tx) in
        Virtqueue.backend_push_used tx ~id:desc.Virtqueue.id ~len:0
    | Xen_pv { tx; grants; channels; io_port; _ } ->
        ignore (Event_channel.consume channels io_port);
        let req = Option.get (Xen_ring.backend_pop tx) in
        let _page = Grant_table.map grants req.Xen_ring.gref ~by:0 in
        spend "rr_system.tx_grant"
          (Io_profile.total_tx_packet_cost p ~bytes:(Packet.wire_bytes pkt)
          - p.Io_profile.backend_cpu_per_packet);
        Grant_table.unmap grants req.Xen_ring.gref ~by:0;
        stats.grants <- stats.grants + 1;
        Xen_ring.backend_respond tx { Xen_ring.id = req.Xen_ring.id; status = 0 });
    spend "rr_system.backend_tx" p.Io_profile.backend_cpu_per_packet;
    spend "rr_system.host_tx_path" host_tx_path;
    Nic.transmit server_nic pkt
  in
  (* Guest cleanup between transactions: reap completions, recycle
     buffers and revoke spent grants. *)
  let guest_reap () =
    match transport with
    | Direct -> ()
    | Virtio { rx; tx } ->
        (match Virtqueue.guest_reap_used rx with
        | Some _ -> post_rx_buffer ()
        | None -> ());
        let rec reap_tx () =
          match Virtqueue.guest_reap_used tx with
          | Some _ -> reap_tx ()
          | None -> ()
        in
        reap_tx ()
    | Xen_pv { rx; tx; _ } ->
        (match Xen_ring.frontend_reap rx with
        | Some rsp ->
            ignore rsp;
            post_rx_buffer ()
        | None -> ());
        let rec reap_tx () =
          match Xen_ring.frontend_reap tx with
          | Some _ -> reap_tx ()
          | None -> ()
        in
        reap_tx ()
  in
  (* --- processes ---------------------------------------------------- *)
  let is_native = transport = Direct in
  (* Host / Dom0 backend. *)
  Sim.spawn sim ~name:"backend-rx" (fun () ->
      for _ = 1 to transactions do
        let pkt = Sim.Mailbox.recv host_inbox in
        spend "rr_system.phys_rx_extra" p.Io_profile.phys_rx_extra_latency;
        Packet.stamp pkt "recv";
        if is_native then begin
          spend "rr_system.native_server" (Kernel_costs.rr_server_cycles g);
          Packet.stamp pkt "send_mark";
          Nic.transmit server_nic pkt
        end
        else begin
          spend "rr_system.host_rx_path" host_rx_path;
          backend_rx pkt
        end
      done);
  if not is_native then begin
    (* The guest VCPU. *)
    Sim.spawn sim ~name:"guest-vcpu" (fun () ->
        for _ = 1 to transactions do
          let pkt = Sim.Mailbox.recv guest_inbox in
          (match transport with
          | Xen_pv { channels; irq_port; _ } ->
              if not (Event_channel.consume channels irq_port) then
                failwith "Rr_system: interrupt without pending event"
          | Direct | Virtio _ -> ());
          (match Vgic.acknowledge vgic with
          | Some irq ->
              spend "rr_system.virq_completion" p.Io_profile.virq_completion;
              Vgic.complete vgic irq
          | None -> failwith "Rr_system: interrupt without pending vIRQ");
          Packet.stamp pkt "vm_recv";
          guest_reap ();
          let guest_core =
            Kernel_costs.rr_server_cycles g
            - g.Kernel_costs.irq_top_half - g.Kernel_costs.driver_tx
          in
          spend "rr_system.vm_processing"
            (guest_core + p.Io_profile.guest_rx_per_packet
           + p.Io_profile.guest_tx_per_packet + guest_virt_steal);
          Packet.stamp pkt "vm_send";
          guest_tx pkt
        done);
    (* The backend's transmit side. *)
    Sim.spawn sim ~name:"backend-tx" (fun () ->
        for _ = 1 to transactions do
          let pkt = Sim.Mailbox.recv backend_tx_inbox in
          backend_tx pkt;
          Packet.stamp pkt "send_mark"
        done)
  end;
  (* The client. *)
  let pkts = ref [] in
  let elapsed = ref Cycles.zero in
  Sim.spawn sim ~name:"client" (fun () ->
      let t0 = Sim.current_time () in
      for id = 1 to transactions do
        let pkt = Packet.create ~payload:1 ~id () in
        pkts := pkt :: !pkts;
        Packet.stamp pkt "client_send";
        Link.send server_link pkt ~deliver:(fun pkt -> Nic.receive server_nic pkt);
        Sim.Signal.wait response_arrived;
        Sim.delay (Cycles.of_int client_turnaround)
      done;
      elapsed := Cycles.sub (Sim.current_time ()) t0);
  (* Pre-post receive buffers before traffic starts. *)
  (match transport with
  | Direct -> ()
  | Virtio _ | Xen_pv _ ->
      for _ = 1 to 4 do
        post_rx_buffer ()
      done);
  Sim.run sim;
  let pkts = List.rev !pkts in
  let mean_interval a b =
    let values =
      List.filter_map
        (fun pkt ->
          Option.map
            (fun c -> Machine.elapsed_us machine c)
            (Packet.interval pkt a b))
        pkts
    in
    match values with
    | [] -> None
    | _ ->
        Some
          (List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values))
  in
  let total_us = Machine.elapsed_us machine !elapsed in
  let time_per_trans_us = total_us /. float_of_int transactions in
  {
    transactions;
    time_per_trans_us;
    trans_per_sec = 1e6 /. time_per_trans_us;
    recv_to_send_us = Option.value ~default:0.0 (mean_interval "recv" "send_mark");
    vm_internal_us = mean_interval "vm_recv" "vm_send";
    rings_used = stats.rings;
    grants_used = stats.grants;
    virqs_injected = stats.virqs;
  }
