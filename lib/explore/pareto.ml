let check_dims ~dirs rows =
  let k = List.length dirs in
  List.iteri
    (fun i row ->
      if Array.length row <> k then
        invalid_arg
          (Printf.sprintf
             "Pareto.frontier: row %d has %d objectives, expected %d" i
             (Array.length row) k))
    rows

(* [a] dominates [b]: no worse on every objective, strictly better on at
   least one. Equal rows dominate in neither direction. *)
let dominates ~dirs a b =
  let no_worse = ref true and strictly_better = ref false in
  List.iteri
    (fun i dir ->
      let better, worse =
        match (dir : Objective.direction) with
        | Objective.Min -> (a.(i) < b.(i), a.(i) > b.(i))
        | Objective.Max -> (a.(i) > b.(i), a.(i) < b.(i))
      in
      if worse then no_worse := false;
      if better then strictly_better := true)
    dirs;
  !no_worse && !strictly_better

let frontier ~dirs rows =
  if dirs = [] then invalid_arg "Pareto.frontier: no objectives";
  check_dims ~dirs rows;
  let arr = Array.of_list rows in
  let n = Array.length arr in
  List.filter
    (fun i ->
      let dominated =
        let rec any j =
          j < n && ((j <> i && dominates ~dirs arr.(j) arr.(i)) || any (j + 1))
        in
        any 0
      in
      (* Keep-first among exact duplicates: later copies add nothing. *)
      let duplicate_of_earlier =
        let rec any j = j < i && (arr.(j) = arr.(i) || any (j + 1)) in
        any 0
      in
      (not dominated) && not duplicate_of_earlier)
    (List.init n Fun.id)
