(** A fully specified design point: ARM cost model + KVM tuning +
    interrupt-hardware and backend knobs + hypervisor choice.

    Everything is a functional update over {!default} — applying a
    sampled {!Space.point} builds a fresh record, and {!hypervisor}
    builds a fresh simulated machine from it, so points evaluated in
    parallel runner domains share nothing. *)

type hyp_choice = Kvm | Xen | Native

type fleet_cfg = {
  fleet_vms : int;  (** Guests consolidated for the [fleet-*] objectives. *)
  fleet_vcpus : int;  (** VCPUs per fleet guest. *)
  fleet_timeslice_ms : float;  (** Credit-scheduler timeslice. *)
}

type cluster_cfg = {
  cluster_vms : int;  (** VMs on the two-host cluster topology. *)
  cluster_load : float;  (** Offered load, fraction of native capacity. *)
  net_queue : int;  (** Virtual-switch per-port egress queue, frames. *)
  net_uplink_gbps : float;  (** Cross-host uplink wire rate. *)
}

type t = {
  arm : Armvirt_arch.Cost_model.arm;
  tuning : Armvirt_hypervisor.Kvm_arm.tuning;
  num_lrs : int;  (** List registers, consumed by the LR objectives. *)
  vhost : bool;  (** [false] models a userspace (QEMU-style) backend. *)
  hyp : hyp_choice;
  migration : Armvirt_migrate.Plan.t;
      (** Scenario for the [mig-*] objectives; the [mig.*] knobs edit it
          (page-size edits hold total guest memory constant). *)
  fleet : fleet_cfg;
      (** Consolidation scenario for the [fleet-*] objectives; the
          [fleet.*] knobs edit it. *)
  cluster : cluster_cfg;
      (** Cluster-networking scenario for the [cluster-*] and [chain-*]
          objectives; the [cluster.*] and [net.*] knobs edit it. *)
}

val default : t
(** The paper's measured m400 KVM configuration: {!Armvirt_arch.Cost_model.arm_default},
    {!Armvirt_hypervisor.Kvm_arm.default_tuning}, 4 list registers
    (GIC-400), VHOST on. *)

val knobs : (string * string) list
(** Every axis name {!apply} understands, with a one-line description. *)

val apply : t -> string -> Space.value -> t
(** [apply t name v] returns a copy with one knob overridden. Raises
    [Invalid_argument] on an unknown name or a value of the wrong kind. *)

val apply_point : t -> Space.point -> t

val hypervisor : t -> Armvirt_hypervisor.Hypervisor.t
(** Build a fresh machine + hypervisor for the point. VHE is forced off
    for [Xen]/[Native] (Type 1 and bare metal leave E2H clear), and
    [vhost = false] quadruples the per-packet backend cost. *)

val hyp_choice_of_string : string -> hyp_choice
val hyp_choice_to_string : hyp_choice -> string
