module Rng = Armvirt_engine.Rng

type t = Grid | Lhs of int | Oat

let of_string s =
  match String.split_on_char ':' s with
  | [ "grid" ] -> Grid
  | [ "oat" ] -> Oat
  | [ "lhs"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Lhs n
      | _ -> invalid_arg (Printf.sprintf "Sampler.of_string: lhs:%s" n))
  | _ ->
      invalid_arg
        (Printf.sprintf "Sampler.of_string: %S (want grid, lhs:N or oat)" s)

let to_string = function
  | Grid -> "grid"
  | Lhs n -> Printf.sprintf "lhs:%d" n
  | Oat -> "oat"

let grid (space : Space.t) : Space.point list =
  let rec go = function
    | [] -> [ [] ]
    | a :: rest ->
        let tails = go rest in
        List.concat_map
          (fun v -> List.map (fun tl -> (a.Space.name, v) :: tl) tails)
          (Space.levels a)
  in
  go space

(* Map a unit-interval draw onto an axis: continuous interpolation for
   float ranges, stratified level pick for everything discrete. *)
let value_at (a : Space.axis) u =
  match a.spec with
  | Space.Float_range { lo; hi; _ } -> Space.Float (lo +. (u *. (hi -. lo)))
  | _ ->
      let lv = Space.levels a in
      let n = List.length lv in
      let i = min (n - 1) (int_of_float (u *. float_of_int n)) in
      List.nth lv i

let latin_hypercube ~seed ~n (space : Space.t) : Space.point list =
  if n < 1 then invalid_arg "Sampler.latin_hypercube: n < 1";
  let rng = Rng.create ~seed in
  (* All randomness is drawn here, serially, in axis order — the point
     list is fixed before any parallel evaluation fan-out, so the same
     seed and space give byte-identical points at any --jobs. *)
  let per_axis =
    List.map
      (fun (a : Space.axis) ->
        let perm = Array.init n Fun.id in
        Rng.shuffle rng perm;
        let vals =
          Array.init n (fun i ->
              let u =
                (float_of_int perm.(i) +. Rng.float rng ~bound:1.0)
                /. float_of_int n
              in
              value_at a u)
        in
        (a.Space.name, vals))
      space
  in
  List.init n (fun i ->
      List.map (fun (name, vals) -> (name, vals.(i))) per_axis)

let one_at_a_time (space : Space.t) : Space.point list =
  let base =
    List.map (fun (a : Space.axis) -> (a.Space.name, List.hd (Space.levels a))) space
  in
  let deviations =
    List.concat_map
      (fun (a : Space.axis) ->
        match Space.levels a with
        | _ :: rest ->
            List.map
              (fun v ->
                List.map
                  (fun (k, v0) -> if k = a.Space.name then (k, v) else (k, v0))
                  base)
              rest
        | [] -> [])
      space
  in
  base :: deviations

let points t ~seed space =
  match t with
  | Grid -> grid space
  | Lhs n -> latin_hypercube ~seed ~n space
  | Oat -> one_at_a_time space
