(** Typed description of a design space: named axes over cost-model
    constants, hypervisor tuning knobs and platform choices.

    A space is pure data — sampling it yields {!point}s, and
    {!Config.apply_point} turns a point into a fresh configuration
    functionally, so concurrently evaluated points never share state. *)

type value = Int of int | Float of float | Bool of bool | Choice of string

type spec =
  | Int_range of { lo : int; hi : int; step : int }
      (** [lo, lo+step, ..] up to and including [hi] when it lands. *)
  | Float_range of { lo : float; hi : float; step : float }
  | Levels of value list  (** Explicit levels, in order. *)

type axis = { name : string; spec : spec }

type t = axis list

type point = (string * value) list
(** One sampled assignment, in axis order. *)

val axis : string -> spec -> axis
(** Raises [Invalid_argument] on an empty name, empty levels, a
    non-positive step or an inverted range. *)

val of_axes : axis list -> t
(** Raises [Invalid_argument] on duplicate axis names or an empty list. *)

val levels : axis -> value list
(** The discrete levels a grid or one-at-a-time sampler enumerates. *)

val size : t -> int
(** Number of full-grid points (product of level counts). *)

val value_to_string : value -> string
val value_to_float : value -> float
(** [Bool] maps to 0/1; raises [Invalid_argument] on [Choice]. *)

val point_to_string : point -> string
(** ["vgic.save=2500 lr_count=4"] — stable, for logs and memo keys. *)

val of_string : string -> t
(** Parse the CLI syntax: comma-separated [name=spec] bindings where
    spec is [lo:hi:step] (ints, or floats if any bound has a point) or
    [v|v|...] explicit levels (ints, floats, [true]/[false], anything
    else a choice label). Example:
    ["vgic.save=2000:4375:625,lr_count=2|4,hyp=kvm|xen"].
    Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Inverse of {!of_string} (canonical form). *)
