(** Calibration search: recover cost-model constants by minimizing (or
    maximizing) an objective over a space — typically one of the
    error-vs-paper objectives, e.g. perturb [vgic.save] and ask the
    search to find the value that reproduces Table II's hypercall cost.

    The algorithm is coordinate descent over the axis level grids with
    seeded random restarts: deterministic for a fixed (seed, space,
    objective), memoized so no point is simulated twice, and level
    scans fan out through {!Armvirt_core.Runner.map} so [--jobs]
    changes wall-clock time but never the answer. *)

type result = {
  best : Space.point;
  best_value : float;
  evaluations : int;  (** Distinct points simulated (memo misses). *)
  sweeps : int;  (** Coordinate sweeps performed across all restarts. *)
  restart_bests : (Space.point * float) list;
}

val search :
  ?restarts:int ->
  ?max_sweeps:int ->
  ?seed:int ->
  ?jobs:int ->
  ?start:Space.point ->
  base:Config.t ->
  objective:Objective.t ->
  Space.t ->
  result
(** [restarts] defaults to 3 (the first start is [?start] if given, else
    every axis at its first level; later starts are drawn from
    {!Armvirt_engine.Rng} seeded with [seed], default 42).
    [max_sweeps] (default 8) bounds the sweeps of each restart; a
    restart also stops as soon as a full sweep improves nothing.
    Raises [Invalid_argument] on non-positive [restarts]/[max_sweeps]. *)
