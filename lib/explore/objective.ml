module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Summary = Armvirt_stats.Summary
module Cycle_counter = Armvirt_stats.Cycle_counter
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module W = Armvirt_workloads
module Paper_data = Armvirt_core.Paper_data

type direction = Min | Max

type t = {
  name : string;
  doc : string;
  unit_ : string;
  direction : direction;
  eval : Config.t -> float;
}

let iterations = 9

(* Run one synchronous microbenchmark op on a fresh machine built for
   the point and return the median cycle count. *)
let median_sync op config =
  let hyp = Config.hypervisor config in
  let sim = Machine.sim hyp.Hypervisor.machine in
  let counter =
    Cycle_counter.create ~barrier_cost:hyp.Hypervisor.barrier_cost
  in
  let collected = ref [] in
  Sim.spawn sim ~name:"explore-objective" (fun () ->
      collected :=
        List.init iterations (fun _ ->
            Cycle_counter.measure counter (op hyp)));
  Sim.run sim;
  float_of_int (Cycles.to_int (Summary.median_cycles (Summary.of_cycles !collected)))

(* Same for the asynchronous ops, which report their own latency. *)
let median_latency op config =
  let hyp = Config.hypervisor config in
  let sim = Machine.sim hyp.Hypervisor.machine in
  let collected = ref [] in
  Sim.spawn sim ~name:"explore-objective" (fun () ->
      collected := List.init iterations (fun _ -> op hyp ()));
  Sim.run sim;
  float_of_int (Cycles.to_int (Summary.median_cycles (Summary.of_cycles !collected)))

let table2_column (config : Config.t) (q : Paper_data.quad) =
  match config.Config.hyp with
  | Config.Kvm -> float_of_int q.Paper_data.kvm_arm
  | Config.Xen -> float_of_int q.Paper_data.xen_arm
  | Config.Native ->
      invalid_arg "Objective: paper-error objectives need hyp=kvm or hyp=xen"

let pct_err ~model ~target = Float.abs (model -. target) /. target *. 100.

let hypercall_cycles config =
  median_sync (fun h -> h.Hypervisor.hypercall) config

module Fleet = Armvirt_fleet

(* One-profile fleet built from the point's fleet.* knobs. *)
let fleet_desc (c : Config.t) =
  let f = c.Config.fleet in
  Fleet.Descriptor.v ~timeslice_ms:f.Config.fleet_timeslice_ms
    ~vms:f.Config.fleet_vms
    [
      ({ Fleet.Descriptor.synthetic with vcpus = f.Config.fleet_vcpus }, 1);
    ]

let table2_row name =
  match List.assoc_opt name Paper_data.table2 with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Objective: no Table II row %S" name)

let all =
  [
    {
      name = "hypercall";
      doc = "median no-op hypercall round trip (Table II row 1)";
      unit_ = "cycles";
      direction = Min;
      eval = hypercall_cycles;
    };
    {
      name = "ict";
      doc = "median trapped interrupt-controller access";
      unit_ = "cycles";
      direction = Min;
      eval = median_sync (fun h -> h.Hypervisor.interrupt_controller_trap);
    };
    {
      name = "virq-complete";
      doc = "median trap-free virtual interrupt completion";
      unit_ = "cycles";
      direction = Min;
      eval = median_sync (fun h -> h.Hypervisor.virtual_irq_completion);
    };
    {
      name = "vm-switch";
      doc = "median same-core VM-to-VM switch";
      unit_ = "cycles";
      direction = Min;
      eval = median_sync (fun h -> h.Hypervisor.vm_switch);
    };
    {
      name = "io-out";
      doc = "median guest kick to backend notification latency";
      unit_ = "cycles";
      direction = Min;
      eval = median_latency (fun h -> h.Hypervisor.io_latency_out);
    };
    {
      name = "io-in";
      doc = "median backend signal to guest handler latency";
      unit_ = "cycles";
      direction = Min;
      eval = median_latency (fun h -> h.Hypervisor.io_latency_in);
    };
    {
      name = "rr-rate";
      doc = "Netperf TCP_RR transaction rate";
      unit_ = "trans/s";
      direction = Max;
      eval =
        (fun c ->
          (W.Netperf.run_tcp_rr ~transactions:100 (Config.hypervisor c))
            .W.Netperf.trans_per_sec);
    };
    {
      name = "rr-us";
      doc = "Netperf TCP_RR time per transaction";
      unit_ = "us";
      direction = Min;
      eval =
        (fun c ->
          (W.Netperf.run_tcp_rr ~transactions:100 (Config.hypervisor c))
            .W.Netperf.time_per_trans_us);
    };
    {
      name = "maerts-gbps";
      doc = "Netperf TCP_MAERTS (VM transmit) throughput";
      unit_ = "Gbps";
      direction = Max;
      eval =
        (fun c -> (W.Netperf.tcp_maerts (Config.hypervisor c)).W.Netperf.gbps);
    };
    {
      name = "stream-gbps";
      doc = "Netperf TCP_STREAM (VM receive) throughput";
      unit_ = "Gbps";
      direction = Max;
      eval =
        (fun c -> (W.Netperf.tcp_stream (Config.hypervisor c)).W.Netperf.gbps);
    };
    {
      name = "tail-p99";
      doc = "open-loop p99 latency at 0.8 native load";
      unit_ = "us";
      direction = Min;
      eval =
        (fun c ->
          (W.Tail_latency.run ~seed:42 ~requests:600 (Config.hypervisor c)
             ~load:0.8)
            .W.Tail_latency.p99_us);
    };
    {
      name = "lr-overhead";
      doc =
        "maintenance overhead per interrupt at the point's lr_count \
         (burst 12, 400 bursts)";
      unit_ = "cycles/irq";
      direction = Min;
      eval =
        (fun c ->
          (W.Lr_sensitivity.run (Config.hypervisor c)
             ~num_lrs:c.Config.num_lrs ~burst_size:12 ~bursts:400)
            .W.Lr_sensitivity.cycles_per_interrupt);
    };
    {
      name = "mig-downtime";
      doc = "live-migration blackout under the point's mig.* scenario";
      unit_ = "us";
      direction = Min;
      eval =
        (fun c ->
          (W.Migration.run ~plan:c.Config.migration (Config.hypervisor c))
            .W.Migration.downtime_us);
    };
    {
      name = "mig-total";
      doc = "live-migration total time, first protect to resume";
      unit_ = "us";
      direction = Min;
      eval =
        (fun c ->
          (W.Migration.run ~plan:c.Config.migration (Config.hypervisor c))
            .W.Migration.total_ms
          *. 1e3);
    };
    {
      name = "mig-resent";
      doc = "pages shipped more than once during pre-copy";
      unit_ = "pages";
      direction = Min;
      eval =
        (fun c ->
          float_of_int
            (W.Migration.run ~plan:c.Config.migration (Config.hypervisor c))
              .W.Migration.pages_resent);
    };
    {
      name = "mig-p99-degradation";
      doc = "worst pre-copy round request p99 over the baseline p99";
      unit_ = "x";
      direction = Min;
      eval =
        (fun c ->
          (W.Migration.run ~plan:c.Config.migration (Config.hypervisor c))
            .W.Migration.p99_degradation);
    };
    {
      name = "fleet-ready";
      doc =
        "boot-storm time to all guests ready at the point's fleet.* \
         scenario";
      unit_ = "ms";
      direction = Min;
      eval =
        (fun c ->
          (Fleet.Scenario.boot_storm ~seed:42 (Config.hypervisor c)
             (fleet_desc c))
            .Fleet.Scenario.time_to_ready_ms);
    };
    {
      name = "fleet-p99";
      doc =
        "noisy-neighbor victim request p99 at the point's fleet.* \
         scenario";
      unit_ = "us";
      direction = Min;
      eval =
        (fun c ->
          (Fleet.Scenario.noisy_neighbor ~seed:42 (Config.hypervisor c)
             (fleet_desc c))
            .Fleet.Scenario.p99_us);
    };
    {
      name = "cluster-pair-gbps";
      doc =
        "same-host VM-to-VM throughput (pairwise matrix mean) at the \
         point's cluster.*/net.* scenario";
      unit_ = "Gbps";
      direction = Max;
      eval =
        (fun c ->
          let n = c.Config.cluster in
          W.Cluster.matrix_mean ~cross:false
            (W.Cluster.run_matrix ~vms:n.Config.cluster_vms
               ~queue_capacity:n.Config.net_queue
               ~uplink_gbps:n.Config.net_uplink_gbps (Config.hypervisor c)));
    };
    {
      name = "cluster-xhost-gbps";
      doc = "cross-host VM-to-VM throughput over the cluster uplinks";
      unit_ = "Gbps";
      direction = Max;
      eval =
        (fun c ->
          let n = c.Config.cluster in
          W.Cluster.matrix_mean ~cross:true
            (W.Cluster.run_matrix ~vms:n.Config.cluster_vms
               ~queue_capacity:n.Config.net_queue
               ~uplink_gbps:n.Config.net_uplink_gbps (Config.hypervisor c)));
    };
    {
      name = "chain-p99";
      doc =
        "client -> LB -> backend service-chain p99 end-to-end latency \
         across the cluster pair";
      unit_ = "us";
      direction = Min;
      eval =
        (fun c ->
          (W.Cluster.run_chain ~requests:100
             ~uplink_gbps:c.Config.cluster.Config.net_uplink_gbps
             (Config.hypervisor c))
            .W.Cluster.p99_total_us);
    };
    {
      name = "cluster-p99";
      doc =
        "open-loop backend-pool p99 at the point's cluster.load offered \
         load, through the switch fabric";
      unit_ = "us";
      direction = Min;
      eval =
        (fun c ->
          let n = c.Config.cluster in
          let r =
            W.Cluster.run_loadgen ~seed:42 ~requests:600
              ~vms:n.Config.cluster_vms
              ~loads:[ n.Config.cluster_load ]
              ~uplink_gbps:n.Config.net_uplink_gbps (Config.hypervisor c)
          in
          match r.W.Cluster.points with
          | [ p ] -> p.W.Cluster.p99_us
          | _ -> invalid_arg "Objective: cluster-p99 expects one point");
    };
    {
      name = "hypercall-err";
      doc = "percent error of the hypercall cost vs Table II";
      unit_ = "%";
      direction = Min;
      eval =
        (fun c ->
          let target = table2_column c (table2_row "Hypercall") in
          pct_err ~model:(hypercall_cycles c) ~target);
    };
    {
      name = "table2-err";
      doc =
        "mean percent error over all seven Table II microbenchmarks \
         vs the paper's column for the point's hypervisor";
      unit_ = "%";
      direction = Min;
      eval =
        (fun c ->
          let r = W.Microbench.run ~iterations (Config.hypervisor c) in
          let errs =
            List.map
              (fun (name, cycles) ->
                let target = table2_column c (table2_row name) in
                pct_err ~model:(float_of_int cycles) ~target)
              (W.Microbench.to_rows r)
          in
          List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs));
    };
  ]

let names = List.map (fun o -> o.name) all

let find name =
  match List.find_opt (fun o -> o.name = name) all with
  | Some o -> o
  | None ->
      invalid_arg
        (Printf.sprintf "Objective.find: %S (available: %s)" name
           (String.concat ", " names))
