module Rng = Armvirt_engine.Rng
module Runner = Armvirt_core.Runner

type result = {
  best : Space.point;
  best_value : float;
  evaluations : int;  (** Distinct points actually simulated. *)
  sweeps : int;  (** Coordinate-descent sweeps across all restarts. *)
  restart_bests : (Space.point * float) list;
      (** Per-restart optimum, in restart order. *)
}

let better (dir : Objective.direction) a b =
  match dir with Objective.Min -> a < b | Objective.Max -> a > b

(* Every candidate a restart can visit sits on the axis level grid, so
   the memo key is just the printed point. *)
let point_key = Space.point_to_string

let random_point rng (space : Space.t) : Space.point =
  List.map
    (fun (a : Space.axis) ->
      let lv = Space.levels a in
      (a.Space.name, List.nth lv (Rng.int rng ~bound:(List.length lv))))
    space

let set_axis point name v =
  List.map (fun (k, v0) -> if k = name then (k, v) else (k, v0)) point

let search ?(restarts = 3) ?(max_sweeps = 8) ?(seed = 42) ?jobs ?start ~base
    ~(objective : Objective.t) (space : Space.t) =
  if restarts < 1 then invalid_arg "Calibrate.search: restarts < 1";
  if max_sweeps < 1 then invalid_arg "Calibrate.search: max_sweeps < 1";
  let memo : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let evaluations = ref 0 in
  let sweeps = ref 0 in
  (* Evaluate a batch of points, fanning only memo misses out through the
     runner; the memo is filled in input order, so results never depend
     on domain scheduling. *)
  let eval_batch points =
    let misses =
      List.filter
        (fun p -> not (Hashtbl.mem memo (point_key p)))
        (List.sort_uniq compare points)
    in
    let values =
      Runner.map ?jobs
        (fun p -> objective.Objective.eval (Config.apply_point base p))
        misses
    in
    List.iter2
      (fun p v ->
        incr evaluations;
        Hashtbl.replace memo (point_key p) v)
      misses values;
    List.map (fun p -> Hashtbl.find memo (point_key p)) points
  in
  let eval1 p = List.hd (eval_batch [ p ]) in
  let descend start_point =
    let current = ref start_point in
    let current_v = ref (eval1 start_point) in
    let improved = ref true in
    let budget = ref max_sweeps in
    while !improved && !budget > 0 do
      improved := false;
      decr budget;
      incr sweeps;
      List.iter
        (fun (a : Space.axis) ->
          let candidates =
            List.map (fun v -> set_axis !current a.Space.name v) (Space.levels a)
          in
          let values = eval_batch candidates in
          List.iter2
            (fun p v ->
              if better objective.Objective.direction v !current_v then begin
                current := p;
                current_v := v;
                improved := true
              end)
            candidates values)
        space
    done;
    (!current, !current_v)
  in
  let rng = Rng.create ~seed in
  let restart_starts =
    List.init restarts (fun i ->
        match (i, start) with
        | 0, Some p -> p
        | 0, None ->
            (* Default first start: each axis at its first level. *)
            List.map
              (fun (a : Space.axis) -> (a.Space.name, List.hd (Space.levels a)))
              space
        | _ -> random_point rng space)
  in
  let restart_bests = List.map descend restart_starts in
  let best, best_value =
    match restart_bests with
    | first :: rest ->
        List.fold_left
          (fun (bp, bv) (p, v) ->
            if better objective.Objective.direction v bv then (p, v)
            else (bp, bv))
          first rest
    | [] -> assert false
  in
  { best; best_value; evaluations = !evaluations; sweeps = !sweeps;
    restart_bests }
