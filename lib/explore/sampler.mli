(** Deterministic samplers over a {!Space.t}.

    All three are pure functions of (space, seed): the full point list
    is materialized serially before any parallel evaluation, so results
    are reproducible at any [--jobs] level. *)

type t =
  | Grid  (** Full cartesian product, first axis slowest. *)
  | Lhs of int
      (** Latin hypercube with the given sample count: each axis is cut
          into n strata, each stratum used exactly once, stratum order
          shuffled per axis via {!Armvirt_engine.Rng}. Float ranges
          interpolate continuously; discrete axes pick the stratum's
          level. *)
  | Oat
      (** One-at-a-time sensitivity design: the base point (first level
          of every axis) first, then one point per non-base level of
          each axis, deviating in that axis only. *)

val of_string : string -> t
(** ["grid"], ["lhs:N"] or ["oat"]. Raises [Invalid_argument] otherwise. *)

val to_string : t -> string

val points : t -> seed:int -> Space.t -> Space.point list
(** [seed] only affects [Lhs]. *)
