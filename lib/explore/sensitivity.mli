(** Per-axis sensitivity ranking from a one-at-a-time design.

    Feeding the {!Sampler.Oat} points and their objective values here
    answers "which constant dominates this metric" — on the hypercall
    objective the VGIC save cost tops the ranking, the paper's Table III
    observation recovered from the model. *)

type ranking = {
  axis : string;
  lo : float;  (** Smallest objective value seen varying this axis. *)
  hi : float;
  span : float;  (** [hi - lo] — the ranking key, descending. *)
  span_pct : float;  (** Span as a percentage of the base value. *)
}

val rank : points:Space.point list -> values:float list -> ranking list
(** [points] and [values] in {!Sampler.Oat} order: base first, then one
    point per deviation. Ties broken by axis name. Raises
    [Invalid_argument] on length mismatch, an empty list, or a point
    deviating in more than one axis. *)
