(** One complete design-space sweep: sample, evaluate in parallel,
    rank.

    The point list is materialized serially by the sampler, evaluation
    fans out through {!Armvirt_core.Runner.map} (input-order merge), and
    the emitters print from the merged list — so the CSV and markdown
    are byte-identical at any [--jobs] level. *)

type t = {
  space : Space.t;
  sampler : Sampler.t;
  seed : int;
  objectives : Objective.t list;
  points : Space.point list;
  values : float array list;  (** Row per point, column per objective. *)
  pareto : int list;  (** Indices of the non-dominated points. *)
  sensitivity : Sensitivity.ranking list option;
      (** Present for {!Sampler.Oat} runs, ranked on the first
          objective. *)
}

val run :
  ?jobs:int ->
  ?seed:int ->
  base:Config.t ->
  sampler:Sampler.t ->
  objectives:Objective.t list ->
  Space.t ->
  t
(** [seed] defaults to 42. Raises [Invalid_argument] on an empty
    objective list or a sampler yielding no points. *)

val pp_csv : Format.formatter -> t -> unit
(** One row per point: axis columns, one column per objective
    ([name_unit]), and a [pareto] 0/1 flag. *)

val pp_markdown : Format.formatter -> t -> unit
(** Full report: parameters, the point table, the Pareto frontier and
    (for one-at-a-time runs) the sensitivity ranking. *)

val to_csv : t -> string
val to_markdown : t -> string
