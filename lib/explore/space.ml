type value = Int of int | Float of float | Bool of bool | Choice of string

type spec =
  | Int_range of { lo : int; hi : int; step : int }
  | Float_range of { lo : float; hi : float; step : float }
  | Levels of value list

type axis = { name : string; spec : spec }
type t = axis list
type point = (string * value) list

let validate_spec name = function
  | Int_range { lo; hi; step } ->
      if step <= 0 then
        invalid_arg (Printf.sprintf "Space.axis %s: step <= 0" name);
      if lo > hi then
        invalid_arg (Printf.sprintf "Space.axis %s: lo > hi" name)
  | Float_range { lo; hi; step } ->
      if step <= 0. then
        invalid_arg (Printf.sprintf "Space.axis %s: step <= 0" name);
      if lo > hi then
        invalid_arg (Printf.sprintf "Space.axis %s: lo > hi" name)
  | Levels [] -> invalid_arg (Printf.sprintf "Space.axis %s: no levels" name)
  | Levels _ -> ()

let axis name spec =
  if name = "" then invalid_arg "Space.axis: empty name";
  validate_spec name spec;
  { name; spec }

let of_axes axes =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.name then
        invalid_arg (Printf.sprintf "Space.of_axes: duplicate axis %s" a.name);
      Hashtbl.add seen a.name ())
    axes;
  if axes = [] then invalid_arg "Space.of_axes: empty space";
  axes

let levels a =
  match a.spec with
  | Levels vs -> vs
  | Int_range { lo; hi; step } ->
      let rec go v acc = if v > hi then List.rev acc else go (v + step) (Int v :: acc) in
      go lo []
  | Float_range { lo; hi; step } ->
      (* index-based stepping avoids accumulation error; the epsilon admits
         an endpoint that float rounding leaves a hair past [hi]. *)
      let eps = step *. 1e-9 in
      let rec go i acc =
        let v = lo +. (float_of_int i *. step) in
        if v > hi +. eps then List.rev acc else go (i + 1) (Float v :: acc)
      in
      go 0 []

let size t =
  List.fold_left (fun acc a -> acc * List.length (levels a)) 1 t

let value_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Choice s -> s

let value_to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | Bool b -> if b then 1. else 0.
  | Choice s -> invalid_arg (Printf.sprintf "Space.value_to_float: choice %s" s)

let point_to_string (p : point) =
  String.concat " "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_string v)) p)

(* {2 Parsing} *)

let parse_value tok =
  match int_of_string_opt tok with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> (
          match bool_of_string_opt tok with
          | Some b -> Bool b
          | None ->
              if tok = "" then invalid_arg "Space.of_string: empty level"
              else Choice tok))

let parse_spec name s =
  match String.split_on_char ':' s with
  | [ lo; hi; step ] -> (
      match
        (int_of_string_opt lo, int_of_string_opt hi, int_of_string_opt step)
      with
      | Some lo, Some hi, Some step -> Int_range { lo; hi; step }
      | _ -> (
          match
            ( float_of_string_opt lo,
              float_of_string_opt hi,
              float_of_string_opt step )
          with
          | Some lo, Some hi, Some step -> Float_range { lo; hi; step }
          | _ ->
              invalid_arg
                (Printf.sprintf "Space.of_string: bad range for %s: %s" name s)
          ))
  | [ _ ] -> Levels (List.map parse_value (String.split_on_char '|' s))
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Space.of_string: %s=%s (want lo:hi:step or v|v|...)" name s)

let of_string s =
  let axes =
    String.split_on_char ',' s
    |> List.filter (fun a -> String.trim a <> "")
    |> List.map (fun binding ->
           match String.index_opt binding '=' with
           | None ->
               invalid_arg
                 (Printf.sprintf "Space.of_string: missing '=' in %S" binding)
           | Some i ->
               let name = String.trim (String.sub binding 0 i) in
               let spec =
                 String.trim
                   (String.sub binding (i + 1) (String.length binding - i - 1))
               in
               axis name (parse_spec name spec))
  in
  of_axes axes

let spec_to_string = function
  | Int_range { lo; hi; step } -> Printf.sprintf "%d:%d:%d" lo hi step
  | Float_range { lo; hi; step } -> Printf.sprintf "%g:%g:%g" lo hi step
  | Levels vs -> String.concat "|" (List.map value_to_string vs)

let to_string t =
  String.concat ","
    (List.map (fun a -> Printf.sprintf "%s=%s" a.name (spec_to_string a.spec)) t)
