(** Pareto frontier over multi-objective results. *)

val dominates :
  dirs:Objective.direction list -> float array -> float array -> bool
(** [dominates ~dirs a b]: [a] is no worse than [b] on every objective
    (respecting each direction) and strictly better on at least one.
    Equal rows dominate in neither direction. *)

val frontier : dirs:Objective.direction list -> float array list -> int list
(** Indices (into the input list, ascending) of the non-dominated rows.
    Exact duplicate rows keep only the first occurrence. Raises
    [Invalid_argument] on an empty [dirs] or a row arity mismatch. *)
