module Cost_model = Armvirt_arch.Cost_model
module Reg_class = Armvirt_arch.Reg_class
module H = Armvirt_hypervisor
module Platform = Armvirt_core.Platform
module Plan = Armvirt_migrate.Plan

type hyp_choice = Kvm | Xen | Native

type fleet_cfg = {
  fleet_vms : int;
  fleet_vcpus : int;
  fleet_timeslice_ms : float;
}

type cluster_cfg = {
  cluster_vms : int;
  cluster_load : float;
  net_queue : int;
  net_uplink_gbps : float;
}

type t = {
  arm : Cost_model.arm;
  tuning : H.Kvm_arm.tuning;
  num_lrs : int;
  vhost : bool;
  hyp : hyp_choice;
  migration : Plan.t;
  fleet : fleet_cfg;
  cluster : cluster_cfg;
}

let default_fleet = { fleet_vms = 16; fleet_vcpus = 1; fleet_timeslice_ms = 1.0 }

let default_cluster =
  {
    cluster_vms = 4;
    cluster_load = 0.8;
    net_queue = 64;
    net_uplink_gbps = 10.0;
  }

let default =
  {
    arm = Cost_model.arm_default;
    tuning = H.Kvm_arm.default_tuning;
    num_lrs = 4;
    vhost = true;
    hyp = Kvm;
    migration = Plan.default;
    fleet = default_fleet;
    cluster = default_cluster;
  }

let hyp_choice_of_string = function
  | "kvm" -> Kvm
  | "xen" -> Xen
  | "native" -> Native
  | s ->
      invalid_arg
        (Printf.sprintf "Config: unknown hypervisor %S (kvm|xen|native)" s)

let hyp_choice_to_string = function
  | Kvm -> "kvm"
  | Xen -> "xen"
  | Native -> "native"

let knobs =
  [
    ("vgic.save", "VGIC register-class save cost (Table III's 3250)");
    ("vgic.restore", "VGIC register-class restore cost (Table III's 181)");
    ("trap_to_el2", "hardware trap cost into EL2");
    ("eret", "exception return from EL2");
    ("hvc_issue", "guest-side HVC issue cost");
    ("stage2_toggle", "one Stage-2/trap reconfiguration of HCR_EL2");
    ("vgic_slot_scan", "list-register status scan before injection");
    ("vgic_lr_write", "one list-register write");
    ("virq_complete", "trap-free virtual interrupt completion");
    ("mmio_decode", "Stage-2 abort syndrome decode");
    ("freq_ghz", "core clock in GHz (float)");
    ("vhe", "ARMv8.1 VHE on/off (bool; forced off for xen/native)");
    ("lazy_fp", "lazy FP switch tuning flag (bool)");
    ("lazy_vgic", "lazy VGIC read-back tuning flag (bool)");
    ("host_dispatch", "host-side KVM run-loop cost");
    ("vcpu_resume", "blocked-VCPU wakeup cost");
    ("vhost_per_packet", "VHOST backend per-packet cost");
    ("process_switch", "VM-to-VM process switch cost");
    ("lr_count", "GIC list registers available to the VM (int)");
    ("vhost", "in-kernel VHOST backend on/off (bool; off quadruples the \
               per-packet backend cost, modelling a userspace backend)");
    ("hyp", "which hypervisor runs the point (kvm|xen|native)");
    ("stage2_wp_fault", "stage-2 write-protection fault handling cost \
                         (dirty logging, distinct from a missing mapping)");
    ("mig.txn_rate_hz", "migration workload request arrival rate (float, \
                         sets the guest dirty rate)");
    ("mig.bandwidth_gbps", "migration link bandwidth in Gbps (float)");
    ("mig.page_kb", "migration page granule in KiB (int; total guest \
                     memory is held constant)");
    ("mig.max_rounds", "pre-copy round cap before forced stop-and-copy");
    ("mig.downtime_us", "downtime SLO driving pre-copy convergence (float)");
    ("fleet.vms", "guests consolidated on the host for the fleet-* \
                   objectives (int)");
    ("fleet.vcpus", "VCPUs per fleet guest (int; 2 at 8 PCPUs is 4x \
                     overcommit at 16 VMs)");
    ("fleet.timeslice_ms", "credit-scheduler timeslice in ms (float)");
    ("cluster.vms", "VMs on the two-host cluster topology for the \
                     cluster-* objectives (int, >= 2)");
    ("cluster.load", "offered load as a fraction of the backend pool's \
                      aggregate native capacity (float)");
    ("net.queue", "virtual-switch per-port egress queue capacity in \
                   frames (int)");
    ("net.uplink_gbps", "cross-host uplink wire rate in Gbps (float)");
  ]

let as_int name = function
  | Space.Int n -> n
  | v ->
      invalid_arg
        (Printf.sprintf "Config: %s wants an int, got %s" name
           (Space.value_to_string v))

let as_float name = function
  | Space.Float f -> f
  | Space.Int n -> float_of_int n
  | v ->
      invalid_arg
        (Printf.sprintf "Config: %s wants a float, got %s" name
           (Space.value_to_string v))

let as_bool name = function
  | Space.Bool b -> b
  | v ->
      invalid_arg
        (Printf.sprintf "Config: %s wants a bool, got %s" name
           (Space.value_to_string v))

let vgic_costs arm = arm.Cost_model.reg Reg_class.Vgic

let apply t name v =
  let arm f = { t with arm = f t.arm } in
  let tuning f = { t with tuning = f t.tuning } in
  let mig f =
    let m = f t.migration in
    Plan.validate m;
    { t with migration = m }
  in
  match name with
  | "vgic.save" ->
      let save = as_int name v and restore = (vgic_costs t.arm).restore in
      arm (Cost_model.with_reg_cost Reg_class.Vgic ~save ~restore)
  | "vgic.restore" ->
      let save = (vgic_costs t.arm).save and restore = as_int name v in
      arm (Cost_model.with_reg_cost Reg_class.Vgic ~save ~restore)
  | "trap_to_el2" -> arm (fun a -> { a with trap_to_el2 = as_int name v })
  | "eret" -> arm (fun a -> { a with eret = as_int name v })
  | "hvc_issue" -> arm (fun a -> { a with hvc_issue = as_int name v })
  | "stage2_toggle" -> arm (fun a -> { a with stage2_toggle = as_int name v })
  | "vgic_slot_scan" -> arm (fun a -> { a with vgic_slot_scan = as_int name v })
  | "vgic_lr_write" -> arm (fun a -> { a with vgic_lr_write = as_int name v })
  | "virq_complete" -> arm (fun a -> { a with virq_complete = as_int name v })
  | "mmio_decode" -> arm (fun a -> { a with mmio_decode = as_int name v })
  | "freq_ghz" -> arm (fun a -> { a with freq_ghz = as_float name v })
  | "vhe" -> arm (Cost_model.with_vhe (as_bool name v))
  | "lazy_fp" -> tuning (fun u -> { u with H.Kvm_arm.lazy_fp = as_bool name v })
  | "lazy_vgic" ->
      tuning (fun u -> { u with H.Kvm_arm.lazy_vgic = as_bool name v })
  | "host_dispatch" ->
      tuning (fun u -> { u with H.Kvm_arm.host_dispatch = as_int name v })
  | "vcpu_resume" ->
      tuning (fun u -> { u with H.Kvm_arm.vcpu_resume = as_int name v })
  | "vhost_per_packet" ->
      tuning (fun u -> { u with H.Kvm_arm.vhost_per_packet = as_int name v })
  | "process_switch" ->
      tuning (fun u -> { u with H.Kvm_arm.process_switch = as_int name v })
  | "lr_count" ->
      let n = as_int name v in
      if n < 1 then invalid_arg "Config: lr_count < 1";
      { t with num_lrs = n }
  | "vhost" -> { t with vhost = as_bool name v }
  | "hyp" -> (
      match v with
      | Space.Choice s -> { t with hyp = hyp_choice_of_string s }
      | v ->
          invalid_arg
            (Printf.sprintf "Config: hyp wants kvm|xen|native, got %s"
               (Space.value_to_string v)))
  | "stage2_wp_fault" ->
      arm (Cost_model.with_stage2_wp_fault (as_int name v))
  | "mig.txn_rate_hz" ->
      mig (fun m -> { m with Plan.txn_rate_hz = as_float name v })
  | "mig.bandwidth_gbps" ->
      mig (fun m -> { m with Plan.bandwidth_gbps = as_float name v })
  | "mig.page_kb" ->
      (* Resize the granule, hold guest memory and the hot-set byte
         footprint constant: 4096 x 4K and 2048 x 8K are the same VM. *)
      mig (fun m ->
          let kb = as_int name v in
          if kb < 1 then invalid_arg "Config: mig.page_kb < 1";
          let total_kb = m.Plan.pages * m.Plan.page_kb in
          let hot_kb = m.Plan.hot_pages * m.Plan.page_kb in
          {
            m with
            Plan.page_kb = kb;
            pages = max 1 (total_kb / kb);
            hot_pages = max 1 (hot_kb / kb);
          })
  | "mig.max_rounds" ->
      mig (fun m -> { m with Plan.max_rounds = as_int name v })
  | "mig.downtime_us" ->
      mig (fun m -> { m with Plan.downtime_target_us = as_float name v })
  | "fleet.vms" ->
      let n = as_int name v in
      if n < 1 then invalid_arg "Config: fleet.vms < 1";
      { t with fleet = { t.fleet with fleet_vms = n } }
  | "fleet.vcpus" ->
      let n = as_int name v in
      if n < 1 then invalid_arg "Config: fleet.vcpus < 1";
      { t with fleet = { t.fleet with fleet_vcpus = n } }
  | "fleet.timeslice_ms" ->
      let ms = as_float name v in
      if ms <= 0.0 then invalid_arg "Config: fleet.timeslice_ms <= 0";
      { t with fleet = { t.fleet with fleet_timeslice_ms = ms } }
  | "cluster.vms" ->
      let n = as_int name v in
      if n < 2 then invalid_arg "Config: cluster.vms < 2";
      { t with cluster = { t.cluster with cluster_vms = n } }
  | "cluster.load" ->
      let l = as_float name v in
      if l <= 0.0 then invalid_arg "Config: cluster.load <= 0";
      { t with cluster = { t.cluster with cluster_load = l } }
  | "net.queue" ->
      let n = as_int name v in
      if n < 1 then invalid_arg "Config: net.queue < 1";
      { t with cluster = { t.cluster with net_queue = n } }
  | "net.uplink_gbps" ->
      let g = as_float name v in
      if g <= 0.0 then invalid_arg "Config: net.uplink_gbps <= 0";
      { t with cluster = { t.cluster with net_uplink_gbps = g } }
  | _ ->
      invalid_arg
        (Printf.sprintf "Config: unknown knob %S (see Config.knobs)" name)

let apply_point t point = List.fold_left (fun t (k, v) -> apply t k v) t point

let hypervisor t =
  (* Xen is Type 1 and Native has no EL2 resident — E2H stays clear for
     both, so a sweep mixing hypervisors never hits the Platform guard. *)
  let arm =
    match t.hyp with Kvm -> t.arm | Xen | Native -> Cost_model.with_vhe false t.arm
  in
  let machine = Platform.machine_with ~cost:(Cost_model.Arm arm) in
  match t.hyp with
  | Kvm ->
      let tuning =
        if t.vhost then t.tuning
        else
          {
            t.tuning with
            H.Kvm_arm.vhost_per_packet = t.tuning.H.Kvm_arm.vhost_per_packet * 4;
          }
      in
      H.Kvm_arm.to_hypervisor (H.Kvm_arm.create ~tuning machine)
  | Xen -> H.Xen_arm.to_hypervisor (H.Xen_arm.create machine)
  | Native -> H.Native.to_hypervisor (H.Native.create machine)
