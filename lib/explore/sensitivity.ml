type ranking = {
  axis : string;
  lo : float;
  hi : float;
  span : float;
  span_pct : float;  (** span relative to the base value (0 if base = 0). *)
}

let deviating_axis ~base point =
  let diffs =
    List.filter_map
      (fun (k, v) ->
        match List.assoc_opt k base with
        | Some v0 when v0 = v -> None
        | _ -> Some k)
      point
  in
  match diffs with
  | [ k ] -> Some k
  | [] -> None
  | _ -> invalid_arg "Sensitivity.rank: point deviates in several axes"

let rank ~points ~values =
  match (points, values) with
  | base :: rest_p, base_v :: rest_v
    when List.length rest_p = List.length rest_v ->
      let by_axis = Hashtbl.create 8 in
      List.iter2
        (fun p v ->
          match deviating_axis ~base p with
          | None -> () (* a duplicate of the base adds no information *)
          | Some axis ->
              let prev =
                Option.value (Hashtbl.find_opt by_axis axis) ~default:[]
              in
              Hashtbl.replace by_axis axis (v :: prev))
        rest_p rest_v;
      let rankings =
        Hashtbl.fold
          (fun axis vs acc ->
            let all = base_v :: vs in
            let lo = List.fold_left min (List.hd all) (List.tl all) in
            let hi = List.fold_left max (List.hd all) (List.tl all) in
            let span = hi -. lo in
            let span_pct =
              if base_v = 0. then 0. else span /. Float.abs base_v *. 100.
            in
            { axis; lo; hi; span; span_pct } :: acc)
          by_axis []
      in
      List.sort
        (fun a b ->
          match Float.compare b.span a.span with
          | 0 -> String.compare a.axis b.axis
          | c -> c)
        rankings
  | _ ->
      invalid_arg
        "Sensitivity.rank: need a base point and matching points/values"
