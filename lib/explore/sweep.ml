module Runner = Armvirt_core.Runner
module Report = Armvirt_core.Report

type t = {
  space : Space.t;
  sampler : Sampler.t;
  seed : int;
  objectives : Objective.t list;
  points : Space.point list;
  values : float array list;  (** Row per point, column per objective. *)
  pareto : int list;
  sensitivity : Sensitivity.ranking list option;
}

let run ?jobs ?(seed = 42) ~base ~sampler ~objectives space =
  if objectives = [] then invalid_arg "Sweep.run: no objectives";
  (* Materialize the full point list serially, then fan out: Runner.map
     merges in input order, so the sweep is identical at any --jobs. *)
  let points = Sampler.points sampler ~seed space in
  if points = [] then invalid_arg "Sweep.run: sampler produced no points";
  let values =
    Runner.map ?jobs
      (fun point ->
        let config = Config.apply_point base point in
        Array.of_list
          (List.map (fun (o : Objective.t) -> o.Objective.eval config) objectives))
      points
  in
  let dirs = List.map (fun (o : Objective.t) -> o.Objective.direction) objectives in
  let pareto = Pareto.frontier ~dirs values in
  let sensitivity =
    match sampler with
    | Sampler.Oat ->
        Some
          (Sensitivity.rank ~points
             ~values:(List.map (fun row -> row.(0)) values))
    | Sampler.Grid | Sampler.Lhs _ -> None
  in
  { space; sampler; seed; objectives; points; values; pareto; sensitivity }

let fmt_float x = Printf.sprintf "%.6g" x

let header t =
  List.map (fun (a : Space.axis) -> a.Space.name) t.space
  @ List.map
      (fun (o : Objective.t) ->
        Printf.sprintf "%s_%s" o.Objective.name o.Objective.unit_)
      t.objectives
  @ [ "pareto" ]

let rows t =
  List.mapi
    (fun i (point, row) ->
      List.map (fun (_, v) -> Space.value_to_string v) point
      @ List.map fmt_float (Array.to_list row)
      @ [ (if List.mem i t.pareto then "1" else "0") ])
    (List.combine t.points t.values)

let pp_csv ppf t = Report.pp_csv_table ppf ~header:(header t) (rows t)

let pp_sensitivity_md ppf rankings =
  Report.pp_markdown_table ppf
    ~header:[ "axis"; "lo"; "hi"; "span"; "span %" ]
    (List.map
       (fun (r : Sensitivity.ranking) ->
         [
           r.Sensitivity.axis;
           fmt_float r.Sensitivity.lo;
           fmt_float r.Sensitivity.hi;
           fmt_float r.Sensitivity.span;
           fmt_float r.Sensitivity.span_pct;
         ])
       rankings)

let pp_markdown ppf t =
  Format.fprintf ppf "## Design-space sweep@.@.";
  Format.fprintf ppf "- space: `%s`@." (Space.to_string t.space);
  Format.fprintf ppf "- sampler: `%s`, seed %d, %d points@."
    (Sampler.to_string t.sampler) t.seed (List.length t.points);
  Format.fprintf ppf "- objectives: %s@.@."
    (String.concat ", "
       (List.map
          (fun (o : Objective.t) ->
            Printf.sprintf "`%s` (%s, %s)" o.Objective.name o.Objective.unit_
              (match o.Objective.direction with
              | Objective.Min -> "min"
              | Objective.Max -> "max"))
          t.objectives));
  Report.pp_markdown_table ppf ~header:(header t) (rows t);
  Format.fprintf ppf "@.### Pareto frontier (%d of %d points)@.@."
    (List.length t.pareto) (List.length t.points);
  let all_rows = rows t in
  Report.pp_markdown_table ppf ~header:(header t)
    (List.filteri (fun i _ -> List.mem i t.pareto) all_rows);
  match t.sensitivity with
  | None -> ()
  | Some rankings ->
      Format.fprintf ppf
        "@.### Sensitivity ranking (objective `%s`)@.@."
        (List.hd t.objectives).Objective.name;
      pp_sensitivity_md ppf rankings

let to_csv t = Format.asprintf "%a" pp_csv t
let to_markdown t = Format.asprintf "%a" pp_markdown t
