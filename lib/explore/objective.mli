(** Scalar objectives extracted from a {!Config.t}: microbenchmark
    medians, Netperf figures, tail percentiles, plus error-vs-paper
    objectives that turn the Table II targets into a calibration
    search criterion.

    Every [eval] builds a fresh machine for the point ({!Config.hypervisor})
    and runs a complete measurement, so objective evaluations are pure
    and safe to fan out across runner domains. *)

type direction = Min | Max

type t = {
  name : string;
  doc : string;
  unit_ : string;
  direction : direction;
  eval : Config.t -> float;
}

val all : t list
(** [hypercall], [ict], [virq-complete], [vm-switch], [io-out], [io-in]
    (median cycles); [rr-rate], [rr-us], [maerts-gbps], [stream-gbps]
    (Netperf); [tail-p99]; [lr-overhead] (uses the point's [lr_count]);
    [mig-downtime], [mig-total], [mig-resent], [mig-p99-degradation]
    (live migration under the point's [migration] plan);
    [hypercall-err] and [table2-err] (percent error vs the paper —
    these raise [Invalid_argument] for [hyp=native], which has no
    Table II column). *)

val names : string list

val find : string -> t
(** Raises [Invalid_argument] with the available names on a miss. *)
