(** A point-to-point Ethernet link.

    The paper's testbed interconnect: "All servers are connected via
    10 GbE ... experiments involving networking between two nodes can be
    considered isolated and unaffected by other traffic" (section III).
    A link has fixed propagation latency plus a serialization time per
    byte; deliveries preserve order (it is a wire, not a network). *)

type t

val create :
  Armvirt_engine.Sim.t ->
  propagation:Armvirt_engine.Cycles.t ->
  cycles_per_byte:float ->
  t

val cycles_per_byte_of_gbps : freq_ghz:float -> float -> float
(** The named Gbps → cycles/byte converter: [freq_ghz *. 8.0 /. gbps].
    Every wire-rate constant should enter cycle arithmetic through
    here (the U2 units lint treats it as the sanctioned dimension
    change). Raises [Invalid_argument] on a non-positive rate. *)

val ten_gbe :
  Armvirt_engine.Sim.t -> freq_ghz:float -> t
(** A 10 GbE link as seen from a CPU at [freq_ghz]: ~2 μs one-way
    propagation (cut-through switch + PHY) and 10 Gb/s serialization. *)

val send : t -> Packet.t -> deliver:(Packet.t -> unit) -> unit
(** Queues the packet; [deliver] runs in a fresh simulation process after
    serialization + propagation, in FIFO order with earlier sends. Must
    run inside a simulation process. *)

val transfer_time : t -> bytes:int -> Armvirt_engine.Cycles.t
(** Serialization + propagation for a [bytes]-sized payload, rounded
    once over the whole payload rather than per packet — the
    byte-accurate figure bulk streaming (migration pre-copy) must use so
    large page batches don't accumulate per-packet rounding drift.
    Pure: no wire state is touched. *)

val send_bulk : t -> bytes:int -> Armvirt_engine.Cycles.t
(** Streams a bulk payload: claims the wire in FIFO order behind any
    earlier sends, blocks the calling process until the payload has
    fully arrived at the far end, and returns the observed latency
    (queueing + serialization + propagation). Must run inside a
    simulation process. *)

val in_flight : t -> int
val delivered : t -> int

val busy_cycles : t -> int
(** Cumulative serialization cycles the wire has committed (including
    serialization scheduled into the near future behind the FIFO
    point). *)

val utilization : t -> float
(** Busy cycles over elapsed simulated time. Elapsed is
    [max (Sim.now) wire_free_at] — the horizon the wire is committed
    to — so the figure stays in [0, 1] even while frames are still
    queued to serialize; 0 before any time has passed. *)
