module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles

let default_framing = 66
let vlan_tag_bytes = 4

type t = {
  id : int;
  payload : int;
  mutable framing : int;
  stamps : (string, Cycles.t) Hashtbl.t;
}

let create ?(framing = default_framing) ?(payload = 1) ~id () =
  if payload < 0 then invalid_arg "Packet.create: negative payload";
  if framing < 0 then invalid_arg "Packet.create: negative framing";
  { id; payload; framing; stamps = Hashtbl.create 8 }

let id t = t.id
let payload_bytes t = t.payload
let framing_bytes t = t.framing

let set_framing t framing =
  if framing < 0 then invalid_arg "Packet.set_framing: negative framing";
  t.framing <- framing

let wire_bytes t = t.payload + t.framing
let stamp_at t label time = Hashtbl.replace t.stamps label time
let stamp t label = stamp_at t label (Sim.current_time ())
let timestamp t label = Hashtbl.find_opt t.stamps label

let interval t a b =
  match (timestamp t a, timestamp t b) with
  | Some ta, Some tb when Cycles.compare tb ta >= 0 -> Some (Cycles.sub tb ta)
  | _ -> None

let stamps t =
  Hashtbl.fold (fun label time acc -> (label, time) :: acc) t.stamps []
  |> List.sort (fun (_, a) (_, b) -> Cycles.compare a b)
