module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles

type t = {
  sim : Sim.t;
  propagation : Cycles.t;
  cycles_per_byte : float;
  mutable wire_free_at : Cycles.t; (* serialization point: FIFO ordering *)
  mutable in_flight : int;
  mutable delivered : int;
  mutable busy : int; (* cumulative serialization cycles committed *)
}

let create sim ~propagation ~cycles_per_byte =
  if cycles_per_byte < 0.0 then invalid_arg "Link.create: negative rate";
  {
    sim;
    propagation;
    cycles_per_byte;
    wire_free_at = Cycles.zero;
    in_flight = 0;
    delivered = 0;
    busy = 0;
  }

(* The one dimension change on the wire path: line rate in Gbps to CPU
   cycles per byte. gbps/8 bytes travel per ns while freq_ghz cycles
   elapse, so one byte costs freq_ghz * 8 / gbps cycles. Named so the
   units linter (U2) can recognise literal rates entering it. *)
let cycles_per_byte_of_gbps ~freq_ghz gbps =
  if gbps <= 0.0 then invalid_arg "Link.cycles_per_byte_of_gbps: rate <= 0";
  freq_ghz *. 8.0 /. gbps

let ten_gbe sim ~freq_ghz =
  let cycles_per_byte = cycles_per_byte_of_gbps ~freq_ghz 10.0 in
  let propagation = Cycles.of_us ~hz:(freq_ghz *. 1e9) 2.0 in
  create sim ~propagation ~cycles_per_byte

let send t packet ~deliver =
  let now = Sim.current_time () in
  let serialization =
    Cycles.of_int
      (int_of_float
         (Float.round (t.cycles_per_byte *. float_of_int (Packet.wire_bytes packet))))
  in
  let start = Cycles.max now t.wire_free_at in
  let done_serializing = Cycles.add start serialization in
  t.wire_free_at <- done_serializing;
  t.busy <- t.busy + Cycles.to_int serialization;
  let arrival = Cycles.add done_serializing t.propagation in
  t.in_flight <- t.in_flight + 1;
  Sim.spawn_here ~name:"link-delivery" (fun () ->
      Sim.delay (Cycles.sub arrival now);
      t.in_flight <- t.in_flight - 1;
      t.delivered <- t.delivered + 1;
      deliver packet)

(* Byte-accurate serialization for bulk payloads: one rounding over the
   whole payload, not one per packet. At 10 GbE a 4 KiB page is ~7,864
   cycles of wire time; per-packet rounding of a 1,000-page batch would
   drift by up to 500 cycles — enough to misorder migration rounds. *)
let serialization_cycles t ~bytes =
  if bytes < 0 then invalid_arg "Link.serialization_cycles: negative size";
  Cycles.of_int
    (int_of_float (Float.round (t.cycles_per_byte *. float_of_int bytes)))

let transfer_time t ~bytes =
  Cycles.add (serialization_cycles t ~bytes) t.propagation

let send_bulk t ~bytes =
  let now = Sim.current_time () in
  let start = Cycles.max now t.wire_free_at in
  let serialization = serialization_cycles t ~bytes in
  let done_serializing = Cycles.add start serialization in
  t.wire_free_at <- done_serializing;
  t.busy <- t.busy + Cycles.to_int serialization;
  let arrival = Cycles.add done_serializing t.propagation in
  t.in_flight <- t.in_flight + 1;
  Sim.delay (Cycles.sub arrival now);
  t.in_flight <- t.in_flight - 1;
  t.delivered <- t.delivered + 1;
  Cycles.sub arrival now

let in_flight t = t.in_flight
let delivered t = t.delivered
let busy_cycles t = t.busy

let utilization t =
  (* Elapsed includes serialization already committed to the future
     (wire_free_at past now), so a saturated wire reads 1.0 rather
     than transiently above it. *)
  let elapsed = Cycles.to_int (Cycles.max (Sim.now t.sim) t.wire_free_at) in
  if elapsed = 0 then 0.0 else float_of_int t.busy /. float_of_int elapsed
