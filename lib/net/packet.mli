(** Network packets carrying layer-by-layer timestamps.

    Reproduces the paper's Table V methodology: "we analyzed the behavior
    of TCP_RR in further detail by using tcpdump to capture timestamps on
    incoming and outgoing packets at the data link layer ... this allowed
    us to analyze the latency between operations happening in the VM and
    the host." Every interesting point in the simulated stack calls
    {!stamp}; the analysis in [Armvirt_core.Trace] differences the
    stamps. *)

type t

val default_framing : int
(** 66 bytes of Ethernet + IP + TCP framing — the overhead every
    untagged frame carries. *)

val vlan_tag_bytes : int
(** The 4 bytes an 802.1Q tag adds on a switch trunk port. *)

val create : ?framing:int -> ?payload:int -> id:int -> unit -> t
(** [payload] is the application bytes (default 1, as in TCP_RR);
    [framing] the header overhead {!wire_bytes} adds on top (default
    {!default_framing}, preserving the pre-parameterized 66-byte
    behavior). Raises [Invalid_argument] on a negative payload or
    framing. *)

val id : t -> int
val payload_bytes : t -> int

val framing_bytes : t -> int
(** The packet's current header overhead in bytes. *)

val set_framing : t -> int -> unit
(** Re-frame the packet in place — a switch trunk port adds
    {!vlan_tag_bytes} on ingress to the uplink and strips it again at
    the far side. Raises [Invalid_argument] on a negative framing. *)

val wire_bytes : t -> int
(** Payload plus the packet's framing overhead. *)

val stamp : t -> string -> unit
(** Records the current simulated time under a label. Must run inside a
    simulation process. Re-stamping a label overwrites (retransmission
    semantics). *)

val stamp_at : t -> string -> Armvirt_engine.Cycles.t -> unit

val timestamp : t -> string -> Armvirt_engine.Cycles.t option

val interval : t -> string -> string -> Armvirt_engine.Cycles.t option
(** [interval t a b] is the cycles from stamp [a] to stamp [b], or [None]
    if either is missing or [b] precedes [a]. *)

val stamps : t -> (string * Armvirt_engine.Cycles.t) list
(** In chronological order. *)
