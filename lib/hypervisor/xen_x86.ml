module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module X86_ops = Armvirt_arch.X86_ops
module Cost_model = Armvirt_arch.Cost_model
module Event_channel = Armvirt_io.Event_channel
module Vmx_state = Armvirt_arch.Vmx_state
module Kernel_costs = Armvirt_guest.Kernel_costs
module Esr = Armvirt_arch.Esr
module Marker = Armvirt_obs.Marker

type tuning = {
  dispatch : int;
  apic_mmio_emulate : int;
  icr_emulate : int;
  irq_inject : int;
  eoi_emul : int;
  sched_switch : int;
  pv_switch : int;
  evtchn_send : int;
  dom0_upcall : int;
  dom0_signal_path : int;
  grant_copy_fixed : int;
  netback_per_packet : int;
}

let default_tuning =
  {
    dispatch = 78;
    apic_mmio_emulate = 604;
    icr_emulate = 1700;
    irq_inject = 1742;
    eoi_emul = 334;
    sched_switch = 9404;
    pv_switch = 8200;
    evtchn_send = 200;
    dom0_upcall = 1972;
    dom0_signal_path = 2246;
    grant_copy_fixed = 4300;
    netback_per_packet = 3100;
  }

type t = {
  ops : X86_ops.t;
  tun : tuning;
  machine : Machine.t;
  dom0 : Vm.t;
  domu : Vm.t;
  channels : Event_channel.t;
  io_port : Event_channel.port;
  irq_port : Event_channel.port;
  guest : Kernel_costs.t;
  world : Vmx_state.t array;  (* one VMX world per PCPU *)
}

let create ?(tuning = default_tuning) machine =
  if Machine.num_cpus machine < 8 then
    invalid_arg "Xen_x86.create: needs >= 8 PCPUs (paper testbed)";
  let ops = X86_ops.create machine in
  let dom0 = Vm.create ~domid:0 ~name:"Dom0" ~pcpus:[ 0; 1; 2; 3 ] in
  let domu = Vm.create ~domid:1 ~name:"DomU" ~pcpus:[ 4; 5; 6; 7 ] in
  Vm.map_memory dom0 ~pages:1024 ~base_pa_page:0x10000;
  Vm.map_memory domu ~pages:1024 ~base_pa_page:0x20000;
  let channels = Event_channel.create () in
  let io_port = Event_channel.alloc channels ~from_dom:1 ~to_dom:0 in
  let irq_port = Event_channel.alloc channels ~from_dom:0 ~to_dom:1 in
  {
    ops;
    tun = tuning;
    machine;
    dom0;
    domu;
    channels;
    io_port;
    irq_port;
    guest = Kernel_costs.defaults;
    world = Array.init (Machine.num_cpus machine) (fun _ -> Vmx_state.create ());
  }

let machine t = t.machine
let dom0 t = t.dom0
let domu t = t.domu
let world t ~pcpu = t.world.(pcpu)
let spend t label cycles = Machine.spend t.machine label cycles

(* DomU (HVM) VCPU0 on PCPU 4; Dom0 is paravirtualized and lives in
   root mode on PCPUs 0-3 — it never enters non-root operation. *)
let domu_pcpu = 4

let given_vm_running ?(pcpu = domu_pcpu) ?(domid = 1) t =
  Vmx_state.establish t.world.(pcpu) ~mode:Vmx_state.Non_root
    ~vmcs:(Some domid)

let given_domu_blocked ?(pcpu = domu_pcpu) t =
  (* DomU blocked for I/O: Xen's root-mode idle context holds the PCPU
     and the VMCS has been cleared. *)
  Vmx_state.establish t.world.(pcpu) ~mode:Vmx_state.Root ~vmcs:None

(* Only HVM DomU transitions are marked: PV Dom0 never leaves root
   mode, so its traps are plain spends, matching real kvm_stat scope. *)
let exit_vm ?(pcpu = domu_pcpu) ?(reason = Esr.Hvc64) t =
  Machine.count t.machine
    (Marker.exit ~hyp:"xen_x86" ~reason:(Esr.marker_reason reason) ~pcpu);
  Vmx_state.vmexit t.world.(pcpu);
  X86_ops.vmexit t.ops

let resume_vm ?(pcpu = domu_pcpu) t =
  X86_ops.vmentry t.ops;
  Vmx_state.vmentry t.world.(pcpu);
  Machine.count t.machine (Marker.entry ~hyp:"xen_x86" ~pcpu ())

let hypercall t =
  Machine.count t.machine "xen_x86.hypercall";
  given_vm_running t;
  X86_ops.vmcall_issue t.ops;
  exit_vm t;
  spend t "xen_x86.dispatch" t.tun.dispatch;
  resume_vm t

let interrupt_controller_trap t =
  Machine.count t.machine "xen_x86.ict";
  given_vm_running t;
  exit_vm ~reason:Esr.Data_abort_lower t (* APIC MMIO write *);
  spend t "xen_x86.apic_emulate" t.tun.apic_mmio_emulate;
  resume_vm t

let virtual_irq_completion t =
  Machine.count t.machine "xen_x86.virq_completion";
  given_vm_running t;
  if X86_ops.vapic_enabled t.ops then
    (* Hardware completion, like ARM's virtual CPU interface. *)
    spend t "xen_x86.eoi_vapic" 71
  else begin
    exit_vm ~reason:Esr.Data_abort_lower t (* EOI register write *);
    spend t "xen_x86.eoi_emul" t.tun.eoi_emul;
    resume_vm t
  end

let vm_switch t =
  Machine.count t.machine "xen_x86.vm_switch";
  given_vm_running t;
  let w = t.world.(domu_pcpu) in
  exit_vm ~reason:Esr.Irq t (* the scheduler tick preempts *);
  spend t "xen_x86.sched_switch" t.tun.sched_switch;
  Vmx_state.vmclear w;
  Vmx_state.vmptrld w ~domid:2;
  resume_vm t

let virtual_ipi t =
  Machine.count t.machine "xen_x86.vipi";
  given_vm_running t;
  given_vm_running ~pcpu:5 t;
  let start = Sim.current_time () in
  exit_vm ~reason:Esr.Data_abort_lower t (* APIC ICR write *);
  spend t "xen_x86.icr_emulate" t.tun.icr_emulate;
  let receiver () =
    exit_vm ~pcpu:5 ~reason:Esr.Irq t;
    spend t "xen_x86.irq_inject" t.tun.irq_inject;
    resume_vm ~pcpu:5 t;
    X86_ops.virq_guest_dispatch t.ops
  in
  Hypervisor.remote_completion t.machine ~name:"xen-x86-vipi"
    ~wire:(X86_ops.ipi_wire_latency t.ops)
    receiver;
  let latency = Cycles.sub (Sim.current_time ()) start in
  resume_vm t;
  latency

(* DomU (HVM) kick: vmexit to Xen, event channel to PV Dom0 on another
   PCPU, where the idle context is swapped for Dom0's root-mode PV
   context — no VMCS reload, but a full scheduler pass. *)
let io_latency_out t =
  Machine.count t.machine "xen_x86.io_out";
  given_vm_running t;
  let start = Sim.current_time () in
  exit_vm ~reason:Esr.Hvc64 t (* evtchn_send hypercall *);
  spend t "xen_x86.evtchn_send" t.tun.evtchn_send;
  Event_channel.send t.channels t.io_port;
  let dom0_side () =
    spend t "xen_x86.pv_switch" t.tun.pv_switch;
    ignore (Event_channel.consume t.channels t.io_port);
    spend t "xen_x86.dom0_upcall" t.tun.dom0_upcall
  in
  Hypervisor.remote_completion t.machine ~name:"xen-x86-io-out"
    ~wire:(X86_ops.ipi_wire_latency t.ops)
    dom0_side;
  let latency = Cycles.sub (Sim.current_time ()) start in
  resume_vm t;
  latency

(* Dom0 (PV) signals DomU: the hypercall from Dom0 is a cheap PV trap,
   then Xen switches the idle context for the HVM DomU (VMCS load) and
   injects the virtual interrupt. *)
let io_latency_in t =
  Machine.count t.machine "xen_x86.io_in";
  (* DomU blocked earlier; Xen's root-mode idle context holds its PCPU. *)
  given_domu_blocked t;
  let start = Sim.current_time () in
  spend t "xen_x86.dom0_signal_path" t.tun.dom0_signal_path;
  spend t "xen_x86.evtchn_send" t.tun.evtchn_send;
  Event_channel.send t.channels t.irq_port;
  let domu_side () =
    spend t "xen_x86.sched_switch" (t.tun.sched_switch / 2);
    spend t "xen_x86.irq_inject" t.tun.irq_inject;
    ignore (Event_channel.consume t.channels t.irq_port);
    Vmx_state.vmptrld t.world.(domu_pcpu) ~domid:1;
    resume_vm t;
    X86_ops.virq_guest_dispatch t.ops
  in
  Hypervisor.remote_completion t.machine ~name:"xen-x86-io-in"
    ~wire:(X86_ops.ipi_wire_latency t.ops)
    domu_side;
  Cycles.sub (Sim.current_time ()) start

let zero_copy_break_even_bytes t ~cpus =
  let hw = X86_ops.hw t.ops in
  let shootdown =
    hw.Cost_model.tlb_shootdown_base
    + (cpus * hw.Cost_model.tlb_shootdown_per_cpu)
  in
  let map_path = (2 * hw.Cost_model.page_map_cost) + shootdown in
  (* Copying wins while grant_copy_fixed + bytes * per_byte < map_path. *)
  int_of_float
    (Float.max 0.0
       (float_of_int (map_path - t.tun.grant_copy_fixed)
       /. hw.Cost_model.per_byte_copy))

let io_profile t =
  let hw = X86_ops.hw t.ops in
  let exit_entry = hw.Cost_model.vmexit + hw.Cost_model.vmentry in
  let wire = hw.Cost_model.phys_ipi_wire in
  {
    Io_profile.notify_latency =
      hw.Cost_model.vmexit + t.tun.evtchn_send + wire + t.tun.pv_switch
      + t.tun.dom0_upcall;
    kick_guest_cpu = exit_entry + t.tun.evtchn_send;
    irq_delivery_latency =
      t.tun.dom0_signal_path + t.tun.evtchn_send + wire
      + (t.tun.sched_switch / 2) + t.tun.irq_inject + hw.Cost_model.vmentry;
    irq_delivery_guest_cpu =
      exit_entry + t.tun.irq_inject + hw.Cost_model.virq_guest_dispatch;
    virq_completion =
      (if hw.Cost_model.vapic then 71 else exit_entry + t.tun.eoi_emul);
    vipi_guest_cpu =
      exit_entry + t.tun.icr_emulate + exit_entry + t.tun.irq_inject
      + hw.Cost_model.virq_guest_dispatch;
    backend_cpu_per_packet = t.tun.netback_per_packet;
    rx_copy_per_byte = hw.Cost_model.per_byte_copy;
    tx_copy_per_byte = hw.Cost_model.per_byte_copy;
    rx_grant_per_packet = t.tun.grant_copy_fixed;
    tx_grant_per_packet = t.tun.grant_copy_fixed;
    guest_rx_per_packet = 2600;
    guest_tx_per_packet = 2400;
    irq_rate_factor = 1.6;
    phys_rx_extra_latency = t.tun.pv_switch;
    zero_copy = false;
  }

(* Xen x86 migration: log-dirty faults pay the same VMCS transition pair
   as KVM x86 (fixed-function hardware), but pages reach the toolstack
   through grant copies and every batch engages Dom0 through an event
   channel + PV context switch — the heaviest transport of the four. *)
let migrate_profile t =
  let hw = X86_ops.hw t.ops in
  let exit_entry = hw.Cost_model.vmexit + hw.Cost_model.vmentry in
  {
    Migrate_profile.transport = "grant";
    wp_fault_guest_cpu =
      exit_entry + hw.Cost_model.stage2_wp_fault + hw.Cost_model.page_map_cost;
    harvest_per_page = hw.Cost_model.page_map_cost;
    page_copy_per_byte = hw.Cost_model.per_byte_copy;
    page_send_per_page = t.tun.grant_copy_fixed;
    batch_kick = t.tun.evtchn_send + t.tun.pv_switch;
    pause_vcpu = hw.Cost_model.vmexit + (t.tun.sched_switch / 2);
    resume_vcpu = (t.tun.sched_switch / 2) + hw.Cost_model.vmentry;
    state_transfer = t.tun.sched_switch + exit_entry;
  }

let to_hypervisor t =
  {
    Hypervisor.name = "Xen x86";
    kind = Hypervisor.Type1;
    arch = Hypervisor.X86;
    machine = t.machine;
    barrier_cost = X86_ops.barrier_cost t.ops;
    hypercall = (fun () -> hypercall t);
    interrupt_controller_trap = (fun () -> interrupt_controller_trap t);
    virtual_irq_completion = (fun () -> virtual_irq_completion t);
    vm_switch = (fun () -> vm_switch t);
    virtual_ipi = (fun () -> virtual_ipi t);
    io_latency_out = (fun () -> io_latency_out t);
    io_latency_in = (fun () -> io_latency_in t);
    io_profile = io_profile t;
    migrate = migrate_profile t;
    guest = t.guest;
  }
