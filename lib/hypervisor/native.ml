module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model

type t = { machine : Machine.t }

let create machine = { machine }
let machine t = t.machine

let to_hypervisor t =
  let barrier =
    match Machine.cost t.machine with
    | Cost_model.Arm hw -> hw.Cost_model.timestamp_barrier
    | Cost_model.X86 hw -> hw.Cost_model.timestamp_barrier
  in
  let arch =
    match Machine.cost t.machine with
    | Cost_model.Arm _ -> Hypervisor.Arm
    | Cost_model.X86 _ -> Hypervisor.X86
  in
  let per_byte_copy =
    match Machine.cost t.machine with
    | Cost_model.Arm hw -> hw.Cost_model.per_byte_copy
    | Cost_model.X86 hw -> hw.Cost_model.per_byte_copy
  in
  let nothing () = () in
  let no_latency () = Cycles.zero in
  {
    Hypervisor.name = "Native";
    kind = Hypervisor.Type1 (* unused; there is no hypervisor *);
    arch;
    machine = t.machine;
    barrier_cost = Cycles.of_int barrier;
    hypercall = nothing;
    interrupt_controller_trap = nothing;
    virtual_irq_completion = nothing;
    vm_switch = nothing;
    virtual_ipi = no_latency;
    io_latency_out = no_latency;
    io_latency_in = no_latency;
    io_profile = Io_profile.native;
    (* Bare memcpy lower bound: no faults, no transport, no blackout
       machinery — just moving the bytes. *)
    migrate = { Migrate_profile.none with page_copy_per_byte = per_byte_copy };
    guest = Armvirt_guest.Kernel_costs.defaults;
  }
