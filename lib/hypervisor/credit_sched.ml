type vcpu = { dom : int; index : int }

let default_weight = 256

type vstate = {
  affinity : int;
  weight : int; (* proportional share, 256 = 1.0x *)
  cap : int; (* percent ceiling per refill interval; 0 = uncapped *)
  mutable credit : int;
  mutable runnable : bool;
  mutable boosted : bool;
  mutable enqueued_at : int; (* FIFO tie-break among equal credits *)
}

type t = {
  num_pcpus : int;
  timeslice : int;
  initial_credit : int;
  vcpus : (vcpu, vstate) Hashtbl.t;
  running : vcpu option array;
  mutable stamp : int;
  mutable switch_count : int;
  mutable refill_count : int;
}

let create ~num_pcpus ~timeslice_cycles =
  if num_pcpus < 1 then invalid_arg "Credit_sched.create: num_pcpus < 1";
  if timeslice_cycles < 1 then
    invalid_arg "Credit_sched.create: non-positive timeslice";
  {
    num_pcpus;
    timeslice = timeslice_cycles;
    initial_credit = 10 * timeslice_cycles;
    vcpus = Hashtbl.create 16;
    running = Array.make num_pcpus None;
    stamp = 0;
    switch_count = 0;
    refill_count = 0;
  }

let next_stamp t =
  t.stamp <- t.stamp + 1;
  t.stamp

let add_vcpu ?(weight = default_weight) ?(cap = 0) t vcpu ~affinity =
  if affinity < 0 || affinity >= t.num_pcpus then
    invalid_arg "Credit_sched.add_vcpu: affinity out of range";
  if weight < 1 then invalid_arg "Credit_sched.add_vcpu: weight < 1";
  if cap < 0 || cap > 100 then
    invalid_arg "Credit_sched.add_vcpu: cap outside [0, 100]";
  if Hashtbl.mem t.vcpus vcpu then
    invalid_arg "Credit_sched.add_vcpu: duplicate VCPU";
  let initial =
    if cap = 0 then t.initial_credit
    else Stdlib.min t.initial_credit (Stdlib.max 1 (t.initial_credit * cap / 100))
  in
  Hashtbl.replace t.vcpus vcpu
    {
      affinity;
      weight;
      cap;
      credit = initial;
      runnable = false;
      boosted = false;
      enqueued_at = next_stamp t;
    }

let state t vcpu =
  match Hashtbl.find_opt t.vcpus vcpu with
  | Some s -> s
  | None -> invalid_arg "Credit_sched: unknown VCPU"

let remove_vcpu t vcpu =
  let s = state t vcpu in
  Hashtbl.remove t.vcpus vcpu;
  if t.running.(s.affinity) = Some vcpu then t.running.(s.affinity) <- None

(* A capped VCPU that has burned through its credit is throttled until
   the next refill (Xen's CSCHED_PRI_IDLE under a cap): it stays
   runnable but is invisible to [pick]. *)
let throttled s = s.cap > 0 && s.credit <= 0

(* Exhaustion-path grant: weight-scaled, as the original uniform grant
   was (weight 256 reproduces it exactly). A capped VCPU's grant and
   balance are bounded by its cap's share of the initial credit, so
   overdraft from overrunning a slice carries forward as debt. *)
let grant t s =
  if s.cap = 0 then
    Stdlib.max 1 (t.initial_credit * s.weight / default_weight)
  else Stdlib.max 1 (t.initial_credit * s.cap / 100)

let ceiling t s =
  if s.cap = 0 then max_int
  else Stdlib.max 1 (t.initial_credit * s.cap / 100)

let set_runnable t vcpu runnable =
  let s = state t vcpu in
  if runnable && not s.runnable then begin
    (* Wake-up boost: jumps the queue once, like Xen's BOOST. *)
    s.boosted <- true;
    s.enqueued_at <- next_stamp t
  end;
  s.runnable <- runnable

let candidates t ~pcpu =
  Hashtbl.fold
    (fun vcpu s acc ->
      if s.runnable && s.affinity = pcpu && not (throttled s) then
        (vcpu, s) :: acc
      else acc)
    t.vcpus []
  |> List.sort (fun ((a : vcpu), _) ((b : vcpu), _) ->
         match Int.compare a.dom b.dom with
         | 0 -> Int.compare a.index b.index
         | c -> c)

let better (_, a) (_, b) =
  (* Boosted first; then most credit; FIFO among equals. *)
  match (a.boosted, b.boosted) with
  | true, false -> true
  | false, true -> false
  | _ when a.cap > 0 || b.cap > 0 ->
      (* Across a cap boundary, absolute balances aren't comparable —
         a capped VCPU's ceiling sits far below its rivals' — so fall
         back to Xen's class scheduling: in-credit (UNDER) beats
         out-of-credit (OVER), FIFO within a class. *)
      let ua = a.credit > 0 and ub = b.credit > 0 in
      if ua <> ub then ua else a.enqueued_at < b.enqueued_at
  | _ ->
      a.credit > b.credit
      || (a.credit = b.credit && a.enqueued_at < b.enqueued_at)

let pick t ~pcpu =
  if pcpu < 0 || pcpu >= t.num_pcpus then
    invalid_arg "Credit_sched.pick: pcpu out of range";
  let chosen =
    List.fold_left
      (fun best c ->
        match best with
        | None -> Some c
        | Some b -> if better c b then Some c else best)
      None (candidates t ~pcpu)
  in
  let next = Option.map fst chosen in
  (match chosen with Some (_, s) -> s.boosted <- false | None -> ());
  if next <> t.running.(pcpu) then begin
    t.switch_count <- t.switch_count + 1;
    t.running.(pcpu) <- next
  end;
  next

(* Refill until some runnable VCPU is back in credit (a deeply indebted
   VCPU — e.g. one that overran a long timeslice — may need several
   grants, as in Xen's periodic accounting). *)
let rec refill_if_exhausted t =
  let runnable_with_credit = ref false and any_runnable = ref false in
  (* lint: sorted — boolean accumulation is order-insensitive *)
  Hashtbl.iter
    (fun _ s ->
      if s.runnable then begin
        any_runnable := true;
        if s.credit > 0 then runnable_with_credit := true
      end)
    t.vcpus;
  if !any_runnable && not !runnable_with_credit then begin
    t.refill_count <- t.refill_count + 1;
    (* lint: sorted — weighted credit grant commutes across VCPUs *)
    Hashtbl.iter
      (fun _ s ->
        s.credit <- Stdlib.min (ceiling t s) (s.credit + grant t s))
      t.vcpus;
    refill_if_exhausted t
  end

(* Periodic accounting tick (Xen fires this every 30 ms): the [cycles]
   of PCPU capacity that elapsed since the last tick are distributed
   among each PCPU's runnable VCPUs in proportion to weight, bounded
   by each VCPU's cap share of the interval, and clamped at
   initial_credit so nobody hoards. Because the grant rate equals the
   burn rate, credits stay balanced: a cap of [c] percent bounds a
   saturated VCPU to ~[c] percent of its PCPU, and a double-weight
   VCPU earns — and therefore runs — twice as much. *)
let periodic_refill t ~cycles =
  if cycles < 0 then
    invalid_arg "Credit_sched.periodic_refill: negative cycles";
  t.refill_count <- t.refill_count + 1;
  let weight_sum = Array.make t.num_pcpus 0 in
  (* lint: sorted — weight accumulation commutes across VCPUs *)
  Hashtbl.iter
    (fun _ s ->
      if s.runnable then
        weight_sum.(s.affinity) <- weight_sum.(s.affinity) + s.weight)
    t.vcpus;
  (* lint: sorted — each grant depends only on its VCPU and the sums *)
  Hashtbl.iter
    (fun _ s ->
      if s.runnable && weight_sum.(s.affinity) > 0 then begin
        let fair = cycles * s.weight / weight_sum.(s.affinity) in
        let fair =
          if s.cap = 0 then fair else Stdlib.min fair (cycles * s.cap / 100)
        in
        let top =
          if s.cap = 0 then t.initial_credit else ceiling t s
        in
        s.credit <- Stdlib.min top (s.credit + fair)
      end)
    t.vcpus

let charge t ~pcpu ~cycles =
  if cycles < 0 then invalid_arg "Credit_sched.charge: negative cycles";
  (match t.running.(pcpu) with
  | Some vcpu ->
      let s = state t vcpu in
      s.credit <- s.credit - cycles;
      s.enqueued_at <- next_stamp t (* requeue at the back *)
  | None -> ());
  refill_if_exhausted t

let current t ~pcpu = t.running.(pcpu)
let credit_of t vcpu = (state t vcpu).credit
let switches t = t.switch_count
let refills t = t.refill_count

let run_to_completion t ~work ~switch_cost =
  if switch_cost < 0 then
    invalid_arg "Credit_sched.run_to_completion: negative switch cost";
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun (vcpu, cycles) ->
      ignore (state t vcpu);
      if cycles < 0 then
        invalid_arg "Credit_sched.run_to_completion: negative work";
      Hashtbl.replace remaining vcpu
        (Option.value ~default:0 (Hashtbl.find_opt remaining vcpu) + cycles);
      set_runnable t vcpu true)
    work;
  let pcpu_time = Array.make t.num_pcpus 0 in
  let switches_before = t.switch_count in
  let progress = ref true in
  while !progress do
    progress := false;
    for pcpu = 0 to t.num_pcpus - 1 do
      match pick t ~pcpu with
      | None -> ()
      | Some vcpu ->
          progress := true;
          let left = Hashtbl.find remaining vcpu in
          let slice = Stdlib.min left t.timeslice in
          let was_current = current t ~pcpu = Some vcpu in
          ignore was_current;
          pcpu_time.(pcpu) <- pcpu_time.(pcpu) + slice;
          charge t ~pcpu ~cycles:slice;
          let left' = left - slice in
          if left' <= 0 then begin
            Hashtbl.replace remaining vcpu 0;
            set_runnable t vcpu false
          end
          else Hashtbl.replace remaining vcpu left'
    done
  done;
  let total_switches = t.switch_count - switches_before in
  let makespan =
    Array.fold_left Stdlib.max 0 pcpu_time
    + (total_switches * switch_cost / Stdlib.max 1 t.num_pcpus)
  in
  (makespan, total_switches)
