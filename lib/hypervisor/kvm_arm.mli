(** KVM ARM: split-mode virtualization (Dall & Nieh, ASPLOS'14; paper
    section II).

    The host kernel and the VMs share EL1; only a minimal lowvisor runs
    in EL2. Every transition between a VM and the hypervisor therefore
    (1) double-traps — into EL2 and back out to the host in EL1, (2)
    context switches the complete EL1 register state of Table III,
    including the expensive VGIC read-back, and (3) toggles Stage-2 and
    trap configuration both ways. These three structural costs are what
    this module's paths spell out, and what the VHE variant removes.

    When the machine is built with {!Armvirt_arch.Cost_model.arm_vhe},
    the same module models KVM on ARMv8.1 (section VI): the host runs in
    EL2, transitions skip the EL1 state switch and the toggles, and the
    double trap collapses into an ordinary exception. *)

type tuning = {
  lazy_fp : bool;
      (** Trap-and-switch FP state only on first guest use — the
          optimization mainlined after the paper (default [false], the
          measured KVM). *)
  lazy_vgic : bool;
      (** Read back only occupied list registers — the other post-paper
          optimization (default [false]). The [lazyswitch] experiment
          flips both. *)
  host_dispatch : int;
      (** Host-side KVM run loop: decode exit reason, dispatch, return
          (split-mode, host in EL1). *)
  vhe_dispatch : int;  (** Same work running directly in EL2 under VHE. *)
  gic_mmio_emulate : int;
      (** vGIC distributor emulation in the host kernel — the paper's
          point that KVM emulates the GIC "in the part of the hypervisor
          running in EL1". *)
  sgi_emulate : int;  (** Emulating a trapped SGI (IPI) register write. *)
  host_irq_route : int;
      (** Host path from a physical IRQ to the virtual interrupt
          injection (irqfd/vgic routing). *)
  process_switch : int;
      (** Linux scheduler + mm switch between two QEMU VM processes, paid
          on VM-to-VM switches. *)
  kick_dispatch_el1 : int;
      (** ioeventfd lookup + signal from a virtqueue kick, including the
          return to host EL1 context. *)
  kick_dispatch_vhe : int;  (** The same handled directly in EL2. *)
  vcpu_resume : int;
      (** Waking a blocked VCPU thread: scheduler wakeup, vcpu_load, run
          loop re-entry. Dominates I/O Latency In. *)
  vhost_per_packet : int;
      (** VHOST backend work per packet beyond the native driver path. *)
}

val default_tuning : tuning
(** Calibrated against Table II (see DESIGN.md section 3.2). *)

type t

val create : ?tuning:tuning -> Armvirt_arch.Machine.t -> t
(** Expects an ARM machine with ≥ 8 PCPUs: host confined to PCPUs 0-3,
    the measured VM's 4 VCPUs pinned to PCPUs 4-7 (section III's
    configuration). Raises [Invalid_argument] otherwise. *)

val machine : t -> Armvirt_arch.Machine.t
val vm : t -> Vm.t
val vhe : t -> bool

val world : t -> pcpu:int -> Armvirt_arch.El2_state.t
(** The EL2 world state machine of one PCPU: every path below drives it
    alongside its cost accounting, so an illegal transition sequence in
    the model raises instead of mis-measuring. *)

(** {1 World-switch paths} — each must run inside a simulation process. *)

val exit_to_host :
  ?pcpu:int -> ?reason:Armvirt_arch.Esr.exception_class -> t -> unit
(** VM → host: trap to EL2, full EL1 save (Table III), disable Stage-2 +
    traps, return to host EL1. Under VHE: trap + GP save only. [pcpu]
    defaults to VCPU0's PCPU (4); [reason] (default HVC) is the decoded
    syndrome class, recorded in the machine's exit-reason counters. *)

val enter_vm : ?pcpu:int -> ?domid:int -> t -> unit
(** Host → VM: the reverse. [domid] defaults to the measured VM (1). *)

val inject_virq : t -> Vm.vcpu -> Armvirt_gic.Irq.t -> unit
(** Host-side virtual interrupt injection: scan for a free list register
    and write it (queueing on overflow). *)

(** {1 Microbenchmark operations (Table I)} *)

val hypercall : t -> unit
val interrupt_controller_trap : t -> unit
val virtual_irq_completion : t -> unit
val vm_switch : t -> unit
val virtual_ipi : t -> Armvirt_engine.Cycles.t
val io_latency_out : t -> Armvirt_engine.Cycles.t
val io_latency_in : t -> Armvirt_engine.Cycles.t

val hypercall_breakdown :
  t -> (Armvirt_arch.Reg_class.t * int * int) list
(** Per-class (save, restore) costs of the world switch — regenerates
    Table III from the model's instrumentation. *)

val io_profile : t -> Io_profile.t
val migrate_profile : t -> Migrate_profile.t

val to_hypervisor : t -> Hypervisor.t
