module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Arm_ops = Armvirt_arch.Arm_ops
module Cost_model = Armvirt_arch.Cost_model
module Reg_class = Armvirt_arch.Reg_class
module Vgic = Armvirt_gic.Vgic
module Distributor = Armvirt_gic.Distributor
module El2_state = Armvirt_arch.El2_state
module Event_channel = Armvirt_io.Event_channel
module Kernel_costs = Armvirt_guest.Kernel_costs
module Esr = Armvirt_arch.Esr
module Marker = Armvirt_obs.Marker

type pinning = Separate | Shared

type tuning = {
  trap_save : int;
  trap_restore : int;
  hypercall_dispatch : int;
  gic_mmio_emulate : int;
  sgi_emulate : int;
  irq_route : int;
  sched_pick : int;
  evtchn_send : int;
  dom0_upcall : int;
  dom0_signal_path : int;
  evtchn_demux : int;
  grant_copy_fixed : int;
  grant_map_zero_copy : int;
  netback_per_packet : int;
}

let default_tuning =
  {
    trap_save = 90;
    trap_restore = 90;
    hypercall_dispatch = 40;
    gic_mmio_emulate = 966;
    sgi_emulate = 1800;
    irq_route = 2235;
    sched_pick = 2951;
    evtchn_send = 500;
    dom0_upcall = 5553;
    dom0_signal_path = 4700;
    evtchn_demux = 640;
    grant_copy_fixed = 7200;
    grant_map_zero_copy = 1800;
    netback_per_packet = 3300;
  }

type t = {
  ops : Arm_ops.t;
  tun : tuning;
  machine : Machine.t;
  dom0 : Vm.t;
  domu : Vm.t;
  channels : Event_channel.t;
  io_port : Event_channel.port;  (* netfront -> netback *)
  irq_port : Event_channel.port;  (* netback -> netfront *)
  pinning : pinning;
  guest : Kernel_costs.t;
  world : El2_state.t array;  (* one EL2 world state per PCPU *)
  phys_gic : Distributor.t;  (* the machine's physical GIC *)
}

let create ?(tuning = default_tuning) ?(pinning = Separate) machine =
  if Machine.num_cpus machine < 8 then
    invalid_arg "Xen_arm.create: needs >= 8 PCPUs (paper testbed)";
  let ops = Arm_ops.create machine in
  let domu_pcpus =
    match pinning with Separate -> [ 4; 5; 6; 7 ] | Shared -> [ 0; 1; 2; 3 ]
  in
  let dom0 = Vm.create ~domid:0 ~name:"Dom0" ~pcpus:[ 0; 1; 2; 3 ] in
  let domu = Vm.create ~domid:1 ~name:"DomU" ~pcpus:domu_pcpus in
  Vm.map_memory dom0 ~pages:1024 ~base_pa_page:0x10000;
  Vm.map_memory domu ~pages:1024 ~base_pa_page:0x20000;
  let channels = Event_channel.create () in
  let io_port = Event_channel.alloc channels ~from_dom:1 ~to_dom:0 in
  let irq_port = Event_channel.alloc channels ~from_dom:0 ~to_dom:1 in
  let world =
    Array.init (Machine.num_cpus machine) (fun _ ->
        El2_state.create El2_state.El2_resident)
  in
  let phys_gic = Distributor.create ~num_cpus:(Machine.num_cpus machine) in
  Distributor.enable phys_gic 1;
  {
    ops;
    tun = tuning;
    machine;
    dom0;
    domu;
    channels;
    io_port;
    irq_port;
    pinning;
    guest = Kernel_costs.defaults;
    world;
    phys_gic;
  }

let machine t = t.machine
let dom0 t = t.dom0
let domu t = t.domu
let pinning t = t.pinning
let world t ~pcpu = t.world.(pcpu)

(* DomU VCPU0 runs on PCPU 4 under the paper's pinning, PCPU 0 when
   sharing with Dom0; Dom0 VCPU0 runs on PCPU 0; the idle domain is
   domid -1. *)
let domu_pcpu t = match t.pinning with Separate -> 4 | Shared -> 0
let dom0_pcpu = 0
let idle_domid = -1

let given_vm_running t ~pcpu ~domid =
  El2_state.establish t.world.(pcpu) ~el1:(El2_state.Vm domid)
    ~executing:(`Vm domid)
let spend t label cycles = Machine.spend t.machine label cycles

let mark_exit t ~pcpu reason =
  Machine.count t.machine
    (Marker.exit ~hyp:"xen_arm" ~reason:(Esr.marker_reason reason) ~pcpu)

let mark_entry t ~pcpu ~domid =
  Machine.count t.machine (Marker.entry ~hyp:"xen_arm" ~pcpu ~domid ())

let trap_to_xen ?(pcpu = 4) ?(reason = Esr.Hvc64) t =
  mark_exit t ~pcpu reason;
  El2_state.exit_to_el2 t.world.(pcpu);
  Arm_ops.trap_to_el2 t.ops;
  spend t "xen_arm.trap_save" t.tun.trap_save

let return_from_xen ?(pcpu = 4) ?(domid = 1) t =
  spend t "xen_arm.trap_restore" t.tun.trap_restore;
  Arm_ops.eret t.ops;
  El2_state.enter_vm t.world.(pcpu) ~domid;
  mark_entry t ~pcpu ~domid

(* Deschedule the current domain, pick another, run it: one full EL1 +
   VGIC context switch — the only case where Xen pays Table III-scale
   costs, which is why its VM Switch is only modestly cheaper than
   KVM's (section IV). *)
let full_vm_switch ?(pcpu = 4) ?(to_domid = 1) t =
  Machine.count t.machine "xen_arm.vm_switch_inner";
  Arm_ops.save_classes t.ops Reg_class.full_world_switch;
  spend t "xen_arm.sched_pick" t.tun.sched_pick;
  Arm_ops.restore_classes t.ops Reg_class.full_world_switch;
  El2_state.load_el1 t.world.(pcpu) (El2_state.Vm to_domid)

let inject_virq t (vcpu : Vm.vcpu) irq =
  Arm_ops.vgic_slot_scan t.ops;
  Arm_ops.vgic_lr_write t.ops;
  Vgic.inject_or_queue vcpu.Vm.vgic irq;
  Machine.count t.machine "xen_arm.virq_injected"

let hypercall t =
  Machine.count t.machine "xen_arm.hypercall";
  let pcpu = domu_pcpu t in
  given_vm_running t ~pcpu ~domid:1;
  Arm_ops.hvc_issue t.ops;
  trap_to_xen ~pcpu t;
  spend t "xen_arm.dispatch" t.tun.hypercall_dispatch;
  return_from_xen ~pcpu t

let interrupt_controller_trap t =
  Machine.count t.machine "xen_arm.ict";
  let pcpu = domu_pcpu t in
  given_vm_running t ~pcpu ~domid:1;
  trap_to_xen ~pcpu ~reason:Esr.Data_abort_lower t;
  Arm_ops.mmio_decode t.ops;
  spend t "xen_arm.gic_mmio_emulate" t.tun.gic_mmio_emulate;
  return_from_xen ~pcpu t

let virtual_irq_completion t =
  Machine.count t.machine "xen_arm.virq_completion";
  Arm_ops.virq_complete t.ops

let vm_switch t =
  Machine.count t.machine "xen_arm.vm_switch";
  let pcpu = domu_pcpu t in
  given_vm_running t ~pcpu ~domid:1;
  mark_exit t ~pcpu Esr.Irq (* the scheduler tick preempts *);
  El2_state.exit_to_el2 t.world.(pcpu);
  Arm_ops.trap_to_el2 t.ops;
  full_vm_switch ~pcpu ~to_domid:2 t;
  Arm_ops.eret t.ops;
  El2_state.enter_vm t.world.(pcpu) ~domid:2;
  mark_entry t ~pcpu ~domid:2

(* Both VCPUs execute VM code; the whole exchange stays in EL2 on both
   sides — roughly twice as fast as KVM's host-mediated version. *)
let virtual_ipi t =
  Machine.count t.machine "xen_arm.vipi";
  let pcpu = domu_pcpu t in
  let peer = pcpu + 1 in
  given_vm_running t ~pcpu ~domid:1;
  given_vm_running t ~pcpu:peer ~domid:1;
  let start = Sim.current_time () in
  trap_to_xen ~pcpu ~reason:Esr.Data_abort_lower t (* GICD_SGIR write *);
  spend t "xen_arm.sgi_emulate" t.tun.sgi_emulate;
  Distributor.send_sgi t.phys_gic 1 ~from:pcpu ~targets:[ peer ];
  let receiver () =
    (match Distributor.acknowledge t.phys_gic ~cpu:peer with
    | Some 1 -> ()
    | Some _ | None -> failwith "Xen_arm: spurious physical interrupt");
    trap_to_xen ~pcpu:peer ~reason:Esr.Irq t;
    spend t "xen_arm.irq_route" t.tun.irq_route;
    Distributor.end_of_interrupt t.phys_gic 1 ~cpu:peer;
    inject_virq t (Vm.vcpu t.domu 1) 1;
    return_from_xen ~pcpu:peer t;
    Arm_ops.virq_guest_dispatch t.ops
  in
  Hypervisor.remote_completion t.machine ~name:"xen-vipi-receiver"
    ~wire:(Arm_ops.ipi_wire_latency t.ops)
    receiver;
  let latency = Cycles.sub (Sim.current_time ()) start in
  return_from_xen ~pcpu t;
  latency

(* DomU kick -> netback in Dom0. Trap to EL2 is cheap, but then: event
   channel, physical IPI to Dom0's PCPU, full VM switch away from the
   idle domain, and the Linux upcall chain inside Dom0 — "Xen must
   engage Dom0 to perform I/O on behalf of the VM" (section V). Under
   Shared pinning the IPI disappears but the DomU PCPU must be preempted
   with an extra full VM switch, which the paper found "similar or
   worse". *)
let io_latency_out t =
  Machine.count t.machine "xen_arm.io_out";
  let pcpu = domu_pcpu t in
  given_vm_running t ~pcpu ~domid:1;
  (* Dom0 idles between requests: the idle domain holds its PCPU
     (under shared pinning Dom0 has no PCPU of its own). *)
  (match t.pinning with
  | Separate -> given_vm_running t ~pcpu:dom0_pcpu ~domid:idle_domid
  | Shared -> ());
  let start = Sim.current_time () in
  Arm_ops.hvc_issue t.ops;
  trap_to_xen ~pcpu t;
  spend t "xen_arm.evtchn_send" t.tun.evtchn_send;
  Event_channel.send t.channels t.io_port;
  let dom0_side ~on =
    mark_exit t ~pcpu:on Esr.Irq (* event-channel IPI lands in EL2 *);
    El2_state.exit_to_el2 t.world.(on);
    Arm_ops.trap_to_el2 t.ops;
    (* idle domain -> Dom0 *)
    full_vm_switch ~pcpu:on ~to_domid:0 t;
    inject_virq t (Vm.vcpu t.dom0 0) 17;
    Arm_ops.eret t.ops;
    El2_state.enter_vm t.world.(on) ~domid:0;
    mark_entry t ~pcpu:on ~domid:0;
    Arm_ops.virq_guest_dispatch t.ops;
    ignore (Event_channel.consume t.channels t.io_port);
    spend t "xen_arm.dom0_upcall" t.tun.dom0_upcall
  in
  (match t.pinning with
  | Separate ->
      Hypervisor.remote_completion t.machine ~name:"xen-io-out-dom0"
        ~wire:(Arm_ops.ipi_wire_latency t.ops)
        (fun () -> dom0_side ~on:dom0_pcpu)
  | Shared ->
      (* Same PCPU: no IPI, but the VM itself must be switched out
         before Dom0 can run at all. *)
      full_vm_switch ~pcpu ~to_domid:idle_domid t;
      dom0_side ~on:pcpu);
  Cycles.sub (Sim.current_time ()) start

(* Netback completion in Dom0 -> DomU's interrupt handler: the mirror
   image, switching the idle domain for DomU on the target PCPU. *)
let io_latency_in t =
  Machine.count t.machine "xen_arm.io_in";
  let pcpu = domu_pcpu t in
  (* Dom0 is running (it has data to deliver); DomU blocked for I/O, so
     the idle domain holds its PCPU. *)
  given_vm_running t ~pcpu:dom0_pcpu ~domid:0;
  (match t.pinning with
  | Separate -> given_vm_running t ~pcpu ~domid:idle_domid
  | Shared -> ());
  let start = Sim.current_time () in
  spend t "xen_arm.dom0_signal_path" t.tun.dom0_signal_path;
  Arm_ops.hvc_issue t.ops;
  trap_to_xen ~pcpu:dom0_pcpu t;
  spend t "xen_arm.evtchn_send" t.tun.evtchn_send;
  Event_channel.send t.channels t.irq_port;
  let domu_side ~on =
    mark_exit t ~pcpu:on Esr.Irq (* event-channel IPI lands in EL2 *);
    El2_state.exit_to_el2 t.world.(on);
    Arm_ops.trap_to_el2 t.ops;
    (* idle domain -> DomU *)
    full_vm_switch ~pcpu:on ~to_domid:1 t;
    inject_virq t (Vm.vcpu t.domu 0) 48;
    Arm_ops.eret t.ops;
    El2_state.enter_vm t.world.(on) ~domid:1;
    mark_entry t ~pcpu:on ~domid:1;
    ignore (Event_channel.consume t.channels t.irq_port);
    Arm_ops.virq_guest_dispatch t.ops
  in
  let finish () = Cycles.sub (Sim.current_time ()) start in
  match t.pinning with
  | Separate ->
      Hypervisor.remote_completion t.machine ~name:"xen-io-in-domu"
        ~wire:(Arm_ops.ipi_wire_latency t.ops)
        (fun () -> domu_side ~on:pcpu);
      let r = finish () in
      return_from_xen ~pcpu:dom0_pcpu ~domid:0 t;
      r
  | Shared ->
      (* Dom0 and DomU share PCPUs: Dom0 must be descheduled first. *)
      full_vm_switch ~pcpu:dom0_pcpu ~to_domid:idle_domid t;
      domu_side ~on:pcpu;
      finish ()

let path_costs t =
  let hw = Arm_ops.hw t.ops in
  let trap_cost = hw.Cost_model.trap_to_el2 + t.tun.trap_save in
  let return_cost = t.tun.trap_restore + hw.Cost_model.eret in
  let switch_cost =
    Cost_model.arm_full_save hw + t.tun.sched_pick
    + Cost_model.arm_full_restore hw
  in
  let inject = hw.Cost_model.vgic_slot_scan + hw.Cost_model.vgic_lr_write in
  (hw, trap_cost, return_cost, switch_cost, inject)

let make_io_profile t ~zero_copy =
  let hw, trap_cost, return_cost, switch_cost, inject = path_costs t in
  let wire = hw.Cost_model.phys_ipi_wire in
  let notify_latency =
    hw.Cost_model.hvc_issue + trap_cost + t.tun.evtchn_send + wire
    + hw.Cost_model.trap_to_el2 + switch_cost + inject + hw.Cost_model.eret
    + hw.Cost_model.virq_guest_dispatch + t.tun.dom0_upcall
  in
  let irq_delivery_latency =
    t.tun.dom0_signal_path + hw.Cost_model.hvc_issue + trap_cost
    + t.tun.evtchn_send + wire + hw.Cost_model.trap_to_el2 + switch_cost
    + inject + hw.Cost_model.eret + hw.Cost_model.virq_guest_dispatch
  in
  {
    Io_profile.notify_latency;
    (* DomU's own CPU only pays the cheap trap for a kick... *)
    kick_guest_cpu = hw.Cost_model.hvc_issue + trap_cost + t.tun.evtchn_send
                     + return_cost;
    irq_delivery_latency;
    (* ...and, when the VM is running, a trap + injection for delivery. *)
    (* Per delivered interrupt, the DomU PCPU pays: Xen's physical
       IRQ routing in EL2 (stolen from the VCPU), the injection trap, and
       the guest's event-channel demux chain. *)
    irq_delivery_guest_cpu =
      trap_cost + t.tun.irq_route + inject + return_cost
      + hw.Cost_model.virq_guest_dispatch + t.tun.evtchn_demux;
    virq_completion = hw.Cost_model.virq_complete;
    vipi_guest_cpu =
      trap_cost + t.tun.sgi_emulate + return_cost + trap_cost
      + t.tun.irq_route + inject + return_cost
      + hw.Cost_model.virq_guest_dispatch;
    backend_cpu_per_packet = t.tun.netback_per_packet;
    rx_copy_per_byte = (if zero_copy then 0.0 else hw.Cost_model.per_byte_copy);
    tx_copy_per_byte = (if zero_copy then 0.0 else hw.Cost_model.per_byte_copy);
    rx_grant_per_packet =
      (if zero_copy then t.tun.grant_map_zero_copy else t.tun.grant_copy_fixed);
    tx_grant_per_packet =
      (if zero_copy then t.tun.grant_map_zero_copy else t.tun.grant_copy_fixed);
    guest_rx_per_packet = 2800;
    guest_tx_per_packet = 2600;
    irq_rate_factor = 1.8;
    (* The NIC's IRQ lands in EL2 but the driver is in Dom0: switch the
       idle domain out before the frame is even seen (section V). *)
    phys_rx_extra_latency =
      hw.Cost_model.trap_to_el2 + switch_cost + inject + hw.Cost_model.eret
      + hw.Cost_model.virq_guest_dispatch;
    zero_copy;
  }

let io_profile t = make_io_profile t ~zero_copy:false
let io_profile_zero_copy t = make_io_profile t ~zero_copy:true

(* Live migration, Xen-style: the toolstack in Dom0 drives log-dirty
   mode and pulls every page through a grant copy, with event-channel
   batching. Faults trap to the EL2-resident hypervisor cheaply, but the
   per-page grant machinery makes rounds long — the same trade the I/O
   path shows (cheap kick, expensive data movement). *)
let migrate_profile t =
  let hw, trap_cost, return_cost, switch_cost, _inject = path_costs t in
  {
    Migrate_profile.transport = "grant";
    wp_fault_guest_cpu =
      trap_cost + hw.Cost_model.stage2_wp_fault + hw.Cost_model.page_map_cost
      + hw.Cost_model.tlb_local_invalidate + return_cost;
    harvest_per_page =
      hw.Cost_model.page_map_cost + hw.Cost_model.tlb_local_invalidate;
    page_copy_per_byte = hw.Cost_model.per_byte_copy;
    page_send_per_page = t.tun.grant_copy_fixed;
    batch_kick = t.tun.evtchn_send + t.tun.dom0_upcall;
    pause_vcpu = trap_cost + t.tun.sched_pick;
    resume_vcpu = switch_cost + return_cost;
    state_transfer = Cost_model.arm_full_save hw + Cost_model.arm_full_restore hw;
  }

let to_hypervisor t =
  {
    Hypervisor.name = "Xen ARM";
    kind = Hypervisor.Type1;
    arch = Hypervisor.Arm;
    machine = t.machine;
    barrier_cost = Arm_ops.barrier_cost t.ops;
    hypercall = (fun () -> hypercall t);
    interrupt_controller_trap = (fun () -> interrupt_controller_trap t);
    virtual_irq_completion = (fun () -> virtual_irq_completion t);
    vm_switch = (fun () -> vm_switch t);
    virtual_ipi = (fun () -> virtual_ipi t);
    io_latency_out = (fun () -> io_latency_out t);
    io_latency_in = (fun () -> io_latency_in t);
    io_profile = io_profile t;
    migrate = migrate_profile t;
    guest = t.guest;
  }
