type t = {
  transport : string;
  wp_fault_guest_cpu : int;
  harvest_per_page : int;
  page_copy_per_byte : float;
  page_send_per_page : int;
  batch_kick : int;
  pause_vcpu : int;
  resume_vcpu : int;
  state_transfer : int;
}

let none =
  {
    transport = "none";
    wp_fault_guest_cpu = 0;
    harvest_per_page = 0;
    page_copy_per_byte = 0.0;
    page_send_per_page = 0;
    batch_kick = 0;
    pause_vcpu = 0;
    resume_vcpu = 0;
    state_transfer = 0;
  }

let blackout_page_cpu t ~page_bytes =
  t.harvest_per_page
  + Armvirt_arch.Cost_model.copy_cost ~per_byte:t.page_copy_per_byte
      ~bytes:page_bytes
  + t.page_send_per_page

let pp ppf t =
  Format.fprintf ppf
    "@[<v>transport             %s@,\
     wp fault (guest CPU)  %d cycles@,\
     harvest/page          %d cycles@,\
     copy/byte             %.2f cycles@,\
     send/page             %d cycles@,\
     batch kick            %d cycles@,\
     pause/VCPU            %d cycles@,\
     resume/VCPU           %d cycles@,\
     state transfer        %d cycles@]"
    t.transport t.wp_fault_guest_cpu t.harvest_per_page t.page_copy_per_byte
    t.page_send_per_page t.batch_kick t.pause_vcpu t.resume_vcpu
    t.state_transfer
