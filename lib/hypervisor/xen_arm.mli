(** Xen ARM: a Type 1 hypervisor resident in EL2 (paper section II).

    Xen maps naturally onto the ARM virtualization extensions: the whole
    hypervisor runs in EL2 with its own register bank, so a simple trap
    from a VM costs little more than a GP register spill — the 376-cycle
    Hypercall of Table II, an order of magnitude below split-mode KVM.

    The flip side, and the paper's central finding: Xen only implements
    scheduling, memory management, the interrupt controller and timers in
    EL2. All I/O lives in Dom0, a separate privileged VM. A guest I/O
    operation therefore traps to EL2 {e and then} crosses to Dom0 —
    physical IPI, a full VM switch away from the idle domain, an event
    channel upcall — and moves its data by grant copy because Dom0 cannot
    see guest memory. Fast transitions; slow I/O. *)

type pinning =
  | Separate  (** Dom0 and DomU on disjoint PCPUs (the paper's setup). *)
  | Shared
      (** Dom0 and the VM share PCPUs — the configuration the paper
          tried and found "similar or worse" (section IV). *)

type tuning = {
  trap_save : int;
      (** Lazy GP spill on trap into EL2 (Xen saves only what it
          clobbers, unlike KVM's structured full save). *)
  trap_restore : int;
  hypercall_dispatch : int;  (** EL2 hypercall table dispatch. *)
  gic_mmio_emulate : int;  (** Distributor emulation, directly in EL2. *)
  sgi_emulate : int;
      (** Trapped SGI write: distributor lock, target resolution, and the
          physical SGI write through the slow GIC interconnect. *)
  irq_route : int;
      (** Physical interrupt acknowledgement (IAR read / EOI through the
          GIC) + pending resolution, on the receiving PCPU. *)
  sched_pick : int;  (** Credit scheduler decision. *)
  evtchn_send : int;  (** EVTCHNOP_send hypercall handling in EL2. *)
  dom0_upcall : int;
      (** Dom0's event upcall: Linux IRQ entry, evtchn demux, waking the
          backend thread. *)
  dom0_signal_path : int;
      (** Dom0-side path from backend completion to the event-channel
          hypercall (the inbound direction's prologue). *)
  evtchn_demux : int;
      (** The guest's event-channel upcall demultiplexing chain, per
          delivered event. *)
  grant_copy_fixed : int;
      (** Fixed cost of one grant copy: establishing and tearing down the
          shared page — "more than 3 μs ... even though only a single
          byte of data needs to be copied" (section V). *)
  grant_map_zero_copy : int;
      (** Hypothetical ARM zero-copy: grant map + broadcast TLBI unmap,
          for the what-if ablation the paper raises ("whether zero copy
          ... can be implemented efficiently on ARM ... remains to be
          investigated"). *)
  netback_per_packet : int;  (** Netback work per packet in Dom0. *)
}

val default_tuning : tuning

type t

val create :
  ?tuning:tuning -> ?pinning:pinning -> Armvirt_arch.Machine.t -> t
(** Dom0 on PCPUs 0-3, DomU on 4-7 (or overlapping under [Shared]).
    Raises [Invalid_argument] for a non-ARM machine or < 8 PCPUs. *)

val machine : t -> Armvirt_arch.Machine.t
val dom0 : t -> Vm.t
val domu : t -> Vm.t
val pinning : t -> pinning

val world : t -> pcpu:int -> Armvirt_arch.El2_state.t
(** The EL2 world state machine of one PCPU (checked alongside every
    path below). Xen's worlds are [El2_resident]: EL1 always belongs to
    some domain (the idle domain, -1, when nothing runs). *)

(** {1 Paths} — must run inside a simulation process. *)

val trap_to_xen :
  ?pcpu:int -> ?reason:Armvirt_arch.Esr.exception_class -> t -> unit
(** VM → EL2: trap + lazy GP spill. The fast path the paper credits ARM
    for. [pcpu] defaults to DomU VCPU0's PCPU; [reason] (default HVC)
    is the syndrome class recorded in the exit-marker counter. *)

val return_from_xen : ?pcpu:int -> ?domid:int -> t -> unit

val full_vm_switch : ?pcpu:int -> ?to_domid:int -> t -> unit
(** Replace the VM whose EL1 state is loaded (e.g. idle domain → Dom0):
    the full EL1 + VGIC context switch both hypervisors must do. *)

val inject_virq : t -> Vm.vcpu -> Armvirt_gic.Irq.t -> unit

(** {1 Microbenchmark operations (Table I)} *)

val hypercall : t -> unit
val interrupt_controller_trap : t -> unit
val virtual_irq_completion : t -> unit
val vm_switch : t -> unit
val virtual_ipi : t -> Armvirt_engine.Cycles.t
val io_latency_out : t -> Armvirt_engine.Cycles.t
val io_latency_in : t -> Armvirt_engine.Cycles.t

val io_profile : t -> Io_profile.t

val io_profile_zero_copy : t -> Io_profile.t
(** The what-if profile: grant mapping with ARM broadcast TLB
    invalidation instead of copying. Used by the [zerocopy] ablation. *)

val migrate_profile : t -> Migrate_profile.t

val to_hypervisor : t -> Hypervisor.t
