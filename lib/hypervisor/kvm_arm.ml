module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Arm_ops = Armvirt_arch.Arm_ops
module Cost_model = Armvirt_arch.Cost_model
module Reg_class = Armvirt_arch.Reg_class
module Vgic = Armvirt_gic.Vgic
module Distributor = Armvirt_gic.Distributor
module El2_state = Armvirt_arch.El2_state
module Esr = Armvirt_arch.Esr
module Kernel_costs = Armvirt_guest.Kernel_costs
module Marker = Armvirt_obs.Marker

type tuning = {
  lazy_fp : bool;
      (* Trap-and-switch FP state only when the VM touches it (the
         optimization mainlined after the paper; the paper's KVM
         switched FP eagerly, so the default is false). *)
  lazy_vgic : bool;
      (* Only read back occupied list registers instead of the whole
         virtual interface — the other post-paper optimization. With no
         interrupts in flight the 3,250-cycle read collapses. *)
  host_dispatch : int;
  vhe_dispatch : int;
  gic_mmio_emulate : int;
  sgi_emulate : int;
  host_irq_route : int;
  process_switch : int;
  kick_dispatch_el1 : int;
  kick_dispatch_vhe : int;
  vcpu_resume : int;
  vhost_per_packet : int;
}

let default_tuning =
  {
    lazy_fp = false;
    lazy_vgic = false;
    host_dispatch = 380;
    vhe_dispatch = 150;
    gic_mmio_emulate = 1196;
    sgi_emulate = 60;
    host_irq_route = 100;
    process_switch = 4283;
    kick_dispatch_el1 = 1562;
    kick_dispatch_vhe = 80;
    vcpu_resume = 10403;
    vhost_per_packet = 1500;
  }

type t = {
  ops : Arm_ops.t;
  tun : tuning;
  machine : Machine.t;
  vm : Vm.t;
  second_vm : Vm.t;
  guest : Kernel_costs.t;
  world : El2_state.t array;  (* one EL2 world state per PCPU *)
  phys_gic : Distributor.t;  (* the machine's physical GIC *)
}

let create ?(tuning = default_tuning) machine =
  if Machine.num_cpus machine < 8 then
    invalid_arg "Kvm_arm.create: needs >= 8 PCPUs (paper testbed)";
  let ops = Arm_ops.create machine in
  let vm = Vm.create ~domid:1 ~name:"VM" ~pcpus:[ 4; 5; 6; 7 ] in
  (* Second VM shares the same PCPUs: only used by the VM Switch
     microbenchmark, which oversubscribes a core on purpose. *)
  let second_vm = Vm.create ~domid:2 ~name:"VM2" ~pcpus:[ 4; 5; 6; 7 ] in
  Vm.map_memory vm ~pages:1024 ~base_pa_page:0x10000;
  Vm.map_memory second_vm ~pages:1024 ~base_pa_page:0x20000;
  let mode =
    if Arm_ops.vhe_enabled ops then El2_state.Vhe else El2_state.Split_mode
  in
  let world =
    Array.init (Machine.num_cpus machine) (fun _ -> El2_state.create mode)
  in
  let phys_gic = Distributor.create ~num_cpus:(Machine.num_cpus machine) in
  (* SGI 1 carries cross-CPU kicks, as in Linux's IPI assignment. *)
  Distributor.enable phys_gic 1;
  {
    ops;
    tun = tuning;
    machine;
    vm;
    second_vm;
    guest = Kernel_costs.defaults;
    world;
    phys_gic;
  }

let machine t = t.machine
let vm t = t.vm
let vhe t = Arm_ops.vhe_enabled t.ops
let world t ~pcpu = t.world.(pcpu)

(* VCPU0 of the measured VM is pinned to PCPU 4 (section III). *)
let vcpu0_pcpu = 4

let spend t label cycles = Machine.spend t.machine label cycles

(* VM -> host transition. Split-mode: trap to EL2, switch the full EL1
   world (Table III), turn the virtualization features off so the host
   owns EL1, and exception-return into the host kernel. VHE: the host
   already lives in EL2 — a plain trap plus a GP spill. *)
(* Which classes an exit really switches, given the lazy-switching
   optimizations that followed the paper. Lazy VGIC still pays a cheap
   occupancy check (modelled as the slot-scan read). *)
let eager_exit_classes t =
  List.filter
    (fun cls ->
      match cls with
      | Reg_class.Fp -> not t.tun.lazy_fp
      | Reg_class.Vgic -> not t.tun.lazy_vgic
      | _ -> true)
    Reg_class.full_world_switch

let exit_to_host ?(pcpu = vcpu0_pcpu) ?(reason = Esr.Hvc64) t =
  (* The lowvisor's first act: decode the syndrome and classify. The
     marker label is the kvm_stat-style exit record consumed by
     Armvirt_obs.Accounting. *)
  Machine.count t.machine
    (Marker.exit ~hyp:"kvm_arm" ~reason:(Esr.marker_reason reason) ~pcpu);
  let w = t.world.(pcpu) in
  El2_state.exit_to_el2 w;
  Arm_ops.trap_to_el2 t.ops;
  if vhe t then begin
    Arm_ops.save_classes t.ops Reg_class.trap_only;
    El2_state.run_host w
  end
  else begin
    Arm_ops.save_classes t.ops (eager_exit_classes t);
    if t.tun.lazy_vgic then Arm_ops.vgic_slot_scan t.ops;
    El2_state.load_el1 w El2_state.Host;
    Arm_ops.stage2_disable t.ops;
    El2_state.disable_virtualization w;
    Arm_ops.eret t.ops (* double trap: down to the host in EL1 *);
    El2_state.run_host w
  end

(* Host -> VM: re-arm the virtualization features and restore the VM's
   EL1 world. *)
let enter_vm ?(pcpu = vcpu0_pcpu) ?(domid = 1) t =
  let w = t.world.(pcpu) in
  if vhe t then begin
    Arm_ops.restore_classes t.ops Reg_class.trap_only;
    El2_state.load_el1 w (El2_state.Vm domid);
    Arm_ops.eret t.ops;
    El2_state.enter_vm w ~domid
  end
  else begin
    Arm_ops.hvc_issue t.ops;
    Arm_ops.trap_to_el2 t.ops (* host traps up to EL2 to switch *);
    El2_state.exit_to_el2 w;
    Arm_ops.stage2_enable t.ops;
    El2_state.enable_virtualization w;
    Arm_ops.restore_classes t.ops (eager_exit_classes t);
    El2_state.load_el1 w (El2_state.Vm domid);
    Arm_ops.eret t.ops;
    El2_state.enter_vm w ~domid
  end;
  (* Marked after the restore path so the exit->entry marker distance is
     the full world-switch latency, like kvm_entry after vcpu_load. *)
  Machine.count t.machine (Marker.entry ~hyp:"kvm_arm" ~pcpu ~domid ())

let dispatch_cost t = if vhe t then t.tun.vhe_dispatch else t.tun.host_dispatch

(* Benchmark preconditions (off the measured path): the VM is executing
   on its PCPU, or the VCPU blocked earlier and the host owns it. *)
let given_vm_running ?(pcpu = vcpu0_pcpu) ?(domid = 1) t =
  El2_state.establish t.world.(pcpu) ~el1:(El2_state.Vm domid)
    ~executing:(`Vm domid)

let given_vcpu_blocked ?(pcpu = vcpu0_pcpu) t =
  if vhe t then
    El2_state.establish t.world.(pcpu) ~el1:(El2_state.Vm (-1))
      ~executing:`Host
  else
    El2_state.establish t.world.(pcpu) ~el1:El2_state.Host ~executing:`Host

let inject_virq t (vcpu : Vm.vcpu) irq =
  Arm_ops.vgic_slot_scan t.ops;
  Arm_ops.vgic_lr_write t.ops;
  Vgic.inject_or_queue vcpu.Vm.vgic irq;
  Machine.count t.machine "kvm_arm.virq_injected"

let hypercall t =
  Machine.count t.machine "kvm_arm.hypercall";
  given_vm_running t;
  Arm_ops.hvc_issue t.ops;
  exit_to_host t;
  spend t "kvm_arm.host_dispatch" (dispatch_cost t);
  enter_vm t

let interrupt_controller_trap t =
  Machine.count t.machine "kvm_arm.ict";
  given_vm_running t;
  exit_to_host ~reason:Esr.Data_abort_lower t;
  Arm_ops.mmio_decode t.ops;
  spend t "kvm_arm.gic_mmio_emulate" t.tun.gic_mmio_emulate;
  enter_vm t

let virtual_irq_completion t =
  Machine.count t.machine "kvm_arm.virq_completion";
  (* Hardware vGIC CPU interface: no hypervisor involvement at all. *)
  Arm_ops.virq_complete t.ops

let vm_switch t =
  Machine.count t.machine "kvm_arm.vm_switch";
  (* VM1 -> host (full switch), Linux picks the other VM's QEMU process,
     host -> VM2 (full switch again): EL1 state crosses memory twice,
     which is why KVM only loses slightly to Xen here (section IV). *)
  given_vm_running t;
  exit_to_host ~reason:Esr.Irq t (* the scheduler tick preempts *);
  spend t "kvm_arm.process_switch" t.tun.process_switch;
  enter_vm ~domid:2 t

(* Sender VCPU writes the emulated SGI register; the host emulates it and
   fires a physical IPI; the receiving VCPU (in the VM on another PCPU)
   takes a physical interrupt to EL2, which the host turns into a virtual
   interrupt injection, then re-enters the VM. *)
let virtual_ipi t =
  Machine.count t.machine "kvm_arm.vipi";
  given_vm_running t;
  given_vm_running ~pcpu:5 t;
  let start = Sim.current_time () in
  exit_to_host ~reason:Esr.Data_abort_lower t (* GICD_SGIR write *);
  spend t "kvm_arm.sgi_emulate" t.tun.sgi_emulate;
  (* The host's SGI emulation fires a real SGI through the physical
     distributor to the target PCPU. *)
  Distributor.send_sgi t.phys_gic 1 ~from:vcpu0_pcpu ~targets:[ 5 ];
  let receiver () =
    (match Distributor.acknowledge t.phys_gic ~cpu:5 with
    | Some 1 -> ()
    | Some _ | None -> failwith "Kvm_arm: spurious physical interrupt");
    exit_to_host ~pcpu:5 ~reason:Esr.Irq t;
    spend t "kvm_arm.host_irq_route" t.tun.host_irq_route;
    Distributor.end_of_interrupt t.phys_gic 1 ~cpu:5;
    inject_virq t (Vm.vcpu t.vm 1) 1;
    enter_vm ~pcpu:5 t;
    Arm_ops.virq_guest_dispatch t.ops
  in
  Hypervisor.remote_completion t.machine ~name:"kvm-vipi-receiver"
    ~wire:(Arm_ops.ipi_wire_latency t.ops)
    receiver;
  let latency = Cycles.sub (Sim.current_time ()) start in
  (* The sender still has to return to its VM, off the measured path. *)
  enter_vm t;
  latency

let kick_dispatch t =
  if vhe t then t.tun.kick_dispatch_vhe else t.tun.kick_dispatch_el1

(* Virtqueue kick: MMIO trap, host ioeventfd signal. The endpoint is the
   host kernel (the virtual device) seeing the signal — matching the
   microbenchmark's definition ("for KVM, this traps to the host
   kernel"). *)
let io_latency_out t =
  Machine.count t.machine "kvm_arm.io_out";
  given_vm_running t;
  let start = Sim.current_time () in
  exit_to_host ~reason:Esr.Data_abort_lower t (* virtqueue kick MMIO *);
  Arm_ops.mmio_decode t.ops;
  spend t "kvm_arm.kick_dispatch" (kick_dispatch t);
  let latency = Cycles.sub (Sim.current_time ()) start in
  enter_vm t;
  latency

(* VHOST signals the VCPU: wake the blocked VCPU thread on its PCPU
   (scheduler wakeup + vcpu_load + run-loop re-entry), inject the virtual
   interrupt, enter the VM. *)
let io_latency_in t =
  Machine.count t.machine "kvm_arm.io_in";
  (* The VM blocked in WFI earlier; its exit is off the measured path. *)
  given_vcpu_blocked t;
  let start = Sim.current_time () in
  spend t "kvm_arm.vhost_signal" 300;
  let receiver () =
    spend t "kvm_arm.vcpu_resume" t.tun.vcpu_resume;
    inject_virq t (Vm.vcpu t.vm 0) 48;
    enter_vm t;
    Arm_ops.virq_guest_dispatch t.ops
  in
  Hypervisor.remote_completion t.machine ~name:"kvm-io-in"
    ~wire:(Arm_ops.ipi_wire_latency t.ops)
    receiver;
  Cycles.sub (Sim.current_time ()) start

let hypercall_breakdown t =
  let hw = Arm_ops.hw t.ops in
  List.map
    (fun cls ->
      let costs = hw.Cost_model.reg cls in
      (cls, costs.Cost_model.save, costs.Cost_model.restore))
    Reg_class.all

(* Static path sums for the application model; kept in one place so the
   profile provably matches the simulated paths above. *)
let path_costs t =
  let hw = Arm_ops.hw t.ops in
  let lazy_scan = if t.tun.lazy_vgic then hw.Cost_model.vgic_slot_scan else 0 in
  let exit_cost =
    if vhe t then
      hw.Cost_model.trap_to_el2 + Cost_model.arm_save hw Reg_class.trap_only
    else
      hw.Cost_model.trap_to_el2
      + Cost_model.arm_save hw (eager_exit_classes t)
      + lazy_scan
      + hw.Cost_model.stage2_toggle + hw.Cost_model.eret
  in
  let entry_cost =
    if vhe t then
      Cost_model.arm_restore hw Reg_class.trap_only + hw.Cost_model.eret
    else
      hw.Cost_model.hvc_issue + hw.Cost_model.trap_to_el2
      + hw.Cost_model.stage2_toggle
      + Cost_model.arm_restore hw (eager_exit_classes t)
      + hw.Cost_model.eret
  in
  (hw, exit_cost, entry_cost)

let io_profile t =
  let hw, exit_cost, entry_cost = path_costs t in
  let inject = hw.Cost_model.vgic_slot_scan + hw.Cost_model.vgic_lr_write in
  let irq_delivery_guest_cpu =
    exit_cost + t.tun.host_irq_route + inject + entry_cost
    + hw.Cost_model.virq_guest_dispatch
  in
  {
    Io_profile.notify_latency =
      exit_cost + hw.Cost_model.mmio_decode + kick_dispatch t;
    kick_guest_cpu = exit_cost + hw.Cost_model.mmio_decode + entry_cost;
    irq_delivery_latency =
      300 + hw.Cost_model.phys_ipi_wire + exit_cost + t.tun.host_irq_route
      + inject + entry_cost;
    irq_delivery_guest_cpu;
    virq_completion = hw.Cost_model.virq_complete;
    vipi_guest_cpu =
      exit_cost + t.tun.sgi_emulate + entry_cost + irq_delivery_guest_cpu;
    backend_cpu_per_packet = t.tun.vhost_per_packet;
    rx_copy_per_byte = 0.0;
    tx_copy_per_byte = 0.0;
    rx_grant_per_packet = 0;
    tx_grant_per_packet = 0;
    guest_rx_per_packet = 500;
    guest_tx_per_packet = 400;
    irq_rate_factor = 1.0;
    phys_rx_extra_latency = 0;
    zero_copy = true;
  }

(* Live migration, KVM-style: a QEMU migration thread harvests the
   dirty bitmap (KVM_GET_DIRTY_LOG) and streams pages through a vhost
   ring. The dirty-logging fault is a full VM exit + re-entry around the
   fault handler, so the VHE and split-mode profiles diverge by exactly
   the Table III world-switch the paper measures. *)
let migrate_profile t =
  let hw, exit_cost, entry_cost = path_costs t in
  {
    Migrate_profile.transport = "vhost";
    wp_fault_guest_cpu =
      exit_cost + hw.Cost_model.stage2_wp_fault + hw.Cost_model.page_map_cost
      + hw.Cost_model.tlb_local_invalidate + entry_cost;
    harvest_per_page =
      hw.Cost_model.page_map_cost + hw.Cost_model.tlb_local_invalidate;
    page_copy_per_byte = hw.Cost_model.per_byte_copy;
    page_send_per_page = t.tun.vhost_per_packet;
    batch_kick = 300 (* eventfd signal, as in io_latency_in *);
    pause_vcpu = exit_cost + dispatch_cost t;
    resume_vcpu = t.tun.vcpu_resume + entry_cost;
    state_transfer = Cost_model.arm_full_save hw + Cost_model.arm_full_restore hw;
  }

let to_hypervisor t =
  {
    Hypervisor.name = (if vhe t then "KVM ARM (VHE)" else "KVM ARM");
    kind = Hypervisor.Type2;
    arch = Hypervisor.Arm;
    machine = t.machine;
    barrier_cost = Arm_ops.barrier_cost t.ops;
    hypercall = (fun () -> hypercall t);
    interrupt_controller_trap = (fun () -> interrupt_controller_trap t);
    virtual_irq_completion = (fun () -> virtual_irq_completion t);
    vm_switch = (fun () -> vm_switch t);
    virtual_ipi = (fun () -> virtual_ipi t);
    io_latency_out = (fun () -> io_latency_out t);
    io_latency_in = (fun () -> io_latency_in t);
    io_profile = io_profile t;
    migrate = migrate_profile t;
    guest = t.guest;
  }
