(** A credit-style proportional-share VCPU scheduler, modelled on Xen's
    credit scheduler (also a reasonable stand-in for CFS with QEMU
    processes).

    The paper's VM Switch microbenchmark measures "a central cost when
    oversubscribing physical CPUs"; this module supplies the scheduling
    substrate that turns that per-switch cost into an application-level
    overhead (see {!Armvirt_workloads.Oversub}). The model keeps the
    essentials: per-VCPU credits burned while running, wake-up boosting,
    affinity, round-robin among equal-credit VCPUs, and a global refill
    when the runnable set exhausts its credits. *)

type vcpu = { dom : int; index : int }

type t

val create : num_pcpus:int -> timeslice_cycles:int -> t
(** [timeslice_cycles] is the credit charge that forces a preemption
    check (Xen defaults to 30 ms; experiments use shorter slices).
    Raises [Invalid_argument] on non-positive arguments. *)

val default_weight : int
(** The neutral proportional-share weight (256, as in Xen). *)

val add_vcpu : ?weight:int -> ?cap:int -> t -> vcpu -> affinity:int -> unit
(** Registers a VCPU pinned to one PCPU (the paper's configuration).
    [weight] (default {!default_weight}) scales the VCPU's refill grant
    proportionally, so a weight-512 VCPU accumulates credit twice as
    fast as a weight-256 one. [cap] (default 0 = uncapped) is a
    percent ceiling: a capped VCPU's credit is clamped to
    [cap/100 * initial_credit] at every refill and the VCPU is
    throttled — runnable but unschedulable — whenever its credit is
    exhausted, bounding its PCPU share even when cycles are idle.
    Raises [Invalid_argument] for an out-of-range PCPU, a weight < 1,
    a cap outside [0, 100], or a duplicate VCPU. *)

val remove_vcpu : t -> vcpu -> unit
(** Deregisters a VCPU (a departing guest under churn). If it was the
    incumbent on its PCPU the slot falls back to idle; the next [pick]
    records the switch. Raises [Invalid_argument] if unknown. *)

val set_runnable : t -> vcpu -> bool -> unit
(** Blocking/waking. Waking boosts the VCPU to the front of its
    runqueue (Xen's BOOST priority), letting I/O-blocked VCPUs preempt
    CPU hogs — the behaviour that keeps latency-sensitive VMs alive
    under oversubscription. *)

val pick : t -> pcpu:int -> vcpu option
(** Schedules the next VCPU on a PCPU: the runnable VCPU with the most
    credit (FIFO among ties), or [None] to run the idle context.
    Recorded as a context switch when it differs from the incumbent. *)

val charge : t -> pcpu:int -> cycles:int -> unit
(** Burns credit on the currently running VCPU. When every runnable
    VCPU in the system is out of credit, credits refill. *)

val periodic_refill : t -> cycles:int -> unit
(** Xen's periodic accounting tick. [cycles] is the per-PCPU capacity
    elapsed since the last tick; it is distributed among each PCPU's
    runnable VCPUs proportionally to weight, bounded by each cap's
    share of the interval, and clamped at the initial credit to
    prevent hoarding. Quantum-stepped drivers (see
    [Armvirt_fleet.Scenario]) call this on a fixed cadence so caps and
    weights shape throughput even when the work-conserving exhaustion
    refill never fires. Raises [Invalid_argument] on negative
    [cycles]. *)

val current : t -> pcpu:int -> vcpu option
val credit_of : t -> vcpu -> int
val switches : t -> int
(** Context switches performed so far (idle transitions included). *)

val refills : t -> int

val run_to_completion :
  t -> work:(vcpu * int) list -> switch_cost:int -> int * int
(** [run_to_completion t ~work ~switch_cost] simulates the pinned
    system until every VCPU finishes its assigned cycles of CPU-bound
    work, charging [switch_cost] per context switch. Returns
    [(makespan_cycles, total_switches)], where the makespan is the
    busiest PCPU's total including switching overhead. Raises
    [Invalid_argument] if a listed VCPU was never added. *)
