type t = {
  notify_latency : int;
  kick_guest_cpu : int;
  irq_delivery_latency : int;
  irq_delivery_guest_cpu : int;
  virq_completion : int;
  vipi_guest_cpu : int;
  backend_cpu_per_packet : int;
  rx_copy_per_byte : float;
  tx_copy_per_byte : float;
  rx_grant_per_packet : int;
  tx_grant_per_packet : int;
  guest_rx_per_packet : int;
  guest_tx_per_packet : int;
  irq_rate_factor : float;
  phys_rx_extra_latency : int;
  zero_copy : bool;
}

let native =
  {
    notify_latency = 0;
    kick_guest_cpu = 0;
    irq_delivery_latency = 0;
    irq_delivery_guest_cpu = 0;
    virq_completion = 0;
    vipi_guest_cpu = 0;
    backend_cpu_per_packet = 0;
    rx_copy_per_byte = 0.0;
    tx_copy_per_byte = 0.0;
    rx_grant_per_packet = 0;
    tx_grant_per_packet = 0;
    guest_rx_per_packet = 0;
    guest_tx_per_packet = 0;
    irq_rate_factor = 1.0;
    phys_rx_extra_latency = 0;
    zero_copy = true;
  }

let copy_cycles per_byte bytes =
  int_of_float (Float.round (per_byte *. float_of_int bytes))

let total_rx_packet_cost t ~bytes =
  t.backend_cpu_per_packet + t.rx_grant_per_packet
  + copy_cycles t.rx_copy_per_byte bytes

let total_tx_packet_cost t ~bytes =
  t.backend_cpu_per_packet + t.tx_grant_per_packet
  + copy_cycles t.tx_copy_per_byte bytes

let vm_to_vm_packet_cost t ~bytes =
  total_tx_packet_cost t ~bytes + total_rx_packet_cost t ~bytes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>notify latency        %6d@,kick guest cpu        %6d@,\
     irq delivery latency  %6d@,irq delivery cpu      %6d@,\
     virq completion       %6d@,vipi guest cpu        %6d@,\
     backend cpu/packet    %6d@,grant rx/tx per pkt   %6d/%d@,\
     copy rx/tx per byte   %.2f/%.2f@,zero copy             %b@]"
    t.notify_latency t.kick_guest_cpu t.irq_delivery_latency
    t.irq_delivery_guest_cpu t.virq_completion t.vipi_guest_cpu
    t.backend_cpu_per_packet t.rx_grant_per_packet t.tx_grant_per_packet
    t.rx_copy_per_byte t.tx_copy_per_byte t.zero_copy
