module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine

type kind = Type1 | Type2
type arch = Arm | X86

type t = {
  name : string;
  kind : kind;
  arch : arch;
  machine : Machine.t;
  barrier_cost : Cycles.t;
  hypercall : unit -> unit;
  interrupt_controller_trap : unit -> unit;
  virtual_irq_completion : unit -> unit;
  vm_switch : unit -> unit;
  virtual_ipi : unit -> Cycles.t;
  io_latency_out : unit -> Cycles.t;
  io_latency_in : unit -> Cycles.t;
  io_profile : Io_profile.t;
  migrate : Migrate_profile.t;
  guest : Armvirt_guest.Kernel_costs.t;
}

let kind_to_string = function Type1 -> "Type 1" | Type2 -> "Type 2"
let arch_to_string = function Arm -> "ARM" | X86 -> "x86"

let remote_completion machine ~name ~wire path =
  let finished = Sim.Signal.create (Machine.sim machine) in
  Sim.spawn_here ~name (fun () ->
      Sim.delay wire;
      path ();
      Sim.Signal.notify finished);
  Sim.Signal.wait finished
