(** Per-hypervisor live-migration costs, the currency of [lib/migrate].

    Live migration exercises exactly the transitions the paper prices:
    every dirty-logging fault is a VM-to-hypervisor round trip (Table I),
    and every shipped page crosses the same transmit machinery as the
    I/O workloads — KVM's migration thread feeds a vhost ring from the
    host kernel, Xen's toolstack pulls pages through grant
    copies and event channels via Dom0 (section V). Each hypervisor
    model composes its profile from the same path sums as its
    {!Io_profile}, so ARM vs x86 and KVM vs Xen migration diverge for
    the documented architectural reasons, not ad-hoc constants. *)

type t = {
  transport : string;
      (** Page transport: ["vhost"] (KVM), ["grant"] (Xen), ["none"]. *)
  wp_fault_guest_cpu : int;
      (** Guest-VCPU cycles for one dirty-logging write-protect fault:
          trap to the hypervisor, fault handling
          ({!Armvirt_arch.Cost_model.arm.stage2_wp_fault}), permission
          restore, TLB maintenance, re-entry. The VHE/non-VHE and
          ARM/x86 transition costs make this the per-hypervisor
          signature of migration's guest-visible overhead. *)
  harvest_per_page : int;
      (** Migration-side cycles to harvest one dirty page and re-arm its
          write protection (bitmap scan + PTE demote + TLB maintenance). *)
  page_copy_per_byte : float;
      (** Staging copy out of guest memory toward the transport. *)
  page_send_per_page : int;
      (** Transport bookkeeping per shipped page: a vhost ring slot for
          KVM, a grant copy for Xen — the reason Xen rounds are longer
          than KVM rounds at identical bandwidth. *)
  batch_kick : int;
      (** Per-batch doorbell: an eventfd signal for KVM; an event
          channel plus Dom0 engagement for Xen. *)
  pause_vcpu : int;
      (** Cycles to stop one running VCPU at blackout entry. *)
  resume_vcpu : int;
      (** Cycles to resume one VCPU on the destination. *)
  state_transfer : int;
      (** Fixed VCPU/device state move during the blackout (register
          worlds, interrupt controller state). *)
}

val none : t
(** The native/no-hypervisor profile: free except for the raw memcpy a
    caller prices itself — the bare lower bound `bench migrate` compares
    against. *)

val blackout_page_cpu : t -> page_bytes:int -> int
(** CPU cycles the blackout pays per final-round page (harvest + copy +
    send), excluding wire time and the fixed pause/resume/state terms. *)

val pp : Format.formatter -> t -> unit
