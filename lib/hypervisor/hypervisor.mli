(** The uniform face of a hypervisor under measurement.

    Each concrete model ({!Kvm_arm}, {!Xen_arm}, {!Kvm_x86}, {!Xen_x86},
    {!Native}) builds this record; the microbenchmark suite and the
    application workload models drive it without knowing which design is
    underneath — exactly how the paper's custom kernel driver "executed
    the microbenchmarks in the same way across all platforms"
    (section IV).

    The synchronous operations ([hypercall], [interrupt_controller_trap],
    [virtual_irq_completion], [vm_switch]) run entirely on the calling
    simulated CPU: callers time them with
    {!Armvirt_stats.Cycle_counter.measure}. The asynchronous ones
    ([virtual_ipi], [io_latency_out], [io_latency_in]) span PCPUs and
    return the measured latency themselves, as the paper does with
    synchronized counters. All must be invoked inside a simulation
    process. *)

type kind = Type1 | Type2
type arch = Arm | X86

type t = {
  name : string;
  kind : kind;
  arch : arch;
  machine : Armvirt_arch.Machine.t;
  barrier_cost : Armvirt_engine.Cycles.t;
  hypercall : unit -> unit;
      (** No-op hypercall round trip: VM → hypervisor → VM. *)
  interrupt_controller_trap : unit -> unit;
      (** Trapped access to an emulated interrupt-controller register. *)
  virtual_irq_completion : unit -> unit;
      (** Guest acknowledges + completes a pending virtual interrupt. *)
  vm_switch : unit -> unit;
      (** Switch between two VMs on the same physical core. *)
  virtual_ipi : unit -> Armvirt_engine.Cycles.t;
      (** VCPU-to-VCPU IPI across PCPUs; returns send→handle latency. *)
  io_latency_out : unit -> Armvirt_engine.Cycles.t;
      (** Guest kick → virtual device backend notified. *)
  io_latency_in : unit -> Armvirt_engine.Cycles.t;
      (** Backend signal → guest interrupt handler. *)
  io_profile : Io_profile.t;
  migrate : Migrate_profile.t;
      (** Live-migration cost profile consumed by [lib/migrate]. *)
  guest : Armvirt_guest.Kernel_costs.t;
}

val kind_to_string : kind -> string
val arch_to_string : arch -> string

val remote_completion :
  Armvirt_arch.Machine.t ->
  name:string ->
  wire:Armvirt_engine.Cycles.t ->
  (unit -> unit) ->
  unit
(** [remote_completion m ~name ~wire path] models work continuing on a
    different PCPU: after [wire] cycles of propagation, [path] runs in a
    fresh process; the caller blocks until it finishes. Because the
    caller is parked the whole time, the caller's clock on return equals
    start + wire + cost of [path] — the cross-CPU latency. *)
