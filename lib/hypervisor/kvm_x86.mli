(** KVM x86: the Type 2 baseline (paper sections II–IV).

    Root mode imposes no structure on CPU privilege, so Linux runs in
    root mode unmodified and KVM maps onto x86 as naturally as Xen does.
    Every VM transition pays the fixed hardware VMCS state transfer —
    cheaper than KVM ARM's software full switch, dearer than Xen ARM's
    bare trap. EOIs trap (no vAPIC on the paper's Xeon). *)

type tuning = {
  dispatch : int;  (** Run-loop exit-reason dispatch. *)
  apic_mmio_emulate : int;  (** In-kernel APIC register emulation. *)
  icr_emulate : int;  (** Trapped ICR (IPI) write emulation. *)
  irq_inject : int;  (** Host IRQ → virtual interrupt injection. *)
  process_switch : int;  (** Linux switch between QEMU processes. *)
  kick_dispatch : int;  (** ioeventfd signal on a virtqueue kick. *)
  vcpu_resume : int;  (** Waking a blocked VCPU thread. *)
  vhost_per_packet : int;
}

val default_tuning : tuning

type t

val create : ?tuning:tuning -> Armvirt_arch.Machine.t -> t
(** Raises [Invalid_argument] for a non-x86 machine or < 8 PCPUs. *)

val machine : t -> Armvirt_arch.Machine.t
val vm : t -> Vm.t

val world : t -> pcpu:int -> Armvirt_arch.Vmx_state.t
(** The root/non-root state machine of one PCPU, driven alongside every
    path below. *)

val hypercall : t -> unit
val interrupt_controller_trap : t -> unit
val virtual_irq_completion : t -> unit
val vm_switch : t -> unit
val virtual_ipi : t -> Armvirt_engine.Cycles.t
val io_latency_out : t -> Armvirt_engine.Cycles.t
val io_latency_in : t -> Armvirt_engine.Cycles.t

val io_profile : t -> Io_profile.t
val migrate_profile : t -> Migrate_profile.t

val to_hypervisor : t -> Hypervisor.t
