module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module X86_ops = Armvirt_arch.X86_ops
module Cost_model = Armvirt_arch.Cost_model
module Apic = Armvirt_gic.Apic
module Vmx_state = Armvirt_arch.Vmx_state
module Kernel_costs = Armvirt_guest.Kernel_costs
module Esr = Armvirt_arch.Esr
module Marker = Armvirt_obs.Marker

type tuning = {
  dispatch : int;
  apic_mmio_emulate : int;
  icr_emulate : int;
  irq_inject : int;
  process_switch : int;
  kick_dispatch : int;
  vcpu_resume : int;
  vhost_per_packet : int;
}

let default_tuning =
  {
    dispatch = 150;
    apic_mmio_emulate = 1254;
    icr_emulate = 1500;
    irq_inject = 1610;
    process_switch = 3682;
    kick_dispatch = 80;
    vcpu_resume = 15853;
    vhost_per_packet = 1400;
  }

type t = {
  ops : X86_ops.t;
  tun : tuning;
  machine : Machine.t;
  vm : Vm.t;
  apic : Apic.t;
  guest : Kernel_costs.t;
  world : Vmx_state.t array;  (* one VMX world per PCPU *)
}

let create ?(tuning = default_tuning) machine =
  if Machine.num_cpus machine < 8 then
    invalid_arg "Kvm_x86.create: needs >= 8 PCPUs (paper testbed)";
  let ops = X86_ops.create machine in
  let vm = Vm.create ~domid:1 ~name:"VM" ~pcpus:[ 4; 5; 6; 7 ] in
  Vm.map_memory vm ~pages:1024 ~base_pa_page:0x10000;
  {
    ops;
    tun = tuning;
    machine;
    vm;
    apic = Apic.create ();
    guest = Kernel_costs.defaults;
    world = Array.init (Machine.num_cpus machine) (fun _ -> Vmx_state.create ());
  }

let machine t = t.machine
let vm t = t.vm
let world t ~pcpu = t.world.(pcpu)
let spend t label cycles = Machine.spend t.machine label cycles

let vcpu0_pcpu = 4

let given_vm_running ?(pcpu = vcpu0_pcpu) ?(domid = 1) t =
  Vmx_state.establish t.world.(pcpu) ~mode:Vmx_state.Non_root
    ~vmcs:(Some domid)

let given_vcpu_blocked ?(pcpu = vcpu0_pcpu) ?(domid = 1) t =
  Vmx_state.establish t.world.(pcpu) ~mode:Vmx_state.Root ~vmcs:(Some domid)

(* VMCALL is the x86 hypercall; the ARM mnemonics double as generic
   exit reasons in the marker labels (mli note in Esr). *)
let exit_vm ?(pcpu = vcpu0_pcpu) ?(reason = Esr.Hvc64) t =
  Machine.count t.machine
    (Marker.exit ~hyp:"kvm_x86" ~reason:(Esr.marker_reason reason) ~pcpu);
  Vmx_state.vmexit t.world.(pcpu);
  X86_ops.vmexit t.ops

let resume_vm ?(pcpu = vcpu0_pcpu) t =
  X86_ops.vmentry t.ops;
  Vmx_state.vmentry t.world.(pcpu);
  Machine.count t.machine (Marker.entry ~hyp:"kvm_x86" ~pcpu ())

let hypercall t =
  Machine.count t.machine "kvm_x86.hypercall";
  given_vm_running t;
  X86_ops.vmcall_issue t.ops;
  exit_vm t;
  spend t "kvm_x86.dispatch" t.tun.dispatch;
  resume_vm t

let interrupt_controller_trap t =
  Machine.count t.machine "kvm_x86.ict";
  given_vm_running t;
  exit_vm ~reason:Esr.Data_abort_lower t (* APIC MMIO write *);
  spend t "kvm_x86.apic_emulate" t.tun.apic_mmio_emulate;
  resume_vm t

let virtual_irq_completion t =
  Machine.count t.machine "kvm_x86.virq_completion";
  let hw = X86_ops.hw t.ops in
  if hw.Cost_model.vapic then X86_ops.eoi t.ops
  else begin
    (* Pre-vAPIC hardware: the EOI write traps like any APIC MMIO, so
       it is a marked exit/entry pair (same spends as X86_ops.eoi). *)
    given_vm_running t;
    exit_vm ~reason:Esr.Data_abort_lower t;
    spend t "x86.eoi_emul" hw.Cost_model.eoi_emul;
    resume_vm t
  end

let vm_switch t =
  Machine.count t.machine "kvm_x86.vm_switch";
  given_vm_running t;
  let w = t.world.(vcpu0_pcpu) in
  exit_vm ~reason:Esr.Irq t (* the scheduler tick preempts *);
  spend t "kvm_x86.process_switch" t.tun.process_switch;
  (* The other QEMU process vmptrld's its own VMCS. *)
  Vmx_state.vmclear w;
  Vmx_state.vmptrld w ~domid:2;
  resume_vm t

let virtual_ipi t =
  Machine.count t.machine "kvm_x86.vipi";
  given_vm_running t;
  given_vm_running ~pcpu:5 t;
  let start = Sim.current_time () in
  exit_vm ~reason:Esr.Data_abort_lower t (* APIC ICR write *);
  spend t "kvm_x86.icr_emulate" t.tun.icr_emulate;
  Apic.fire t.apic ~vector:64;
  let receiver () =
    exit_vm ~pcpu:5 ~reason:Esr.Irq t;
    spend t "kvm_x86.irq_inject" t.tun.irq_inject;
    ignore (Apic.acknowledge t.apic);
    resume_vm ~pcpu:5 t;
    X86_ops.virq_guest_dispatch t.ops
  in
  Hypervisor.remote_completion t.machine ~name:"kvm-x86-vipi"
    ~wire:(X86_ops.ipi_wire_latency t.ops)
    receiver;
  let latency = Cycles.sub (Sim.current_time ()) start in
  resume_vm t;
  latency

(* The paper's observation: the kick costs about 40% of a hypercall on
   x86 because only the exit half is on the measured path — the host
   kernel (vhost) receives the eventfd signal before KVM re-enters the
   VM. *)
let io_latency_out t =
  Machine.count t.machine "kvm_x86.io_out";
  given_vm_running t;
  let start = Sim.current_time () in
  exit_vm ~reason:Esr.Data_abort_lower t (* virtqueue kick MMIO *);
  spend t "kvm_x86.kick_dispatch" t.tun.kick_dispatch;
  let latency = Cycles.sub (Sim.current_time ()) start in
  resume_vm t;
  latency

let io_latency_in t =
  Machine.count t.machine "kvm_x86.io_in";
  (* The VCPU thread blocked earlier: its exit is off the measured path. *)
  given_vcpu_blocked t;
  let start = Sim.current_time () in
  spend t "kvm_x86.vhost_signal" 300;
  let receiver () =
    spend t "kvm_x86.vcpu_resume" t.tun.vcpu_resume;
    spend t "kvm_x86.irq_inject" t.tun.irq_inject;
    resume_vm t;
    X86_ops.virq_guest_dispatch t.ops
  in
  Hypervisor.remote_completion t.machine ~name:"kvm-x86-io-in"
    ~wire:(X86_ops.ipi_wire_latency t.ops)
    receiver;
  Cycles.sub (Sim.current_time ()) start

let io_profile t =
  let hw = X86_ops.hw t.ops in
  let exit_entry = hw.Cost_model.vmexit + hw.Cost_model.vmentry in
  let eoi_cost =
    if hw.Cost_model.vapic then 71 else exit_entry + hw.Cost_model.eoi_emul
  in
  {
    Io_profile.notify_latency = hw.Cost_model.vmexit + t.tun.kick_dispatch;
    kick_guest_cpu = exit_entry;
    irq_delivery_latency =
      300 + hw.Cost_model.phys_ipi_wire + hw.Cost_model.vmexit
      + t.tun.irq_inject + hw.Cost_model.vmentry;
    irq_delivery_guest_cpu =
      exit_entry + t.tun.irq_inject + hw.Cost_model.virq_guest_dispatch;
    virq_completion = eoi_cost;
    vipi_guest_cpu =
      exit_entry + t.tun.icr_emulate + exit_entry + t.tun.irq_inject
      + hw.Cost_model.virq_guest_dispatch;
    backend_cpu_per_packet = t.tun.vhost_per_packet;
    rx_copy_per_byte = 0.0;
    tx_copy_per_byte = 0.0;
    rx_grant_per_packet = 0;
    tx_grant_per_packet = 0;
    guest_rx_per_packet = 500;
    guest_tx_per_packet = 400;
    irq_rate_factor = 1.0;
    phys_rx_extra_latency = 0;
    zero_copy = true;
  }

(* KVM x86 migration: identical software structure to KVM ARM (QEMU
   migration thread + vhost ring + dirty bitmap), but the logging fault
   is bracketed by the fixed-function VMCS transition pair instead of a
   software world switch. *)
let migrate_profile t =
  let hw = X86_ops.hw t.ops in
  let exit_entry = hw.Cost_model.vmexit + hw.Cost_model.vmentry in
  {
    Migrate_profile.transport = "vhost";
    wp_fault_guest_cpu =
      exit_entry + hw.Cost_model.stage2_wp_fault + hw.Cost_model.page_map_cost;
    harvest_per_page = hw.Cost_model.page_map_cost;
    page_copy_per_byte = hw.Cost_model.per_byte_copy;
    page_send_per_page = t.tun.vhost_per_packet;
    batch_kick = 300 (* eventfd signal, as in io_latency_in *);
    pause_vcpu = hw.Cost_model.vmexit + t.tun.dispatch;
    resume_vcpu = t.tun.vcpu_resume + hw.Cost_model.vmentry;
    state_transfer = t.tun.process_switch + exit_entry;
  }

let to_hypervisor t =
  {
    Hypervisor.name = "KVM x86";
    kind = Hypervisor.Type2;
    arch = Hypervisor.X86;
    machine = t.machine;
    barrier_cost = X86_ops.barrier_cost t.ops;
    hypercall = (fun () -> hypercall t);
    interrupt_controller_trap = (fun () -> interrupt_controller_trap t);
    virtual_irq_completion = (fun () -> virtual_irq_completion t);
    vm_switch = (fun () -> vm_switch t);
    virtual_ipi = (fun () -> virtual_ipi t);
    io_latency_out = (fun () -> io_latency_out t);
    io_latency_in = (fun () -> io_latency_in t);
    io_profile = io_profile t;
    migrate = migrate_profile t;
    guest = t.guest;
  }
