(** Xen x86: the Type 1 baseline (paper sections II–V).

    On x86 both hypervisor types use the same root/non-root transition,
    so Xen's hypercall costs the same as KVM's — ARM's Type 1 advantage
    has no x86 analogue. Xen's I/O model is unchanged from ARM: Dom0
    (paravirtualized on x86), event channels, grant copies. Zero copy was
    attempted and abandoned on x86 because revoking grants requires
    IPI-based TLB shootdowns on every CPU (section V, refs 17–18).

    The Apache data point is faithfully absent: the paper could not run
    Apache on Xen x86 at all ("it caused a kernel panic in Dom0"). *)

type tuning = {
  dispatch : int;
  apic_mmio_emulate : int;
  icr_emulate : int;
  irq_inject : int;
  eoi_emul : int;  (** Xen's EOI emulation (differs from KVM's). *)
  sched_switch : int;
      (** Credit scheduler + VMCS switch between HVM domains. *)
  pv_switch : int;
      (** Switching the root-mode context to/from PV Dom0 — lighter than
          an HVM VMCS switch. *)
  evtchn_send : int;
  dom0_upcall : int;
  dom0_signal_path : int;
  grant_copy_fixed : int;
  netback_per_packet : int;
}

val default_tuning : tuning

type t

val create : ?tuning:tuning -> Armvirt_arch.Machine.t -> t
(** Raises [Invalid_argument] for a non-x86 machine or < 8 PCPUs. *)

val machine : t -> Armvirt_arch.Machine.t
val dom0 : t -> Vm.t
val domu : t -> Vm.t

val world : t -> pcpu:int -> Armvirt_arch.Vmx_state.t
(** The root/non-root state machine of one PCPU. Dom0 is paravirtualized
    — it lives in root mode and never enters non-root operation, so only
    DomU's PCPUs ever hold a current VMCS. *)

val hypercall : t -> unit
val interrupt_controller_trap : t -> unit
val virtual_irq_completion : t -> unit
val vm_switch : t -> unit
val virtual_ipi : t -> Armvirt_engine.Cycles.t
val io_latency_out : t -> Armvirt_engine.Cycles.t
val io_latency_in : t -> Armvirt_engine.Cycles.t

val zero_copy_break_even_bytes : t -> cpus:int -> int
(** Bytes below which grant-copying beats zero-copy mapping on x86,
    given the TLB shootdown across [cpus] CPUs — the arithmetic behind
    abandoning zero copy on Xen x86. *)

val io_profile : t -> Io_profile.t
val migrate_profile : t -> Migrate_profile.t

val to_hypervisor : t -> Hypervisor.t
