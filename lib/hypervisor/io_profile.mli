(** Per-event virtualization overheads, the currency of the application
    analysis.

    Section V of the paper explains every Figure 4 result in terms of a
    small set of per-event costs: what a virtqueue/ring kick costs the
    guest, what delivering a virtual interrupt costs and adds in latency,
    what the backend burns per packet, and whether the data path copies.
    Each hypervisor model exports its profile; the application workload
    models consume it. The native baseline is {!native} — all zeros. *)

type t = {
  notify_latency : int;
      (** Added latency, guest kick → backend sees it (the I/O Latency
          Out microbenchmark). *)
  kick_guest_cpu : int;
      (** Guest-VCPU cycles consumed per kick (exit + re-entry). *)
  irq_delivery_latency : int;
      (** Added latency, backend signal → guest handler (I/O Latency
          In). *)
  irq_delivery_guest_cpu : int;
      (** Guest-VCPU cycles consumed per delivered virtual interrupt,
          beyond the native interrupt path. *)
  virq_completion : int;
      (** Per-interrupt completion cost (71 on ARM; an EOI trap on
          pre-vAPIC x86). *)
  vipi_guest_cpu : int;
      (** Added cycles per virtual IPI (sender + receiver). *)
  backend_cpu_per_packet : int;
      (** Backend (host kernel / Dom0) cycles per packet beyond the
          native driver path. *)
  rx_copy_per_byte : float;
      (** Extra copy cost on the receive path; 0 under zero-copy. *)
  tx_copy_per_byte : float;
  rx_grant_per_packet : int;
      (** Fixed grant map/copy machinery per received packet (Xen's
          "more than 3 μs" of section V). *)
  tx_grant_per_packet : int;
  guest_rx_per_packet : int;
      (** Frontend driver work inside the guest per received packet,
          beyond a native driver: virtio used-ring reaping for KVM;
          grant allocation/revocation plus ring bookkeeping for Xen. *)
  guest_tx_per_packet : int;
  irq_rate_factor : float;
      (** Virtual interrupts delivered per native interrupt the same
          workload would see. KVM's VHOST preserves NAPI coalescing
          (1.0); Xen's per-event upcall channel coalesces worse. *)
  phys_rx_extra_latency : int;
      (** Latency from wire arrival to the physical driver seeing the
          frame, beyond native. Zero for KVM (the host driver is always
          resident); for Xen the physical driver lives in Dom0, which is
          "often idling when the network packet arrives", so Xen must
          first switch from the idle domain to Dom0 — the reason Xen's
          Table V "send to recv" exceeds native's. *)
  zero_copy : bool;
      (** Whether the backend can DMA directly into guest buffers. *)
}

val native : t
(** No hypervisor: every field zero, [zero_copy = true]. *)

val total_rx_packet_cost : t -> bytes:int -> int
(** Backend + grant + copy cycles to move one received packet of [bytes]
    to the guest (excludes the guest-side interrupt costs). *)

val total_tx_packet_cost : t -> bytes:int -> int

val vm_to_vm_packet_cost : t -> bytes:int -> int
(** Host-side cycles to carry one packet from a sending VM into a
    receiving VM through a host switch: the transmit backend path out of
    the source plus the receive backend path into the destination. Under
    a zero-copy vhost both halves are per-packet constants; under Xen's
    Dom0 copying backend both halves scale with [bytes] — the section V
    contrast the {!Armvirt_vswitch} port profiles build on. *)

val pp : Format.formatter -> t -> unit
