module Netperf = Armvirt_workloads.Netperf

let hline ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let pp_table2 ppf rows =
  Format.fprintf ppf
    "Table II: Microbenchmark Measurements (cycle counts), measured vs \
     paper@.";
  hline ppf 100;
  Format.fprintf ppf "%-26s %17s %17s %17s %17s@." "" "ARM KVM" "ARM Xen"
    "x86 KVM" "x86 Xen";
  Format.fprintf ppf "%-26s %17s %17s %17s %17s@." "Microbenchmark"
    "meas/paper" "meas/paper" "meas/paper" "meas/paper";
  hline ppf 100;
  List.iter
    (fun { Experiment.micro; measured } ->
      let paper = List.assoc micro Paper_data.table2 in
      let cell m p = Printf.sprintf "%d/%d" m p in
      Format.fprintf ppf "%-26s %17s %17s %17s %17s@." micro
        (cell measured.Paper_data.kvm_arm paper.Paper_data.kvm_arm)
        (cell measured.Paper_data.xen_arm paper.Paper_data.xen_arm)
        (cell measured.Paper_data.kvm_x86 paper.Paper_data.kvm_x86)
        (cell measured.Paper_data.xen_x86 paper.Paper_data.xen_x86))
    rows;
  hline ppf 100

let pp_table3 ppf rows =
  Format.fprintf ppf
    "Table III: KVM ARM Hypercall Analysis (cycle counts), measured vs \
     paper@.";
  hline ppf 72;
  Format.fprintf ppf "%-26s %20s %20s@." "Register State" "Save (meas/paper)"
    "Restore (meas/paper)";
  hline ppf 72;
  List.iter
    (fun (cls, save, restore) ->
      let _, psave, prestore =
        List.find (fun (name, _, _) -> name = cls) Paper_data.table3
      in
      Format.fprintf ppf "%-26s %20s %20s@." cls
        (Printf.sprintf "%d/%d" save psave)
        (Printf.sprintf "%d/%d" restore prestore))
    rows;
  hline ppf 72

let pp_table5 ppf results =
  Format.fprintf ppf
    "Table V: Netperf TCP_RR Analysis on ARM, measured (paper in \
     parentheses)@.";
  hline ppf 86;
  Format.fprintf ppf "%-26s %18s %18s %18s@." "" "Native" "KVM" "Xen";
  hline ppf 86;
  let get name = List.assoc name results in
  let native = get "Native" and kvm = get "KVM" and xen = get "Xen" in
  let paper metric =
    List.find (fun r -> r.Paper_data.metric = metric) Paper_data.table5
  in
  let row metric value =
    let p = paper metric in
    let cell v pv =
      match (v, pv) with
      | None, _ -> "-"
      | Some v, Some pv -> Printf.sprintf "%.1f (%.1f)" v pv
      | Some v, None -> Printf.sprintf "%.1f" v
    in
    Format.fprintf ppf "%-26s %18s %18s %18s@." metric
      (cell (value native) p.Paper_data.native)
      (cell (value kvm) p.Paper_data.kvm)
      (cell (value xen) p.Paper_data.xen)
  in
  row "Trans/s" (fun r -> Some r.Netperf.trans_per_sec);
  row "Time/trans (us)" (fun r -> Some r.Netperf.time_per_trans_us);
  (* Overheads below the table's rounding resolution print as blank. *)
  let round_cutoff_us = 0.05 in
  row "Overhead (us)" (fun r ->
      if r.Netperf.overhead_us < round_cutoff_us then None
      else Some r.Netperf.overhead_us);
  row "send to recv (us)" (fun r -> Some r.Netperf.send_to_recv_us);
  row "recv to send (us)" (fun r -> Some r.Netperf.recv_to_send_us);
  row "recv to VM recv (us)" (fun r -> r.Netperf.recv_to_vm_recv_us);
  row "VM recv to VM send (us)" (fun r -> r.Netperf.vm_recv_to_vm_send_us);
  row "VM send to send (us)" (fun r -> r.Netperf.vm_send_to_send_us);
  hline ppf 86

let pp_fig4 ppf rows =
  Format.fprintf ppf
    "Figure 4: Application Benchmark Performance (normalized to native, \
     lower is better), measured (paper in parentheses; paper bars are \
     approximate reads except where the text states values)@.";
  hline ppf 108;
  Format.fprintf ppf "%-14s %22s %22s %22s %22s@." "Workload" "ARM KVM"
    "ARM Xen" "x86 KVM" "x86 Xen";
  hline ppf 108;
  List.iter
    (fun { Experiment.workload; values } ->
      let paper =
        List.find (fun e -> e.Paper_data.workload = workload) Paper_data.fig4
      in
      let cell v pv =
        match (v, pv) with
        | None, None -> "n/a (n/a)"
        | None, Some p -> Printf.sprintf "n/a (%.2f)" p
        | Some v, None -> Printf.sprintf "%.2f (n/a)" v
        | Some v, Some p -> Printf.sprintf "%.2f (%.2f)" v p
      in
      Format.fprintf ppf "%-14s %22s %22s %22s %22s@." workload
        (cell values.Experiment.q_kvm_arm paper.Paper_data.f_kvm_arm)
        (cell values.Experiment.q_xen_arm paper.Paper_data.f_xen_arm)
        (cell values.Experiment.q_kvm_x86 paper.Paper_data.f_kvm_x86)
        (cell values.Experiment.q_xen_x86 paper.Paper_data.f_xen_x86))
    rows;
  hline ppf 108;
  Format.fprintf ppf
    "Note: Apache on Xen x86 is n/a in the paper too — it caused a Dom0 \
     kernel panic (section V).@."

let pp_vhe ppf rows =
  Format.fprintf ppf
    "Section VI: microbenchmarks under ARMv8.1 VHE (cycle counts)@.";
  hline ppf 86;
  Format.fprintf ppf "%-26s %16s %16s %16s %8s@." "Operation" "KVM split-mode"
    "KVM VHE" "Xen (Type 1)" "speedup";
  hline ppf 86;
  List.iter
    (fun { Experiment.operation; kvm_split; kvm_vhe; xen_baseline } ->
      let speedup =
        if kvm_vhe = 0 then 1.0
        else float_of_int kvm_split /. float_of_int kvm_vhe
      in
      Format.fprintf ppf "%-26s %16d %16d %16d %7.1fx@." operation kvm_split
        kvm_vhe xen_baseline speedup)
    rows;
  hline ppf 86

let pp_vhe_app ppf rows =
  Format.fprintf ppf
    "Section VI: predicted application impact of VHE (normalized \
     performance)@.";
  hline ppf 70;
  Format.fprintf ppf "%-14s %18s %14s %18s@." "Workload" "KVM split-mode"
    "KVM VHE" "improvement";
  hline ppf 70;
  List.iter
    (fun (w, split, vhe) ->
      Format.fprintf ppf "%-14s %18.2f %14.2f %17.1f%%@." w split vhe
        ((split -. vhe) /. split *. 100.0))
    rows;
  hline ppf 70

let pp_irqdist ppf groups =
  Format.fprintf ppf
    "Section V ablation: distributing virtual interrupts across VCPUs \
     (overhead %%, measured vs paper)@.";
  hline ppf 86;
  List.iter
    (fun (hyp, rows) ->
      let paper_single w field =
        let _, q = List.find (fun (n, _) -> n = w) Paper_data.irqdist_ablation in
        field q
      in
      List.iter
        (fun { Experiment.ablation_workload = w; single_pct; distributed_pct } ->
          let psingle, pdist =
            if hyp = "KVM ARM" then
              ( paper_single w (fun q -> q.Paper_data.kvm_arm),
                paper_single w (fun q -> q.Paper_data.kvm_x86) )
            else
              ( paper_single w (fun q -> q.Paper_data.xen_arm),
                paper_single w (fun q -> q.Paper_data.xen_x86) )
          in
          Format.fprintf ppf
            "%-10s %-11s single VCPU: %5.1f%% (paper %d%%)   distributed: \
             %5.1f%% (paper %d%%)@."
            hyp w single_pct psingle distributed_pct pdist)
        rows)
    groups;
  hline ppf 86

let pp_pinning ppf rows =
  Format.fprintf ppf
    "Section IV check: Xen ARM I/O latency vs VCPU pinning (cycle \
     counts; paper: shared pinning was 'similar or worse')@.";
  hline ppf 86;
  List.iter
    (fun (config, io_out, io_in) ->
      Format.fprintf ppf "%-46s out: %6d   in: %6d@." config io_out io_in)
    rows;
  hline ppf 86

let pp_oversub ppf groups =
  Format.fprintf ppf
    "Extension: oversubscription — the VM Switch cost at application \
     level (4 PCPUs, CPU-bound VMs)@.";
  hline ppf 96;
  Format.fprintf ppf "%-10s %4s %10s %12s %14s %12s@." "Hypervisor" "VMs"
    "slice(ms)" "switches" "switch cost" "overhead";
  hline ppf 96;
  List.iter
    (fun (hyp, rows) ->
      List.iter
        (fun (r : Armvirt_workloads.Oversub.result) ->
          Format.fprintf ppf "%-10s %4d %10.1f %12d %11d cyc %11.2f%%@." hyp
            r.Armvirt_workloads.Oversub.vms r.timeslice_ms r.context_switches
            r.switch_cost_cycles r.overhead_pct)
        rows)
    groups;
  hline ppf 96

let pp_disk ppf rows =
  Format.fprintf ppf
    "Extension: paravirtual block I/O (fio-style, queue depth 1)@.";
  hline ppf 100;
  Format.fprintf ppf "%-44s %12s %12s %12s %12s@." "Configuration"
    "4K read" "4K write" "seq MB/s" "added us";
  hline ppf 100;
  List.iter
    (fun (r : Armvirt_workloads.Diskbench.result) ->
      Format.fprintf ppf "%-44s %9.1f us %9.1f us %12.0f %12.1f@."
        r.Armvirt_workloads.Diskbench.config r.rand_read_us r.rand_write_us
        r.seq_read_mb_s r.virt_added_us)
    rows;
  hline ppf 100

let pp_tail ppf groups =
  Format.fprintf ppf
    "Extension: open-loop tail latency (Poisson arrivals at a fraction \
     of native capacity)@.";
  hline ppf 96;
  Format.fprintf ppf "%-8s %-10s %10s %10s %10s %10s %12s@." "load" "config"
    "mean us" "p50 us" "p95 us" "p99 us" "utilization";
  hline ppf 96;
  List.iter
    (fun (load, rows) ->
      List.iter
        (fun (r : Armvirt_workloads.Tail_latency.result) ->
          Format.fprintf ppf "%-8.1f %-10s %10.1f %10.1f %10.1f %10.1f %11.0f%%@."
            load r.Armvirt_workloads.Tail_latency.config r.mean_us r.p50_us
            r.p95_us r.p99_us (100.0 *. r.utilization))
        rows)
    groups;
  hline ppf 96

let pp_coldstart ppf rows =
  Format.fprintf ppf
    "Extension: cold-start stage-2 faulting (the start-up cost section V \
     sets aside)@.";
  hline ppf 92;
  Format.fprintf ppf "%-16s %8s %8s %8s %14s %10s@." "Configuration" "pages"
    "faults" "warm" "cycles/fault" "total ms";
  hline ppf 92;
  List.iter
    (fun (r : Armvirt_workloads.Coldstart.result) ->
      Format.fprintf ppf "%-16s %8d %8d %8d %14d %10.2f@."
        r.Armvirt_workloads.Coldstart.config r.pages r.faults r.warm_faults
        r.per_fault_cycles r.total_ms)
    rows;
  hline ppf 92

let pp_lrs ppf groups =
  Format.fprintf ppf
    "Extension: vGIC list-register sensitivity (bursts of 12 distinct \
     interrupts)@.";
  hline ppf 92;
  Format.fprintf ppf "%-10s %6s %14s %18s %18s@." "Hypervisor" "LRs"
    "maintenance" "overhead cycles" "cycles/interrupt";
  hline ppf 92;
  List.iter
    (fun (hyp, rows) ->
      List.iter
        (fun (r : Armvirt_workloads.Lr_sensitivity.result) ->
          Format.fprintf ppf "%-10s %6d %14d %18d %18.1f@." hyp
            r.Armvirt_workloads.Lr_sensitivity.num_lrs r.maintenance_rounds
            r.overhead_cycles r.cycles_per_interrupt)
        rows)
    groups;
  hline ppf 92

let pp_gicv3 ppf groups =
  Format.fprintf ppf
    "Extension: GICv2 vs GICv3 — how much of Table II is the X-Gene's \
     slow GIC interface@.";
  hline ppf 108;
  (match groups with
  | (_, rows) :: _ ->
      Format.fprintf ppf "%-24s" "";
      List.iter (fun (op, _) ->
          let short =
            match op with
            | "Hypercall" -> "Hypercall"
            | "Interrupt Controller Trap" -> "ICT"
            | "Virtual IPI" -> "vIPI"
            | "Virtual IRQ Completion" -> "vIRQ-EOI"
            | "VM Switch" -> "VM-Switch"
            | "I/O Latency Out" -> "IO-Out"
            | "I/O Latency In" -> "IO-In"
            | other -> other
          in
          Format.fprintf ppf " %10s" short)
        rows;
      Format.fprintf ppf "@."
  | [] -> ());
  hline ppf 108;
  List.iter
    (fun (label, rows) ->
      Format.fprintf ppf "%-24s" label;
      List.iter (fun (_, cycles) -> Format.fprintf ppf " %10d" cycles) rows;
      Format.fprintf ppf "@.")
    groups;
  hline ppf 108

let pp_ticks ppf rows =
  Format.fprintf ppf
    "Extension: virtual-timer tick overhead (section II: virtual timer      expiry traps to the hypervisor)@.";
  hline ppf 84;
  Format.fprintf ppf "%-16s %8s %8s %16s %14s@." "Configuration" "HZ" "ticks"
    "cycles/tick" "VCPU overhead";
  hline ppf 84;
  List.iter
    (fun (r : Armvirt_workloads.Timer_tick.result) ->
      Format.fprintf ppf "%-16s %8d %8d %16d %13.2f%%@."
        r.Armvirt_workloads.Timer_tick.config r.tick_hz r.ticks
        r.cycles_per_tick r.cpu_overhead_pct)
    rows;
  hline ppf 84

let pp_linkspeed ppf rows =
  Format.fprintf ppf
    "Extension: TCP_STREAM vs wire speed (section III: 1 GbE hides the      overhead)@.";
  hline ppf 76;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %6.2f GbE wire: %8.2f Gb/s  (%.2fx native)@."
        r.Experiment.ls_config r.Experiment.ls_wire_gbps r.Experiment.ls_gbps
        r.Experiment.ls_normalized)
    rows;
  hline ppf 76

let pp_isolation ppf rows =
  Format.fprintf ppf
    "Extension: measurement variability with and without the paper's      isolation discipline (Hypercall samples)@.";
  hline ppf 100;
  Format.fprintf ppf "%-52s %9s %9s %9s %9s@." "Configuration" "median"
    "stddev" "CoV" "worst";
  hline ppf 100;
  List.iter
    (fun (r : Armvirt_workloads.Isolation.result) ->
      Format.fprintf ppf "%-52s %9.0f %9.1f %8.1f%% %9.0f@."
        r.Armvirt_workloads.Isolation.config r.median r.stddev
        (100.0 *. r.coefficient_of_variation)
        r.worst)
    rows;
  hline ppf 100

let pp_multiqueue ppf groups =
  Format.fprintf ppf
    "Extension: virtio-net multiqueue — Apache normalized time vs queue      count (the productized form of the section V ablation)@.";
  hline ppf 72;
  Format.fprintf ppf "%-12s" "queues:";
  (match groups with
  | (_, cells) :: _ ->
      List.iter (fun (q, _) -> Format.fprintf ppf " %8d" q) cells;
      Format.fprintf ppf "@."
  | [] -> ());
  hline ppf 72;
  List.iter
    (fun (name, cells) ->
      Format.fprintf ppf "%-12s" name;
      List.iter (fun (_, v) -> Format.fprintf ppf " %8.2f" v) cells;
      Format.fprintf ppf "@.")
    groups;
  hline ppf 72

let pp_tracereplay ppf groups =
  Format.fprintf ppf
    "Extension: trace replay — a synthetic web mix, per-request      virtualization surcharge@.";
  hline ppf 92;
  List.iter
    (fun (name, (r : Armvirt_workloads.Trace_replay.result)) ->
      Format.fprintf ppf
        "%-10s %6d requests   added CPU %5.1f%%   p99 surcharge %6.1f us@."
        name r.Armvirt_workloads.Trace_replay.replayed r.added_cpu_pct
        r.p99_added_us;
      List.iter
        (fun (cls, count, mean_us) ->
          Format.fprintf ppf "   %-10s %6d requests, mean +%.1f us each@." cls
            count mean_us)
        r.per_class)
    groups;
  hline ppf 92

let pp_twodwalk ppf rows =
  Format.fprintf ppf
    "Extension: nested paging's two-dimensional page walk (TLB-miss      cost)@.";
  hline ppf 96;
  Format.fprintf ppf "%-34s %12s %14s %27s@." "Configuration" "accesses"
    "walk cycles" "@1 miss/10k insns (IPC 1)";
  hline ppf 96;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-34s %12d %14d %25.1f%%@." r.Experiment.tw_config
        r.Experiment.tw_walk_accesses r.Experiment.tw_walk_cycles
        r.Experiment.tw_overhead_pct_at_1_miss_per_1k)
    rows;
  hline ppf 96

let pp_vapic ppf groups =
  Format.fprintf ppf
    "Extension: x86 with vAPIC — hardware interrupt completion closes      the gap to ARM (section IV), microbenchmark cycles@.";
  hline ppf 112;
  (match groups with
  | (_, rows) :: _ ->
      Format.fprintf ppf "%-28s" "";
      List.iter
        (fun (op, _) ->
          let short =
            match op with
            | "Hypercall" -> "Hypercall"
            | "Interrupt Controller Trap" -> "ICT"
            | "Virtual IPI" -> "vIPI"
            | "Virtual IRQ Completion" -> "vIRQ-EOI"
            | "VM Switch" -> "VM-Switch"
            | "I/O Latency Out" -> "IO-Out"
            | "I/O Latency In" -> "IO-In"
            | other -> other
          in
          Format.fprintf ppf " %9s" short)
        rows;
      Format.fprintf ppf "@."
  | [] -> ());
  hline ppf 112;
  List.iter
    (fun (label, rows) ->
      Format.fprintf ppf "%-28s" label;
      List.iter (fun (_, cycles) -> Format.fprintf ppf " %9d" cycles) rows;
      Format.fprintf ppf "@.")
    groups;
  hline ppf 112

let pp_vapic_apps ppf rows =
  Format.fprintf ppf "Application impact on KVM x86 (normalized):@.";
  List.iter
    (fun (w, stock, vapic) ->
      Format.fprintf ppf "  %-12s %5.2f -> %5.2f with vAPIC@." w stock vapic)
    rows

let pp_crosscall ppf rows =
  Format.fprintf ppf
    "Extension: guest cross-calls (3-target remote TLB flush) — the      shootdown cost of section V, guest view@.";
  hline ppf 92;
  Format.fprintf ppf "%-16s %16s %16s %24s@." "Configuration" "latency"
    "sender cycles" "ARM broadcast TLBI";
  hline ppf 92;
  List.iter
    (fun (r : Armvirt_workloads.Crosscall.result) ->
      Format.fprintf ppf "%-16s %16d %16d %24s@."
        r.Armvirt_workloads.Crosscall.config r.latency_cycles
        r.sender_cpu_cycles
        (match r.arm_tlbi_alternative with
        | Some c -> Printf.sprintf "%d (no IPIs)" c
        | None -> "n/a (x86)"))
    rows;
  hline ppf 92

let pp_guestops ppf groups =
  Format.fprintf ppf
    "Extension: guest-local operations (cycles) — what virtualization      does NOT cost (section V)@.";
  hline ppf 118;
  Format.fprintf ppf "%-32s" "Operation";
  List.iter (fun (name, _) -> Format.fprintf ppf " %14s" name) groups;
  Format.fprintf ppf "@.";
  hline ppf 118;
  List.iter
    (fun op ->
      Format.fprintf ppf "%-32s" op;
      List.iter
        (fun (_, rows) ->
          let row =
            List.find (fun r -> r.Armvirt_workloads.Guest_ops.op = op) rows
          in
          Format.fprintf ppf " %13d%s" row.Armvirt_workloads.Guest_ops.cycles
            (if row.Armvirt_workloads.Guest_ops.hypervisor_involved then "*"
             else " "))
        groups;
      Format.fprintf ppf "@.")
    Armvirt_workloads.Guest_ops.op_names;
  hline ppf 118;
  Format.fprintf ppf "(*) the operation left the VM.@."

let pp_lazyswitch ppf groups =
  Format.fprintf ppf
    "Extension: the post-paper KVM ARM optimizations (lazy state      switching), microbenchmark cycles@.";
  hline ppf 108;
  (match groups with
  | (_, rows) :: _ ->
      Format.fprintf ppf "%-22s" "";
      List.iter
        (fun (op, _) ->
          let short =
            match op with
            | "Hypercall" -> "Hypercall"
            | "Interrupt Controller Trap" -> "ICT"
            | "Virtual IPI" -> "vIPI"
            | "Virtual IRQ Completion" -> "vIRQ-EOI"
            | "VM Switch" -> "VM-Switch"
            | "I/O Latency Out" -> "IO-Out"
            | "I/O Latency In" -> "IO-In"
            | other -> other
          in
          Format.fprintf ppf " %10s" short)
        rows;
      Format.fprintf ppf "@."
  | [] -> ());
  hline ppf 108;
  List.iter
    (fun (label, rows) ->
      Format.fprintf ppf "%-22s" label;
      List.iter (fun (_, cycles) -> Format.fprintf ppf " %10d" cycles) rows;
      Format.fprintf ppf "@.")
    groups;
  hline ppf 108

let pp_consolidation ppf rows =
  Format.fprintf ppf
    "Extension: VM consolidation — N memcached VMs per host (kilo-ops/s)@.";
  hline ppf 92;
  Format.fprintf ppf "%-10s %6s %14s %16s %22s@." "Config" "VMs" "per VM"
    "aggregate" "bottleneck";
  hline ppf 92;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %6d %14.0f %16.0f %22s@."
        r.Experiment.cons_config r.Experiment.cons_vms
        r.Experiment.cons_per_vm_ops r.Experiment.cons_aggregate_ops
        r.Experiment.cons_bottleneck)
    rows;
  hline ppf 92

let pp_structural ppf rows =
  Format.fprintf ppf
    "Cross-validation: structural end-to-end stacks (lib/system) vs the      analytic models@.";
  hline ppf 92;
  Format.fprintf ppf "%-10s %-22s %12s %12s %12s@." "Config" "Metric"
    "structural" "analytic" "agreement";
  hline ppf 92;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-22s %12.2f %12.2f %11.0f%%@."
        r.Experiment.st_config r.Experiment.st_metric
        r.Experiment.st_structural r.Experiment.st_analytic
        r.Experiment.st_agreement_pct)
    rows;
  hline ppf 92

let pp_fig4_chart ppf rows =
  Format.fprintf ppf
    "Figure 4 (ARM columns), drawn: each bar is normalized time, 1.0 =      native; '#' = KVM ARM, '=' = Xen ARM@.";
  hline ppf 96;
  let bar ch v =
    let len = int_of_float (Float.round (v *. 12.0)) in
    String.make (Stdlib.min 60 len) ch
  in
  List.iter
    (fun { Experiment.workload; values } ->
      (match values.Experiment.q_kvm_arm with
      | Some v -> Format.fprintf ppf "%-12s %5.2f |%s@." workload v (bar '#' v)
      | None -> Format.fprintf ppf "%-12s   n/a |@." workload);
      match values.Experiment.q_xen_arm with
      | Some v -> Format.fprintf ppf "%-12s %5.2f |%s@." "" v (bar '=' v)
      | None -> Format.fprintf ppf "%-12s   n/a |@." "")
    rows;
  hline ppf 96

let pp_zerocopy ppf rows =
  Format.fprintf ppf
    "Section V what-if: Xen ARM TCP_STREAM with grant copy vs broadcast-\
     TLBI zero copy@.";
  hline ppf 86;
  List.iter
    (fun { Experiment.zc_config; stream_gbps; stream_norm } ->
      Format.fprintf ppf "%-58s %6.2f Gb/s  (%.2fx native time)@." zc_config
        stream_gbps stream_norm)
    rows;
  hline ppf 86

let pp_migrate ppf rows =
  (match rows with
  | (_, (r : Armvirt_workloads.Migration.result)) :: _ ->
      Format.fprintf ppf
        "Extension: live migration under request load — pre-copy with \
         stage-2 dirty logging@.";
      Format.fprintf ppf "Plan: %a@." Armvirt_migrate.Plan.pp
        r.Armvirt_workloads.Migration.plan
  | [] -> ());
  hline ppf 108;
  Format.fprintf ppf "%-14s %6s %9s %12s %7s %7s %6s %5s %13s %9s@." "Config"
    "rounds" "total ms" "downtime us" "sent" "resent" "final" "conv"
    "worst p99 us" "p99 x";
  hline ppf 108;
  List.iter
    (fun (name, (r : Armvirt_workloads.Migration.result)) ->
      Format.fprintf ppf
        "%-14s %6d %9.2f %12.1f %7d %7d %6d %5b %13.1f %8.1fx@." name
        r.Armvirt_workloads.Migration.precopy_rounds r.total_ms r.downtime_us
        r.pages_sent r.pages_resent r.final_pages r.converged r.worst_p99_us
        r.p99_degradation)
    rows;
  hline ppf 108;
  Format.fprintf ppf
    "(downtime = stop-and-copy blackout; p99 x = worst pre-copy round \
     request p99 over the %.1f us idle baseline)@."
    (match rows with
    | (_, r) :: _ -> r.Armvirt_workloads.Migration.baseline_p99_us
    | [] -> 0.0)

let pp_migrate_rounds ppf rows =
  Format.fprintf ppf
    "Per-round RR degradation (pages shipped, round length, request p99):@.";
  hline ppf 96;
  List.iter
    (fun (name, (r : Armvirt_workloads.Migration.result)) ->
      Format.fprintf ppf "%-14s baseline p99 %.1f us@." name
        r.Armvirt_workloads.Migration.baseline_p99_us;
      List.iter
        (fun (round : Armvirt_migrate.Precopy.round) ->
          let p99 = round.Armvirt_migrate.Precopy.p99_us in
          Format.fprintf ppf
            "  round %2d: %5d pages %10.1f us   p99 %s@."
            round.Armvirt_migrate.Precopy.index
            round.Armvirt_migrate.Precopy.pages
            round.Armvirt_migrate.Precopy.duration_us
            (if Float.is_nan p99 then "-"
             else
               Printf.sprintf "%8.1f us (%.1fx)" p99
                 (p99 /. r.Armvirt_workloads.Migration.baseline_p99_us)))
        r.Armvirt_workloads.Migration.rounds;
      Format.fprintf ppf "  blackout: %.1f us   post-resume p99 %.1f us@."
        r.Armvirt_workloads.Migration.downtime_us
        r.Armvirt_workloads.Migration.post_p99_us)
    rows;
  hline ppf 96

(* --- generic machine-readable tables --------------------------------- *)

(* CSV per RFC 4180: fields containing separators, quotes or newlines are
   quoted, embedded quotes doubled. lib/explore's sweep reports go
   through these two emitters so every exploration artifact renders the
   same way the paper tables do — in one place. *)
let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let pp_csv_row ppf cells =
  Format.fprintf ppf "%s@." (String.concat "," (List.map csv_field cells))

let pp_csv_table ppf ~header rows =
  pp_csv_row ppf header;
  List.iter (pp_csv_row ppf) rows

let pp_markdown_table ppf ~header rows =
  let md_field s =
    String.concat "\\|" (String.split_on_char '|' s)
  in
  let row cells =
    Format.fprintf ppf "| %s |@."
      (String.concat " | " (List.map md_field cells))
  in
  row header;
  Format.fprintf ppf "|%s@."
    (String.concat "|" (List.map (fun _ -> "---") header) ^ "|");
  List.iter row rows
