(** Rendering of experiment results side by side with the paper's
    published numbers, in the spirit of the original tables. All output
    is plain text suitable for a terminal or EXPERIMENTS.md. *)

val pp_table2 : Format.formatter -> Experiment.table2_row list -> unit
(** Table II layout: per microbenchmark, measured vs paper for the four
    hypervisor/architecture combinations. *)

val pp_table3 : Format.formatter -> (string * int * int) list -> unit

val pp_table5 :
  Format.formatter ->
  (string * Armvirt_workloads.Netperf.rr_result) list ->
  unit

val pp_fig4 : Format.formatter -> Experiment.fig4_row list -> unit

val pp_vhe : Format.formatter -> Experiment.vhe_row list -> unit

val pp_vhe_app :
  Format.formatter -> (string * float * float) list -> unit

val pp_irqdist :
  Format.formatter -> (string * Experiment.irqdist_row list) list -> unit

val pp_pinning : Format.formatter -> (string * int * int) list -> unit

val pp_zerocopy : Format.formatter -> Experiment.zerocopy_row list -> unit

val pp_oversub :
  Format.formatter ->
  (string * Armvirt_workloads.Oversub.result list) list ->
  unit

val pp_disk :
  Format.formatter -> Armvirt_workloads.Diskbench.result list -> unit

val pp_tail :
  Format.formatter ->
  (float * Armvirt_workloads.Tail_latency.result list) list ->
  unit

val pp_coldstart :
  Format.formatter -> Armvirt_workloads.Coldstart.result list -> unit

val pp_lrs :
  Format.formatter ->
  (string * Armvirt_workloads.Lr_sensitivity.result list) list ->
  unit

val pp_gicv3 :
  Format.formatter -> (string * (string * int) list) list -> unit

val pp_ticks :
  Format.formatter -> Armvirt_workloads.Timer_tick.result list -> unit

val pp_linkspeed :
  Format.formatter -> Experiment.linkspeed_row list -> unit

val pp_isolation :
  Format.formatter -> Armvirt_workloads.Isolation.result list -> unit

val pp_multiqueue :
  Format.formatter -> (string * (int * float) list) list -> unit

val pp_tracereplay :
  Format.formatter ->
  (string * Armvirt_workloads.Trace_replay.result) list ->
  unit

val pp_twodwalk :
  Format.formatter -> Experiment.twodwalk_row list -> unit

val pp_vapic :
  Format.formatter -> (string * (string * int) list) list -> unit

val pp_vapic_apps :
  Format.formatter -> (string * float * float) list -> unit

val pp_crosscall :
  Format.formatter -> Armvirt_workloads.Crosscall.result list -> unit

val pp_guestops :
  Format.formatter ->
  (string * Armvirt_workloads.Guest_ops.row list) list ->
  unit

val pp_lazyswitch :
  Format.formatter -> (string * (string * int) list) list -> unit

val pp_consolidation :
  Format.formatter -> Experiment.consolidation_row list -> unit

val pp_structural :
  Format.formatter -> Experiment.structural_row list -> unit

val pp_fig4_chart : Format.formatter -> Experiment.fig4_row list -> unit
(** ASCII bar rendering of Figure 4 (ARM columns), for terminals. *)

val pp_migrate :
  Format.formatter ->
  (string * Armvirt_workloads.Migration.result) list ->
  unit
(** Live-migration summary: one row per configuration with round count,
    total time, blackout, pages re-sent and the worst-round RR p99
    degradation. *)

val pp_migrate_rounds :
  Format.formatter ->
  (string * Armvirt_workloads.Migration.result) list ->
  unit
(** The per-round detail behind {!pp_migrate}: pages shipped, round
    length and request p99 for every pre-copy round. *)

(** {1 Generic machine-readable tables}

    Shared emitters for tabular artifacts that are data rather than
    paper-vs-measured prose — [lib/explore]'s sweep reports render
    through these. *)

val pp_csv_table :
  Format.formatter -> header:string list -> string list list -> unit
(** RFC 4180 CSV: one header row then one row per entry; fields holding
    separators, quotes or newlines are quoted with doubled quotes. *)

val pp_markdown_table :
  Format.formatter -> header:string list -> string list list -> unit
(** A GitHub-flavoured markdown table (pipes in cells escaped). *)
