(** The experiment registry: one entry per table/figure of the paper's
    evaluation, plus the ablations its text reports.

    Every function builds fresh simulated machines, runs the relevant
    workloads and returns structured results; {!Report} renders them next
    to {!Paper_data}. The experiment ids here are the ones DESIGN.md's
    per-experiment index lists and `bench/main.exe` accepts. *)

type quad_f = {
  q_kvm_arm : float option;
  q_xen_arm : float option;
  q_kvm_x86 : float option;
  q_xen_x86 : float option;
}

(** {1 Parallelism and memoization}

    Every experiment expresses its independent simulation cells as
    {!Runner} jobs: cells fan out over OCaml 5 domains (see
    [--jobs] / [ARMVIRT_JOBS]) and merge deterministically, so results
    are identical at every parallelism level. Microbenchmark columns are
    additionally memoized process-wide, keyed by
    [(platform, hyp, tuning, iterations)]: [table2], [vhe], [pinning],
    [gicv3], [vapic] and [lazyswitch] share identical columns instead of
    recomputing them per artifact. *)

val reset_memo : unit -> unit
(** Drops the shared microbenchmark memo table (benchmarks call this
    between timed runs so iterations don't measure cache hits). *)

val memo_stats : unit -> int * int
(** [(hits, misses)] of the shared memo table since process start. *)

(** {1 table2 — microbenchmarks} *)

type table2_row = { micro : string; measured : Paper_data.quad }

val table2 : ?iterations:int -> unit -> table2_row list
(** Runs the Table I suite on all four hypervisor models. *)

(** {1 table3 — KVM ARM hypercall decomposition} *)

val table3 : unit -> (string * int * int) list
(** [(register class, save, restore)] from the KVM ARM model's
    instrumentation. *)

(** {1 table5 — Netperf TCP_RR on ARM} *)

val table5 :
  ?transactions:int ->
  unit ->
  (string * Armvirt_workloads.Netperf.rr_result) list
(** Results for "Native", "KVM" and "Xen" on the ARM platform. *)

(** {1 fig4 — application benchmarks} *)

type fig4_row = { workload : string; values : quad_f }

val fig4 : unit -> fig4_row list
(** Normalized performance for all nine Table IV workloads on the four
    platform/hypervisor combinations. Apache on Xen x86 is [None],
    reproducing the paper's Dom0 kernel panic. *)

(** {1 vhe — section VI predictions} *)

type vhe_row = {
  operation : string;
  kvm_split : int;  (** Split-mode KVM ARM (ARMv8). *)
  kvm_vhe : int;  (** KVM on ARMv8.1 VHE. *)
  xen_baseline : int;  (** Xen ARM, the Type 1 reference. *)
}

val vhe : ?iterations:int -> unit -> vhe_row list
(** Hypercall, I/O latency and application-facing microbenchmarks under
    VHE: the transitions that shed the EL1 world switch. *)

val vhe_app : unit -> (string * float * float) list
(** [(workload, split-mode normalized, VHE normalized)] for the
    I/O-bound workloads the paper predicts would improve 10-20%. *)

(** {1 irqdist — distributing virtual interrupts (section V ablation)} *)

type irqdist_row = {
  ablation_workload : string;
  single_pct : float;
  distributed_pct : float;
}

val irqdist : unit -> (string * irqdist_row list) list
(** Overhead percentages for Apache and Memcached, keyed by hypervisor
    ("KVM ARM", "Xen ARM"). *)

(** {1 pinning — Xen I/O latency vs pinning config (section IV)} *)

val pinning : ?iterations:int -> unit -> (string * int * int) list
(** [(config, io latency out, io latency in)] for Dom0/DomU pinned to
    separate vs shared PCPUs. *)

(** {1 zerocopy — grant copy vs hypothetical ARM zero copy (section V)} *)

type zerocopy_row = {
  zc_config : string;
  stream_gbps : float;
  stream_norm : float;
}

val zerocopy : unit -> zerocopy_row list
(** TCP_STREAM on Xen ARM with the measured grant-copy backend and with
    a hypothetical broadcast-TLBI zero-copy backend, plus the x86
    break-even analysis that justified abandoning zero copy there. *)

val x86_zero_copy_break_even : unit -> int
(** Transfer size (bytes) below which copying beats mapping on Xen x86
    with 8-CPU TLB shootdowns. *)

(** {1 Extension experiments}

    These go beyond the paper's evaluation, completing analyses its
    text opens but never runs: oversubscription (the VM Switch cost at
    application level), disk I/O through the paravirtual stacks, tail
    latency under open-loop load, cold-start stage-2 faulting, and the
    vGIC list-register design parameter. *)

val oversub : unit -> (string * Armvirt_workloads.Oversub.result list) list
(** Per ARM hypervisor: a sweep over VM count and scheduler timeslice. *)

val disk : unit -> Armvirt_workloads.Diskbench.result list
(** Native/KVM/Xen on the m400 SSD, then on the r320 RAID array. *)

val tail : unit -> (float * Armvirt_workloads.Tail_latency.result list) list
(** Latency percentiles per offered load (native/KVM/Xen on ARM). *)

val coldstart : unit -> Armvirt_workloads.Coldstart.result list
(** Faulting in a 12 GB-scale working set (scaled down) per hypervisor. *)

val lrs : unit -> (string * Armvirt_workloads.Lr_sensitivity.result list) list
(** List-register sweep per ARM hypervisor. *)

val gicv3 : unit -> (string * (string * int) list) list
(** Microbenchmark rows for the GICv2 (measured), GICv3 and GICv3+VHE
    machines: how much of Table II is the X-Gene's slow GICv2 interface
    rather than hypervisor design. *)

val ticks : unit -> Armvirt_workloads.Timer_tick.result list
(** Virtual-timer tick overhead per hypervisor at several guest HZ. *)

type linkspeed_row = {
  ls_config : string;
  ls_wire_gbps : float;
  ls_gbps : float;
  ls_normalized : float;
}

val linkspeed : unit -> linkspeed_row list
(** TCP_STREAM over 1 GbE vs 10 GbE: the paper's observation that a
    slow wire hides virtualization overhead entirely (section III). *)

val isolation : unit -> Armvirt_workloads.Isolation.result list
(** The measurement-discipline demonstration: Hypercall samples with and
    without the paper's pinning/isolation (section IV). *)

val guestops : unit -> (string * Armvirt_workloads.Guest_ops.row list) list
(** lmbench-style guest-local operations per configuration: what
    virtualization does {e not} cost (section V's "largely without the
    hypervisor's involvement"). *)

val multiqueue : unit -> (string * (int * float) list) list
(** Virtio-net multiqueue: Apache overhead vs queue count on the ARM
    hypervisors — the production mechanism behind the paper's
    interrupt-distribution ablation. [(hypervisor, [(queues,
    normalized)])]. *)

val tracereplay : unit -> (string * Armvirt_workloads.Trace_replay.result) list
(** A synthetic web-mix trace replayed per hypervisor: per-class and
    tail surcharges instead of one averaged bar. *)

type twodwalk_row = {
  tw_config : string;
  tw_walk_accesses : int;
  tw_walk_cycles : int;
  tw_overhead_pct_at_1_miss_per_1k : float;
      (** Added CPU at one TLB miss per 10,000 instructions (IPC 1). *)
}

val twodwalk : unit -> twodwalk_row list
(** Nested paging's constant tax: the 4-access native page walk becomes
    a 24-access two-dimensional walk under stage-2 — measured by really
    walking a guest stage-1 radix table through a stage-2 table
    ({!Armvirt_mem.Stage1.walk_2d}). Identical for every hypervisor and
    untouched by VHE: this cost is the hardware's, not the
    hypervisor's. *)

val vapic : unit -> (string * (string * int) list) list
(** The x86 counterpart of ARM's hardware interrupt completion:
    Table II's x86 rows re-measured on a vAPIC-capable machine
    (section IV: "newer x86 hardware with vAPIC support should perform
    more comparably to ARM"). *)

val vapic_apps : unit -> (string * float * float) list
(** [(workload, pre-vAPIC normalized, vAPIC normalized)] for the
    interrupt-heavy workloads on KVM x86. *)

val crosscall : unit -> Armvirt_workloads.Crosscall.result list
(** Guest broadcast cross-calls (remote TLB flush) per configuration:
    the guest-visible face of the x86 shootdown cost of section V. *)

val lazyswitch : unit -> (string * (string * int) list) list
(** The post-paper KVM ARM optimizations (lazy FP switching, lazy VGIC
    read-back) applied to the split-mode model: microbenchmark rows for
    stock, each optimization alone, both, and VHE for reference. *)

type consolidation_row = {
  cons_config : string;
  cons_vms : int;
  cons_per_vm_ops : float;  (** Memcached kilo-ops/s each VM sustains. *)
  cons_aggregate_ops : float;
  cons_bottleneck : string;
}

val consolidation : unit -> consolidation_row list
(** VM density: N memcached VMs per host. KVM scales per-VM vhost
    threads; Xen funnels every VM through netback in Dom0. *)

val migrate :
  ?plan:Armvirt_migrate.Plan.t ->
  unit ->
  (string * Armvirt_workloads.Migration.result) list
(** Live migration under request load on every platform/hypervisor
    model, fanned out as independent {!Runner} cells (one fresh machine
    each, so results are identical at every [--jobs] level). Order:
    KVM ARM (VHE), KVM ARM, Xen ARM, KVM x86, Xen x86 — on the default
    plan the blackouts reproduce the architectural ordering
    VHE < split-mode KVM ARM < Xen x86, while Xen ARM's grant-copy
    transport fails to converge and hits the round cap. *)

val default_fleet_mix : (Armvirt_fleet.Descriptor.profile * int) list
(** One share of the synthetic profile. *)

val fleet_boot_storm :
  ?vms:int ->
  ?mix:(Armvirt_fleet.Descriptor.profile * int) list ->
  unit ->
  (string * Armvirt_fleet.Scenario.boot_storm_result) list
(** Boot-storm the fleet (default 64 guests) on every platform/
    hypervisor model, one runner cell each, seeded per cell identity so
    the report is byte-identical at any [--jobs] level. *)

val fleet_churn :
  ?vms:int ->
  ?mix:(Armvirt_fleet.Descriptor.profile * int) list ->
  unit ->
  (string * Armvirt_fleet.Scenario.churn_result) list
(** Poisson arrival/departure churn (default 32 initial guests) on
    every model. *)

val fleet_noisy :
  ?sizes:int list ->
  ?mix:(Armvirt_fleet.Descriptor.profile * int) list ->
  unit ->
  (string * int * Armvirt_fleet.Scenario.noisy_result) list
(** Noisy-neighbor victim p99 per (model, fleet size) — default sizes
    [1; 2; 4; 8; 16]. The scenario seed ignores the fleet size, so
    within one model the p99 column is monotonically non-decreasing in
    the size column. *)

type structural_row = {
  st_config : string;
  st_metric : string;
  st_structural : float;
  st_analytic : float;
  st_agreement_pct : float;  (** structural / analytic × 100. *)
}

val structural : unit -> structural_row list
(** Cross-validation: the [lib/system] end-to-end stacks (TCP_RR through
    real rings/grants/vGIC; Hackbench through real mailboxes/IPIs)
    against the analytic models that regenerate the paper's numbers. *)

val cluster_matrix :
  ?vms:int ->
  ?spec:Armvirt_vswitch.Topology.spec ->
  unit ->
  (string * Armvirt_workloads.Cluster.matrix_result) list
(** Pairwise VM-to-VM throughput matrix (default 4 VMs on a two-host
    pair) on every platform/hypervisor model, one runner cell each, so
    the report is byte-identical at any [--jobs] level. Same-host pairs
    expose the port-cost gap (zero-copy vhost above Xen's Dom0 copies);
    cross-host pairs bound on the 10 GbE uplink. *)

val cluster_chain :
  ?requests:int ->
  ?spec:Armvirt_vswitch.Topology.spec ->
  unit ->
  (string * Armvirt_workloads.Cluster.chain_result) list
(** Client → LB → backend service chain with per-hop mean latencies on
    every model. *)

val cluster_loadgen :
  ?vms:int ->
  ?spec:Armvirt_vswitch.Topology.spec ->
  ?loads:float list ->
  unit ->
  (string * Armvirt_workloads.Cluster.loadgen_result) list
(** Open-loop tail-latency-vs-offered-load sweep (default 16 backends)
    on every model. The per-cell seed ignores the offered load, so each
    curve replays one arrival skeleton and p99 is monotone in load. *)
