module Key = struct
  type t = {
    platform : string;
    hyp : string;
    tuning : string;
    iterations : int;
  }

  let v ?(platform = "") ?(hyp = "") ?(tuning = "") ?(iterations = 0) () =
    { platform; hyp; tuning; iterations }

  let to_string k =
    Printf.sprintf "%s/%s/%s/%d" k.platform k.hyp k.tuning k.iterations

  (* FNV-1a over the printed key (offset truncated to OCaml's 63-bit
     fixnum range): stable across runs and OCaml versions, unlike
     Hashtbl.hash. Masked to a positive fixnum. *)
  let seed k =
    let s = to_string k in
    let h = ref 0x3bf29ce484222325 in
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x100000001b3)
      s;
    !h land max_int
end

let default_jobs () =
  match Sys.getenv_opt "ARMVIRT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* lint: allow R6 — process-wide --jobs override; never read mid-map *)
let current_jobs = ref None

let set_jobs n =
  if n < 1 then invalid_arg "Runner.set_jobs: jobs < 1";
  current_jobs := Some n

let jobs () =
  match !current_jobs with Some n -> n | None -> default_jobs ()

let map_indexed ~jobs g cells =
  match cells with
  | [] -> []
  | [ cell ] -> [ g 0 cell ]
  | cells when jobs = 1 -> List.mapi g cells
  | cells ->
      let input = Array.of_list cells in
      let n = Array.length input in
      let results = Array.make n None in
      let errors = Array.make n None in
      (* Work stealing off a shared cursor: cell [i] is claimed by exactly
         one domain, and writes go to disjoint slots, so the only shared
         mutable word is the cursor itself. *)
      let next = Atomic.make 0 in
      let worker () =
        let continue_stealing = ref true in
        while !continue_stealing do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_stealing := false
          else
            match g i input.(i) with
            | v -> results.(i) <- Some v
            | exception e -> errors.(i) <- Some e
        done
      in
      let spawned = Stdlib.min jobs n - 1 in
      let domains = List.init spawned (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      Array.iter (function Some e -> raise e | None -> ()) errors;
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false (* all slots filled *))
           results)

let map ?jobs:j f cells =
  let jobs = match j with Some n -> Stdlib.max 1 n | None -> jobs () in
  if not (Observe.active ()) then map_indexed ~jobs (fun _ x -> f x) cells
  else begin
    (* Tracing session: wrap every cell in a capture so its spans and
       metrics collect on the executing domain, then record the cells in
       input order — the trace is independent of [jobs]. *)
    let n = List.length cells in
    let captured = Array.make (Stdlib.max n 1) None in
    let seq = Observe.next_map_seq () in
    let label i = Printf.sprintf "%s#%d.%d" (Observe.context ()) seq i in
    let g i x =
      let v, cell = Observe.capture ~label:(label i) (fun () -> f x) in
      captured.(i) <- cell;
      v
    in
    match map_indexed ~jobs g cells with
    | results ->
        Observe.record_cells captured;
        results
    | exception e ->
        Observe.record_cells captured;
        raise e
  end

module Memo = struct
  type 'a table = {
    entries : (Key.t, 'a) Hashtbl.t;
    lock : Mutex.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create () =
    { entries = Hashtbl.create 32; lock = Mutex.create (); hits = 0; misses = 0 }

  let find_or_compute t key f =
    let cached =
      Mutex.lock t.lock;
      let v = Hashtbl.find_opt t.entries key in
      (match v with Some _ -> t.hits <- t.hits + 1 | None -> ());
      Mutex.unlock t.lock;
      v
    in
    match cached with
    | Some v ->
        Observe.note_memo_hit ();
        v
    | None ->
        (* Compute outside the lock: cells are expensive and independent.
           On a concurrent double-compute the first store wins, so every
           caller returns the same (deterministic) value. *)
        let v = f () in
        Mutex.lock t.lock;
        let stored =
          match Hashtbl.find_opt t.entries key with
          | Some prior -> prior
          | None ->
              Hashtbl.replace t.entries key v;
              t.misses <- t.misses + 1;
              v
        in
        Mutex.unlock t.lock;
        Observe.note_memo_miss ();
        stored

  let clear t =
    Mutex.lock t.lock;
    Hashtbl.reset t.entries;
    Mutex.unlock t.lock

  let hits t = t.hits
  let misses t = t.misses
end
