(** The two server platforms of the paper's testbed (section III), plus
    the ARMv8.1 what-if machine of section VI.

    Every constructor returns a {e fresh} simulated machine with its own
    event clock, so experiments are isolated exactly like the paper's
    dedicated CloudLab nodes. *)

type t =
  | Arm_m400
      (** HP Moonshot m400: ARMv8 APM X-Gene, 2.4 GHz, 8 cores. *)
  | Arm_m400_vhe
      (** The same machine with ARMv8.1 VHE — modelled, not measured, in
          the paper ("ARMv8.1 hardware is not yet available"). *)
  | X86_r320  (** Dell PowerEdge r320: Xeon E5-2450, 2.1 GHz, 8 cores. *)

type hyp_id = Kvm | Xen

val all : t list
val name : t -> string
val num_cpus : int
(** 8 physical cores on both testbeds. *)

val machine : t -> Armvirt_arch.Machine.t
(** A fresh machine (and simulation world). *)

val machine_with : cost:Armvirt_arch.Cost_model.t -> Armvirt_arch.Machine.t
(** A fresh machine on a custom cost model — the hook the GICv3/vAPIC
    ablations and [lib/explore]'s sampled design points use to run the
    hypervisor models on perturbed hardware. *)

val hypervisor : t -> hyp_id -> Armvirt_hypervisor.Hypervisor.t
(** A fresh machine running the given hypervisor. Raises
    [Invalid_argument] for [Xen] on [Arm_m400_vhe]: VHE only changes
    Type 2 hypervisors (Type 1 leaves E2H clear — section VI). *)

val native : t -> Armvirt_hypervisor.Hypervisor.t

val kvm_arm : unit -> Armvirt_hypervisor.Kvm_arm.t
val kvm_arm_vhe : unit -> Armvirt_hypervisor.Kvm_arm.t
val xen_arm :
  ?pinning:Armvirt_hypervisor.Xen_arm.pinning ->
  unit ->
  Armvirt_hypervisor.Xen_arm.t
val kvm_x86 : unit -> Armvirt_hypervisor.Kvm_x86.t
val xen_x86 : unit -> Armvirt_hypervisor.Xen_x86.t
(** Typed access to the concrete models, for experiments that need more
    than the uniform interface (Table III breakdown, pinning and
    zero-copy ablations). Each call builds a fresh machine. *)
