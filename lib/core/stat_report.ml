module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model
module Reg_class = Armvirt_arch.Reg_class
module Span = Armvirt_obs.Span
module Tracer = Armvirt_obs.Tracer
module Export = Armvirt_obs.Export
module Accounting = Armvirt_obs.Accounting
module H = Armvirt_hypervisor

let of_session () = Accounting.of_processes (Observe.processes ())

type check = {
  model : string;
  name : string;
  measured : float;
  expected : float;
  tolerance_pct : float;
}

let check_ok c =
  if c.expected = 0.0 then c.measured = 0.0
  else
    100.0 *. Float.abs (c.measured -. c.expected) /. Float.abs c.expected
    <= c.tolerance_pct

(* --- traced model runs --------------------------------------------- *)

(* A private tracer wired straight to the machine, bypassing the global
   Observe session: the crosscheck must work (and give the same answer)
   whether or not `--trace` is active. *)
let traced_run hyp f =
  let m = hyp.H.Hypervisor.machine in
  let tracer = Tracer.create () in
  Machine.observe_obs m
    (Some
       (fun ~label ~cycles ~now ->
         let now = Cycles.to_int now in
         Tracer.complete tracer ~track:"cpu" ~cat:(Span.of_label label)
           ~name:label ~ts:(now - cycles) ~dur:cycles));
  Machine.observe_count m
    (Some
       (fun ~label ~now ->
         Tracer.instant tracer ~track:"cpu" ~cat:(Span.of_label label)
           ~name:label ~ts:(Cycles.to_int now)));
  let sim = Machine.sim m in
  Sim.spawn sim ~name:"stat-crosscheck" (fun () -> f hyp);
  Sim.run sim;
  Tracer.events tracer

let accounting_of_events ~label events =
  Accounting.of_processes
    [ { Export.pid = 0; name = label; events; dropped = 0 } ]

let full_suite ~iterations (hyp : H.Hypervisor.t) =
  for _ = 1 to iterations do
    hyp.H.Hypervisor.hypercall ();
    hyp.H.Hypervisor.interrupt_controller_trap ();
    ignore (hyp.H.Hypervisor.virtual_ipi ());
    hyp.H.Hypervisor.virtual_irq_completion ();
    hyp.H.Hypervisor.vm_switch ();
    ignore (hyp.H.Hypervisor.io_latency_out ());
    ignore (hyp.H.Hypervisor.io_latency_in ())
  done

let hypercall_only ~iterations (hyp : H.Hypervisor.t) =
  for _ = 1 to iterations do
    hyp.H.Hypervisor.hypercall ()
  done

(* --- analytic expectations ----------------------------------------- *)

(* Structural exit mix of one full Table I iteration, derived from the
   marked transitions in each model (see the per-path comments in
   lib/hypervisor/). A deterministic simulator makes these exact. *)
type mix = { hvc : int; dabt : int; irq : int; entries : int }

(* Expected hypercall exit->entry marker distance: the sum of every
   cycle spent between the exit marker (fired as the trap is decoded)
   and the entry marker (fired after the world is restored). The
   guest-side issue cost falls outside the marker pair; adding it back
   gives the quantity Table II reports. *)
type model_expect = {
  label : string;
  platform : Platform.t;
  hyp_id : Platform.hyp_id;
  mix : mix;
  hypercall_lat : int;
  guest_issue : int;
  paper_hypercall : int option;  (** Paper_data.table2, when measured. *)
}

let arm = Cost_model.arm_default
let arm_vhe = Cost_model.arm_vhe
let x86 = Cost_model.x86_default

let paper_hypercall quad_field =
  match List.assoc_opt "Hypercall" Paper_data.table2 with
  | None -> None
  | Some q -> Some (quad_field q)

let kvm_arm_split_lat =
  let tun = H.Kvm_arm.default_tuning in
  let exit_cost =
    arm.Cost_model.trap_to_el2
    + Cost_model.arm_save arm Reg_class.full_world_switch
    + arm.Cost_model.stage2_toggle + arm.Cost_model.eret
  in
  let entry_cost =
    arm.Cost_model.hvc_issue + arm.Cost_model.trap_to_el2
    + arm.Cost_model.stage2_toggle
    + Cost_model.arm_restore arm Reg_class.full_world_switch
    + arm.Cost_model.eret
  in
  exit_cost + tun.H.Kvm_arm.host_dispatch + entry_cost

let kvm_arm_vhe_lat =
  let tun = H.Kvm_arm.default_tuning in
  arm_vhe.Cost_model.trap_to_el2
  + Cost_model.arm_save arm_vhe Reg_class.trap_only
  + tun.H.Kvm_arm.vhe_dispatch
  + Cost_model.arm_restore arm_vhe Reg_class.trap_only
  + arm_vhe.Cost_model.eret

let xen_arm_lat =
  let tun = H.Xen_arm.default_tuning in
  arm.Cost_model.trap_to_el2 + tun.H.Xen_arm.trap_save
  + tun.H.Xen_arm.hypercall_dispatch + tun.H.Xen_arm.trap_restore
  + arm.Cost_model.eret

let kvm_x86_lat =
  x86.Cost_model.vmexit + H.Kvm_x86.default_tuning.H.Kvm_x86.dispatch
  + x86.Cost_model.vmentry

let xen_x86_lat =
  x86.Cost_model.vmexit + H.Xen_x86.default_tuning.H.Xen_x86.dispatch
  + x86.Cost_model.vmentry

let models =
  [
    {
      label = "KVM ARM (VHE)";
      platform = Platform.Arm_m400_vhe;
      hyp_id = Platform.Kvm;
      (* hypercall hvc; ict/vipi-send/io-out MMIO aborts; vm_switch and
         vipi-receive IRQs; every exit re-enters, io_in adds one more. *)
      mix = { hvc = 1; dabt = 3; irq = 2; entries = 7 };
      hypercall_lat = kvm_arm_vhe_lat;
      guest_issue = arm_vhe.Cost_model.hvc_issue;
      paper_hypercall = None (* the paper had no VHE hardware *);
    };
    {
      label = "KVM ARM";
      platform = Platform.Arm_m400;
      hyp_id = Platform.Kvm;
      mix = { hvc = 1; dabt = 3; irq = 2; entries = 7 };
      hypercall_lat = kvm_arm_split_lat;
      guest_issue = arm.Cost_model.hvc_issue;
      paper_hypercall = paper_hypercall (fun q -> q.Paper_data.kvm_arm);
    };
    {
      label = "Xen ARM";
      platform = Platform.Arm_m400;
      hyp_id = Platform.Xen;
      (* hvc: hypercall + both I/O event-channel sends; dabt: ict +
         vipi-send; irq: vm_switch, vipi-receive and both event-channel
         IPIs landing in EL2. io_out's DomU trap never re-enters. *)
      mix = { hvc = 3; dabt = 2; irq = 4; entries = 8 };
      hypercall_lat = xen_arm_lat;
      guest_issue = arm.Cost_model.hvc_issue;
      paper_hypercall = paper_hypercall (fun q -> q.Paper_data.xen_arm);
    };
    {
      label = "KVM x86";
      platform = Platform.X86_r320;
      hyp_id = Platform.Kvm;
      (* dabt: ict, non-vAPIC EOI, vipi-send (ICR) and virtqueue kick. *)
      mix = { hvc = 1; dabt = 4; irq = 2; entries = 8 };
      hypercall_lat = kvm_x86_lat;
      guest_issue = x86.Cost_model.vmcall_issue;
      paper_hypercall = paper_hypercall (fun q -> q.Paper_data.kvm_x86);
    };
    {
      label = "Xen x86";
      platform = Platform.X86_r320;
      hyp_id = Platform.Xen;
      (* hvc: hypercall + evtchn_send kick; dabt: ict, non-vAPIC EOI,
         vipi-send. Dom0 is PV and never transitions, so io_in only
         contributes the DomU re-entry. *)
      mix = { hvc = 2; dabt = 3; irq = 2; entries = 8 };
      hypercall_lat = xen_x86_lat;
      guest_issue = x86.Cost_model.vmcall_issue;
      paper_hypercall = paper_hypercall (fun q -> q.Paper_data.xen_x86);
    };
  ]

(* --- trace-side extraction ----------------------------------------- *)

let vm_of acct =
  match acct.Accounting.vms with
  | [ vm ] -> vm
  | vms ->
      (* One machine, one hypervisor per crosscheck run. *)
      failwith
        (Printf.sprintf "Stat_report.crosscheck: %d accounting rows"
           (List.length vms))

let exit_count vm reason =
  match
    List.find_opt (fun (r, _, _) -> r = reason) vm.Accounting.exits
  with
  | Some (_, n, _) -> n
  | None -> 0

let exit_latency_mean vm reason =
  match
    List.find_opt (fun (r, _, _) -> r = reason) vm.Accounting.exits
  with
  | Some (_, _, hist) -> Accounting.mean hist
  | None -> 0.0

(* Mean duration of the spans named [name] on the cpu track. *)
let span_mean events name =
  let sum = ref 0 and n = ref 0 in
  List.iter
    (fun (e : Span.event) ->
      match e.Span.kind with
      | Span.Complete dur when e.Span.name = name ->
          sum := !sum + dur;
          incr n
      | _ -> ())
    events;
  if !n = 0 then 0.0 else float_of_int !sum /. float_of_int !n

(* --- the crosscheck ------------------------------------------------ *)

let fi = float_of_int

let crosscheck ?(iterations = 8) () =
  if iterations < 1 then invalid_arg "Stat_report.crosscheck: iterations < 1";
  List.concat_map
    (fun me ->
      let model = me.label in
      (* Exit-mix checks over the full Table I suite. *)
      let suite_events =
        traced_run
          (Platform.hypervisor me.platform me.hyp_id)
          (full_suite ~iterations)
      in
      let suite = accounting_of_events ~label:model suite_events in
      let vm = vm_of suite in
      let count name reason expected =
        {
          model;
          name;
          measured = fi (exit_count vm reason);
          expected = fi (expected * iterations);
          tolerance_pct = 0.0;
        }
      in
      let mix_checks =
        [
          count "exits/hvc per suite" "hvc" me.mix.hvc;
          count "exits/dabt per suite" "dabt" me.mix.dabt;
          count "exits/irq per suite" "irq" me.mix.irq;
          {
            model;
            name = "entries per suite";
            measured = fi vm.Accounting.entries;
            expected = fi (me.mix.entries * iterations);
            tolerance_pct = 0.0;
          };
        ]
      in
      (* Hypercall latency over a hypercall-only run, so no other path
         can contribute hvc samples. *)
      let hc_events =
        traced_run
          (Platform.hypervisor me.platform me.hyp_id)
          (hypercall_only ~iterations)
      in
      let hc = accounting_of_events ~label:model hc_events in
      let hc_vm = vm_of hc in
      let lat_checks =
        {
          model;
          name = "hypercall exit->entry vs path costs";
          measured = exit_latency_mean hc_vm "hvc";
          expected = fi me.hypercall_lat;
          tolerance_pct = 1.0;
        }
        ::
        (match me.paper_hypercall with
        | None -> []
        | Some paper ->
            [
              {
                model;
                name = "hypercall total vs paper Table II";
                measured = exit_latency_mean hc_vm "hvc" +. fi me.guest_issue;
                expected = fi paper;
                tolerance_pct = 5.0;
              };
            ])
      in
      (* Table III reconstruction: only the split-mode ARM world switch
         plays back the full register-class sequence. *)
      let table3_checks =
        if me.label <> "KVM ARM" then []
        else
          List.concat_map
            (fun cls ->
              let costs = arm.Cost_model.reg cls in
              let cls_name = Reg_class.to_string cls in
              [
                {
                  model;
                  name = Printf.sprintf "Table III save %s" cls_name;
                  measured = span_mean hc_events ("arm.save." ^ cls_name);
                  expected = fi costs.Cost_model.save;
                  tolerance_pct = 1.0;
                };
                {
                  model;
                  name = Printf.sprintf "Table III restore %s" cls_name;
                  measured = span_mean hc_events ("arm.restore." ^ cls_name);
                  expected = fi costs.Cost_model.restore;
                  tolerance_pct = 1.0;
                };
              ])
            Reg_class.full_world_switch
      in
      mix_checks @ lat_checks @ table3_checks)
    models

let pp_checks ppf checks =
  let ok, bad = List.partition check_ok checks in
  let line c =
    Format.fprintf ppf "%-6s %-14s %-40s %12.1f %12.1f (tol %.0f%%)@\n"
      (if check_ok c then "ok" else "FAIL")
      c.model c.name c.measured c.expected c.tolerance_pct
  in
  Format.fprintf ppf "%-6s %-14s %-40s %12s %12s@\n" "" "model" "check"
    "measured" "expected";
  List.iter line ok;
  List.iter line bad;
  Format.fprintf ppf "%d/%d checks within tolerance@\n" (List.length ok)
    (List.length checks)
