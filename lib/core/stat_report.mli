(** Session-level exit accounting and the trace-vs-analytic crosscheck.

    [of_session] folds the cells recorded by the live {!Observe} session
    into an {!Armvirt_obs.Accounting.t} — the data behind `armvirt stat`.

    [crosscheck] is the validation the observability layer owes the
    paper reproduction: it drives every hypervisor model's Table I
    operations under a private tracer and compares what the {e trace}
    says against what the {e analytic} cost model predicts.

    Three families of checks, with their documented tolerances:

    - {b Exit counts} (tolerance 0%): the per-reason exit-marker counts
      of a full microbenchmark suite must be exact multiples of the
      iteration count — the Figure 4-style exit mix is structural, not
      statistical, in a deterministic simulator.
    - {b Table III reconstruction} (tolerance 1%): mean durations of the
      [arm.save.<class>]/[arm.restore.<class>] spans in a traced KVM ARM
      hypercall must equal {!Armvirt_arch.Cost_model.arm_default}'s
      register-class costs (the model plays them back exactly; 1% covers
      integer rounding of means).
    - {b Hypercall latency} (1% vs the composed path costs, 5% vs
      {!Paper_data.table2}): the exit-marker → entry-marker distance of a
      traced hypercall must equal the sum of the analytic path terms,
      and — after adding the guest-side issue cost the marker excludes —
      land within 5% of the paper's published cycle count. *)

val of_session : unit -> Armvirt_obs.Accounting.t
(** Accounting over {!Observe.processes} of the current session. *)

type check = {
  model : string;  (** e.g. ["KVM ARM"], as in the migrate configs. *)
  name : string;  (** What was compared. *)
  measured : float;  (** Trace-derived value. *)
  expected : float;  (** Analytic (or paper) value. *)
  tolerance_pct : float;
}

val check_ok : check -> bool
(** Relative error within [tolerance_pct] (expected 0 requires
    measured 0). *)

val crosscheck : ?iterations:int -> unit -> check list
(** Runs the traced suites on all five hypervisor models ([iterations]
    defaults to 8) and returns every comparison made. *)

val pp_checks : Format.formatter -> check list -> unit
(** One line per check, [ok]/[FAIL] tagged, failures last. *)
