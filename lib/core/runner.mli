(** Parallel, memoizing experiment runner.

    Every paper artifact ([table2], [fig4], [vhe], …) is a set of fully
    independent simulation cells: each cell builds its own
    {!Armvirt_engine.Sim.t} world (see {!Platform}), so cells share no
    mutable state and can run on separate OCaml 5 domains. {!map} fans a
    list of such cells out across a [Domain.spawn] pool and merges results
    back {e in input order}, so experiment output is byte-identical
    regardless of the parallelism level — determinism is preserved by
    construction, not by luck.

    {!Memo} is the companion cache: identical cells recur across
    artifacts (e.g. the KVM-ARM microbenchmark column appears in both
    Table II and the VHE comparison), and a table keyed by
    [(platform, hyp, tuning, iterations)] computes each such cell once
    per process instead of once per table. *)

module Key : sig
  (** Identity of one simulation cell, used both as memo key and as the
      deterministic RNG seed source for stochastic cells. *)

  type t = private {
    platform : string;  (** e.g. ["arm"], ["arm-vhe"], ["x86"]. *)
    hyp : string;  (** e.g. ["kvm"], ["xen"], ["native"]. *)
    tuning : string;
        (** Free-form discriminator for non-stock configurations (lazy
            switching, GICv3 cost model, vAPIC, pinning…); [""] = stock. *)
    iterations : int;  (** Requested iterations; [0] = the cell's default. *)
  }

  val v :
    ?platform:string ->
    ?hyp:string ->
    ?tuning:string ->
    ?iterations:int ->
    unit ->
    t
  (** All components default to the stock value ([""] / [0]). *)

  val to_string : t -> string

  val seed : t -> int
  (** A positive seed derived (stably, FNV-1a) from the key alone. Cells
      that drive an {!Armvirt_engine.Rng} seed it from their own key, so
      a cell's stream is a function of its identity — never of which
      domain or in which order the runner happened to execute it. *)
end

val default_jobs : unit -> int
(** The [ARMVIRT_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** Sets the process-global parallelism level used when {!map} is called
    without [?jobs] (the [--jobs] CLI flag lands here). Raises
    [Invalid_argument] for values < 1. *)

val jobs : unit -> int
(** The current effective parallelism level: the last {!set_jobs} value,
    or {!default_jobs} if never set. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f cells] applies [f] to every cell, fanning the work out over
    [jobs] domains (default {!jobs} [()]), and returns the results in
    input order. With [jobs = 1] no domain is spawned and this is exactly
    [List.map]. If any [f] raises, the exception of the {e lowest-index}
    failing cell is re-raised after all domains have joined (again
    independent of scheduling). [f] must not touch shared mutable state;
    experiment cells satisfy this by building fresh simulation worlds. *)

module Memo : sig
  type 'a table
  (** A thread-safe memo table from {!Key.t} to ['a]. *)

  val create : unit -> 'a table

  val find_or_compute : 'a table -> Key.t -> (unit -> 'a) -> 'a
  (** [find_or_compute t key f] returns the cached value for [key],
      computing it with [f] on first use. [f] must be deterministic (all
      experiment cells are); under concurrent first use a duplicate
      computation may happen, but the first value stored wins and every
      caller observes that same value. *)

  val clear : 'a table -> unit
  (** Drops all entries (benchmarks clear between timed runs so later
      iterations don't measure cache hits). *)

  val hits : 'a table -> int
  val misses : 'a table -> int
  (** Cumulative lookup statistics, surviving {!clear}. *)
end
