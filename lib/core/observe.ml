module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Span = Armvirt_obs.Span
module Tracer = Armvirt_obs.Tracer
module Metrics = Armvirt_obs.Metrics
module Export = Armvirt_obs.Export

type cell = {
  label : string;
  events : Span.event list;
  dropped : int;
  metrics : Metrics.t;
}

(* One live collector per domain: the runner executes each cell on one
   domain, and [capture] scopes a collector to the cell so concurrent
   cells never share a tracer. *)
type live = {
  tracer : Tracer.t;
  cell_metrics : Metrics.t;
  mutable machines : int;
}

let live_key : live option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let default_capacity = 1 lsl 18

let enabled = ref false
let verbose_flag = ref false
let ring_capacity = ref default_capacity
let context_name = ref "run"
let map_seq = Atomic.make 0

(* Everything below the lock is shared across runner domains. *)
let lock = Mutex.create ()
let sink : cell list ref = ref [] (* newest first *)
let global = ref (Metrics.create ())

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let active () = !enabled
let set_verbose v = verbose_flag := v
let verbose () = !verbose_flag
let context () = !context_name
let next_map_seq () = Atomic.fetch_and_add map_seq 1

(* --- machine instrumentation --------------------------------------- *)

let attach live m =
  let idx = live.machines in
  live.machines <- idx + 1;
  let prefix = if idx = 0 then "" else Printf.sprintf "m%d:" idx in
  let tracer = live.tracer and metrics = live.cell_metrics in
  Machine.observe_obs m
    (Some
       (fun ~label ~cycles ~now ->
         let now = Cycles.to_int now in
         let cat = Span.of_label label in
         Tracer.complete tracer ~track:(prefix ^ "cpu") ~cat ~name:label
           ~ts:(now - cycles) ~dur:cycles;
         Metrics.incr metrics
           ~labels:[ ("category", Span.category_to_string cat) ]
           ~by:cycles "spend_cycles_total"));
  (* Counts become instants on the same cpu track: the accounting layer
     pairs exit/entry markers against it to derive exit latencies. *)
  Machine.observe_count m
    (Some
       (fun ~label ~now ->
         Tracer.instant tracer ~track:(prefix ^ "cpu") ~cat:(Span.of_label label)
           ~name:label ~ts:(Cycles.to_int now)));
  (* Park times keyed by pid so blocked spans pair correctly even when
     several processes share a display name. *)
  let parked : (int, int) Hashtbl.t = Hashtbl.create 32 in
  Sim.set_observer (Machine.sim m)
    (Some
       {
         Sim.on_spawn =
           (fun ~id:_ ~name ~at ->
             Tracer.instant tracer ~track:(prefix ^ name) ~cat:Span.Sched
               ~name:"spawn" ~ts:at;
             Metrics.incr metrics "sim_processes_spawned_total");
         on_park = (fun ~id ~name:_ ~at -> Hashtbl.replace parked id at);
         on_wake =
           (fun ~id ~name ~at ->
             match Hashtbl.find_opt parked id with
             | None -> ()
             | Some t0 ->
                 Hashtbl.remove parked id;
                 if at > t0 then
                   Tracer.complete tracer ~track:(prefix ^ name)
                     ~cat:Span.Sched ~name:"blocked" ~ts:t0 ~dur:(at - t0));
         on_contention =
           (fun ~resource ~proc ~at ~waited ->
             Tracer.complete tracer ~track:(prefix ^ proc) ~cat:Span.Sched
               ~name:("contention:" ^ resource) ~ts:at ~dur:waited;
             Metrics.observe metrics
               ~labels:[ ("resource", resource) ]
               "sim_contention_wait_cycles" (float_of_int waited));
         on_queue_depth =
           (fun ~mailbox ~at ~depth ->
             Tracer.value tracer ~track:(prefix ^ "mb:" ^ mailbox)
               ~cat:Span.Io ~name:mailbox ~ts:at ~value:depth;
             Metrics.observe metrics
               ~labels:[ ("mailbox", mailbox) ]
               "sim_mailbox_depth" (float_of_int depth));
       })

let machine_hook m =
  match Domain.DLS.get live_key with
  | None -> () (* machine built outside any captured cell: untraced *)
  | Some live -> attach live m

(* --- session lifecycle --------------------------------------------- *)

let enable ?(capacity = default_capacity) ~context () =
  locked (fun () ->
      sink := [];
      global := Metrics.create ());
  context_name := context;
  Atomic.set map_seq 0;
  ring_capacity := capacity;
  enabled := true;
  Machine.set_create_hook (Some machine_hook)

and disable () =
  enabled := false;
  Machine.set_create_hook None

let capture ~label f =
  if not !enabled then (f (), None)
  else
    match Domain.DLS.get live_key with
    | Some _ ->
        (* Nested capture (e.g. an experiment's own Runner.map inside a
           traced cell): attribute everything to the enclosing cell. *)
        (f (), None)
    | None ->
        let live =
          {
            tracer = Tracer.create ~capacity:!ring_capacity ();
            cell_metrics = Metrics.create ();
            machines = 0;
          }
        in
        Domain.DLS.set live_key (Some live);
        (* cell_wall_seconds is host-side profiling, never byte-compared *)
        (* lint: allow R2 — host-side wall-clock profiling gauge *)
        let t0 = Unix.gettimeofday () in
        let finish () = Domain.DLS.set live_key None in
        let result = try Ok (f ()) with e -> Error e in
        finish ();
        (match result with
        | Error e -> raise e
        | Ok v ->
            Metrics.set_gauge live.cell_metrics
              ~labels:[ ("cell", label) ]
              "cell_wall_seconds"
              (* lint: allow R2 — same host-side profiling gauge as above *)
              (Unix.gettimeofday () -. t0);
            ( v,
              Some
                {
                  label;
                  events = Tracer.events live.tracer;
                  dropped = Tracer.dropped live.tracer;
                  metrics = live.cell_metrics;
                } ))

let record_cells captured =
  if !enabled then
    locked (fun () ->
        Array.iter
          (function
            | None -> ()
            | Some c ->
                sink := c :: !sink;
                Metrics.merge_into ~dst:!global c.metrics)
          captured)

let cells () = locked (fun () -> List.rev !sink)

let processes () =
  List.mapi
    (fun i (c : cell) ->
      { Export.pid = i; name = c.label; events = c.events; dropped = c.dropped })
    (cells ())

let metrics () = locked (fun () -> !global)

let note_memo_hit () =
  if !enabled then
    locked (fun () -> Metrics.incr !global "runner_memo_hits_total")

let note_memo_miss () =
  if !enabled then
    locked (fun () -> Metrics.incr !global "runner_memo_misses_total")
