module Sim = Armvirt_engine.Sim
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model
module H = Armvirt_hypervisor

type t = Arm_m400 | Arm_m400_vhe | X86_r320
type hyp_id = Kvm | Xen

let all = [ Arm_m400; Arm_m400_vhe; X86_r320 ]

let name = function
  | Arm_m400 -> "ARM (HP m400, X-Gene 2.4 GHz)"
  | Arm_m400_vhe -> "ARM v8.1 VHE (modelled)"
  | X86_r320 -> "x86 (Dell r320, Xeon E5-2450 2.1 GHz)"

let num_cpus = 8

let cost = function
  | Arm_m400 -> Cost_model.Arm Cost_model.arm_default
  | Arm_m400_vhe -> Cost_model.Arm Cost_model.arm_vhe
  | X86_r320 -> Cost_model.X86 Cost_model.x86_default

let machine_with ~cost =
  let sim = Sim.create () in
  Machine.create sim ~cost ~num_cpus

let machine p = machine_with ~cost:(cost p)

let kvm_arm () = H.Kvm_arm.create (machine Arm_m400)
let kvm_arm_vhe () = H.Kvm_arm.create (machine Arm_m400_vhe)
let xen_arm ?pinning () = H.Xen_arm.create ?pinning (machine Arm_m400)
let kvm_x86 () = H.Kvm_x86.create (machine X86_r320)
let xen_x86 () = H.Xen_x86.create (machine X86_r320)

let hypervisor p id =
  match (p, id) with
  | Arm_m400, Kvm -> H.Kvm_arm.to_hypervisor (kvm_arm ())
  | Arm_m400_vhe, Kvm -> H.Kvm_arm.to_hypervisor (kvm_arm_vhe ())
  | Arm_m400, Xen -> H.Xen_arm.to_hypervisor (xen_arm ())
  | Arm_m400_vhe, Xen ->
      invalid_arg
        "Platform.hypervisor: Xen is a Type 1 hypervisor and does not set \
         E2H; VHE does not apply"
  | X86_r320, Kvm -> H.Kvm_x86.to_hypervisor (kvm_x86 ())
  | X86_r320, Xen -> H.Xen_x86.to_hypervisor (xen_x86 ())

let native p = H.Native.to_hypervisor (H.Native.create (machine p))
