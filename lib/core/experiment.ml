module Cycles = Armvirt_engine.Cycles
module H = Armvirt_hypervisor
module W = Armvirt_workloads
module Microbench = W.Microbench
module Netperf = W.Netperf
module App_model = W.App_model
module Workload = W.Workload

type quad_f = {
  q_kvm_arm : float option;
  q_xen_arm : float option;
  q_kvm_x86 : float option;
  q_xen_x86 : float option;
}

(* --- runner plumbing ----------------------------------------------- *)

(* Every experiment below is a set of independent cells, each building
   its own simulated machine (fresh Sim world, fresh RNG), handed to
   Runner.map for the domain fan-out. Cells that recur across artifacts
   (the microbenchmark columns) go through a shared memo table. *)

let platform_id = function
  | Platform.Arm_m400 -> "arm"
  | Platform.Arm_m400_vhe -> "arm-vhe"
  | Platform.X86_r320 -> "x86"

let hyp_id_string = function Platform.Kvm -> "kvm" | Platform.Xen -> "xen"

let micro_memo : (string * int) list Runner.Memo.table = Runner.Memo.create ()

let reset_memo () = Runner.Memo.clear micro_memo

let memo_stats () =
  (Runner.Memo.hits micro_memo, Runner.Memo.misses micro_memo)

let micro_rows ?iterations hyp =
  Microbench.to_rows (Microbench.run ?iterations hyp)

(* One memoized microbenchmark column. [build] must construct a fresh
   hypervisor (and simulation world); the key must identify the build
   uniquely — stock cells use (platform, hyp), ablations add [tuning]. *)
let micro_cell ?iterations ?(tuning = "") ~platform ~hyp build =
  let key =
    Runner.Key.v ~platform ~hyp ~tuning
      ~iterations:(Option.value iterations ~default:0) ()
  in
  Runner.Memo.find_or_compute micro_memo key (fun () ->
      micro_rows ?iterations (build ()))

let micro_stock ?iterations p id =
  micro_cell ?iterations ~platform:(platform_id p) ~hyp:(hyp_id_string id)
    (fun () -> Platform.hypervisor p id)

(* Deterministic per-cell RNG seed: a function of the cell's identity
   alone, never of which domain or in which order it ran. *)
let cell_seed ?platform ?hyp ?tuning () =
  Runner.Key.seed (Runner.Key.v ?platform ?hyp ?tuning ())

let chunks n list =
  let rec go acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if k = 1 then go (List.rev (x :: current) :: acc) [] n rest
        else go acc (x :: current) (k - 1) rest
  in
  go [] [] n list

(* --- table2 ------------------------------------------------------- *)

type table2_row = { micro : string; measured : Paper_data.quad }

let table2 ?iterations () =
  let columns =
    Runner.map
      (fun (p, id) -> micro_stock ?iterations p id)
      [
        (Platform.Arm_m400, Platform.Kvm);
        (Platform.Arm_m400, Platform.Xen);
        (Platform.X86_r320, Platform.Kvm);
        (Platform.X86_r320, Platform.Xen);
      ]
  in
  match columns with
  | [ kvm_arm; xen_arm; kvm_x86; xen_x86 ] ->
      List.map
        (fun (name, ka) ->
          let find rows = List.assoc name rows in
          {
            micro = name;
            measured =
              {
                Paper_data.kvm_arm = ka;
                xen_arm = find xen_arm;
                kvm_x86 = find kvm_x86;
                xen_x86 = find xen_x86;
              };
          })
        kvm_arm
  | _ -> assert false

(* --- table3 ------------------------------------------------------- *)

let table3 () =
  List.map
    (fun (cls, save, restore) ->
      (Armvirt_arch.Reg_class.to_string cls, save, restore))
    (H.Kvm_arm.hypercall_breakdown (Platform.kvm_arm ()))

(* --- table5 ------------------------------------------------------- *)

let table5 ?transactions () =
  Runner.map
    (fun (label, build) -> (label, Netperf.run_tcp_rr ?transactions (build ())))
    [
      ("Native", fun () -> Platform.native Arm_m400);
      ("KVM", fun () -> Platform.hypervisor Arm_m400 Kvm);
      ("Xen", fun () -> Platform.hypervisor Arm_m400 Xen);
    ]

(* --- fig4 --------------------------------------------------------- *)

type fig4_row = { workload : string; values : quad_f }

let fig4_one (p : Platform.t) (id : Platform.hyp_id) workload_name =
  (* The paper's missing data point: Apache crashed Dom0 on Xen x86. *)
  if p = Platform.X86_r320 && id = Platform.Xen && workload_name = "Apache"
  then None
  else begin
    let hyp = Platform.hypervisor p id in
    match workload_name with
    | "TCP_RR" -> Some (Netperf.run_tcp_rr hyp).Netperf.normalized
    | "TCP_STREAM" -> Some (Netperf.tcp_stream hyp).Netperf.stream_normalized
    | "TCP_MAERTS" -> Some (Netperf.tcp_maerts hyp).Netperf.stream_normalized
    | name -> (
        match Workload.find name with
        | Some w -> Some (App_model.run w hyp).App_model.normalized
        | None -> invalid_arg ("Experiment.fig4: unknown workload " ^ name))
  end

let fig4_workloads =
  [
    "Kernbench"; "Hackbench"; "SPECjvm2008"; "TCP_RR"; "TCP_STREAM";
    "TCP_MAERTS"; "Apache"; "Memcached"; "MySQL";
  ]

let fig4_columns =
  [
    (Platform.Arm_m400, Platform.Kvm);
    (Platform.Arm_m400, Platform.Xen);
    (Platform.X86_r320, Platform.Kvm);
    (Platform.X86_r320, Platform.Xen);
  ]

let fig4 () =
  let cells =
    List.concat_map
      (fun w -> List.map (fun (p, id) -> (w, p, id)) fig4_columns)
      fig4_workloads
  in
  let values = Runner.map (fun (w, p, id) -> fig4_one p id w) cells in
  List.map2
    (fun workload row ->
      match row with
      | [ ka; xa; kx; xx ] ->
          {
            workload;
            values =
              { q_kvm_arm = ka; q_xen_arm = xa; q_kvm_x86 = kx; q_xen_x86 = xx };
          }
      | _ -> assert false)
    fig4_workloads (chunks 4 values)

(* --- vhe ---------------------------------------------------------- *)

type vhe_row = {
  operation : string;
  kvm_split : int;
  kvm_vhe : int;
  xen_baseline : int;
}

let vhe ?iterations () =
  let columns =
    Runner.map
      (fun (p, id) -> micro_stock ?iterations p id)
      [
        (Platform.Arm_m400, Platform.Kvm);
        (Platform.Arm_m400_vhe, Platform.Kvm);
        (Platform.Arm_m400, Platform.Xen);
      ]
  in
  match columns with
  | [ split; vhe; xen ] ->
      List.map
        (fun (op, kvm_split) ->
          {
            operation = op;
            kvm_split;
            kvm_vhe = List.assoc op vhe;
            xen_baseline = List.assoc op xen;
          })
        split
  | _ -> assert false

let vhe_app_workloads = [ "TCP_RR"; "Apache"; "Memcached"; "MySQL" ]

let vhe_app () =
  let normalized (p, w) =
    match w with
    | "TCP_RR" ->
        (Netperf.run_tcp_rr (Platform.hypervisor p Platform.Kvm))
          .Netperf.normalized
    | name ->
        let workload = Option.get (Workload.find name) in
        (App_model.run workload (Platform.hypervisor p Platform.Kvm))
          .App_model.normalized
  in
  let cells =
    List.concat_map
      (fun w -> [ (Platform.Arm_m400, w); (Platform.Arm_m400_vhe, w) ])
      vhe_app_workloads
  in
  let values = Runner.map normalized cells in
  List.map2
    (fun w row ->
      match row with [ split; vhe ] -> (w, split, vhe) | _ -> assert false)
    vhe_app_workloads (chunks 2 values)

(* --- irqdist ------------------------------------------------------ *)

type irqdist_row = {
  ablation_workload : string;
  single_pct : float;
  distributed_pct : float;
}

let irqdist () =
  let cell (id, w) =
    let hyp = Platform.hypervisor Platform.Arm_m400 id in
    let single = App_model.run ~irq_distribution:Single_vcpu w hyp in
    let dist = App_model.run ~irq_distribution:All_vcpus w hyp in
    {
      ablation_workload = w.Workload.name;
      single_pct = App_model.overhead_percent single;
      distributed_pct = App_model.overhead_percent dist;
    }
  in
  let rows =
    Runner.map cell
      [
        (Platform.Kvm, Workload.apache);
        (Platform.Kvm, Workload.memcached);
        (Platform.Xen, Workload.apache);
        (Platform.Xen, Workload.memcached);
      ]
  in
  match chunks 2 rows with
  | [ kvm; xen ] -> [ ("KVM ARM", kvm); ("Xen ARM", xen) ]
  | _ -> assert false

(* --- pinning ------------------------------------------------------ *)

let pinning ?iterations () =
  Runner.map
    (fun (pin, tuning, label) ->
      let rows =
        micro_cell ?iterations ~platform:"arm" ~hyp:"xen" ~tuning (fun () ->
            H.Xen_arm.to_hypervisor (Platform.xen_arm ~pinning:pin ()))
      in
      ( label,
        List.assoc "I/O Latency Out" rows,
        List.assoc "I/O Latency In" rows ))
    [
      ( H.Xen_arm.Separate,
        "pin-separate",
        "Dom0/DomU on separate PCPUs (paper config)" );
      (H.Xen_arm.Shared, "pin-shared", "Dom0/DomU sharing PCPUs");
    ]

(* --- zerocopy ----------------------------------------------------- *)

type zerocopy_row = {
  zc_config : string;
  stream_gbps : float;
  stream_norm : float;
}

(* Not runner jobs: both configurations deliberately share one simulated
   machine (only the I/O profile differs), so the cells are not
   independent and run serially. *)
let zerocopy () =
  let xen = Platform.xen_arm () in
  let base = H.Xen_arm.to_hypervisor xen in
  let copying = Netperf.tcp_stream base in
  let zc_hyp =
    { base with H.Hypervisor.io_profile = H.Xen_arm.io_profile_zero_copy xen }
  in
  let zero = Netperf.tcp_stream zc_hyp in
  [
    {
      zc_config = "Xen ARM, grant copy (measured behaviour)";
      stream_gbps = copying.Netperf.gbps;
      stream_norm = copying.Netperf.stream_normalized;
    };
    {
      zc_config = "Xen ARM, zero copy via broadcast TLBI (hypothetical)";
      stream_gbps = zero.Netperf.gbps;
      stream_norm = zero.Netperf.stream_normalized;
    };
  ]

let x86_zero_copy_break_even () =
  H.Xen_x86.zero_copy_break_even_bytes (Platform.xen_x86 ()) ~cpus:8

(* --- extension experiments ---------------------------------------- *)

let arm_hypervisor_ids = [ ("KVM ARM", Platform.Kvm); ("Xen ARM", Platform.Xen) ]

let oversub () =
  Runner.map
    (fun (name, id) ->
      ( name,
        W.Oversub.sweep
          (Platform.hypervisor Platform.Arm_m400 id)
          ~vms:[ 1; 2; 4 ] ~timeslices_ms:[ 1.0; 30.0 ] ~work_ms_per_vcpu:100.0
      ))
    arm_hypervisor_ids

let disk () =
  let cells =
    List.concat_map
      (fun (platform, device) ->
        List.map
          (fun build -> (build, device))
          [
            (fun () -> Platform.native platform);
            (fun () -> Platform.hypervisor platform Platform.Kvm);
            (fun () -> Platform.hypervisor platform Platform.Xen);
          ])
      [
        (Platform.Arm_m400, Armvirt_io.Blk_device.ssd_sata3);
        (Platform.X86_r320, Armvirt_io.Blk_device.raid5_hd);
      ]
  in
  Runner.map (fun (build, device) -> W.Diskbench.run (build ()) ~device) cells

let tail_configs =
  [
    ("native", fun () -> Platform.native Platform.Arm_m400);
    ("kvm", fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Kvm);
    ("xen", fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Xen);
  ]

let tail () =
  let loads = [ 0.3; 0.6; 0.8 ] in
  let cells =
    List.concat_map
      (fun load -> List.map (fun (h, build) -> (load, h, build)) tail_configs)
      loads
  in
  let results =
    Runner.map
      (fun (load, h, build) ->
        let seed =
          cell_seed ~platform:"arm" ~hyp:h
            ~tuning:(Printf.sprintf "tail-%.1f" load) ()
        in
        W.Tail_latency.run ~seed (build ()) ~load)
      cells
  in
  List.map2 (fun load row -> (load, row)) loads (chunks 3 results)

let coldstart () =
  Runner.map
    (fun build -> W.Coldstart.run (build ()) ~pages:8192)
    [
      (fun () -> Platform.native Platform.Arm_m400);
      (fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Kvm);
      (fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Xen);
      (fun () -> Platform.hypervisor Platform.Arm_m400_vhe Platform.Kvm);
    ]

(* GICv2 vs GICv3 vs +VHE: how much of Table II is interrupt-controller
   microarchitecture rather than hypervisor design. *)
let gicv3 () =
  let machine_of cost =
    Platform.machine_with ~cost:(Armvirt_arch.Cost_model.Arm cost)
  in
  let kvm_on cost () =
    H.Kvm_arm.to_hypervisor (H.Kvm_arm.create (machine_of cost))
  in
  let xen_on cost () =
    H.Xen_arm.to_hypervisor (H.Xen_arm.create (machine_of cost))
  in
  Runner.map
    (fun (label, hyp, tuning, build) ->
      ( label,
        micro_cell ~iterations:2 ~platform:"arm" ~hyp ~tuning build ))
    [
      ( "KVM, GICv2 (measured)", "kvm", "gicv2",
        kvm_on Armvirt_arch.Cost_model.arm_default );
      ("KVM, GICv3", "kvm", "gicv3", kvm_on Armvirt_arch.Cost_model.arm_gicv3);
      ( "KVM, GICv3 + VHE", "kvm", "gicv3-vhe",
        kvm_on Armvirt_arch.Cost_model.arm_gicv3_vhe );
      ( "Xen, GICv2 (measured)", "xen", "gicv2",
        xen_on Armvirt_arch.Cost_model.arm_default );
      ("Xen, GICv3", "xen", "gicv3", xen_on Armvirt_arch.Cost_model.arm_gicv3);
    ]

let ticks () =
  List.concat
    (Runner.map
       (fun build -> W.Timer_tick.sweep (build ()) ~hz:[ 100; 250; 1000 ])
       [
         (fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Kvm);
         (fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Xen);
         (fun () -> Platform.hypervisor Platform.Arm_m400_vhe Platform.Kvm);
       ])

type linkspeed_row = {
  ls_config : string;
  ls_wire_gbps : float;
  ls_gbps : float;
  ls_normalized : float;
}

let linkspeed () =
  let cells =
    List.concat_map
      (fun (name, id) -> List.map (fun wire -> (name, id, wire)) [ 0.94; 9.42 ])
      arm_hypervisor_ids
  in
  Runner.map
    (fun (name, id, wire) ->
      let r =
        W.Netperf.tcp_stream ~wire_gbps:wire
          (Platform.hypervisor Platform.Arm_m400 id)
      in
      {
        ls_config = name;
        ls_wire_gbps = wire;
        ls_gbps = Float.min wire r.W.Netperf.gbps;
        ls_normalized = Float.max 1.0 (wire /. r.W.Netperf.gbps);
      })
    cells

let isolation () =
  Runner.map
    (fun interference ->
      let seed =
        cell_seed ~platform:"arm" ~hyp:"kvm"
          ~tuning:(if interference then "noisy" else "isolated")
          ()
      in
      W.Isolation.run ~seed ~interference
        (Platform.hypervisor Platform.Arm_m400 Platform.Kvm))
    [ false; true ]

let guestops () =
  Runner.map
    (fun (label, build) -> (label, W.Guest_ops.measure (build ())))
    [
      ("Native", fun () -> Platform.native Platform.Arm_m400);
      ( "KVM ARM",
        fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Kvm );
      ( "Xen ARM",
        fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Xen );
      ( "KVM ARM (VHE)",
        fun () -> Platform.hypervisor Platform.Arm_m400_vhe Platform.Kvm );
      ( "KVM x86",
        fun () -> Platform.hypervisor Platform.X86_r320 Platform.Kvm );
    ]

let multiqueue () =
  let apache = Option.get (Workload.find "Apache") in
  let queue_counts = [ 1; 2; 3; 4 ] in
  let cells =
    List.concat_map
      (fun (_, id) -> List.map (fun queues -> (id, queues)) queue_counts)
      arm_hypervisor_ids
  in
  let values =
    Runner.map
      (fun (id, queues) ->
        let hyp = Platform.hypervisor Platform.Arm_m400 id in
        ( queues,
          (App_model.run ~irq_distribution:(App_model.Spread queues) apache hyp)
            .App_model.normalized ))
      cells
  in
  List.map2
    (fun (name, _) row -> (name, row))
    arm_hypervisor_ids
    (chunks (List.length queue_counts) values)

let tracereplay () =
  Runner.map
    (fun (name, id) ->
      let seed =
        cell_seed ~platform:"arm" ~hyp:(hyp_id_string id) ~tuning:"tracereplay"
          ()
      in
      (name, W.Trace_replay.run ~seed (Platform.hypervisor Platform.Arm_m400 id)))
    arm_hypervisor_ids

type twodwalk_row = {
  tw_config : string;
  tw_walk_accesses : int;
  tw_walk_cycles : int;
  tw_overhead_pct_at_1_miss_per_1k : float;
}

let twodwalk () =
  let module Stage1 = Armvirt_mem.Stage1 in
  let module Stage2 = Armvirt_mem.Stage2 in
  let module Addr = Armvirt_mem.Addr in
  let dram_access = 180 (* cycles per walker memory access, L2-missing *) in
  (* Build a small guest address space and back everything in stage-2. *)
  let stage1 = Stage1.create ~table_base_ipa_page:0x9000 in
  Stage1.map stage1 ~va_page:0x12345 ~ipa_page:0x400;
  let stage2 = Stage2.create () in
  List.iter
    (fun ipa_page -> Stage2.map stage2 ~ipa_page ~pa_page:(0x80000 + ipa_page)
        Stage2.Read_write)
    (0x400 :: Stage1.table_pages stage1);
  let _, accesses =
    Stage1.walk_2d stage1 stage2 (Addr.va (0x12345 * Addr.page_size))
  in
  let row tw_config tw_walk_accesses =
    let tw_walk_cycles = tw_walk_accesses * dram_access in
    {
      tw_config;
      tw_walk_accesses;
      tw_walk_cycles;
      (* One miss per 10,000 instructions at IPC 1 — a typical data-TLB
         miss rate for server workloads. *)
      tw_overhead_pct_at_1_miss_per_1k =
        float_of_int tw_walk_cycles /. 10_000.0 *. 100.0;
    }
  in
  [
    row "Native (stage-1 only)" Stage1.native_walk_accesses;
    row "Any hypervisor (2D walk)" accesses;
    row "VHE (unchanged: hardware cost)" accesses;
  ]

let x86_machine_with hw =
  Platform.machine_with ~cost:(Armvirt_arch.Cost_model.X86 hw)

let x86_vapic_hw =
  { Armvirt_arch.Cost_model.x86_default with Armvirt_arch.Cost_model.vapic = true }

let vapic () =
  Runner.map
    (fun (label, hyp, tuning, build) ->
      ( label,
        micro_cell ~iterations:2 ~platform:"x86" ~hyp ~tuning build ))
    [
      ( "KVM x86 (E5-2450, no vAPIC)", "kvm", "",
        fun () -> Platform.hypervisor Platform.X86_r320 Platform.Kvm );
      ( "KVM x86 + vAPIC", "kvm", "vapic",
        fun () ->
          H.Kvm_x86.to_hypervisor (H.Kvm_x86.create (x86_machine_with x86_vapic_hw))
      );
      ( "Xen x86 (E5-2450, no vAPIC)", "xen", "",
        fun () -> Platform.hypervisor Platform.X86_r320 Platform.Xen );
      ( "Xen x86 + vAPIC", "xen", "vapic",
        fun () ->
          H.Xen_x86.to_hypervisor (H.Xen_x86.create (x86_machine_with x86_vapic_hw))
      );
    ]

let vapic_apps_workloads = [ "Apache"; "Memcached"; "MySQL" ]

let vapic_apps () =
  let normalized hyp name =
    (App_model.run (Option.get (Workload.find name)) hyp).App_model.normalized
  in
  let cells =
    List.concat_map
      (fun name -> [ (name, `Stock); (name, `Vapic) ])
      vapic_apps_workloads
  in
  let values =
    Runner.map
      (fun (name, config) ->
        let hyp =
          match config with
          | `Stock -> Platform.hypervisor Platform.X86_r320 Platform.Kvm
          | `Vapic ->
              H.Kvm_x86.to_hypervisor
                (H.Kvm_x86.create (x86_machine_with x86_vapic_hw))
        in
        normalized hyp name)
      cells
  in
  List.map2
    (fun name row ->
      match row with
      | [ stock; vapic ] -> (name, stock, vapic)
      | _ -> assert false)
    vapic_apps_workloads (chunks 2 values)

let crosscall () =
  Runner.map
    (fun build -> W.Crosscall.run (build ()))
    [
      (fun () -> Platform.native Platform.Arm_m400);
      (fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Kvm);
      (fun () -> Platform.hypervisor Platform.Arm_m400 Platform.Xen);
      (fun () -> Platform.hypervisor Platform.Arm_m400_vhe Platform.Kvm);
      (fun () -> Platform.hypervisor Platform.X86_r320 Platform.Kvm);
      (fun () -> Platform.hypervisor Platform.X86_r320 Platform.Xen);
    ]

let lazyswitch () =
  let kvm_with tuning () =
    H.Kvm_arm.to_hypervisor
      (H.Kvm_arm.create ~tuning (Platform.machine Platform.Arm_m400))
  in
  let stock = H.Kvm_arm.default_tuning in
  Runner.map
    (fun (label, tuning, build) ->
      ( label,
        micro_cell ~iterations:2 ~platform:"arm" ~hyp:"kvm" ~tuning build ))
    [
      ("stock (paper's KVM)", "lazy-none", kvm_with stock);
      ( "lazy FP", "lazy-fp",
        kvm_with { stock with H.Kvm_arm.lazy_fp = true } );
      ( "lazy VGIC", "lazy-vgic",
        kvm_with { stock with H.Kvm_arm.lazy_vgic = true } );
      ( "lazy FP + VGIC", "lazy-fp-vgic",
        kvm_with { stock with H.Kvm_arm.lazy_fp = true; lazy_vgic = true } );
      ( "VHE (for reference)", "lazy-vhe-ref",
        fun () -> Platform.hypervisor Platform.Arm_m400_vhe Platform.Kvm );
    ]

type consolidation_row = {
  cons_config : string;
  cons_vms : int;
  cons_per_vm_ops : float;
  cons_aggregate_ops : float;
  cons_bottleneck : string;
}

(* N memcached VMs per host. Each VM's own ceiling comes from the Fig. 4
   model (VCPU0-bound); the host-side ceiling is the backend: KVM runs
   one vhost thread per VM (scales to the host's 4 service cores), Xen
   funnels all VMs through the single-threaded netback in Dom0. *)
let consolidation () =
  let w = Workload.memcached in
  let per_unit_ops = 10_000.0 in
  let host_cores = 4.0 in
  let arm_hz = 2.4e9 in
  let row (name, id, vms) =
    let hyp = Platform.hypervisor Platform.Arm_m400 id in
    let p = hyp.Armvirt_hypervisor.Hypervisor.io_profile in
    let verdict = App_model.run w hyp in
    (* One VM's achievable rate (units/s), from the Figure 4 model. *)
    let native_units = arm_hz /. (w.Workload.total_cycles /. 4.0) in
    let per_vm_units = native_units /. verdict.App_model.normalized in
    (* Host backend demand per unit of work. *)
    let backend_per_unit =
      (w.Workload.packets_rx
      *. float_of_int
           (Armvirt_hypervisor.Io_profile.total_rx_packet_cost p ~bytes:150))
      +. (w.Workload.packets_tx
         *. float_of_int
              (Armvirt_hypervisor.Io_profile.total_tx_packet_cost p ~bytes:150))
    in
    let backend_threads =
      if p.Armvirt_hypervisor.Io_profile.zero_copy then
        Float.min (float_of_int vms) host_cores (* one vhost per VM *)
      else 1.0 (* netback: single thread per bridge *)
    in
    let backend_units_ceiling =
      if backend_per_unit = 0.0 then infinity
      else arm_hz *. backend_threads /. backend_per_unit
    in
    (* The N VMs share the 4 guest PCPUs: aggregate compute is bounded
       by the pool divided by each unit's total demand (native work plus
       the guest-side virtualization surcharge). *)
    let compute_units_ceiling =
      host_cores *. arm_hz
      /. (w.Workload.total_cycles +. verdict.App_model.added_cycles)
    in
    let demanded = float_of_int vms *. per_vm_units in
    let aggregate_units =
      Float.min demanded (Float.min backend_units_ceiling compute_units_ceiling)
    in
    {
      cons_config = name;
      cons_vms = vms;
      cons_per_vm_ops =
        aggregate_units /. float_of_int vms *. per_unit_ops /. 1e3;
      cons_aggregate_ops = aggregate_units *. per_unit_ops /. 1e3;
      cons_bottleneck =
        (if aggregate_units >= demanded then
           verdict.App_model.bottleneck ^ " (per VM)"
         else if backend_units_ceiling < compute_units_ceiling then
           "host backend (netback)"
         else "guest CPU pool");
    }
  in
  Runner.map row
    (List.concat_map
       (fun vms ->
         [ ("KVM ARM", Platform.Kvm, vms); ("Xen ARM", Platform.Xen, vms) ])
       [ 1; 2; 4; 8 ])

type structural_row = {
  st_config : string;
  st_metric : string;
  st_structural : float;
  st_analytic : float;
  st_agreement_pct : float;
}

let structural () =
  let row st_config st_metric st_structural st_analytic =
    {
      st_config;
      st_metric;
      st_structural;
      st_analytic;
      st_agreement_pct = st_structural /. st_analytic *. 100.0;
    }
  in
  let rr name build () =
    let s = Armvirt_system.Rr_system.run ~transactions:80 (build ()) in
    let a = Netperf.run_tcp_rr ~transactions:80 (build ()) in
    row name "TCP_RR us/trans" s.Armvirt_system.Rr_system.time_per_trans_us
      a.Netperf.time_per_trans_us
  in
  let stream name build () =
    let s = Armvirt_system.Stream_system.run ~frames:2000 (build ()) in
    let a = Netperf.tcp_stream (build ()) in
    row name "TCP_STREAM Gb/s" s.Armvirt_system.Stream_system.gbps
      a.Netperf.gbps
  in
  let hackbench name id () =
    let s =
      Armvirt_system.Hackbench_system.run
        (Platform.hypervisor Platform.Arm_m400 id)
    in
    let a =
      (App_model.run
         (Option.get (Workload.find "Hackbench"))
         (Platform.hypervisor Platform.Arm_m400 id))
        .App_model.normalized
    in
    row name "Hackbench normalized"
      s.Armvirt_system.Hackbench_system.normalized a
  in
  let native () = Platform.native Platform.Arm_m400 in
  let kvm () = Platform.hypervisor Platform.Arm_m400 Platform.Kvm in
  let xen () = Platform.hypervisor Platform.Arm_m400 Platform.Xen in
  Runner.map
    (fun cell -> cell ())
    [
      rr "Native" native;
      rr "KVM ARM" kvm;
      rr "Xen ARM" xen;
      stream "KVM ARM" kvm;
      stream "Xen ARM" xen;
      hackbench "KVM ARM" Platform.Kvm;
      hackbench "Xen ARM" Platform.Xen;
    ]

(* --- migrate ------------------------------------------------------ *)

let migrate_configs =
  [
    ("KVM ARM (VHE)", Platform.Arm_m400_vhe, Platform.Kvm);
    ("KVM ARM", Platform.Arm_m400, Platform.Kvm);
    ("Xen ARM", Platform.Arm_m400, Platform.Xen);
    ("KVM x86", Platform.X86_r320, Platform.Kvm);
    ("Xen x86", Platform.X86_r320, Platform.Xen);
  ]

let migrate ?plan () =
  Runner.map
    (fun (name, p, id) ->
      (name, W.Migration.run ?plan (Platform.hypervisor p id)))
    migrate_configs

(* --- fleet --------------------------------------------------------- *)

module Fleet = Armvirt_fleet

let default_fleet_mix = [ (Fleet.Descriptor.synthetic, 1) ]

let fleet_seed p id scenario =
  cell_seed ~platform:(platform_id p) ~hyp:(hyp_id_string id)
    ~tuning:("fleet-" ^ scenario) ()

let fleet_boot_storm ?(vms = 64) ?(mix = default_fleet_mix) () =
  Runner.map
    (fun (name, p, id) ->
      let seed = fleet_seed p id "boot-storm" in
      ( name,
        Fleet.Scenario.boot_storm ~seed
          (Platform.hypervisor p id)
          (Fleet.Descriptor.v ~vms mix) ))
    migrate_configs

let fleet_churn ?(vms = 32) ?(mix = default_fleet_mix) () =
  Runner.map
    (fun (name, p, id) ->
      let seed = fleet_seed p id "churn" in
      ( name,
        Fleet.Scenario.churn ~seed
          (Platform.hypervisor p id)
          (Fleet.Descriptor.v ~vms mix) ))
    migrate_configs

let fleet_noisy ?(sizes = [ 1; 2; 4; 8; 16 ]) ?(mix = default_fleet_mix) () =
  Runner.map
    (fun (name, p, id, vms) ->
      (* The seed deliberately ignores [vms]: every fleet size replays
         the same victim request stream, so the p99-vs-size curve
         isolates scheduler interference. *)
      let seed = fleet_seed p id "noisy" in
      ( name,
        vms,
        Fleet.Scenario.noisy_neighbor ~seed
          (Platform.hypervisor p id)
          (Fleet.Descriptor.v ~vms mix) ))
    (List.concat_map
       (fun (name, p, id) -> List.map (fun n -> (name, p, id, n)) sizes)
       migrate_configs)

let lrs () =
  Runner.map
    (fun (name, id) ->
      ( name,
        W.Lr_sensitivity.sweep
          (Platform.hypervisor Platform.Arm_m400 id)
          ~lrs:[ 1; 2; 4; 8; 16 ] ~burst_size:12 ~bursts:1000 ))
    arm_hypervisor_ids

(* --- cluster ------------------------------------------------------- *)

module Vswitch = Armvirt_vswitch

let cluster_matrix ?(vms = 4) ?(spec = Vswitch.Topology.Pair) () =
  Runner.map
    (fun (name, p, id) ->
      (name, W.Cluster.run_matrix ~vms ~spec (Platform.hypervisor p id)))
    migrate_configs

let cluster_chain ?(requests = 400) ?(spec = Vswitch.Topology.Pair) () =
  Runner.map
    (fun (name, p, id) ->
      (name, W.Cluster.run_chain ~requests ~spec (Platform.hypervisor p id)))
    migrate_configs

let cluster_loadgen ?(vms = 16) ?(spec = Vswitch.Topology.Pair) ?loads () =
  Runner.map
    (fun (name, p, id) ->
      (* The seed is a function of the cell identity only — never of
         the offered load: the whole sweep replays one arrival
         skeleton, which is what makes each latency curve monotone. *)
      let seed =
        cell_seed ~platform:(platform_id p) ~hyp:(hyp_id_string id)
          ~tuning:"cluster-loadgen" ()
      in
      ( name,
        W.Cluster.run_loadgen ~seed ~vms ~spec ?loads
          (Platform.hypervisor p id) ))
    migrate_configs
