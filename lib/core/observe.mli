(** Tracing session glue: connects the {!Armvirt_obs} primitives to the
    engine, machines and runner.

    A session is process-global ({!enable} … {!disable}); within it, the
    runner wraps each simulation cell in {!capture}, which gives the
    cell a private tracer and metric registry on its executing domain
    (via [Domain.DLS]). A {!Armvirt_arch.Machine.set_create_hook} hook
    attaches both to every machine the cell builds: [spend] calls become
    complete spans on the machine's ["cpu"] track (categorised with
    {!Armvirt_obs.Span.of_label}), and an engine observer
    ({!Armvirt_engine.Sim.set_observer}) records process spawns, blocked
    intervals, resource contention and mailbox depths on per-process
    tracks. {!record_cells} then merges finished cells back {e in input
    order}, so exported traces are byte-identical at any [--jobs]
    level. *)

type cell = {
  label : string;  (** ["<context>#<map>.<index>"], from the runner. *)
  events : Armvirt_obs.Span.event list;
  dropped : int;
  metrics : Armvirt_obs.Metrics.t;
}

val enable : ?capacity:int -> context:string -> unit -> unit
(** Starts a session: clears previously collected cells and metrics,
    names the session [context] (used in cell labels), bounds each
    cell's event ring at [capacity] (default 2{^18}) and installs the
    machine-creation hook. Call before any {!Runner.map}. *)

val disable : unit -> unit

val active : unit -> bool

val set_verbose : bool -> unit

val verbose : unit -> bool
(** Independent of tracing: [--verbose] prints runner metrics even for
    untraced runs. *)

val context : unit -> string

val next_map_seq : unit -> int
(** Sequence number for the next {!Runner.map} call in this session. *)

val capture : label:string -> (unit -> 'a) -> 'a * cell option
(** [capture ~label f] runs [f] with a fresh collector scoped to the
    calling domain and returns its result plus the finished cell. [None]
    when no session is active, or when nested inside another capture on
    this domain (the work is then attributed to the enclosing cell). *)

val record_cells : cell option array -> unit
(** Appends captured cells to the session — callers pass the array in
    cell input order — and merges their metrics into the session
    registry. *)

val cells : unit -> cell list
(** All recorded cells, in recorded order. *)

val processes : unit -> Armvirt_obs.Export.process list
(** The recorded cells as exporter input: [pid] = record index. *)

val metrics : unit -> Armvirt_obs.Metrics.t
(** The session-wide merged registry (includes per-cell metrics plus
    memo counters). *)

val note_memo_hit : unit -> unit
val note_memo_miss : unit -> unit
(** Called by {!Runner.Memo} so cache behaviour lands in {!metrics} as
    [runner_memo_hits_total] / [runner_memo_misses_total]. *)
