type irq_state = Inactive | Pending | Active | Active_pending

(* SGIs and PPIs are banked: each CPU has its own copy of IRQs 0-31.
   SPIs are shared with a single target CPU. We key per-CPU state on
   (irq, cpu) for banked interrupts and (irq, target) for SPIs. *)
type per_irq = {
  mutable enabled : bool;
  mutable priority : int;
  mutable target : int; (* SPIs only *)
}

type t = {
  num_cpus : int;
  config : (Irq.t, per_irq) Hashtbl.t;
  state : (Irq.t * int, irq_state) Hashtbl.t;
}

let create ~num_cpus =
  if num_cpus < 1 || num_cpus > 8 then
    invalid_arg "Distributor.create: num_cpus must be in 1-8";
  { num_cpus; config = Hashtbl.create 64; state = Hashtbl.create 64 }

let num_cpus t = t.num_cpus

let config t irq =
  if not (Irq.is_valid irq) then invalid_arg "Distributor: invalid IRQ";
  match Hashtbl.find_opt t.config irq with
  | Some c -> c
  | None ->
      let c = { enabled = false; priority = 128; target = 0 } in
      Hashtbl.replace t.config irq c;
      c

let check_cpu t cpu =
  if cpu < 0 || cpu >= t.num_cpus then
    invalid_arg "Distributor: CPU index out of range"

let enable t irq = (config t irq).enabled <- true
let disable t irq = (config t irq).enabled <- false
let is_enabled t irq = (config t irq).enabled

let set_priority t irq p =
  if p < 0 || p > 255 then invalid_arg "Distributor.set_priority: 0-255";
  (config t irq).priority <- p

let set_target t irq ~cpu =
  check_cpu t cpu;
  match Irq.kind irq with
  | Irq.Spi -> (config t irq).target <- cpu
  | Irq.Sgi | Irq.Ppi ->
      invalid_arg "Distributor.set_target: SGIs and PPIs are banked per CPU"

let state t irq ~cpu =
  check_cpu t cpu;
  Option.value ~default:Inactive (Hashtbl.find_opt t.state (irq, cpu))

let set_state t irq ~cpu st =
  if st = Inactive then Hashtbl.remove t.state (irq, cpu)
  else Hashtbl.replace t.state (irq, cpu) st

let make_pending t irq ~cpu =
  match state t irq ~cpu with
  | Inactive -> set_state t irq ~cpu Pending
  | Active -> set_state t irq ~cpu Active_pending
  | Pending | Active_pending -> ()

let raise_spi t irq =
  (match Irq.kind irq with
  | Irq.Spi -> ()
  | Irq.Sgi | Irq.Ppi -> invalid_arg "Distributor.raise_spi: not an SPI");
  make_pending t irq ~cpu:(config t irq).target

let raise_ppi t irq ~cpu =
  (match Irq.kind irq with
  | Irq.Ppi -> ()
  | Irq.Sgi | Irq.Spi -> invalid_arg "Distributor.raise_ppi: not a PPI");
  check_cpu t cpu;
  make_pending t irq ~cpu

let send_sgi t irq ~from ~targets =
  (match Irq.kind irq with
  | Irq.Sgi -> ()
  | Irq.Ppi | Irq.Spi -> invalid_arg "Distributor.send_sgi: not an SGI");
  check_cpu t from;
  List.iter (fun cpu -> check_cpu t cpu; make_pending t irq ~cpu) targets

let highest_pending t ~cpu =
  check_cpu t cpu;
  (* lint: sorted — selection by (priority, lowest irq) is a total order *)
  Hashtbl.fold
    (fun (irq, c) st best ->
      let pending = st = Pending || st = Active_pending in
      if c <> cpu || (not pending) || not (config t irq).enabled then best
      else begin
        let prio = (config t irq).priority in
        match best with
        | Some (best_irq, best_prio)
          when best_prio < prio || (best_prio = prio && best_irq < irq) ->
            best
        | _ -> Some (irq, prio)
      end)
    t.state None
  |> Option.map fst

let acknowledge t ~cpu =
  match highest_pending t ~cpu with
  | None -> None
  | Some irq ->
      (match state t irq ~cpu with
      | Pending -> set_state t irq ~cpu Active
      | Active_pending -> set_state t irq ~cpu Active_pending
      | Inactive | Active -> assert false);
      Some irq

let end_of_interrupt t irq ~cpu =
  match state t irq ~cpu with
  | Active -> set_state t irq ~cpu Inactive
  | Active_pending -> set_state t irq ~cpu Pending
  | Inactive | Pending ->
      invalid_arg "Distributor.end_of_interrupt: interrupt not active"

let pending_count t ~cpu =
  check_cpu t cpu;
  (* lint: sorted — pure count, commutative *)
  Hashtbl.fold
    (fun (_, c) st acc ->
      if c = cpu && (st = Pending || st = Active_pending) then acc + 1 else acc)
    t.state 0

let pp_state ppf st =
  Format.pp_print_string ppf
    (match st with
    | Inactive -> "inactive"
    | Pending -> "pending"
    | Active -> "active"
    | Active_pending -> "active+pending")
