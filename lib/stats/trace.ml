module Cycles = Armvirt_engine.Cycles
module Ring = Armvirt_obs.Ring

type event = { at : Cycles.t; label : string; cycles : int }

(* Events live in a growable ring in arrival order: [record] is
   amortized O(1), [length] is O(1), and [events] needs no reversal —
   unlike the original newest-first list representation. *)
type t = { ring : event Ring.t; mutable total : int }

let create () = { ring = Ring.create (); total = 0 }

let record t ~label ~cycles ~now =
  Ring.push t.ring { at = now; label; cycles };
  t.total <- t.total + cycles

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring

let clear t =
  Ring.clear t.ring;
  t.total <- 0

let total_cycles t = t.total

let by_label t =
  let table = Hashtbl.create 16 in
  Ring.iter
    (fun e ->
      Hashtbl.replace table e.label
        (Option.value ~default:0 (Hashtbl.find_opt table e.label) + e.cycles))
    t.ring;
  Hashtbl.fold (fun label cycles acc -> (label, cycles) :: acc) table []
  |> List.sort (fun (la, a) (lb, b) ->
         match Int.compare b a with 0 -> String.compare la lb | c -> c)

let pp_timeline ppf t =
  Ring.iter
    (fun e ->
      Format.fprintf ppf "%12s  +%-6d %s@."
        (Format.asprintf "%a" Cycles.pp e.at)
        e.cycles e.label)
    t.ring
