(** Order statistics over a sample of measurements.

    The paper reports microbenchmarks as representative cycle counts taken
    after carefully controlling variability (section IV). We keep whole
    samples and expose the estimators needed to reproduce that reporting:
    medians for tables, means and deviations for sanity checks. *)

type t
(** An immutable summary of a non-empty sample of floats. *)

val of_list : float list -> t
(** Raises [Invalid_argument] on an empty sample. *)

val of_cycles : Armvirt_engine.Cycles.t list -> t

val count : t -> int
val mean : t -> float
val median : t -> float
val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 for singleton samples. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile s p] for [p] in [0..100], by linear interpolation between
    closest ranks. Raises [Invalid_argument] for [p] outside the range. *)

val coefficient_of_variation : t -> float
(** stddev / mean; the paper's variability-control criterion maps to
    requiring this to be small for microbenchmark samples. *)

val ci95 : t -> float * float
(** A 95% confidence interval on the mean ([mean ± t·sd/√n]). For
    [n < 30] the critical value is the two-tailed Student-t quantile for
    [n-1] degrees of freedom (small microbenchmark samples would be
    overconfident under the normal approximation); for [n ≥ 30] it is
    the normal 1.96. Degenerate (point) for singletons. *)

val median_cycles : t -> Armvirt_engine.Cycles.t
(** Median rounded to a whole cycle count, for table rendering. *)

val pp : Format.formatter -> t -> unit
