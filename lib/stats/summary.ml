module Cycles = Armvirt_engine.Cycles

type t = { sorted : float array }

let of_list values =
  if values = [] then invalid_arg "Summary.of_list: empty sample";
  let sorted = Array.of_list values in
  Array.sort Float.compare sorted;
  { sorted }

let of_cycles cycles =
  of_list (List.map (fun c -> float_of_int (Cycles.to_int c)) cycles)

let count s = Array.length s.sorted

let mean s =
  Array.fold_left ( +. ) 0.0 s.sorted /. float_of_int (count s)

let percentile s p =
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: out of range";
  let n = count s in
  if n = 1 then s.sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (s.sorted.(lo) *. (1.0 -. frac)) +. (s.sorted.(hi) *. frac)
  end

let median s = percentile s 50.0

let stddev s =
  let n = count s in
  if n < 2 then 0.0
  else begin
    let m = mean s in
    let sum_sq =
      Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 s.sorted
    in
    sqrt (sum_sq /. float_of_int (n - 1))
  end

let min s = s.sorted.(0)
let max s = s.sorted.(count s - 1)

let coefficient_of_variation s =
  let m = mean s in
  if Float.equal m 0.0 then 0.0 else stddev s /. m

(* Two-tailed Student-t critical values at 95% for df = 1..29; beyond
   that the normal approximation (1.96) is within 0.3%. *)
let t_critical_95 =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045;
  |]

let ci95 s =
  let n = count s in
  let m = mean s in
  let critical =
    if n >= 2 && n < 30 then t_critical_95.(n - 2) else 1.96
  in
  let half = critical *. stddev s /. sqrt (float_of_int n) in
  (m -. half, m +. half)

let median_cycles s =
  Cycles.of_int (int_of_float (Float.round (median s)))

let pp ppf s =
  Format.fprintf ppf "n=%d median=%.1f mean=%.1f sd=%.1f min=%.1f max=%.1f"
    (count s) (median s) (mean s) (stddev s) (min s) (max s)
