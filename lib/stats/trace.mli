(** Operation timelines: a cycle-accurate ledger of everything a
    simulated path paid for.

    Attach a trace to a machine through
    [Armvirt_arch.Machine.observe] and every priced operation lands
    here with its completion time. {!pp_timeline} renders the ledger the
    way the paper's Table III renders the hypercall — ordered, with
    per-step and cumulative cycles — for any path in the library. *)

type event = {
  at : Armvirt_engine.Cycles.t;  (** Completion time of the operation. *)
  label : string;
  cycles : int;
}

type t

val create : unit -> t

val record :
  t -> label:string -> cycles:int -> now:Armvirt_engine.Cycles.t -> unit
(** The observer callback ({!Armvirt_arch.Machine.observe} compatible:
    [Machine.observe m (Some (Trace.record trace))]). *)

val events : t -> event list
(** Chronological. *)

val length : t -> int
(** O(1). *)

val clear : t -> unit

val total_cycles : t -> int
(** O(1); maintained incrementally by {!record}. *)

val by_label : t -> (string * int) list
(** Total cycles per label, descending; equal totals tie-break by label
    so the order is deterministic. *)

val pp_timeline : Format.formatter -> t -> unit
(** One line per event: completion time, step cost, label. *)
