(** Growable-array ring buffer with an optional retention cap.

    The recording substrate for {!Tracer} (and {!Armvirt_stats.Trace}):
    O(1) amortized {!push}, O(1) {!length}, chronological {!to_list}.
    Uncapped rings grow by doubling; capped rings overwrite the oldest
    element once full and count the overwrites in {!dropped}, so a trace
    that outgrows its budget degrades into "most recent N events" rather
    than unbounded memory or silent truncation. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is the maximum number of retained elements; omitted means
    unbounded. Raises [Invalid_argument] if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Appends. At the capacity cap, the oldest element is overwritten and
    {!dropped} is incremented. *)

val length : 'a t -> int
(** Elements currently retained. O(1). *)

val dropped : 'a t -> int
(** Elements overwritten because the ring was at capacity. *)

val capacity : 'a t -> int option

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)

val to_list : 'a t -> 'a list
(** Oldest first (chronological for a tracer pushing in time order). *)

val clear : 'a t -> unit
(** Drops all elements, releases storage and resets {!dropped}. *)
