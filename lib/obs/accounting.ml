(* Exit accounting: reduce recorded traces into kvm_stat-style tables.
   Pure and deterministic — see accounting.mli for the label grammar. *)

(* Compatibility aliases for the typed builders in Marker; exit_label
   inherits Marker's validation, so an unknown mnemonic now raises
   instead of silently minting an unparseable row key. *)
let exit_label ~hyp ~reason ~pcpu = Marker.exit_name ~hyp ~reason ~pcpu

let entry_label ?domid ~hyp ~pcpu () = Marker.entry ?domid ~hyp ~pcpu ()

type marker =
  | Exit of { hyp : string; reason : string; pcpu : int }
  | Entry of { hyp : string; pcpu : int; domid : int option }
  | Op of { hyp : string; op : string }

let int_after prefix s =
  let np = String.length prefix in
  if String.length s > np && String.sub s 0 np = prefix then
    int_of_string_opt (String.sub s np (String.length s - np))
  else None

let parse_label label =
  match String.index_opt label '.' with
  | None -> None
  | Some dot -> (
      let hyp = String.sub label 0 dot in
      let rest = String.sub label (dot + 1) (String.length label - dot - 1) in
      match String.split_on_char '/' rest with
      | [ "exit"; reason; p ] -> (
          match int_after "p" p with
          | Some pcpu -> Some (Exit { hyp; reason; pcpu })
          | None -> Some (Op { hyp; op = rest }))
      | [ "entry"; p ] -> (
          match int_after "p" p with
          | Some pcpu -> Some (Entry { hyp; pcpu; domid = None })
          | None -> Some (Op { hyp; op = rest }))
      | [ "entry"; p; d ] -> (
          match (int_after "p" p, int_after "d" d) with
          | Some pcpu, Some domid -> Some (Entry { hyp; pcpu; domid = Some domid })
          | _ -> Some (Op { hyp; op = rest }))
      | _ -> Some (Op { hyp; op = rest }))

(* Log2 histograms, same bucket geometry as Metrics.observe: a sample v
   lands at the smallest power-of-two upper bound >= v. *)

type hist = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let mean h = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

let bucket_bound v =
  if v <= 1 then 1
  else
    let rec go b = if b >= v then b else go (b * 2) in
    go 2

type hist_acc = {
  mutable n : int;
  mutable total : int;
  mutable lo : int;
  mutable hi : int;
  tbl : (int, int ref) Hashtbl.t;
}

let hist_acc () = { n = 0; total = 0; lo = max_int; hi = 0; tbl = Hashtbl.create 8 }

let hist_add acc v =
  acc.n <- acc.n + 1;
  acc.total <- acc.total + v;
  if v < acc.lo then acc.lo <- v;
  if v > acc.hi then acc.hi <- v;
  let b = bucket_bound v in
  match Hashtbl.find_opt acc.tbl b with
  | Some r -> incr r
  | None -> Hashtbl.add acc.tbl b (ref 1)

let hist_finish acc =
  {
    count = acc.n;
    sum = acc.total;
    min = (if acc.n = 0 then 0 else acc.lo);
    max = acc.hi;
    buckets =
      Hashtbl.fold (fun b r l -> (b, !r) :: l) acc.tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
  }

(* Lane attribution. *)

type lane = Guest | Hypervisor

let lane_to_string = function Guest -> "guest" | Hypervisor -> "hypervisor"

let guest_needles =
  [ "vm_processing"; "native_server"; "guest"; "virq_complete"; "eoi_vapic" ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i j = j = nn || (haystack.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = i + nn <= nh && (at i 0 || go (i + 1)) in
  nn = 0 || go 0

let lane_of_label label =
  if List.exists (contains (String.lowercase_ascii label)) guest_needles then
    Guest
  else Hypervisor

(* Reduction. *)

type vm_stats = {
  cell : string;
  machine : string;
  hyp : string;
  exits : (string * int * hist) list;
  exits_per_pcpu : (int * (string * int * hist) list) list;
  entries : int;
  entries_per_domain : (int * int) list;
  ops : (string * int) list;
  guest_cycles : int;
  hyp_cycles : int;
}

type t = {
  vms : vm_stats list;
  total_guest : int;
  total_hyp : int;
  total_exits : int;
}

(* A "cpu" track is "cpu" (machine 0) or "m<N>:cpu". *)
let machine_of_track track =
  if track = "cpu" then Some "m0"
  else
    match String.index_opt track ':' with
    | Some i
      when String.sub track (i + 1) (String.length track - i - 1) = "cpu"
           && i > 1 && track.[0] = 'm' ->
        Some (String.sub track 0 i)
    | _ -> None

(* Per-(machine) mutable accumulator while scanning one cell. *)
type macc = {
  mutable m_entries : (string, int ref) Hashtbl.t;  (* hyp -> entries *)
  dom_entries : (string * int, int ref) Hashtbl.t;
      (* (hyp, domid) -> entries carrying a d<domid> suffix *)
  exit_counts : (string * string * int, int ref) Hashtbl.t;
      (* (hyp, reason, pcpu) -> count *)
  latencies : (string * string * int, hist_acc) Hashtbl.t;
  pending : (string * int, string * int) Hashtbl.t;
      (* (hyp, pcpu) -> (reason, exit ts) for the exit awaiting re-entry *)
  op_counts : (string * string, int ref) Hashtbl.t;  (* (hyp, op) -> n *)
  mutable g_cycles : int;
  mutable h_cycles : int;
}

let macc () =
  {
    m_entries = Hashtbl.create 4;
    dom_entries = Hashtbl.create 16;
    exit_counts = Hashtbl.create 16;
    latencies = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    op_counts = Hashtbl.create 16;
    g_cycles = 0;
    h_cycles = 0;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let scan_cell (p : Export.process) =
  let machines : (string, macc) Hashtbl.t = Hashtbl.create 4 in
  let get_macc m =
    match Hashtbl.find_opt machines m with
    | Some a -> a
    | None ->
        let a = macc () in
        Hashtbl.add machines m a;
        a
  in
  List.iter
    (fun (e : Span.event) ->
      match machine_of_track e.Span.track with
      | None -> ()
      | Some m -> (
          let a = get_macc m in
          match e.Span.kind with
          | Span.Complete dur -> (
              match lane_of_label e.Span.name with
              | Guest -> a.g_cycles <- a.g_cycles + dur
              | Hypervisor -> a.h_cycles <- a.h_cycles + dur)
          | Span.Value _ -> ()
          | Span.Instant -> (
              match parse_label e.Span.name with
              | None -> ()
              | Some (Exit { hyp; reason; pcpu }) ->
                  bump a.exit_counts (hyp, reason, pcpu);
                  (* A second exit before any entry replaces the pending
                     one: the first never re-entered (e.g. the VCPU
                     blocked), so it contributes no latency sample. *)
                  Hashtbl.replace a.pending (hyp, pcpu) (reason, e.Span.ts)
              | Some (Entry { hyp; pcpu; domid }) -> (
                  bump a.m_entries hyp;
                  (match domid with
                  | Some d -> bump a.dom_entries (hyp, d)
                  | None -> ());
                  match Hashtbl.find_opt a.pending (hyp, pcpu) with
                  | None -> ()  (* entry without a marked exit: no sample *)
                  | Some (reason, ts0) ->
                      Hashtbl.remove a.pending (hyp, pcpu);
                      let key = (hyp, reason, pcpu) in
                      let acc =
                        match Hashtbl.find_opt a.latencies key with
                        | Some acc -> acc
                        | None ->
                            let acc = hist_acc () in
                            Hashtbl.add a.latencies key acc;
                            acc
                      in
                      hist_add acc (e.Span.ts - ts0))
              | Some (Op { hyp; op }) -> bump a.op_counts (hyp, op))))
    p.Export.events;
  machines

let by_count_then_reason (ra, ca, _) (rb, cb, _) =
  match Int.compare cb ca with 0 -> String.compare ra rb | c -> c

(* Rows for one (machine accumulator, hyp): aggregated over PCPUs and
   broken out per PCPU. *)
let exit_rows (a : macc) hyp =
  let keys =
    Hashtbl.fold (fun (h, r, p) c l -> if h = hyp then (r, p, !c) :: l else l)
      a.exit_counts []
    |> List.sort compare
  in
  let reasons = List.sort_uniq String.compare (List.map (fun (r, _, _) -> r) keys) in
  let pcpus = List.sort_uniq Int.compare (List.map (fun (_, p, _) -> p) keys) in
  let hist_for r p =
    match Hashtbl.find_opt a.latencies (hyp, r, p) with
    | Some acc -> hist_finish acc
    | None -> hist_finish (hist_acc ())
  in
  let merge_hists r ps =
    let acc = hist_acc () in
    (* Rebuild the aggregate from per-pcpu accumulators: totals add and
       buckets add, so fold them in ascending pcpu order. *)
    List.iter
      (fun p ->
        match Hashtbl.find_opt a.latencies (hyp, r, p) with
        | None -> ()
        | Some src ->
            acc.n <- acc.n + src.n;
            acc.total <- acc.total + src.total;
            if src.n > 0 && src.lo < acc.lo then acc.lo <- src.lo;
            if src.hi > acc.hi then acc.hi <- src.hi;
            Hashtbl.fold (fun b r' l -> (b, !r') :: l) src.tbl []
            |> List.sort (fun (x, _) (y, _) -> Int.compare x y)
            |> List.iter (fun (b, n) ->
                   match Hashtbl.find_opt acc.tbl b with
                   | Some cell -> cell := !cell + n
                   | None -> Hashtbl.add acc.tbl b (ref n)))
      ps;
    hist_finish acc
  in
  let count_of r p =
    match Hashtbl.find_opt a.exit_counts (hyp, r, p) with
    | Some c -> !c
    | None -> 0
  in
  let aggregated =
    List.map
      (fun r ->
        let total = List.fold_left (fun s p -> s + count_of r p) 0 pcpus in
        (r, total, merge_hists r pcpus))
      reasons
    |> List.sort by_count_then_reason
  in
  let per_pcpu =
    List.filter_map
      (fun p ->
        let rows =
          List.filter_map
            (fun r ->
              let c = count_of r p in
              if c = 0 then None else Some (r, c, hist_for r p))
            reasons
          |> List.sort by_count_then_reason
        in
        if rows = [] then None else Some (p, rows))
      pcpus
  in
  (aggregated, per_pcpu)

let vm_stats_of_cell (p : Export.process) =
  let machines = scan_cell p in
  let machine_ids =
    Hashtbl.fold (fun m _ l -> m :: l) machines []
    |> List.sort String.compare
  in
  List.concat_map
    (fun m ->
      let a = Hashtbl.find machines m in
      let hyps =
        Hashtbl.fold (fun (h, _, _) _ l -> h :: l) a.exit_counts []
        @ Hashtbl.fold (fun (h, _) _ l -> h :: l) a.op_counts []
        @ Hashtbl.fold (fun h _ l -> h :: l) a.m_entries []
        |> List.sort_uniq String.compare
      in
      let mk hyp exits exits_per_pcpu entries entries_per_domain ops g h =
        {
          cell = p.Export.name;
          machine = m;
          hyp;
          exits;
          exits_per_pcpu;
          entries;
          entries_per_domain;
          ops;
          guest_cycles = g;
          hyp_cycles = h;
        }
      in
      match hyps with
      | [] ->
          (* No markers (e.g. a native run): still report attribution. *)
          if a.g_cycles = 0 && a.h_cycles = 0 then []
          else [ mk "-" [] [] 0 [] [] a.g_cycles a.h_cycles ]
      | _ ->
          (* Attribute the machine's cycles to its first hypervisor row;
             in practice one machine hosts one hypervisor. *)
          List.mapi
            (fun i hyp ->
              let exits, per_pcpu = exit_rows a hyp in
              let entries =
                match Hashtbl.find_opt a.m_entries hyp with
                | Some r -> !r
                | None -> 0
              in
              let entries_per_domain =
                Hashtbl.fold
                  (fun (h, d) c l -> if h = hyp then (d, !c) :: l else l)
                  a.dom_entries []
                |> List.sort compare
              in
              let ops =
                Hashtbl.fold
                  (fun (h, op) c l -> if h = hyp then (op, !c) :: l else l)
                  a.op_counts []
                |> List.sort compare
              in
              let g, h = if i = 0 then (a.g_cycles, a.h_cycles) else (0, 0) in
              mk hyp exits per_pcpu entries entries_per_domain ops g h)
            hyps)
    machine_ids

let of_processes processes =
  let vms = List.concat_map vm_stats_of_cell processes in
  let total_guest = List.fold_left (fun s v -> s + v.guest_cycles) 0 vms in
  let total_hyp = List.fold_left (fun s v -> s + v.hyp_cycles) 0 vms in
  let total_exits =
    List.fold_left
      (fun s v -> List.fold_left (fun s (_, c, _) -> s + c) s v.exits)
      0 vms
  in
  { vms; total_guest; total_hyp; total_exits }
