(** Typed builders for {!Accounting}'s counter-label grammar.

    A marker label is a row key in [armvirt stat]: a typo does not fail
    at runtime, the row just silently vanishes from the table. These
    constructors make every label grammatical by construction — exit
    reasons and directions are variants, and free-form name parts are
    validated as lowercase identifiers ([Invalid_argument] otherwise).

    {!reason} mirrors [Armvirt_arch.Esr.exception_class] mnemonics; the
    library graph (arch depends on stats depends on obs) keeps [Esr]
    itself out of reach here, so parity is enforced by test and by the
    M1 lint pass, which links both libraries.

    The M1 pass closes the loop at call sites: string literals at
    [Machine.count] sites are re-parsed with {!Accounting.parse_label},
    and any non-literal label must be an application of one of these
    builders (or the {!Accounting.exit_label} / {!Accounting.entry_label}
    aliases). Constant operation counters like ["kvm_arm.hypercall"]
    should stay literals — zero-cost and grammar-checked at lint time;
    use {!op} only when the name is computed. *)

type reason = Wfx | Hvc | Smc | Sysreg | Iabt | Dabt | Irq

val all_reasons : reason list

val reason_to_string : reason -> string
(** The [Armvirt_arch.Esr.short_name] mnemonic. *)

val reason_of_string : string -> reason option

type dir = Rx | Tx | Drop

val exit : hyp:string -> reason:reason -> pcpu:int -> string
(** ["<hyp>.exit/<reason>/p<pcpu>"]. *)

val exit_name : hyp:string -> reason:string -> pcpu:int -> string
(** Like {!exit} for callers that already carry the mnemonic as a
    string (e.g. straight from [Esr.short_name]); raises
    [Invalid_argument] unless [reason] round-trips through
    {!reason_of_string}. *)

val entry : ?domid:int -> hyp:string -> pcpu:int -> unit -> string
(** ["<hyp>.entry/p<pcpu>"] or ["<hyp>.entry/p<pcpu>/d<domid>"]. *)

val op : hyp:string -> string -> string
(** ["<hyp>.<op>"] with [op] in [[a-z0-9_]+]. *)

val port : switch:string -> port:int -> dir -> string
(** ["vswitch.<switch>/p<port>/(rx|tx|drop)"]. *)

val flood : switch:string -> string
(** ["vswitch.<switch>/flood"]. *)

val uplink : switch:string -> uplink:int -> dir -> string
(** ["wire.<switch>-u<uplink>/(rx|tx)"]; [Drop] raises
    [Invalid_argument] — wires do not drop in the model. *)
