(** Trace exporters: Chrome trace-event JSON, CSV, and a flame-style
    cycle-attribution summary.

    All three are pure functions of their input and emit
    deterministically ordered output (events sorted by start time, spans
    before their nested children, track/category ties broken
    lexicographically), so exports from identical simulations are
    byte-identical regardless of runner parallelism. *)

type process = {
  pid : int;  (** Chrome pid; one per simulation cell. *)
  name : string;  (** Cell label, shown as the Chrome process name. *)
  events : Span.event list;
  dropped : int;  (** Events lost to the ring-buffer cap. *)
}

val chrome : Format.formatter -> process list -> unit
(** Chrome trace-event JSON (the [traceEvents] array format), loadable
    in Perfetto ({:https://ui.perfetto.dev}) or [chrome://tracing]. One
    Chrome process per simulation cell, one thread per track; complete
    spans use ["X"] events, instants ["i"], sampled values ["C"]
    counters. Timestamps are simulated cycles exported 1:1 as
    microseconds. *)

val csv : Format.formatter -> process list -> unit
(** One row per event:
    [pid,process,tid,track,ts,dur,cat,name,value]. *)

val summary : Format.formatter -> process list -> unit
(** Cycles per {!Span.category} across all processes, each broken down
    by span name, descending — the Table III/Table V style ledger for
    an arbitrary trace. *)
