type process = {
  pid : int;
  name : string;
  events : Span.event list;
  dropped : int;
}

let escape_json s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Stable event order for rendering: by start time, then longer spans
   first (so nested spans follow their parents at equal starts), then
   recording order. Exporter output is a pure function of the event
   list — identical runs yield identical bytes. *)
let ordered events =
  List.mapi (fun i e -> (i, e)) events
  |> List.stable_sort (fun (ia, a) (ib, b) ->
         match Int.compare a.Span.ts b.Span.ts with
         | 0 -> (
             match Int.compare (Span.duration b) (Span.duration a) with
             | 0 -> Int.compare ia ib
             | c -> c)
         | c -> c)
  |> List.map snd

(* Track name -> Chrome tid, assigned in sorted track order per process. *)
let tids events =
  let tracks =
    List.map (fun e -> e.Span.track) events |> List.sort_uniq String.compare
  in
  List.mapi (fun i track -> (track, i + 1)) tracks

let chrome ppf processes =
  Format.fprintf ppf "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if !first then first := false else Format.fprintf ppf ",";
    Format.fprintf ppf "@.%s" line
  in
  List.iter
    (fun p ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"%s\",\"dropped_events\":%d}}"
           p.pid (escape_json p.name) p.dropped);
      let tids = tids p.events in
      List.iter
        (fun (track, tid) ->
          emit
            (Printf.sprintf
               "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
               p.pid tid (escape_json track)))
        tids;
      List.iter
        (fun e ->
          let tid = List.assoc e.Span.track tids in
          let common =
            Printf.sprintf
              "\"pid\":%d,\"tid\":%d,\"ts\":%d,\"cat\":\"%s\",\"name\":\"%s\""
              p.pid tid e.Span.ts
              (Span.category_to_string e.Span.cat)
              (escape_json e.Span.name)
          in
          emit
            (match e.Span.kind with
            | Span.Complete dur ->
                Printf.sprintf "{\"ph\":\"X\",%s,\"dur\":%d}" common dur
            | Span.Instant ->
                Printf.sprintf "{\"ph\":\"i\",%s,\"s\":\"t\"}" common
            | Span.Value v ->
                Printf.sprintf "{\"ph\":\"C\",%s,\"args\":{\"value\":%d}}"
                  common v))
        (ordered p.events))
    processes;
  Format.fprintf ppf "@.],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"simulated cycles (1 exported us = 1 cycle)\"}}@."

(* RFC 4180: quote a field containing a comma, quote, LF or CR, doubling
   embedded quotes. CR matters: a label with an embedded "\r\n" written
   unquoted splits the row on Windows-style readers. *)
let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv ppf processes =
  Format.fprintf ppf "pid,process,tid,track,ts,dur,cat,name,value@.";
  List.iter
    (fun p ->
      let tids = tids p.events in
      List.iter
        (fun e ->
          let dur, value =
            match e.Span.kind with
            | Span.Complete d -> (string_of_int d, "")
            | Span.Instant -> ("", "")
            | Span.Value v -> ("", string_of_int v)
          in
          Format.fprintf ppf "%d,%s,%d,%s,%d,%s,%s,%s,%s@." p.pid
            (escape_csv p.name)
            (List.assoc e.Span.track tids)
            (escape_csv e.Span.track) e.Span.ts dur
            (Span.category_to_string e.Span.cat)
            (escape_csv e.Span.name) value)
        (ordered p.events))
    processes

(* Flame-style cycle attribution: cycles per category across all
   processes, each category broken down by span name, sorted by
   descending cycles (ties by name, so output is deterministic). *)
let summary ppf processes =
  let add table k v =
    Hashtbl.replace table k (v + Option.value ~default:0 (Hashtbl.find_opt table k))
  in
  let by_cat = Hashtbl.create 8 in
  let by_name = Hashtbl.create 64 in
  let total = ref 0 in
  let events = ref 0 in
  let dropped = ref 0 in
  List.iter
    (fun p ->
      dropped := !dropped + p.dropped;
      List.iter
        (fun e ->
          incr events;
          let d = Span.duration e in
          if d > 0 then begin
            total := !total + d;
            add by_cat e.Span.cat d;
            add by_name (e.Span.cat, e.Span.name) d
          end)
        p.events)
    processes;
  Format.fprintf ppf
    "Cycle attribution (%d processes, %d events, %d dropped)@."
    (List.length processes) !events !dropped;
  Format.fprintf ppf "%s@." (String.make 64 '-');
  let cats =
    Hashtbl.fold (fun c v acc -> (c, v) :: acc) by_cat []
    |> List.sort (fun (ca, a) (cb, b) ->
           match Int.compare b a with
           | 0 ->
               String.compare
                 (Span.category_to_string ca)
                 (Span.category_to_string cb)
           | c -> c)
  in
  List.iter
    (fun (cat, cycles) ->
      let pct =
        if !total = 0 then 0.0
        else 100.0 *. float_of_int cycles /. float_of_int !total
      in
      Format.fprintf ppf "%-10s %14d %5.1f%%@."
        (Span.category_to_string cat)
        cycles pct;
      Hashtbl.fold
        (fun (c, name) v acc -> if c = cat then (name, v) :: acc else acc)
        by_name []
      |> List.sort (fun (na, a) (nb, b) ->
             match Int.compare b a with 0 -> String.compare na nb | c -> c)
      |> List.iter (fun (name, v) ->
             Format.fprintf ppf "  %-38s %14d@." name v))
    cats;
  Format.fprintf ppf "%s@." (String.make 64 '-');
  Format.fprintf ppf "%-10s %14d@." "total" !total
