(** Rendering and regression-diffing of {!Accounting} results.

    Three deterministic renderers (text table in the style of
    [perf kvm stat], CSV, and JSON under the ["armvirt.stat/v1"]
    schema) plus a thresholded diff of two JSON reports for regression
    gating. Rendering is a pure function of the input, so output is
    byte-identical at any runner [--jobs] level. *)

type options = {
  per_vcpu : bool;  (** Break exit rows out per PCPU. *)
  per_domain : bool;
      (** Break entry counts out per guest domain ([d<domid>] entry
          markers). Off by default; when off, documents are
          byte-identical to pre-fleet reports. *)
  top : int;  (** Keep only the top-N exit reasons by count; 0 = all. *)
}

val default_options : options

val render_text :
  ?opts:options -> context:string -> Format.formatter -> Accounting.t -> unit

val render_csv :
  ?opts:options -> context:string -> Format.formatter -> Accounting.t -> unit
(** Header
    [kind,cell,machine,hyp,pcpu,name,count,lat_count,lat_sum,lat_min,lat_max];
    [kind] is [exit], [op] or [attribution]. Fields are RFC 4180
    quoted. *)

val render_json :
  ?opts:options -> context:string -> Format.formatter -> Accounting.t -> unit
(** The ["armvirt.stat/v1"] document:
    [{"schema", "context", "vms": [{"cell", "machine", "hyp", "entries",
    "per_domain": [{"domid", "entries"}, ...], "exits": [{"reason",
    "count", "latency": {"count", "sum", "min", "max", "buckets":
    [[bound, n], ...]}}], "per_pcpu", "ops", "attribution": {"guest",
    "hypervisor"}}], "totals"}]. ["per_domain"] appears only with
    [opts.per_domain] set and at least one domain-tagged entry. *)

(** {1 JSON parsing and diffing} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** A minimal strict JSON parser (sufficient for the documents this
    module emits; no dependency on an external JSON library). *)

type thresholds = {
  count_pct : float;
      (** Max tolerated relative change of any exit/op/entry count, in
          percent. The simulation is deterministic, so the default is
          [0.]: any count change is a finding. *)
  cycles_pct : float;
      (** Max tolerated relative change of latency sums and
          attribution cycles, in percent (default [2.]). *)
}

val default_thresholds : thresholds

type finding = {
  path : string;  (** e.g. ["vm[micro/m0/kvm_arm].exit[hvc].count"] *)
  old_value : float;
  new_value : float;
  delta_pct : float;
}

val diff :
  ?thresholds:thresholds -> string -> string -> (finding list, string) result
(** [diff old_doc new_doc] compares two ["armvirt.stat/v1"] documents;
    [Ok []] means within thresholds. VMs are matched by (cell, machine,
    hyp); a VM or exit reason present on only one side is itself a
    finding. [Error] on malformed input or schema mismatch. *)

val pp_findings : Format.formatter -> finding list -> unit
