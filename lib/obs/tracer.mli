(** Span recorder: nested begin/end regions and point events on named
    tracks, buffered in a {!Ring}.

    A track is one timeline row — a simulated process, CPU or device.
    Each track carries its own span stack, so [begin_span]/[end_span]
    pairs nest per track exactly the way a process's blocked/running
    regions nest in time. Events land in a single ring in recording
    order; exporters ({!Export}) re-sort by start time. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained events (see {!Ring.create}); omitted
    means unbounded. *)

val complete :
  t -> track:string -> cat:Span.category -> name:string -> ts:int ->
  dur:int -> unit
(** Records a finished span: started at [ts], lasted [dur] cycles.
    Raises [Invalid_argument] on a negative duration. *)

val instant :
  t -> track:string -> cat:Span.category -> name:string -> ts:int -> unit

val value :
  t -> track:string -> cat:Span.category -> name:string -> ts:int ->
  value:int -> unit
(** Records a sampled value (queue depth, counter level) at [ts]. *)

val begin_span :
  t -> track:string -> cat:Span.category -> name:string -> ts:int -> unit
(** Pushes an open span onto [track]'s stack. *)

val end_span : t -> track:string -> ts:int -> unit
(** Pops [track]'s innermost open span and records it as a complete
    event from its begin time to [ts]. Raises [Invalid_argument] if the
    track has no open span. *)

val open_spans : t -> track:string -> int

val events : t -> Span.event list
(** In recording order (chronological by completion). *)

val length : t -> int
val dropped : t -> int
val clear : t -> unit
