(** Labelled metric registry: counters, gauges and log-bucketed latency
    histograms keyed by [(name, labels)].

    Where {!Armvirt_stats.Counter} string-mangles its dimensions into one
    flat name, a registry keeps them as label pairs
    ([("platform", "arm"); ("hyp", "kvm")]), so snapshots can be grouped,
    filtered and merged per dimension. All rendered output is
    deterministically sorted by [(name, labels)] — no [Hashtbl] iteration
    order ever reaches an exporter. *)

type t

type labels = (string * string) list
(** Label pairs; order does not matter (keys are sorted internally). *)

val create : unit -> t

val incr : t -> ?labels:labels -> ?by:int -> string -> unit
(** Monotonic counter. [by] defaults to 1. *)

val set_gauge : t -> ?labels:labels -> string -> float -> unit
(** Last-write-wins point-in-time value. *)

val observe : t -> ?labels:labels -> string -> float -> unit
(** Adds an observation to a log-bucketed histogram: bucket upper bounds
    are 1, 2, 4, ... 2{^62}; observation [v] lands in the first bucket
    with bound >= [v]. Raises [Invalid_argument] for negative values. *)

(** {1 Reads} *)

val counter_value : t -> ?labels:labels -> string -> int
(** 0 for a counter never incremented. *)

val gauge_value : t -> ?labels:labels -> string -> float option

type histogram = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (** [(upper bound, count)] per non-empty bucket, ascending;
          non-cumulative. *)
}

val histogram : t -> ?labels:labels -> string -> histogram option

val names : t -> string list
(** All metric family names, sorted, deduplicated. *)

(** {1 Merging} *)

val merge_into : dst:t -> t -> unit
(** Adds the source's counters and histogram contents into [dst];
    gauges overwrite. Deterministic given deterministic inputs. *)

(** {1 Rendering — both deterministically sorted} *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition format: [# TYPE] per family, histograms
    with cumulative [le] buckets, [+Inf], [_sum] and [_count]. Names are
    sanitized to the Prometheus charset. *)

val pp_json : Format.formatter -> t -> unit
(** A JSON document with ["counters"], ["gauges"] and ["histograms"]
    arrays. *)
