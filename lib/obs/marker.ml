(* Typed constructors for the counter-label grammar in accounting.mli.
   Builders and parser live in the same library so a builder-produced
   label is grammatical by construction; the M1 lint pass trusts
   applications of these functions and checks everything else.

   The exit-reason mnemonics mirror Armvirt_arch.Esr.short_name — obs
   sits below arch in the library graph (arch -> stats -> obs), so the
   enum is duplicated here and parity is enforced twice: by
   test_stat's marker/esr round-trip test and by the M1 pass, which
   links both libraries and cross-checks every literal reason against
   the live Esr list. *)

type reason = Wfx | Hvc | Smc | Sysreg | Iabt | Dabt | Irq

let all_reasons = [ Wfx; Hvc; Smc; Sysreg; Iabt; Dabt; Irq ]

let reason_to_string = function
  | Wfx -> "wfx"
  | Hvc -> "hvc"
  | Smc -> "smc"
  | Sysreg -> "sysreg"
  | Iabt -> "iabt"
  | Dabt -> "dabt"
  | Irq -> "irq"

let reason_of_string s =
  List.find_opt (fun r -> reason_to_string r = s) all_reasons

type dir = Rx | Tx | Drop

let dir_to_string = function Rx -> "rx" | Tx -> "tx" | Drop -> "drop"

let is_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let require_ident ~what s =
  if not (is_ident s) then
    invalid_arg
      (Printf.sprintf "Marker: %s %S is not a lowercase identifier" what s)

let exit ~hyp ~reason ~pcpu =
  require_ident ~what:"hypervisor" hyp;
  Printf.sprintf "%s.exit/%s/p%d" hyp (reason_to_string reason) pcpu

let exit_name ~hyp ~reason ~pcpu =
  require_ident ~what:"hypervisor" hyp;
  (match reason_of_string reason with
  | Some _ -> ()
  | None ->
      invalid_arg
        (Printf.sprintf "Marker.exit_name: %S is not an exit mnemonic" reason));
  Printf.sprintf "%s.exit/%s/p%d" hyp reason pcpu

let entry ?domid ~hyp ~pcpu () =
  require_ident ~what:"hypervisor" hyp;
  match domid with
  | None -> Printf.sprintf "%s.entry/p%d" hyp pcpu
  | Some d -> Printf.sprintf "%s.entry/p%d/d%d" hyp pcpu d

let op ~hyp name =
  require_ident ~what:"hypervisor" hyp;
  if
    not
      (String.length name > 0
      && String.for_all
           (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
           name)
  then invalid_arg (Printf.sprintf "Marker.op: %S must match [a-z0-9_]+" name);
  hyp ^ "." ^ name

let port ~switch ~port dir =
  require_ident ~what:"switch" switch;
  Printf.sprintf "vswitch.%s/p%d/%s" switch port (dir_to_string dir)

let flood ~switch =
  require_ident ~what:"switch" switch;
  Printf.sprintf "vswitch.%s/flood" switch

let uplink ~switch ~uplink dir =
  require_ident ~what:"switch" switch;
  (match dir with
  | Drop -> invalid_arg "Marker.uplink: wires carry rx/tx only"
  | Rx | Tx -> ());
  Printf.sprintf "wire.%s-u%d/%s" switch uplink (dir_to_string dir)
