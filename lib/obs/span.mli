(** The span taxonomy: what kind of work a traced interval represents.

    Mirrors the decomposition axes of the paper's analysis — traps into
    the hypervisor (Table I's transition costs), full world switches,
    interrupt virtualization, stage-2 memory management, the I/O request
    path (Table V), scheduling, and the experiment runner itself. Every
    {!event} carries a {!category} so exporters can attribute cycles per
    axis without re-parsing label strings. *)

type category =
  | Migrate
      (** Live migration: dirty logging, pre-copy rounds, blackout.
          Matched first — migration labels ("migrate.wp_fault",
          "migrate.copy") would otherwise scatter into the Stage2 and Io
          lanes. *)
  | Trap  (** Traps/exits into hypervisor emulation (hypercall, MMIO). *)
  | Vmexit  (** Full world switches: save/restore, VM entry/exit. *)
  | Irq  (** Interrupt virtualization: vGIC, IPIs, EOI, timer ticks. *)
  | Stage2  (** Stage-2/nested paging: faults, page walks, TLB, grants. *)
  | Io  (** The paravirtual I/O path: rings, backends, copies, wires. *)
  | Sched  (** Simulator scheduling: parked/woken processes, contention. *)
  | Runner  (** Experiment-runner bookkeeping: cells, memoization. *)
  | Other

val all : category list
(** Every category, in rendering order. *)

val category_to_string : category -> string
(** Lowercase stable names: ["migrate"], ["trap"], ["vmexit"], ["irq"],
    ["stage2"], ["io"], ["sched"], ["runner"], ["other"]. *)

val category_of_string : string -> category option

val of_label : string -> category
(** Classifies a {!Armvirt_arch.Machine.spend} label
    (["kvm_arm.vcpu_resume"], ["netperf.host_rx_path"], ...) by ordered
    substring rules; unmatched labels map to {!Other}. *)

(** {1 Events} *)

type kind =
  | Complete of int  (** A span with a duration in cycles. *)
  | Instant  (** A point event (process spawn, marker). *)
  | Value of int  (** A sampled value (queue depth, gauge). *)

type event = {
  ts : int;  (** Start time, simulated cycles. *)
  track : string;  (** Timeline row: a process, CPU or device name. *)
  cat : category;
  name : string;
  kind : kind;
}

val duration : event -> int
(** The [Complete] duration, 0 for instants and values. *)

val pp_event : Format.formatter -> event -> unit
