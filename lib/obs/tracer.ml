type open_span = { start : int; cat : Span.category; name : string }

type t = {
  ring : Span.event Ring.t;
  stacks : (string, open_span list ref) Hashtbl.t;
}

let create ?capacity () =
  { ring = Ring.create ?capacity (); stacks = Hashtbl.create 16 }

let emit t e = Ring.push t.ring e

let complete t ~track ~cat ~name ~ts ~dur =
  if dur < 0 then invalid_arg "Tracer.complete: negative duration";
  emit t { Span.ts; track; cat; name; kind = Span.Complete dur }

let instant t ~track ~cat ~name ~ts =
  emit t { Span.ts; track; cat; name; kind = Span.Instant }

let value t ~track ~cat ~name ~ts ~value =
  emit t { Span.ts; track; cat; name; kind = Span.Value value }

let stack t track =
  match Hashtbl.find_opt t.stacks track with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace t.stacks track s;
      s

let begin_span t ~track ~cat ~name ~ts =
  let s = stack t track in
  s := { start = ts; cat; name } :: !s

let end_span t ~track ~ts =
  let s = stack t track in
  match !s with
  | [] ->
      invalid_arg
        (Printf.sprintf "Tracer.end_span: no open span on track %S" track)
  | { start; cat; name } :: rest ->
      s := rest;
      complete t ~track ~cat ~name ~ts:start ~dur:(Stdlib.max 0 (ts - start))

let open_spans t ~track =
  match Hashtbl.find_opt t.stacks track with
  | Some s -> List.length !s
  | None -> 0

let events t = Ring.to_list t.ring
let length t = Ring.length t.ring
let dropped t = Ring.dropped t.ring

let clear t =
  Ring.clear t.ring;
  Hashtbl.reset t.stacks
