type labels = (string * string) list

type key = { name : string; labels : labels }

let key ~name ~labels =
  { name; labels = List.stable_sort (fun (a, _) (b, _) -> String.compare a b) labels }

let compare_labels =
  List.compare (fun (ka, va) (kb, vb) ->
      match String.compare ka kb with 0 -> String.compare va vb | c -> c)

let compare_key a b =
  match String.compare a.name b.name with
  | 0 -> compare_labels a.labels b.labels
  | c -> c

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  buckets : (int, int) Hashtbl.t; (* exponent e, bucket upper bound 2^e *)
}

type t = {
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  histograms : (key, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    histograms = Hashtbl.create 32;
  }

let find_or_add table k fresh =
  match Hashtbl.find_opt table k with
  | Some v -> v
  | None ->
      let v = fresh () in
      Hashtbl.replace table k v;
      v

let incr t ?(labels = []) ?(by = 1) name =
  let cell = find_or_add t.counters (key ~name ~labels) (fun () -> ref 0) in
  cell := !cell + by

let set_gauge t ?(labels = []) name v =
  let cell = find_or_add t.gauges (key ~name ~labels) (fun () -> ref 0.0) in
  cell := v

(* Log-bucketed: observation [v] lands in the first bucket whose upper
   bound 2^e (e >= 0) is >= v. Power-of-two doubling is exact in float,
   so boundaries are crisp: observe (2.^e) lands at le=2^e, the next
   representable value above lands at le=2^(e+1). *)
let max_exponent = 62

let bucket_exponent v =
  let rec go e bound =
    if v <= bound || e >= max_exponent then e else go (e + 1) (bound *. 2.0)
  in
  go 0 1.0

let bucket_le e = Int64.to_float (Int64.shift_left 1L e)

let observe t ?(labels = []) name v =
  if v < 0.0 then invalid_arg "Metrics.observe: negative observation";
  let h =
    find_or_add t.histograms (key ~name ~labels) (fun () ->
        { h_count = 0; h_sum = 0.0; buckets = Hashtbl.create 8 })
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let e = bucket_exponent v in
  Hashtbl.replace h.buckets e
    (1 + Option.value ~default:0 (Hashtbl.find_opt h.buckets e))

(* --- reads --------------------------------------------------------- *)

let counter_value t ?(labels = []) name =
  match Hashtbl.find_opt t.counters (key ~name ~labels) with
  | Some c -> !c
  | None -> 0

let gauge_value t ?(labels = []) name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges (key ~name ~labels))

type histogram = { count : int; sum : float; buckets : (float * int) list }

let histogram t ?(labels = []) name =
  Option.map
    (fun (h : hist) ->
      let buckets =
        Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.buckets []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.map (fun (e, n) -> (bucket_le e, n))
      in
      { count = h.h_count; sum = h.h_sum; buckets })
    (Hashtbl.find_opt t.histograms (key ~name ~labels))

let sorted_keys table =
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort compare_key

let names t =
  List.concat
    [ sorted_keys t.counters; sorted_keys t.gauges; sorted_keys t.histograms ]
  |> List.map (fun k -> k.name)
  |> List.sort_uniq String.compare

(* --- merge --------------------------------------------------------- *)

let merge_into ~dst src =
  List.iter
    (fun k ->
      let c = Hashtbl.find src.counters k in
      incr dst ~labels:k.labels ~by:!c k.name)
    (sorted_keys src.counters);
  List.iter
    (fun k -> set_gauge dst ~labels:k.labels k.name !(Hashtbl.find src.gauges k))
    (sorted_keys src.gauges);
  List.iter
    (fun k ->
      let h = Hashtbl.find src.histograms k in
      let d =
        find_or_add dst.histograms k (fun () ->
            { h_count = 0; h_sum = 0.0; buckets = Hashtbl.create 8 })
      in
      d.h_count <- d.h_count + h.h_count;
      d.h_sum <- d.h_sum +. h.h_sum;
      (* lint: sorted — bucket merge is additive, commutative *)
      Hashtbl.iter
        (fun e n ->
          Hashtbl.replace d.buckets e
            (n + Option.value ~default:0 (Hashtbl.find_opt d.buckets e)))
        h.buckets)
    (sorted_keys src.histograms)

(* --- rendering ----------------------------------------------------- *)

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels =
    match extra with None -> labels | Some kv -> labels @ [ kv ]
  in
  match labels with
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             kvs)
      ^ "}"

(* One # TYPE line per family name, then every labelled series of that
   family, all in sorted order: no Hashtbl iteration order leaks. *)
let pp_prometheus ppf t =
  let families table typ render =
    let keys = sorted_keys table in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun k ->
        let name = sanitize k.name in
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.replace seen name ();
          Format.fprintf ppf "# TYPE %s %s@." name typ
        end;
        render name k)
      keys
  in
  families t.counters "counter" (fun name k ->
      Format.fprintf ppf "%s%s %d@." name (prom_labels k.labels)
        !(Hashtbl.find t.counters k));
  families t.gauges "gauge" (fun name k ->
      Format.fprintf ppf "%s%s %s@." name (prom_labels k.labels)
        (float_repr !(Hashtbl.find t.gauges k)));
  families t.histograms "histogram" (fun name k ->
      let h = Hashtbl.find t.histograms k in
      let max_e =
        (* lint: sorted — max over keys is commutative *)
        Hashtbl.fold (fun e _ acc -> Stdlib.max e acc) h.buckets 0
      in
      let cumulative = ref 0 in
      for e = 0 to max_e do
        cumulative :=
          !cumulative + Option.value ~default:0 (Hashtbl.find_opt h.buckets e);
        Format.fprintf ppf "%s_bucket%s %d@." name
          (prom_labels k.labels ~extra:("le", Printf.sprintf "%.0f" (bucket_le e)))
          !cumulative
      done;
      Format.fprintf ppf "%s_bucket%s %d@." name
        (prom_labels k.labels ~extra:("le", "+Inf"))
        h.h_count;
      Format.fprintf ppf "%s_sum%s %s@." name (prom_labels k.labels)
        (float_repr h.h_sum);
      Format.fprintf ppf "%s_count%s %d@." name (prom_labels k.labels)
        h.h_count)

let json_string s = "\"" ^ escape_label_value s ^ "\""

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let pp_json ppf t =
  let entry ?(last = false) body =
    Format.fprintf ppf "    %s%s@." body (if last then "" else ",")
  in
  let section name table render ~last =
    Format.fprintf ppf "  %s: [@." (json_string name);
    let keys = sorted_keys table in
    let n = List.length keys in
    List.iteri (fun i k -> entry ~last:(i = n - 1) (render k)) keys;
    Format.fprintf ppf "  ]%s@." (if last then "" else ",")
  in
  Format.fprintf ppf "{@.";
  section "counters" t.counters ~last:false (fun k ->
      Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%d}"
        (json_string k.name) (json_labels k.labels)
        !(Hashtbl.find t.counters k));
  section "gauges" t.gauges ~last:false (fun k ->
      Printf.sprintf "{\"name\":%s,\"labels\":%s,\"value\":%s}"
        (json_string k.name) (json_labels k.labels)
        (float_repr !(Hashtbl.find t.gauges k)));
  section "histograms" t.histograms ~last:true (fun k ->
      let h = Hashtbl.find t.histograms k in
      let buckets =
        Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.buckets []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.map (fun (e, n) ->
               Printf.sprintf "{\"le\":%.0f,\"count\":%d}" (bucket_le e) n)
        |> String.concat ","
      in
      Printf.sprintf
        "{\"name\":%s,\"labels\":%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
        (json_string k.name) (json_labels k.labels) h.h_count
        (float_repr h.h_sum) buckets);
  Format.fprintf ppf "}@."
