type category =
  | Migrate
  | Trap
  | Vmexit
  | Irq
  | Stage2
  | Io
  | Sched
  | Runner
  | Other

let all = [ Migrate; Trap; Vmexit; Irq; Stage2; Io; Sched; Runner; Other ]

let category_to_string = function
  | Migrate -> "migrate"
  | Trap -> "trap"
  | Vmexit -> "vmexit"
  | Irq -> "irq"
  | Stage2 -> "stage2"
  | Io -> "io"
  | Sched -> "sched"
  | Runner -> "runner"
  | Other -> "other"

let category_of_string = function
  | "migrate" -> Some Migrate
  | "trap" -> Some Trap
  | "vmexit" -> Some Vmexit
  | "irq" -> Some Irq
  | "stage2" -> Some Stage2
  | "io" -> Some Io
  | "sched" -> Some Sched
  | "runner" -> Some Runner
  | "other" -> Some Other
  | _ -> None

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i j = j = nn || (haystack.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = i + nn <= nh && (at i 0 || go (i + 1)) in
  nn = 0 || go 0

(* First-match classification of the cost-model labels priced through
   Machine.spend ("kvm_arm.vcpu_resume", "netperf.host_rx_path", ...).
   Rules are ordered: world-switch costs beat trap costs beat interrupt
   costs, so a label like "arm.trap_to_el2" lands in [Trap] while
   "kvm_arm.process_switch" lands in [Vmexit]. *)
let rules =
  [
    (* Migration labels must win the tie: "migrate.wp_fault" contains
       "fault" (Stage2's rule) and "migrate.copy" contains "copy" (Io's),
       but the whole migration vertical belongs in one lane. *)
    (Migrate, [ "migrate"; "precopy"; "dirty_log"; "stop_and_copy"; "blackout" ]);
    (Vmexit,
     [ "vmexit"; "vmentry"; "vcpu_resume"; "process_switch"; "world_switch";
       "vmswitch"; "eret"; "dom0_upcall";
       (* exit/entry marker instants ("kvm_arm.exit/hvc/p4"): must win
          over Trap, whose "hvc" needle would otherwise claim them. *)
       "exit/"; "entry/" ]);
    (Trap,
     [ "trap"; "hvc"; "vmcall"; "hypercall"; "mmio"; "emul"; "dispatch";
       "decode" ]);
    (Irq,
     [ "irq"; "vgic"; "evtchn"; "upcall"; "eoi"; "sgi"; "ipi"; "tick";
       "timer"; "apic"; "icr"; "crosscall" ]);
    (Stage2,
     [ "stage2"; "page_map"; "tlb"; "coldstart"; "grant"; "fault"; "walk" ]);
    (Io,
     [ "netperf"; "rr_system"; "stream_system"; "maerts_system";
       "disk_system"; "rx"; "tx"; "blk"; "backend"; "notify"; "kick";
       "copy"; "frame"; "wire"; "dma"; "vhost"; "signal"; "nic"; "net" ]);
    (Sched, [ "sched"; "steal"; "idle"; "park"; "wake"; "spawn"; "blocked" ]);
    (Runner, [ "runner"; "memo"; "cell" ]);
  ]

let of_label label =
  let label = String.lowercase_ascii label in
  let matches (_, needles) = List.exists (contains label) needles in
  match List.find_opt matches rules with
  | Some (cat, _) -> cat
  | None -> Other

type kind = Complete of int | Instant | Value of int

type event = {
  ts : int;
  track : string;
  cat : category;
  name : string;
  kind : kind;
}

let duration e = match e.kind with Complete d -> d | Instant | Value _ -> 0

let pp_event ppf e =
  let kind =
    match e.kind with
    | Complete d -> Printf.sprintf "dur=%d" d
    | Instant -> "instant"
    | Value v -> Printf.sprintf "value=%d" v
  in
  Format.fprintf ppf "@%d [%s/%s] %s (%s)" e.ts e.track
    (category_to_string e.cat) e.name kind
