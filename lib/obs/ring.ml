type 'a t = {
  mutable data : 'a array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
  mutable dropped : int;
  capacity : int option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Ring.create: capacity < 1"
  | _ -> ());
  { data = [||]; head = 0; len = 0; dropped = 0; capacity }

let length t = t.len
let dropped t = t.dropped
let capacity t = t.capacity

let push t x =
  let n = Array.length t.data in
  if t.len < n then begin
    t.data.((t.head + t.len) mod n) <- x;
    t.len <- t.len + 1
  end
  else begin
    match t.capacity with
    | Some cap when t.len >= cap ->
        (* At the cap: overwrite the oldest element and count the drop. *)
        t.data.(t.head) <- x;
        t.head <- (t.head + 1) mod n;
        t.dropped <- t.dropped + 1
    | _ ->
        (* Grow by doubling (clamped to the cap), re-linearizing so the
           oldest element lands at index 0. *)
        let n' = Stdlib.max 8 (2 * n) in
        let n' =
          match t.capacity with Some c -> Stdlib.min n' c | None -> n'
        in
        let grown = Array.make n' x in
        for i = 0 to t.len - 1 do
          grown.(i) <- t.data.((t.head + i) mod n)
        done;
        grown.(t.len) <- x;
        t.data <- grown;
        t.head <- 0;
        t.len <- t.len + 1
  end

let iter f t =
  let n = Array.length t.data in
  for i = 0 to t.len - 1 do
    f t.data.((t.head + i) mod n)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  t.data <- [||];
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0
