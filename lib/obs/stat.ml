(* Renderers and diff for exit-accounting reports. Deterministic by
   construction: Accounting.t is already ordered, floats print with
   fixed precision, and nothing here consults clocks or hash order. *)

type options = { per_vcpu : bool; per_domain : bool; top : int }

let default_options = { per_vcpu = false; per_domain = false; top = 0 }

let take n l =
  if n <= 0 then l
  else
    let rec go i = function
      | [] -> []
      | x :: tl -> if i >= n then [] else x :: go (i + 1) tl
    in
    go 0 l

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

(* --- text ------------------------------------------------------------ *)

let pp_hist_cells ppf (h : Accounting.hist) =
  if h.Accounting.count = 0 then
    Format.fprintf ppf "%10s %10s %10s %10s" "-" "-" "-" "-"
  else
    Format.fprintf ppf "%10d %10.1f %10d %10d" h.Accounting.min
      (Accounting.mean h) h.Accounting.max h.Accounting.count

let pp_exit_rows ppf ~indent ~total rows =
  List.iter
    (fun (reason, count, hist) ->
      Format.fprintf ppf "%s%-10s %8d %7.1f%% %a@," indent reason count
        (pct count total) pp_hist_cells hist)
    rows

let render_text ?(opts = default_options) ~context ppf (t : Accounting.t) =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "exit accounting: %s@," context;
  Format.fprintf ppf "%d vm(s), %d exits, guest %d / hypervisor %d cycles@,@,"
    (List.length t.Accounting.vms)
    t.Accounting.total_exits t.Accounting.total_guest t.Accounting.total_hyp;
  List.iter
    (fun (v : Accounting.vm_stats) ->
      Format.fprintf ppf "vm %s/%s hyp=%s@," v.Accounting.cell
        v.Accounting.machine v.Accounting.hyp;
      let vm_exits = List.fold_left (fun s (_, c, _) -> s + c) 0 v.Accounting.exits in
      if v.Accounting.exits <> [] then begin
        Format.fprintf ppf "  %-10s %8s %8s %10s %10s %10s %10s@," "reason"
          "exits" "%exits" "lat_min" "lat_mean" "lat_max" "samples";
        pp_exit_rows ppf ~indent:"  " ~total:vm_exits
          (take opts.top v.Accounting.exits);
        if opts.per_vcpu then
          List.iter
            (fun (pcpu, rows) ->
              Format.fprintf ppf "  pcpu %d:@," pcpu;
              pp_exit_rows ppf ~indent:"    " ~total:vm_exits
                (take opts.top rows))
            v.Accounting.exits_per_pcpu
      end;
      if vm_exits > 0 || v.Accounting.entries > 0 then
        Format.fprintf ppf "  exits %d, entries %d@," vm_exits
          v.Accounting.entries;
      if opts.per_domain && v.Accounting.entries_per_domain <> [] then begin
        Format.fprintf ppf "  entries by domain:";
        List.iter
          (fun (d, n) -> Format.fprintf ppf " d%d=%d" d n)
          v.Accounting.entries_per_domain;
        Format.fprintf ppf "@,"
      end;
      if v.Accounting.ops <> [] then begin
        Format.fprintf ppf "  ops:";
        List.iter
          (fun (op, n) -> Format.fprintf ppf " %s=%d" op n)
          v.Accounting.ops;
        Format.fprintf ppf "@,"
      end;
      let total_cycles = v.Accounting.guest_cycles + v.Accounting.hyp_cycles in
      Format.fprintf ppf
        "  attribution: guest %d (%.1f%%), hypervisor %d (%.1f%%)@,@,"
        v.Accounting.guest_cycles
        (pct v.Accounting.guest_cycles total_cycles)
        v.Accounting.hyp_cycles
        (pct v.Accounting.hyp_cycles total_cycles))
    t.Accounting.vms;
  Format.fprintf ppf "@]@."

(* --- csv ------------------------------------------------------------- *)

let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv ?(opts = default_options) ~context:_ ppf (t : Accounting.t) =
  Format.fprintf ppf
    "kind,cell,machine,hyp,pcpu,name,count,lat_count,lat_sum,lat_min,lat_max@.";
  let row kind (v : Accounting.vm_stats) ~pcpu ~name ~count
      (hist : Accounting.hist option) =
    let h_cells =
      match hist with
      | None -> ",,,"
      | Some h ->
          Printf.sprintf "%d,%d,%d,%d" h.Accounting.count h.Accounting.sum
            h.Accounting.min h.Accounting.max
    in
    Format.fprintf ppf "%s,%s,%s,%s,%s,%s,%d,%s@." kind
      (csv_field v.Accounting.cell)
      (csv_field v.Accounting.machine)
      (csv_field v.Accounting.hyp)
      pcpu (csv_field name) count h_cells
  in
  List.iter
    (fun (v : Accounting.vm_stats) ->
      List.iter
        (fun (reason, count, hist) ->
          row "exit" v ~pcpu:"all" ~name:reason ~count (Some hist))
        (take opts.top v.Accounting.exits);
      if opts.per_vcpu then
        List.iter
          (fun (pcpu, rows) ->
            List.iter
              (fun (reason, count, hist) ->
                row "exit" v ~pcpu:(string_of_int pcpu) ~name:reason ~count
                  (Some hist))
              (take opts.top rows))
          v.Accounting.exits_per_pcpu;
      if opts.per_domain then
        List.iter
          (fun (d, n) ->
            row "entry" v ~pcpu:"all" ~name:(Printf.sprintf "d%d" d) ~count:n
              None)
          v.Accounting.entries_per_domain;
      List.iter
        (fun (op, n) -> row "op" v ~pcpu:"all" ~name:op ~count:n None)
        v.Accounting.ops;
      row "attribution" v ~pcpu:"all" ~name:"guest"
        ~count:v.Accounting.guest_cycles None;
      row "attribution" v ~pcpu:"all" ~name:"hypervisor"
        ~count:v.Accounting.hyp_cycles None)
    t.Accounting.vms

(* --- json ------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_json_hist ppf (h : Accounting.hist) =
  Format.fprintf ppf
    "{\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"buckets\": [%s]}"
    h.Accounting.count h.Accounting.sum h.Accounting.min h.Accounting.max
    (String.concat ", "
       (List.map
          (fun (b, n) -> Printf.sprintf "[%d, %d]" b n)
          h.Accounting.buckets))

let pp_json_exits ppf rows =
  Format.fprintf ppf "[";
  List.iteri
    (fun i (reason, count, hist) ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "{\"reason\": \"%s\", \"count\": %d, \"latency\": %a}"
        (json_escape reason) count pp_json_hist hist)
    rows;
  Format.fprintf ppf "]"

let render_json ?(opts = default_options) ~context ppf (t : Accounting.t) =
  Format.fprintf ppf "{@.";
  Format.fprintf ppf "  \"schema\": \"armvirt.stat/v1\",@.";
  Format.fprintf ppf "  \"context\": \"%s\",@." (json_escape context);
  Format.fprintf ppf "  \"vms\": [";
  List.iteri
    (fun i (v : Accounting.vm_stats) ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@.    {\"cell\": \"%s\", \"machine\": \"%s\", \"hyp\": \"%s\",@."
        (json_escape v.Accounting.cell)
        (json_escape v.Accounting.machine)
        (json_escape v.Accounting.hyp);
      Format.fprintf ppf "     \"entries\": %d,@." v.Accounting.entries;
      (* Emitted only on opt-in and when markers named a domain, so the
         default document stays byte-identical to pre-fleet reports. *)
      if opts.per_domain && v.Accounting.entries_per_domain <> [] then
        Format.fprintf ppf "     \"per_domain\": [%s],@."
          (String.concat ", "
             (List.map
                (fun (d, n) ->
                  Printf.sprintf "{\"domid\": %d, \"entries\": %d}" d n)
                v.Accounting.entries_per_domain));
      Format.fprintf ppf "     \"exits\": %a,@." pp_json_exits
        (take opts.top v.Accounting.exits);
      if opts.per_vcpu then begin
        Format.fprintf ppf "     \"per_pcpu\": [";
        List.iteri
          (fun j (pcpu, rows) ->
            if j > 0 then Format.fprintf ppf ", ";
            Format.fprintf ppf "{\"pcpu\": %d, \"exits\": %a}" pcpu
              pp_json_exits (take opts.top rows))
          v.Accounting.exits_per_pcpu;
        Format.fprintf ppf "],@."
      end;
      Format.fprintf ppf "     \"ops\": [%s],@."
        (String.concat ", "
           (List.map
              (fun (op, n) ->
                Printf.sprintf "{\"op\": \"%s\", \"count\": %d}"
                  (json_escape op) n)
              v.Accounting.ops));
      Format.fprintf ppf
        "     \"attribution\": {\"guest\": %d, \"hypervisor\": %d}}"
        v.Accounting.guest_cycles v.Accounting.hyp_cycles)
    t.Accounting.vms;
  Format.fprintf ppf "@.  ],@.";
  Format.fprintf ppf
    "  \"totals\": {\"guest\": %d, \"hypervisor\": %d, \"exits\": %d}@."
    t.Accounting.total_guest t.Accounting.total_hyp t.Accounting.total_exits;
  Format.fprintf ppf "}@."

(* --- minimal JSON parser --------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Our own emitter only escapes control characters; decode
                 the BMP code point as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- diff ------------------------------------------------------------ *)

type thresholds = { count_pct : float; cycles_pct : float }

let default_thresholds = { count_pct = 0.0; cycles_pct = 2.0 }

type finding = {
  path : string;
  old_value : float;
  new_value : float;
  delta_pct : float;
}

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let num_member key j =
  match member key j with Some (Num f) -> Some f | _ -> None

let str_member key j =
  match member key j with Some (Str s) -> Some s | _ -> None

let arr_member key j =
  match member key j with Some (Arr l) -> Some l | _ -> None

let delta_pct old_v new_v =
  let base = Float.max (Float.abs old_v) 1.0 in
  100.0 *. Float.abs (new_v -. old_v) /. base

let compare_value findings ~threshold ~path old_v new_v =
  let d = delta_pct old_v new_v in
  if d > threshold then
    findings := { path; old_value = old_v; new_value = new_v; delta_pct = d }
                 :: !findings

let vm_key vm =
  Printf.sprintf "%s/%s/%s"
    (Option.value ~default:"?" (str_member "cell" vm))
    (Option.value ~default:"?" (str_member "machine" vm))
    (Option.value ~default:"?" (str_member "hyp" vm))

let diff ?(thresholds = default_thresholds) old_doc new_doc =
  match (parse_json old_doc, parse_json new_doc) with
  | Error e, _ -> Error (Printf.sprintf "old document: %s" e)
  | _, Error e -> Error (Printf.sprintf "new document: %s" e)
  | Ok old_j, Ok new_j -> (
      match (str_member "schema" old_j, str_member "schema" new_j) with
      | Some "armvirt.stat/v1", Some "armvirt.stat/v1" ->
          let findings = ref [] in
          let count_tol_pct = thresholds.count_pct in
          let cycles_tol_pct = thresholds.cycles_pct in
          let check = compare_value findings in
          let diff_exits prefix old_exits new_exits =
            let index l =
              List.filter_map
                (fun e -> Option.map (fun r -> (r, e)) (str_member "reason" e))
                l
            in
            let old_i = index old_exits and new_i = index new_exits in
            let reasons =
              List.sort_uniq String.compare
                (List.map fst old_i @ List.map fst new_i)
            in
            List.iter
              (fun reason ->
                let path field =
                  Printf.sprintf "%s.exit[%s].%s" prefix reason field
                in
                match
                  (List.assoc_opt reason old_i, List.assoc_opt reason new_i)
                with
                | Some o, Some n ->
                    let get k j = Option.value ~default:0.0 (num_member k j) in
                    check ~threshold:count_tol_pct ~path:(path "count") (get "count" o)
                      (get "count" n);
                    let lat k j =
                      match member "latency" j with
                      | Some h -> Option.value ~default:0.0 (num_member k h)
                      | None -> 0.0
                    in
                    check ~threshold:cycles_tol_pct ~path:(path "latency.sum")
                      (lat "sum" o) (lat "sum" n)
                | Some o, None ->
                    let c = Option.value ~default:0.0 (num_member "count" o) in
                    check ~threshold:count_tol_pct ~path:(path "count") c 0.0
                | None, Some n ->
                    let c = Option.value ~default:0.0 (num_member "count" n) in
                    check ~threshold:count_tol_pct ~path:(path "count") 0.0 c
                | None, None -> ())
              reasons
          in
          let diff_vm old_vm new_vm =
            let prefix = Printf.sprintf "vm[%s]" (vm_key old_vm) in
            let get k j = Option.value ~default:0.0 (num_member k j) in
            check ~threshold:count_tol_pct
              ~path:(prefix ^ ".entries")
              (get "entries" old_vm) (get "entries" new_vm);
            (* per_domain is optional (emitted only with --per-domain):
               diff it only when both sides carry it, so opting in on
               one side alone is not a regression. *)
            (match
               (arr_member "per_domain" old_vm, arr_member "per_domain" new_vm)
             with
            | Some old_pd, Some new_pd ->
                let index l =
                  List.filter_map
                    (fun e ->
                      match (num_member "domid" e, num_member "entries" e) with
                      | Some d, Some n -> Some (int_of_float d, n)
                      | _ -> None)
                    l
                in
                let old_i = index old_pd and new_i = index new_pd in
                let domids =
                  List.sort_uniq Int.compare
                    (List.map fst old_i @ List.map fst new_i)
                in
                List.iter
                  (fun d ->
                    let v i = Option.value ~default:0.0 (List.assoc_opt d i) in
                    check ~threshold:count_tol_pct
                      ~path:(Printf.sprintf "%s.per_domain[d%d].entries" prefix d)
                      (v old_i) (v new_i))
                  domids
            | _ -> ());
            diff_exits prefix
              (Option.value ~default:[] (arr_member "exits" old_vm))
              (Option.value ~default:[] (arr_member "exits" new_vm));
            let ops j =
              List.filter_map
                (fun o ->
                  match (str_member "op" o, num_member "count" o) with
                  | Some op, Some c -> Some (op, c)
                  | _ -> None)
                (Option.value ~default:[] (arr_member "ops" j))
            in
            let old_ops = ops old_vm and new_ops = ops new_vm in
            let names =
              List.sort_uniq String.compare
                (List.map fst old_ops @ List.map fst new_ops)
            in
            List.iter
              (fun op ->
                let o = Option.value ~default:0.0 (List.assoc_opt op old_ops) in
                let n = Option.value ~default:0.0 (List.assoc_opt op new_ops) in
                check ~threshold:count_tol_pct
                  ~path:(Printf.sprintf "%s.op[%s]" prefix op)
                  o n)
              names;
            let attr k j =
              match member "attribution" j with
              | Some a -> Option.value ~default:0.0 (num_member k a)
              | None -> 0.0
            in
            check ~threshold:cycles_tol_pct
              ~path:(prefix ^ ".attribution.guest")
              (attr "guest" old_vm) (attr "guest" new_vm);
            check ~threshold:cycles_tol_pct
              ~path:(prefix ^ ".attribution.hypervisor")
              (attr "hypervisor" old_vm) (attr "hypervisor" new_vm)
          in
          let old_vms = Option.value ~default:[] (arr_member "vms" old_j) in
          let new_vms = Option.value ~default:[] (arr_member "vms" new_j) in
          let keyed l = List.map (fun vm -> (vm_key vm, vm)) l in
          let old_k = keyed old_vms and new_k = keyed new_vms in
          let keys =
            List.sort_uniq String.compare (List.map fst old_k @ List.map fst new_k)
          in
          List.iter
            (fun key ->
              match (List.assoc_opt key old_k, List.assoc_opt key new_k) with
              | Some o, Some n -> diff_vm o n
              | Some _, None ->
                  findings :=
                    { path = Printf.sprintf "vm[%s]" key; old_value = 1.0;
                      new_value = 0.0; delta_pct = 100.0 }
                    :: !findings
              | None, Some _ ->
                  findings :=
                    { path = Printf.sprintf "vm[%s]" key; old_value = 0.0;
                      new_value = 1.0; delta_pct = 100.0 }
                    :: !findings
              | None, None -> ())
            keys;
          (match (member "totals" old_j, member "totals" new_j) with
          | Some ot, Some nt ->
              List.iter
                (fun (field, threshold) ->
                  let get j = Option.value ~default:0.0 (num_member field j) in
                  compare_value findings ~threshold
                    ~path:("totals." ^ field) (get ot) (get nt))
                [
                  ("guest", cycles_tol_pct);
                  ("hypervisor", cycles_tol_pct);
                  ("exits", count_tol_pct);
                ]
          | _ -> ());
          Ok (List.rev !findings)
      | _ -> Error "not an armvirt.stat/v1 document")

let pp_findings ppf findings =
  List.iter
    (fun f ->
      Format.fprintf ppf "%s: %g -> %g (%.1f%% delta)@." f.path f.old_value
        f.new_value f.delta_pct)
    findings
