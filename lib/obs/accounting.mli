(** kvm_stat-style exit accounting over recorded traces.

    The hypervisor models mark every VM exit and re-entry with a
    zero-cost {!Armvirt_arch.Machine.count} whose label follows a fixed
    grammar (below). A tracing session turns those counts into instant
    events on the machine's ["cpu"] track; this module reduces a list of
    exported trace processes into what [kvm_stat] / [perf kvm stat]
    would show on real hardware: per-exit-reason counters, log2 exit
    latency histograms keyed by (cell, machine, hypervisor, PCPU), and
    guest-time vs hypervisor-time cycle attribution.

    {1 Marker label grammar}

    - exit:  ["<hyp>.exit/<reason>/p<pcpu>"], e.g. ["kvm_arm.exit/hvc/p4"]
    - entry: ["<hyp>.entry/p<pcpu>"] or ["<hyp>.entry/p<pcpu>/d<domid>"]
    - any other counted label containing a ['.'] is an operation count,
      e.g. ["kvm_arm.vipi"].

    [<reason>] is an {!Armvirt_arch.Esr.short_name} mnemonic. Exit
    latency is the span from an exit marker to the next entry marker on
    the same (machine, hypervisor, PCPU) — entry markers fire {e after}
    the restore path, so the latency covers the full world switch, like
    the TSC delta between [kvm_exit] and [kvm_entry] tracepoints.

    Everything here is pure: input is event lists, output is
    deterministically ordered; no wall-clock, no randomness. *)

val exit_label : hyp:string -> reason:string -> pcpu:int -> string
(** Alias for {!Marker.exit_name}: raises [Invalid_argument] unless
    [reason] is an {!Armvirt_arch.Esr.short_name} mnemonic. *)

val entry_label : ?domid:int -> hyp:string -> pcpu:int -> unit -> string
(** Alias for {!Marker.entry}. *)

type marker =
  | Exit of { hyp : string; reason : string; pcpu : int }
  | Entry of { hyp : string; pcpu : int; domid : int option }
  | Op of { hyp : string; op : string }

val parse_label : string -> marker option
(** Classify a counted label per the grammar above. [None] for labels
    with no ['.'] (e.g. the engine's ["spawn"] instants). *)

(** {1 Log2 histograms} *)

type hist = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0]. *)
  max : int;
  buckets : (int * int) list;
      (** [(upper_bound, count)] for non-empty log2 buckets, ascending;
          a sample [v] lands in the smallest power-of-two bound >= [v]. *)
}

val mean : hist -> float

(** {1 Lane attribution} *)

type lane = Guest | Hypervisor

val lane_to_string : lane -> string

val lane_of_label : string -> lane
(** First-match substring rules, mirroring {!Span.of_label}: labels for
    work the VM itself executes (["vm_processing"], ["native_server"],
    anything containing ["guest"], hardware-assisted completion paths
    ["virq_complete"] / ["eoi_vapic"]) are [Guest]; every other priced
    label — world-switch costs, hypervisor dispatch, host backend and
    I/O paths — is [Hypervisor]. *)

(** {1 Reduction} *)

type vm_stats = {
  cell : string;  (** Cell label ([Export.process.name]). *)
  machine : string;  (** ["m0"], ["m1"], ... from the track prefix. *)
  hyp : string;  (** Marker prefix, e.g. ["kvm_arm"]; ["-"] if none. *)
  exits : (string * int * hist) list;
      (** [(reason, exit_count, latency_hist)]; [latency_hist.count] can
          be below [exit_count] when an exit never re-entered. The list
          is sorted by descending count, ties by reason name. *)
  exits_per_pcpu : (int * (string * int * hist) list) list;
      (** Same, broken out per PCPU, ascending PCPU id. *)
  entries : int;
  entries_per_domain : (int * int) list;
      (** [(domid, entries)] from entry markers carrying a [d<domid>]
          suffix, ascending domid; empty when no marker named a domain.
          Fleet schedulers tag every entry, so this is the per-guest
          share of world switches on a consolidated host. *)
  ops : (string * int) list;  (** Operation counts, sorted by name. *)
  guest_cycles : int;
  hyp_cycles : int;
}

type t = {
  vms : vm_stats list;  (** Input order: cells as recorded, machines by
                            ascending index, hypervisors sorted. *)
  total_guest : int;
  total_hyp : int;
  total_exits : int;
}

val of_processes : Export.process list -> t
(** Reduce exported trace processes. Only events on ["cpu"] tracks
    participate: instants are parsed as markers, complete spans feed the
    cycle-attribution lanes. Deterministic in the input order, so the
    result (and anything rendered from it) is byte-identical at any
    [--jobs] level, like the trace exporters. *)
