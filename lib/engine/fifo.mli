(** Array-backed growable FIFO: allocation-free push/pop at steady
    state, vacated slots cleared so popped elements are collectable
    immediately. Backs the engine's waiter and message queues. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the oldest element.
    @raise Invalid_argument on an empty queue. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
