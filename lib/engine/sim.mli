(** Deterministic discrete-event simulation engine.

    Simulated actors are coroutines ("processes") built on OCaml 5 effect
    handlers. A process advances simulated time by performing {!delay} and
    cooperates with other processes through the synchronization primitives
    in {!Signal}, {!Mailbox} and {!Resource}. The engine interleaves all
    runnable processes in strict [(cycle, scheduling-order)] order, so a
    given program produces bit-identical results on every run — the
    property the paper obtains on hardware through pinning, isolation and
    instruction barriers, we obtain by construction. *)

type t
(** A simulation world: the global cycle clock and the pending-event
    queue. *)

exception Deadlock of string
(** Raised by {!run} when processes remain blocked but no event can ever
    wake them. The payload names the stuck processes, sorted, so the
    report is deterministic regardless of park order. *)

val create : unit -> t

val now : t -> Cycles.t
(** Current simulated time. *)

val events_processed : t -> int
(** Number of events the engine has executed since {!create}: every
    delay expiry, wake-up and spawn counts as one event. Events/sec
    ([events_processed] over host wall time) is the engine's raw
    throughput metric, tracked PR-over-PR in [BENCH_events.json]. *)

(** {1 Observability}

    An observer receives scheduling callbacks as the simulation runs:
    process lifecycle ({!field-observer.on_spawn},
    {!field-observer.on_park}, {!field-observer.on_wake}), time spent
    blocked on a contended {!Resource}, and {!Mailbox} queue-depth
    changes. All timestamps are raw simulated cycles. With no observer
    installed (the default), every path is identical to the unobserved
    engine — no allocation, no indirection beyond one [option] match. *)

type observer = {
  on_spawn : id:int -> name:string -> at:int -> unit;
  on_park : id:int -> name:string -> at:int -> unit;
  on_wake : id:int -> name:string -> at:int -> unit;
  on_contention : resource:string -> proc:string -> at:int -> waited:int -> unit;
      (** Called when a process resumes after blocking in
          {!Resource.acquire}: it parked at [at] and waited [waited]
          cycles. Uncontended acquires never report. *)
  on_queue_depth : mailbox:string -> at:int -> depth:int -> unit;
      (** Called exactly when a {!Mailbox} queue changes length: a send
          that enqueues, or a recv/try_recv that dequeues. Direct
          send-to-parked-receiver hand-offs bypass the queue and do not
          report. *)
}

val set_observer : t -> observer option -> unit

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] registers process [f] to start at the current simulated
    time. [name] is used in deadlock reports and traces. *)

val run : t -> unit
(** Runs the simulation until no events remain. Raises {!Deadlock} if
    blocked processes remain when the event queue drains. *)

val run_until : t -> Cycles.t -> unit
(** [run_until t limit] runs events with timestamp [<= limit], then stops
    with the clock advanced to [limit] (so a subsequent {!now} or
    [schedule] observes the horizon, not the last drained event time).
    Blocked processes are not a deadlock here; they may be waiting for
    events beyond the horizon. *)

(** {1 Operations available inside a process} *)

val delay : Cycles.t -> unit
(** [delay c] suspends the calling process for [c] simulated cycles. Must
    be called from within a process; raises [Invalid_argument] otherwise. *)

val yield : unit -> unit
(** Re-queues the calling process at the current time, letting any other
    process scheduled for this cycle run first. *)

val current_time : unit -> Cycles.t
(** Simulated time as seen by the calling process. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process and hands [register] a
    wake-up function. Calling the wake-up function (once) resumes the
    process at the waker's current simulated time with the provided value.
    This is the single primitive from which all synchronization in
    {!Signal}, {!Mailbox} and {!Resource} is built. *)

val spawn_here : ?name:string -> (unit -> unit) -> unit
(** Like {!spawn} but callable from inside a process, targeting the
    enclosing simulation. *)

(** {1 Synchronization primitives} *)

module Signal : sig
  (** Broadcast conditions: all current waiters wake on {!notify}. *)

  type sim := t
  type t

  val create : sim -> t
  val wait : t -> unit
  (** Blocks the calling process until the next {!notify}. *)

  val notify : t -> unit
  (** Wakes every process currently blocked in {!wait}. May be called from
    inside or outside a process. *)

  val waiters : t -> int
end

module Mailbox : sig
  (** Unbounded FIFO channels carrying values between processes. *)

  type sim := t
  type 'a t

  val create : ?name:string -> sim -> 'a t
  (** [name] (default ["mailbox"]) identifies this mailbox in observer
      queue-depth callbacks. *)

  val send : 'a t -> 'a -> unit
  (** Never blocks. If a receiver is parked, it is woken with the value;
    otherwise the value is queued. *)

  val recv : 'a t -> 'a
  (** Returns the oldest queued value, blocking if none is available. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

module Resource : sig
  (** Counting semaphores, used to model exclusive occupancy of simulated
    hardware (e.g. a physical CPU that can run one context at a time). *)

  type sim := t
  type t

  val create : ?name:string -> sim -> capacity:int -> t
  (** [name] (default ["resource"]) identifies this resource in observer
      contention callbacks. *)

  val acquire : t -> unit
  val release : t -> unit
  val available : t -> int

  val use : t -> Cycles.t -> unit
  (** [use r c] acquires [r], delays [c] cycles, then releases — even if
    the delayed section raises. *)
end
