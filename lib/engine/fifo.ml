(* Array-backed growable FIFO for the engine's waiter and message
   queues.

   [Stdlib.Queue] allocates a cons-like cell per element; the
   synchronization primitives (Mailbox queues and takers, Resource
   waiters, Signal waiters) push and pop on every operation, so those
   cells are pure hot-path garbage. This ring buffer reaches a steady
   state where push/pop allocate nothing, and — same discipline as
   {!Heap} — clears each vacated slot so a popped element is collectable
   immediately.

   Capacity is a power of two; [head] only grows (indices are masked),
   which keeps wraparound branch-free. Accesses use unsafe array ops:
   every index is [(head + i) land mask] with [i < length], in-bounds by
   construction. *)

type 'a t = {
  mutable buf : 'a array;
  mutable head : int; (* absolute index of the oldest element *)
  mutable length : int;
}

let dummy : 'a. unit -> 'a = fun () -> Obj.magic ()

let create () = { buf = [||]; head = 0; length = 0 }

let length q = q.length
let is_empty q = q.length = 0

let grow q =
  let cap = Array.length q.buf in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let buf' = Array.make cap' (dummy ()) in
  let mask = cap - 1 in
  for i = 0 to q.length - 1 do
    Array.unsafe_set buf' i (Array.unsafe_get q.buf ((q.head + i) land mask))
  done;
  q.buf <- buf';
  q.head <- 0

let push q v =
  if q.length = Array.length q.buf then grow q;
  let mask = Array.length q.buf - 1 in
  Array.unsafe_set q.buf ((q.head + q.length) land mask) v;
  q.length <- q.length + 1

let pop q =
  if q.length = 0 then invalid_arg "Fifo.pop: empty";
  let mask = Array.length q.buf - 1 in
  let i = q.head land mask in
  let v = Array.unsafe_get q.buf i in
  Array.unsafe_set q.buf i (dummy ());
  q.head <- q.head + 1;
  q.length <- q.length - 1;
  v
