type observer = {
  on_spawn : id:int -> name:string -> at:int -> unit;
  on_park : id:int -> name:string -> at:int -> unit;
  on_wake : id:int -> name:string -> at:int -> unit;
  on_contention : resource:string -> proc:string -> at:int -> waited:int -> unit;
  on_queue_depth : mailbox:string -> at:int -> depth:int -> unit;
}

(* A pending event. Delay expiries and wake-ups — the dominant events by
   far — store their continuation (and resume value) directly in one
   small block instead of a wrapper closure; everything else stays a
   thunk. *)
type event =
  | Run of (unit -> unit)
  | Resume : ('a, unit) Effect.Deep.continuation * 'a -> event

type t = {
  mutable now : int;
  mutable seq : int;
  events : event Heap.t;
  mutable blocked_names : string array;
      (* pid-indexed; valid only where [is_blocked.(pid)]. Flat arrays
         make park/wake O(1) and allocation-free (the wake path used to
         List.filter a list — O(parked) per wake, quadratic across a
         fleet of parked processes). Names are only read at
         deadlock-report time, sorted there for determinism. *)
  mutable is_blocked : bool array;
  mutable blocked_count : int;
  mutable next_pid : int;
  mutable processed : int;
      (* events executed so far: the engine's raw-throughput numerator *)
  mutable observer : observer option;
      (* [None] keeps every scheduling path allocation-free *)
}

exception Deadlock of string

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Now : int Effect.t
  | Spawn : (string option * (unit -> unit)) -> unit Effect.t
  | Whoami : string Effect.t

let create () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ();
    blocked_names = [||];
    is_blocked = [||];
    blocked_count = 0;
    next_pid = 0;
    processed = 0;
    observer = None;
  }

let set_observer t obs = t.observer <- obs

let now t = Cycles.of_int t.now
let events_processed t = t.processed

let schedule_event t ~at ev =
  assert (at >= t.now);
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.events ~time:at ~seq ev

let schedule t ~at action = schedule_event t ~at (Run action)

(* Each process runs under one deep handler. Delay re-queues the
   continuation; Suspend parks it behind a user-controlled wake function
   with a once-only guard so a double wake is an immediate error rather
   than silent corruption. *)
let rec start t name f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  if pid >= Array.length t.is_blocked then begin
    let cap = max 16 (2 * Array.length t.is_blocked) in
    let names = Array.make cap "" and flags = Array.make cap false in
    Array.blit t.blocked_names 0 names 0 pid;
    Array.blit t.is_blocked 0 flags 0 pid;
    t.blocked_names <- names;
    t.is_blocked <- flags
  end;
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "process-%d" pid
  in
  (match t.observer with
  | None -> ()
  | Some o -> o.on_spawn ~id:pid ~name:pname ~at:t.now);
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay c ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule_event t ~at:(t.now + c) (Resume (k, ())))
          | Now -> Some (fun k -> continue k t.now)
          | Spawn (name', g) ->
              Some
                (fun k ->
                  schedule t ~at:t.now (fun () -> start t name' g);
                  continue k ())
          | Suspend register ->
              Some
                (fun k ->
                  t.blocked_names.(pid) <- pname;
                  t.is_blocked.(pid) <- true;
                  t.blocked_count <- t.blocked_count + 1;
                  (match t.observer with
                  | None -> ()
                  | Some o -> o.on_park ~id:pid ~name:pname ~at:t.now);
                  let woken = ref false in
                  let wake v =
                    if !woken then
                      invalid_arg
                        (Printf.sprintf "Sim: process %s woken twice" pname);
                    woken := true;
                    t.is_blocked.(pid) <- false;
                    t.blocked_count <- t.blocked_count - 1;
                    (match t.observer with
                    | None -> ()
                    | Some o -> o.on_wake ~id:pid ~name:pname ~at:t.now);
                    schedule_event t ~at:t.now (Resume (k, v))
                  in
                  register wake)
          | Whoami -> Some (fun k -> continue k pname)
          | _ -> None);
    }

let spawn t ?name f = schedule t ~at:t.now (fun () -> start t name f)

(* The engine's innermost loop: with no observer installed this
   allocates nothing — the clock read, the pop and the dispatch all
   operate on unboxed ints and the stored event. *)
let step t =
  if Heap.is_empty t.events then false
  else begin
    t.now <- Heap.min_time t.events;
    t.processed <- t.processed + 1;
    (match Heap.pop_min t.events with
    | Run action -> action ()
    | Resume (k, v) -> Effect.Deep.continue k v);
    true
  end

let run t =
  while step t do
    ()
  done;
  if t.blocked_count > 0 then begin
    (* Sorted at raise time so the report does not depend on park order
       (which parallel-built scenarios don't fix). *)
    let names = ref [] in
    for pid = t.next_pid - 1 downto 0 do
      if t.is_blocked.(pid) then names := t.blocked_names.(pid) :: !names
    done;
    let names = List.sort String.compare !names in
    raise (Deadlock (String.concat ", " names))
  end

let run_until t limit =
  let limit = Cycles.to_int limit in
  let continue_running = ref true in
  while !continue_running do
    if (not (Heap.is_empty t.events)) && Heap.min_time t.events <= limit then
      ignore (step t)
    else continue_running := false
  done;
  (* Advance the clock to the horizon even if no event landed exactly on
     it, so a subsequent [schedule]/[now] observes [limit], not the time
     of the last drained event. *)
  if limit > t.now then t.now <- limit

let delay c =
  let c = Cycles.to_int c in
  try Effect.perform (Delay c)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.delay called outside a simulation process"

let yield () =
  try Effect.perform (Delay 0)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.yield called outside a simulation process"

let current_time () =
  try Cycles.of_int (Effect.perform Now)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.current_time called outside a simulation process"

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.suspend called outside a simulation process"

let spawn_here ?name f =
  try Effect.perform (Spawn (name, f))
  with Effect.Unhandled _ ->
    invalid_arg "Sim.spawn_here called outside a simulation process"

type sim_handle = t

module Signal = struct
  type t = { waiters : (unit -> unit) Fifo.t }

  let create (_ : sim_handle) = { waiters = Fifo.create () }

  let wait s = suspend (fun wake -> Fifo.push s.waiters wake)

  (* Draining until empty wakes exactly the processes parked now: a
     woken process only re-parks when the scheduler next runs it, never
     during this loop. *)
  let notify s =
    while not (Fifo.is_empty s.waiters) do
      (Fifo.pop s.waiters) ()
    done

  let waiters s = Fifo.length s.waiters
end

let whoami () =
  try Effect.perform Whoami with Effect.Unhandled _ -> "main"

module Mailbox = struct
  type 'a t = {
    sim : sim_handle;
    mb_name : string;
    queue : 'a Fifo.t;
    takers : ('a -> unit) Fifo.t; (* FIFO: push on park, pop on send *)
  }

  let create ?(name = "mailbox") (sim : sim_handle) =
    { sim; mb_name = name; queue = Fifo.create (); takers = Fifo.create () }

  let depth_changed mb =
    match mb.sim.observer with
    | None -> ()
    | Some o ->
        o.on_queue_depth ~mailbox:mb.mb_name ~at:mb.sim.now
          ~depth:(Fifo.length mb.queue)

  (* Depth events fire exactly on queue-length transitions: a send that
     hands the value straight to a parked receiver never touches the
     queue, so it reports nothing (it used to re-report the unchanged
     depth), and symmetrically a recv satisfied by wake-up stays
     silent. *)
  let send mb v =
    if Fifo.is_empty mb.takers then begin
      Fifo.push mb.queue v;
      depth_changed mb
    end
    else (Fifo.pop mb.takers) v

  let recv mb =
    if Fifo.is_empty mb.queue then
      suspend (fun wake -> Fifo.push mb.takers wake)
    else begin
      let v = Fifo.pop mb.queue in
      depth_changed mb;
      v
    end

  let try_recv mb =
    if Fifo.is_empty mb.queue then None
    else begin
      let v = Fifo.pop mb.queue in
      depth_changed mb;
      Some v
    end

  let length mb = Fifo.length mb.queue
end

module Resource = struct
  type t = {
    sim : sim_handle;
    r_name : string;
    mutable available : int;
    waiters : (unit -> unit) Fifo.t; (* FIFO: push on park, pop on release *)
  }

  let create ?(name = "resource") (sim : sim_handle) ~capacity =
    if capacity < 1 then invalid_arg "Sim.Resource.create: capacity < 1";
    { sim; r_name = name; available = capacity; waiters = Fifo.create () }

  let acquire r =
    if r.available > 0 then r.available <- r.available - 1
    else begin
      let parked_at = r.sim.now in
      suspend (fun wake -> Fifo.push r.waiters wake);
      match r.sim.observer with
      | None -> ()
      | Some o ->
          o.on_contention ~resource:r.r_name ~proc:(whoami ()) ~at:parked_at
            ~waited:(r.sim.now - parked_at)
    end

  let release r =
    if Fifo.is_empty r.waiters then r.available <- r.available + 1
    else (Fifo.pop r.waiters) ()

  let available r = r.available

  let use r c =
    acquire r;
    (try delay c
     with e ->
       release r;
       raise e);
    release r
end
