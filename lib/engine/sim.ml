type observer = {
  on_spawn : id:int -> name:string -> at:int -> unit;
  on_park : id:int -> name:string -> at:int -> unit;
  on_wake : id:int -> name:string -> at:int -> unit;
  on_contention : resource:string -> proc:string -> at:int -> waited:int -> unit;
  on_queue_depth : mailbox:string -> at:int -> depth:int -> unit;
}

type t = {
  mutable now : int;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  mutable blocked : (int * string) list;
      (* processes parked in [suspend]: (id, name), for deadlock reports *)
  mutable next_pid : int;
  mutable observer : observer option;
      (* [None] keeps every scheduling path allocation-free *)
}

exception Deadlock of string

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Now : int Effect.t
  | Spawn : (string option * (unit -> unit)) -> unit Effect.t
  | Whoami : string Effect.t

let create () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ();
    blocked = [];
    next_pid = 0;
    observer = None;
  }

let set_observer t obs = t.observer <- obs

let now t = Cycles.of_int t.now

let schedule t ~at action =
  assert (at >= t.now);
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.events ~time:at ~seq action

(* Each process runs under one deep handler. Delay re-queues the
   continuation; Suspend parks it behind a user-controlled wake function
   with a once-only guard so a double wake is an immediate error rather
   than silent corruption. *)
let rec start t name f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "process-%d" pid
  in
  (match t.observer with
  | None -> ()
  | Some o -> o.on_spawn ~id:pid ~name:pname ~at:t.now);
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay c ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule t ~at:(t.now + c) (fun () -> continue k ()))
          | Now -> Some (fun k -> continue k t.now)
          | Spawn (name', g) ->
              Some
                (fun k ->
                  schedule t ~at:t.now (fun () -> start t name' g);
                  continue k ())
          | Suspend register ->
              Some
                (fun k ->
                  t.blocked <- (pid, pname) :: t.blocked;
                  (match t.observer with
                  | None -> ()
                  | Some o -> o.on_park ~id:pid ~name:pname ~at:t.now);
                  let woken = ref false in
                  let wake v =
                    if !woken then
                      invalid_arg
                        (Printf.sprintf "Sim: process %s woken twice" pname);
                    woken := true;
                    t.blocked <-
                      List.filter (fun (id, _) -> id <> pid) t.blocked;
                    (match t.observer with
                    | None -> ()
                    | Some o -> o.on_wake ~id:pid ~name:pname ~at:t.now);
                    schedule t ~at:t.now (fun () -> continue k v)
                  in
                  register wake)
          | Whoami -> Some (fun k -> continue k pname)
          | _ -> None);
    }

let spawn t ?name f = schedule t ~at:t.now (fun () -> start t name f)

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some (time, _seq, action) ->
      t.now <- time;
      action ();
      true

let run t =
  while step t do
    ()
  done;
  match t.blocked with
  | [] -> ()
  | stuck ->
      let names = List.map snd stuck |> String.concat ", " in
      raise (Deadlock names)

let run_until t limit =
  let limit = Cycles.to_int limit in
  let continue_running = ref true in
  while !continue_running do
    match Heap.peek t.events with
    | Some (time, _, _) when time <= limit -> ignore (step t)
    | Some _ | None -> continue_running := false
  done;
  (* Advance the clock to the horizon even if no event landed exactly on
     it, so a subsequent [schedule]/[now] observes [limit], not the time
     of the last drained event. *)
  if limit > t.now then t.now <- limit

let delay c =
  let c = Cycles.to_int c in
  try Effect.perform (Delay c)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.delay called outside a simulation process"

let yield () =
  try Effect.perform (Delay 0)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.yield called outside a simulation process"

let current_time () =
  try Cycles.of_int (Effect.perform Now)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.current_time called outside a simulation process"

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.suspend called outside a simulation process"

let spawn_here ?name f =
  try Effect.perform (Spawn (name, f))
  with Effect.Unhandled _ ->
    invalid_arg "Sim.spawn_here called outside a simulation process"

type sim_handle = t

module Signal = struct
  type t = { mutable waiters : (unit -> unit) list }

  let create (_ : sim_handle) = { waiters = [] }

  let wait s =
    suspend (fun wake -> s.waiters <- wake :: s.waiters)

  let notify s =
    let ws = List.rev s.waiters in
    s.waiters <- [];
    List.iter (fun wake -> wake ()) ws

  let waiters s = List.length s.waiters
end

let whoami () =
  try Effect.perform Whoami with Effect.Unhandled _ -> "main"

module Mailbox = struct
  type 'a t = {
    sim : sim_handle;
    mb_name : string;
    queue : 'a Queue.t;
    takers : ('a -> unit) Queue.t; (* FIFO: push on park, pop on send *)
  }

  let create ?(name = "mailbox") (sim : sim_handle) =
    { sim; mb_name = name; queue = Queue.create (); takers = Queue.create () }

  let depth_changed mb =
    match mb.sim.observer with
    | None -> ()
    | Some o ->
        o.on_queue_depth ~mailbox:mb.mb_name ~at:mb.sim.now
          ~depth:(Queue.length mb.queue)

  let send mb v =
    (match Queue.take_opt mb.takers with
    | Some wake -> wake v
    | None -> Queue.push v mb.queue);
    depth_changed mb

  let recv mb =
    if Queue.is_empty mb.queue then
      suspend (fun wake -> Queue.push wake mb.takers)
    else begin
      let v = Queue.pop mb.queue in
      depth_changed mb;
      v
    end

  let try_recv mb =
    match Queue.take_opt mb.queue with
    | None -> None
    | Some v ->
        depth_changed mb;
        Some v

  let length mb = Queue.length mb.queue
end

module Resource = struct
  type t = {
    sim : sim_handle;
    r_name : string;
    mutable available : int;
    waiters : (unit -> unit) Queue.t; (* FIFO: push on park, pop on release *)
  }

  let create ?(name = "resource") (sim : sim_handle) ~capacity =
    if capacity < 1 then invalid_arg "Sim.Resource.create: capacity < 1";
    { sim; r_name = name; available = capacity; waiters = Queue.create () }

  let acquire r =
    if r.available > 0 then r.available <- r.available - 1
    else begin
      let parked_at = r.sim.now in
      suspend (fun wake -> Queue.push wake r.waiters);
      match r.sim.observer with
      | None -> ()
      | Some o ->
          o.on_contention ~resource:r.r_name ~proc:(whoami ()) ~at:parked_at
            ~waited:(r.sim.now - parked_at)
    end

  let release r =
    match Queue.take_opt r.waiters with
    | Some wake -> wake ()
    | None -> r.available <- r.available + 1

  let available r = r.available

  let use r c =
    acquire r;
    (try delay c
     with e ->
       release r;
       raise e);
    release r
end
