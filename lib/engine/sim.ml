type t = {
  mutable now : int;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  mutable blocked : (int * string) list;
      (* processes parked in [suspend]: (id, name), for deadlock reports *)
  mutable next_pid : int;
}

exception Deadlock of string

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Now : int Effect.t
  | Spawn : (string option * (unit -> unit)) -> unit Effect.t

let create () =
  { now = 0; seq = 0; events = Heap.create (); blocked = []; next_pid = 0 }

let now t = Cycles.of_int t.now

let schedule t ~at action =
  assert (at >= t.now);
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.events ~time:at ~seq action

(* Each process runs under one deep handler. Delay re-queues the
   continuation; Suspend parks it behind a user-controlled wake function
   with a once-only guard so a double wake is an immediate error rather
   than silent corruption. *)
let rec start t name f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "process-%d" pid
  in
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay c ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule t ~at:(t.now + c) (fun () -> continue k ()))
          | Now -> Some (fun k -> continue k t.now)
          | Spawn (name', g) ->
              Some
                (fun k ->
                  schedule t ~at:t.now (fun () -> start t name' g);
                  continue k ())
          | Suspend register ->
              Some
                (fun k ->
                  t.blocked <- (pid, pname) :: t.blocked;
                  let woken = ref false in
                  let wake v =
                    if !woken then
                      invalid_arg
                        (Printf.sprintf "Sim: process %s woken twice" pname);
                    woken := true;
                    t.blocked <-
                      List.filter (fun (id, _) -> id <> pid) t.blocked;
                    schedule t ~at:t.now (fun () -> continue k v)
                  in
                  register wake)
          | _ -> None);
    }

let spawn t ?name f = schedule t ~at:t.now (fun () -> start t name f)

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some (time, _seq, action) ->
      t.now <- time;
      action ();
      true

let run t =
  while step t do
    ()
  done;
  match t.blocked with
  | [] -> ()
  | stuck ->
      let names = List.map snd stuck |> String.concat ", " in
      raise (Deadlock names)

let run_until t limit =
  let limit = Cycles.to_int limit in
  let continue_running = ref true in
  while !continue_running do
    match Heap.peek t.events with
    | Some (time, _, _) when time <= limit -> ignore (step t)
    | Some _ | None -> continue_running := false
  done;
  (* Advance the clock to the horizon even if no event landed exactly on
     it, so a subsequent [schedule]/[now] observes [limit], not the time
     of the last drained event. *)
  if limit > t.now then t.now <- limit

let delay c =
  let c = Cycles.to_int c in
  try Effect.perform (Delay c)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.delay called outside a simulation process"

let yield () =
  try Effect.perform (Delay 0)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.yield called outside a simulation process"

let current_time () =
  try Cycles.of_int (Effect.perform Now)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.current_time called outside a simulation process"

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ ->
    invalid_arg "Sim.suspend called outside a simulation process"

let spawn_here ?name f =
  try Effect.perform (Spawn (name, f))
  with Effect.Unhandled _ ->
    invalid_arg "Sim.spawn_here called outside a simulation process"

type sim_handle = t

module Signal = struct
  type t = { mutable waiters : (unit -> unit) list }

  let create (_ : sim_handle) = { waiters = [] }

  let wait s =
    suspend (fun wake -> s.waiters <- wake :: s.waiters)

  let notify s =
    let ws = List.rev s.waiters in
    s.waiters <- [];
    List.iter (fun wake -> wake ()) ws

  let waiters s = List.length s.waiters
end

module Mailbox = struct
  type 'a t = {
    queue : 'a Queue.t;
    takers : ('a -> unit) Queue.t; (* FIFO: push on park, pop on send *)
  }

  let create (_ : sim_handle) =
    { queue = Queue.create (); takers = Queue.create () }

  let send mb v =
    match Queue.take_opt mb.takers with
    | Some wake -> wake v
    | None -> Queue.push v mb.queue

  let recv mb =
    if Queue.is_empty mb.queue then
      suspend (fun wake -> Queue.push wake mb.takers)
    else Queue.pop mb.queue

  let try_recv mb = Queue.take_opt mb.queue
  let length mb = Queue.length mb.queue
end

module Resource = struct
  type t = {
    mutable available : int;
    waiters : (unit -> unit) Queue.t; (* FIFO: push on park, pop on release *)
  }

  let create (_ : sim_handle) ~capacity =
    if capacity < 1 then invalid_arg "Sim.Resource.create: capacity < 1";
    { available = capacity; waiters = Queue.create () }

  let acquire r =
    if r.available > 0 then r.available <- r.available - 1
    else suspend (fun wake -> Queue.push wake r.waiters)

  let release r =
    match Queue.take_opt r.waiters with
    | Some wake -> wake ()
    | None -> r.available <- r.available + 1

  let available r = r.available

  let use r c =
    acquire r;
    (try delay c
     with e ->
       release r;
       raise e);
    release r
end
