(** Binary min-heap keyed by [(time, sequence)] pairs.

    The secondary sequence key makes event ordering deterministic: two
    events scheduled for the same cycle pop in scheduling order, so every
    simulation run is exactly reproducible.

    Internally a structure of arrays: keys live in unboxed [int] arrays,
    payloads in a separate array whose slots are cleared as elements
    leave the heap, so {!push} allocates nothing and a popped payload is
    collectable immediately. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val min_time : 'a t -> int
(** Time key of the minimum element, without allocating.
    @raise Invalid_argument on an empty heap. *)

val pop_min : 'a t -> 'a
(** Removes the minimum element and returns its payload, without
    allocating — the simulation engine's hot path ({!min_time} first for
    the clock, then [pop_min] for the action).
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> (int * int * 'a) option
(** Removes and returns the minimum element, or [None] if empty.
    Allocating convenience wrapper over {!min_time}/{!pop_min}. *)

val peek : 'a t -> (int * int * 'a) option
val size : 'a t -> int
val is_empty : 'a t -> bool
