type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

(* Child seeds come from full 64-bit draws finalized splitmix64-style
   through the golden-ratio constants [create] already mixes in:
   [Random.State.bits] alone is 30-bit and order-dependent, so a few
   thousand splits would start colliding at the birthday bound
   (~2^15). Each draw is spread over the whole word before it becomes
   seed material, and the two words cross-mix so sibling streams differ
   in every array slot. *)
let golden64 = 0x9e3779b97f4a7c15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let split t =
  let a = mix64 (Int64.add (Random.State.bits64 t) golden64) in
  let b =
    mix64
      (Int64.logxor a
         (Int64.mul (Random.State.bits64 t) (Int64.of_int 0x5bd1e995)))
  in
  Random.State.make
    [|
      Int64.to_int a land max_int;
      Int64.to_int b land max_int;
      Int64.to_int (Int64.logxor a b) land max_int;
    |]

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Random.State.int t bound

let float t ~bound = Random.State.float t bound
let bool t = Random.State.bool t

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: non-positive mean";
  let u = 1.0 -. Random.State.float t 1.0 (* in (0, 1] *) in
  -.mean *. log u

let pareto t ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then
    invalid_arg "Rng.pareto: non-positive parameter";
  let u = 1.0 -. Random.State.float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
