(** Deterministic pseudo-random streams for workload generation.

    The simulator itself is variance-free; randomness enters only where
    a workload model wants stochastic arrivals (e.g. the open-loop
    tail-latency experiments). Streams are explicitly seeded and
    splittable, so experiments stay exactly reproducible. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from (and advancing) the parent. Child
    seeds are full 64-bit draws finalized through the golden-ratio
    mixing constants of {!create}, so thousands of sibling streams stay
    collision-free (the 30-bit [Random.State.bits] alternative starts
    colliding at the ~2{^15}-stream birthday bound). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). Raises [Invalid_argument] if [bound <= 0]. *)

val float : t -> bound:float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed, for Poisson inter-arrival times. Raises
    [Invalid_argument] if [mean <= 0]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Heavy-tailed sizes (flow lengths, think times). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
