(* Structure-of-arrays binary min-heap.

   The previous implementation stored one boxed [{time; seq; value}]
   record per pending event: every push allocated, every key comparison
   chased a pointer, and [pop] left the popped record reachable from the
   backing array until some later push overwrote the slot — a space leak
   that pinned completed events' closures (and everything they captured)
   for the life of the heap.

   This layout keeps the [(time, seq)] keys in two unboxed [int] arrays
   (sift loops touch only immediate ints, no write barrier) and the
   payloads in a third array whose vacated slots are overwritten with a
   dummy as soon as an element leaves the heap, so popped values are
   collectable immediately. Pushes allocate nothing; the sifts move
   elements into a hole instead of swapping. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

(* Fills empty value slots. An immediate (so [Array.make] builds a
   uniform array for any 'a) that no read path can observe: every access
   is bounds-guarded by [size]. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic ()

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }

let grow h =
  let cap = Array.length h.times in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let times' = Array.make cap' 0 in
  let seqs' = Array.make cap' 0 in
  let values' = Array.make cap' (dummy ()) in
  Array.blit h.times 0 times' 0 h.size;
  Array.blit h.seqs 0 seqs' 0 h.size;
  Array.blit h.values 0 values' 0 h.size;
  h.times <- times';
  h.seqs <- seqs';
  h.values <- values'

let push h ~time ~seq value =
  if h.size = Array.length h.times then grow h;
  let times = h.times and seqs = h.seqs and values = h.values in
  (* Sift up around a hole: parents greater than [(time, seq)] slide
     down; the new element is written once, into its final slot. *)
  (* Indices below are all in [0, size): safe for unsafe accesses. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 2 in
    let tp = Array.unsafe_get times p in
    if tp > time || (tp = time && Array.unsafe_get seqs p > seq) then begin
      Array.unsafe_set times !i tp;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set values !i (Array.unsafe_get values p);
      i := p
    end
    else moving := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set values !i value

let min_time h =
  if h.size = 0 then invalid_arg "Heap.min_time: empty heap";
  h.times.(0)

let pop_min h =
  if h.size = 0 then invalid_arg "Heap.pop_min: empty heap";
  let times = h.times and seqs = h.seqs and values = h.values in
  let top = values.(0) in
  let n = h.size - 1 in
  h.size <- n;
  if n = 0 then values.(0) <- dummy ()
  else begin
    (* Move the last element into the root hole, clearing its old slot
       (the space-leak fix), then sift the hole down. *)
    let t = times.(n) and s = seqs.(n) and v = values.(n) in
    values.(n) <- dummy ();
    (* Indices below are all in [0, n): safe for unsafe accesses. *)
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= n then moving := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            &&
            let tr = Array.unsafe_get times r
            and tl = Array.unsafe_get times l in
            tr < tl
            || (tr = tl && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
          then r
          else l
        in
        let tc = Array.unsafe_get times c in
        if tc < t || (tc = t && Array.unsafe_get seqs c < s) then begin
          Array.unsafe_set times !i tc;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set values !i (Array.unsafe_get values c);
          i := c
        end
        else moving := false
      end
    done;
    Array.unsafe_set times !i t;
    Array.unsafe_set seqs !i s;
    Array.unsafe_set values !i v
  end;
  top

let pop h =
  if h.size = 0 then None
  else begin
    let time = h.times.(0) and seq = h.seqs.(0) in
    let value = pop_min h in
    Some (time, seq, value)
  end

let peek h =
  if h.size = 0 then None else Some (h.times.(0), h.seqs.(0), h.values.(0))

let size h = h.size
let is_empty h = h.size = 0
