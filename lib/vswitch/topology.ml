module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Packet = Armvirt_net.Packet
module Link = Armvirt_net.Link
module Hypervisor = Armvirt_hypervisor.Hypervisor

type spec = Single | Pair | Star of int

let hosts_of_spec = function Single -> 1 | Pair -> 2 | Star n -> n

let spec_of_string s =
  match String.lowercase_ascii s with
  | "single" -> Single
  | "pair" -> Pair
  | "star" -> Star 4
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "star" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n >= 2 -> Star n
          | _ -> invalid_arg "Topology: star:<n> needs n >= 2")
      | _ ->
          invalid_arg
            (Printf.sprintf "Topology: unknown spec %S (single|pair|star|star:<n>)"
               s))

let spec_to_string = function
  | Single -> "single"
  | Pair -> "pair"
  | Star 4 -> "star"
  | Star n -> Printf.sprintf "star:%d" n

type vm = { vm_id : int; host : int; port : int; mac : int }

type t = {
  spec : spec;
  hyp : Hypervisor.t;
  switches : Switch.t array; (* one per host *)
  spine : Switch.t option; (* Star only *)
  vms : vm array;
}

let mk_link sim ~freq_ghz ~gbps =
  (* Generalized [Link.ten_gbe]: a cycle covers gbps/8 GB/s of wire. *)
  let cycles_per_byte = freq_ghz *. 8.0 /. gbps in
  let propagation = Cycles.of_us ~hz:(freq_ghz *. 1e9) 2.0 in
  Link.create sim ~propagation ~cycles_per_byte

let build ?(queue_capacity = 64) ?(uplink_gbps = 10.0) ~vms (hyp : Hypervisor.t)
    spec =
  if vms < 1 then invalid_arg "Topology.build: vms < 1";
  if uplink_gbps <= 0.0 then invalid_arg "Topology.build: uplink_gbps <= 0";
  (match spec with
  | Star n when n < 2 -> invalid_arg "Topology.build: star needs >= 2 hosts"
  | _ -> ());
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let freq_ghz = Machine.freq_ghz machine in
  let profile = Port_profile.of_hypervisor hyp in
  let hosts = hosts_of_spec spec in
  let switches =
    Array.init hosts (fun h ->
        Switch.create ~queue_capacity ~name:(Printf.sprintf "s%d" h) machine
          profile)
  in
  let link () = mk_link sim ~freq_ghz ~gbps:uplink_gbps in
  let spine =
    match spec with
    | Single -> None
    | Pair ->
        Switch.connect switches.(0) switches.(1) ~a_to_b:(link ())
          ~b_to_a:(link ());
        None
    | Star _ ->
        let spine =
          Switch.create ~queue_capacity ~name:"spine" machine profile
        in
        Array.iter
          (fun leaf ->
            Switch.connect leaf spine ~a_to_b:(link ()) ~b_to_a:(link ()))
          switches;
        Some spine
  in
  let vms =
    Array.init vms (fun i ->
        let host = i mod hosts in
        let port =
          Switch.attach switches.(host) ~mac:i
            ~deliver:(fun ~src:_ ~dst:_ _ -> ())
        in
        { vm_id = i; host; port; mac = i })
  in
  { spec; hyp; switches; spine; vms }

let spec t = t.spec
let hyp t = t.hyp
let hosts t = Array.length t.switches
let num_vms t = Array.length t.vms
let switch t h = t.switches.(h)
let spine t = t.spine

let vm_host t i = t.vms.(i).host
let same_host t a b = t.vms.(a).host = t.vms.(b).host

let set_handler t ~vm deliver =
  let v = t.vms.(vm) in
  Switch.set_handler t.switches.(v.host) ~port:v.port deliver

let send t ~src ~dst pkt =
  let v = t.vms.(src) in
  Switch.transmit t.switches.(v.host) ~port:v.port ~dst:t.vms.(dst).mac pkt

let send_to_mac t ~src ~dst_mac pkt =
  let v = t.vms.(src) in
  Switch.transmit t.switches.(v.host) ~port:v.port ~dst:dst_mac pkt

let all_switches t =
  Array.to_list t.switches @ match t.spine with Some s -> [ s ] | None -> []

let uplinks t = List.concat_map Switch.uplink_links (all_switches t)

let max_uplink_utilization t =
  List.fold_left (fun m l -> Float.max m (Link.utilization l)) 0.0 (uplinks t)

let total_dropped t =
  List.fold_left (fun s sw -> s + Switch.dropped sw) 0 (all_switches t)
