(** Multi-host cluster topologies: switches composed over uplinks.

    One {!Switch} per simulated host, VMs attached round-robin across
    hosts, hosts joined by full-duplex {!Armvirt_net.Link} pairs:
    directly for a two-host [Pair], through a VM-less spine switch for
    a [Star]. All hosts share one simulation world and machine (the
    paper's testbed machines are identical), so cross-host costs come
    from the wires, not from distinct machine models. Topologies are
    trees — the switch has no spanning-tree protocol. *)

type spec = Single | Pair | Star of int  (** [Star n]: [n] leaf hosts. *)

val hosts_of_spec : spec -> int

val spec_of_string : string -> spec
(** ["single"], ["pair"], ["star"] (= 4 leaves) or ["star:<n>"].
    Raises [Invalid_argument] otherwise. *)

val spec_to_string : spec -> string

type t

val build :
  ?queue_capacity:int ->
  ?uplink_gbps:float ->
  vms:int ->
  Armvirt_hypervisor.Hypervisor.t ->
  spec ->
  t
(** Builds the switches, uplinks (default 10 GbE) and [vms] VM ports on
    the hypervisor's machine. VM [i] lives on host [i mod hosts] with
    MAC [i] and an initially-ignoring delivery handler (see
    {!set_handler}). Raises [Invalid_argument] on a non-positive VM
    count or uplink rate. *)

val spec : t -> spec
val hyp : t -> Armvirt_hypervisor.Hypervisor.t
val hosts : t -> int
val num_vms : t -> int

val switch : t -> int -> Switch.t
(** The host's switch (for attaching extra ports, e.g. a load
    generator's client port). *)

val spine : t -> Switch.t option
val vm_host : t -> int -> int
val same_host : t -> int -> int -> bool

val set_handler :
  t ->
  vm:int ->
  (src:int -> dst:int -> Armvirt_net.Packet.t -> unit) ->
  unit
(** Replace VM [vm]'s frame delivery handler. *)

val send : t -> src:int -> dst:int -> Armvirt_net.Packet.t -> unit
(** VM-to-VM transmit through the source VM's switch (and the uplinks,
    when the destination lives on another host). Must run inside a
    simulation process. *)

val send_to_mac : t -> src:int -> dst_mac:int -> Armvirt_net.Packet.t -> unit
(** Like {!send} but addressing a raw MAC — e.g. a load generator's
    client port attached outside the VM set. *)

val uplinks : t -> Armvirt_net.Link.t list
val max_uplink_utilization : t -> float
val total_dropped : t -> int
