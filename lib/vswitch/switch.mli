(** A host-side virtual switch with tap-style ports.

    The missing piece between the paper's single-wire netperf testbed
    and cluster traffic: one switch per simulated host, one port per
    VM. A forward charges the hypervisor's port costs on both sides
    ({!Port_profile}: vhost zero-copy vs Xen Dom0 copy), optionally
    learns source MACs, bounds every port's egress queue (overflow is
    dropped and accounted, like a tap device's txqueue), and composes
    into multi-host topologies over {!Armvirt_net.Link} uplinks. Trunk
    (uplink) frames carry a {!Armvirt_net.Packet.vlan_tag_bytes} 802.1Q
    tag while on the wire.

    Every forwarded frame bumps {!Armvirt_arch.Machine.count} markers
    under the [vswitch.<switch>/p<port>/{rx,tx,drop}], [vswitch.<switch>/flood]
    and [wire.<switch>-u<n>/{tx,rx}] labels, so a traced run surfaces
    per-port and per-wire counters in [armvirt stat] as operation rows —
    runs with no switch are byte-identical to before. Loop-free
    (tree) topologies only: there is no spanning-tree protocol. *)

type t

val create :
  ?queue_capacity:int ->
  ?learning:bool ->
  name:string ->
  Armvirt_arch.Machine.t ->
  Port_profile.t ->
  t
(** [queue_capacity] (default 64) bounds each port's egress queue —
    frames accepted but not yet delivered into the guest; overflow
    drops. [learning] (default true) enables MAC learning with
    flooding of unknown destinations; when off, forwarding is static
    (local MAC match, else the uplink). Raises [Invalid_argument] on a
    non-positive capacity. *)

val name : t -> string
val profile : t -> Port_profile.t
val num_ports : t -> int

val attach :
  t ->
  mac:int ->
  deliver:(src:int -> dst:int -> Armvirt_net.Packet.t -> unit) ->
  int
(** Attach a VM: returns the new port id (dense, in attach order).
    [deliver] runs in a fresh simulation process when a frame reaches
    the guest, with the frame's source and destination MACs — ports are
    promiscuous taps (floods reach every port), so the guest stack
    filters on [dst] like a real NIC driver. Raises [Invalid_argument]
    on a duplicate MAC. *)

val set_handler :
  t -> port:int -> (src:int -> dst:int -> Armvirt_net.Packet.t -> unit) -> unit

val transmit : t -> port:int -> dst:int -> Armvirt_net.Packet.t -> unit
(** A guest on [port] transmits a frame to MAC [dst]: charges the
    ingress cost in the calling process (the guest's kick and the
    backend TX path), then forwards — to a local port's egress queue,
    over an uplink, or flooded when the destination is unknown. Must
    run inside a simulation process. *)

val connect :
  t -> t -> a_to_b:Armvirt_net.Link.t -> b_to_a:Armvirt_net.Link.t -> unit
(** Full-duplex uplink between two switches, one wire per direction.
    May be called repeatedly to build trees (e.g. leaves to a spine). *)

(** {1 Stats} *)

type port_stats = {
  stat_port : int;
  stat_mac : int;
  rx : int;  (** Frames accepted from the guest. *)
  tx : int;  (** Frames delivered into the guest. *)
  drops : int;  (** Egress-queue overflows. *)
  queue_depth : int;  (** Current egress occupancy. *)
}

val port_stats : t -> port_stats list
(** In port-id order. *)

val dropped : t -> int
val flooded : t -> int

type dest = Local of int | Via_uplink of int

val mac_table : t -> (int * dest) list
(** Learned MACs, ascending. Empty when [learning] is off. *)

val uplink_links : t -> Armvirt_net.Link.t list
(** Outbound wires in connect order (for {!Armvirt_net.Link.utilization}). *)

val uplink_stats : t -> (int * int * int) list
(** [(uplink, tx_frames, rx_frames)] in connect order. *)
