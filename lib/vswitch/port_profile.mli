(** Per-hypervisor cost of moving a frame across a host switch port.

    Section V of the paper explains the VM networking results with two
    contrasting data paths: KVM's in-kernel vhost backend hands whole
    buffers to the guest ring without copying, while Xen's Dom0 netback
    performs a grant operation and a copy for every frame. A port
    profile distills the hypervisor's {!Armvirt_hypervisor.Io_profile}
    into what the switch charges on each side of a forward: ingress
    (guest transmit into the switch — the backend's TX path) and egress
    (switch into the receiving guest — the backend's RX path), plus the
    notification and interrupt-delivery latencies bracketing them. *)

type t = {
  name : string;  (** The hypervisor model the profile was derived from. *)
  fabric_per_packet : int;
      (** Switch-fabric lookup/forward cycles per frame, hypervisor
          independent; keeps even a native (all-zeros profile) port from
          forwarding in zero time. *)
  ingress_per_packet : int;
      (** Backend + grant cycles per frame a guest transmits into the
          switch. *)
  ingress_per_byte : float;  (** TX-side copy; 0 under zero-copy vhost. *)
  egress_per_packet : int;
      (** Backend + grant cycles per frame delivered into a guest. *)
  egress_per_byte : float;  (** RX-side copy (Xen's Dom0 copy). *)
  notify_latency : int;  (** Guest kick -> backend sees the frame. *)
  irq_delivery_latency : int;  (** Backend -> guest RX handler. *)
  zero_copy : bool;
}

val default_fabric_per_packet : int

val of_hypervisor : Armvirt_hypervisor.Hypervisor.t -> t

val ingress_cost : t -> bytes:int -> int
(** Host cycles to accept a [bytes]-sized frame from a guest, including
    the fabric forward. Raises [Invalid_argument] on a negative size. *)

val egress_cost : t -> bytes:int -> int
(** Host cycles to push a [bytes]-sized frame into the receiving guest
    (the per-port egress service time bounding port throughput). *)

val pp : Format.formatter -> t -> unit
