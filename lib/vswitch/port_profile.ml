module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile

(* Software-switch forwarding work per frame (lookup + header rewrite +
   queue handoff), independent of the hypervisor: even a native bridge
   is not free. ~125 ns at 2.4 GHz, in line with measured OVS/Linux
   bridge per-packet costs. *)
let default_fabric_per_packet = 300

type t = {
  name : string;
  fabric_per_packet : int;
  ingress_per_packet : int;
  ingress_per_byte : float;
  egress_per_packet : int;
  egress_per_byte : float;
  notify_latency : int;
  irq_delivery_latency : int;
  zero_copy : bool;
}

let copy_cycles per_byte bytes =
  int_of_float (Float.round (per_byte *. float_of_int bytes))

let of_hypervisor (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  {
    name = hyp.Hypervisor.name;
    fabric_per_packet = default_fabric_per_packet;
    ingress_per_packet =
      p.Io_profile.backend_cpu_per_packet + p.Io_profile.tx_grant_per_packet;
    ingress_per_byte = p.Io_profile.tx_copy_per_byte;
    egress_per_packet =
      p.Io_profile.backend_cpu_per_packet + p.Io_profile.rx_grant_per_packet;
    egress_per_byte = p.Io_profile.rx_copy_per_byte;
    notify_latency = p.Io_profile.notify_latency;
    irq_delivery_latency = p.Io_profile.irq_delivery_latency;
    zero_copy = p.Io_profile.zero_copy;
  }

let ingress_cost t ~bytes =
  if bytes < 0 then invalid_arg "Port_profile.ingress_cost: negative size";
  t.ingress_per_packet + t.fabric_per_packet
  + copy_cycles t.ingress_per_byte bytes

let egress_cost t ~bytes =
  if bytes < 0 then invalid_arg "Port_profile.egress_cost: negative size";
  t.egress_per_packet + copy_cycles t.egress_per_byte bytes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>profile               %s@,fabric/packet         %6d@,\
     ingress pkt/byte      %6d/%.2f@,egress pkt/byte       %6d/%.2f@,\
     notify latency        %6d@,irq delivery latency  %6d@,\
     zero copy             %b@]"
    t.name t.fabric_per_packet t.ingress_per_packet t.ingress_per_byte
    t.egress_per_packet t.egress_per_byte t.notify_latency
    t.irq_delivery_latency t.zero_copy
