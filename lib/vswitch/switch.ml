module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Packet = Armvirt_net.Packet
module Link = Armvirt_net.Link
module Marker = Armvirt_obs.Marker

type port = {
  port_id : int;
  mac : int;
  mutable handler : src:int -> dst:int -> Packet.t -> unit;
  mutable queued : int; (* frames committed to egress, not yet delivered *)
  mutable rx_frames : int;
  mutable tx_frames : int;
  mutable dropped : int;
  mutable egress_free_at : Cycles.t; (* per-port backend serialization *)
}

type dest = Local of int | Via_uplink of int

type uplink = {
  up_id : int;
  up_link : Link.t;
  mutable up_tx : int;
  mutable up_rx : int;
  (* Set by [connect]: runs the peer switch's ingress after the wire
     delivers a frame. *)
  mutable up_deliver : src:int -> dst:int -> Packet.t -> unit;
}

type t = {
  name : string;
  machine : Machine.t;
  profile : Port_profile.t;
  queue_capacity : int;
  learning : bool;
  mac_table : (int, dest) Hashtbl.t;
  mutable ports : port list; (* reverse attach order *)
  mutable uplinks : uplink list; (* reverse connect order *)
  mutable flooded : int;
}

let create ?(queue_capacity = 64) ?(learning = true) ~name machine profile =
  if queue_capacity < 1 then invalid_arg "Switch.create: queue_capacity < 1";
  {
    name;
    machine;
    profile;
    queue_capacity;
    learning;
    mac_table = Hashtbl.create 32;
    ports = [];
    uplinks = [];
    flooded = 0;
  }

let name t = t.name
let profile t = t.profile
let num_ports t = List.length t.ports
let find_port t id =
  match List.find_opt (fun p -> p.port_id = id) t.ports with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Switch %s: no port %d" t.name id)

let attach t ~mac ~deliver =
  if List.exists (fun p -> p.mac = mac) t.ports then
    invalid_arg (Printf.sprintf "Switch %s: MAC %d already attached" t.name mac);
  let port_id = List.length t.ports in
  let p =
    {
      port_id;
      mac;
      handler = deliver;
      queued = 0;
      rx_frames = 0;
      tx_frames = 0;
      dropped = 0;
      egress_free_at = Cycles.zero;
    }
  in
  t.ports <- p :: t.ports;
  port_id

let set_handler t ~port deliver = (find_port t port).handler <- deliver

(* Push a frame into a local port's egress pipeline: a bounded queue in
   front of the per-port backend (egress cost serializes per port, like
   a wire), then the virtual interrupt into the guest. [lead] is extra
   latency before the backend can start (the notify kick when the frame
   came from a local guest; zero off the uplink). Must run inside a
   simulation process. *)
let egress t p ~lead ~src ~dst pkt =
  if p.queued >= t.queue_capacity then begin
    p.dropped <- p.dropped + 1;
    Machine.count t.machine (Marker.port ~switch:t.name ~port:p.port_id Marker.Drop)
  end
  else begin
    p.queued <- p.queued + 1;
    let now = Sim.current_time () in
    let cost =
      Port_profile.egress_cost t.profile ~bytes:(Packet.wire_bytes pkt)
    in
    let start =
      Cycles.max (Cycles.add now (Cycles.of_int lead)) p.egress_free_at
    in
    let finished = Cycles.add start (Cycles.of_int cost) in
    p.egress_free_at <- finished;
    let arrival =
      Cycles.add finished (Cycles.of_int t.profile.Port_profile.irq_delivery_latency)
    in
    Sim.spawn_here ~name:"vswitch-egress" (fun () ->
        Sim.delay (Cycles.sub arrival now);
        p.queued <- p.queued - 1;
        p.tx_frames <- p.tx_frames + 1;
        Machine.count t.machine
          (Marker.port ~switch:t.name ~port:p.port_id Marker.Tx);
        p.handler ~src ~dst pkt)
  end

let uplink_send t u ~src ~dst pkt =
  u.up_tx <- u.up_tx + 1;
  Machine.count t.machine (Marker.uplink ~switch:t.name ~uplink:u.up_id Marker.Tx);
  (* Trunk ports tag the frame: +4 bytes of 802.1Q on the wire. *)
  Packet.set_framing pkt (Packet.framing_bytes pkt + Packet.vlan_tag_bytes);
  Link.send u.up_link pkt ~deliver:(fun pkt -> u.up_deliver ~src ~dst pkt)

type ingress_from = From_port of int | From_uplink of int

let rec forward t ~ingress ~src ~dst pkt =
  if t.learning then
    Hashtbl.replace t.mac_table src
      (match ingress with
      | From_port i -> Local i
      | From_uplink u -> Via_uplink u);
  let route =
    if t.learning then Hashtbl.find_opt t.mac_table dst
    else
      (* Static forwarding: local MAC match, else the uplink. *)
      match List.find_opt (fun p -> p.mac = dst) t.ports with
      | Some p -> Some (Local p.port_id)
      | None -> (
          match t.uplinks with
          | [] -> None
          | u :: _ -> Some (Via_uplink u.up_id))
  in
  match route with
  | Some (Local pid) -> (
      let p = find_port t pid in
      let lead =
        match ingress with
        | From_port _ -> t.profile.Port_profile.notify_latency
        | From_uplink _ -> 0
      in
      egress t p ~lead ~src ~dst pkt)
  | Some (Via_uplink uid)
    when (match ingress with From_uplink u -> u <> uid | From_port _ -> true)
    -> (
      match List.find_opt (fun u -> u.up_id = uid) t.uplinks with
      | Some u -> uplink_send t u ~src ~dst pkt
      | None -> ())
  | Some (Via_uplink _) ->
      (* Split horizon: never bounce a frame back out the uplink it
         arrived on. *)
      ()
  | None -> flood t ~ingress ~src ~dst pkt

and flood t ~ingress ~src ~dst pkt =
  t.flooded <- t.flooded + 1;
  Machine.count t.machine (Marker.flood ~switch:t.name);
  let skip_port =
    match ingress with From_port i -> Some i | From_uplink _ -> None
  in
  let skip_uplink =
    match ingress with From_uplink u -> Some u | From_port _ -> None
  in
  let lead =
    match ingress with
    | From_port _ -> t.profile.Port_profile.notify_latency
    | From_uplink _ -> 0
  in
  List.iter
    (fun p -> if Some p.port_id <> skip_port then egress t p ~lead ~src ~dst pkt)
    (List.rev t.ports);
  List.iter
    (fun u ->
      if Some u.up_id <> skip_uplink then uplink_send t u ~src ~dst pkt)
    (List.rev t.uplinks)

let transmit t ~port ~dst pkt =
  let p = find_port t port in
  p.rx_frames <- p.rx_frames + 1;
  Machine.count t.machine (Marker.port ~switch:t.name ~port:p.port_id Marker.Rx);
  (* The sending guest's kick plus the backend's TX path, charged in
     the caller's (guest) process like the netperf model does. *)
  Machine.spend t.machine "vswitch.ingress"
    (Port_profile.ingress_cost t.profile ~bytes:(Packet.wire_bytes pkt));
  forward t ~ingress:(From_port port) ~src:p.mac ~dst pkt

let add_uplink t link =
  let u =
    {
      up_id = List.length t.uplinks;
      up_link = link;
      up_tx = 0;
      up_rx = 0;
      up_deliver = (fun ~src:_ ~dst:_ _ -> ());
    }
  in
  t.uplinks <- u :: t.uplinks;
  u

let connect a b ~a_to_b ~b_to_a =
  let ua = add_uplink a a_to_b in
  let ub = add_uplink b b_to_a in
  ua.up_deliver <-
    (fun ~src ~dst pkt ->
      Packet.set_framing pkt (Packet.framing_bytes pkt - Packet.vlan_tag_bytes);
      ub.up_rx <- ub.up_rx + 1;
      Machine.count b.machine
        (Marker.uplink ~switch:b.name ~uplink:ub.up_id Marker.Rx);
      forward b ~ingress:(From_uplink ub.up_id) ~src ~dst pkt);
  ub.up_deliver <-
    (fun ~src ~dst pkt ->
      Packet.set_framing pkt (Packet.framing_bytes pkt - Packet.vlan_tag_bytes);
      ua.up_rx <- ua.up_rx + 1;
      Machine.count a.machine
        (Marker.uplink ~switch:a.name ~uplink:ua.up_id Marker.Rx);
      forward a ~ingress:(From_uplink ua.up_id) ~src ~dst pkt)

type port_stats = {
  stat_port : int;
  stat_mac : int;
  rx : int;
  tx : int;
  drops : int;
  queue_depth : int;
}

let port_stats t =
  List.rev_map
    (fun p ->
      {
        stat_port = p.port_id;
        stat_mac = p.mac;
        rx = p.rx_frames;
        tx = p.tx_frames;
        drops = p.dropped;
        queue_depth = p.queued;
      })
    t.ports

let dropped t = List.fold_left (fun s p -> s + p.dropped) 0 t.ports
let flooded t = t.flooded

let mac_table t =
  Hashtbl.fold (fun mac dest l -> (mac, dest) :: l) t.mac_table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
(* lint: sorted — listing is ordered by MAC before it escapes *)

let uplink_links t = List.rev_map (fun u -> u.up_link) t.uplinks

let uplink_stats t =
  List.rev_map (fun u -> (u.up_id, u.up_tx, u.up_rx)) t.uplinks
