type t = {
  pages : int;
  page_kb : int;
  vcpus : int;
  hot_pages : int;
  hot_fraction : float;
  writes_per_txn : int;
  txn_rate_hz : float;
  service_cycles : int;
  max_rounds : int;
  downtime_target_us : float;
  bandwidth_gbps : float;
  batch_pages : int;
  warmup_us : float;
  tail_us : float;
  seed : int;
}

let default =
  {
    pages = 4096;
    page_kb = 4;
    vcpus = 4;
    hot_pages = 512;
    hot_fraction = 0.9;
    writes_per_txn = 8;
    txn_rate_hz = 20_000.0;
    service_cycles = 20_000;
    max_rounds = 30;
    downtime_target_us = 300.0;
    bandwidth_gbps = 10.0;
    batch_pages = 64;
    warmup_us = 2_000.0;
    tail_us = 1_000.0;
    seed = 42;
  }

let page_bytes t = t.page_kb * 1024
let total_bytes t = t.pages * page_bytes t

let validate t =
  if t.pages <= 0 then invalid_arg "Plan: pages must be positive";
  if t.page_kb <= 0 then invalid_arg "Plan: page_kb must be positive";
  if t.vcpus <= 0 then invalid_arg "Plan: vcpus must be positive";
  if t.hot_pages < 0 || t.hot_pages > t.pages then
    invalid_arg "Plan: hot_pages out of range";
  if t.hot_fraction < 0.0 || t.hot_fraction > 1.0 then
    invalid_arg "Plan: hot_fraction out of [0,1]";
  if t.writes_per_txn < 0 then invalid_arg "Plan: negative writes_per_txn";
  if t.txn_rate_hz < 0.0 then invalid_arg "Plan: negative txn_rate_hz";
  if t.service_cycles < 0 then invalid_arg "Plan: negative service_cycles";
  if t.max_rounds < 1 then invalid_arg "Plan: max_rounds must be >= 1";
  if t.downtime_target_us <= 0.0 then
    invalid_arg "Plan: downtime_target_us must be positive";
  if t.bandwidth_gbps <= 0.0 then
    invalid_arg "Plan: bandwidth_gbps must be positive";
  if t.batch_pages <= 0 then invalid_arg "Plan: batch_pages must be positive";
  if t.warmup_us < 0.0 then invalid_arg "Plan: negative warmup_us";
  if t.tail_us < 0.0 then invalid_arg "Plan: negative tail_us"

let pp ppf t =
  Format.fprintf ppf
    "%d pages x %d KiB (%d hot, P(hot)=%.2f), %d VCPUs, %.0f txn/s x %d \
     writes, %.1f Gb/s link, target %.0f us, <= %d rounds, seed %d"
    t.pages t.page_kb t.hot_pages t.hot_fraction t.vcpus t.txn_rate_hz
    t.writes_per_txn t.bandwidth_gbps t.downtime_target_us t.max_rounds t.seed
