(** A live-migration scenario: the guest, its write traffic, the wire,
    and the operator's service-level objective.

    The guest runs an open-loop request/response workload (netperf
    TCP_RR-flavoured): requests arrive at a fixed rate whether or not
    the guest keeps up, and each request dirties a skewed working set —
    a hot set written constantly plus a cold majority touched rarely,
    the access pattern that makes pre-copy converge. *)

type t = {
  pages : int;  (** Guest memory size in pages. *)
  page_kb : int;  (** Page granule in KiB (4 unless sweeping page size). *)
  vcpus : int;  (** VCPUs to pause/resume at blackout. *)
  hot_pages : int;  (** Working-set pages [0, hot_pages) written often. *)
  hot_fraction : float;  (** Probability a write lands in the hot set. *)
  writes_per_txn : int;  (** Pages dirtied per request. *)
  txn_rate_hz : float;  (** Open-loop request arrival rate. *)
  service_cycles : int;  (** Guest CPU per request, before fault costs. *)
  max_rounds : int;
      (** Pre-copy round cap: when the dirty rate outruns the wire, the
          engine stops iterating here and forces stop-and-copy. *)
  downtime_target_us : float;
      (** Convergence test: stop-and-copy begins once the projected
          blackout fits under this SLO. *)
  bandwidth_gbps : float;  (** Migration link bandwidth. *)
  batch_pages : int;  (** Pages per transport batch (one kick each). *)
  warmup_us : float;
      (** Pre-migration window measured for the baseline latency. *)
  tail_us : float;  (** Post-resume window, so the blackout backlog drains. *)
  seed : int;  (** Root of the deterministic write-address stream. *)
}

val default : t
(** 16 MiB guest (4096 x 4 KiB), 512-page hot set at 90% affinity,
    20k requests/s dirtying 8 pages each, 10 Gb/s link, 300 us downtime
    SLO — a scenario that converges in a handful of rounds on every
    hypervisor model. *)

val page_bytes : t -> int
val total_bytes : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] on a nonsensical plan. *)

val pp : Format.formatter -> t -> unit
