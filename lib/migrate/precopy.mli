(** The iterative pre-copy live-migration engine.

    Classic pre-copy (Clark et al.-style), priced through this repo's
    cost models: round 0 streams all of guest memory over the migration
    link while the guest keeps running under stage-2 dirty logging
    ({!Armvirt_mem.Dirty_log}); each later round harvests and re-ships
    what the guest dirtied meanwhile. After every round the engine
    projects the blackout a stop-and-copy would take right now; once the
    projection fits the plan's downtime SLO — or the round cap says the
    dirty rate has outrun the wire — the VCPUs pause and the residual
    set, plus VCPU/device state, crosses during the measured downtime.

    The guest meanwhile serves an open-loop request stream whose writes
    take the write-protect faults, so per-round request latency shows
    migration's guest-visible cost — the netperf-during-migration
    measurement, with the fault path priced per hypervisor
    ({!Armvirt_hypervisor.Migrate_profile}).

    Everything runs in the hypervisor's own simulation; results are
    deterministic for a given plan and hypervisor. *)

type round = {
  index : int;  (** 0 is the full-memory copy. *)
  pages : int;  (** Pages shipped in this round. *)
  bytes : int;
  duration_us : float;
  wp_faults : int;  (** Dirty-logging faults taken while it shipped. *)
  p99_us : float;
      (** p99 latency of guest requests completed during this round;
          [nan] if none completed. *)
}

type result = {
  hyp_name : string;
  transport : string;  (** ["vhost"] or ["grant"]. *)
  plan : Plan.t;
  rounds : round list;  (** Pre-copy rounds, in order. *)
  precopy_rounds : int;
  total_us : float;  (** Logging start → destination resume complete. *)
  downtime_us : float;  (** VCPU pause → resume: the blackout. *)
  final_pages : int;  (** Residual set shipped during the blackout. *)
  pages_sent : int;  (** All shipped pages, including the blackout. *)
  pages_resent : int;  (** [pages_sent] beyond the one full copy. *)
  wp_faults : int;
  converged : bool;
      (** True when the downtime SLO projection triggered stop-and-copy;
          false when the round cap forced it. *)
  requests : int;  (** Guest requests completed over the whole run. *)
  baseline_p99_us : float;  (** Pre-migration (warmup) request p99. *)
  post_p99_us : float;
      (** p99 over the blackout backlog and post-resume tail. *)
}

val run : ?plan:Plan.t -> Armvirt_hypervisor.Hypervisor.t -> result
(** Runs one migration on the hypervisor's machine. Must be called with
    the hypervisor's simulation idle (it spawns its own processes and
    calls [Sim.run]). Raises [Invalid_argument] on an invalid plan. *)
