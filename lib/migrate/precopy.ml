module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Rng = Armvirt_engine.Rng
module Machine = Armvirt_arch.Machine
module Cost_model = Armvirt_arch.Cost_model
module Stage2 = Armvirt_mem.Stage2
module Dirty_log = Armvirt_mem.Dirty_log
module Link = Armvirt_net.Link
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Migrate_profile = Armvirt_hypervisor.Migrate_profile
module Summary = Armvirt_stats.Summary

type round = {
  index : int;
  pages : int;
  bytes : int;
  duration_us : float;
  wp_faults : int;
  p99_us : float;
}

type result = {
  hyp_name : string;
  transport : string;
  plan : Plan.t;
  rounds : round list;
  precopy_rounds : int;
  total_us : float;
  downtime_us : float;
  final_pages : int;
  pages_sent : int;
  pages_resent : int;
  wp_faults : int;
  converged : bool;
  requests : int;
  baseline_p99_us : float;
  post_p99_us : float;
}

(* Requests flowing from the open-loop arrival process to the guest
   VCPU. [faults] is how many of the request's page writes took a
   dirty-logging fault — the VCPU owes that many fault round trips. *)
type req = Req of { arrival : Cycles.t; faults : int } | Stop

let p99 = function
  | [] -> Float.nan
  | samples -> Summary.percentile (Summary.of_list samples) 99.0

(* The migrating VM's memory: an identity-flavoured stage-2 table with
   one writable mapping per guest page. Page indices double as IPA page
   frames; [Plan.page_kb] only scales byte counts. *)
let build_stage2 plan =
  let s2 = Stage2.create () in
  for i = 0 to plan.Plan.pages - 1 do
    Stage2.map s2 ~ipa_page:i ~pa_page:(0x100000 + i) Stage2.Read_write
  done;
  s2

let run ?(plan = Plan.default) (hyp : Hypervisor.t) =
  Plan.validate plan;
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let prof = hyp.Hypervisor.migrate in
  let freq_hz = Machine.freq_ghz machine *. 1e9 in
  let page_bytes = Plan.page_bytes plan in
  let us_of c = Machine.elapsed_us machine c in
  let cycles_of_us us = Cycles.of_us ~hz:freq_hz us in
  let spend label cycles =
    if cycles > 0 then Machine.spend machine label cycles
  in
  (* The migration link as seen from this machine's clock: 2 us of
     propagation (as Link.ten_gbe) and the plan's bandwidth. *)
  let link =
    Link.create sim
      ~propagation:(cycles_of_us 2.0)
      ~cycles_per_byte:
        (Link.cycles_per_byte_of_gbps
           ~freq_ghz:(Machine.freq_ghz machine)
           plan.Plan.bandwidth_gbps)
  in
  let dlog = Dirty_log.create (build_stage2 plan) in
  (* Shared state between the guest processes and the migration thread.
     [round_ref] tags completed requests with the pre-copy round they
     finished in: -1 = warmup baseline, [precopy_rounds] = blackout
     backlog and post-resume tail. *)
  let round_ref = ref (-1) in
  let paused = ref false in
  let resume_sig = Sim.Signal.create sim in
  let finished = ref false in
  let stop_at = ref Cycles.zero in
  let latencies : (int, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let requests = ref 0 in
  let record_latency us =
    let bucket =
      match Hashtbl.find_opt latencies !round_ref with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace latencies !round_ref l;
          l
    in
    bucket := us :: !bucket;
    incr requests
  in
  let round_latencies idx =
    match Hashtbl.find_opt latencies idx with
    | Some l -> List.rev !l
    | None -> []
  in

  (* --- Guest: open-loop arrivals + a single-queue VCPU server. --- *)
  let mailbox = Sim.Mailbox.create ~name:"migrate-guest-queue" sim in
  let rng = Rng.create ~seed:plan.Plan.seed in
  let cold_span = plan.Plan.pages - plan.Plan.hot_pages in
  let pick_page () =
    if
      cold_span = 0
      || (plan.Plan.hot_pages > 0
         && Rng.float rng ~bound:1.0 < plan.Plan.hot_fraction)
    then Rng.int rng ~bound:plan.Plan.hot_pages
    else plan.Plan.hot_pages + Rng.int rng ~bound:cold_span
  in
  let interval =
    if plan.Plan.txn_rate_hz <= 0.0 then 0
    else Stdlib.max 1 (int_of_float (Float.round (freq_hz /. plan.Plan.txn_rate_hz)))
  in
  if interval > 0 then begin
    Sim.spawn sim ~name:"migrate-arrivals" (fun () ->
        let rec loop () =
          if
            !finished
            && Cycles.compare (Sim.current_time ()) !stop_at >= 0
          then Sim.Mailbox.send mailbox Stop
          else begin
            Sim.delay (Cycles.of_int interval);
            (* The request payload lands in guest memory on arrival
               (DMA), dirtying pages whether or not the VCPU has caught
               up. While the VM is paused for stop-and-copy nothing is
               delivered into its memory — the traffic queues and the
               writes happen on the destination. *)
            let faults = ref 0 in
            if not !paused then
              for _ = 1 to plan.Plan.writes_per_txn do
                match Dirty_log.write dlog ~ipa_page:(pick_page ()) with
                | `Wp_fault -> incr faults
                | `Clean_hit -> ()
              done;
            Sim.Mailbox.send mailbox
              (Req { arrival = Sim.current_time (); faults = !faults });
            loop ()
          end
        in
        loop ());
    Sim.spawn sim ~name:"migrate-guest-vcpu" (fun () ->
        let rec loop () =
          match Sim.Mailbox.recv mailbox with
          | Stop -> ()
          | Req { arrival; faults } ->
              while !paused do
                Sim.Signal.wait resume_sig
              done;
              if faults > 0 then
                spend "migrate.wp_fault"
                  (faults * prof.Migrate_profile.wp_fault_guest_cpu);
              spend "migrate.guest_service" plan.Plan.service_cycles;
              record_latency
                (us_of (Cycles.sub (Sim.current_time ()) arrival));
              loop ()
        in
        loop ())
  end;

  (* --- Migration thread. --- *)
  let rounds_acc = ref [] in
  let pages_sent = ref 0 in
  let final_pages = ref 0 in
  let converged = ref false in
  let total_us_ref = ref 0.0 in
  let downtime_us_ref = ref 0.0 in
  let precopy_rounds = ref 0 in
  (* Ship one batch of pages: harvest-side CPU was already charged; pay
     the staging copy, the transport bookkeeping and the doorbell, then
     stream the bytes in wire-FIFO order. *)
  let ship_batch n =
    let bytes = n * page_bytes in
    spend "migrate.copy"
      (Cost_model.copy_cost ~per_byte:prof.Migrate_profile.page_copy_per_byte
         ~bytes);
    spend "migrate.send" (n * prof.Migrate_profile.page_send_per_page);
    spend "migrate.kick" prof.Migrate_profile.batch_kick;
    ignore (Link.send_bulk link ~bytes)
  in
  let ship_pages n =
    let rec go remaining =
      if remaining > 0 then begin
        let b = Stdlib.min plan.Plan.batch_pages remaining in
        ship_batch b;
        go (remaining - b)
      end
    in
    go n;
    pages_sent := !pages_sent + n
  in
  (* Would stopping now meet the downtime SLO? Blackout = pause all
     VCPUs + harvest/copy/send the residual set + device state + wire +
     resume. *)
  let projected_blackout_us dirty =
    let batches = (dirty + plan.Plan.batch_pages - 1) / plan.Plan.batch_pages in
    let cpu =
      (plan.Plan.vcpus
      * (prof.Migrate_profile.pause_vcpu + prof.Migrate_profile.resume_vcpu))
      + prof.Migrate_profile.state_transfer
      + (dirty * Migrate_profile.blackout_page_cpu prof ~page_bytes)
      + (batches * prof.Migrate_profile.batch_kick)
    in
    us_of
      (Cycles.add (Cycles.of_int cpu)
         (Link.transfer_time link ~bytes:(dirty * page_bytes)))
  in
  Sim.spawn sim ~name:"migrate-thread" (fun () ->
      if plan.Plan.warmup_us > 0.0 then
        Sim.delay (cycles_of_us plan.Plan.warmup_us);
      let start = Sim.current_time () in
      Machine.count machine "migrate.start";
      (* Everything from here on is round 0: the initial protect pass
         already makes the guest fault, and those requests must not
         land in the idle-baseline bucket. *)
      round_ref := 0;
      (* Enable dirty logging: one pass write-protecting every guest
         page, same per-page machinery as the per-round re-arm. *)
      Dirty_log.start dlog;
      spend "migrate.protect"
        (plan.Plan.pages * prof.Migrate_profile.harvest_per_page);
      let rec precopy r to_send =
        round_ref := r;
        Machine.count machine "migrate.round";
        let round_start = Sim.current_time () in
        let faults_before = Dirty_log.wp_faults dlog in
        ship_pages to_send;
        let duration = Cycles.sub (Sim.current_time ()) round_start in
        rounds_acc :=
          {
            index = r;
            pages = to_send;
            bytes = to_send * page_bytes;
            duration_us = us_of duration;
            wp_faults = Dirty_log.wp_faults dlog - faults_before;
            p99_us = Float.nan (* filled in after the run *);
          }
          :: !rounds_acc;
        let dirty = Dirty_log.dirty_count dlog in
        if projected_blackout_us dirty <= plan.Plan.downtime_target_us then begin
          converged := true;
          r + 1
        end
        else if r + 1 >= plan.Plan.max_rounds then begin
          converged := false;
          Machine.count machine "migrate.round_cap";
          r + 1
        end
        else begin
          let pages = Dirty_log.harvest dlog in
          let n = List.length pages in
          spend "migrate.harvest" (n * prof.Migrate_profile.harvest_per_page);
          precopy (r + 1) n
        end
      in
      let n_rounds = precopy 0 plan.Plan.pages in
      precopy_rounds := n_rounds;
      round_ref := n_rounds;
      (* Stop-and-copy: blackout begins. *)
      let pause_start = Sim.current_time () in
      paused := true;
      Machine.count machine "migrate.blackout";
      spend "migrate.pause" (plan.Plan.vcpus * prof.Migrate_profile.pause_vcpu);
      let residual = Dirty_log.harvest dlog in
      let n = List.length residual in
      final_pages := n;
      spend "migrate.harvest" (n * prof.Migrate_profile.harvest_per_page);
      ship_pages n;
      spend "migrate.state" prof.Migrate_profile.state_transfer;
      spend "migrate.resume" (plan.Plan.vcpus * prof.Migrate_profile.resume_vcpu);
      Dirty_log.stop dlog;
      let now = Sim.current_time () in
      downtime_us_ref := us_of (Cycles.sub now pause_start);
      total_us_ref := us_of (Cycles.sub now start);
      paused := false;
      Sim.Signal.notify resume_sig;
      finished := true;
      stop_at := Cycles.add now (cycles_of_us plan.Plan.tail_us));
  Sim.run sim;
  let rounds =
    List.rev_map
      (fun r -> { r with p99_us = p99 (round_latencies r.index) })
      !rounds_acc
  in
  {
    hyp_name = hyp.Hypervisor.name;
    transport = prof.Migrate_profile.transport;
    plan;
    rounds;
    precopy_rounds = !precopy_rounds;
    total_us = !total_us_ref;
    downtime_us = !downtime_us_ref;
    final_pages = !final_pages;
    pages_sent = !pages_sent;
    pages_resent = !pages_sent - plan.Plan.pages;
    wp_faults = Dirty_log.wp_faults dlog;
    converged = !converged;
    requests = !requests;
    baseline_p99_us = p99 (round_latencies (-1));
    post_p99_us = p99 (round_latencies !precopy_rounds);
  }
