type entry = { pa_page : int; mutable last_use : int }

type t = {
  capacity : int;
  table : (int, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Tlb.create: capacity < 1";
  { capacity; table = Hashtbl.create capacity; clock = 0; hits = 0; misses = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let lookup t ~ipa_page =
  match Hashtbl.find_opt t.table ipa_page with
  | Some entry ->
      entry.last_use <- tick t;
      t.hits <- t.hits + 1;
      Some entry.pa_page
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    (* Total order: oldest last_use, ties broken by smallest page, so the
       victim never depends on hash-bucket layout. *)
    (* lint: sorted — selection uses a total order, commutative over entries *)
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (best_key, best)
          when best.last_use < entry.last_use
               || (best.last_use = entry.last_use && best_key < key) ->
            acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | Some (key, _) -> Hashtbl.remove t.table key
  | None -> ()

let insert t ~ipa_page ~pa_page =
  if not (Hashtbl.mem t.table ipa_page) && Hashtbl.length t.table >= t.capacity
  then evict_lru t;
  Hashtbl.replace t.table ipa_page { pa_page; last_use = tick t }

let invalidate_page t ~ipa_page = Hashtbl.remove t.table ipa_page
let invalidate_all t = Hashtbl.reset t.table
let entries t = Hashtbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
