type t = {
  stage2 : Stage2.t;
  tracked : (int, unit) Hashtbl.t;
      (* pages that were writable at [start]: the logged set. Pages the
         guest maps read-only are never demoted by us, so they must not
         be promoted by [stop] either. *)
  dirty : (int, unit) Hashtbl.t;
  mutable logging : bool;
  mutable wp_faults : int;
  mutable rounds : int;
}

let create stage2 =
  {
    stage2;
    tracked = Hashtbl.create 256;
    dirty = Hashtbl.create 256;
    logging = false;
    wp_faults = 0;
    rounds = 0;
  }

let stage2 t = t.stage2
let logging t = t.logging
let wp_faults t = t.wp_faults
let rounds t = t.rounds
let dirty_count t = Hashtbl.length t.dirty
let is_dirty t ~ipa_page = Hashtbl.mem t.dirty ipa_page
let tracked_count t = Hashtbl.length t.tracked

let protect t ipa_page =
  let pa = Stage2.translate t.stage2 (Addr.ipa_of_page ipa_page) in
  Stage2.map t.stage2 ~ipa_page ~pa_page:(Addr.pa_page pa) Stage2.Read_only

let unprotect t ipa_page =
  let pa = Stage2.translate t.stage2 (Addr.ipa_of_page ipa_page) in
  Stage2.map t.stage2 ~ipa_page ~pa_page:(Addr.pa_page pa) Stage2.Read_write

let start t =
  if t.logging then invalid_arg "Dirty_log.start: already logging";
  t.logging <- true;
  Hashtbl.reset t.tracked;
  Hashtbl.reset t.dirty;
  (* Demote every writable mapping so the next write to each page
     faults; remember which pages we demoted. *)
  Stage2.iter t.stage2 (fun ~ipa_page ~pa_page:_ perm ->
      if perm = Stage2.Read_write then Hashtbl.replace t.tracked ipa_page ());
  (* lint: sorted — per-page write-protects are independent, order-free *)
  Hashtbl.iter (fun ipa_page () -> protect t ipa_page) t.tracked

let stop t =
  if not t.logging then invalid_arg "Dirty_log.stop: not logging";
  t.logging <- false;
  (* Lift only the protection we installed: faulting on ordinary writes
     after the migration completes or aborts would be pure overhead. *)
  (* lint: sorted — per-page unprotects are independent, order-free *)
  Hashtbl.iter
    (fun ipa_page () ->
      if Stage2.permission t.stage2 ~ipa_page = Some Stage2.Read_only then
        unprotect t ipa_page)
    t.tracked;
  Hashtbl.reset t.tracked;
  Hashtbl.reset t.dirty

let write t ~ipa_page =
  if not t.logging then `Clean_hit
  else
    let ipa = Addr.ipa_of_page ipa_page in
    match Stage2.translate_write t.stage2 ipa with
    | _pa -> `Clean_hit
    | exception Stage2.Stage2_fault (Stage2.Permission _)
      when Hashtbl.mem t.tracked ipa_page ->
        (* First write to this page this round: the hypervisor marks the
           page dirty and restores write permission, so subsequent
           writes hit at full speed until the next harvest. *)
        unprotect t ipa_page;
        Hashtbl.replace t.dirty ipa_page ();
        t.wp_faults <- t.wp_faults + 1;
        `Wp_fault

let harvest t =
  if not t.logging then invalid_arg "Dirty_log.harvest: not logging";
  let pages =
    Hashtbl.fold (fun page () acc -> page :: acc) t.dirty []
    |> List.sort Int.compare
  in
  Hashtbl.reset t.dirty;
  (* Re-arm: each harvested page is write-protected again so the next
     round observes fresh writes. *)
  List.iter (fun ipa_page -> protect t ipa_page) pages;
  t.rounds <- t.rounds + 1;
  pages
