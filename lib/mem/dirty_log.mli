(** Stage-2 dirty-page tracking for live migration pre-copy.

    The mechanism every migrating hypervisor uses (KVM's dirty bitmap,
    Xen's log-dirty mode): demote the guest's writable stage-2 mappings
    to read-only, let the first write to each page take a permission
    fault, record the page as dirty and restore write access. Each
    pre-copy round {!harvest}s the accumulated set and re-arms the
    protection, so a page costs one fault per round however many times
    it is written.

    Pure mechanism, like {!Stage2} and {!Tlb}: no simulated time is
    consumed here. Callers price each [`Wp_fault] through their cost
    model (trap + {!Armvirt_arch.Cost_model.arm.stage2_wp_fault} + TLB
    maintenance + re-entry) — the same layering the cold-start workload
    uses. *)

type t

val create : Stage2.t -> t
(** Wraps a stage-2 table. The table stays usable through its own API;
    the log only flips permissions on it. *)

val stage2 : t -> Stage2.t

val start : t -> unit
(** Enables logging: write-protects every currently-writable mapping and
    clears the dirty set. Pages the guest maps read-only are left alone
    and never reported dirty. Raises [Invalid_argument] if already
    logging. *)

val stop : t -> unit
(** Disables logging and restores write permission on every tracked
    page. Raises [Invalid_argument] if not logging. *)

val write : t -> ipa_page:int -> [ `Clean_hit | `Wp_fault ]
(** One guest store to [ipa_page]. [`Wp_fault] means this was the first
    write to the page since {!start} or the last {!harvest}: the page is
    now dirty and writable again, and the caller owes the fault cost.
    [`Clean_hit] is a full-speed write (logging off, or the page already
    dirty this round). Raises {!Stage2.Stage2_fault} [(Unmapped _)] for
    a page with no mapping at all, and [(Permission _)] for a write to a
    page the {e guest} maps read-only — a real fault, not a logging
    artifact. *)

val harvest : t -> int list
(** Atomically returns the dirty pages (ascending page order — the
    deterministic transmit order), clears the set, and re-write-protects
    the harvested pages for the next round. Raises [Invalid_argument] if
    not logging. *)

val dirty_count : t -> int
(** Pages dirtied since the last {!harvest} (or {!start}). *)

val is_dirty : t -> ipa_page:int -> bool

val tracked_count : t -> int
(** Pages under dirty logging (writable when {!start} ran). *)

val wp_faults : t -> int
(** Total write-protect faults taken since {!create}. *)

val rounds : t -> int
(** Number of {!harvest} calls since {!create}. *)

val logging : t -> bool
