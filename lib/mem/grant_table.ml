type domid = int
type gref = int

let gref_to_int r = r

type access = Readonly | Full

type error =
  | Unknown_ref of int
  | Wrong_domain of { expected : domid; actual : domid }
  | Already_mapped of int
  | Not_mapped of int
  | Busy of int
  | Write_to_readonly of int

exception Grant_error of error

type entry = {
  grantee : domid;
  ipa_page : int;
  access : access;
  mutable mapped : bool;
}

type t = {
  owner : domid;
  entries : (int, entry) Hashtbl.t;
  mutable next_ref : int;
}

let create ~owner = { owner; entries = Hashtbl.create 64; next_ref = 0 }
let owner t = t.owner

let grant t ~to_dom ~ipa_page access =
  if ipa_page < 0 then invalid_arg "Grant_table.grant: negative page frame";
  let gref = t.next_ref in
  t.next_ref <- gref + 1;
  Hashtbl.replace t.entries gref
    { grantee = to_dom; ipa_page; access; mapped = false };
  gref

let find t gref =
  match Hashtbl.find_opt t.entries gref with
  | Some e -> e
  | None -> raise (Grant_error (Unknown_ref gref))

let map t gref ~by =
  let e = find t gref in
  if e.grantee <> by then
    raise (Grant_error (Wrong_domain { expected = e.grantee; actual = by }));
  if e.mapped then raise (Grant_error (Already_mapped gref));
  e.mapped <- true;
  e.ipa_page

let unmap t gref ~by =
  let e = find t gref in
  if e.grantee <> by then
    raise (Grant_error (Wrong_domain { expected = e.grantee; actual = by }));
  if not e.mapped then raise (Grant_error (Not_mapped gref));
  e.mapped <- false

let revoke t gref =
  let e = find t gref in
  if e.mapped then raise (Grant_error (Busy gref));
  Hashtbl.remove t.entries gref

let is_mapped t gref =
  match Hashtbl.find_opt t.entries gref with
  | Some e -> e.mapped
  | None -> false

let access_of t gref =
  Option.map (fun e -> e.access) (Hashtbl.find_opt t.entries gref)

let active_grants t = Hashtbl.length t.entries

let mapped_grants t =
  (* lint: sorted — pure count, commutative *)
  Hashtbl.fold (fun _ e acc -> if e.mapped then acc + 1 else acc) t.entries 0

let pp_error ppf = function
  | Unknown_ref r -> Format.fprintf ppf "unknown grant reference %d" r
  | Wrong_domain { expected; actual } ->
      Format.fprintf ppf "grant mapped by domain %d but granted to %d" actual
        expected
  | Already_mapped r -> Format.fprintf ppf "grant %d already mapped" r
  | Not_mapped r -> Format.fprintf ppf "grant %d not mapped" r
  | Busy r -> Format.fprintf ppf "grant %d still mapped (busy)" r
  | Write_to_readonly r ->
      Format.fprintf ppf "write through read-only grant %d" r
