module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Counter = Armvirt_stats.Counter

type pcpu = { id : int; exclusive : Sim.Resource.t }

type t = {
  sim : Sim.t;
  cost : Cost_model.t;
  counters : Counter.set;
  cpus : pcpu array;
  mutable observer :
    (label:string -> cycles:int -> now:Cycles.t -> unit) option;
  mutable obs_observer :
    (label:string -> cycles:int -> now:Cycles.t -> unit) option;
  mutable count_observer : (label:string -> now:Cycles.t -> unit) option;
}

(* Process-wide hook run on every [create], so a tracing session can
   attach to machines it never sees constructed (experiments build their
   machines internally). *)
(* lint: allow R6 — single process-wide hook slot, set only by Observe *)
let create_hook : (t -> unit) option ref = ref None

let set_create_hook h = create_hook := h

let create sim ~cost ~num_cpus =
  if num_cpus < 1 then invalid_arg "Machine.create: num_cpus < 1";
  let make_cpu id =
    {
      id;
      exclusive =
        Sim.Resource.create ~name:(Printf.sprintf "pcpu%d" id) sim ~capacity:1;
    }
  in
  let t =
    {
      sim;
      cost;
      counters = Counter.create_set ();
      cpus = Array.init num_cpus make_cpu;
      observer = None;
      obs_observer = None;
      count_observer = None;
    }
  in
  (match !create_hook with None -> () | Some h -> h t);
  t

let sim t = t.sim
let cost t = t.cost
let counters t = t.counters
let num_cpus t = Array.length t.cpus

let pcpu t i =
  if i < 0 || i >= Array.length t.cpus then
    invalid_arg (Printf.sprintf "Machine.pcpu: index %d out of range" i);
  t.cpus.(i)

let pcpu_id cpu = cpu.id
let exclusive cpu = cpu.exclusive

let observe t observer = t.observer <- observer
let observe_obs t observer = t.obs_observer <- observer
let observe_count t observer = t.count_observer <- observer

let spend t label cycles =
  if cycles < 0 then invalid_arg "Machine.spend: negative cycles";
  Counter.add t.counters label cycles;
  Counter.add t.counters "cycles" cycles;
  Sim.delay (Cycles.of_int cycles);
  (match t.observer with
  | Some notify -> notify ~label ~cycles ~now:(Sim.current_time ())
  | None -> ());
  match t.obs_observer with
  | Some notify -> notify ~label ~cycles ~now:(Sim.current_time ())
  | None -> ()

let count t label =
  Counter.incr t.counters label;
  match t.count_observer with
  | Some notify -> notify ~label ~now:(Sim.now t.sim)
  | None -> ()
let freq_ghz t = Cost_model.freq_ghz t.cost
let elapsed_us t c = Cycles.to_us ~hz:(freq_ghz t *. 1e9) c
