(** A simulated server machine: PCPUs, a cost model, and accounting.

    Mirrors one CloudLab node from the paper's experimental setup
    (section III): 8 physical cores, one hypervisor, cycle counters. All
    hypervisor and workload models execute as simulation processes on a
    machine and price their work through {!spend}, which both advances
    simulated time and attributes the cycles to a named counter so the
    reports can decompose where time went. *)

type pcpu
(** One physical CPU. *)

type t

val create :
  Armvirt_engine.Sim.t -> cost:Cost_model.t -> num_cpus:int -> t
(** Raises [Invalid_argument] if [num_cpus < 1]. *)

val sim : t -> Armvirt_engine.Sim.t
val cost : t -> Cost_model.t
val counters : t -> Armvirt_stats.Counter.set
val num_cpus : t -> int

val pcpu : t -> int -> pcpu
(** Raises [Invalid_argument] on an out-of-range index. *)

val pcpu_id : pcpu -> int

val exclusive : pcpu -> Armvirt_engine.Sim.Resource.t
(** Capacity-1 resource serializing contexts that share the physical CPU
    (e.g. Xen's Dom0 and the idle domain). The paper pins each VCPU to a
    dedicated PCPU, so most experiments never contend on this. *)

val spend : t -> string -> int -> unit
(** [spend t label cycles] advances the calling process by [cycles] and
    adds them to counter [label] (and to the total counter ["cycles"]).
    Must run inside a simulation process. *)

val observe :
  t -> (label:string -> cycles:int -> now:Armvirt_engine.Cycles.t -> unit) option -> unit
(** Installs (or clears) an observer invoked on every {!spend}, with the
    simulated time {e after} the operation. Used by
    {!Armvirt_stats.Trace} to reconstruct operation timelines without
    touching the hypervisor paths. *)

val observe_obs :
  t -> (label:string -> cycles:int -> now:Armvirt_engine.Cycles.t -> unit) option -> unit
(** A second, independent observer slot with the same contract as
    {!observe}, reserved for the structured tracing layer so it can
    coexist with a user-installed {!Armvirt_stats.Trace} observer. *)

val observe_count :
  t -> (label:string -> now:Armvirt_engine.Cycles.t -> unit) option -> unit
(** Installs (or clears) an observer invoked on every {!count} with the
    counter label and the machine's current simulated time. The
    accounting layer turns exit/entry marker counts into instant trace
    events through this slot; with no observer installed, {!count} costs
    one hashtable increment and an option check. Unlike the spend
    observers it reads the machine clock directly, so it is safe from
    outside a simulation process. *)

val set_create_hook : (t -> unit) option -> unit
(** Installs (or clears) a process-wide hook invoked on every {!create}
    with the new machine. Lets a tracing session instrument machines that
    experiments construct internally. Not domain-scoped: set it before
    spawning runner domains and clear it after. *)

val count : t -> string -> unit
(** Increment an event counter without consuming time. *)

val freq_ghz : t -> float

val elapsed_us : t -> Armvirt_engine.Cycles.t -> float
(** Convert cycles to microseconds at this machine's clock frequency. *)
