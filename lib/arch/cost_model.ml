type reg_costs = { save : int; restore : int }

type arm = {
  freq_ghz : float;
  trap_to_el2 : int;
  eret : int;
  hvc_issue : int;
  stage2_toggle : int;
  reg : Reg_class.t -> reg_costs;
  vgic_slot_scan : int;
  vgic_lr_write : int;
  virq_complete : int;
  virq_guest_dispatch : int;
  phys_ipi_wire : int;
  mmio_decode : int;
  timestamp_barrier : int;
  tlb_broadcast_invalidate : int;
  tlb_local_invalidate : int;
  per_byte_copy : float;
  page_map_cost : int;
  stage2_wp_fault : int;
  vhe : bool;
}

type x86 = {
  freq_ghz : float;
  vmexit : int;
  vmentry : int;
  vmcall_issue : int;
  vapic : bool;
  eoi_emul : int;
  virq_guest_dispatch : int;
  phys_ipi_wire : int;
  timestamp_barrier : int;
  tlb_shootdown_base : int;
  tlb_shootdown_per_cpu : int;
  per_byte_copy : float;
  page_map_cost : int;
  stage2_wp_fault : int;
}

type t = Arm of arm | X86 of x86

(* Table III of the paper, verbatim. *)
let table_iii : Reg_class.t -> reg_costs = function
  | Reg_class.Gp -> { save = 152; restore = 184 }
  | Reg_class.Fp -> { save = 282; restore = 310 }
  | Reg_class.El1_sys -> { save = 230; restore = 511 }
  | Reg_class.Vgic -> { save = 3250; restore = 181 }
  | Reg_class.Timer -> { save = 104; restore = 106 }
  | Reg_class.El2_config -> { save = 92; restore = 107 }
  | Reg_class.El2_virtual_memory -> { save = 92; restore = 107 }

let arm_default =
  {
    freq_ghz = 2.4;
    trap_to_el2 = 76;
    eret = 64;
    hvc_issue = 16;
    stage2_toggle = 50;
    reg = table_iii;
    vgic_slot_scan = 760;
    vgic_lr_write = 181;
    virq_complete = 71;
    virq_guest_dispatch = 96;
    phys_ipi_wire = 420;
    mmio_decode = 70;
    timestamp_barrier = 24;
    tlb_broadcast_invalidate = 600;
    tlb_local_invalidate = 150;
    per_byte_copy = 0.25;
    page_map_cost = 420;
    stage2_wp_fault = 780;
    vhe = false;
  }

(* Copy-with-override paths: every what-if machine is a functional
   update of a base model, never a mutation — sampled design points and
   ablations can coexist in one process. *)
let with_vhe vhe arm = { arm with vhe }
let with_stage2_wp_fault stage2_wp_fault (arm : arm) =
  { arm with stage2_wp_fault }

let with_reg_cost cls ~save ~restore arm =
  let prev = arm.reg in
  { arm with reg = (fun c -> if c = cls then { save; restore } else prev c) }

let with_arm t ~f =
  match t with
  | Arm a -> Arm (f a)
  | X86 _ -> invalid_arg "Cost_model.with_arm: x86 model"

let with_x86 t ~f =
  match t with
  | X86 x -> X86 (f x)
  | Arm _ -> invalid_arg "Cost_model.with_x86: ARM model"

let arm_vhe = with_vhe true arm_default

(* GICv3 moves the CPU-interface state behind system registers
   (ICH_*_EL2 / ICC_*_EL1), so reading it back on exit is ordinary
   register traffic instead of slow interconnect MMIO — the single
   biggest line of Table III nearly vanishes. *)
let arm_gicv3 =
  {
    (with_reg_cost Reg_class.Vgic ~save:248 ~restore:181 arm_default) with
    vgic_slot_scan = 96;
    vgic_lr_write = 58;
  }

let arm_gicv3_vhe = with_vhe true arm_gicv3

let x86_default =
  {
    freq_ghz = 2.1;
    vmexit = 480;
    vmentry = 650;
    vmcall_issue = 20;
    vapic = false;
    eoi_emul = 426;
    virq_guest_dispatch = 110;
    phys_ipi_wire = 400;
    timestamp_barrier = 30;
    tlb_shootdown_base = 1000;
    tlb_shootdown_per_cpu = 1200;
    per_byte_copy = 0.25;
    page_map_cost = 380;
    stage2_wp_fault = 640;
  }

let freq_ghz = function Arm a -> a.freq_ghz | X86 x -> x.freq_ghz
let arch_name = function Arm _ -> "ARM" | X86 _ -> "x86"

let arm_save arm classes =
  List.fold_left (fun acc cls -> acc + (arm.reg cls).save) 0 classes

let arm_restore arm classes =
  List.fold_left (fun acc cls -> acc + (arm.reg cls).restore) 0 classes

let arm_full_save arm = arm_save arm Reg_class.full_world_switch
let arm_full_restore arm = arm_restore arm Reg_class.full_world_switch

let copy_cost ~per_byte ~bytes =
  if bytes < 0 then invalid_arg "Cost_model.copy_cost: negative size";
  if bytes = 0 then 0
  else Stdlib.max 1 (int_of_float (Float.round (per_byte *. float_of_int bytes)))
