type exception_class =
  | Wfi_wfe
  | Hvc64
  | Smc64
  | Sysreg_trap
  | Inst_abort_lower
  | Data_abort_lower
  | Irq

let ec = function
  | Wfi_wfe -> 0x01
  | Hvc64 -> 0x16
  | Smc64 -> 0x17
  | Sysreg_trap -> 0x18
  | Inst_abort_lower -> 0x20
  | Data_abort_lower -> 0x24
  | Irq -> 0x3f

let all =
  [ Wfi_wfe; Hvc64; Smc64; Sysreg_trap; Inst_abort_lower; Data_abort_lower; Irq ]

let of_ec code = List.find_opt (fun cls -> ec cls = code) all

let iss_bits = 25
let il_bit = 1 lsl iss_bits

let encode cls ~iss =
  if iss < 0 || iss >= il_bit then
    invalid_arg "Esr.encode: ISS exceeds 25 bits";
  (ec cls lsl 26) lor il_bit lor iss

let decode syndrome =
  let code = (syndrome lsr 26) land 0x3f in
  Option.map (fun cls -> (cls, syndrome land (il_bit - 1))) (of_ec code)

let short_name = function
  | Wfi_wfe -> "wfx"
  | Hvc64 -> "hvc"
  | Smc64 -> "smc"
  | Sysreg_trap -> "sysreg"
  | Inst_abort_lower -> "iabt"
  | Data_abort_lower -> "dabt"
  | Irq -> "irq"

let of_short_name s = List.find_opt (fun cls -> short_name cls = s) all

(* Obs sits below arch in the library graph, so Marker carries its own
   reason enum; this exhaustive match is the single mapping point — a
   new exception class fails to compile until Marker learns it too. *)
let marker_reason = function
  | Wfi_wfe -> Armvirt_obs.Marker.Wfx
  | Hvc64 -> Armvirt_obs.Marker.Hvc
  | Smc64 -> Armvirt_obs.Marker.Smc
  | Sysreg_trap -> Armvirt_obs.Marker.Sysreg
  | Inst_abort_lower -> Armvirt_obs.Marker.Iabt
  | Data_abort_lower -> Armvirt_obs.Marker.Dabt
  | Irq -> Armvirt_obs.Marker.Irq

let describe = function
  | Wfi_wfe -> "WFI/WFE: the guest idled"
  | Hvc64 -> "HVC: hypercall"
  | Smc64 -> "SMC: secure monitor call"
  | Sysreg_trap -> "trapped MSR/MRS system-register access"
  | Inst_abort_lower -> "stage-2 instruction abort from a lower EL"
  | Data_abort_lower -> "stage-2 data abort from a lower EL (MMIO/fill)"
  | Irq -> "physical interrupt while the VM ran"
