(** Hardware cost models for the two simulated server platforms.

    Every architectural operation the hypervisor models perform is priced
    here, in cycles. The ARM per-register-class costs are taken verbatim
    from the paper's Table III, which decomposes the KVM ARM hypercall on
    the HP Moonshot m400 (APM X-Gene "Atlas", 2.4 GHz). The remaining
    constants are calibrated so the seven Table II microbenchmarks
    reproduce the paper's measurements; each constant documents what it
    prices. Calibration constants appear {e only} in this module — the
    hypervisor models compose operations, never raw numbers. *)

type reg_costs = { save : int; restore : int }
(** Cycles to context switch one register class out of / into the CPU.
    "Save" is the exit-side switch (VM state out, host state in); for the
    VGIC class it is dominated by reading the GIC virtual interface over
    the slow interconnect, which is why save ≫ restore (3,250 vs 181) —
    the asymmetry behind the paper's observation that leaving a VM costs
    much more than re-entering it. *)

type arm = {
  freq_ghz : float;  (** 2.4 for the m400 *)
  trap_to_el2 : int;
      (** Hardware exception entry from EL0/EL1 into EL2: bank PC/PSTATE,
          fetch vector. Cheap by design — ARM's RISC-style transition. *)
  eret : int;  (** Exception return from EL2 to EL0/EL1. *)
  hvc_issue : int;  (** Guest-side cost of issuing HVC before the trap. *)
  stage2_toggle : int;
      (** One reconfiguration of HCR_EL2 (traps + Stage-2 translation).
          Split-mode KVM pays this twice per transition — disabling
          virtualization features to run the host, re-enabling to run the
          VM; an EL2-resident hypervisor never does. *)
  reg : Reg_class.t -> reg_costs;  (** Table III. *)
  vgic_slot_scan : int;
      (** Reading list-register status (ELRSR/EISR) to find a free slot
          before injecting a virtual interrupt. A GIC MMIO read. *)
  vgic_lr_write : int;  (** Writing one list register to inject a vIRQ. *)
  virq_complete : int;
      (** Guest acknowledging + completing a virtual interrupt through the
          hardware GIC virtual CPU interface, no trap: the paper's 71. *)
  virq_guest_dispatch : int;
      (** Guest vector fetch → handler entry for a delivered interrupt. *)
  phys_ipi_wire : int;
      (** GIC SGI propagation latency between two physical CPUs. *)
  mmio_decode : int;
      (** Stage-2 abort syndrome decode for a trapped MMIO access — paid
          by any hypervisor before emulating a device register. *)
  timestamp_barrier : int;  (** isb around counter reads (section IV). *)
  tlb_broadcast_invalidate : int;
      (** Inner-shareable TLBI: ARM invalidates remote TLBs in hardware,
          no IPIs — the capability section V notes might make Xen
          zero-copy viable on ARM. *)
  tlb_local_invalidate : int;
  per_byte_copy : float;  (** Cycles per byte of kernel memcpy. *)
  page_map_cost : int;  (** Installing one page mapping (any table). *)
  stage2_wp_fault : int;
      (** Hypervisor-side handling of a stage-2 permission fault taken on
          a write-protected page during dirty logging: syndrome decode,
          dirty-bitmap update, and the write-permission restore — the
          software half of the fault, on top of the transition costs the
          hypervisor model composes around it. Distinct from
          [page_map_cost]: no table walk or allocation, the PTE exists. *)
  vhe : bool;
      (** ARMv8.1 Virtualization Host Extensions (E2H set): the host OS
          runs in EL2, so VM transitions skip the EL1 system-register
          switch and the Stage-2/trap toggling (section VI). *)
}

type x86 = {
  freq_ghz : float;  (** 2.1 for the r320 *)
  vmexit : int;
      (** Hardware VMCS state transfer, non-root → root. Fixed-function:
          both x86 hypervisors pay the same, which is why KVM x86 ≈ Xen
          x86 on the Hypercall microbenchmark. *)
  vmentry : int;  (** Root → non-root VMCS transfer. *)
  vmcall_issue : int;
  vapic : bool;
      (** Posted-interrupt/vAPIC support. The paper's Xeon E5-2450
          predates usable vAPIC, so EOIs trap (Table II: ~1.5k cycles vs
          71 on ARM). *)
  eoi_emul : int;  (** Software EOI handling in the hypervisor. *)
  virq_guest_dispatch : int;  (** IDT dispatch to the guest handler. *)
  phys_ipi_wire : int;  (** APIC ICR → remote LAPIC latency. *)
  timestamp_barrier : int;  (** lfence/rdtsc discipline. *)
  tlb_shootdown_base : int;
  tlb_shootdown_per_cpu : int;
      (** x86 remote TLB invalidation requires an IPI per CPU — the cost
          that made Xen x86 zero-copy "more expensive than simply copying
          the data" (section V). *)
  per_byte_copy : float;
  page_map_cost : int;
  stage2_wp_fault : int;
      (** EPT-violation handling for a write to a logged page: dirty
          bitmap update + EPT permission restore, excluding the VMCS
          transition pair around it. *)
}

type t = Arm of arm | X86 of x86

val arm_default : arm
(** The m400 model, Table III register costs, Table II calibration. *)

val arm_vhe : arm
(** {!arm_default} with VHE enabled — the ARMv8.1 machine of section VI. *)

val arm_gicv3 : arm
(** The m400 with a GICv3-style system-register CPU interface: list
    registers live behind ICH_* system registers, so the VGIC save cost
    collapses from 3,250 cycles of interconnect MMIO to ordinary
    register moves. Table III's dominant line is a GICv2/X-Gene
    artifact; this machine quantifies that (the [gicv3] experiment). *)

val arm_gicv3_vhe : arm
(** Both fixes together: the configuration of later ARM server cores
    (e.g. Neoverse-class). *)

val x86_default : x86
(** The r320 model. *)

val freq_ghz : t -> float
val arch_name : t -> string

(** {1 Copy-with-override}

    What-if machines are functional updates of a base model — callers
    (the GICv3/vAPIC ablations, [lib/explore]'s design points) never
    mutate shared model state, so perturbed and stock machines coexist
    in one process and across runner domains. *)

val with_vhe : bool -> arm -> arm
(** Flip the ARMv8.1 E2H behaviour on a copy of the model. *)

val with_stage2_wp_fault : int -> arm -> arm
(** Override the dirty-logging write-protect fault cost — the knob
    [lib/explore] sweeps to ask how much fault-handling software cost
    contributes to migration downtime. *)

val with_reg_cost : Reg_class.t -> save:int -> restore:int -> arm -> arm
(** Override one register class's context-switch costs, leaving every
    other class of the table untouched. *)

val with_arm : t -> f:(arm -> arm) -> t
(** Apply a functional override to the ARM side of a model. Raises
    [Invalid_argument] on an x86 model. *)

val with_x86 : t -> f:(x86 -> x86) -> t
(** Mirror of {!with_arm} for x86. Raises [Invalid_argument] on ARM. *)

val arm_full_save : arm -> int
(** Σ save over {!Reg_class.full_world_switch} — the exit-side switch of
    split-mode KVM (4,202 in Table III). *)

val arm_full_restore : arm -> int
(** Σ restore — the entry-side switch (1,506 in Table III). *)

val arm_save : arm -> Reg_class.t list -> int
val arm_restore : arm -> Reg_class.t list -> int

val copy_cost : per_byte:float -> bytes:int -> int
(** Cycles to copy [bytes] at [per_byte] cycles/byte, at least 1 cycle for
    a non-empty copy. *)
