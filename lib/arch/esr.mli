(** ESR_EL2 syndrome decoding: why a trap landed in EL2.

    Every exit the paper's microbenchmarks provoke arrives with an
    exception syndrome; the hypervisor's first act is to decode its
    exception class. The model covers the classes the measured paths
    generate, with their architectural EC encodings (ARM ARM D17.2.37),
    and round-trips them through the 32-bit register format. *)

type exception_class =
  | Wfi_wfe  (** EC 0x01 — the guest idled. *)
  | Hvc64  (** EC 0x16 — a hypercall. *)
  | Smc64  (** EC 0x17 — firmware call, also trapped. *)
  | Sysreg_trap  (** EC 0x18 — MSR/MRS of a trapped system register. *)
  | Inst_abort_lower  (** EC 0x20 — stage-2 instruction fault. *)
  | Data_abort_lower  (** EC 0x24 — stage-2 data fault (MMIO or fill). *)
  | Irq
      (** Not an ESR class: physical interrupts vector separately, but
          exit dispatchers treat them as one more reason. *)

val ec : exception_class -> int
(** The architectural 6-bit EC encoding ([Irq] maps to the
    conventional pseudo-value 0x3f used by exit-reason tables). *)

val of_ec : int -> exception_class option

val encode : exception_class -> iss:int -> int
(** Builds the 32-bit syndrome: EC in bits [31:26], IL set, ISS in
    [24:0]. Raises [Invalid_argument] if [iss] exceeds 25 bits. *)

val decode : int -> (exception_class * int) option
(** [(class, iss)], or [None] for an EC the model does not cover. *)

val describe : exception_class -> string

val short_name : exception_class -> string
(** A stable lowercase mnemonic (["hvc"], ["dabt"], ["irq"], ...) used
    to key exit-marker counter labels and the [armvirt stat] report.
    Never contains ['/'], ['.'] or whitespace. *)

val of_short_name : string -> exception_class option

val marker_reason : exception_class -> Armvirt_obs.Marker.reason
(** The typed {!Armvirt_obs.Marker} reason with the same mnemonic;
    [short_name cls = Marker.reason_to_string (marker_reason cls)] for
    every class (asserted by the stat tests). *)

val all : exception_class list
