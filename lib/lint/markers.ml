(* M1: stat-marker label grammar.

   Every string literal reaching [Machine.count] is a row key in
   `armvirt stat`: exit/entry markers drive the kvm_stat-style pairing,
   operation counters become op rows, and vswitch/wire counters become
   port statistics. A typo ("kvm_arm.exit/hvcc/p0", a missing "/p")
   doesn't fail anything at runtime — the label quietly parses as an
   unknown op and the row disappears from the table.

   This pass re-parses each literal with the exact
   [Armvirt_obs.Accounting.parse_label] the stat subcommand uses, and
   cross-checks exit reasons against the live [Armvirt_arch.Esr]
   mnemonic list, so the linter can never drift from the runtime
   grammar. Printf holes in format literals are neutralized first
   ([%d] -> a digit, [%s] -> a name) so legacy ksprintf sites are
   still checked structurally.

   Non-literal labels must come from the typed [Obs.Marker] builders
   (or the [Accounting.*_label] compatibility aliases) — those
   constructors and [parse_label] live in the same module, so a
   builder-produced label is grammatical by construction. Literal
   [~reason:]/[~hyp:] arguments of the builders are checked too. *)

open Parsetree
module Esr = Armvirt_arch.Esr
module Accounting = Armvirt_obs.Accounting

let esr_reasons = List.map Esr.short_name Esr.all

let is_ident_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let is_op_name s =
  String.length s > 0
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* Replace printf holes with representative text so format literals can
   be parsed structurally: %d/%i -> a digit, %s -> an identifier. *)
let neutralize_holes label =
  let buf = Buffer.create (String.length label) in
  let n = String.length label in
  let rec go i =
    if i < n then
      if label.[i] = '%' && i + 1 < n then begin
        (match label.[i + 1] with
        | 'd' | 'i' -> Buffer.add_char buf '7'
        | 's' -> Buffer.add_char buf 'x'
        | c ->
            Buffer.add_char buf '%';
            Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf label.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let int_after prefix s =
  let np = String.length prefix in
  if String.length s > np && String.sub s 0 np = prefix then
    int_of_string_opt (String.sub s np (String.length s - np))
  else None

(* vswitch op grammar: "<name>/p<port>/(rx|tx|drop)" | "<name>/flood". *)
let vswitch_op_ok op =
  match String.split_on_char '/' op with
  | [ name; "flood" ] -> is_ident_name name
  | [ name; p; ("rx" | "tx" | "drop") ] ->
      is_ident_name name && int_after "p" p <> None
  | _ -> false

(* wire op grammar: "<name>-u<id>/(rx|tx)". *)
let wire_op_ok op =
  match String.split_on_char '/' op with
  | [ endpoint; ("rx" | "tx") ] -> (
      match String.rindex_opt endpoint '-' with
      | Some i ->
          is_ident_name (String.sub endpoint 0 i)
          && int_after "u"
               (String.sub endpoint (i + 1) (String.length endpoint - i - 1))
             <> None
      | None -> false)
  | _ -> false

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i j = j = nn || (hay.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = i + nn <= nh && (at i 0 || go (i + 1)) in
  nn = 0 || go 0

let check_label_text label : string option =
  let label = neutralize_holes label in
  match Accounting.parse_label label with
  | None ->
      Some
        (Printf.sprintf
           "marker %S has no '<hyp>.' prefix: armvirt stat would drop it"
           label)
  | Some (Accounting.Exit { reason; hyp; _ }) ->
      if not (is_ident_name hyp) then
        Some (Printf.sprintf "marker %S: hypervisor %S is not an identifier"
                label hyp)
      else if not (List.mem reason esr_reasons) then
        Some
          (Printf.sprintf
             "marker %S: exit reason %S is not an Esr.short_name (valid: %s)"
             label reason
             (String.concat ", " esr_reasons))
      else None
  | Some (Accounting.Entry { hyp; _ }) ->
      if is_ident_name hyp then None
      else
        Some (Printf.sprintf "marker %S: hypervisor %S is not an identifier"
                label hyp)
  | Some (Accounting.Op { hyp = "vswitch"; op }) ->
      if vswitch_op_ok op then None
      else
        Some
          (Printf.sprintf
             "marker %S: vswitch counter must be \
              'vswitch.<name>/p<port>/(rx|tx|drop)' or 'vswitch.<name>/flood'"
             label)
  | Some (Accounting.Op { hyp = "wire"; op }) ->
      if wire_op_ok op then None
      else
        Some
          (Printf.sprintf
             "marker %S: wire counter must be 'wire.<name>-u<id>/(rx|tx)'"
             label)
  | Some (Accounting.Op { hyp; op }) ->
      if contains_sub op "exit" || contains_sub op "entry" then
        Some
          (Printf.sprintf
             "marker %S parses as an op, not an exit/entry: expected \
              '<hyp>.exit/<reason>/p<pcpu>[/d<domid>]' or \
              '<hyp>.entry/p<pcpu>[/d<domid>]'"
             label)
      else if not (is_ident_name hyp) then
        Some (Printf.sprintf "marker %S: hypervisor %S is not an identifier"
                label hyp)
      else if not (is_op_name op) then
        Some
          (Printf.sprintf
             "marker %S: op counter must be '<hyp>.<op>' with op in \
              [a-z0-9_]+"
             label)
      else None

(* --- AST plumbing ----------------------------------------------------- *)

let last2 segs =
  match List.rev segs with b :: a :: _ -> Some (a, b) | _ -> None

let is_count_path lid =
  match last2 (Pass.flatten lid) with
  | Some ("Machine", "count") -> true
  | _ -> false

(* The typed builders: labels produced by these are grammatical by
   construction (same module as the parser). *)
let builder_fns =
  [
    ("Marker", "exit");
    ("Marker", "exit_name");
    ("Marker", "entry");
    ("Marker", "op");
    ("Marker", "port");
    ("Marker", "flood");
    ("Marker", "uplink");
    ("Accounting", "exit_label");
    ("Accounting", "entry_label");
  ]

let builder_of lid =
  match last2 (Pass.flatten lid) with
  | Some pair when List.mem pair builder_fns -> Some pair
  | _ -> None

let string_lit e =
  match (e : expression).pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Literal ~reason:/~hyp:/~op arguments of a builder call. *)
let check_builder_args ctx fn args =
  List.iter
    (fun (lbl, arg) ->
      match (lbl, string_lit arg) with
      | Asttypes.Labelled "reason", Some r ->
          if not (List.mem r esr_reasons) then
            Pass.emit ctx Rules.M1 arg.pexp_loc
              (Printf.sprintf
                 "~reason:%S is not an Esr.short_name (valid: %s)" r
                 (String.concat ", " esr_reasons))
      | Asttypes.Labelled ("hyp" | "switch"), Some h ->
          if not (is_ident_name h) then
            Pass.emit ctx Rules.M1 arg.pexp_loc
              (Printf.sprintf "~hyp:%S must be a bare identifier (no '.', '/')"
                 h)
      | Asttypes.Nolabel, Some s when snd fn = "op" ->
          if not (is_op_name s) then
            Pass.emit ctx Rules.M1 arg.pexp_loc
              (Printf.sprintf "op counter %S must match [a-z0-9_]+" s)
      | _ -> ())
    args

let check_count_label ctx (label : expression) =
  match string_lit label with
  | Some s -> (
      match check_label_text s with
      | Some msg -> Pass.emit ctx Rules.M1 label.pexp_loc msg
      | None -> ())
  | None -> (
      match label.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
          match builder_of txt with
          | Some _ -> () (* literal args checked when the walker visits it *)
          | None ->
              Pass.emit ctx Rules.M1 label.pexp_loc
                "Machine.count label is neither a literal nor built by \
                 Obs.Marker: the grammar cannot be checked")
      | _ ->
          Pass.emit ctx Rules.M1 label.pexp_loc
            "Machine.count label is neither a literal nor built by \
             Obs.Marker: the grammar cannot be checked")

let run ctx (ast : Pass.ast) =
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        if is_count_path txt then
          (* The label is the last unlabelled argument. *)
          match
            List.rev
              (List.filter_map
                 (fun (lbl, a) ->
                   match lbl with Asttypes.Nolabel -> Some a | _ -> None)
                 args)
          with
          | label :: _ :: _ -> check_count_label ctx label
          | _ -> ()
        else
          match builder_of txt with
          | Some fn -> check_builder_args ctx fn args
          | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  match ast with
  | Pass.Impl str -> it.structure it str
  | Pass.Intf sg -> it.signature it sg

let pass = { Pass.name = "markers"; rules = [ Rules.M1 ]; run }
