(* The ratchet: a committed LINT_baseline.json grandfathers known
   findings per (file, rule) so new rules can land with the repo still
   gating. Semantics:

   - a finding beyond the baselined count for its (file, rule) is
     FRESH and fails the run;
   - findings within the count are GRANDFATHERED and render as
     warnings;
   - a baselined count higher than what the tree now produces is STALE
     and also fails the run — the baseline may only shrink, and the
     shrink must be committed (--update-baseline writes it).

   Counts rather than line numbers key the ratchet, so unrelated edits
   that shift code do not churn the file. Within one (file, rule) the
   findings sorted by (line, col) fill the grandfathered quota first;
   the attribution is deterministic even if not always the historically
   "same" site, which is the price of line-independence. *)

type entry = { file : string; rule : Rules.id; count : int }

type t = entry list (* sorted by (file, rule) *)

let version = 1

let compare_entry a b =
  match String.compare a.file b.file with
  | 0 -> String.compare (Rules.to_string a.rule) (Rules.to_string b.rule)
  | c -> c

let empty : t = []

(* --- building from findings ------------------------------------------ *)

let of_findings findings =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Pass.finding) ->
      let key = (f.Pass.file, f.Pass.rule) in
      match Hashtbl.find_opt tbl key with
      | Some r -> incr r
      | None -> Hashtbl.add tbl key (ref 1))
    findings;
  Hashtbl.fold
    (fun (file, rule) count acc -> { file; rule; count = !count } :: acc)
    tbl []
  |> List.sort compare_entry

(* --- the check -------------------------------------------------------- *)

type verdict = {
  fresh : Pass.finding list;
  grandfathered : Pass.finding list;
  stale : entry list;  (* baselined counts the tree no longer produces *)
}

let check (baseline : t) findings =
  let quota = Hashtbl.create 16 in
  List.iter
    (fun e -> Hashtbl.replace quota (e.file, Rules.to_string e.rule) e.count)
    baseline;
  let fresh = ref [] and grandfathered = ref [] in
  List.iter
    (fun (f : Pass.finding) ->
      let key = (f.Pass.file, Rules.to_string f.Pass.rule) in
      match Hashtbl.find_opt quota key with
      | Some n when n > 0 ->
          Hashtbl.replace quota key (n - 1);
          grandfathered := f :: !grandfathered
      | _ -> fresh := f :: !fresh)
    (List.sort
       (fun (a : Pass.finding) b ->
         match String.compare a.Pass.file b.Pass.file with
         | 0 -> Pass.compare_finding a b
         | c -> c)
       findings);
  let stale =
    List.filter_map
      (fun e ->
        match Hashtbl.find_opt quota (e.file, Rules.to_string e.rule) with
        | Some n when n > 0 -> Some { e with count = n }
        | _ -> None)
      baseline
  in
  {
    fresh = List.rev !fresh;
    grandfathered = List.rev !grandfathered;
    stale;
  }

(* --- rendering -------------------------------------------------------- *)

let render (t : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"version\": %d,\n  \"entries\": [" version);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"file\": \"%s\", \"rule\": \"%s\", \
                         \"count\": %d }"
           e.file (Rules.to_string e.rule) e.count))
    t;
  if t <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)
(* A strict recursive-descent parser for exactly the schema [render]
   emits (whitespace-insensitive). No escapes are needed: files are
   repo-relative source paths. *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else raise (Bad (Printf.sprintf "expected %c at offset %d" c !pos))
  in
  let peek () =
    skip_ws ();
    if !pos < n then Some s.[!pos] else None
  in
  let string_ () =
    expect '"';
    let start = !pos in
    while !pos < n && s.[!pos] <> '"' do
      if s.[!pos] = '\\' then raise (Bad "escapes not supported");
      incr pos
    done;
    if !pos >= n then raise (Bad "unterminated string");
    let v = String.sub s start (!pos - start) in
    incr pos;
    v
  in
  let int_ () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n && (match s.[!pos] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr pos
    done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "expected integer at offset %d" start))
  in
  let key () =
    let k = string_ () in
    expect ':';
    k
  in
  let entry () =
    expect '{';
    let file = ref None and rule = ref None and count = ref None in
    let rec fields () =
      (match key () with
      | "file" -> file := Some (string_ ())
      | "rule" -> rule := Some (string_ ())
      | "count" -> count := Some (int_ ())
      | k -> raise (Bad ("unknown entry key " ^ k)));
      match peek () with
      | Some ',' ->
          incr pos;
          fields ()
      | _ -> expect '}'
    in
    fields ();
    match (!file, !rule, !count) with
    | Some file, Some rule_s, Some count -> (
        match Rules.of_string rule_s with
        | Some rule when count >= 0 -> { file; rule; count }
        | Some _ -> raise (Bad "negative count")
        | None -> raise (Bad ("unknown rule " ^ rule_s)))
    | _ -> raise (Bad "entry missing file/rule/count")
  in
  try
    expect '{';
    (match key () with
    | "version" ->
        let v = int_ () in
        if v <> version then
          raise (Bad (Printf.sprintf "unsupported baseline version %d" v))
    | k -> raise (Bad ("expected version, got " ^ k)));
    expect ',';
    (match key () with
    | "entries" -> ()
    | k -> raise (Bad ("expected entries, got " ^ k)));
    expect '[';
    let entries =
      match peek () with
      | Some ']' ->
          incr pos;
          []
      | _ ->
          let rec loop acc =
            let e = entry () in
            match peek () with
            | Some ',' ->
                incr pos;
                loop (e :: acc)
            | _ ->
                expect ']';
                List.rev (e :: acc)
          in
          loop []
    in
    expect '}';
    Ok (List.sort compare_entry entries)
  with Bad msg -> Error msg

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let source =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse source
