(* Suppression directives are ordinary comments in the linted source:

     (* lint: sorted *)            audited R3 site (order cannot escape)
     (* lint: unit us reason *)    audited U1/U2 site (asserted unit)
     (* lint: allow R6 reason *)   audited site for any one rule
     (* lint: disable R2 R7 *)     disable rules for the whole file

   A site directive suppresses findings on its own line and on the line
   directly below it, so it can sit at the end of the offending line or
   on its own line above. *)

type directive = { line : int; rules : Rules.id list; file_wide : bool }

type t = directive list

let marker = "(* lint:"

let tokens_of body =
  String.split_on_char ' ' body
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun s -> s <> "")

let parse_line ~line text =
  match String.index_opt text '(' with
  | None -> None
  | Some _ -> (
      (* find the marker anywhere in the line *)
      let mlen = String.length marker in
      let tlen = String.length text in
      let rec find i =
        if i + mlen > tlen then None
        else if String.sub text i mlen = marker then Some (i + mlen)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some start -> (
          let rest = String.sub text start (tlen - start) in
          let body =
            match String.index_opt rest '*' with
            | Some stop when stop + 1 < String.length rest && rest.[stop + 1] = ')'
              ->
                String.sub rest 0 stop
            | _ -> rest
          in
          match tokens_of body with
          | "sorted" :: _ -> Some { line; rules = [ Rules.R3 ]; file_wide = false }
          | "unit" :: _ :: _ ->
              (* The asserted unit token is documentation for the
                 auditor; any nonempty token is accepted. *)
              Some { line; rules = [ Rules.U1; Rules.U2 ]; file_wide = false }
          | ("allow" | "disable") :: ids as all_tokens ->
              let file_wide = List.hd all_tokens = "disable" in
              let rules = List.filter_map Rules.of_string ids in
              if rules = [] then None else Some { line; rules; file_wide }
          | _ -> None))

let of_source source =
  let directives = ref [] in
  let line = ref 0 in
  String.split_on_char '\n' source
  |> List.iter (fun text ->
         incr line;
         match parse_line ~line:!line text with
         | Some d -> directives := d :: !directives
         | None -> ());
  List.rev !directives

let file_disabled t rule =
  List.exists (fun d -> d.file_wide && List.mem rule d.rules) t

let allowed t rule ~line =
  List.exists
    (fun d ->
      (not d.file_wide)
      && List.mem rule d.rules
      && (d.line = line || d.line = line - 1))
    t
