(** The ratcheting baseline: [LINT_baseline.json].

    The baseline grandfathers known findings per (file, rule) count so
    a new pass can land while the gate keeps biting on anything it did
    not already know about. The ratchet only turns one way:

    - a finding beyond its (file, rule) quota is {e fresh} → the run
      fails;
    - findings within the quota are {e grandfathered} → rendered as
      warnings, exit stays clean;
    - a quota the tree no longer uses up is {e stale} → the run fails
      until the shrunken baseline is committed ([--update-baseline]
      writes it).

    Counts, not line numbers, key the ratchet so unrelated edits don't
    churn the committed file. *)

type entry = { file : string; rule : Rules.id; count : int }

type t = entry list
(** Sorted by (file, rule). *)

val version : int

val empty : t

val of_findings : Pass.finding list -> t
(** Collapse findings into (file, rule) counts — what
    [--update-baseline] writes. *)

type verdict = {
  fresh : Pass.finding list;
  grandfathered : Pass.finding list;
  stale : entry list;  (** residual counts the tree no longer produces *)
}

val check : t -> Pass.finding list -> verdict
(** Deterministic: findings are processed in (file, line, col, rule)
    order, filling each (file, rule) quota first-come. *)

val render : t -> string
(** Stable JSON, byte-identical for equal inputs. *)

val parse : string -> (t, string) result

val load : string -> (t, string) result
