(* The multi-pass analysis engine: parse one compilation unit with
   compiler-libs, then run every registered pass whose rules are active
   for the file, timing each. Suppression directives are applied once
   over the union of all passes' candidate findings. *)

type finding = Pass.finding = {
  rule : Rules.id;
  file : string;
  line : int;
  col : int;
  message : string;
}

type result = {
  findings : finding list;
  suppressed : int;
  timings : (string * float) list;
      (* (pass name, seconds spent on this file), registration order *)
}

exception Parse_error of string

let compare_finding = Pass.compare_finding

(* Registration order is report order; a pass declares the rules it can
   emit and is skipped entirely when none of them apply to the file. *)
let passes : Pass.t list =
  [ Determinism.pass; Units.pass; Markers.pass; Capture.pass ]

let pass_of_rule rule =
  match List.find_opt (fun p -> List.mem rule p.Pass.rules) passes with
  | Some p -> p.Pass.name
  | None -> "?"

(* --- entry point ------------------------------------------------------ *)

let parse ~relpath source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf relpath;
  try
    if Filename.check_suffix relpath ".mli" then
      Pass.Intf (Parse.interface lexbuf)
    else Pass.Impl (Parse.implementation lexbuf)
  with exn ->
    raise
      (Parse_error (Printf.sprintf "%s: %s" relpath (Printexc.to_string exn)))

(* Host wall-clock, for the per-pass diagnostic timings in the v2
   report; never part of a byte-compared artifact. *)
let default_clock () = Sys.time () (* lint: allow R2 pass-timing diagnostics *)

let lint_source ?(rules = Rules.all) ?(clock = default_clock) ~relpath source
    =
  let sup = Suppress.of_source source in
  let active =
    List.filter (fun r -> not (Suppress.file_disabled sup r)) rules
  in
  let ctx = { Pass.relpath; active; raw = [] } in
  let ast = parse ~relpath source in
  let timings =
    List.filter_map
      (fun (p : Pass.t) ->
        if Pass.relevant p ctx then begin
          let t0 = clock () in
          p.Pass.run ctx ast;
          Some (p.Pass.name, clock () -. t0)
        end
        else None)
      passes
  in
  let suppressed, findings =
    List.partition
      (fun (f : finding) -> Suppress.allowed sup f.rule ~line:f.line)
      ctx.Pass.raw
  in
  {
    findings = List.sort compare_finding findings;
    suppressed = List.length suppressed;
    timings;
  }
