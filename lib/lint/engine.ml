(* The analysis pass proper: parse one compilation unit with compiler-libs
   and walk the Parsetree with an [Ast_iterator], emitting findings.

   The pass is purely syntactic — no typing environment — so the rules are
   written to be conservative and low-noise rather than complete:

   - R3 uses a structure-item heuristic: a [Hashtbl.iter]/[Hashtbl.fold]
     is accepted when the same top-level item also applies a sort
     ([List.sort], [List.sort_uniq], [List.stable_sort], [Array.sort], ...)
     somewhere, which covers the repo's fold-then-sort idiom; anything
     else needs an audited [(* lint: sorted *)] marker.
   - R5 flags the polymorphic [compare] identifier itself, plus
     (in)equality operators with a float-literal or lambda operand. *)

type finding = {
  rule : Rules.id;
  file : string;
  line : int;
  col : int;
  message : string;
}

type result = { findings : finding list; suppressed : int }

exception Parse_error of string

let compare_finding a b =
  match compare (a.line, a.col) (b.line, b.col) with
  | 0 -> String.compare (Rules.to_string a.rule) (Rules.to_string b.rule)
  | c -> c

(* --- identifier classification -------------------------------------- *)

let flatten lid = try Longident.flatten lid with _ -> []

let sort_names = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let is_sort_ident lid =
  match flatten lid with
  | [ _; name ] -> List.mem name sort_names
  | _ -> false

let wall_clock_idents =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Sys"; "time" ];
    [ "Random"; "self_init" ];
  ]

let print_idents =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Stdlib"; "print_endline" ];
    [ "Stdlib"; "print_string" ];
  ]

let poly_compare_idents =
  [ [ "compare" ]; [ "Stdlib"; "compare" ]; [ "Pervasives"; "compare" ] ]

let equality_ops = [ "="; "<>"; "=="; "!=" ]

let dotted segs = String.concat "." segs

(* --- the iterator ---------------------------------------------------- *)

open Parsetree

type ctx = {
  relpath : string;
  active : Rules.id list;
  mutable raw : finding list; (* candidates, suppression applied later *)
  mutable sorted_item : bool; (* current structure item contains a sort *)
}

let emit ctx rule (loc : Location.t) message =
  if List.mem rule ctx.active && Rules.applies ~relpath:ctx.relpath rule then
    ctx.raw <-
      {
        rule;
        file = ctx.relpath;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        message;
      }
      :: ctx.raw

let is_float_lit e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let is_lambda e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let check_ident ctx lid (loc : Location.t) =
  let segs = flatten lid in
  (match segs with
  | "Random" :: _ ->
      emit ctx Rules.R1 loc
        (Printf.sprintf
           "use of %s: all randomness must flow through seeded Engine.Rng"
           (dotted segs))
  | _ -> ());
  if List.mem segs wall_clock_idents then
    emit ctx Rules.R2 loc
      (Printf.sprintf
         "wall-clock/process-entropy call %s breaks run-to-run reproducibility"
         (dotted segs));
  (match segs with
  | [ "Domain"; ("spawn" | "join") ] ->
      emit ctx Rules.R4 loc
        (Printf.sprintf
           "%s outside Runner: parallelism must use Runner.map's \
            deterministic merge"
           (dotted segs))
  | _ -> ());
  if List.mem segs poly_compare_idents then
    emit ctx Rules.R5 loc
      (Printf.sprintf
         "polymorphic %s: results on float-bearing values depend on \
          representation, not arithmetic order"
         (dotted segs));
  if List.mem segs print_idents then
    emit ctx Rules.R7 loc
      (Printf.sprintf "%s writes to stdout, bypassing Report/Export"
         (dotted segs))

let check_hashtbl_iteration ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) -> (
      match flatten txt with
      | [ "Hashtbl"; (("iter" | "fold") as f) ] ->
          if not ctx.sorted_item then
            emit ctx Rules.R3 loc
              (Printf.sprintf
                 "Hashtbl.%s result may escape in hash order (no sort in \
                  this definition)"
                 f)
      | _ -> ())
  | _ -> ()

let check_r5_equality ctx e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident op; loc }; _ },
        [ (_, a); (_, b) ] )
    when List.mem op equality_ops ->
      if is_float_lit a || is_float_lit b then
        emit ctx Rules.R5 loc
          (Printf.sprintf
             "(%s) on a float literal: use Float.equal/Float.compare" op)
      else if is_lambda a || is_lambda b then
        emit ctx Rules.R5 loc
          (Printf.sprintf "(%s) on a functional value raises at runtime" op)
  | _ -> ()

(* R6: a structure-level [let] whose right-hand side allocates mutable
   state. Type constraints, let-ins and sequences are unwrapped; functions
   are not flagged (they allocate per call, not per module). *)
let rec alloc_root e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> alloc_root e
  | Pexp_let (_, _, e) | Pexp_sequence (_, e) | Pexp_open (_, e) ->
      alloc_root e
  | _ -> e

let check_r6_binding ctx vb =
  let rhs = alloc_root vb.pvb_expr in
  match rhs.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] ->
          emit ctx Rules.R6 vb.pvb_loc
            "top-level ref: shared mutable state outside the designated \
             registries"
      | [ "Hashtbl"; "create" ] ->
          emit ctx Rules.R6 vb.pvb_loc
            "top-level Hashtbl: shared mutable state outside the designated \
             registries"
      | _ -> ())
  | _ -> ()

let item_contains_sort item =
  let found = ref false in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } when is_sort_ident txt -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure_item it item;
  !found

let make_iterator ctx =
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ctx txt loc
    | _ -> ());
    check_hashtbl_iteration ctx e;
    check_r5_equality ctx e;
    Ast_iterator.default_iterator.expr sub e
  in
  let module_expr sub m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } when flatten txt = [ "Random" ] ->
        emit ctx Rules.R1 loc
          "aliasing/opening Random: all randomness must flow through \
           Engine.Rng"
    | _ -> ());
    Ast_iterator.default_iterator.module_expr sub m
  in
  let structure_item sub item =
    let outer = ctx.sorted_item in
    ctx.sorted_item <- item_contains_sort item;
    (match item.pstr_desc with
    | Pstr_value (_, bindings) -> List.iter (check_r6_binding ctx) bindings
    | _ -> ());
    Ast_iterator.default_iterator.structure_item sub item;
    ctx.sorted_item <- outer
  in
  { Ast_iterator.default_iterator with expr; module_expr; structure_item }

(* --- entry point ------------------------------------------------------ *)

let parse ~relpath source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf relpath;
  try
    if Filename.check_suffix relpath ".mli" then
      `Interface (Parse.interface lexbuf)
    else `Implementation (Parse.implementation lexbuf)
  with exn ->
    raise
      (Parse_error (Printf.sprintf "%s: %s" relpath (Printexc.to_string exn)))

let lint_source ?(rules = Rules.all) ~relpath source =
  let sup = Suppress.of_source source in
  let active =
    List.filter (fun r -> not (Suppress.file_disabled sup r)) rules
  in
  let ctx = { relpath; active; raw = []; sorted_item = false } in
  let it = make_iterator ctx in
  (match parse ~relpath source with
  | `Implementation str -> it.structure it str
  | `Interface sg -> it.signature it sg);
  let suppressed, findings =
    List.partition
      (fun f -> Suppress.allowed sup f.rule ~line:f.line)
      ctx.raw
  in
  { findings = List.sort compare_finding findings;
    suppressed = List.length suppressed }
