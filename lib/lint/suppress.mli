(** Suppression-comment parsing.

    Three directive forms are recognised anywhere in a source line:

    - [(* lint: sorted *)] — marks an audited R3 site whose iteration order
      provably cannot escape (commutative fold, or sorted downstream).
    - [(* lint: unit <u> <reason> *)] — marks an audited U1/U2 site: the
      author asserts the value is in unit [<u>] and the apparent mix is
      deliberate (e.g. a checked reinterpretation).
    - [(* lint: allow R6 <reason> *)] — marks an audited site for any rule.
    - [(* lint: disable R2 R7 *)] — disables the listed rules file-wide.

    Site directives apply to their own line and to the line directly
    below, so they can trail the offending expression or precede it. *)

type t

val of_source : string -> t

val file_disabled : t -> Rules.id -> bool

val allowed : t -> Rules.id -> line:int -> bool
