(** Rule identities, severities and path scoping for the static-analysis
    framework.

    Rules come in families, each implemented by one registered pass
    (see {!Engine.passes}):

    - [R1]-[R7]: the determinism invariants — bit-for-bit identical
      reports, traces and statistics for a given seed, regardless of
      host, wall-clock or [--jobs] level.
    - [U1]/[U2]: units-of-measure inference over identifier suffixes —
      the cost arithmetic composing cycles, microseconds, bytes and
      Gbps must never mix dimensions silently.
    - [M1]: the stat-marker label grammar — a typo in an exit/entry
      label silently drops rows from [armvirt stat].
    - [D1]: cross-domain capture — closures fanned out through
      [Runner.map] must not touch mutable toplevel state. *)

type id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | U1 | U2 | M1 | D1

type severity = Error | Warning

val all : id list

val to_string : id -> string

val of_string : string -> id option
(** Case-insensitive; returns [None] for unknown ids. *)

val severity : id -> severity

val severity_to_string : severity -> string

val summary : id -> string
(** One-line description of what the rule forbids. *)

val hint : id -> string
(** How to fix a finding. *)

val explain : id -> string
(** The long-form rationale shown by [armvirt lint --explain RULE]:
    what the rule flags, why the invariant matters, and the audited
    suppression form. *)

val rng_module : string
(** The only file allowed to use stdlib [Random] (R1 allowlist). *)

val runner_module : string
(** The only file allowed to use [Domain.spawn]/[Domain.join] (R4). *)

val registry_modules : string list
(** Files whose top-level mutable state is the designated registry
    (R6 allowlist, and D1's exempt capture targets). *)

val applies : relpath:string -> id -> bool
(** Whether a rule is in scope for a '/'-separated repo-relative path. *)
