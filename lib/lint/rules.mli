(** Rule identities, severities and path scoping for the determinism linter.

    Each rule protects one reproducibility invariant of the simulator:
    bit-for-bit identical reports, traces and statistics for a given seed,
    regardless of host, wall-clock or [--jobs] level. *)

type id = R1 | R2 | R3 | R4 | R5 | R6 | R7

type severity = Error | Warning

val all : id list

val to_string : id -> string

val of_string : string -> id option
(** Case-insensitive; returns [None] for unknown ids. *)

val severity : id -> severity

val severity_to_string : severity -> string

val summary : id -> string
(** One-line description of what the rule forbids. *)

val hint : id -> string
(** How to fix a finding. *)

val rng_module : string
(** The only file allowed to use stdlib [Random] (R1 allowlist). *)

val runner_module : string
(** The only file allowed to use [Domain.spawn]/[Domain.join] (R4). *)

val registry_modules : string list
(** Files whose top-level mutable state is the designated registry (R6). *)

val applies : relpath:string -> id -> bool
(** Whether a rule is in scope for a '/'-separated repo-relative path. *)
