(* D1: cross-domain capture.

   R4 confines [Domain.spawn] to the runner, but that still leaves a
   hole: a closure handed to [Runner.map] may capture a mutable
   toplevel binding from its own module and mutate it from worker
   domains — a data race that R6's audited-global allowlist makes
   invisible (an [(* lint: allow R6 *)] hook slot is fine as a
   process-wide registration point, and still wrong to touch from a
   fanned-out cell).

   The check is per-file and syntactic: collect the names of toplevel
   [ref]/[Hashtbl.create]/[Atomic.make] bindings (whether or not R6
   grandfathered them), then flag any bare identifier inside an
   argument of a [Runner.map] application that resolves to one of
   them. Cross-module captures cannot be seen without a typing
   environment; the designated registries are exempt by scoping
   ({!Rules.applies}), because Runner itself merges their contents
   deterministically (domain-local tracers, input-order merge). *)

open Parsetree

let toplevel_mutables str =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.filter_map
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when Pass.is_mutable_alloc vb.pvb_expr ->
                  Some txt
              | _ -> None)
            bindings
      | _ -> [])
    str

let is_runner_map lid =
  match List.rev (Pass.flatten lid) with
  | "map" :: "Runner" :: _ -> true
  | _ -> false

let check_argument ctx mutables (arg : expression) =
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt = Lident name; loc } when List.mem name mutables ->
        Pass.emit ctx Rules.D1 loc
          (Printf.sprintf
             "closure reaching Runner.map captures mutable toplevel %S: \
              worker domains would race on it and memoized replays would \
              diverge"
             name)
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it arg

let run ctx (ast : Pass.ast) =
  match ast with
  | Pass.Intf _ -> ()
  | Pass.Impl str ->
      let mutables = toplevel_mutables str in
      if mutables <> [] then begin
        let expr sub e =
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when is_runner_map txt ->
              List.iter (fun (_, a) -> check_argument ctx mutables a) args
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e
        in
        let it = { Ast_iterator.default_iterator with expr } in
        it.structure it str
      end

let pass = { Pass.name = "capture"; rules = [ Rules.D1 ]; run }
