(* U1/U2: units-of-measure inference over identifier suffixes.

   The repo's cost arithmetic composes cycles (Table I/III paths),
   microseconds (migration downtime), bytes/KiB (guest memory) and Gbps
   (wire rates); a silent cross-unit [+] corrupts a headline number
   without failing any test. This pass assigns each expression a point
   in a small unit lattice,

       Unknown  (top: no information, compatible with everything)
       Unit u   (a named dimension-and-scale, e.g. "us", "cycles")
       Unitless (a literal constant)

   inferred purely syntactically:

   - identifiers and record fields carry the unit of their last
     '_'-separated token when it is a known suffix (so [downtime_us],
     [t.link_gbps], [bytes]); names containing "_per_" are rates whose
     dimension is contextual and stay Unknown;
   - applications carry the unit of the applied function's name, with
     converter naming respected: [<u>_of_<v>] and [<u>_of] return [u],
     [to_<u>] returns [u], [of_<v>] returns Unknown (but its argument is
     checked against [v]); [Cycles.of_us]/[Cycles.of_int]/[Cycles.to_int]
     and friends are special-cased because their results are cycles;
   - [+]/[-]/[+.]/[-.] propagate the operands' join; [*], [/] and
     everything else erase to Unknown (products change dimension).

   Checks, all additive-composition sites only:

   - U1: both operands of +/-/comparison carry different units; a
     let-binding / record field / labelled argument whose name carries
     unit [u] receives an expression carrying [v <> u]; a converter's
     payload argument carries a unit other than the converter's source.
   - U2: a nonzero literal (other than 1) meets a unit-carrying value in
     +/-/comparison. 0 is unit-polymorphic and 1 is the counting idiom;
     literals bound directly at a unit-suffixed declaration are the
     sanctioned constant entry points and do not flag.

   Escapes: a named converter at the site, or an audited
   [(* lint: unit <u> <reason> *)] marker. *)

open Parsetree

type unit_ = Unit of string | Unitless | Unknown

(* Known suffixes, lower-case. The suffix string itself is the unit
   name shown in messages. *)
let known_suffixes =
  [
    "cycles"; "ns"; "us"; "ms"; "bytes"; "kb"; "mb"; "gb"; "pages";
    "gbps"; "mbps"; "pct"; "hz"; "khz"; "mhz"; "ghz";
  ]

let is_known u = List.mem u known_suffixes

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i j = j = nn || (hay.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = i + nn <= nh && (at i 0 || go (i + 1)) in
  nn = 0 || go 0

(* Unit of a bare name: last '_'-separated token, rates excluded. *)
let name_unit name =
  if contains_sub name "_per_" || contains_sub name "per_" then None
  else
    match List.rev (String.split_on_char '_' name) with
    | last :: _ when is_known last -> Some last
    | _ -> None

(* Result unit and expected-argument unit of an applied function name.
   [arg] is checked against the last unlabelled argument when known. *)
type fn_units = { result : unit_; arg : string option }

let no_units = { result = Unknown; arg = None }

(* Module-qualified converters whose names alone would mislead:
   Cycles.of_us returns cycles (taking us), Cycles.to_int is still a
   cycle count, arithmetic on Cycles.t stays cycles. *)
let qualified_fn_units = function
  | [ "Cycles"; "of_us" ] -> { result = Unit "cycles"; arg = Some "us" }
  | [ "Cycles"; ("of_int" | "to_int" | "add" | "sub" | "scale" | "sum"
                | "min" | "max") ] ->
      { result = Unit "cycles"; arg = None }
  | [ "Cycles"; "to_us" ] -> { result = Unit "us"; arg = None }
  | _ -> no_units

let split_on_infix name infix =
  (* "cycles_of_us" -> Some ("cycles", "us") for infix "_of_" *)
  let nl = String.length name and il = String.length infix in
  let rec find i =
    if i + il > nl then None
    else if String.sub name i il = infix then
      Some (String.sub name 0 i, String.sub name (i + il) (nl - i - il))
    else find (i + 1)
  in
  find 0

let last_token name =
  match List.rev (String.split_on_char '_' name) with
  | last :: _ -> last
  | [] -> name

let unqualified_fn_units name =
  match split_on_infix name "_of_" with
  | Some (res, src) ->
      let result =
        match name_unit res with
        | Some u -> Unit u
        | None -> (
            match last_token res with
            | t when is_known t -> Unit t
            | _ -> Unknown)
      in
      let arg = if is_known src then Some src else None in
      { result; arg }
  | None ->
      if String.length name > 3 && String.sub name 0 3 = "to_" then
        let u = String.sub name 3 (String.length name - 3) in
        if is_known u then { result = Unit u; arg = None } else no_units
      else if String.length name > 3 && String.sub name 0 3 = "of_" then
        let u = String.sub name 3 (String.length name - 3) in
        if is_known u then { result = Unknown; arg = Some u } else no_units
      else if
        String.length name > 3
        && String.sub name (String.length name - 3) 3 = "_of"
      then
        match name_unit (String.sub name 0 (String.length name - 3)) with
        | Some u -> { result = Unit u; arg = None }
        | None -> no_units
      else
        match name_unit name with
        | Some u -> { result = Unit u; arg = None }
        | None -> no_units

let fn_units lid =
  let segs = Pass.flatten lid in
  match qualified_fn_units segs with
  | { result = Unknown; arg = None } -> (
      match List.rev segs with
      | name :: _ -> unqualified_fn_units name
      | [] -> no_units)
  | q -> q

let additive_ops = [ "+"; "-"; "+."; "-." ]
let comparison_ops = [ "<"; "<="; ">"; ">="; "="; "<>" ]

(* Literals exempt from U2: 0 is unit-polymorphic (0 us = 0 of any
   unit), 1 covers the pervasive ceiling-division / off-by-one idiom. *)
let exempt_literal = function
  | Pconst_integer (s, _) -> (
      match int_of_string_opt s with Some (0 | 1 | -1) -> true | _ -> false)
  | Pconst_float (s, _) -> (
      match float_of_string_opt s with
      | Some f -> Float.equal f 0.0 || Float.equal (Float.abs f) 1.0
      | None -> false)
  | _ -> false

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) ->
      strip e
  | _ -> e

let is_constant e =
  match (strip e).pexp_desc with Pexp_constant _ -> true | _ -> false

let rec infer e =
  let e = strip e in
  match e.pexp_desc with
  | Pexp_constant _ -> Unitless
  | Pexp_ident { txt; _ } -> (
      match List.rev (Pass.flatten txt) with
      | name :: _ -> (
          match name_unit name with Some u -> Unit u | None -> Unknown)
      | [] -> Unknown)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (Pass.flatten txt) with
      | name :: _ -> (
          match name_unit name with Some u -> Unit u | None -> Unknown)
      | [] -> Unknown)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident op; _ }; _ },
                [ (Nolabel, a); (Nolabel, b) ])
    when List.mem op additive_ops -> (
      (* Join: the unit survives addition with Unknown/Unitless. *)
      match (infer a, infer b) with
      | Unit u, Unit v when u = v -> Unit u
      | Unit _, Unit _ -> Unknown (* mismatch reported at the node check *)
      | Unit u, _ | _, Unit u -> Unit u
      | Unitless, Unitless -> Unitless
      | _ -> Unknown)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      (fn_units txt).result
  | _ -> Unknown

(* --- node checks ------------------------------------------------------ *)

let unit_name = function Unit u -> u | Unitless -> "unitless" | Unknown -> "?"

let check_binary ctx op (loc : Location.t) a b =
  let ua = infer a and ub = infer b in
  match (ua, ub) with
  | Unit u, Unit v when u <> v ->
      Pass.emit ctx Rules.U1 loc
        (Printf.sprintf "incompatible units: %s %s %s" u op v)
  | Unit u, _ when is_constant b
                   && not (match (strip b).pexp_desc with
                           | Pexp_constant c -> exempt_literal c
                           | _ -> true) ->
      Pass.emit ctx Rules.U2 loc
        (Printf.sprintf
           "unit-less literal %s a value in %s: name it or convert it"
           (if List.mem op additive_ops then "added to/subtracted from"
            else "compared with")
           u)
  | _, Unit u when is_constant a
                   && not (match (strip a).pexp_desc with
                           | Pexp_constant c -> exempt_literal c
                           | _ -> true) ->
      Pass.emit ctx Rules.U2 loc
        (Printf.sprintf
           "unit-less literal %s a value in %s: name it or convert it"
           (if List.mem op additive_ops then "added to/subtracted from"
            else "compared with")
           u)
  | _ -> ()

let check_apply ctx e =
  match e.pexp_desc with
  | Pexp_apply (({ pexp_desc = Pexp_ident { txt = Lident op; loc }; _ }),
                [ (Nolabel, a); (Nolabel, b) ])
    when List.mem op additive_ops || List.mem op comparison_ops ->
      check_binary ctx op loc a b
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      (* Labelled arguments whose label names a unit. *)
      List.iter
        (fun (lbl, arg) ->
          match lbl with
          | Asttypes.Labelled l | Asttypes.Optional l -> (
              match name_unit l with
              | Some u -> (
                  match infer arg with
                  | Unit v when v <> u ->
                      Pass.emit ctx Rules.U1 arg.pexp_loc
                        (Printf.sprintf
                           "argument ~%s: expected %s, got a value in %s" l u
                           v)
                  | _ -> ())
              | None -> ())
          | Asttypes.Nolabel -> ())
        args;
      (* Converter payloads: the last unlabelled argument must carry the
         converter's source unit (or nothing inferable). *)
      (match (fn_units txt).arg with
      | None -> ()
      | Some src -> (
          match
            List.rev
              (List.filter_map
                 (fun (lbl, a) ->
                   match lbl with Asttypes.Nolabel -> Some a | _ -> None)
                 args)
          with
          | payload :: _ -> (
              match infer payload with
              | Unit v when v <> src ->
                  Pass.emit ctx Rules.U1 payload.pexp_loc
                    (Printf.sprintf
                       "converter %s expects %s, got a value in %s"
                       (Pass.dotted (Pass.flatten txt))
                       src v)
              | _ -> ())
          | [] -> ()))
  | _ -> ()

let check_record ctx e =
  match e.pexp_desc with
  | Pexp_record (fields, _) ->
      List.iter
        (fun (({ txt; _ } : Longident.t Location.loc), value) ->
          match List.rev (Pass.flatten txt) with
          | name :: _ -> (
              match name_unit name with
              | Some u -> (
                  match infer value with
                  | Unit v when v <> u ->
                      Pass.emit ctx Rules.U1 value.pexp_loc
                        (Printf.sprintf
                           "field %s holds %s but receives a value in %s"
                           name u v)
                  | _ -> ())
              | None -> ())
          | [] -> ())
        fields
  | _ -> ()

let pattern_unit p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _)
    ->
      name_unit txt
  | _ -> None

let check_binding ctx vb =
  match pattern_unit vb.pvb_pat with
  | None -> ()
  | Some u -> (
      match infer vb.pvb_expr with
      | Unit v when v <> u ->
          Pass.emit ctx Rules.U1 vb.pvb_loc
            (Printf.sprintf "binding *_%s receives a value in %s" u v)
      | _ -> ())

let run ctx (ast : Pass.ast) =
  let expr sub e =
    check_apply ctx e;
    check_record ctx e;
    (match e.pexp_desc with
    | Pexp_let (_, bindings, _) -> List.iter (check_binding ctx) bindings
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let structure_item sub item =
    (match item.pstr_desc with
    | Pstr_value (_, bindings) -> List.iter (check_binding ctx) bindings
    | _ -> ());
    Ast_iterator.default_iterator.structure_item sub item
  in
  let it = { Ast_iterator.default_iterator with expr; structure_item } in
  match ast with
  | Pass.Impl str -> it.structure it str
  | Pass.Intf sg -> it.signature it sg

let pass = { Pass.name = "units"; rules = Rules.[ U1; U2 ]; run }
