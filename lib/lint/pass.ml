(* Shared infrastructure for registered analysis passes. A pass declares
   the rule ids it implements and a [run] function over one parsed
   compilation unit; the engine filters, times and suppresses. *)

type finding = {
  rule : Rules.id;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare_finding a b =
  match compare (a.line, a.col) (b.line, b.col) with
  | 0 -> String.compare (Rules.to_string a.rule) (Rules.to_string b.rule)
  | c -> c

type ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

type ctx = {
  relpath : string;
  active : Rules.id list;  (* requested minus file-wide-disabled *)
  mutable raw : finding list;  (* candidates; suppression applied later *)
}

let emit ctx rule (loc : Location.t) message =
  if List.mem rule ctx.active && Rules.applies ~relpath:ctx.relpath rule then
    ctx.raw <-
      {
        rule;
        file = ctx.relpath;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        message;
      }
      :: ctx.raw

type t = {
  name : string;  (* stable identifier in reports, e.g. "units" *)
  rules : Rules.id list;  (* every id this pass can emit *)
  run : ctx -> ast -> unit;
}

(* A pass only runs when at least one of its rules is active for the
   file, so scoping never pays for out-of-scope machinery. *)
let relevant pass ctx =
  List.exists
    (fun r -> List.mem r ctx.active && Rules.applies ~relpath:ctx.relpath r)
    pass.rules

(* --- helpers shared by several passes ------------------------------- *)

let flatten lid = try Longident.flatten lid with _ -> []

let dotted segs = String.concat "." segs

(* Unwrap type constraints, let-ins and sequences down to the expression
   that actually allocates; functions are never unwrapped (they allocate
   per call, not per module). *)
let rec alloc_root (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> alloc_root e
  | Pexp_let (_, _, e) | Pexp_sequence (_, e) | Pexp_open (_, e) ->
      alloc_root e
  | _ -> e

(* The identifier paths whose application allocates process-visible
   mutable state when bound at toplevel (R6 candidates, D1 capture
   targets). *)
let mutable_alloc_paths =
  [
    [ "ref" ];
    [ "Stdlib"; "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Atomic"; "make" ];
  ]

let is_mutable_alloc (e : Parsetree.expression) =
  match (alloc_root e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      List.mem (flatten txt) mutable_alloc_paths
  | _ -> false
