(* The determinism pass: rules R1-R7 over one compilation unit.

   The pass is purely syntactic — no typing environment — so the rules are
   written to be conservative and low-noise rather than complete:

   - R3 uses a structure-item heuristic: a [Hashtbl.iter]/[Hashtbl.fold]
     is accepted when the same top-level item also applies a sort
     ([List.sort], [List.sort_uniq], [List.stable_sort], [Array.sort], ...)
     somewhere, which covers the repo's fold-then-sort idiom; anything
     else needs an audited [(* lint: sorted *)] marker.
   - R5 flags the polymorphic [compare] identifier itself, plus
     (in)equality operators with a float-literal or lambda operand. *)

open Parsetree

let flatten = Pass.flatten
let dotted = Pass.dotted

let sort_names = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let is_sort_ident lid =
  match flatten lid with
  | [ _; name ] -> List.mem name sort_names
  | _ -> false

let wall_clock_idents =
  [
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Sys"; "time" ];
    [ "Random"; "self_init" ];
  ]

let print_idents =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Stdlib"; "print_endline" ];
    [ "Stdlib"; "print_string" ];
  ]

let poly_compare_idents =
  [ [ "compare" ]; [ "Stdlib"; "compare" ]; [ "Pervasives"; "compare" ] ]

let equality_ops = [ "="; "<>"; "=="; "!=" ]

(* Per-file mutable pass state, threaded through the iterator closures. *)
type state = { mutable sorted_item : bool }

let is_float_lit e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let is_lambda e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let check_ident ctx lid (loc : Location.t) =
  let segs = flatten lid in
  (match segs with
  | "Random" :: _ ->
      Pass.emit ctx Rules.R1 loc
        (Printf.sprintf
           "use of %s: all randomness must flow through seeded Engine.Rng"
           (dotted segs))
  | _ -> ());
  if List.mem segs wall_clock_idents then
    Pass.emit ctx Rules.R2 loc
      (Printf.sprintf
         "wall-clock/process-entropy call %s breaks run-to-run reproducibility"
         (dotted segs));
  (match segs with
  | [ "Domain"; ("spawn" | "join") ] ->
      Pass.emit ctx Rules.R4 loc
        (Printf.sprintf
           "%s outside Runner: parallelism must use Runner.map's \
            deterministic merge"
           (dotted segs))
  | _ -> ());
  if List.mem segs poly_compare_idents then
    Pass.emit ctx Rules.R5 loc
      (Printf.sprintf
         "polymorphic %s: results on float-bearing values depend on \
          representation, not arithmetic order"
         (dotted segs));
  if List.mem segs print_idents then
    Pass.emit ctx Rules.R7 loc
      (Printf.sprintf "%s writes to stdout, bypassing Report/Export"
         (dotted segs))

let check_hashtbl_iteration ctx st e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) -> (
      match flatten txt with
      | [ "Hashtbl"; (("iter" | "fold") as f) ] ->
          if not st.sorted_item then
            Pass.emit ctx Rules.R3 loc
              (Printf.sprintf
                 "Hashtbl.%s result may escape in hash order (no sort in \
                  this definition)"
                 f)
      | _ -> ())
  | _ -> ()

let check_r5_equality ctx e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident op; loc }; _ },
        [ (_, a); (_, b) ] )
    when List.mem op equality_ops ->
      if is_float_lit a || is_float_lit b then
        Pass.emit ctx Rules.R5 loc
          (Printf.sprintf
             "(%s) on a float literal: use Float.equal/Float.compare" op)
      else if is_lambda a || is_lambda b then
        Pass.emit ctx Rules.R5 loc
          (Printf.sprintf "(%s) on a functional value raises at runtime" op)
  | _ -> ()

(* R6: a structure-level [let] whose right-hand side allocates mutable
   state. Type constraints, let-ins and sequences are unwrapped; functions
   are not flagged (they allocate per call, not per module). *)
let check_r6_binding ctx vb =
  let rhs = Pass.alloc_root vb.pvb_expr in
  match rhs.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] ->
          Pass.emit ctx Rules.R6 vb.pvb_loc
            "top-level ref: shared mutable state outside the designated \
             registries"
      | [ "Hashtbl"; "create" ] ->
          Pass.emit ctx Rules.R6 vb.pvb_loc
            "top-level Hashtbl: shared mutable state outside the designated \
             registries"
      | _ -> ())
  | _ -> ()

let item_contains_sort item =
  let found = ref false in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } when is_sort_ident txt -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure_item it item;
  !found

let make_iterator ctx st =
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ctx txt loc
    | _ -> ());
    check_hashtbl_iteration ctx st e;
    check_r5_equality ctx e;
    Ast_iterator.default_iterator.expr sub e
  in
  let module_expr sub m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } when flatten txt = [ "Random" ] ->
        Pass.emit ctx Rules.R1 loc
          "aliasing/opening Random: all randomness must flow through \
           Engine.Rng"
    | _ -> ());
    Ast_iterator.default_iterator.module_expr sub m
  in
  let structure_item sub item =
    let outer = st.sorted_item in
    st.sorted_item <- item_contains_sort item;
    (match item.pstr_desc with
    | Pstr_value (_, bindings) -> List.iter (check_r6_binding ctx) bindings
    | _ -> ());
    Ast_iterator.default_iterator.structure_item sub item;
    st.sorted_item <- outer
  in
  { Ast_iterator.default_iterator with expr; module_expr; structure_item }

let run ctx (ast : Pass.ast) =
  let st = { sorted_item = false } in
  let it = make_iterator ctx st in
  match ast with
  | Pass.Impl str -> it.structure it str
  | Pass.Intf sg -> it.signature it sg

let pass =
  {
    Pass.name = "determinism";
    rules = Rules.[ R1; R2; R3; R4; R5; R6; R7 ];
    run;
  }
