(** Rendering lint results for humans and machines.

    Schema v2: the JSON report carries per-pass timing ([passes]), the
    baseline verdict counts, and a [status] per finding (fresh vs
    grandfathered). [duration_ms] is the only non-deterministic field;
    byte-compared goldens zero it out. *)

type format = Text | Csv | Json

val format_of_string : string -> format option

type status = Fresh | Grandfathered

val status_to_string : status -> string

type pass_stat = {
  pass : string;
  pass_rules : Rules.id list;
  duration_ms : float;
  pass_findings : int;
}

type t = {
  root : string;
  files_scanned : int;
  suppressed : int;
  passes : pass_stat list;
  findings : (Engine.finding * status) list;
      (** sorted by (file, line, col, rule) *)
  stale : Baseline.entry list;
}

val fresh : t -> Engine.finding list
val grandfathered : t -> Engine.finding list

val clean : t -> bool
(** No fresh findings and no stale baseline residue. *)

val of_findings :
  ?passes:pass_stat list ->
  root:string ->
  files_scanned:int ->
  suppressed:int ->
  Engine.finding list ->
  t
(** All findings fresh, empty stale list — the no-baseline case. *)

val render : format -> t -> string
(** Deterministic apart from [duration_ms]: identical inputs produce
    byte-identical output. The JSON schema is documented in [report.ml]
    and in the README. *)
