(** Rendering of an aggregated lint run. *)

type format = Text | Csv | Json

val format_of_string : string -> format option

type t = {
  root : string;
  files_scanned : int;
  findings : Engine.finding list;  (** sorted by (file, line, col, rule) *)
  suppressed : int;
}

val render : format -> t -> string
(** Deterministic: identical inputs produce byte-identical output. The
    JSON schema is documented in [report.ml] and in the README. *)
