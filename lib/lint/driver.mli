(** Whole-repo lint runs. *)

val scan_files : root:string -> string list
(** All [.ml]/[.mli] files under [lib/], [bin/] and [bench/] below [root],
    as sorted '/'-separated relative paths. [_*] and dot directories are
    skipped. *)

val find_root : unit -> string
(** Locate the repo root from the current directory, stripping any
    [_build] components first (so it works from dune test and rule
    sandboxes), then walking up to the nearest [dune-project]. *)

val lint_tree :
  ?rules:Rules.id list -> ?baseline:Baseline.t -> root:string -> unit -> Report.t
(** Lint every scanned file under [root], then split findings into fresh
    vs grandfathered against [baseline] (default: empty, i.e. everything
    fresh). Unparseable files are reported on stderr and skipped. *)

val explain : string -> int
(** Print the long-form rationale for a rule id ([--explain]). Returns
    the exit code: 0 on a known rule, 2 otherwise. *)

val run :
  ?format:Report.format ->
  ?only:string list ->
  ?skip:string list ->
  ?root:string ->
  ?out:string ->
  ?baseline:string ->
  ?update_baseline:bool ->
  unit ->
  int
(** CLI entry point shared by [armvirt-lint] and [armvirt lint]. [only] and
    [skip] are comma-separable rule-id lists ([--rules]/[--skip-rules]).
    [out] of [None] or ["-"] writes to stdout. [baseline] names the
    ratchet file ([--baseline]), resolved against the cwd then the repo
    root; with [update_baseline] the current findings are written back to
    it instead of reported. Returns the exit code: 0 clean (grandfathered
    findings allowed), 1 fresh findings or stale baseline residue, 2
    usage error. *)
