(** Whole-repo lint runs. *)

val scan_files : root:string -> string list
(** All [.ml]/[.mli] files under [lib/], [bin/] and [bench/] below [root],
    as sorted '/'-separated relative paths. [_*] and dot directories are
    skipped. *)

val find_root : unit -> string
(** Locate the repo root from the current directory, stripping any
    [_build] components first (so it works from dune test and rule
    sandboxes), then walking up to the nearest [dune-project]. *)

val lint_tree : ?rules:Rules.id list -> root:string -> unit -> Report.t
(** Lint every scanned file under [root]. Unparseable files are reported
    on stderr and skipped. *)

val run :
  ?format:Report.format ->
  ?only:string list ->
  ?skip:string list ->
  ?root:string ->
  ?out:string ->
  unit ->
  int
(** CLI entry point shared by [armvirt-lint] and [armvirt lint]. [only] and
    [skip] are comma-separable rule-id lists ([--rules]/[--skip-rules]).
    [out] of [None] or ["-"] writes to stdout. Returns the exit code:
    0 clean, 1 unsuppressed findings, 2 usage error. *)
