type format = Text | Csv | Json

let format_of_string = function
  | "text" -> Some Text
  | "csv" -> Some Csv
  | "json" -> Some Json
  | _ -> None

type t = {
  root : string;
  files_scanned : int;
  findings : Engine.finding list;
  suppressed : int;
}

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_text t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f : Engine.finding) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: %s[%s] %s\n  hint: %s\n" f.file f.line
           f.col
           (Rules.severity_to_string (Rules.severity f.rule))
           (Rules.to_string f.rule) f.message (Rules.hint f.rule)))
    t.findings;
  Buffer.add_string buf
    (Printf.sprintf
       "armvirt-lint: %d files scanned, %d finding%s (%d suppressed)\n"
       t.files_scanned
       (List.length t.findings)
       (if List.length t.findings = 1 then "" else "s")
       t.suppressed);
  Buffer.contents buf

let render_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "file,line,col,rule,severity,message\n";
  List.iter
    (fun (f : Engine.finding) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%s,%s\n" (escape_csv f.file) f.line f.col
           (Rules.to_string f.rule)
           (Rules.severity_to_string (Rules.severity f.rule))
           (escape_csv f.message)))
    t.findings;
  Buffer.contents buf

(* Schema (stable; consumed by CI artifacts and external tooling):
   { "version": 1, "root": str, "files_scanned": int, "suppressed": int,
     "findings": [ { "file": str, "line": int, "col": int, "rule": "R1".."R7",
                     "severity": "error"|"warning", "message": str,
                     "hint": str } ] }
   Findings are sorted by (file, line, col, rule); key order is fixed. *)
let render_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"version\": 1,\n  \"root\": \"%s\",\n  \"files_scanned\": %d,\n\
       \  \"suppressed\": %d,\n  \"findings\": [" (escape_json t.root)
       t.files_scanned t.suppressed);
  List.iteri
    (fun i (f : Engine.finding) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
            \"%s\", \"severity\": \"%s\", \"message\": \"%s\", \"hint\": \
            \"%s\" }"
           (escape_json f.file) f.line f.col (Rules.to_string f.rule)
           (Rules.severity_to_string (Rules.severity f.rule))
           (escape_json f.message)
           (escape_json (Rules.hint f.rule))))
    t.findings;
  if t.findings <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let render format t =
  match format with
  | Text -> render_text t
  | Csv -> render_csv t
  | Json -> render_json t
