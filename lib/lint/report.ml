type format = Text | Csv | Json

let format_of_string = function
  | "text" -> Some Text
  | "csv" -> Some Csv
  | "json" -> Some Json
  | _ -> None

type status = Fresh | Grandfathered

let status_to_string = function
  | Fresh -> "fresh"
  | Grandfathered -> "grandfathered"

type pass_stat = {
  pass : string;
  pass_rules : Rules.id list;
  duration_ms : float;  (* diagnostic; excluded from byte-compared goldens *)
  pass_findings : int;  (* post-suppression findings from this pass *)
}

type t = {
  root : string;
  files_scanned : int;
  suppressed : int;
  passes : pass_stat list;
  findings : (Engine.finding * status) list;
      (* sorted by (file, line, col, rule) *)
  stale : Baseline.entry list;
}

let fresh t = List.filter_map (function f, Fresh -> Some f | _ -> None) t.findings

let grandfathered t =
  List.filter_map (function f, Grandfathered -> Some f | _ -> None) t.findings

(* Exit is clean when nothing is fresh and the baseline has no residue;
   grandfathered findings warn without failing. *)
let clean t = fresh t = [] && t.stale = []

let of_findings ?(passes = []) ~root ~files_scanned ~suppressed findings =
  {
    root;
    files_scanned;
    suppressed;
    passes;
    findings = List.map (fun f -> (f, Fresh)) findings;
    stale = [];
  }

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let finding_tag (f : Engine.finding) = function
  | Fresh -> Rules.severity_to_string (Rules.severity f.rule)
  | Grandfathered -> "grandfathered"

let render_text t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ((f : Engine.finding), status) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: %s[%s] %s\n  hint: %s\n" f.file f.line
           f.col (finding_tag f status) (Rules.to_string f.rule) f.message
           (Rules.hint f.rule)))
    t.findings;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s: stale[%s] baseline grandfathers %d finding%s the tree no \
            longer produces\n\
           \  hint: commit the shrunken baseline (--update-baseline)\n"
           e.Baseline.file
           (Rules.to_string e.Baseline.rule)
           e.Baseline.count
           (if e.Baseline.count = 1 then "" else "s")))
    t.stale;
  let nfresh = List.length (fresh t) in
  let ngrand = List.length (grandfathered t) in
  Buffer.add_string buf
    (Printf.sprintf
       "armvirt-lint: %d files scanned, %d finding%s (%d grandfathered, %d \
        suppressed, %d stale)\n"
       t.files_scanned nfresh
       (if nfresh = 1 then "" else "s")
       ngrand t.suppressed (List.length t.stale));
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  pass %-12s %3d finding%s in %.1f ms\n" p.pass
           p.pass_findings
           (if p.pass_findings = 1 then " " else "s")
           p.duration_ms))
    t.passes;
  Buffer.contents buf

let render_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "file,line,col,rule,severity,status,message\n";
  List.iter
    (fun ((f : Engine.finding), status) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%s,%s,%s\n" (escape_csv f.file) f.line
           f.col (Rules.to_string f.rule)
           (Rules.severity_to_string (Rules.severity f.rule))
           (status_to_string status)
           (escape_csv f.message)))
    t.findings;
  Buffer.contents buf

(* Schema v2 (stable; consumed by CI artifacts and external tooling):
   { "version": 2, "root": str, "files_scanned": int, "suppressed": int,
     "passes": [ { "name": str, "rules": ["R1", ...], "duration_ms": float,
                   "findings": int } ],
     "baseline": { "fresh": int, "grandfathered": int, "stale": int },
     "findings": [ { "file": str, "line": int, "col": int,
                     "rule": "R1".."D1", "pass": str,
                     "severity": "error"|"warning",
                     "status": "fresh"|"grandfathered",
                     "message": str, "hint": str } ] }
   Findings are sorted by (file, line, col, rule); key order is fixed.
   "duration_ms" is the one diagnostic field: everything else is a pure
   function of the tree. v1 (no "passes"/"baseline"/"status") retired
   with the single-pass engine. *)
let render_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"version\": 2,\n  \"root\": \"%s\",\n  \"files_scanned\": %d,\n\
       \  \"suppressed\": %d,\n  \"passes\": [" (escape_json t.root)
       t.files_scanned t.suppressed);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"rules\": [%s], \"duration_ms\": \
            %.3f, \"findings\": %d }"
           (escape_json p.pass)
           (String.concat ", "
              (List.map
                 (fun r -> Printf.sprintf "\"%s\"" (Rules.to_string r))
                 p.pass_rules))
           p.duration_ms p.pass_findings))
    t.passes;
  if t.passes <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf
    (Printf.sprintf
       "],\n  \"baseline\": { \"fresh\": %d, \"grandfathered\": %d, \
        \"stale\": %d },\n  \"findings\": ["
       (List.length (fresh t))
       (List.length (grandfathered t))
       (List.length t.stale));
  List.iteri
    (fun i ((f : Engine.finding), status) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
            \"%s\", \"pass\": \"%s\", \"severity\": \"%s\", \"status\": \
            \"%s\", \"message\": \"%s\", \"hint\": \"%s\" }"
           (escape_json f.file) f.line f.col (Rules.to_string f.rule)
           (Engine.pass_of_rule f.rule)
           (Rules.severity_to_string (Rules.severity f.rule))
           (status_to_string status)
           (escape_json f.message)
           (escape_json (Rules.hint f.rule))))
    t.findings;
  if t.findings <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let render format t =
  match format with
  | Text -> render_text t
  | Csv -> render_csv t
  | Json -> render_json t
