open Cmdliner

let format_arg =
  let fmt_conv =
    Arg.enum
      [ ("text", Report.Text); ("csv", Report.Csv); ("json", Report.Json) ]
  in
  Arg.(
    value & opt fmt_conv Report.Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text), $(b,csv) or $(b,json).")

let root_arg =
  Arg.(
    value & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repo root to lint. Default: walk up from the current directory \
           (escaping dune's _build) to the nearest dune-project.")

let rules_arg =
  Arg.(
    value & opt_all string []
    & info [ "rules" ] ~docv:"IDS"
        ~doc:"Only run these rules (comma-separable, repeatable), e.g. R1,R4.")

let skip_rules_arg =
  Arg.(
    value & opt_all string []
    & info [ "skip-rules" ] ~docv:"IDS"
        ~doc:"Run all rules except these (comma-separable, repeatable).")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the report to $(docv); $(b,-) (default) is stdout.")

let run format only skip root out =
  Driver.run ~format ~only ~skip ?root ?out ()

let term =
  Term.(
    const run $ format_arg $ rules_arg $ skip_rules_arg $ root_arg $ out_arg)

let doc =
  "statically check the simulator's determinism invariants (rules R1-R7)"

let man =
  [
    `S Manpage.s_description;
    `P
      "Parses every .ml/.mli under lib/, bin/ and bench/ with compiler-libs \
       and reports violations of the reproducibility invariants: seeded \
       randomness only (R1), no wall-clock in lib/ (R2), no unsorted \
       Hashtbl iteration escaping to reports (R3), parallelism only behind \
       Runner.map (R4), explicit comparators in engine/stats (R5), mutable \
       top-level state only in the designated registries (R6), and no \
       direct stdout printing in lib/ (R7).";
    `P
      "Exits 0 when clean, 1 on any unsuppressed finding, 2 on usage \
       errors. Audited sites are marked in-source with (* lint: sorted *), \
       (* lint: allow R6 reason *) or file-wide (* lint: disable R2 *).";
  ]

let cmd = Cmd.v (Cmd.info "armvirt-lint" ~version:"1.0.0" ~doc ~man) term

let main () = exit (Cmd.eval' cmd)
