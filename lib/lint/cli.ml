open Cmdliner

let format_arg =
  let fmt_conv =
    Arg.enum
      [ ("text", Report.Text); ("csv", Report.Csv); ("json", Report.Json) ]
  in
  Arg.(
    value & opt fmt_conv Report.Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text), $(b,csv) or $(b,json).")

let root_arg =
  Arg.(
    value & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repo root to lint. Default: walk up from the current directory \
           (escaping dune's _build) to the nearest dune-project.")

let rules_arg =
  Arg.(
    value & opt_all string []
    & info [ "rules" ] ~docv:"IDS"
        ~doc:"Only run these rules (comma-separable, repeatable), e.g. R1,U1.")

let skip_rules_arg =
  Arg.(
    value & opt_all string []
    & info [ "skip-rules" ] ~docv:"IDS"
        ~doc:"Run all rules except these (comma-separable, repeatable).")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the report to $(docv); $(b,-) (default) is stdout.")

let baseline_arg =
  Arg.(
    value & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Ratchet file (LINT_baseline.json). Findings within its (file, \
           rule) counts are grandfathered warnings; anything beyond is \
           fresh and fails, as does a count the tree no longer produces \
           (stale). Resolved against the cwd, then the repo root.")

let update_baseline_arg =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Rewrite $(b,--baseline) from the current findings instead of \
           reporting. The ratchet only turns one way: review the diff — \
           it should only shrink.")

let explain_arg =
  Arg.(
    value & opt (some string) None
    & info [ "explain" ] ~docv:"RULE"
        ~doc:"Print the long-form rationale for a rule id and exit.")

let run format only skip root out baseline update_baseline explain =
  match explain with
  | Some rule -> Driver.explain rule
  | None ->
      Driver.run ~format ~only ~skip ?root ?out ?baseline ~update_baseline ()

let term =
  Term.(
    const run $ format_arg $ rules_arg $ skip_rules_arg $ root_arg $ out_arg
    $ baseline_arg $ update_baseline_arg $ explain_arg)

let doc =
  "statically check the simulator's determinism, unit, marker and capture \
   invariants"

let man =
  [
    `S Manpage.s_description;
    `P
      "Parses every .ml/.mli under lib/, bin/ and bench/ with compiler-libs \
       and runs four analysis passes: $(b,determinism) — seeded randomness \
       only (R1), no wall-clock in lib/ (R2), no unsorted Hashtbl iteration \
       escaping to reports (R3), parallelism only behind Runner.map (R4), \
       explicit comparators in engine/stats (R5), mutable top-level state \
       only in the designated registries (R6), no direct stdout printing in \
       lib/ (R7); $(b,units) — no arithmetic or comparison across \
       incompatible inferred units of measure (U1) and no unit-less \
       literals entering unit-typed positions outside named converters \
       (U2); $(b,markers) — every literal observability marker label must \
       parse under the exit/op/vswitch grammars with a known exit reason \
       (M1); $(b,capture) — closures crossing Runner.map must not capture \
       mutable toplevel state outside the R6 registries (D1). Use \
       $(b,--explain RULE) for the full rationale of any rule.";
    `P
      "Exits 0 when clean (grandfathered findings under $(b,--baseline) \
       only warn), 1 on any fresh finding or stale baseline residue, 2 on \
       usage errors. Audited sites are marked in-source with (* lint: \
       sorted *), (* lint: unit us reason *), (* lint: allow R6 reason *) \
       or file-wide (* lint: disable R2 *).";
  ]

let cmd = Cmd.v (Cmd.info "armvirt-lint" ~version:"2.0.0" ~doc ~man) term

let main () = exit (Cmd.eval' cmd)
