type id = R1 | R2 | R3 | R4 | R5 | R6 | R7

type severity = Error | Warning

let all = [ R1; R2; R3; R4; R5; R6; R7 ]

let to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | _ -> None

let severity = function
  | R1 | R2 | R3 | R4 -> Error
  | R5 | R6 | R7 -> Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

let summary = function
  | R1 -> "stdlib Random outside Engine.Rng"
  | R2 -> "wall-clock or process entropy in lib/"
  | R3 -> "Hashtbl iteration order may escape unsorted"
  | R4 -> "Domain spawn/join outside the deterministic runner"
  | R5 -> "polymorphic compare on float-bearing or functional values"
  | R6 -> "mutable top-level state outside the designated registries"
  | R7 -> "direct stdout printing in lib/"

let hint = function
  | R1 -> "draw through a seeded Engine.Rng stream (Rng.split per consumer)"
  | R2 ->
      "simulated time comes from Engine.Cycles/Sim.now; host wall-clock \
       belongs in bench/ only"
  | R3 ->
      "pipe the fold into List.sort with an explicit comparator, or mark an \
       audited order-insensitive site with (* lint: sorted *)"
  | R4 -> "route parallelism through Runner.map's deterministic input-order merge"
  | R5 -> "use Float.compare/Float.equal or a named per-type comparator"
  | R6 ->
      "thread state through a record, or register it in lib/obs/metrics.ml; \
       audited globals take (* lint: allow R6 <reason> *)"
  | R7 -> "emit through Report/Export/Format.fprintf on a caller-supplied formatter"

(* --- per-rule path scoping ------------------------------------------ *)
(* Relative paths use '/' separators and are rooted at the repo root. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* R1: the one module allowed to touch stdlib Random (it seeds splitmix64
   from an explicit integer; everything else must go through Engine.Rng). *)
let rng_module = "lib/engine/rng.ml"

(* R4: the one module allowed to spawn/join domains. *)
let runner_module = "lib/core/runner.ml"

(* R6: designated mutable registries. Metrics is the metric/label registry;
   Observe is the process-wide tracing session (its globals are documented
   and mutex-protected). *)
let registry_modules = [ "lib/obs/metrics.ml"; "lib/core/observe.ml" ]

let applies ~relpath id =
  match id with
  | R1 -> relpath <> rng_module
  | R2 -> starts_with "lib/" relpath
  | R3 -> starts_with "lib/" relpath || starts_with "bench/" relpath
  | R4 -> relpath <> runner_module
  | R5 ->
      starts_with "lib/engine/" relpath || starts_with "lib/stats/" relpath
  | R6 ->
      starts_with "lib/" relpath && not (List.mem relpath registry_modules)
  | R7 -> starts_with "lib/" relpath
