type id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | U1 | U2 | M1 | D1

type severity = Error | Warning

let all = [ R1; R2; R3; R4; R5; R6; R7; U1; U2; M1; D1 ]

let to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | U1 -> "U1"
  | U2 -> "U2"
  | M1 -> "M1"
  | D1 -> "D1"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "U1" -> Some U1
  | "U2" -> Some U2
  | "M1" -> Some M1
  | "D1" -> Some D1
  | _ -> None

let severity = function
  | R1 | R2 | R3 | R4 | U1 | M1 | D1 -> Error
  | R5 | R6 | R7 | U2 -> Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

let summary = function
  | R1 -> "stdlib Random outside Engine.Rng"
  | R2 -> "wall-clock or process entropy in lib/"
  | R3 -> "Hashtbl iteration order may escape unsorted"
  | R4 -> "Domain spawn/join outside the deterministic runner"
  | R5 -> "polymorphic compare on float-bearing or functional values"
  | R6 -> "mutable top-level state outside the designated registries"
  | R7 -> "direct stdout printing in lib/"
  | U1 -> "arithmetic/comparison/binding between incompatible units of measure"
  | U2 -> "unit-less literal combined with a unit-carrying value"
  | M1 -> "stat-marker label violates the exit/entry/op grammar"
  | D1 -> "closure reaching Runner.map captures mutable toplevel state"

let hint = function
  | R1 -> "draw through a seeded Engine.Rng stream (Rng.split per consumer)"
  | R2 ->
      "simulated time comes from Engine.Cycles/Sim.now; host wall-clock \
       belongs in bench/ only"
  | R3 ->
      "pipe the fold into List.sort with an explicit comparator, or mark an \
       audited order-insensitive site with (* lint: sorted *)"
  | R4 -> "route parallelism through Runner.map's deterministic input-order merge"
  | R5 -> "use Float.compare/Float.equal or a named per-type comparator"
  | R6 ->
      "thread state through a record, or register it in lib/obs/metrics.ml; \
       audited globals take (* lint: allow R6 <reason> *)"
  | R7 -> "emit through Report/Export/Format.fprintf on a caller-supplied formatter"
  | U1 ->
      "convert through a named converter (Cycles.of_us, cycles_per_byte_of_gbps, \
       ...) so the dimension change is visible at the site"
  | U2 ->
      "name the constant with a unit suffix, or audit the site with \
       (* lint: unit <u> *)"
  | M1 ->
      "build the label with Obs.Marker (typed constructors; one formatter, \
       the same code Accounting parses)"
  | D1 ->
      "pass state into the cell function and return it; cells must be pure \
       functions of their input for memoization and --jobs invariance"

let explain = function
  | R1 ->
      "R1 forbids stdlib Random everywhere except lib/engine/rng.ml. The \
       engine owns the single seeded stream (Engine.Rng); a stray \
       Random.float draws from the global generator, whose state depends on \
       whatever ran before, so results would vary across runs and cell \
       orderings. Suppress an audited site with (* lint: allow R1 <reason> *)."
  | R2 ->
      "R2 forbids wall-clock and process-entropy calls (Unix.gettimeofday, \
       Unix.time, Sys.time, Random.self_init) in lib/. Simulated time is the \
       engine clock; host time in a result path couples output to host \
       speed. Host-side telemetry that never enters a byte-compared export \
       may carry (* lint: allow R2 <reason> *)."
  | R3 ->
      "R3 flags Hashtbl.iter/fold whose enclosing definition does not also \
       sort: OCaml hash order depends on insertion history, so unsorted \
       traversals leak nondeterminism into exports. Audited commutative \
       folds take (* lint: sorted <why> *)."
  | R4 ->
      "R4 pins Domain.spawn/join to lib/core/runner.ml. The jobs-invariance \
       proof (input-order merge, domain-local tracers) is an argument about \
       one fork/join site; a second spawn site anywhere else voids it."
  | R5 ->
      "R5 forbids polymorphic compare/(=) on float-bearing or functional \
       values in lib/engine and lib/stats: Stdlib.compare disagrees with \
       IEEE on NaN and raises on closures. Use Float.compare/Int.compare or \
       a named per-type comparator."
  | R6 ->
      "R6 forbids mutable toplevel state (ref, Hashtbl.create) outside the \
       designated registries (lib/obs/metrics.ml, lib/core/observe.ml): \
       cells must be pure functions of their plan, which is what memoization \
       and parallel execution assume. Audited single-slot hooks take \
       (* lint: allow R6 <reason> *)."
  | R7 ->
      "R7 forbids printing to stdout from lib/: libraries return data, \
       drivers print. Interleaved prints from parallel cells are \
       nondeterministic and corrupt piped output."
  | U1 ->
      "U1 infers units of measure from identifier and record-field suffixes \
       (_cycles, _ns, _us, _ms, _bytes, _kb, _mb, _gbps, _pct, _hz, _ghz, \
       _pages, ...) and from the named converters (Cycles.of_us, \
       Cycles.to_us, <u>_of_<v> functions), then flags +, -, comparisons, \
       let-bindings, record fields and labelled arguments that mix two \
       different units, e.g. link_gbps + cost_cycles or ~bytes:len_kb. The \
       fix is a named converter at the site; a deliberate reinterpretation \
       takes (* lint: unit <u> <reason> *). Rates (*_per_*) and products/\
       quotients are not tracked: only additive composition is dimensionful."
  | U2 ->
      "U2 flags a unit-less nonzero literal combined arithmetically (or \
       compared) with a unit-carrying value, e.g. warmup_us +. 100.0: the \
       magic number silently asserts a unit. 0 and 1 are exempt (zero is \
       unit-polymorphic; +/- 1 is the counting idiom). Literals bound \
       directly at a unit-suffixed declaration (let timeout_us = 300.0, \
       { downtime_us = 300.0; ... }) are the sanctioned entry points and do \
       not flag. Audit with (* lint: unit <u> <reason> *)."
  | M1 ->
      "M1 parses every string literal reaching Machine.count (and literal \
       ~reason:/~hyp: arguments of the marker builders) under the stat \
       grammar: '<hyp>.exit/<reason>/p<pcpu>[/d<domid>]', \
       '<hyp>.entry/p<pcpu>[/d<domid>]', operation counters '<hyp>.<op>', \
       switch counters 'vswitch.<name>/p<port>/(rx|tx|drop)' and \
       'vswitch.<name>/flood', and uplink counters \
       'wire.<name>-u<id>/(rx|tx)'. <reason> is cross-checked against \
       Esr.short_name, and the literal is re-parsed with the exact \
       Accounting.parse_label the stat subcommand uses — a typo would \
       silently drop rows from `armvirt stat`. Non-literal labels must come \
       from the Obs.Marker builders."
  | D1 ->
      "D1 closes the escape hole R4 leaves open: R4 confines Domain.spawn \
       to Runner, but a closure passed to Runner.map may still capture \
       mutable toplevel state defined in the same module and mutate it from \
       worker domains — racy, and invisible to R6's audited-global \
       allowlist. Any identifier inside an argument of Runner.map that \
       resolves to a toplevel ref/Hashtbl/Atomic of the same file is \
       flagged; the designated registries (which Runner merges \
       deterministically) are exempt."

(* --- per-rule path scoping ------------------------------------------ *)
(* Relative paths use '/' separators and are rooted at the repo root. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* R1: the one module allowed to touch stdlib Random (it seeds splitmix64
   from an explicit integer; everything else must go through Engine.Rng). *)
let rng_module = "lib/engine/rng.ml"

(* R4: the one module allowed to spawn/join domains. *)
let runner_module = "lib/core/runner.ml"

(* R6: designated mutable registries. Metrics is the metric/label registry;
   Observe is the process-wide tracing session (its globals are documented
   and mutex-protected). D1 exempts the same set: Runner itself merges
   their contents deterministically. *)
let registry_modules = [ "lib/obs/metrics.ml"; "lib/core/observe.ml" ]

let applies ~relpath id =
  match id with
  | R1 -> relpath <> rng_module
  | R2 -> starts_with "lib/" relpath
  | R3 -> starts_with "lib/" relpath || starts_with "bench/" relpath
  | R4 -> relpath <> runner_module
  | R5 ->
      starts_with "lib/engine/" relpath || starts_with "lib/stats/" relpath
  | R6 ->
      starts_with "lib/" relpath && not (List.mem relpath registry_modules)
  | U1 | U2 | M1 -> starts_with "lib/" relpath
  | D1 ->
      starts_with "lib/" relpath
      && relpath <> runner_module
      && not (List.mem relpath registry_modules)
  | R7 -> starts_with "lib/" relpath
