(** The static-analysis pass over one compilation unit. *)

type finding = {
  rule : Rules.id;
  file : string;  (** repo-relative path, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

type result = {
  findings : finding list;  (** unsuppressed, sorted by (line, col, rule) *)
  suppressed : int;  (** candidate findings silenced by directives *)
}

exception Parse_error of string

val compare_finding : finding -> finding -> int

val lint_source : ?rules:Rules.id list -> relpath:string -> string -> result
(** Parse [source] (an [.ml] or [.mli], chosen by the extension of
    [relpath]) and run every rule in [rules] (default: all) that
    {!Rules.applies} to [relpath]. Raises {!Parse_error} on syntax
    errors. *)
