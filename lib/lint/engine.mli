(** The multi-pass static-analysis engine over one compilation unit.

    Passes are registered in {!passes}; each declares the rule ids it
    can emit (see {!Pass.t}) and is skipped when none of them apply to
    the file being linted, so path scoping also scopes cost. *)

type finding = Pass.finding = {
  rule : Rules.id;
  file : string;  (** repo-relative path, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

type result = {
  findings : finding list;  (** unsuppressed, sorted by (line, col, rule) *)
  suppressed : int;  (** candidate findings silenced by directives *)
  timings : (string * float) list;
      (** [(pass name, seconds)] for each pass that ran on this file, in
          registration order. Diagnostic only — never byte-compared. *)
}

exception Parse_error of string

val compare_finding : finding -> finding -> int

val passes : Pass.t list
(** The registered passes, in report order: ["determinism"] (R1-R7),
    ["units"] (U1/U2), ["markers"] (M1), ["capture"] (D1). *)

val pass_of_rule : Rules.id -> string
(** Name of the pass that implements a rule. *)

val lint_source :
  ?rules:Rules.id list ->
  ?clock:(unit -> float) ->
  relpath:string ->
  string ->
  result
(** Parse [source] (an [.ml] or [.mli], chosen by the extension of
    [relpath]) and run every registered pass with at least one rule in
    [rules] (default: all) that {!Rules.applies} to [relpath]. [clock]
    (default: host CPU time) feeds the per-pass timings. Raises
    {!Parse_error} on syntax errors. *)
