(** Cmdliner plumbing shared by the standalone [armvirt-lint] executable
    and the [armvirt lint] subcommand. *)

val term : int Cmdliner.Term.t
(** Evaluates to the process exit code (see {!Driver.run}). *)

val doc : string

val man : Cmdliner.Manpage.block list

val cmd : int Cmdliner.Cmd.t

val main : unit -> unit
(** [Cmd.eval'] + [exit]; the body of [bin/armvirt_lint.ml]. *)
