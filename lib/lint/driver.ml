(* File discovery and orchestration for a whole-repo lint run. Everything
   here is deterministic: directory listings are sorted, findings are
   sorted, per-pass timings accumulate in registration order, and output
   is rendered by Report. *)

let scanned_dirs = [ "lib"; "bin"; "bench" ]

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let skip_dir name = String.length name > 0 && (name.[0] = '_' || name.[0] = '.')

(* Repo-relative paths always use '/', so reports and suppressions are
   host-independent. *)
let rec walk dir rel acc =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      let rel' = if rel = "" then name else rel ^ "/" ^ name in
      if Sys.is_directory path then
        if skip_dir name then acc else walk path rel' acc
      else if is_source name then rel' :: acc
      else acc)
    acc entries

let scan_files ~root =
  List.fold_left
    (fun acc d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then walk dir d acc
      else acc)
    [] scanned_dirs
  |> List.sort String.compare

(* Locate the repo root from an arbitrary cwd. Inside dune's _build the
   mirrored tree also carries dune-project, so strip everything from the
   first _build component first, then walk up to the nearest dune-project. *)
let find_root () =
  let cwd = Sys.getcwd () in
  let parts = String.split_on_char '/' cwd in
  let rec take = function
    | [] -> []
    | "_build" :: _ -> []
    | p :: rest -> p :: take rest
  in
  let stripped = String.concat "/" (take parts) in
  let start = if stripped = "" then cwd else stripped in
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  match up start with Some d -> d | None -> start

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sort_by_file findings =
  List.sort
    (fun (a : Engine.finding) b ->
      match String.compare a.Engine.file b.Engine.file with
      | 0 -> Engine.compare_finding a b
      | c -> c)
    findings

(* Per-pass wall time and post-suppression finding counts, accumulated
   across every file in registration order. Every registered pass gets a
   row even when path scoping skipped it everywhere — the report shape
   stays stable as the tree changes. *)
let pass_stats ~timings findings =
  List.map
    (fun (p : Pass.t) ->
      let seconds =
        List.fold_left
          (fun acc (name, dt) -> if name = p.Pass.name then acc +. dt else acc)
          0. timings
      in
      {
        Report.pass = p.Pass.name;
        pass_rules = p.Pass.rules;
        duration_ms = seconds *. 1000.;
        pass_findings =
          List.length
            (List.filter
               (fun (f : Engine.finding) -> List.mem f.Engine.rule p.Pass.rules)
               findings);
      })
    Engine.passes

let sort_by_file_tagged tagged =
  List.sort
    (fun ((a : Engine.finding), _) (b, _) ->
      match String.compare a.Engine.file b.Engine.file with
      | 0 -> Engine.compare_finding a b
      | c -> c)
    tagged

let lint_tree ?(rules = Rules.all) ?(baseline = Baseline.empty) ~root () =
  let files = scan_files ~root in
  let findings, suppressed, timings =
    List.fold_left
      (fun (fs, sup, ts) relpath ->
        let source = read_file (Filename.concat root relpath) in
        match Engine.lint_source ~rules ~relpath source with
        | r -> (r.Engine.findings :: fs, sup + r.Engine.suppressed,
                List.rev_append r.Engine.timings ts)
        | exception Engine.Parse_error msg ->
            prerr_endline ("armvirt-lint: skipping unparseable " ^ msg);
            (fs, sup, ts))
      ([], 0, []) files
  in
  let findings = sort_by_file (List.concat findings) in
  let verdict = Baseline.check baseline findings in
  {
    Report.root;
    files_scanned = List.length files;
    suppressed;
    passes = pass_stats ~timings findings;
    findings =
      sort_by_file_tagged
        (List.map (fun f -> (f, Report.Fresh)) verdict.Baseline.fresh
        @ List.map
            (fun f -> (f, Report.Grandfathered))
            verdict.Baseline.grandfathered);
    stale = verdict.Baseline.stale;
  }

let parse_rule_args specs =
  List.concat_map (String.split_on_char ',') specs
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun s ->
         match Rules.of_string s with
         | Some r -> r
         | None -> invalid_arg (Printf.sprintf "unknown rule %S" s))

let select_rules ~only ~skip =
  let only = parse_rule_args only and skip = parse_rule_args skip in
  let base = if only = [] then Rules.all else only in
  List.filter (fun r -> not (List.mem r skip)) base

(* --- --explain --------------------------------------------------------- *)

let explain rule_spec =
  match Rules.of_string rule_spec with
  | None ->
      prerr_endline
        (Printf.sprintf
           "armvirt-lint: unknown rule %S (known: %s)" rule_spec
           (String.concat " " (List.map Rules.to_string Rules.all)));
      2
  | Some rule ->
      output_string stdout
        (Printf.sprintf "%s — %s\nseverity: %s  pass: %s\n\n%s\n\nhint: %s\n"
           (Rules.to_string rule) (Rules.summary rule)
           (Rules.severity_to_string (Rules.severity rule))
           (Engine.pass_of_rule rule) (Rules.explain rule) (Rules.hint rule));
      flush stdout;
      0

(* --- baseline resolution ----------------------------------------------- *)

(* The path is tried as given (relative to cwd) and, failing that,
   relative to the repo root — dune rules run from _build, users run
   from wherever. *)
let resolve_baseline_path ~root path =
  if Sys.file_exists path then path else Filename.concat root path

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Returns the process exit code: 0 clean (grandfathered findings allowed),
   1 fresh findings or stale baseline residue, 2 usage error. *)
let run ?(format = Report.Text) ?(only = []) ?(skip = []) ?root ?out ?baseline
    ?(update_baseline = false) () =
  match select_rules ~only ~skip with
  | exception Invalid_argument msg ->
      prerr_endline ("armvirt-lint: " ^ msg);
      2
  | rules -> (
      let root = match root with Some r -> r | None -> find_root () in
      let baseline_path =
        Option.map (resolve_baseline_path ~root) baseline
      in
      if update_baseline && baseline_path = None then begin
        prerr_endline "armvirt-lint: --update-baseline requires --baseline";
        2
      end
      else
        let known =
          match baseline_path with
          | None -> Ok Baseline.empty
          | Some path when update_baseline && not (Sys.file_exists path) ->
              (* First ratchet write: an absent file is an empty baseline. *)
              Ok Baseline.empty
          | Some path -> Baseline.load path
        in
        match known with
        | Error msg ->
            prerr_endline
              (Printf.sprintf "armvirt-lint: bad baseline %s: %s"
                 (Option.value baseline_path ~default:"?")
                 msg);
            2
        | Ok known ->
            let report = lint_tree ~rules ~baseline:known ~root () in
            if update_baseline then begin
              let path = Option.get baseline_path in
              let all = List.map fst report.Report.findings in
              write_file path (Baseline.render (Baseline.of_findings all));
              output_string stdout
                (Printf.sprintf
                   "armvirt-lint: wrote %s (%d findings grandfathered)\n" path
                   (List.length all));
              flush stdout;
              0
            end
            else begin
              let rendered = Report.render format report in
              (match out with
              | None | Some "-" ->
                  output_string stdout rendered;
                  flush stdout
              | Some path -> write_file path rendered);
              if Report.clean report then 0 else 1
            end)
