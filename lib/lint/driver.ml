(* File discovery and orchestration for a whole-repo lint run. Everything
   here is deterministic: directory listings are sorted, findings are
   sorted, and output is rendered by Report. *)

let scanned_dirs = [ "lib"; "bin"; "bench" ]

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let skip_dir name = String.length name > 0 && (name.[0] = '_' || name.[0] = '.')

(* Repo-relative paths always use '/', so reports and suppressions are
   host-independent. *)
let rec walk dir rel acc =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      let rel' = if rel = "" then name else rel ^ "/" ^ name in
      if Sys.is_directory path then
        if skip_dir name then acc else walk path rel' acc
      else if is_source name then rel' :: acc
      else acc)
    acc entries

let scan_files ~root =
  List.fold_left
    (fun acc d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then walk dir d acc
      else acc)
    [] scanned_dirs
  |> List.sort String.compare

(* Locate the repo root from an arbitrary cwd. Inside dune's _build the
   mirrored tree also carries dune-project, so strip everything from the
   first _build component first, then walk up to the nearest dune-project. *)
let find_root () =
  let cwd = Sys.getcwd () in
  let parts = String.split_on_char '/' cwd in
  let rec take = function
    | [] -> []
    | "_build" :: _ -> []
    | p :: rest -> p :: take rest
  in
  let stripped = String.concat "/" (take parts) in
  let start = if stripped = "" then cwd else stripped in
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  match up start with Some d -> d | None -> start

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_tree ?(rules = Rules.all) ~root () =
  let files = scan_files ~root in
  let findings, suppressed =
    List.fold_left
      (fun (fs, sup) relpath ->
        let source = read_file (Filename.concat root relpath) in
        match Engine.lint_source ~rules ~relpath source with
        | r -> (r.Engine.findings :: fs, sup + r.Engine.suppressed)
        | exception Engine.Parse_error msg ->
            prerr_endline ("armvirt-lint: skipping unparseable " ^ msg);
            (fs, sup))
      ([], 0) files
  in
  {
    Report.root;
    files_scanned = List.length files;
    findings = List.concat (List.rev findings);
    suppressed;
  }

let parse_rule_args specs =
  List.concat_map (String.split_on_char ',') specs
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun s ->
         match Rules.of_string s with
         | Some r -> r
         | None -> invalid_arg (Printf.sprintf "unknown rule %S" s))

let select_rules ~only ~skip =
  let only = parse_rule_args only and skip = parse_rule_args skip in
  let base = if only = [] then Rules.all else only in
  List.filter (fun r -> not (List.mem r skip)) base

(* Returns the process exit code: 0 clean, 1 findings, 2 usage error. *)
let run ?(format = Report.Text) ?(only = []) ?(skip = []) ?root ?out () =
  match select_rules ~only ~skip with
  | exception Invalid_argument msg ->
      prerr_endline ("armvirt-lint: " ^ msg);
      2
  | rules ->
      let root = match root with Some r -> r | None -> find_root () in
      let report = lint_tree ~rules ~root () in
      let rendered = Report.render format report in
      (match out with
      | None | Some "-" ->
          output_string stdout rendered;
          flush stdout
      | Some path ->
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc rendered))
      ;
      if report.Report.findings = [] then 0 else 1
