(** The umbrella module: every library of the reproduction under one
    roof, for interactive use and downstream consumers who prefer a
    single entry point.

    {[
      # let kvm = Armvirt.Core.Platform.hypervisor Arm_m400 Kvm;;
      # Armvirt.Workloads.Microbench.(to_rows (run kvm));;
    ]}

    Layering (lowest first): {!Engine} → {!Stats} → {!Arch} → {!Mem},
    {!Gic}, {!Timer}, {!Net} → {!Io}, {!Guest} → {!Hypervisor} →
    {!Workloads}, {!System} → {!Core}. See DESIGN.md for the full
    inventory and EXPERIMENTS.md for paper-vs-measured results. *)

module Engine = Armvirt_engine
(** Deterministic discrete-event simulation: {!Armvirt_engine.Sim},
    {!Armvirt_engine.Cycles}, {!Armvirt_engine.Rng}. *)

module Obs = Armvirt_obs
(** Structured observability: span tracing, Chrome/Perfetto export,
    labelled metric registries. *)

module Stats = Armvirt_stats
(** Summaries, histograms, counters, barriered cycle counters, traces. *)

module Arch = Armvirt_arch
(** Cost models and architectural operations: ARM EL2/VHE, x86 VMX,
    world state machines, system-register redirection. *)

module Mem = Armvirt_mem
(** Stage-2 translation, TLBs, Xen grant tables. *)

module Gic = Armvirt_gic
(** GIC distributor, hardware vGIC list registers, x86 APIC. *)

module Timer = Armvirt_timer
(** The ARM generic virtual timer. *)

module Net = Armvirt_net
(** Packets with tcpdump-style stamps, 10 GbE links, NICs. *)

module Io = Armvirt_io
(** Virtqueues, event channels, PV rings, block devices. *)

module Guest = Armvirt_guest
(** The Linux guest/host path-length model. *)

module Hypervisor = Armvirt_hypervisor
(** KVM ARM (split-mode and VHE), Xen ARM, KVM x86, Xen x86, native;
    the credit scheduler; the uniform hypervisor interface. *)

module Workloads = Armvirt_workloads
(** Table I microbenchmarks, Table IV application profiles, Netperf,
    and the extension experiments. *)

module System = Armvirt_system
(** Structural end-to-end stacks assembled from the concrete pieces. *)

module Core = Armvirt_core
(** Platforms, the paper's published data, the experiment registry and
    the paper-vs-measured reports. *)

module Explore = Armvirt_explore
(** Design-space exploration: parameter spaces over cost-model and
    tuning knobs, deterministic samplers, Pareto/sensitivity analysis
    and calibration search against the paper's targets. *)
