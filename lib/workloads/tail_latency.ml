module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Rng = Armvirt_engine.Rng
module Summary = Armvirt_stats.Summary
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Kernel_costs = Armvirt_guest.Kernel_costs

type result = {
  config : string;
  offered_load : float;
  completed : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  utilization : float;
  latency_histogram : Armvirt_stats.Histogram.t;
}

(* Server-side cost of one request on the bottleneck VCPU. *)
let service_cycles (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  Kernel_costs.rr_server_cycles hyp.Hypervisor.guest
  + p.Io_profile.irq_delivery_guest_cpu + p.Io_profile.virq_completion
  + p.Io_profile.guest_rx_per_packet + p.Io_profile.guest_tx_per_packet
  + p.Io_profile.kick_guest_cpu

(* Fixed delivery latency outside the VCPU (into and out of the VM). *)
let fixed_latency (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  p.Io_profile.phys_rx_extra_latency + p.Io_profile.irq_delivery_latency
  + p.Io_profile.notify_latency

let run ?(seed = 42) ?(requests = 2000) (hyp : Hypervisor.t) ~load =
  if load <= 0.0 || load >= 1.0 then
    invalid_arg "Tail_latency.run: load must be in (0, 1)";
  if requests < 1 then invalid_arg "Tail_latency.run: requests < 1";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let rng = Rng.create ~seed in
  let native_service =
    Kernel_costs.rr_server_cycles hyp.Hypervisor.guest
  in
  let service = service_cycles hyp in
  let fixed = fixed_latency hyp in
  (* Arrival rate: [load] of *native* capacity. *)
  let mean_interarrival = float_of_int native_service /. load in
  let server = Sim.Resource.create ~name:"server" sim ~capacity:1 in
  let latencies = ref [] in
  let busy = ref 0 in
  let last_arrival_done = ref Cycles.zero in
  Sim.spawn sim ~name:"arrival-generator" (fun () ->
      for i = 1 to requests do
        let gap =
          Cycles.of_int
            (int_of_float (Rng.exponential rng ~mean:mean_interarrival))
        in
        Sim.delay gap;
        Sim.spawn_here ~name:(Printf.sprintf "req-%d" i) (fun () ->
            let arrived = Sim.current_time () in
            (* Delivery into the VM. *)
            Sim.delay (Cycles.of_int (fixed / 2));
            Sim.Resource.acquire server;
            Sim.delay (Cycles.of_int service);
            busy := !busy + service;
            Sim.Resource.release server;
            (* Response out of the VM. *)
            Sim.delay (Cycles.of_int (fixed - (fixed / 2)));
            let done_at = Sim.current_time () in
            last_arrival_done := Cycles.max !last_arrival_done done_at;
            latencies :=
              Machine.elapsed_us machine (Cycles.sub done_at arrived)
              :: !latencies)
      done);
  Sim.run sim;
  let summary = Summary.of_list !latencies in
  let histogram = Armvirt_stats.Histogram.create ~bucket_width:10.0 in
  List.iter (Armvirt_stats.Histogram.add histogram) !latencies;
  let span = Cycles.to_int !last_arrival_done in
  {
    config = hyp.Hypervisor.name;
    offered_load = load;
    completed = List.length !latencies;
    mean_us = Summary.mean summary;
    p50_us = Summary.median summary;
    p95_us = Summary.percentile summary 95.0;
    p99_us = Summary.percentile summary 99.0;
    utilization =
      (if span = 0 then 0.0 else float_of_int !busy /. float_of_int span);
    latency_histogram = histogram;
  }
