(** Live migration under load: the netperf-RR-during-migration benchmark.

    Wraps {!Armvirt_migrate.Precopy} and reduces its per-round latency
    record to the operator-facing figures: total migration time,
    downtime against the SLO, pages re-sent, and how far request p99
    degraded during the worst pre-copy round relative to the
    pre-migration baseline — the guest-visible cost of dirty logging,
    which differs per hypervisor by exactly the transition costs of
    {!Armvirt_hypervisor.Migrate_profile}. *)

type result = {
  config : string;  (** Hypervisor name. *)
  transport : string;  (** ["vhost"] or ["grant"]. *)
  plan : Armvirt_migrate.Plan.t;
  precopy_rounds : int;
  rounds : Armvirt_migrate.Precopy.round list;
  total_ms : float;
  downtime_us : float;
  downtime_target_us : float;
  pages_sent : int;
  pages_resent : int;
  final_pages : int;
  wp_faults : int;
  converged : bool;
  requests : int;
  baseline_p99_us : float;
  worst_round : int;  (** Pre-copy round with the highest request p99. *)
  worst_p99_us : float;
  p99_degradation : float;  (** [worst_p99_us / baseline_p99_us]. *)
  post_p99_us : float;  (** Blackout backlog + post-resume tail p99. *)
}

val run :
  ?plan:Armvirt_migrate.Plan.t -> Armvirt_hypervisor.Hypervisor.t -> result
(** One migration on the hypervisor's machine, deterministic per plan. *)
