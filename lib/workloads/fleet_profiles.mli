(** Bridge from the Table IV workload catalog to fleet guest profiles.

    A fleet guest is a microVM running a scaled slice of a catalog
    benchmark: the conversion fixes VCPU count, memory share, boot work
    and mean steady-state work per profile category, so descriptors can
    be built from the CLI's [--profile-mix] syntax. *)

val of_workload : Workload.t -> Armvirt_fleet.Descriptor.profile

val find : string -> Armvirt_fleet.Descriptor.profile option
(** Case-insensitive catalog lookup by workload name. *)

val parse_mix :
  string ->
  ((Armvirt_fleet.Descriptor.profile * int) list, string) result
(** Parses ["memcached=2,kernbench=1"]. Shares default to 1; the name
    ["synthetic"] maps to {!Armvirt_fleet.Descriptor.synthetic}. *)
