module Hypervisor = Armvirt_hypervisor.Hypervisor
module Plan = Armvirt_migrate.Plan
module Precopy = Armvirt_migrate.Precopy

type result = {
  config : string;
  transport : string;
  plan : Plan.t;
  precopy_rounds : int;
  rounds : Precopy.round list;
  total_ms : float;
  downtime_us : float;
  downtime_target_us : float;
  pages_sent : int;
  pages_resent : int;
  final_pages : int;
  wp_faults : int;
  converged : bool;
  requests : int;
  baseline_p99_us : float;
  worst_round : int;
  worst_p99_us : float;
  p99_degradation : float;
  post_p99_us : float;
}

let run ?plan (hyp : Hypervisor.t) =
  let r = Precopy.run ?plan hyp in
  (* The RR story: which pre-copy round hurt the guest most, and by how
     much relative to the undisturbed baseline. Round 0 usually wins —
     the full-memory copy is when every hot page still owes its first
     fault. *)
  let worst_round, worst_p99 =
    List.fold_left
      (fun ((_, best_p99) as best) (round : Precopy.round) ->
        if Float.is_nan round.Precopy.p99_us then best
        else if
          Float.is_nan best_p99 || round.Precopy.p99_us > best_p99
        then (round.Precopy.index, round.Precopy.p99_us)
        else best)
      (-1, Float.nan) r.Precopy.rounds
  in
  let degradation =
    if Float.is_nan worst_p99 || r.Precopy.baseline_p99_us <= 0.0 then
      Float.nan
    else worst_p99 /. r.Precopy.baseline_p99_us
  in
  {
    config = r.Precopy.hyp_name;
    transport = r.Precopy.transport;
    plan = r.Precopy.plan;
    precopy_rounds = r.Precopy.precopy_rounds;
    rounds = r.Precopy.rounds;
    total_ms = r.Precopy.total_us /. 1e3;
    downtime_us = r.Precopy.downtime_us;
    downtime_target_us = r.Precopy.plan.Plan.downtime_target_us;
    pages_sent = r.Precopy.pages_sent;
    pages_resent = r.Precopy.pages_resent;
    final_pages = r.Precopy.final_pages;
    wp_faults = r.Precopy.wp_faults;
    converged = r.Precopy.converged;
    requests = r.Precopy.requests;
    baseline_p99_us = r.Precopy.baseline_p99_us;
    worst_round;
    worst_p99_us = worst_p99;
    p99_degradation = degradation;
    post_p99_us = r.Precopy.post_p99_us;
  }
