module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Rng = Armvirt_engine.Rng
module Summary = Armvirt_stats.Summary
module Machine = Armvirt_arch.Machine
module Packet = Armvirt_net.Packet
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Kernel_costs = Armvirt_guest.Kernel_costs
module Switch = Armvirt_vswitch.Switch
module Topology = Armvirt_vswitch.Topology

(* Guest-side work per served request, identical to the Tail_latency
   decomposition: the native server path plus the paravirtual frontend
   and interrupt costs the hypervisor adds. *)
let service_cycles (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  Kernel_costs.rr_server_cycles hyp.Hypervisor.guest
  + p.Io_profile.irq_delivery_guest_cpu + p.Io_profile.virq_completion
  + p.Io_profile.guest_rx_per_packet + p.Io_profile.guest_tx_per_packet
  + p.Io_profile.kick_guest_cpu

(* A load balancer forwards without application processing: the guest
   RX and TX protocol paths, no app_rr_process. *)
let lb_cycles (g : Kernel_costs.t) =
  g.Kernel_costs.softirq_rx + g.Kernel_costs.tcp_rx + g.Kernel_costs.tcp_tx
  + g.Kernel_costs.driver_tx

(* --- pairwise throughput matrix ----------------------------------- *)

(* iperf chunking: a 64 KB GRO/TSO aggregate, as in Netperf.tcp_stream. *)
let chunk_payload = 42 * 1500

type pair_result = {
  src : int;
  dst : int;
  cross_host : bool;
  gbps : float;
}

type matrix_result = {
  config : string;
  topology : string;
  vms : int;
  pairs : pair_result list;
  uplink_utilization : float;
  dropped : int;
}

let run_matrix ?(chunks = 16) ?(window = 4) ?(vms = 4) ?(spec = Topology.Pair)
    ?queue_capacity ?uplink_gbps (hyp : Hypervisor.t) =
  if chunks < 1 then invalid_arg "Cluster.run_matrix: chunks < 1";
  if window < 1 then invalid_arg "Cluster.run_matrix: window < 1";
  if vms < 2 then invalid_arg "Cluster.run_matrix: vms < 2";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  (* Default egress queues hold the full window, so the stock matrix
     never drops; an explicit (smaller) capacity measures loss. *)
  let queue_capacity = Option.value queue_capacity ~default:(2 * window) in
  let topo = Topology.build ~queue_capacity ?uplink_gbps ~vms hyp spec in
  let hz = Machine.freq_ghz machine *. 1e9 in
  let results = ref [] in
  Sim.spawn sim ~name:"cluster-matrix" (fun () ->
      let done_mb = Sim.Mailbox.create ~name:"matrix-done" sim in
      (* Matrix receivers never transmit, so MAC learning would flood
         every chunk: teach the switches each VM's location with one
         unmeasured gratuitous frame per VM, then let the floods
         drain. *)
      for v = 0 to vms - 1 do
        let pkt = Packet.create ~payload:1 ~id:(-v - 1) () in
        Topology.send topo ~src:v ~dst:((v + 1) mod vms) pkt
      done;
      Sim.delay (Cycles.of_int 50_000_000);
      for src = 0 to vms - 1 do
        for dst = 0 to vms - 1 do
          if src <> dst then begin
            Topology.set_handler topo ~vm:dst (fun ~src:_ ~dst:dmac pkt ->
                (* Promiscuous tap: floods reach everyone; the guest
                   stack keeps only frames addressed to it. *)
                if dmac = dst then Sim.Mailbox.send done_mb (Packet.id pkt));
            let start = Sim.current_time () in
            let outstanding = ref 0 in
            for k = 1 to chunks do
              if !outstanding >= window then begin
                ignore (Sim.Mailbox.recv done_mb);
                decr outstanding
              end;
              let pkt = Packet.create ~payload:chunk_payload ~id:k () in
              Topology.send topo ~src ~dst pkt;
              incr outstanding
            done;
            while !outstanding > 0 do
              ignore (Sim.Mailbox.recv done_mb);
              decr outstanding
            done;
            Topology.set_handler topo ~vm:dst (fun ~src:_ ~dst:_ _ -> ());
            let elapsed =
              Cycles.to_int (Cycles.sub (Sim.current_time ()) start)
            in
            let bits = float_of_int (chunks * chunk_payload) *. 8.0 in
            let gbps = bits /. (float_of_int elapsed /. hz) /. 1e9 in
            results :=
              { src; dst; cross_host = not (Topology.same_host topo src dst); gbps }
              :: !results
          end
        done
      done);
  Sim.run sim;
  {
    config = hyp.Hypervisor.name;
    topology = Topology.spec_to_string spec;
    vms;
    pairs = List.rev !results;
    uplink_utilization = Topology.max_uplink_utilization topo;
    dropped = Topology.total_dropped topo;
  }

let matrix_mean ~cross (r : matrix_result) =
  let selected = List.filter (fun p -> p.cross_host = cross) r.pairs in
  match selected with
  | [] -> 0.0
  | l ->
      List.fold_left (fun s p -> s +. p.gbps) 0.0 l /. float_of_int (List.length l)

(* --- service chain ------------------------------------------------- *)

type chain_result = {
  chain_config : string;
  chain_topology : string;
  requests : int;
  hops : (string * float) list; (* mean us per hop, chain order *)
  mean_total_us : float;
  p99_total_us : float;
  backend_cross_host : bool;
}

let hop_names =
  [
    ("client->lb", ("client_send", "lb_recv"));
    ("lb", ("lb_recv", "lb_send"));
    ("lb->backend", ("lb_send", "backend_recv"));
    ("backend", ("backend_recv", "backend_send"));
    ("backend->lb", ("backend_send", "lb_ret_recv"));
    ("lb-return", ("lb_ret_recv", "lb_ret_send"));
    ("lb->client", ("lb_ret_send", "client_recv"));
  ]

let run_chain ?(requests = 400) ?(payload = 256) ?(spec = Topology.Pair)
    ?uplink_gbps (hyp : Hypervisor.t) =
  if requests < 1 then invalid_arg "Cluster.run_chain: requests < 1";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  (* Three VMs: the client and LB share host 0; the backend sits on
     host 1 when the topology has one (the cross-host hop the paper's
     single-wire setup cannot express). *)
  let topo = Topology.build ?uplink_gbps ~vms:3 hyp spec in
  let client = 0 in
  let lb = if Topology.same_host topo 0 2 then 2 else 1 in
  let backend = if lb = 2 then 1 else 2 in
  let g = hyp.Hypervisor.guest in
  let spend label c = Machine.spend machine label c in
  let pkts = ref [] in
  Topology.set_handler topo ~vm:lb (fun ~src ~dst pkt ->
      if dst = lb then
        if src = client then begin
          Packet.stamp pkt "lb_recv";
          spend "cluster.lb" (lb_cycles g);
          Packet.stamp pkt "lb_send";
          Topology.send topo ~src:lb ~dst:backend pkt
        end
        else begin
          Packet.stamp pkt "lb_ret_recv";
          spend "cluster.lb" (lb_cycles g);
          Packet.stamp pkt "lb_ret_send";
          Topology.send topo ~src:lb ~dst:client pkt
        end);
  Topology.set_handler topo ~vm:backend (fun ~src:_ ~dst pkt ->
      if dst = backend then begin
        Packet.stamp pkt "backend_recv";
        spend "cluster.backend" (service_cycles hyp);
        Packet.stamp pkt "backend_send";
        Topology.send topo ~src:backend ~dst:lb pkt
      end);
  let done_mb = Sim.Mailbox.create ~name:"chain-done" sim in
  Topology.set_handler topo ~vm:client (fun ~src:_ ~dst pkt ->
      if dst = client then begin
        Packet.stamp pkt "client_recv";
        Sim.Mailbox.send done_mb pkt
      end);
  Sim.spawn sim ~name:"cluster-chain" (fun () ->
      (* Request 0 is an unmeasured warmup: its floods converge the MAC
         tables so measured hops never pay flood copies. *)
      for id = 0 to requests do
        let pkt = Packet.create ~payload ~id () in
        Packet.stamp pkt "client_send";
        Topology.send topo ~src:client ~dst:lb pkt;
        let pkt = Sim.Mailbox.recv done_mb in
        if id > 0 then pkts := pkt :: !pkts
      done);
  Sim.run sim;
  let pkts = List.rev !pkts in
  let mean_hop (a, b) =
    let vals =
      List.filter_map
        (fun p ->
          Option.map (Machine.elapsed_us machine) (Packet.interval p a b))
        pkts
    in
    match vals with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let totals =
    List.filter_map
      (fun p ->
        Option.map (Machine.elapsed_us machine)
          (Packet.interval p "client_send" "client_recv"))
      pkts
  in
  let summary = Summary.of_list totals in
  {
    chain_config = hyp.Hypervisor.name;
    chain_topology = Topology.spec_to_string spec;
    requests;
    hops = List.map (fun (name, stamps) -> (name, mean_hop stamps)) hop_names;
    mean_total_us = Summary.mean summary;
    p99_total_us = Summary.percentile summary 99.0;
    backend_cross_host = not (Topology.same_host topo lb backend);
  }

(* --- open-loop load generator ------------------------------------- *)

type load_point = {
  offered : float; (* fraction of aggregate native capacity *)
  offered_rps : float;
  completed : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  throughput_rps : float;
}

type loadgen_result = {
  lg_config : string;
  lg_topology : string;
  backends : int;
  lg_requests : int;
  points : load_point list;
}

let client_mac = 1_000_000

let default_loads = [ 0.2; 0.4; 0.6; 0.8; 0.95; 1.1 ]

let run_loadgen ?(seed = 42) ?(requests = 1600) ?(payload = 128) ?(vms = 16)
    ?(spec = Topology.Pair) ?(loads = default_loads) ?uplink_gbps
    (hyp : Hypervisor.t) =
  if requests < 1 then invalid_arg "Cluster.run_loadgen: requests < 1";
  if vms < 1 then invalid_arg "Cluster.run_loadgen: vms < 1";
  List.iter
    (fun l -> if l <= 0.0 then invalid_arg "Cluster.run_loadgen: load <= 0")
    loads;
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let hz = Machine.freq_ghz machine *. 1e9 in
  (* Generous egress queues: the memcached pool's backlog lives in the
     guest socket queues (the per-backend server resource below), not
     in tap drops — drop accounting is the matrix/test territory. Past
     the knee every in-flight reply funnels through the single client
     port, so its queue must hold the whole open-loop window. *)
  let topo =
    Topology.build
      ~queue_capacity:(max 1024 (2 * (requests + vms)))
      ?uplink_gbps ~vms hyp spec
  in
  let native_service =
    float_of_int (Kernel_costs.rr_server_cycles hyp.Hypervisor.guest)
  in
  let service = service_cycles hyp in
  let servers =
    Array.init vms (fun i ->
        Sim.Resource.create ~name:(Printf.sprintf "backend-%d" i) sim
          ~capacity:1)
  in
  (* The unit-rate arrival skeleton is drawn once and rescaled per
     offered load: every point replays the same stream, so per-request
     waiting (FIFO stations with load-independent service) is pathwise
     monotone in the rate — the hockey-stick curve cannot jitter
     downward between sweep points. *)
  let rng = Rng.create ~seed in
  let unit_gaps = Array.init requests (fun _ -> Rng.exponential rng ~mean:1.0) in
  let completed = ref 0 in
  let target = ref 0 in
  let latencies = ref [] in
  let done_sig = Sim.Signal.create sim in
  let sw0 = Topology.switch topo 0 in
  let client_port =
    Switch.attach sw0 ~mac:client_mac ~deliver:(fun ~src:_ ~dst pkt ->
        if dst = client_mac then begin
          (if Packet.id pkt >= 0 then
             match Packet.timestamp pkt "req_send" with
             | Some t0 ->
                 latencies :=
                   Machine.elapsed_us machine
                     (Cycles.sub (Sim.current_time ()) t0)
                   :: !latencies
             | None -> ());
          incr completed;
          if !completed >= !target then Sim.Signal.notify done_sig
        end)
  in
  Array.iteri
    (fun b _ ->
      Topology.set_handler topo ~vm:b (fun ~src:_ ~dst pkt ->
          if dst = b then begin
            (* One serving VCPU per backend microVM: FIFO socket queue,
               deterministic per-request service. *)
            Sim.Resource.acquire servers.(b);
            Sim.delay (Cycles.of_int service);
            Sim.Resource.release servers.(b);
            Topology.send_to_mac topo ~src:b ~dst_mac:client_mac pkt
          end))
    servers;
  let points = ref [] in
  Sim.spawn sim ~name:"cluster-loadgen" (fun () ->
      (* Warm up the MAC tables: one ping per backend, unmeasured, so
         the sweep itself never floods and every point sees identical
         forwarding state. *)
      completed := 0;
      target := vms;
      for b = 0 to vms - 1 do
        let pkt = Packet.create ~payload ~id:(-(b + 1)) () in
        Switch.transmit sw0 ~port:client_port ~dst:b pkt
      done;
      while !completed < !target do
        Sim.Signal.wait done_sig
      done;
      List.iter
        (fun load ->
          completed := 0;
          target := requests;
          latencies := [];
          let t0 = Sim.current_time () in
          for k = 0 to requests - 1 do
            let gap =
              int_of_float
                (unit_gaps.(k) *. native_service /. (load *. float_of_int vms))
            in
            Sim.delay (Cycles.of_int gap);
            let id = k + 1 in
            let b = k mod vms in
            (* Open loop: each request is its own process, so the
               generator never backpressures on a saturated pool. *)
            Sim.spawn_here ~name:(Printf.sprintf "req-%d" id) (fun () ->
                let pkt = Packet.create ~payload ~id () in
                Packet.stamp pkt "req_send";
                Switch.transmit sw0 ~port:client_port ~dst:b pkt)
          done;
          while !completed < !target do
            Sim.Signal.wait done_sig
          done;
          let elapsed =
            Cycles.to_int (Cycles.sub (Sim.current_time ()) t0)
          in
          let summary = Summary.of_list !latencies in
          points :=
            {
              offered = load;
              offered_rps = load *. float_of_int vms *. hz /. native_service;
              completed = !completed;
              mean_us = Summary.mean summary;
              p50_us = Summary.median summary;
              p95_us = Summary.percentile summary 95.0;
              p99_us = Summary.percentile summary 99.0;
              throughput_rps =
                (if elapsed = 0 then 0.0
                 else
                   float_of_int !completed /. (float_of_int elapsed /. hz));
            }
            :: !points)
        loads);
  Sim.run sim;
  let points = List.rev !points in
  if List.length points <> List.length loads then
    failwith
      "Cluster.run_loadgen: sweep stalled (dropped frames?); raise the \
       queue capacity";
  {
    lg_config = hyp.Hypervisor.name;
    lg_topology = Topology.spec_to_string spec;
    backends = vms;
    lg_requests = requests;
    points;
  }
