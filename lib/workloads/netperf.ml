module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Packet = Armvirt_net.Packet
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Kernel_costs = Armvirt_guest.Kernel_costs

(* Calibration constants for the RR path, in cycles (2.4 GHz basis).
   host_rx_path / host_tx_path are the physical-side driver, bridge and
   backend-queue path lengths in the host kernel (KVM) or Dom0 (Xen) —
   nearly identical software on both, per section III's identical
   kernels. guest_virt_steal is per-transaction time stolen from the
   guest by host-side activity sharing the memory system. *)
let host_rx_path = 36_700
let host_tx_path = 28_500
let guest_virt_steal = 4_800
let client_turnaround = 54_920
let wire_cycles = 4_800
let nic_dma = 500
let rr_payload = 1

let wire_gbps = 9.42

type rr_result = {
  transactions : int;
  time_per_trans_us : float;
  trans_per_sec : float;
  overhead_us : float;
  send_to_recv_us : float;
  recv_to_send_us : float;
  recv_to_vm_recv_us : float option;
  vm_recv_to_vm_send_us : float option;
  vm_send_to_send_us : float option;
  normalized : float;
}

let is_native (hyp : Hypervisor.t) = hyp.Hypervisor.name = "Native"

(* One request-response at the server machine: wire in, server
   processing (through the hypervisor when virtualized), wire out. All
   timestamps land on the packet, mirroring tcpdump at the data-link
   layer plus a capture inside the VM. *)
let transaction (hyp : Hypervisor.t) ~id =
  let p = hyp.Hypervisor.io_profile in
  let g = hyp.Hypervisor.guest in
  let machine = hyp.Hypervisor.machine in
  let spend label c = Machine.spend machine label c in
  let pkt = Packet.create ~payload:rr_payload ~id () in
  Packet.stamp pkt "client_send";
  Sim.delay (Cycles.of_int (wire_cycles + nic_dma));
  (* Xen: the physical driver lives in Dom0, which may need waking
     before tcpdump even sees the frame. *)
  spend "netperf.phys_rx_extra" p.Io_profile.phys_rx_extra_latency;
  Packet.stamp pkt "recv";
  if is_native hyp then
    spend "netperf.native_server" (Kernel_costs.rr_server_cycles g)
  else begin
    (* Physical driver -> bridge -> backend queue, then delivery of the
       virtual interrupt into the VM. *)
    spend "netperf.host_rx_path" host_rx_path;
    spend "netperf.rx_grant"
      (Io_profile.total_rx_packet_cost p ~bytes:(Packet.wire_bytes pkt)
      - p.Io_profile.backend_cpu_per_packet);
    spend "netperf.irq_delivery" p.Io_profile.irq_delivery_latency;
    Packet.stamp pkt "vm_recv";
    (* In-VM residence: the native stack minus the physical driver ends,
       plus paravirtual frontend costs. *)
    let guest_core =
      Kernel_costs.rr_server_cycles g
      - g.Kernel_costs.irq_top_half - g.Kernel_costs.driver_tx
    in
    spend "netperf.vm_processing"
      (guest_core + p.Io_profile.guest_rx_per_packet
      + p.Io_profile.guest_tx_per_packet + p.Io_profile.virq_completion
      + guest_virt_steal);
    Packet.stamp pkt "vm_send";
    (* Kick the backend, which moves the response to the physical NIC. *)
    spend "netperf.notify" p.Io_profile.notify_latency;
    spend "netperf.backend_tx"
      (Io_profile.total_tx_packet_cost p ~bytes:(Packet.wire_bytes pkt));
    spend "netperf.host_tx_path" host_tx_path
  end;
  Packet.stamp pkt "send";
  Sim.delay (Cycles.of_int (nic_dma + wire_cycles));
  Packet.stamp pkt "client_recv";
  (* Client turnaround before the next request hits the wire. *)
  Sim.delay (Cycles.of_int client_turnaround);
  pkt

let mean_interval machine pkts a b =
  let values =
    List.filter_map
      (fun p ->
        Option.map
          (fun c -> Machine.elapsed_us machine c)
          (Packet.interval p a b))
      pkts
  in
  match values with
  | [] -> None
  | _ ->
      Some (List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values))

(* Native residence time on this machine, for the overhead column. *)
let native_us (hyp : Hypervisor.t) =
  let machine = hyp.Hypervisor.machine in
  let g = hyp.Hypervisor.guest in
  Machine.elapsed_us machine
    (Cycles.of_int
       ((2 * (wire_cycles + nic_dma))
       + client_turnaround
       + Kernel_costs.rr_server_cycles g))

let run_tcp_rr ?(transactions = 400) (hyp : Hypervisor.t) =
  if transactions < 1 then invalid_arg "Netperf.run_tcp_rr: no transactions";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let pkts = ref [] in
  let elapsed = ref Cycles.zero in
  Sim.spawn sim ~name:"netperf-tcp-rr" (fun () ->
      let start = Sim.current_time () in
      for id = 1 to transactions do
        pkts := transaction hyp ~id :: !pkts
      done;
      elapsed := Cycles.sub (Sim.current_time ()) start);
  Sim.run sim;
  let pkts = List.rev !pkts in
  let total_us = Machine.elapsed_us machine !elapsed in
  let time_per_trans_us = total_us /. float_of_int transactions in
  let native = native_us hyp in
  let interval = mean_interval machine pkts in
  let value label = Option.value ~default:0.0 label in
  (* "send to recv": server send -> (wire, client, wire, Dom0 wake) ->
     next request visible at the server's physical layer. Per-transaction
     it is everything outside recv->send. *)
  let recv_to_send = value (interval "recv" "send") in
  {
    transactions;
    time_per_trans_us;
    trans_per_sec = 1e6 /. time_per_trans_us;
    overhead_us = time_per_trans_us -. native;
    send_to_recv_us = time_per_trans_us -. recv_to_send;
    recv_to_send_us = recv_to_send;
    recv_to_vm_recv_us = interval "recv" "vm_recv";
    vm_recv_to_vm_send_us = interval "vm_recv" "vm_send";
    vm_send_to_send_us = interval "vm_send" "send";
    normalized = time_per_trans_us /. native;
  }

type stream_result = {
  gbps : float;
  stream_normalized : float;
  stream_bottleneck : string;
}

let mtu = 1500
let gro_aggregate = 42 (* 64 KB GRO/TSO aggregate, in MTU segments *)

let rate_gbps machine ~cycles_per_chunk ~chunk_bytes =
  let hz = Machine.freq_ghz machine *. 1e9 in
  hz /. float_of_int cycles_per_chunk *. float_of_int chunk_bytes *. 8.0 /. 1e9

let pick_bound bounds =
  let name, gbps =
    List.fold_left
      (fun (bn, bv) (name, v) -> if v < bv then (name, v) else (bn, bv))
      ("wire", wire_gbps) bounds
  in
  (name, gbps)

(* Bulk receive. KVM's VHOST preserves GRO: the guest and backend see
   64 KB aggregates and the wire binds. Xen's netback forwards
   MTU-sized frames, each needing a grant copy, and the guest's
   per-packet costs bind well below line rate (section V). *)
let tcp_stream ?(wire_gbps = wire_gbps) (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  let g = hyp.Hypervisor.guest in
  let machine = hyp.Hypervisor.machine in
  if is_native hyp then
    { gbps = wire_gbps; stream_normalized = 1.0; stream_bottleneck = "wire" }
  else begin
    (* The guest stack sees GRO aggregates either way (vhost passes GRO
       through; xen-netfront GROs in the guest), but a copying backend
       must move and grant every MTU frame individually — where KVM's
       vhost hands whole aggregates to the guest ring. *)
    let chunk_bytes = gro_aggregate * mtu in
    let backend_segs = if p.Io_profile.zero_copy then 1 else gro_aggregate in
    (* Events coalesce heavily under load: charge a fifth of a delivery
       per chunk. *)
    let guest_chunk =
      g.Kernel_costs.softirq_rx + g.Kernel_costs.tcp_rx
      + (gro_aggregate * p.Io_profile.guest_rx_per_packet)
      + (p.Io_profile.irq_delivery_guest_cpu / 5)
    in
    let backend_chunk =
      (backend_segs * p.Io_profile.backend_cpu_per_packet)
      + (backend_segs * p.Io_profile.rx_grant_per_packet)
      + int_of_float (p.Io_profile.rx_copy_per_byte *. float_of_int chunk_bytes)
    in
    let bounds =
      [
        ("guest", rate_gbps machine ~cycles_per_chunk:guest_chunk ~chunk_bytes);
        ( "backend",
          rate_gbps machine ~cycles_per_chunk:backend_chunk ~chunk_bytes );
      ]
    in
    let name, best =
      List.fold_left
        (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
        ("wire", wire_gbps) bounds
    in
    { gbps = best; stream_normalized = wire_gbps /. best; stream_bottleneck = name }
  end

(* Bulk transmit. The guest's TCP autosizing sets the in-flight window;
   the 4.0-rc1 regression collapses it when completion latency is high
   (Xen), so throughput is window/RTT-bound. With a healthy window,
   64 KB TSO chunks flow and even Xen's page-granular grant copies keep
   up with the wire. *)
let tcp_maerts ?tso_bug (hyp : Hypervisor.t) =
  let p = hyp.Hypervisor.io_profile in
  let g = hyp.Hypervisor.guest in
  let machine = hyp.Hypervisor.machine in
  if is_native hyp then
    { gbps = wire_gbps; stream_normalized = 1.0; stream_bottleneck = "wire" }
  else begin
    let guest =
      match tso_bug with
      | None -> g
      | Some true -> { g with Kernel_costs.tso_autosizing_bug = true }
      | Some false -> { g with Kernel_costs.tso_autosizing_bug = false }
    in
    (* The completion-latency signal feeding autosizing: only a slow
       (cross-domain) completion path triggers the collapse. *)
    let completion_latency =
      p.Io_profile.notify_latency + p.Io_profile.irq_delivery_latency
    in
    let batch =
      if completion_latency > 20_000 then
        Kernel_costs.tx_batch guest ~mtu_packets:gro_aggregate
      else gro_aggregate
    in
    let window_bytes = batch * mtu in
    let hz = Machine.freq_ghz machine *. 1e9 in
    let rtt_cycles =
      (2 * wire_cycles) + completion_latency
      + Kernel_costs.rr_server_cycles guest / 4
    in
    let window_gbps =
      float_of_int window_bytes /. (float_of_int rtt_cycles /. hz) *. 8.0 /. 1e9
    in
    let chunk_bytes = batch * mtu in
    let page_bytes = 4096 in
    let pages = (chunk_bytes + page_bytes - 1) / page_bytes in
    let backend_chunk =
      p.Io_profile.backend_cpu_per_packet
      + (pages * p.Io_profile.tx_grant_per_packet)
      + int_of_float (p.Io_profile.tx_copy_per_byte *. float_of_int chunk_bytes)
    in
    let guest_chunk =
      g.Kernel_costs.tcp_tx
      + (batch * p.Io_profile.guest_tx_per_packet)
      + (p.Io_profile.kick_guest_cpu / 2)
    in
    let bounds =
      [
        ("window", window_gbps);
        ( "backend",
          rate_gbps machine ~cycles_per_chunk:backend_chunk ~chunk_bytes );
        ("guest", rate_gbps machine ~cycles_per_chunk:guest_chunk ~chunk_bytes);
      ]
    in
    let stream_bottleneck, gbps = pick_bound bounds in
    { gbps; stream_normalized = wire_gbps /. gbps; stream_bottleneck }
  end
