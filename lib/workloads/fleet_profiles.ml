module Descriptor = Armvirt_fleet.Descriptor

(* Scale a Table IV workload down to a fleet guest: a microVM running a
   slice of the benchmark, not the paper's full 4-VCPU/12 GB instance.
   Per-VCPU steady-state work is total_cycles / 10^4 (floored at two
   default timeslices at 2.4 GHz) so a 256-guest storm stays simulable;
   I/O-bound guests are 1-VCPU/128 MB, CPU-bound ones 2-VCPU with more
   memory and a longer boot (more to page in and warm up). *)
let of_workload (w : Workload.t) =
  let vcpus, mem_mb, boot_cycles =
    match w.Workload.category with
    | Workload.Cpu_bound -> (2, 512, 24_000_000)
    | Workload.Balanced -> (2, 256, 18_000_000)
    | Workload.Io_latency | Workload.Io_throughput -> (1, 128, 12_000_000)
  in
  let work_cycles =
    Stdlib.max 4_800_000 (int_of_float (w.Workload.total_cycles /. 1e4))
  in
  {
    Descriptor.name = String.lowercase_ascii w.Workload.name;
    vcpus;
    mem_mb;
    weight = Descriptor.default_weight;
    cap_pct = 0;
    boot_cycles;
    work_cycles;
  }

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun w -> String.lowercase_ascii w.Workload.name = needle)
    Workload.all
  |> Option.map of_workload

(* "memcached=2,kernbench=1" -> weighted mix. The bare name "synthetic"
   is always available so fleets need no catalog dependency. *)
let parse_mix spec =
  if String.trim spec = "" then Error "empty profile mix"
  else
    let parse_entry entry =
      let entry = String.trim entry in
      let name, share =
        match String.index_opt entry '=' with
        | None -> (entry, Ok 1)
        | Some i ->
            let count = String.sub entry (i + 1) (String.length entry - i - 1) in
            ( String.trim (String.sub entry 0 i),
              match int_of_string_opt (String.trim count) with
              | Some n when n >= 1 -> Ok n
              | _ -> Error (Printf.sprintf "bad share %S in %S" count entry) )
      in
      match share with
      | Error _ as e -> e
      | Ok share -> (
          if String.lowercase_ascii name = "synthetic" then
            Ok (Descriptor.synthetic, share)
          else
            match find name with
            | Some p -> Ok (p, share)
            | None ->
                Error
                  (Printf.sprintf
                     "unknown workload %S (want synthetic or one of: %s)" name
                     (String.concat ", "
                        (List.map
                           (fun w -> String.lowercase_ascii w.Workload.name)
                           Workload.all))))
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | entry :: rest -> (
          match parse_entry entry with
          | Ok pair -> collect (pair :: acc) rest
          | Error _ as e -> e)
    in
    collect [] (String.split_on_char ',' spec)
