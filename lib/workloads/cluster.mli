(** Cluster workloads over the {!Armvirt_vswitch} fabric.

    The paper's netperf numbers are one VM talking to one bare-metal
    client over one wire. These workloads extend the same calibrated
    per-event costs (guest kernel paths from
    {!Armvirt_guest.Kernel_costs}, hypervisor port costs from
    {!Armvirt_vswitch.Port_profile}) to VM-to-VM and cross-host
    traffic: an iperf-style pairwise throughput matrix, a client → LB →
    backend service chain timed hop-by-hop with
    {!Armvirt_net.Packet.stamp}, and an open-loop load generator
    driving a memcached-style backend pool to saturation. All three are
    deterministic: same hypervisor, same parameters, same bytes out. *)

val service_cycles : Armvirt_hypervisor.Hypervisor.t -> int
(** Guest-side cycles to serve one request: the native TCP_RR server
    path plus the hypervisor's per-request frontend and interrupt
    costs (the Tail_latency decomposition). *)

(** {1 Pairwise throughput matrix} *)

type pair_result = {
  src : int;
  dst : int;
  cross_host : bool;
  gbps : float;  (** Goodput, payload bits over the pair's run time. *)
}

type matrix_result = {
  config : string;
  topology : string;
  vms : int;
  pairs : pair_result list;  (** Ordered pairs, row-major, src <> dst. *)
  uplink_utilization : float;  (** Max over uplinks, whole run. *)
  dropped : int;  (** Egress-queue drops (0 when the window fits). *)
}

val run_matrix :
  ?chunks:int ->
  ?window:int ->
  ?vms:int ->
  ?spec:Armvirt_vswitch.Topology.spec ->
  ?queue_capacity:int ->
  ?uplink_gbps:float ->
  Armvirt_hypervisor.Hypervisor.t ->
  matrix_result
(** Each ordered VM pair in turn streams [chunks] (default 16) 64 KB
    GRO aggregates with [window] (default 4) in flight. Same-host
    pairs bound on the hypervisor's port costs — zero-copy vhost far
    above Xen's per-byte Dom0 copies — and cross-host pairs add the
    10 GbE uplink. [queue_capacity] defaults to twice the window (no
    drops); a smaller value measures loss. Raises [Invalid_argument]
    on non-positive parameters or [vms < 2]. *)

val matrix_mean : cross:bool -> matrix_result -> float
(** Mean Gbps over the same-host ([cross:false]) or cross-host pairs;
    0 when the topology has no such pair. *)

(** {1 Service chain} *)

type chain_result = {
  chain_config : string;
  chain_topology : string;
  requests : int;
  hops : (string * float) list;
      (** Mean microseconds per hop, in chain order: client->lb, lb,
          lb->backend, backend, backend->lb, lb-return, lb->client. *)
  mean_total_us : float;
  p99_total_us : float;
  backend_cross_host : bool;
}

val run_chain :
  ?requests:int ->
  ?payload:int ->
  ?spec:Armvirt_vswitch.Topology.spec ->
  ?uplink_gbps:float ->
  Armvirt_hypervisor.Hypervisor.t ->
  chain_result
(** A closed-loop client (VM 0) sends [requests] (default 400)
    [payload]-byte (default 256) requests through an LB VM on its own
    host to a backend VM — on the second host when the topology has
    one. Every hop stamps the packet, mirroring the paper's tcpdump
    methodology at cluster scale. *)

(** {1 Open-loop load generation} *)

type load_point = {
  offered : float;  (** Fraction of aggregate native pool capacity. *)
  offered_rps : float;  (** The same, in simulated requests/second. *)
  completed : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  throughput_rps : float;
}

type loadgen_result = {
  lg_config : string;
  lg_topology : string;
  backends : int;
  lg_requests : int;
  points : load_point list;  (** In sweep order. *)
}

val default_loads : float list
(** [0.2; 0.4; 0.6; 0.8; 0.95; 1.1] — the top point oversubscribes
    even a native pool, so every hypervisor's curve shows the
    hockey-stick knee. *)

val run_loadgen :
  ?seed:int ->
  ?requests:int ->
  ?payload:int ->
  ?vms:int ->
  ?spec:Armvirt_vswitch.Topology.spec ->
  ?loads:float list ->
  ?uplink_gbps:float ->
  Armvirt_hypervisor.Hypervisor.t ->
  loadgen_result
(** Poisson arrivals at each offered load drive a [vms]-backend
    (default 16) memcached-style pool round-robin through the switch
    fabric; each backend is one serving VCPU with a FIFO socket queue.
    The arrival skeleton is drawn once from [seed] and rescaled per
    point, so with fixed per-request service every request's latency —
    and therefore p99 — is monotone non-decreasing in offered load.
    At 16 backends the default sweep tops out above one million
    simulated requests/second offered. Raises [Invalid_argument] on
    non-positive parameters. *)
