module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Kernel_costs = Armvirt_guest.Kernel_costs
module Blk_device = Armvirt_io.Blk_device

type result = {
  config : string;
  rand_read_us : float;
  rand_write_us : float;
  seq_read_mb_s : float;
  virt_added_us : float;
}

(* Guest-side block layer path (submit_bio through the driver), common
   to native and virtualized runs. *)
let guest_blk_path (g : Kernel_costs.t) =
  g.Kernel_costs.syscall + g.Kernel_costs.driver_tx + g.Kernel_costs.irq_top_half

let request_cycles (hyp : Hypervisor.t) ~device ~bytes ~write =
  let p = hyp.Hypervisor.io_profile in
  let freq_ghz = Machine.freq_ghz hyp.Hypervisor.machine in
  let page_bytes = 4096 in
  let pages = (bytes + page_bytes - 1) / page_bytes in
  let virt =
    p.Io_profile.kick_guest_cpu + p.Io_profile.notify_latency
    + p.Io_profile.backend_cpu_per_packet
    + (pages
      * (if write then p.Io_profile.tx_grant_per_packet
         else p.Io_profile.rx_grant_per_packet))
    + int_of_float
        ((if write then p.Io_profile.tx_copy_per_byte
          else p.Io_profile.rx_copy_per_byte)
        *. float_of_int bytes)
    + p.Io_profile.irq_delivery_latency + p.Io_profile.virq_completion
  in
  guest_blk_path hyp.Hypervisor.guest
  + Blk_device.service_cycles device ~freq_ghz ~bytes ~write
  + virt

let run (hyp : Hypervisor.t) ~device =
  let freq = Machine.freq_ghz hyp.Hypervisor.machine *. 1e9 in
  let us c = float_of_int c /. freq *. 1e6 in
  let rand_read = request_cycles hyp ~device ~bytes:4096 ~write:false in
  let rand_write = request_cycles hyp ~device ~bytes:4096 ~write:true in
  (* Native latency on the same device, for the overhead column. *)
  let native_read =
    guest_blk_path hyp.Hypervisor.guest
    + Blk_device.service_cycles device
        ~freq_ghz:(Machine.freq_ghz hyp.Hypervisor.machine)
        ~bytes:4096 ~write:false
  in
  (* Sequential: 128 KB requests with the device pipelined; the software
     path binds only if it cannot issue fast enough. *)
  let chunk = 131_072 in
  let p = hyp.Hypervisor.io_profile in
  let software_per_chunk =
    guest_blk_path hyp.Hypervisor.guest
    + p.Io_profile.kick_guest_cpu + p.Io_profile.backend_cpu_per_packet
    + ((chunk + 4095) / 4096 * p.Io_profile.rx_grant_per_packet)
    + int_of_float (p.Io_profile.rx_copy_per_byte *. float_of_int chunk)
    + p.Io_profile.irq_delivery_guest_cpu
  in
  let software_mb_s =
    freq /. float_of_int software_per_chunk *. float_of_int chunk /. 1e6
  in
  let device_mb_s =
    float_of_int chunk
    /. Blk_device.service_us device ~bytes:chunk ~write:false
  in
  {
    config =
      Printf.sprintf "%s on %s" hyp.Hypervisor.name (Blk_device.describe device);
    rand_read_us = us rand_read;
    rand_write_us = us rand_write;
    seq_read_mb_s = Float.min software_mb_s device_mb_s;
    virt_added_us = us (rand_read - native_read);
  }
