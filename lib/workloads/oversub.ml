module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor

type result = {
  vms : int;
  timeslice_ms : float;
  context_switches : int;
  switch_cost_cycles : int;
  makespan_ms : float;
  ideal_ms : float;
  overhead_pct : float;
}

let guest_pcpus = 4

(* Measure the hypervisor's VM Switch cost once, in-simulation. *)
let vm_switch_cost (hyp : Hypervisor.t) =
  let sim = Machine.sim hyp.Hypervisor.machine in
  let cost = ref 0 in
  Sim.spawn sim ~name:"switch-probe" (fun () ->
      let t0 = Sim.current_time () in
      hyp.Hypervisor.vm_switch ();
      cost := Cycles.to_int (Cycles.sub (Sim.current_time ()) t0));
  Sim.run sim;
  !cost

let run (hyp : Hypervisor.t) ~vms ~timeslice_ms ~work_ms_per_vcpu =
  if vms < 1 then invalid_arg "Oversub.run: vms < 1";
  if timeslice_ms <= 0.0 || work_ms_per_vcpu <= 0.0 then
    invalid_arg "Oversub.run: non-positive duration";
  let freq = Machine.freq_ghz hyp.Hypervisor.machine *. 1e9 in
  let cycles_of_ms ms = int_of_float (ms *. freq /. 1e3) in
  let switch_cost_cycles = vm_switch_cost hyp in
  let makespan_cycles, context_switches =
    Armvirt_fleet.Batch.run ~num_pcpus:guest_pcpus
      ~timeslice_cycles:(cycles_of_ms timeslice_ms)
      ~switch_cost:switch_cost_cycles ~vms ~vcpus_per_vm:guest_pcpus
      ~work_per_vcpu:(cycles_of_ms work_ms_per_vcpu)
  in
  let to_ms c = float_of_int c /. freq *. 1e3 in
  let ideal_ms = float_of_int vms *. work_ms_per_vcpu in
  let makespan_ms = to_ms makespan_cycles in
  {
    vms;
    timeslice_ms;
    context_switches;
    switch_cost_cycles;
    makespan_ms;
    ideal_ms;
    overhead_pct = (makespan_ms -. ideal_ms) /. ideal_ms *. 100.0;
  }

let sweep hyp ~vms ~timeslices_ms ~work_ms_per_vcpu =
  List.concat_map
    (fun n ->
      List.map
        (fun slice -> run hyp ~vms:n ~timeslice_ms:slice ~work_ms_per_vcpu)
        timeslices_ms)
    vms
