(** The bottleneck model behind Figure 4.

    For a workload profile and a hypervisor's {!Armvirt_hypervisor.Io_profile},
    compute normalized performance (virtualized time / native time, 1.0 =
    native) by charging every event its per-event cost and finding the
    binding resource. Three resources can bind (section V's analysis):

    - {b VCPU0}: all virtual interrupts are delivered to one VCPU; each
      delivery also steals hypervisor handling time on that VCPU's PCPU
      and pollutes its caches ({!irq_preempt_penalty}).
    - {b the other VCPUs}: application work plus guest-side frontend
      costs (kicks, per-packet ring/grant work).
    - {b the backend}: host-kernel vhost (KVM) or Dom0 netback (Xen,
      single-threaded per virtual interface) plus grant/copy costs.

    The [irq_distribution] switch reproduces the paper's ablation:
    "distributing virtual interrupts across multiple VCPUs causes
    performance overhead to drop" — spreading both the native interrupt
    work and the virtualization surcharge over all VCPUs (which also
    restores interrupt coalescing, since every VCPU then polls). *)

type irq_distribution =
  | Single_vcpu  (** The measured default: everything lands on VCPU0. *)
  | All_vcpus  (** The ablation. *)
  | Spread of int
      (** Virtio-net multiqueue with this many queues: interrupts land
          on that many VCPUs — the mechanism that later productized the
          paper's ablation. [Spread 1 = Single_vcpu],
          [Spread 4 = All_vcpus]. Raises [Invalid_argument] outside
          1–4. *)

type verdict = {
  normalized : float;  (** ≥ 1.0; Figure 4's bar height. *)
  bottleneck : string;  (** Which resource bound ("vcpu0", "vcpus", "backend"). *)
  vcpu0_share : float;  (** VCPU0 demand / native per-VCPU demand. *)
  added_cycles : float;  (** Total virtualization surcharge per unit. *)
}

val irq_preempt_penalty : int
(** Cache/TLB pollution charged per delivered virtual interrupt on the
    interrupted VCPU, beyond the architectural delivery cost. *)

val run :
  ?irq_distribution:irq_distribution ->
  Workload.t ->
  Armvirt_hypervisor.Hypervisor.t ->
  verdict
(** Raises [Invalid_argument] if the profile is inconsistent (e.g.
    [irq_side_cycles > total_cycles]). The native hypervisor yields
    [normalized = 1.0] exactly. *)

val overhead_percent : verdict -> float
(** [(normalized - 1) * 100]. *)
