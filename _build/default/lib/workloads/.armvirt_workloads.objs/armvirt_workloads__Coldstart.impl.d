lib/workloads/coldstart.ml: Armvirt_arch Armvirt_engine Armvirt_hypervisor Armvirt_mem
