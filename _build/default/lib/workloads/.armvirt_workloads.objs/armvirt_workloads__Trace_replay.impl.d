lib/workloads/trace_replay.ml: Armvirt_arch Armvirt_engine Armvirt_hypervisor Armvirt_stats Float Hashtbl List Stdlib String
