lib/workloads/app_model.mli: Armvirt_hypervisor Workload
