lib/workloads/oversub.mli: Armvirt_hypervisor
