lib/workloads/timer_tick.mli: Armvirt_hypervisor
