lib/workloads/diskbench.ml: Armvirt_arch Armvirt_guest Armvirt_hypervisor Armvirt_io Float Printf
