lib/workloads/tail_latency.ml: Armvirt_arch Armvirt_engine Armvirt_guest Armvirt_hypervisor Armvirt_stats List Printf
