lib/workloads/workload.ml: Format List String
