lib/workloads/microbench.ml: Armvirt_arch Armvirt_engine Armvirt_hypervisor Armvirt_stats List
