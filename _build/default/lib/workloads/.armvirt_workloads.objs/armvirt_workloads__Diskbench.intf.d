lib/workloads/diskbench.mli: Armvirt_hypervisor Armvirt_io
