lib/workloads/oversub.ml: Armvirt_arch Armvirt_engine Armvirt_hypervisor Fun List
