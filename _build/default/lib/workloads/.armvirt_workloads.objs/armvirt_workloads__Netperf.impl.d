lib/workloads/netperf.ml: Armvirt_arch Armvirt_engine Armvirt_guest Armvirt_hypervisor Armvirt_net List Option
