lib/workloads/timer_tick.ml: Armvirt_arch Armvirt_engine Armvirt_hypervisor Armvirt_timer List Option
