lib/workloads/isolation.mli: Armvirt_hypervisor
