lib/workloads/coldstart.mli: Armvirt_hypervisor
