lib/workloads/crosscall.mli: Armvirt_hypervisor
