lib/workloads/guest_ops.mli: Armvirt_hypervisor
