lib/workloads/tail_latency.mli: Armvirt_hypervisor Armvirt_stats
