lib/workloads/workload.mli: Format
