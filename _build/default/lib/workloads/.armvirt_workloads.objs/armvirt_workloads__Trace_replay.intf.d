lib/workloads/trace_replay.mli: Armvirt_hypervisor
