lib/workloads/crosscall.ml: Armvirt_arch Armvirt_engine Armvirt_hypervisor
