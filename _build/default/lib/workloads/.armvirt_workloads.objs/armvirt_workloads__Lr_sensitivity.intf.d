lib/workloads/lr_sensitivity.mli: Armvirt_hypervisor
