lib/workloads/lr_sensitivity.ml: Armvirt_gic Armvirt_hypervisor List
