lib/workloads/microbench.mli: Armvirt_hypervisor Armvirt_stats
