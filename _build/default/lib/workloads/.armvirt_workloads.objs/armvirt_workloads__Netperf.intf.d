lib/workloads/netperf.mli: Armvirt_hypervisor
