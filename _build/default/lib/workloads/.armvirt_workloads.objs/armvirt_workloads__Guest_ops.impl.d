lib/workloads/guest_ops.ml: Armvirt_guest Armvirt_hypervisor
