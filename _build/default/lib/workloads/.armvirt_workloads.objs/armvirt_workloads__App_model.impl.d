lib/workloads/app_model.ml: Armvirt_hypervisor Float List Workload
