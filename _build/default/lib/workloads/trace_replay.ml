module Rng = Armvirt_engine.Rng
module Summary = Armvirt_stats.Summary
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile

type request_class = {
  class_name : string;
  weight : float;
  cpu_cycles : int;
  rx_packets : int;
  tx_packets_mean : float;
  response_bytes_mean : float;
}

let web_mix =
  [
    {
      class_name = "static";
      weight = 0.6;
      cpu_cycles = 120_000;
      rx_packets = 2;
      tx_packets_mean = 8.0;
      response_bytes_mean = 11_000.0;
    };
    {
      class_name = "api";
      weight = 0.35;
      cpu_cycles = 400_000;
      rx_packets = 2;
      tx_packets_mean = 2.0;
      response_bytes_mean = 2_000.0;
    };
    {
      class_name = "upload";
      weight = 0.05;
      cpu_cycles = 900_000;
      rx_packets = 40;
      tx_packets_mean = 2.0;
      response_bytes_mean = 500.0;
    };
  ]

type result = {
  replayed : int;
  per_class : (string * int * float) list;
  added_cpu_pct : float;
  p99_added_us : float;
}

let pick_class rng mix =
  let total = List.fold_left (fun acc c -> acc +. c.weight) 0.0 mix in
  let target = Rng.float rng ~bound:total in
  let rec go acc = function
    | [ last ] -> last
    | c :: rest -> if acc +. c.weight >= target then c else go (acc +. c.weight) rest
    | [] -> assert false
  in
  go 0.0 mix

(* The virtualization surcharge of one request, in cycles. *)
let request_surcharge rng (p : Io_profile.t) cls =
  let tx_packets =
    int_of_float
      (Float.round (Rng.pareto rng ~scale:(cls.tx_packets_mean /. 2.0) ~shape:1.5))
    |> Stdlib.max 1
  in
  let bytes =
    int_of_float (float_of_int tx_packets *. cls.response_bytes_mean
                  /. Float.max 1.0 cls.tx_packets_mean)
  in
  let irqs = 1 + ((cls.rx_packets + tx_packets) / 8) in
  (irqs * (p.Io_profile.irq_delivery_guest_cpu + p.Io_profile.virq_completion))
  + ((cls.rx_packets + tx_packets + 7) / 8 * p.Io_profile.kick_guest_cpu)
  + (cls.rx_packets * p.Io_profile.guest_rx_per_packet)
  + (tx_packets * p.Io_profile.guest_tx_per_packet)
  + (tx_packets * Io_profile.total_tx_packet_cost p ~bytes:(bytes / tx_packets))
  + (cls.rx_packets * Io_profile.total_rx_packet_cost p ~bytes:200)

let run ?(seed = 11) ?(requests = 2_000) ?(mix = web_mix) (hyp : Hypervisor.t) =
  if requests < 1 then invalid_arg "Trace_replay.run: requests < 1";
  if mix = [] then invalid_arg "Trace_replay.run: empty mix";
  let rng = Rng.create ~seed in
  let p = hyp.Hypervisor.io_profile in
  let freq = Machine.freq_ghz hyp.Hypervisor.machine *. 1e9 in
  let per_class : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let native_cycles = ref 0.0 in
  let added = ref [] in
  for _ = 1 to requests do
    let cls = pick_class rng mix in
    let surcharge = request_surcharge rng p cls in
    native_cycles := !native_cycles +. float_of_int cls.cpu_cycles;
    let us = float_of_int surcharge /. freq *. 1e6 in
    added := us :: !added;
    let count, sum =
      match Hashtbl.find_opt per_class cls.class_name with
      | Some entry -> entry
      | None ->
          let entry = (ref 0, ref 0.0) in
          Hashtbl.replace per_class cls.class_name entry;
          entry
    in
    incr count;
    sum := !sum +. us
  done;
  let summary = Summary.of_list !added in
  let total_added_cycles =
    List.fold_left (fun acc us -> acc +. (us *. freq /. 1e6)) 0.0 !added
  in
  {
    replayed = requests;
    per_class =
      Hashtbl.fold
        (fun name (count, sum) acc ->
          (name, !count, !sum /. float_of_int !count) :: acc)
        per_class []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b);
    added_cpu_pct = total_added_cycles /. !native_cycles *. 100.0;
    p99_added_us = Summary.percentile summary 99.0;
  }
