module Sim = Armvirt_engine.Sim
module Rng = Armvirt_engine.Rng
module Summary = Armvirt_stats.Summary
module Cycle_counter = Armvirt_stats.Cycle_counter
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor

type result = {
  config : string;
  samples : int;
  median : float;
  mean : float;
  stddev : float;
  coefficient_of_variation : float;
  worst : float;
}

let run ?(seed = 7) ?(iterations = 200) ~interference (hyp : Hypervisor.t) =
  if iterations < 1 then invalid_arg "Isolation.run: iterations < 1";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let rng = Rng.create ~seed in
  let counter =
    Cycle_counter.create ~barrier_cost:hyp.Hypervisor.barrier_cost
  in
  let collected = ref None in
  Sim.spawn sim ~name:"isolation-probe" (fun () ->
      let samples =
        List.init iterations (fun _ ->
            Cycle_counter.measure counter (fun () ->
                hyp.Hypervisor.hypercall ();
                if interference && Rng.float rng ~bound:1.0 < 0.3 then begin
                  (* A stray host IRQ or scheduler preemption lands inside
                     the measured window. *)
                  let stolen = 500 + Rng.int rng ~bound:14_500 in
                  Machine.spend machine "isolation.interference" stolen
                end))
      in
      collected := Some (Summary.of_cycles samples));
  Sim.run sim;
  let s = Option.get !collected in
  {
    config =
      Printf.sprintf "%s, %s" hyp.Hypervisor.name
        (if interference then "unisolated (stray IRQs + preemption)"
         else "pinned + isolated (paper discipline)");
    samples = Summary.count s;
    median = Summary.median s;
    mean = Summary.mean s;
    stddev = Summary.stddev s;
    coefficient_of_variation = Summary.coefficient_of_variation s;
    worst = Summary.max s;
  }
