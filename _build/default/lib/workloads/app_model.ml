module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile

type irq_distribution = Single_vcpu | All_vcpus | Spread of int

type verdict = {
  normalized : float;
  bottleneck : string;
  vcpu0_share : float;
  added_cycles : float;
}

let irq_preempt_penalty = 1200
let vcpus = 4.0
let backend_threads = 1.0
(* netback/vhost: one thread services the virtual interface *)

let run ?(irq_distribution = Single_vcpu) (w : Workload.t)
    (hyp : Hypervisor.t) =
  if w.Workload.irq_side_cycles > w.Workload.total_cycles then
    invalid_arg "App_model.run: irq_side_cycles exceeds total_cycles";
  let p = hyp.Hypervisor.io_profile in
  let f = float_of_int in
  (* The number of VCPUs absorbing interrupt work. *)
  let irq_vcpus =
    match irq_distribution with
    | Single_vcpu -> 1
    | All_vcpus -> 4
    | Spread n ->
        if n < 1 || n > 4 then
          invalid_arg "App_model.run: Spread outside 1-4";
        n
  in
  (* Interrupt coalescing: distributing IRQs restores per-VCPU polling,
     so the event multiplier relaxes toward 1. *)
  let irq_factor =
    1.0
    +. ((p.Io_profile.irq_rate_factor -. 1.0) /. float_of_int irq_vcpus)
  in
  let rx_events = w.Workload.device_irqs *. irq_factor in
  let tx_events =
    if p.Io_profile.zero_copy then 0.0
    else
      (* Each interrupt-taking VCPU polls its ring slice: completions
         batch away proportionally. *)
      w.Workload.tx_completion_events /. float_of_int irq_vcpus
  in
  let events = rx_events +. tx_events in
  let per_event =
    (* Native interrupts carry no virtualization surcharge and no extra
       preemption: the penalty models the exit/inject/enter disruption. *)
    if p.Io_profile.irq_delivery_guest_cpu = 0 then 0.0
    else
      f p.Io_profile.irq_delivery_guest_cpu
      +. f p.Io_profile.virq_completion
      +. f irq_preempt_penalty
  in
  (* Virtualization surcharge, split by where it executes. *)
  let irq_added = events *. per_event in
  let frontend_added =
    (w.Workload.kicks *. f p.Io_profile.kick_guest_cpu)
    +. (w.Workload.packets_rx *. f p.Io_profile.guest_rx_per_packet)
    +. (w.Workload.packets_tx *. f p.Io_profile.guest_tx_per_packet)
    +. (w.Workload.vipis *. f p.Io_profile.vipi_guest_cpu)
  in
  let backend =
    (w.Workload.packets_rx
    *. f (Io_profile.total_rx_packet_cost p ~bytes:150))
    +. (w.Workload.packets_tx
       *. f (Io_profile.total_tx_packet_cost p ~bytes:1300))
    +. (w.Workload.bytes_rx *. p.Io_profile.rx_copy_per_byte)
    +. (w.Workload.bytes_tx *. p.Io_profile.tx_copy_per_byte)
  in
  let added = irq_added +. frontend_added +. backend in
  (* Per-unit demand on each resource, in cycles of one CPU. The VCPU
     bound is a makespan: VCPU0 must absorb all interrupt-context work
     (native + surcharge), while the remaining work packs across all
     four VCPUs — so the binding term is max(irq pile, average). *)
  let native_per_vcpu = w.Workload.total_cycles /. vcpus in
  let average =
    (w.Workload.total_cycles +. irq_added +. frontend_added) /. vcpus
  in
  let vcpu0 =
    if irq_vcpus >= 4 then average
    else
      (w.Workload.irq_side_cycles +. irq_added
      +. (w.Workload.packets_rx *. f p.Io_profile.guest_rx_per_packet))
      /. float_of_int irq_vcpus
  in
  let backend_per_thread = backend /. backend_threads in
  let demands =
    [ ("vcpu0", vcpu0); ("vcpus", average); ("backend", backend_per_thread) ]
  in
  let bottleneck, worst =
    List.fold_left
      (fun (bn, bv) (name, v) -> if v > bv then (name, v) else (bn, bv))
      ("vcpus", 0.0) demands
  in
  let normalized = Float.max 1.0 (worst /. native_per_vcpu) in
  {
    normalized;
    bottleneck = (if normalized <= 1.0 then "none" else bottleneck);
    vcpu0_share = vcpu0 /. native_per_vcpu;
    added_cycles = added;
  }

let overhead_percent v = (v.normalized -. 1.0) *. 100.0
