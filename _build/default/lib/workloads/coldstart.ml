module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Addr = Armvirt_mem.Addr
module Stage2 = Armvirt_mem.Stage2
module Tlb = Armvirt_mem.Tlb

type result = {
  config : string;
  pages : int;
  faults : int;
  warm_faults : int;
  tlb_hit_rate_warm : float;
  per_fault_cycles : int;
  total_ms : float;
}

(* Host-side page allocation + accounting per fault (get_user_pages /
   populate_physmap), identical across hypervisors. *)
let host_alloc_cycles = 1800

let run (hyp : Hypervisor.t) ~pages =
  if pages < 1 then invalid_arg "Coldstart.run: pages < 1";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let p = hyp.Hypervisor.io_profile in
  (* The round trip into the hypervisor's fault handler costs what any
     synchronous trap costs that hypervisor (kick_guest_cpu is the
     guest-visible exit+entry pair); native runs fault into its own
     kernel with no transition at all. *)
  let transition = p.Io_profile.kick_guest_cpu in
  let stage2 = Stage2.create () in
  let tlb = Tlb.create ~capacity:512 in
  let faults = ref 0 in
  let warm_faults = ref 0 in
  let fault_cycles = ref 0 in
  let touch ~warm page =
    match Tlb.lookup tlb ~ipa_page:page with
    | Some _ -> ()
    | None -> (
        match Stage2.translate_opt stage2 (Addr.ipa_of_page page) with
        | Some pa ->
            Tlb.insert tlb ~ipa_page:page ~pa_page:(Addr.pa_page pa)
        | None ->
            if warm then incr warm_faults else incr faults;
            let t0 = Sim.current_time () in
            Machine.spend machine "coldstart.transition" transition;
            Machine.spend machine "coldstart.alloc" host_alloc_cycles;
            Machine.spend machine "coldstart.map" 420;
            Stage2.map stage2 ~ipa_page:page ~pa_page:(0x40000 + page)
              Stage2.Read_write;
            Tlb.insert tlb ~ipa_page:page ~pa_page:(0x40000 + page);
            fault_cycles :=
              !fault_cycles
              + Cycles.to_int (Cycles.sub (Sim.current_time ()) t0))
  in
  let total = ref Cycles.zero in
  let hit_rate = ref 0.0 in
  Sim.spawn sim ~name:"coldstart" (fun () ->
      let t0 = Sim.current_time () in
      for page = 0 to pages - 1 do
        touch ~warm:false page
      done;
      total := Cycles.sub (Sim.current_time ()) t0;
      let hits_before = Tlb.hits tlb and misses_before = Tlb.misses tlb in
      for page = 0 to pages - 1 do
        touch ~warm:true page
      done;
      let hits = Tlb.hits tlb - hits_before in
      let misses = Tlb.misses tlb - misses_before in
      hit_rate := float_of_int hits /. float_of_int (hits + misses));
  Sim.run sim;
  let freq = Machine.freq_ghz machine *. 1e9 in
  {
    config = hyp.Hypervisor.name;
    pages;
    faults = !faults;
    warm_faults = !warm_faults;
    tlb_hit_rate_warm = !hit_rate;
    per_fault_cycles = (if !faults = 0 then 0 else !fault_cycles / !faults);
    total_ms = float_of_int (Cycles.to_int !total) /. freq *. 1e3;
  }
