(** Oversubscription ablation: what the VM Switch microbenchmark costs
    at application level.

    Table I calls VM Switch "a central cost when oversubscribing
    physical CPUs", but the paper never oversubscribes (every VCPU gets
    a dedicated PCPU). This experiment completes the thought: stack
    [vms] CPU-bound 4-VCPU VMs onto the 4 guest PCPUs under the credit
    scheduler and charge each context switch the hypervisor's measured
    VM Switch cost. *)

type result = {
  vms : int;
  timeslice_ms : float;
  context_switches : int;
  switch_cost_cycles : int;  (** The hypervisor's Table II VM Switch. *)
  makespan_ms : float;
  ideal_ms : float;  (** Perfect sharing with free switches. *)
  overhead_pct : float;
}

val run :
  Armvirt_hypervisor.Hypervisor.t ->
  vms:int ->
  timeslice_ms:float ->
  work_ms_per_vcpu:float ->
  result
(** Raises [Invalid_argument] for non-positive parameters. *)

val sweep :
  Armvirt_hypervisor.Hypervisor.t ->
  vms:int list ->
  timeslices_ms:float list ->
  work_ms_per_vcpu:float ->
  result list
