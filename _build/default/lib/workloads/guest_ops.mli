(** lmbench-style guest-local operations: what virtualization does {e
    not} cost.

    Section V: "CPU and memory virtualization has been highly optimized
    directly in hardware and, ignoring one-time page fault costs at
    start up, is performed largely without the hypervisor's
    involvement." This experiment makes that half of the story explicit:
    syscalls, process context switches and guest-internal (stage-1)
    page faults run at native speed inside every VM, while each
    operation that does involve the hypervisor — a cold stage-2 fault, a
    device interrupt, a timer tick — carries that hypervisor's
    transition tax. *)

type row = {
  op : string;
  cycles : int;
  hypervisor_involved : bool;
      (** Whether the operation left the VM. False rows must be
          identical across all configurations. *)
}

val measure : Armvirt_hypervisor.Hypervisor.t -> row list
(** Seven operations, cheap ones first. *)

val op_names : string list
