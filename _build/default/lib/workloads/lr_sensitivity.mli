(** vGIC list-register sensitivity: an ablation of a hardware design
    parameter the paper's numbers rest on.

    The GIC virtual interface holds a handful of list registers (4 on
    GIC-400). While interrupt bursts fit, guests complete interrupts
    without trapping (Table II's 71 cycles); once a burst overflows,
    the hypervisor must park interrupts in software and take
    maintenance traps to refill — paying the full transition cost each
    time. This experiment drives bursts of distinct interrupts through
    a real {!Armvirt_gic.Vgic} at several list-register counts and
    prices the maintenance traffic per hypervisor. *)

type result = {
  num_lrs : int;
  burst_size : int;
  bursts : int;
  injected : int;
  maintenance_rounds : int;  (** Refill traps taken by the hypervisor. *)
  overhead_cycles : int;
      (** Maintenance rounds × the hypervisor's exit/entry cost. *)
  cycles_per_interrupt : float;
}

val run :
  Armvirt_hypervisor.Hypervisor.t ->
  num_lrs:int ->
  burst_size:int ->
  bursts:int ->
  result
(** Raises [Invalid_argument] on non-positive parameters. *)

val sweep :
  Armvirt_hypervisor.Hypervisor.t ->
  lrs:int list ->
  burst_size:int ->
  bursts:int ->
  result list
