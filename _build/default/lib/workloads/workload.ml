type category = Cpu_bound | Io_latency | Io_throughput | Balanced

type t = {
  name : string;
  description : string;
  category : category;
  unit_name : string;
  total_cycles : float;
  irq_side_cycles : float;
  device_irqs : float;
  tx_completion_events : float;
  packets_rx : float;
  packets_tx : float;
  bytes_rx : float;
  bytes_tx : float;
  kicks : float;
  vipis : float;
}

let kernbench =
  {
    name = "Kernbench";
    description =
      "Compilation of the Linux 3.17.0 kernel using the allnoconfig for \
       ARM using GCC 4.8.2.";
    category = Cpu_bound;
    unit_name = "kernel build";
    total_cycles = 576e9;
    irq_side_cycles = 6e9;
    device_irqs = 20_000.0;
    tx_completion_events = 0.0;
    packets_rx = 0.0;
    packets_tx = 0.0;
    bytes_rx = 0.0;
    bytes_tx = 0.0;
    kicks = 20_000.0 (* block I/O submissions *);
    vipis = 1.2e6 (* make -j fork/exit rescheduling *);
  }

let hackbench =
  {
    name = "Hackbench";
    description =
      "hackbench using Unix domain sockets and 100 process groups \
       running with 500 loops.";
    category = Cpu_bound;
    unit_name = "run (100 groups x 500 loops)";
    total_cycles = 96e9;
    irq_side_cycles = 2e9;
    device_irqs = 2_000.0;
    tx_completion_events = 0.0;
    packets_rx = 0.0;
    packets_tx = 0.0;
    bytes_rx = 0.0;
    bytes_tx = 0.0;
    kicks = 1_000.0;
    vipis = 0.83e6 (* sleeping/waking threads: constant rescheduling *);
  }

let specjvm =
  {
    name = "SPECjvm2008";
    description =
      "SPECjvm2008 benchmark running several real life applications and \
       benchmarks specifically chosen to benchmark the performance of \
       the Java Runtime Environment (Linaro AArch64 OpenJDK).";
    category = Cpu_bound;
    unit_name = "composite run";
    total_cycles = 576e9;
    irq_side_cycles = 2e9;
    device_irqs = 60_000.0 (* timer ticks *);
    tx_completion_events = 0.0;
    packets_rx = 0.0;
    packets_tx = 0.0;
    bytes_rx = 0.0;
    bytes_tx = 0.0;
    kicks = 1_000.0;
    vipis = 0.3e6 (* GC and JIT thread wakeups *);
  }

let apache =
  {
    name = "Apache";
    description =
      "Apache v2.4.7 Web server running ApacheBench v2.3 on the remote \
       client, measuring requests per second serving the 41 KB index \
       file of the GCC 4.4 manual with 100 concurrent requests.";
    category = Io_throughput;
    unit_name = "1000 requests";
    total_cycles = 1.538e9;
    irq_side_cycles = 0.28e9;
    device_irqs = 24_000.0 (* 24 NIC interrupts per request, coalesced *);
    tx_completion_events = 32_000.0 (* one per transmitted segment *);
    packets_rx = 10_000.0;
    packets_tx = 32_000.0 (* 41 KB = ~28 MTU segments + handshake *);
    bytes_rx = 0.5e6;
    bytes_tx = 42e6;
    kicks = 8_000.0;
    vipis = 2_000.0;
  }

let memcached =
  {
    name = "Memcached";
    description =
      "memcached v1.4.14 using the memtier benchmark v1.2.3 with its \
       default parameters.";
    category = Io_throughput;
    unit_name = "10k operations";
    total_cycles = 0.8e9;
    irq_side_cycles = 0.2e9;
    device_irqs = 4_500.0 (* heavy NAPI coalescing at high op rate *);
    tx_completion_events = 2_000.0 (* responses batch per event *);
    packets_rx = 10_000.0;
    packets_tx = 10_000.0;
    bytes_rx = 2e6;
    bytes_tx = 2e6;
    kicks = 2_000.0;
    vipis = 500.0;
  }

let mysql =
  {
    name = "MySQL";
    description =
      "MySQL v14.14 (distrib 5.5.41) running SysBench v0.4.12 using the \
       default configuration with 200 parallel transactions.";
    category = Balanced;
    unit_name = "1000 transactions";
    total_cycles = 4e9;
    irq_side_cycles = 0.9e9;
    device_irqs = 16_000.0;
    tx_completion_events = 2_000.0;
    packets_rx = 4_000.0;
    packets_tx = 4_000.0;
    bytes_rx = 1e6;
    bytes_tx = 1e6;
    kicks = 8_000.0;
    vipis = 4_000.0;
  }

let all = [ kernbench; hackbench; specjvm; apache; memcached; mysql ]

let find name =
  List.find_opt (fun w -> String.lowercase_ascii w.name = String.lowercase_ascii name) all

let pp ppf w =
  Format.fprintf ppf "%s (per %s: %.2e cycles, %.0f irqs, %.0f pkts)"
    w.name w.unit_name w.total_cycles w.device_irqs
    (w.packets_rx +. w.packets_tx)
