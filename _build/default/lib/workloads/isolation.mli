(** The paper's measurement discipline, demonstrated by breaking it.

    Section IV: "Because these measurements were at the level of a few
    hundred to a few thousand cycles, it was important to minimize
    measurement variability ... Variations caused by interrupts and
    scheduling can skew measurements by thousands of cycles. To address
    this, we pinned and isolated VCPUs ... assigning all virtual
    interrupts to other VCPUs."

    This experiment measures the Hypercall microbenchmark twice: once
    under the paper's discipline (the simulator's default — variance-free
    by construction) and once with stray host interrupts and scheduler
    preemptions landing mid-measurement, at rates typical of an
    unisolated core. The contaminated distribution shows exactly the
    thousands-of-cycles skew the paper engineered away. *)

type result = {
  config : string;
  samples : int;
  median : float;
  mean : float;
  stddev : float;
  coefficient_of_variation : float;
  worst : float;  (** Max observed sample. *)
}

val run :
  ?seed:int ->
  ?iterations:int ->
  interference:bool ->
  Armvirt_hypervisor.Hypervisor.t ->
  result
(** [iterations] defaults to 200. With [interference:false] the result
    must have zero deviation; with [interference:true], stray events
    (probability ~0.3/sample, 0.5–15k stolen cycles each) contaminate
    the samples. Deterministic per [seed] (default 7). *)
