(** Open-loop tail latency: what the added per-request latency does to
    percentiles under load.

    The paper's Netperf TCP_RR is closed-loop — one request in flight —
    so it measures the mean path. Real services see open-loop arrivals,
    where the virtualization surcharge both lengthens service times
    (burning VCPU0 capacity) and adds fixed delivery latency; queueing
    amplifies the difference into the tail. This experiment drives
    Poisson arrivals at a fraction of native capacity through a
    simulated single-VCPU server and reports the latency distribution —
    the "latency added to I/O" (section IV) made operational. *)

type result = {
  config : string;
  offered_load : float;  (** Fraction of native capacity. *)
  completed : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  utilization : float;  (** Server busy fraction during the run. *)
  latency_histogram : Armvirt_stats.Histogram.t;
      (** 10 μs buckets over the completed requests' latencies. *)
}

val run :
  ?seed:int ->
  ?requests:int ->
  Armvirt_hypervisor.Hypervisor.t ->
  load:float ->
  result
(** [load] is the arrival rate as a fraction of the {e native} service
    capacity, so the same 0.7 means the same request stream on every
    hypervisor — the virtualized servers run closer to saturation.
    Raises [Invalid_argument] unless [0 < load < 1] and
    [requests > 0]. Deterministic for a fixed [seed] (default 42);
    [requests] defaults to 2000. *)
