module Sim = Armvirt_engine.Sim
module Cycles = Armvirt_engine.Cycles
module Machine = Armvirt_arch.Machine
module Hypervisor = Armvirt_hypervisor.Hypervisor
module Io_profile = Armvirt_hypervisor.Io_profile
module Arch_timer = Armvirt_timer.Arch_timer

type result = {
  config : string;
  tick_hz : int;
  ticks : int;
  cycles_per_tick : int;
  cpu_overhead_pct : float;
}

let run ?(tick_hz = 250) ?(simulated_ms = 100) (hyp : Hypervisor.t) =
  if tick_hz < 1 || simulated_ms < 1 then
    invalid_arg "Timer_tick.run: non-positive parameter";
  let machine = hyp.Hypervisor.machine in
  let sim = Machine.sim machine in
  let p = hyp.Hypervisor.io_profile in
  let freq = Machine.freq_ghz machine *. 1e9 in
  let period = Cycles.of_int (int_of_float (freq /. float_of_int tick_hz)) in
  let span_cycles =
    int_of_float (freq *. float_of_int simulated_ms /. 1e3)
  in
  (* The machine's clock may have advanced (e.g. in a sweep reusing it):
     the horizon is relative to this run's start. *)
  let horizon = ref Cycles.zero in
  let ticks = ref 0 in
  let tick_cycles = ref 0 in
  let timer_ref = ref None in
  (* Each expiry: the physical interrupt lands at the hypervisor, which
     injects the virtual timer interrupt; the guest handles and
     completes it, then re-arms for the next period — a clockevent. *)
  let on_expiry () =
    let t0 = Sim.current_time () in
    Machine.spend machine "timer_tick.translate"
      (p.Io_profile.irq_delivery_guest_cpu + p.Io_profile.virq_completion);
    incr ticks;
    tick_cycles :=
      !tick_cycles + Cycles.to_int (Cycles.sub (Sim.current_time ()) t0);
    let next = Cycles.add (Sim.current_time ()) period in
    if Cycles.compare next !horizon <= 0 then
      Arch_timer.arm_timer (Option.get !timer_ref) ~deadline:next
  in
  let timer = Arch_timer.create sim ~on_expiry in
  timer_ref := Some timer;
  Sim.spawn sim ~name:"guest-clockevent" (fun () ->
      let now = Sim.current_time () in
      horizon := Cycles.add now (Cycles.of_int span_cycles);
      Arch_timer.arm_timer timer ~deadline:(Cycles.add now period));
  Sim.run sim;
  let span = float_of_int span_cycles in
  {
    config = hyp.Hypervisor.name;
    tick_hz;
    ticks = !ticks;
    cycles_per_tick = (if !ticks = 0 then 0 else !tick_cycles / !ticks);
    cpu_overhead_pct = float_of_int !tick_cycles /. span *. 100.0;
  }

let sweep hyp ~hz = List.map (fun tick_hz -> run ~tick_hz hyp) hz
