(** Cold-start stage-2 faulting: the "one-time page fault costs at
    start up" the paper's analysis deliberately ignores (section V),
    measured instead of waved away.

    A freshly booted VM touches its working set for the first time;
    every touch takes a stage-2 abort into the hypervisor, which
    allocates a machine page, installs the translation and returns.
    The experiment walks a working set twice — faulting pass, then warm
    pass — against a real {!Armvirt_mem.Stage2} table and per-CPU
    {!Armvirt_mem.Tlb}, and prices each fault with the hypervisor's
    transition costs. *)

type result = {
  config : string;
  pages : int;
  faults : int;  (** First pass: one per page. *)
  warm_faults : int;  (** Second pass: must be zero. *)
  tlb_hit_rate_warm : float;
  per_fault_cycles : int;
  total_ms : float;  (** Cost of faulting in the whole working set. *)
}

val run :
  Armvirt_hypervisor.Hypervisor.t -> pages:int -> result
(** Raises [Invalid_argument] if [pages < 1]. *)
